// Standalone fuzz driver for toolchains without libFuzzer (gcc). Replays
// every corpus file passed on the command line (files or directories),
// then runs a bounded, deterministic mutation loop over the corpus with
// rmgp::Rng — byte flips, truncations, splices, and havoc stacks. This is
// not coverage-guided; it exists so the fuzz targets build, link, and
// smoke-run everywhere, while clang CI cells run the same targets under
// real libFuzzer. Exit code 0 = no crash (sanitizers abort the process on
// a finding, exactly like libFuzzer).
//
// Usage: fuzz_target [-runs=N] [-max_len=N] [corpus_file_or_dir]...

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "util/rng.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

using Input = std::vector<uint8_t>;

bool ReadFile(const std::string& path, Input* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  uint8_t buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->insert(out->end(), buf, buf + n);
  }
  std::fclose(f);
  return true;
}

void CollectCorpus(const std::string& path, std::vector<Input>* corpus) {
  struct stat st{};
  if (stat(path.c_str(), &st) != 0) {
    std::fprintf(stderr, "driver: cannot stat %s\n", path.c_str());
    return;
  }
  if (S_ISDIR(st.st_mode)) {
    DIR* dir = opendir(path.c_str());
    if (dir == nullptr) return;
    std::vector<std::string> entries;
    while (dirent* e = readdir(dir)) {
      if (e->d_name[0] == '.') continue;
      entries.push_back(path + "/" + e->d_name);
    }
    closedir(dir);
    // Sort for a deterministic replay order regardless of readdir order.
    std::sort(entries.begin(), entries.end());
    for (const std::string& entry : entries) CollectCorpus(entry, corpus);
    return;
  }
  Input data;
  if (ReadFile(path, &data)) corpus->push_back(std::move(data));
}

Input Mutate(const Input& seed, rmgp::Rng& rng, size_t max_len) {
  Input out = seed;
  const uint64_t stack = 1 + rng.UniformInt(4);
  for (uint64_t s = 0; s < stack; ++s) {
    switch (rng.UniformInt(5)) {
      case 0:  // flip a byte
        if (!out.empty()) {
          out[rng.UniformInt(out.size())] ^=
              static_cast<uint8_t>(1 + rng.UniformInt(255));
        }
        break;
      case 1:  // truncate
        if (!out.empty()) out.resize(rng.UniformInt(out.size() + 1));
        break;
      case 2: {  // insert a random byte
        const size_t pos = rng.UniformInt(out.size() + 1);
        out.insert(out.begin() + static_cast<ptrdiff_t>(pos),
                   static_cast<uint8_t>(rng.UniformInt(256)));
        break;
      }
      case 3: {  // overwrite a run with a single value
        if (out.empty()) break;
        const size_t pos = rng.UniformInt(out.size());
        const size_t len = 1 + rng.UniformInt(out.size() - pos);
        std::memset(out.data() + pos,
                    static_cast<int>(rng.UniformInt(256)), len);
        break;
      }
      case 4: {  // duplicate a slice to the end (grows structure counts)
        if (out.empty()) break;
        const size_t pos = rng.UniformInt(out.size());
        const size_t len = 1 + rng.UniformInt(out.size() - pos);
        out.insert(out.end(), out.begin() + static_cast<ptrdiff_t>(pos),
                   out.begin() + static_cast<ptrdiff_t>(pos + len));
        break;
      }
    }
  }
  if (out.size() > max_len) out.resize(max_len);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t runs = 20000;
  size_t max_len = 4096;
  std::vector<Input> corpus;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "-runs=", 6) == 0) {
      runs = std::strtoull(arg + 6, nullptr, 10);
    } else if (std::strncmp(arg, "-max_len=", 9) == 0) {
      max_len = std::strtoull(arg + 9, nullptr, 10);
    } else if (arg[0] == '-') {
      // Ignore unknown libFuzzer-style flags so CI can pass the same
      // command line to both drivers.
    } else {
      CollectCorpus(arg, &corpus);
    }
  }

  std::fprintf(stderr, "driver: %zu corpus inputs, %llu mutation runs\n",
               corpus.size(), static_cast<unsigned long long>(runs));
  for (const Input& input : corpus) {
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }
  if (corpus.empty()) corpus.push_back(Input{});

  rmgp::Rng rng(0xf0220fu);  // fixed seed: deterministic smoke run
  for (uint64_t i = 0; i < runs; ++i) {
    const Input& seed = corpus[rng.UniformInt(corpus.size())];
    const Input mutated = Mutate(seed, rng, max_len);
    LLVMFuzzerTestOneInput(mutated.data(), mutated.size());
  }
  std::fprintf(stderr, "driver: done, no crashes\n");
  return 0;
}
