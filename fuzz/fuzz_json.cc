// Fuzz target: util::Json::Parse over arbitrary bytes. The parser is the
// first thing every NDJSON request touches (rmgp-serve/3 reads untrusted
// stdin), so it must reject any input with a clean Status — never crash,
// never read out of bounds, never recurse past the depth limit.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "util/json.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  auto parsed = rmgp::Json::Parse(text);
  if (parsed.ok()) {
    // A successful parse must serialize and re-parse to a valid document
    // (Dump/Parse closure — exercises the writer on fuzzer-found shapes).
    auto again = rmgp::Json::Parse(parsed->Dump());
    if (!again.ok()) __builtin_trap();
  }
  return 0;
}
