// Fuzz target: the .rmgp container parser (header, section table, payload
// validation) plus the varint decoder that backs the compressed adjacency
// stream. The input bytes are treated as a complete container image and
// parsed twice — once lax (structural validation only, the zero-parse mmap
// path) and once strict (checksums + deep graph validation, the
// rmgp_pack --verify path). Invariants checked:
//
//  * strict-accept implies lax-accept (strict is a strengthening, never a
//    different grammar),
//  * anything the lax parser accepts must Decode() without crashing, and
//    strict-accepted images must Decode() successfully,
//  * a plain image accepted by both paths yields the same graph shape from
//    LoadMapped() and Decode(),
//  * every varint the decoder accepts round-trips through the encoder.

#include <cstdint>
#include <cstring>
#include <vector>

#include "store/container.h"
#include "store/varint.h"

namespace {

using rmgp::store::Container;
using rmgp::store::OpenOptions;

void FuzzVarints(const uint8_t* data, size_t size) {
  const uint8_t* p = data;
  const uint8_t* const end = data + size;
  std::vector<uint8_t> re;
  while (p < end) {
    const uint8_t* before = p;
    uint64_t value = 0;
    if (!rmgp::store::DecodeVarint(&p, end, &value)) {
      if (p != before) __builtin_trap();  // failure must not consume bytes
      ++p;
      continue;
    }
    const size_t consumed = static_cast<size_t>(p - before);
    if (consumed == 0 || consumed > 10) __builtin_trap();
    if (rmgp::store::VarintSize(value) > consumed) __builtin_trap();
    // Canonical re-encoding must decode back to the same value.
    re.clear();
    rmgp::store::AppendVarint(value, &re);
    const uint8_t* q = re.data();
    uint64_t back = 0;
    if (!rmgp::store::DecodeVarint(&q, re.data() + re.size(), &back) ||
        back != value) {
      __builtin_trap();
    }
  }
}

void FuzzContainer(const uint8_t* data, size_t size) {
  // FromBuffer requires 8-byte alignment by contract; fuzzer input is not
  // aligned, so stage it through a uint64_t-backed buffer.
  std::vector<uint64_t> aligned((size + 7) / 8 + 1);
  std::memcpy(aligned.data(), data, size);
  const uint8_t* base = reinterpret_cast<const uint8_t*>(aligned.data());

  auto lax = Container::FromBuffer(base, size, OpenOptions{});
  OpenOptions strict_opts;
  strict_opts.verify_checksums = true;
  strict_opts.deep_validate = true;
  auto strict = Container::FromBuffer(base, size, strict_opts);

  if (strict.ok() && !lax.ok()) __builtin_trap();
  if (!lax.ok()) return;

  auto decoded = lax->Decode();
  if (strict.ok() && !decoded.ok()) __builtin_trap();

  if (!lax->compressed()) {
    auto mapped = lax->LoadMapped();
    if (strict.ok() && !mapped.ok()) __builtin_trap();
    if (mapped.ok() && decoded.ok()) {
      if (mapped->num_nodes() != decoded->num_nodes() ||
          mapped->num_edges() != decoded->num_edges()) {
        __builtin_trap();
      }
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  FuzzVarints(data, size);
  FuzzContainer(data, size);
  return 0;
}
