// Fuzz target: serve::ParseRequest over arbitrary bytes — the full
// rmgp-serve/3 NDJSON request path (JSON parse + schema validation +
// checked numeric conversions). Any input must either produce a valid
// Request or a clean InvalidArgument; this target found the unchecked
// double->unsigned casts that used to make negative/NaN/huge ids UB.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "serve/protocol.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view line(reinterpret_cast<const char*>(data), size);
  auto req = rmgp::serve::ParseRequest(line);
  (void)req;
  return 0;
}
