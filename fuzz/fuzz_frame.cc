// Fuzz target: net::TryExtractFrame — the framing state machine shared
// with Connection::ReadFrame. The input is treated as a byte stream that
// arrives in fuzzer-chosen chunks (first byte picks the chunk size), so
// partial headers, split payloads, and pipelined frames are all hit. The
// extractor must never report a frame whose consumed bytes disagree with
// the header, and incremental delivery must yield the same frames as
// one-shot delivery.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "net/frame.h"

namespace {

struct Extracted {
  std::vector<rmgp::net::Frame> frames;
  bool corrupt = false;
};

Extracted Drain(std::string& buf) {
  using rmgp::net::ExtractResult;
  Extracted out;
  for (;;) {
    rmgp::net::Frame frame;
    size_t consumed = 0;
    switch (rmgp::net::TryExtractFrame(buf, &frame, &consumed)) {
      case ExtractResult::kFrame:
        if (consumed != rmgp::net::kFrameHeaderBytes + frame.payload.size()) {
          __builtin_trap();
        }
        out.frames.push_back(std::move(frame));
        continue;
      case ExtractResult::kCorrupt:
        out.corrupt = true;
        return out;
      case ExtractResult::kNeedMore:
        return out;
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  const size_t chunk = static_cast<size_t>(data[0]) + 1;
  const char* bytes = reinterpret_cast<const char*>(data) + 1;
  const size_t n = size - 1;

  // Incremental delivery in `chunk`-byte slices.
  std::string buf;
  Extracted incremental;
  for (size_t off = 0; off < n && !incremental.corrupt; off += chunk) {
    const size_t take = off + chunk < n ? chunk : n - off;
    buf.append(bytes + off, take);
    Extracted step = Drain(buf);
    for (auto& f : step.frames) incremental.frames.push_back(std::move(f));
    incremental.corrupt = step.corrupt;
  }

  // One-shot delivery of the same stream must agree frame-for-frame.
  std::string whole(bytes, n);
  Extracted oneshot = Drain(whole);
  if (incremental.corrupt != oneshot.corrupt ||
      incremental.frames.size() != oneshot.frames.size()) {
    __builtin_trap();
  }
  for (size_t i = 0; i < oneshot.frames.size(); ++i) {
    if (incremental.frames[i].type != oneshot.frames[i].type ||
        incremental.frames[i].payload != oneshot.frames[i].payload) {
      __builtin_trap();
    }
  }
  return 0;
}
