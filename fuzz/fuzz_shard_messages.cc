// Fuzz target: the shard:: wire decoders — everything a coordinator or
// worker deserializes off a TCP frame payload. The first input byte
// selects the decoder; the rest is the payload. This target found the
// count-trust bug where DecodeShard/DecodeQueryInit resized vectors from
// a hostile header before validating a single payload byte.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "shard/messages.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  const std::string_view payload(reinterpret_cast<const char*>(data) + 1,
                                 size - 1);
  using namespace rmgp::shard;
  switch (data[0] % 6) {
    case 0: {
      auto shard = DecodeShard(payload);
      if (shard.ok()) {
        // Decode/encode closure: a payload the decoder accepts must
        // re-encode to the identical byte string.
        if (EncodeShard(*shard) != payload) __builtin_trap();
      }
      break;
    }
    case 1: {
      auto query = DecodeQueryInit(payload);
      if (query.ok()) {
        // The warm flag normalizes (any nonzero u32 -> 1), so exact byte
        // closure holds only from the second encode onward.
        const std::string enc = EncodeQueryInit(*query);
        auto again = DecodeQueryInit(enc);
        if (!again.ok() || EncodeQueryInit(*again) != enc) __builtin_trap();
      }
      break;
    }
    case 2:
      (void)DecodeChanges(payload);
      break;
    case 3:
      (void)DecodeGsv(payload);
      break;
    case 4:
      (void)DecodeCommand(payload);
      break;
    case 5:
      (void)DecodeAck(payload);
      break;
  }
  return 0;
}
