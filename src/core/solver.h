#ifndef RMGP_CORE_SOLVER_H_
#define RMGP_CORE_SOLVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/instance.h"
#include "core/kernels.h"
#include "core/objective.h"
#include "util/status.h"

namespace rmgp {

/// How players' initial strategies are chosen (Fig 3 line 2 and the
/// heuristics of §3.1).
enum class InitPolicy {
  kRandom,        ///< RMGP_b: uniform random class per user
  kClosestClass,  ///< "+i": the class with minimum assignment cost
  kGiven,         ///< warm start from SolverOptions::warm_start (§3.1: seed
                  ///< repeated executions with the previous solution)
};

/// Order in which players are examined within a round (Fig 3 line 5 and
/// the "+o" heuristic).
enum class OrderPolicy {
  kRandom,      ///< RMGP_b: random permutation (fixed per run)
  kDegreeDesc,  ///< "+o": decreasing degree — community leaders first
  kDegreeAsc,   ///< ablation: increasing degree
  kNodeId,      ///< ablation: by node id
};

/// Options shared by all RMGP solvers.
struct SolverOptions {
  InitPolicy init = InitPolicy::kRandom;
  OrderPolicy order = OrderPolicy::kRandom;
  uint64_t seed = 1;

  /// Safety valve; best-response dynamics on an exact potential game always
  /// converge (Theorem 1 / Lemma 2), so hitting this limit indicates a bug
  /// or a pathological epsilon.
  uint32_t max_rounds = 100000;

  /// Worker threads for RMGP_is / RMGP_all (the paper's parameter T). Also
  /// drives the parallel round-0 builds (global table, §4.1 valid regions)
  /// of RMGP_se / RMGP_gt / RMGP_pq on large-enough instances; solver
  /// *results* never depend on this value — only wall time does.
  uint32_t num_threads = 4;

  /// Initial assignment for InitPolicy::kGiven.
  Assignment warm_start;

  /// Record per-round statistics (deviations, time). Cheap.
  bool record_rounds = true;

  /// Additionally record the potential Φ after every round. Costs one full
  /// objective evaluation per round; enable only on small/medium instances.
  bool record_potential = false;

  /// Anytime semantics: stop cooperatively once `deadline` has passed or
  /// `cancel_token` is set. Both are checked only at round boundaries
  /// (every 1024 moves for RMGP_pq's single sweep), so a run that finishes
  /// without tripping either is bit-identical to one with no deadline at
  /// all. A tripped run still returns a *valid* assignment — round 0
  /// always completes — with `SolveResult::timed_out = true`,
  /// `converged = false`, and the objective of the partial assignment.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  std::shared_ptr<const std::atomic<bool>> cancel_token;

  /// Hot-row kernel selection (core/kernels.h): kAuto uses the widest SIMD
  /// backend the host supports, kScalar pins the reference loops. Both
  /// produce bit-identical assignments — this is a verification/bench
  /// knob, not a quality trade-off.
  kernels::KernelPolicy kernels = kernels::KernelPolicy::kAuto;
};

/// Lightweight per-run observability counters. Maintained unconditionally
/// by every solver (the increments are cheap relative to a best-response
/// evaluation) and serialized by tools/bench_runner into BENCH_solvers.json
/// so regressions in *work done* are visible even when wall time is noisy.
struct SolverCounters {
  /// Best-response evaluations: one per (user, round) examination, whether
  /// computed from scratch (RMGP_b/se/is) or read off a global-table row
  /// (RMGP_gt/all/pq).
  uint64_t best_response_evals = 0;

  /// Cells materialized by full global-table builds (round 0 of
  /// RMGP_gt/all/pq); 0 for solvers without a table.
  uint64_t gt_cells_built = 0;

  /// Full global-table builds (currently always 0 or 1; rebuilds would
  /// appear here if a future dynamic variant invalidates the table).
  uint64_t gt_rebuilds = 0;

  /// Incremental per-cell table updates applied when a friend switched
  /// class (Fig 5 lines 11-15) — the quantity §4.3 trades against full
  /// re-evaluation.
  uint64_t gt_incremental_updates = 0;

  /// Full argmin repair scans of a table row (RMGP_gt/all/pq): the cached
  /// per-row best class is updated in O(1) when a cell decreases, but when
  /// the best cell itself gets dearer the row must be rescanned. The ratio
  /// of repairs to gt_incremental_updates is the cache's effectiveness —
  /// near 0 means unhappy-user examinations cost O(1) instead of O(k).
  uint64_t argmin_cache_repairs = 0;

  /// Enqueues onto the explicit unhappy worklist (RMGP_gt/all: the
  /// structure replacing the per-round rescan of the happy flags; RMGP_pq:
  /// heap pushes). Counts initial seeding and re-enqueues alike; an
  /// in-queue flag deduplicates, so this also bounds examinations.
  uint64_t worklist_pushes = 0;

  /// §4.1 strategy-elimination effectiveness (mirrors the SolveResult
  /// fields of the same name).
  uint64_t eliminated_users = 0;
  uint64_t pruned_strategies = 0;

  /// Sizes of the greedy-coloring groups actually scheduled (RMGP_is/all;
  /// RMGP_all drops eliminated users first); empty for sequential solvers.
  std::vector<uint64_t> color_group_sizes;

  /// Per-worker wall time spent inside solver tasks, from
  /// ThreadPool::BusyMillis (RMGP_is/all); empty for sequential solvers.
  std::vector<double> thread_busy_millis;
};

/// Statistics for one round of best-response dynamics.
struct RoundStats {
  uint32_t round = 0;        ///< 0 = initialization round
  uint64_t deviations = 0;   ///< players that switched strategy
  uint64_t examined = 0;     ///< players whose best response was computed
  double millis = 0.0;
  double potential = 0.0;    ///< Φ after the round (if record_potential)
};

/// Outcome of a solver run.
struct SolveResult {
  Assignment assignment;
  bool converged = false;     ///< reached a Nash equilibrium
  bool timed_out = false;     ///< stopped by deadline/cancel (anytime mode)
  uint32_t rounds = 0;        ///< best-response rounds (excl. round 0)
  CostBreakdown objective;    ///< Equation 1 at the final assignment
  double potential = 0.0;     ///< Φ (Equation 4) at the final assignment
  double init_millis = 0.0;   ///< round 0: init assignment + precomputation
  double total_millis = 0.0;  ///< wall clock incl. initialization
  std::vector<RoundStats> round_stats;  ///< if record_rounds; [0] is round 0

  /// Work counters for observability; see SolverCounters.
  SolverCounters counters;

  /// Strategy-elimination effectiveness (RMGP_se / RMGP_all only).
  /// Mirrors counters.eliminated_users / counters.pruned_strategies.
  uint64_t eliminated_users = 0;    ///< users fixed to their only strategy
  uint64_t pruned_strategies = 0;   ///< (v,p) pairs removed from play
};

/// RMGP_b — the baseline best-response algorithm of Fig 3.
Result<SolveResult> SolveBaseline(const Instance& inst,
                                  const SolverOptions& options);

/// RMGP_se — baseline plus strategy elimination (§4.1): a per-user valid
/// region prunes classes that can never be a best response.
Result<SolveResult> SolveStrategyElimination(const Instance& inst,
                                             const SolverOptions& options);

/// RMGP_is — coloring-based parallel best response (§4.2, Fig 4): nodes of
/// one color form an independent set and respond simultaneously on
/// `num_threads` threads.
Result<SolveResult> SolveIndependentSets(const Instance& inst,
                                         const SolverOptions& options);

/// RMGP_gt — global-table scheduling (§4.3, Fig 5): every user's per-class
/// costs are materialized once and incrementally maintained; only unhappy
/// users are examined.
Result<SolveResult> SolveGlobalTable(const Instance& inst,
                                     const SolverOptions& options);

/// RMGP_all — all three optimizations combined: strategy elimination
/// builds reduced per-user strategy lists, the global table is kept over
/// the reduced lists, and unhappy users are processed per color group in
/// parallel.
Result<SolveResult> SolveAll(const Instance& inst,
                             const SolverOptions& options);

/// RMGP_pq — best-improvement (steepest-descent) dynamics: an ablation
/// beyond the paper that always plays the user with the largest available
/// improvement (max-heap over the global table). Converges by the same
/// potential argument; `rounds` is always 1 and round_stats[0].deviations
/// counts the individual moves.
Result<SolveResult> SolveBestImprovement(const Instance& inst,
                                         const SolverOptions& options);

/// Identifiers for the solver variants, used by benches and the
/// decentralized framework to pick an algorithm by name.
enum class SolverKind { kBaseline, kStrategyElimination, kIndependentSets,
                        kGlobalTable, kAll };

/// Dispatches to the solver selected by `kind`.
Result<SolveResult> Solve(SolverKind kind, const Instance& inst,
                          const SolverOptions& options);

/// Human-readable solver name ("RMGP_b", "RMGP_se", ...).
const char* SolverKindName(SolverKind kind);

}  // namespace rmgp

#endif  // RMGP_CORE_SOLVER_H_
