#include "core/incremental.h"

#include <algorithm>
#include <string>
#include <vector>

#include "core/solver_internal.h"
#include "util/dcheck.h"
#include "util/stopwatch.h"

namespace rmgp {
namespace {

using internal::ArgminOnDecrease;
using internal::ArgminOnIncrease;
using internal::StrictlyBetter;

constexpr uint32_t kNoRow = UINT32_MAX;

/// Lazily materialized global-table rows: only vertices the worklist
/// actually examines pay the O(k + deg) row build, and rows stay patched
/// via the Fig-5 incremental updates afterwards.
struct LazyTable {
  LazyTable(const Instance& inst, const kernels::Kernels& kn)
      : inst_(inst),
        kn_(kn),
        k_(inst.num_classes()),
        alpha_(inst.alpha()),
        row_of_(inst.num_users(), kNoRow) {}

  bool has_row(NodeId v) const { return row_of_[v] != kNoRow; }

  double* row(NodeId v) { return rows_.data() + row_of_[v] * k_; }

  ClassId& best(NodeId v) { return best_[row_of_[v]]; }

  /// Builds v's row against the current assignment (same cell formula as
  /// BuildDenseGlobalTable, so equilibria are bit-comparable).
  void Materialize(NodeId v, const Assignment& a, const double* max_sc,
                   SolverCounters* counters) {
    row_of_[v] = static_cast<uint32_t>(best_.size());
    rows_.resize(rows_.size() + k_);
    double* row = rows_.data() + row_of_[v] * k_;
    inst_.AssignmentCostsFor(v, row);
    kn_.cost_row_d(row, k_, alpha_, max_sc[v]);
    const double social = 1.0 - alpha_;
    for (const Neighbor& nb : inst_.graph().neighbors(v)) {
      row[a[nb.node]] -= social * 0.5 * nb.weight;
    }
    best_.push_back(static_cast<ClassId>(kn_.argmin_d(row, k_)));
    counters->gt_cells_built += k_;
  }

  const Instance& inst_;
  const kernels::Kernels& kn_;
  const ClassId k_;
  const double alpha_;
  std::vector<uint32_t> row_of_;  // v -> row slot, kNoRow if unbuilt
  std::vector<double> rows_;      // slot-major, k_ cells per slot
  std::vector<ClassId> best_;     // per-slot cached argmin
};

}  // namespace

Result<SolveResult> ReEquilibrate(const Instance& inst,
                                  const Assignment& previous,
                                  std::span<const NodeId> touched,
                                  const SolverOptions& options) {
  Stopwatch total_sw;
  const NodeId n = inst.num_users();
  const ClassId k = inst.num_classes();
  if (k == 0) return Status::InvalidArgument("instance has no classes");
  if (options.max_rounds == 0) {
    return Status::InvalidArgument("max_rounds must be positive");
  }
  if (previous.size() > n) {
    return Status::InvalidArgument("previous assignment larger than |V|");
  }
  for (const ClassId p : previous) {
    if (p >= k) {
      return Status::InvalidArgument("previous assignment names class " +
                                     std::to_string(p) + " of " +
                                     std::to_string(k));
    }
  }
  for (const NodeId v : touched) {
    if (v >= n) return Status::InvalidArgument("touched vertex out of range");
  }

  SolveResult res;
  const std::vector<double> max_sc = internal::ComputeMaxSocialCosts(inst);
  const kernels::Kernels& kn = kernels::ResolveKernels(options.kernels);

  // Seed: the previous equilibrium, with appended users at their closest
  // class (they must appear in `touched`, so they get examined below).
  Assignment& a = res.assignment;
  a.assign(previous.begin(), previous.end());
  a.resize(n);
  {
    std::vector<double> cost(k);
    for (NodeId v = static_cast<NodeId>(previous.size()); v < n; ++v) {
      inst.AssignmentCostsFor(v, cost.data());
      a[v] = static_cast<ClassId>(kn.argmin_d(cost.data(), k));
    }
  }

  LazyTable table(inst, kn);

  // Worklist: touched ∪ 1-hop frontier, deduplicated, in a deterministic
  // FIFO. `queued` only marks "waiting in the queue" — a vertex examined
  // and later perturbed again re-enters.
  std::vector<NodeId> queue;
  std::vector<char> queued(n, 0);
  const auto push = [&](NodeId v) {
    if (queued[v]) return;
    queued[v] = 1;
    queue.push_back(v);
    ++res.counters.worklist_pushes;
  };
  {
    std::vector<NodeId> seed(touched.begin(), touched.end());
    std::sort(seed.begin(), seed.end());
    seed.erase(std::unique(seed.begin(), seed.end()), seed.end());
    for (const NodeId v : seed) push(v);
    for (const NodeId v : seed) {
      for (const Neighbor& nb : inst.graph().neighbors(v)) push(nb.node);
    }
  }

  res.init_millis = total_sw.ElapsedMillis();

  // Drain. Each examination reads the (lazily built, incrementally
  // patched) row of one vertex; a switch patches materialized neighbor
  // rows and wakes the neighborhood. Termination: switches strictly
  // decrease Φ (Lemma 2), and between switches the queue only shrinks.
  const uint64_t exam_cap =
      static_cast<uint64_t>(options.max_rounds) * std::max<NodeId>(n, 1);
  const double social = 1.0 - inst.alpha();
  uint64_t examinations = 0;
  bool timed_out = false;
  size_t head = 0;
  while (head < queue.size()) {
    if ((examinations & 1023u) == 0 && internal::StopRequested(options)) {
      timed_out = true;
      break;
    }
    if (examinations >= exam_cap) break;
    const NodeId v = queue[head++];
    queued[v] = 0;
    if (!table.has_row(v)) table.Materialize(v, a, max_sc.data(), &res.counters);
    ++examinations;
    ++res.counters.best_response_evals;
    double* row = table.row(v);
    const ClassId best = table.best(v);
    if (!StrictlyBetter(row[best], row[a[v]])) continue;

    const ClassId old = a[v];
    a[v] = best;
    for (const Neighbor& nb : inst.graph().neighbors(v)) {
      const NodeId f = nb.node;
      if (table.has_row(f)) {
        double* frow = table.row(f);
        const double delta = social * 0.5 * nb.weight;
        frow[best] -= delta;
        ArgminOnDecrease(frow, best, &table.best(f));
        frow[old] += delta;
        if (ArgminOnIncrease(kn, frow, k, old, &table.best(f))) {
          ++res.counters.argmin_cache_repairs;
        }
        res.counters.gt_incremental_updates += 2;
        if (a[f] == old || StrictlyBetter(frow[table.best(f)], frow[a[f]])) {
          push(f);
        }
      } else {
        // No row yet: enqueue conservatively; the examination builds the
        // row against the post-switch assignment, so it is exact.
        push(f);
      }
    }
  }

  res.timed_out = timed_out;
  res.converged = !timed_out && head >= queue.size();
  res.rounds = res.converged || examinations > 0 ? 1 : 0;
  internal::FinalizeResult(inst, &res);
  res.total_millis = total_sw.ElapsedMillis();

  if (res.converged) {
    // The tentpole proof obligation: the incrementally repaired state is
    // a real equilibrium, indistinguishable in Φ-validity from a cold
    // solve. Compiled-but-dead unless RMGP_DCHECKS=ON.
    RMGP_DCHECK_OK(VerifyEquilibrium(inst, a));
  }
  return res;
}

}  // namespace rmgp
