#ifndef RMGP_CORE_GAME_ANALYSIS_H_
#define RMGP_CORE_GAME_ANALYSIS_H_

#include <vector>

#include "core/instance.h"
#include "core/objective.h"
#include "core/solver.h"

namespace rmgp {

/// Empirical study of an instance's equilibrium landscape (§2.2's quality
/// measures, measured instead of bounded): run the dynamics from many
/// random starts and record the spread of equilibria reached.
struct EquilibriumSample {
  uint32_t num_starts = 0;
  double best = 0.0;    ///< lowest equilibrium objective seen
  double worst = 0.0;   ///< highest equilibrium objective seen
  double mean = 0.0;
  /// worst/best — an empirical lower bound on the instance's PoA/PoS gap.
  double spread = 0.0;
  Assignment best_assignment;
};

struct MultiStartOptions {
  uint32_t num_starts = 16;
  uint64_t seed = 123;
  SolverKind kind = SolverKind::kGlobalTable;
  /// Per-start options; init is forced to kRandom, seed varied per start.
  SolverOptions solver;
};

/// Runs `num_starts` random-initialization games and aggregates the
/// equilibria. The best assignment doubles as a practical multi-start
/// solver ("RMGP_ms"): the spread tells how much a single random start
/// can lose.
Result<EquilibriumSample> SampleEquilibria(const Instance& inst,
                                           const MultiStartOptions& options);

/// The empirical price-of-anarchy ratio of a sample against a known lower
/// bound on the optimum (e.g. the UML LP relaxation value). Returns
/// worst/lower_bound; 0 if lower_bound <= 0.
double EmpiricalPoA(const EquilibriumSample& sample, double lower_bound);

}  // namespace rmgp

#endif  // RMGP_CORE_GAME_ANALYSIS_H_
