#include "core/instance.h"

#include <string>

namespace rmgp {

Result<Instance> Instance::Create(const Graph* graph,
                                  std::shared_ptr<const CostProvider> costs,
                                  double alpha) {
  if (graph == nullptr) return Status::InvalidArgument("graph is null");
  if (costs == nullptr) return Status::InvalidArgument("costs is null");
  if (costs->num_users() != graph->num_nodes()) {
    return Status::InvalidArgument(
        "cost provider covers " + std::to_string(costs->num_users()) +
        " users but the graph has " + std::to_string(graph->num_nodes()));
  }
  if (!(alpha > 0.0 && alpha < 1.0)) {
    return Status::InvalidArgument("alpha must be in (0,1)");
  }
  if (costs->num_classes() == 0) {
    return Status::InvalidArgument("need at least one class");
  }
  return Instance(graph, std::move(costs), alpha);
}

}  // namespace rmgp
