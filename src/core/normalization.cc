#include "core/normalization.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"

namespace rmgp {

NormalizationEstimates ComputeEstimatesExact(const Instance& inst) {
  const NodeId n = inst.num_users();
  const ClassId k = inst.num_classes();
  RunningStats min_stats, med_stats;
  std::vector<double> row(k);
  for (NodeId v = 0; v < n; ++v) {
    // Raw (unscaled) costs: CN is estimated from the original measurements.
    inst.costs().CostsFor(v, row.data());
    min_stats.Add(*std::min_element(row.begin(), row.end()));
    med_stats.Add(Median(row));
  }
  return {min_stats.mean(), med_stats.mean()};
}

double OptimisticConstant(const Graph& g, ClassId k,
                          const NormalizationEstimates& est) {
  return g.average_degree() * g.average_edge_weight() /
         (2.0 * est.dist_min * std::sqrt(static_cast<double>(k)));
}

double PessimisticConstant(const Graph& g, ClassId k,
                           const NormalizationEstimates& est) {
  return g.average_degree() * (static_cast<double>(k) - 1.0) *
         g.average_edge_weight() /
         (2.0 * est.dist_med * static_cast<double>(k));
}

Result<double> Normalize(Instance* inst, NormalizationPolicy policy,
                         const NormalizationEstimates& est) {
  if (inst == nullptr) return Status::InvalidArgument("inst is null");
  switch (policy) {
    case NormalizationPolicy::kNone:
      inst->set_cost_scale(1.0);
      return 1.0;
    case NormalizationPolicy::kOptimistic: {
      if (est.dist_min <= 0.0) {
        return Status::FailedPrecondition(
            "optimistic normalization needs dist_min > 0");
      }
      const double cn =
          OptimisticConstant(inst->graph(), inst->num_classes(), est);
      inst->set_cost_scale(cn);
      return cn;
    }
    case NormalizationPolicy::kPessimistic: {
      if (est.dist_med <= 0.0) {
        return Status::FailedPrecondition(
            "pessimistic normalization needs dist_med > 0");
      }
      if (inst->num_classes() < 2) {
        return Status::FailedPrecondition(
            "pessimistic normalization needs k >= 2 (CN is 0 for k = 1)");
      }
      const double cn =
          PessimisticConstant(inst->graph(), inst->num_classes(), est);
      inst->set_cost_scale(cn);
      return cn;
    }
  }
  return Status::InvalidArgument("unknown normalization policy");
}

Result<double> NormalizeExact(Instance* inst, NormalizationPolicy policy) {
  if (inst == nullptr) return Status::InvalidArgument("inst is null");
  if (policy == NormalizationPolicy::kNone) {
    inst->set_cost_scale(1.0);
    return 1.0;
  }
  return Normalize(inst, policy, ComputeEstimatesExact(*inst));
}

}  // namespace rmgp
