#ifndef RMGP_CORE_CAPACITATED_H_
#define RMGP_CORE_CAPACITATED_H_

#include <vector>

#include "core/instance.h"
#include "core/objective.h"
#include "core/solver.h"

namespace rmgp {

/// Extension beyond the core paper (its §2.1 cites the variant as [16]):
/// LAGP where events carry minimum / maximum participation constraints.
/// Events that cannot reach their minimum are canceled and their users
/// re-enter the game.
struct CapacityOptions {
  /// Per-class maximum participants; kUnbounded lifts the cap.
  static constexpr uint32_t kUnbounded = UINT32_MAX;
  std::vector<uint32_t> max_participants;
  /// Per-class minimum participants (0 = no minimum). Checked after the
  /// dynamics converge; violators are canceled smallest-first.
  std::vector<uint32_t> min_participants;
  /// Safety bound on cancel-and-replay passes.
  uint32_t max_cancellation_passes = 64;
};

struct CapacitatedResult {
  Assignment assignment;
  std::vector<bool> canceled;        ///< per class
  std::vector<uint32_t> class_size;  ///< participants per class
  bool converged = false;
  /// True if some class stayed below its minimum because canceling it
  /// would leave too little total capacity for all users.
  bool min_infeasible = false;
  uint32_t rounds = 0;  ///< best-response rounds across all passes
  CostBreakdown objective;
};

/// Capacity-constrained best-response dynamics. Each user may move only to
/// an active class with a free slot (or stay); every accepted move still
/// strictly decreases the potential Φ, so each pass converges to a
/// *constrained* Nash equilibrium — no user can improve by a feasible
/// unilateral deviation. After convergence, active classes below their
/// minimum are canceled smallest-first and their users re-enter.
///
/// Requires Σ max_participants >= |V| over non-canceled classes.
Result<CapacitatedResult> SolveCapacitated(const Instance& inst,
                                           const CapacityOptions& capacity,
                                           const SolverOptions& options);

/// Verifies a constrained equilibrium: no user can strictly improve by
/// moving to an active class that has a free slot.
Status VerifyCapacitatedEquilibrium(const Instance& inst,
                                    const CapacityOptions& capacity,
                                    const CapacitatedResult& result,
                                    double tolerance = 1e-9);

}  // namespace rmgp

#endif  // RMGP_CORE_CAPACITATED_H_
