#ifndef RMGP_CORE_INSTANCE_H_
#define RMGP_CORE_INSTANCE_H_

#include <memory>
#include <vector>

#include "core/cost_provider.h"
#include "graph/graph.h"
#include "util/status.h"

namespace rmgp {

/// A complete RMGP problem: the social graph G = (V, E, W), the query-time
/// classes P (represented by their cost provider), the preference
/// parameter α ∈ (0,1), and an optional normalization constant CN (§3.3)
/// that scales every assignment cost.
///
/// An Instance does not own the graph (queries over the same graph are
/// frequent — RMGP is an online task); it shares ownership of the cost
/// provider. Instances are cheap to copy.
class Instance {
 public:
  /// Validates and builds an instance. Fails if the provider's user count
  /// differs from |V|, if α ∉ (0,1), or if k == 0.
  static Result<Instance> Create(const Graph* graph,
                                 std::shared_ptr<const CostProvider> costs,
                                 double alpha);

  const Graph& graph() const { return *graph_; }
  const CostProvider& costs() const { return *costs_; }
  double alpha() const { return alpha_; }
  ClassId num_classes() const { return costs_->num_classes(); }
  NodeId num_users() const { return graph_->num_nodes(); }

  /// Normalization constant CN (1.0 when not normalized).
  double cost_scale() const { return cost_scale_; }

  /// Sets the normalization constant CN; assignment costs become
  /// CN · c(v, p) everywhere (Equation 7).
  void set_cost_scale(double scale) { cost_scale_ = scale; }

  /// Normalized assignment cost CN · c(v, p).
  double AssignmentCost(NodeId v, ClassId p) const {
    return cost_scale_ * costs_->Cost(v, p);
  }

  /// Fills out[0..k) with normalized assignment costs for user v.
  void AssignmentCostsFor(NodeId v, double* out) const {
    costs_->CostsFor(v, out);
    if (cost_scale_ != 1.0) {
      const ClassId k = num_classes();
      for (ClassId p = 0; p < k; ++p) out[p] *= cost_scale_;
    }
  }

  /// Half the total weight of edges incident to v: W_v = ½·Σ_f w(v,f).
  /// This is the maximum social cost maxSC_v of Fig 3 divided by (1-α).
  double HalfIncidentWeight(NodeId v) const {
    return 0.5 * graph_->weighted_degree(v);
  }

 private:
  Instance(const Graph* graph, std::shared_ptr<const CostProvider> costs,
           double alpha)
      : graph_(graph), costs_(std::move(costs)), alpha_(alpha) {}

  const Graph* graph_;
  std::shared_ptr<const CostProvider> costs_;
  double alpha_;
  double cost_scale_ = 1.0;
};

}  // namespace rmgp

#endif  // RMGP_CORE_INSTANCE_H_
