#include "core/capacitated.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <string>

#include "core/solver_internal.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace rmgp {

using internal::StrictlyBetter;

namespace {

/// Per-user total cost of class p given the current assignment, reusing
/// the Fig 3 bookkeeping (scratch holds all k costs after the call).
void FillCosts(const Instance& inst, const Assignment& a,
               const std::vector<double>& max_sc, NodeId v,
               double* scratch) {
  const ClassId k = inst.num_classes();
  inst.AssignmentCostsFor(v, scratch);
  const double alpha = inst.alpha();
  for (ClassId p = 0; p < k; ++p) {
    scratch[p] = alpha * scratch[p] + max_sc[v];
  }
  for (const Neighbor& nb : inst.graph().neighbors(v)) {
    scratch[a[nb.node]] -= (1.0 - alpha) * 0.5 * nb.weight;
  }
}

uint64_t ActiveCapacity(const CapacityOptions& capacity,
                        const std::vector<bool>& canceled) {
  uint64_t total = 0;
  for (ClassId p = 0; p < canceled.size(); ++p) {
    if (canceled[p]) continue;
    if (capacity.max_participants[p] == CapacityOptions::kUnbounded) {
      return std::numeric_limits<uint64_t>::max();
    }
    total += capacity.max_participants[p];
  }
  return total;
}

}  // namespace

Result<CapacitatedResult> SolveCapacitated(const Instance& inst,
                                           const CapacityOptions& capacity,
                                           const SolverOptions& options) {
  const NodeId n = inst.num_users();
  const ClassId k = inst.num_classes();
  if (capacity.max_participants.size() != k ||
      capacity.min_participants.size() != k) {
    return Status::InvalidArgument(
        "capacity vectors must have one entry per class");
  }
  for (ClassId p = 0; p < k; ++p) {
    if (capacity.max_participants[p] != CapacityOptions::kUnbounded &&
        capacity.min_participants[p] > capacity.max_participants[p]) {
      return Status::InvalidArgument("class " + std::to_string(p) +
                                     " has min > max");
    }
  }
  if (Status s = internal::ValidateOptions(inst, options); !s.ok()) return s;

  CapacitatedResult res;
  res.canceled.assign(k, false);
  if (ActiveCapacity(capacity, res.canceled) < n) {
    return Status::FailedPrecondition(
        "total event capacity is below the number of users");
  }

  Rng rng(options.seed);
  const std::vector<NodeId> order = internal::MakeOrder(inst, options, &rng);
  const std::vector<double> max_sc = internal::ComputeMaxSocialCosts(inst);
  std::vector<double> scratch(k);

  // Capacity-aware initialization: users (in play order) take the cheapest
  // class that still has a free slot.
  res.class_size.assign(k, 0);
  res.assignment.assign(n, 0);
  auto has_slot = [&](ClassId p) {
    return !res.canceled[p] &&
           res.class_size[p] < capacity.max_participants[p];
  };
  auto greedy_place = [&](NodeId v) {
    inst.AssignmentCostsFor(v, scratch.data());
    ClassId best = UINT32_MAX;
    for (ClassId p = 0; p < k; ++p) {
      if (has_slot(p) && (best == UINT32_MAX || scratch[p] < scratch[best])) {
        best = p;
      }
    }
    RMGP_CHECK_NE(best, UINT32_MAX);  // guaranteed by the capacity check
    res.assignment[v] = best;
    ++res.class_size[best];
  };
  for (NodeId v : order) greedy_place(v);

  // Cancel-and-replay passes.
  for (uint32_t pass = 0; pass < capacity.max_cancellation_passes; ++pass) {
    // Constrained best-response dynamics: moves restricted to classes with
    // free slots. Each accepted move strictly decreases Φ, so the loop
    // terminates (same Lemma 2 argument with a smaller strategy set).
    res.converged = false;
    for (uint32_t round = 1; round <= options.max_rounds; ++round) {
      uint64_t deviations = 0;
      for (NodeId v : order) {
        FillCosts(inst, res.assignment, max_sc, v, scratch.data());
        const ClassId cur = res.assignment[v];
        ClassId best = cur;
        for (ClassId p = 0; p < k; ++p) {
          if (p != cur && has_slot(p) && scratch[p] < scratch[best]) {
            best = p;
          }
        }
        if (best != cur && StrictlyBetter(scratch[best], scratch[cur])) {
          --res.class_size[cur];
          ++res.class_size[best];
          res.assignment[v] = best;
          ++deviations;
        }
      }
      ++res.rounds;
      if (deviations == 0) {
        res.converged = true;
        break;
      }
    }
    if (!res.converged) break;

    // Find the smallest active class below its minimum.
    ClassId victim = UINT32_MAX;
    for (ClassId p = 0; p < k; ++p) {
      if (res.canceled[p] || res.class_size[p] >= capacity.min_participants[p]) {
        continue;
      }
      if (victim == UINT32_MAX ||
          res.class_size[p] < res.class_size[victim]) {
        victim = p;
      }
    }
    if (victim == UINT32_MAX) break;  // every active class meets its min

    // Cancel it unless that would strand users without capacity.
    std::vector<bool> after = res.canceled;
    after[victim] = true;
    if (ActiveCapacity(capacity, after) < n) {
      res.min_infeasible = true;
      break;
    }
    res.canceled[victim] = true;
    std::vector<NodeId> displaced;
    for (NodeId v : order) {
      if (res.assignment[v] == victim) displaced.push_back(v);
    }
    res.class_size[victim] = 0;
    for (NodeId v : displaced) greedy_place(v);
  }

  res.objective = EvaluateObjective(inst, res.assignment);
  return res;
}

Status VerifyCapacitatedEquilibrium(const Instance& inst,
                                    const CapacityOptions& capacity,
                                    const CapacitatedResult& result,
                                    double tolerance) {
  RMGP_RETURN_IF_ERROR(ValidateAssignment(inst, result.assignment));
  const ClassId k = inst.num_classes();
  std::vector<uint32_t> size(k, 0);
  for (ClassId p : result.assignment) ++size[p];
  for (ClassId p = 0; p < k; ++p) {
    if (size[p] != result.class_size[p]) {
      return Status::FailedPrecondition("class_size bookkeeping mismatch");
    }
    if (result.canceled[p] && size[p] > 0) {
      return Status::FailedPrecondition(
          "canceled class " + std::to_string(p) + " still has users");
    }
    if (size[p] > capacity.max_participants[p]) {
      return Status::FailedPrecondition("class " + std::to_string(p) +
                                        " exceeds its capacity");
    }
  }
  const std::vector<double> max_sc =
      internal::ComputeMaxSocialCosts(inst);
  std::vector<double> scratch(k);
  for (NodeId v = 0; v < inst.num_users(); ++v) {
    FillCosts(inst, result.assignment, max_sc, v, scratch.data());
    const ClassId cur = result.assignment[v];
    for (ClassId p = 0; p < k; ++p) {
      if (p == cur || result.canceled[p] ||
          size[p] >= capacity.max_participants[p]) {
        continue;
      }
      if (scratch[p] < scratch[cur] - tolerance) {
        return Status::FailedPrecondition(
            "user " + std::to_string(v) + " can feasibly deviate to class " +
            std::to_string(p));
      }
    }
  }
  return Status::OK();
}

}  // namespace rmgp
