#include "core/solver.h"

#include <algorithm>
#include <memory>

#include "core/solver_audit.h"
#include "core/solver_internal.h"
#include "util/dcheck.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace rmgp {

using internal::BestResponseReduced;
using internal::ReducedStrategies;
using internal::StrictlyBetter;

namespace internal {

Assignment MakeReducedInitialAssignment(const Instance& inst,
                                        const SolverOptions& options,
                                        const ReducedStrategies& rs,
                                        Rng* rng) {
  Assignment a = MakeInitialAssignment(inst, options, rng);
  std::vector<double> row(inst.num_classes());
  for (NodeId v = 0; v < inst.num_users(); ++v) {
    if (rs.forced[v] != ReducedStrategies::kNoForced) {
      // §4.1: a user with a single valid strategy is assigned directly and
      // removed from the game.
      a[v] = rs.forced[v];
    } else if (options.init == InitPolicy::kRandom) {
      // Random initialization draws from the reduced space so that round 1
      // does not start from strategies already proven impossible.
      const auto cands = rs.StrategiesOf(v);
      a[v] = cands[rng->UniformInt(cands.size())];
    } else if (options.init == InitPolicy::kGiven) {
      // A warm-start strategy outside the valid region would deviate in
      // round 1 regardless; snap it to the cheapest class (always valid).
      const auto cands = rs.StrategiesOf(v);
      if (!std::binary_search(cands.begin(), cands.end(), a[v])) {
        inst.AssignmentCostsFor(v, row.data());
        a[v] = static_cast<ClassId>(
            std::min_element(row.begin(), row.end()) - row.begin());
      }
    }
  }
  return a;
}

}  // namespace internal

/// RMGP_se (§4.1): the baseline loop over the reduced strategy space S'_v;
/// users whose space is a single class are fixed up-front and skipped.
Result<SolveResult> SolveStrategyElimination(const Instance& inst,
                                             const SolverOptions& options) {
  Status s = internal::ValidateOptions(inst, options);
  if (!s.ok()) return s;

  Stopwatch total_sw;
  Rng rng(options.seed);
  SolveResult res;

  Stopwatch init_sw;
  ReducedStrategies rs;
  {
    // The valid-region build is the only parallelizable phase here; the
    // best-response rounds stay sequential, so the pool's scope ends with
    // round 0. The reduced space is stitched in node order, so results are
    // identical with or without the pool.
    std::unique_ptr<ThreadPool> pool;
    if (options.num_threads > 1 &&
        static_cast<size_t>(inst.num_users()) * inst.num_classes() >=
            internal::kMinCellsForParallelInit) {
      pool = std::make_unique<ThreadPool>(options.num_threads);
    }
    rs = internal::ComputeReducedStrategies(inst, pool.get());
    if (pool != nullptr) res.counters.thread_busy_millis = pool->BusyMillis();
  }
  res.eliminated_users = rs.eliminated_users;
  res.pruned_strategies = rs.pruned_strategies;
  res.counters.eliminated_users = rs.eliminated_users;
  res.counters.pruned_strategies = rs.pruned_strategies;
  res.assignment =
      internal::MakeReducedInitialAssignment(inst, options, rs, &rng);
  std::vector<NodeId> order = internal::MakeOrder(inst, options, &rng);
  // Remove eliminated users from the play order entirely.
  std::erase_if(order, [&](NodeId v) {
    return rs.forced[v] != ReducedStrategies::kNoForced;
  });
  const std::vector<double> max_sc = internal::ComputeMaxSocialCosts(inst);
  res.init_millis = init_sw.ElapsedMillis();
  if (options.record_rounds) {
    RoundStats rs0;
    rs0.round = 0;
    rs0.millis = res.init_millis;
    if (options.record_potential) {
      rs0.potential = EvaluatePotential(inst, res.assignment);
    }
    res.round_stats.push_back(rs0);
  }

  double audit_phi =
      kDChecksEnabled ? EvaluatePotential(inst, res.assignment) : 0.0;
  std::vector<double> scratch(inst.num_classes());
  for (uint32_t round = 1; round <= options.max_rounds; ++round) {
    if (internal::StopRequested(options)) {
      res.timed_out = true;
      break;
    }
    Stopwatch round_sw;
    uint64_t deviations = 0;
    for (NodeId v : order) {
      const BestResponse br = BestResponseReduced(inst, res.assignment, v,
                                                  max_sc, rs, scratch.data());
      if (StrictlyBetter(br.best_cost, br.current_cost)) {
        res.assignment[v] = br.best_class;
        ++deviations;
      }
    }
    res.rounds = round;
    res.counters.best_response_evals += order.size();
    if (options.record_rounds) {
      RoundStats st;
      st.round = round;
      st.deviations = deviations;
      st.examined = order.size();
      st.millis = round_sw.ElapsedMillis();
      if (options.record_potential) {
        st.potential = EvaluatePotential(inst, res.assignment);
      }
      res.round_stats.push_back(st);
    }
    if (kDChecksEnabled) {
      RMGP_DCHECK_OK(audit::CheckForcedRespected(rs, res.assignment));
      if (deviations > 0) {
        RMGP_DCHECK_OK(audit::CheckPotentialDecreased(inst, res.assignment,
                                                      audit_phi, &audit_phi));
      }
    }
    if (deviations == 0) {
      res.converged = true;
      break;
    }
  }

  internal::FinalizeResult(inst, &res);
  res.total_millis = total_sw.ElapsedMillis();
  return res;
}

}  // namespace rmgp
