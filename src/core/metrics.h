#ifndef RMGP_CORE_METRICS_H_
#define RMGP_CORE_METRICS_H_

#include <vector>

#include "core/instance.h"
#include "core/objective.h"

namespace rmgp {

/// Analysis of a solution beyond the raw objective — what a deployment
/// would actually monitor (per-event attendance, how far users travel,
/// how social the grouping is).
struct SolutionMetrics {
  /// Users per class.
  std::vector<uint32_t> class_sizes;
  /// Classes with at least one user.
  uint32_t classes_used = 0;
  /// Mean raw (unscaled) assignment cost over users.
  double mean_assignment_cost = 0.0;
  /// Mean over users of (cost of own class − min class cost): the "price"
  /// each user pays for the social term.
  double mean_assignment_regret = 0.0;
  /// Users assigned to their individually cheapest class.
  uint32_t users_at_cheapest = 0;
  /// Fraction of edge weight inside classes (1 − cut fraction).
  double internal_weight_fraction = 0.0;
  /// Newman modularity of the class partition over the social graph:
  /// Q = Σ_c (w_in_c/W − (deg_c/2W)²), with W the total edge weight.
  double modularity = 0.0;
};

/// Computes all metrics for a valid assignment.
SolutionMetrics ComputeSolutionMetrics(const Instance& inst,
                                       const Assignment& assignment);

/// Newman modularity of an arbitrary node partition (values in
/// [-0.5, 1]); exposed separately for the community-recovery tests.
double Modularity(const Graph& g, const std::vector<uint32_t>& part);

}  // namespace rmgp

#endif  // RMGP_CORE_METRICS_H_
