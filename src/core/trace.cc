#include "core/trace.h"

#include <cstdio>

#include "core/solver_internal.h"
#include "util/stopwatch.h"

namespace rmgp {

using internal::BestResponseScratch;
using internal::StrictlyBetter;

Result<GameTrace> TraceGame(const Instance& inst,
                            const SolverOptions& options) {
  if (Status s = internal::ValidateOptions(inst, options); !s.ok()) return s;

  Stopwatch total_sw;
  Rng rng(options.seed);
  GameTrace trace;
  SolveResult& res = trace.result;

  res.assignment = internal::MakeInitialAssignment(inst, options, &rng);
  trace.initial = res.assignment;
  const std::vector<NodeId> order = internal::MakeOrder(inst, options, &rng);
  const std::vector<double> max_sc = internal::ComputeMaxSocialCosts(inst);

  const ClassId k = inst.num_classes();
  const kernels::Kernels& kn = kernels::ResolveKernels(options.kernels);
  std::vector<double> scratch(k);
  for (uint32_t round = 1; round <= options.max_rounds; ++round) {
    uint64_t deviations = 0;
    for (NodeId v : order) {
      const BestResponse br =
          BestResponseScratch(inst, res.assignment, v, max_sc, kn,
                              scratch.data());
      TraceStep step;
      step.round = round;
      step.player = v;
      step.class_costs.assign(scratch.begin(), scratch.end());
      step.previous_class = res.assignment[v];
      step.chosen_class = step.previous_class;
      if (StrictlyBetter(br.best_cost, br.current_cost)) {
        res.assignment[v] = br.best_class;
        step.chosen_class = br.best_class;
        step.deviated = true;
        ++deviations;
      }
      trace.steps.push_back(std::move(step));
    }
    res.rounds = round;
    if (deviations == 0) {
      res.converged = true;
      break;
    }
  }

  internal::FinalizeResult(inst, &res);
  res.total_millis = total_sw.ElapsedMillis();
  return trace;
}

std::string GameTrace::ToString() const {
  std::string out;
  char buf[64];
  uint32_t current_round = 0;
  for (const TraceStep& step : steps) {
    if (step.round != current_round) {
      current_round = step.round;
      std::snprintf(buf, sizeof(buf), "--- round %u ---\n", current_round);
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), "v%-3u |", step.player);
    out += buf;
    // The minimum cost gets a '*' (the best response, Table 1's underline).
    size_t best = 0;
    for (size_t p = 1; p < step.class_costs.size(); ++p) {
      if (step.class_costs[p] < step.class_costs[best]) best = p;
    }
    for (size_t p = 0; p < step.class_costs.size(); ++p) {
      std::snprintf(buf, sizeof(buf), " %8.4f%c", step.class_costs[p],
                    p == best ? '*' : ' ');
      out += buf;
    }
    if (step.deviated) {
      std::snprintf(buf, sizeof(buf), "  p%u <- p%u", step.chosen_class,
                    step.previous_class);
      out += buf;
    }
    out += '\n';
  }
  std::snprintf(buf, sizeof(buf), "equilibrium after %u rounds\n",
                result.rounds);
  out += buf;
  return out;
}

}  // namespace rmgp
