#include "core/subgraph_game.h"

#include <algorithm>
#include <string>

#include "graph/traversal.h"

namespace rmgp {
namespace {

/// Cost provider over a subset of users: user i of the sub-instance is
/// `participants[i]` of the parent provider.
class SubsetCostProvider : public CostProvider {
 public:
  SubsetCostProvider(const CostProvider* parent,
                     std::vector<NodeId> participants)
      : parent_(parent), participants_(std::move(participants)) {}

  NodeId num_users() const override {
    return static_cast<NodeId>(participants_.size());
  }
  ClassId num_classes() const override { return parent_->num_classes(); }
  double Cost(NodeId v, ClassId p) const override {
    return parent_->Cost(participants_[v], p);
  }
  void CostsFor(NodeId v, double* out) const override {
    parent_->CostsFor(participants_[v], out);
  }

 private:
  const CostProvider* parent_;
  std::vector<NodeId> participants_;
};

}  // namespace

std::shared_ptr<const CostProvider> MakeSubsetCostProvider(
    const CostProvider* parent, std::vector<NodeId> participants) {
  return std::make_shared<SubsetCostProvider>(parent,
                                              std::move(participants));
}

Result<SubgraphSolveResult> SolveSubgraph(
    const Instance& inst, const std::vector<NodeId>& participants,
    SolverKind kind, const SolverOptions& options) {
  if (participants.empty()) {
    return Status::InvalidArgument("no participants in the area of interest");
  }
  std::vector<NodeId> sorted = participants;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] >= inst.num_users()) {
      return Status::InvalidArgument("participant " +
                                     std::to_string(sorted[i]) +
                                     " out of range");
    }
    if (i > 0 && sorted[i] == sorted[i - 1]) {
      return Status::InvalidArgument("duplicate participant " +
                                     std::to_string(sorted[i]));
    }
  }

  SubgraphSolveResult out;
  out.participants = sorted;

  const Graph sub = InducedSubgraph(inst.graph(), sorted);
  auto costs = std::make_shared<SubsetCostProvider>(&inst.costs(), sorted);
  auto sub_inst = Instance::Create(&sub, std::move(costs), inst.alpha());
  if (!sub_inst.ok()) return sub_inst.status();
  sub_inst->set_cost_scale(inst.cost_scale());

  // Warm starts arrive in original-id space; project them down.
  SolverOptions sub_options = options;
  if (options.init == InitPolicy::kGiven) {
    if (Status s = ValidateAssignment(inst, options.warm_start); !s.ok()) {
      return s;
    }
    sub_options.warm_start.resize(sorted.size());
    for (size_t i = 0; i < sorted.size(); ++i) {
      sub_options.warm_start[i] = options.warm_start[sorted[i]];
    }
  }

  auto solved = Solve(kind, *sub_inst, sub_options);
  if (!solved.ok()) return solved.status();
  out.solve = std::move(solved).value();

  out.full_assignment.assign(inst.num_users(),
                             SubgraphSolveResult::kNotParticipating);
  for (size_t i = 0; i < sorted.size(); ++i) {
    out.full_assignment[sorted[i]] = out.solve.assignment[i];
  }
  return out;
}

std::vector<NodeId> SelectUsersInBox(const std::vector<Point>& locations,
                                     const BoundingBox& box) {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < locations.size(); ++v) {
    if (box.Contains(locations[v])) out.push_back(v);
  }
  return out;
}

}  // namespace rmgp
