#include "core/metrics.h"

#include <algorithm>

#include "util/logging.h"

namespace rmgp {

double Modularity(const Graph& g, const std::vector<uint32_t>& part) {
  RMGP_CHECK_EQ(part.size(), g.num_nodes());
  const double total_weight = g.total_edge_weight();
  if (total_weight <= 0.0) return 0.0;
  uint32_t num_parts = 0;
  for (uint32_t p : part) num_parts = std::max(num_parts, p + 1);
  std::vector<double> internal(num_parts, 0.0);
  std::vector<double> degree(num_parts, 0.0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    degree[part[v]] += g.weighted_degree(v);
    for (const Neighbor& nb : g.neighbors(v)) {
      if (v < nb.node && part[v] == part[nb.node]) {
        internal[part[v]] += nb.weight;
      }
    }
  }
  double q = 0.0;
  for (uint32_t c = 0; c < num_parts; ++c) {
    const double in_frac = internal[c] / total_weight;
    const double deg_frac = degree[c] / (2.0 * total_weight);
    q += in_frac - deg_frac * deg_frac;
  }
  return q;
}

SolutionMetrics ComputeSolutionMetrics(const Instance& inst,
                                       const Assignment& assignment) {
  RMGP_CHECK(ValidateAssignment(inst, assignment).ok());
  const NodeId n = inst.num_users();
  const ClassId k = inst.num_classes();

  SolutionMetrics m;
  m.class_sizes.assign(k, 0);
  std::vector<double> row(k);
  for (NodeId v = 0; v < n; ++v) {
    ++m.class_sizes[assignment[v]];
    inst.costs().CostsFor(v, row.data());
    const double own = row[assignment[v]];
    const double best = *std::min_element(row.begin(), row.end());
    m.mean_assignment_cost += own;
    m.mean_assignment_regret += own - best;
    if (own <= best * (1.0 + 1e-12) + 1e-300) ++m.users_at_cheapest;
  }
  if (n > 0) {
    m.mean_assignment_cost /= n;
    m.mean_assignment_regret /= n;
  }
  for (uint32_t size : m.class_sizes) {
    if (size > 0) ++m.classes_used;
  }

  const Graph& g = inst.graph();
  double internal = 0.0;
  for (NodeId v = 0; v < n; ++v) {
    for (const Neighbor& nb : g.neighbors(v)) {
      if (v < nb.node && assignment[v] == assignment[nb.node]) {
        internal += nb.weight;
      }
    }
  }
  m.internal_weight_fraction =
      g.total_edge_weight() > 0 ? internal / g.total_edge_weight() : 0.0;
  m.modularity = Modularity(g, assignment);
  return m;
}

}  // namespace rmgp
