#include "core/solver.h"

namespace rmgp {

Result<SolveResult> Solve(SolverKind kind, const Instance& inst,
                          const SolverOptions& options) {
  switch (kind) {
    case SolverKind::kBaseline:
      return SolveBaseline(inst, options);
    case SolverKind::kStrategyElimination:
      return SolveStrategyElimination(inst, options);
    case SolverKind::kIndependentSets:
      return SolveIndependentSets(inst, options);
    case SolverKind::kGlobalTable:
      return SolveGlobalTable(inst, options);
    case SolverKind::kAll:
      return SolveAll(inst, options);
  }
  return Status::InvalidArgument("unknown solver kind");
}

const char* SolverKindName(SolverKind kind) {
  switch (kind) {
    case SolverKind::kBaseline:
      return "RMGP_b";
    case SolverKind::kStrategyElimination:
      return "RMGP_se";
    case SolverKind::kIndependentSets:
      return "RMGP_is";
    case SolverKind::kGlobalTable:
      return "RMGP_gt";
    case SolverKind::kAll:
      return "RMGP_all";
  }
  return "?";
}

}  // namespace rmgp
