#ifndef RMGP_CORE_OBJECTIVE_H_
#define RMGP_CORE_OBJECTIVE_H_

#include <vector>

#include "core/instance.h"
#include "util/status.h"

namespace rmgp {

/// An assignment maps every user v to a class s_v (the strategic vector).
using Assignment = std::vector<ClassId>;

/// Objective-function decomposition of Equation 1:
///   total = α·Σ_v CN·c(v,s_v)  +  (1-α)·Σ_{cut edges} w_e
struct CostBreakdown {
  double assignment = 0.0;  ///< α·Σ_v CN·c(v, s_v)
  double social = 0.0;      ///< (1-α)·Σ_{(u,v)∈E, s_u≠s_v} w_uv
  double total = 0.0;       ///< assignment + social

  /// Raw (un-α-weighted) sums, useful for the normalization figures that
  /// plot assignment vs social cost directly.
  double raw_assignment = 0.0;  ///< Σ_v CN·c(v, s_v)
  double raw_social = 0.0;      ///< Σ_{cut edges} w_uv
};

/// Checks that `a` is a valid strategic vector for `inst` (right size, all
/// classes in range).
Status ValidateAssignment(const Instance& inst, const Assignment& a);

/// Evaluates Equation 1 for the assignment (must be valid).
[[nodiscard]] CostBreakdown EvaluateObjective(const Instance& inst,
                                              const Assignment& a);

/// Evaluates the potential function Φ of Equation 4: like the objective,
/// but each cut edge contributes half its weight.
[[nodiscard]] double EvaluatePotential(const Instance& inst,
                                       const Assignment& a);

/// Per-user cost C_v of Equation 3 for the current strategies.
[[nodiscard]] double UserCost(const Instance& inst, const Assignment& a,
                              NodeId v);

/// Per-user cost of user v if it deviated to class p, holding everyone
/// else fixed.
double UserCostIfAssigned(const Instance& inst, const Assignment& a, NodeId v,
                          ClassId p);

/// Best response of user v against `a`: the class minimizing C_v (lowest
/// id on ties) and its cost.
struct BestResponse {
  ClassId best_class = 0;
  double best_cost = 0.0;
  double current_cost = 0.0;
};
BestResponse ComputeBestResponse(const Instance& inst, const Assignment& a,
                                 NodeId v);

/// Verifies that `a` is a pure Nash equilibrium: no user can strictly
/// reduce C_v by a unilateral deviation beyond a *relative* tolerance —
/// a deviation counts only when it improves by more than
/// tolerance * (1 + |current cost|), so instances with costs around 1e9
/// are judged by the same yardstick as unit-scale ones. Returns
/// FailedPrecondition naming the first profitable deviation otherwise.
Status VerifyEquilibrium(const Instance& inst, const Assignment& a,
                         double tolerance = 1e-9);

/// A lower bound on Equation 1 over *all* assignments: every user at its
/// cheapest class and no cut edges, i.e. α·Σ_v min_p CN·c(v,p). Social
/// cost is nonnegative, so objective(a) >= bound for every valid a; the
/// serving layer divides a served objective by this to get a realized
/// optimality gap (the per-query analogue of EmpiricalPoA).
[[nodiscard]] double ObjectiveLowerBound(const Instance& inst);

/// The Theorem 2 upper bound on the price of anarchy:
///   PoA <= 1 + ((1-α)/α) · (deg_avg · w_avg) / (2 · c_avg),
/// where c_avg is the average minimum (normalized) per-user assignment cost.
[[nodiscard]] double PriceOfAnarchyBound(const Instance& inst);

/// Number of users whose class differs between two assignments (the
/// "users re-assigned" counts of Fig 9's discussion).
[[nodiscard]] uint64_t CountReassigned(const Assignment& before,
                                       const Assignment& after);

}  // namespace rmgp

#endif  // RMGP_CORE_OBJECTIVE_H_
