#include "core/cost_provider.h"

#include "util/logging.h"

namespace rmgp {

void CostProvider::CostsFor(NodeId v, double* out) const {
  const ClassId k = num_classes();
  for (ClassId p = 0; p < k; ++p) out[p] = Cost(v, p);
}

DenseCostMatrix::DenseCostMatrix(NodeId num_users, ClassId num_classes,
                                 std::vector<double> costs)
    : num_users_(num_users),
      num_classes_(num_classes),
      costs_(std::move(costs)) {
  RMGP_CHECK_EQ(costs_.size(),
                static_cast<size_t>(num_users_) * num_classes_);
}

void DenseCostMatrix::CostsFor(NodeId v, double* out) const {
  const double* row = costs_.data() + static_cast<size_t>(v) * num_classes_;
  for (ClassId p = 0; p < num_classes_; ++p) out[p] = row[p];
}

EuclideanCostProvider::EuclideanCostProvider(std::vector<Point> users,
                                             std::vector<Point> events)
    : users_(std::move(users)), events_(std::move(events)) {
  RMGP_CHECK(!events_.empty());
}

void EuclideanCostProvider::CostsFor(NodeId v, double* out) const {
  const Point u = users_[v];
  for (size_t p = 0; p < events_.size(); ++p) {
    out[p] = Distance(u, events_[p]);
  }
}

std::shared_ptr<DenseCostMatrix> Materialize(const CostProvider& provider) {
  const NodeId n = provider.num_users();
  const ClassId k = provider.num_classes();
  std::vector<double> data(static_cast<size_t>(n) * k);
  for (NodeId v = 0; v < n; ++v) {
    provider.CostsFor(v, data.data() + static_cast<size_t>(v) * k);
  }
  return std::make_shared<DenseCostMatrix>(n, k, std::move(data));
}

}  // namespace rmgp
