#ifndef RMGP_CORE_NORMALIZATION_H_
#define RMGP_CORE_NORMALIZATION_H_

#include "core/instance.h"
#include "util/status.h"

namespace rmgp {

/// Which heuristic of §3.3 estimates the normalization constant CN.
enum class NormalizationPolicy {
  kNone,        ///< raw RMGP: CN = 1
  kOptimistic,  ///< CN_opt  = (deg_avg · w_avg) / (2 · dist_min · √k)
  kPessimistic, ///< CN_pess = (deg_avg · (k-1) · w_avg) / (2 · dist_med · k)
};

/// Application-dependent inputs to the CN estimators: the average minimum
/// and average median assignment cost per user. For LAGP these are
/// distances (see EstimateDistances); for TAGP, dissimilarities; for
/// multi-criteria costs, whatever the combined score is.
struct NormalizationEstimates {
  double dist_min = 0.0;  ///< avg over users of min_p c(v, p)
  double dist_med = 0.0;  ///< avg over users of median_p c(v, p)
};

/// Computes the estimates exactly from an instance's own cost provider
/// (O(|V|·k)); convenient for small/medium instances and for TAGP costs
/// where no spatial shortcut exists.
NormalizationEstimates ComputeEstimatesExact(const Instance& inst);

/// The §3.3 optimistic constant:
///   AC ≈ dist_min, SC ≈ deg_avg·w_avg/√k  ⇒  CN = deg_avg·w_avg/(2·dist_min·√k).
double OptimisticConstant(const Graph& g, ClassId k,
                          const NormalizationEstimates& est);

/// The §3.3 pessimistic constant:
///   AC ≈ dist_med, SC ≈ deg_avg·w_avg·(k-1)/k ⇒
///   CN = deg_avg·(k-1)·w_avg/(2·dist_med·k).
double PessimisticConstant(const Graph& g, ClassId k,
                           const NormalizationEstimates& est);

/// Sets inst->cost_scale() to the chosen CN (kNone resets it to 1).
/// Returns the constant applied. Fails if the relevant estimate is zero
/// (normalization of an all-zero cost matrix is meaningless).
Result<double> Normalize(Instance* inst, NormalizationPolicy policy,
                         const NormalizationEstimates& est);

/// Convenience: computes exact estimates and applies the policy.
Result<double> NormalizeExact(Instance* inst, NormalizationPolicy policy);

}  // namespace rmgp

#endif  // RMGP_CORE_NORMALIZATION_H_
