#ifndef RMGP_CORE_SOLVER_INTERNAL_H_
#define RMGP_CORE_SOLVER_INTERNAL_H_

#include <atomic>
#include <chrono>
#include <cmath>
#include <span>
#include <vector>

#include "core/instance.h"
#include "core/kernels.h"
#include "core/objective.h"
#include "core/solver.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace rmgp {
namespace internal {

/// A deviation must beat the current strategy by more than this relative
/// margin; guards against floating-point noise causing infinite oscillation
/// (the potential argument of Lemma 2 assumes strict improvement).
inline constexpr double kImprovementEps = 1e-12;

/// True iff `candidate` is strictly better than `current` beyond tolerance.
inline bool StrictlyBetter(double candidate, double current) {
  return candidate < current - kImprovementEps * (1.0 + std::abs(current));
}

/// True iff the run should stop early (anytime mode): the cancel token is
/// set or the deadline has passed. The token is read first — it is a cheap
/// relaxed load, while the deadline costs a clock read — and the clock is
/// only consulted when a deadline was actually set. Solvers call this at
/// round boundaries only, so completed runs are bit-identical to runs
/// without a deadline.
inline bool StopRequested(const SolverOptions& options) {
  if (options.cancel_token != nullptr &&
      options.cancel_token->load(std::memory_order_relaxed)) {
    return true;
  }
  return options.deadline != std::chrono::steady_clock::time_point::max() &&
         std::chrono::steady_clock::now() >= options.deadline;
}

/// Below this many table cells (|V|·k, or Σ|S'_v| for reduced tables) the
/// round-0 builds of RMGP_gt/all/pq stay sequential: spinning up a pool
/// costs more than the build itself.
inline constexpr size_t kMinCellsForParallelInit = size_t{1} << 16;

/// Maintains the lowest-index-argmin cache of a global-table row after the
/// cell at index `i` *decreased* (a friend joined class i). O(1): the new
/// minimum is either the old one or cell i; on an exact tie the lower index
/// wins, matching the strict `<` left-to-right scan the cache replaces.
inline void ArgminOnDecrease(const double* row, ClassId i, ClassId* best) {
  if (row[i] < row[*best] || (row[i] == row[*best] && i < *best)) {
    *best = i;
  }
}

/// Same, after the cell at `i` *increased* (a friend left class i). O(1)
/// unless the cached best itself got dearer, in which case the row must be
/// rescanned — with `kn.argmin_d` (core/kernels.h), whose lowest-index
/// tie-break matches the strict `<` scan this cache replaces. Returns true
/// iff a repair scan ran (SolverCounters::argmin_cache_repairs); `len` is
/// the row length.
inline bool ArgminOnIncrease(const kernels::Kernels& kn, const double* row,
                             ClassId len, ClassId i, ClassId* best) {
  if (i != *best) return false;
  *best = static_cast<ClassId>(kn.argmin_d(row, len));
  return true;
}

/// Validates options (warm start shape etc.).
Status ValidateOptions(const Instance& inst, const SolverOptions& options);

/// Builds the initial strategic vector per options.init (Fig 3 line 2 or
/// the "+i" closest-class heuristic).
Assignment MakeInitialAssignment(const Instance& inst,
                                 const SolverOptions& options, Rng* rng);

/// Builds the player examination order per options.order.
std::vector<NodeId> MakeOrder(const Instance& inst,
                              const SolverOptions& options, Rng* rng);

/// Fills the final SolveResult fields (objective, potential) from the
/// assignment.
void FinalizeResult(const Instance& inst, SolveResult* result);

/// Per-user reduced strategy space from §4.1. Lists are stored flattened:
/// strategies of user v are classes[offsets[v] .. offsets[v+1]).
struct ReducedStrategies {
  std::vector<uint64_t> offsets;   // |V|+1
  std::vector<ClassId> classes;    // Σ|S'_v|
  std::vector<ClassId> forced;     // forced[v] = only strategy, or kNoForced
  uint64_t eliminated_users = 0;
  uint64_t pruned_strategies = 0;  // (v,p) pairs pruned
  double build_millis = 0.0;

  static constexpr ClassId kNoForced = UINT32_MAX;

  std::span<const ClassId> StrategiesOf(NodeId v) const {
    return {classes.data() + offsets[v], classes.data() + offsets[v + 1]};
  }
};

/// Computes valid regions VR_v = c(v, s_min) + ((1-α)/α)·W_v and keeps only
/// strategies with assignment cost <= VR_v (§4.1). Never prunes a possible
/// best response. With a pool, per-user regions are computed in parallel
/// chunks and stitched in node order — output is identical to the
/// sequential build.
ReducedStrategies ComputeReducedStrategies(const Instance& inst,
                                           ThreadPool* pool = nullptr);

/// Round 0 of RMGP_gt/pq (Fig 5 lines 1-6): materializes the dense |V|×k
/// global table GT[v][p] = C_v(p, π) into `table` and the lowest-index
/// argmin of each row into `best`. Rows only read `a`, so with a pool they
/// are built in parallel chunks; per-row arithmetic order is fixed, making
/// the result bit-identical to the sequential build. The affine row
/// transform and the row argmin run through `kn` (core/kernels.h) — every
/// backend is bit-identical, so neither the table nor `best` depends on
/// the kernel choice.
void BuildDenseGlobalTable(const Instance& inst, const Assignment& a,
                           const std::vector<double>& max_sc,
                           const kernels::Kernels& kn, ThreadPool* pool,
                           double* table, ClassId* best);

/// Precomputed maxSC_v = (1-α)·½·Σ_f w(v,f) for every user (Fig 3 line 3).
std::vector<double> ComputeMaxSocialCosts(const Instance& inst);

/// Fig 3 lines 6-13 for one player: computes the per-class costs of user v
/// into `scratch` (size k) and returns the best class/cost plus the cost of
/// the current strategy. `max_sc` is the precomputed maxSC_v array; the
/// dense row transform and argmin run through `kn`.
BestResponse BestResponseScratch(const Instance& inst, const Assignment& a,
                                 NodeId v, const std::vector<double>& max_sc,
                                 const kernels::Kernels& kn, double* scratch);

/// Same, but restricted to the reduced strategy list of v (§4.1).
/// `scratch` must have size k; entries outside the list are untouched.
BestResponse BestResponseReduced(const Instance& inst, const Assignment& a,
                                 NodeId v, const std::vector<double>& max_sc,
                                 const ReducedStrategies& rs, double* scratch);

/// Initial assignment respecting a reduced strategy space: forced users get
/// their only strategy; random initialization draws from S'_v.
Assignment MakeReducedInitialAssignment(const Instance& inst,
                                        const SolverOptions& options,
                                        const ReducedStrategies& rs,
                                        Rng* rng);

}  // namespace internal
}  // namespace rmgp

#endif  // RMGP_CORE_SOLVER_INTERNAL_H_
