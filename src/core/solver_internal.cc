#include "core/solver_internal.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"
#include "util/stopwatch.h"

namespace rmgp {
namespace internal {

Status ValidateOptions(const Instance& inst, const SolverOptions& options) {
  if (options.init == InitPolicy::kGiven) {
    RMGP_RETURN_IF_ERROR(ValidateAssignment(inst, options.warm_start));
  }
  if (options.max_rounds == 0) {
    return Status::InvalidArgument("max_rounds must be positive");
  }
  return Status::OK();
}

Assignment MakeInitialAssignment(const Instance& inst,
                                 const SolverOptions& options, Rng* rng) {
  const NodeId n = inst.num_users();
  const ClassId k = inst.num_classes();
  Assignment a(n);
  switch (options.init) {
    case InitPolicy::kRandom:
      for (NodeId v = 0; v < n; ++v) {
        a[v] = static_cast<ClassId>(rng->UniformInt(k));
      }
      break;
    case InitPolicy::kClosestClass: {
      // kernels argmin == std::min_element: both keep the first (lowest
      // index) occurrence of the minimum.
      const kernels::Kernels& kn = kernels::ResolveKernels(options.kernels);
      std::vector<double> cost(k);
      for (NodeId v = 0; v < n; ++v) {
        inst.AssignmentCostsFor(v, cost.data());
        a[v] = static_cast<ClassId>(kn.argmin_d(cost.data(), k));
      }
      break;
    }
    case InitPolicy::kGiven:
      a = options.warm_start;
      break;
  }
  return a;
}

std::vector<NodeId> MakeOrder(const Instance& inst,
                              const SolverOptions& options, Rng* rng) {
  const NodeId n = inst.num_users();
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  switch (options.order) {
    case OrderPolicy::kRandom:
      rng->Shuffle(&order);
      break;
    case OrderPolicy::kDegreeDesc:
      std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
        return inst.graph().degree(a) > inst.graph().degree(b);
      });
      break;
    case OrderPolicy::kDegreeAsc:
      std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
        return inst.graph().degree(a) < inst.graph().degree(b);
      });
      break;
    case OrderPolicy::kNodeId:
      break;
  }
  return order;
}

void FinalizeResult(const Instance& inst, SolveResult* result) {
  result->objective = EvaluateObjective(inst, result->assignment);
  result->potential =
      result->objective.assignment + 0.5 * result->objective.social;
}

namespace {

/// §4.1 valid region of one user: appends the surviving strategies of v to
/// `out` and returns their count. `cost` is caller-provided scratch (size k).
uint32_t ReduceUserStrategies(const Instance& inst, NodeId v, double* cost,
                              std::vector<ClassId>* out) {
  const ClassId k = inst.num_classes();
  const double alpha = inst.alpha();
  inst.AssignmentCostsFor(v, cost);
  const double c_min = *std::min_element(cost, cost + k);
  // VR_v = c(v, s_min) + ((1-α)/α)·W_v  (Equation in §4.1): strategies
  // whose assignment cost exceeds VR_v can never beat s_min even if all
  // friends adopt them.
  const double vr = c_min + (1.0 - alpha) / alpha * inst.HalfIncidentWeight(v);
  uint32_t kept = 0;
  for (ClassId p = 0; p < k; ++p) {
    if (cost[p] <= vr + kImprovementEps * (1.0 + std::abs(vr))) {
      out->push_back(p);
      ++kept;
    }
  }
  RMGP_CHECK_GE(kept, 1u);
  return kept;
}

/// Chunk size aiming at ~8 chunks per worker: fine enough for dynamic load
/// balance, coarse enough that the claiming fetch_add is noise.
size_t BuildGrain(size_t n, const ThreadPool& pool) {
  const size_t target_chunks = pool.num_threads() * 8;
  return std::max<size_t>(1, (n + target_chunks - 1) / target_chunks);
}

}  // namespace

ReducedStrategies ComputeReducedStrategies(const Instance& inst,
                                           ThreadPool* pool) {
  Stopwatch sw;
  const NodeId n = inst.num_users();
  const ClassId k = inst.num_classes();

  ReducedStrategies rs;
  rs.offsets.assign(static_cast<size_t>(n) + 1, 0);
  rs.forced.assign(n, ReducedStrategies::kNoForced);

  const size_t cells = static_cast<size_t>(n) * k;
  if (pool == nullptr || pool->num_threads() <= 1 ||
      cells < kMinCellsForParallelInit) {
    rs.classes.reserve(n);  // at least one strategy per user
    std::vector<double> cost(k);
    for (NodeId v = 0; v < n; ++v) {
      const uint32_t kept = ReduceUserStrategies(inst, v, cost.data(),
                                                 &rs.classes);
      rs.offsets[v + 1] = rs.offsets[v] + kept;
      rs.pruned_strategies += k - kept;
      if (kept == 1) {
        rs.forced[v] = rs.classes[rs.offsets[v]];
        ++rs.eliminated_users;
      }
    }
    rs.build_millis = sw.ElapsedMillis();
    return rs;
  }

  // Parallel build: each chunk appends its users' surviving strategies to a
  // chunk-local buffer (chunk id = begin/grain is a pure function of the
  // range, so buffers line up in node order regardless of which worker ran
  // them); the sequential stitch below concatenates buffers and derives
  // offsets/forced — byte-identical to the sequential path.
  const size_t grain = BuildGrain(n, *pool);
  const size_t num_chunks = (static_cast<size_t>(n) + grain - 1) / grain;
  std::vector<std::vector<ClassId>> chunk_classes(num_chunks);
  std::vector<uint32_t> kept(n, 0);
  pool->ParallelFor(0, n, grain, [&](size_t begin, size_t end, size_t slot) {
    double* cost = pool->ScratchDoubles(slot, k);
    std::vector<ClassId>& out = chunk_classes[begin / grain];
    out.reserve(end - begin);
    for (size_t v = begin; v < end; ++v) {
      kept[v] = ReduceUserStrategies(inst, static_cast<NodeId>(v), cost, &out);
    }
  });
  for (NodeId v = 0; v < n; ++v) {
    rs.offsets[v + 1] = rs.offsets[v] + kept[v];
    rs.pruned_strategies += k - kept[v];
    if (kept[v] == 1) ++rs.eliminated_users;
  }
  rs.classes.resize(rs.offsets[n]);
  size_t pos = 0;
  for (const std::vector<ClassId>& chunk : chunk_classes) {
    std::copy(chunk.begin(), chunk.end(), rs.classes.begin() + pos);
    pos += chunk.size();
  }
  for (NodeId v = 0; v < n; ++v) {
    if (kept[v] == 1) rs.forced[v] = rs.classes[rs.offsets[v]];
  }
  rs.build_millis = sw.ElapsedMillis();
  return rs;
}

void BuildDenseGlobalTable(const Instance& inst, const Assignment& a,
                           const std::vector<double>& max_sc,
                           const kernels::Kernels& kn, ThreadPool* pool,
                           double* table, ClassId* best) {
  const NodeId n = inst.num_users();
  const ClassId k = inst.num_classes();
  const double alpha = inst.alpha();
  const double social_factor = 1.0 - alpha;
  const auto build_rows = [&](size_t row_begin, size_t row_end, size_t) {
    for (size_t v = row_begin; v < row_end; ++v) {
      double* row = table + v * k;
      inst.AssignmentCostsFor(static_cast<NodeId>(v), row);
      kn.cost_row_d(row, k, alpha, max_sc[v]);
      for (const Neighbor& nb :
           inst.graph().neighbors(static_cast<NodeId>(v))) {
        row[a[nb.node]] -= social_factor * 0.5 * nb.weight;
      }
      best[v] = static_cast<ClassId>(kn.argmin_d(row, k));
    }
  };
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->ParallelFor(0, n, BuildGrain(n, *pool), build_rows);
  } else {
    build_rows(0, n, 0);
  }
}

}  // namespace internal
}  // namespace rmgp
