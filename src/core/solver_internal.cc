#include "core/solver_internal.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"
#include "util/stopwatch.h"

namespace rmgp {
namespace internal {

Status ValidateOptions(const Instance& inst, const SolverOptions& options) {
  if (options.init == InitPolicy::kGiven) {
    RMGP_RETURN_IF_ERROR(ValidateAssignment(inst, options.warm_start));
  }
  if (options.max_rounds == 0) {
    return Status::InvalidArgument("max_rounds must be positive");
  }
  return Status::OK();
}

Assignment MakeInitialAssignment(const Instance& inst,
                                 const SolverOptions& options, Rng* rng) {
  const NodeId n = inst.num_users();
  const ClassId k = inst.num_classes();
  Assignment a(n);
  switch (options.init) {
    case InitPolicy::kRandom:
      for (NodeId v = 0; v < n; ++v) {
        a[v] = static_cast<ClassId>(rng->UniformInt(k));
      }
      break;
    case InitPolicy::kClosestClass: {
      std::vector<double> cost(k);
      for (NodeId v = 0; v < n; ++v) {
        inst.AssignmentCostsFor(v, cost.data());
        a[v] = static_cast<ClassId>(
            std::min_element(cost.begin(), cost.end()) - cost.begin());
      }
      break;
    }
    case InitPolicy::kGiven:
      a = options.warm_start;
      break;
  }
  return a;
}

std::vector<NodeId> MakeOrder(const Instance& inst,
                              const SolverOptions& options, Rng* rng) {
  const NodeId n = inst.num_users();
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  switch (options.order) {
    case OrderPolicy::kRandom:
      rng->Shuffle(&order);
      break;
    case OrderPolicy::kDegreeDesc:
      std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
        return inst.graph().degree(a) > inst.graph().degree(b);
      });
      break;
    case OrderPolicy::kDegreeAsc:
      std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
        return inst.graph().degree(a) < inst.graph().degree(b);
      });
      break;
    case OrderPolicy::kNodeId:
      break;
  }
  return order;
}

void FinalizeResult(const Instance& inst, SolveResult* result) {
  result->objective = EvaluateObjective(inst, result->assignment);
  result->potential =
      result->objective.assignment + 0.5 * result->objective.social;
}

ReducedStrategies ComputeReducedStrategies(const Instance& inst) {
  Stopwatch sw;
  const NodeId n = inst.num_users();
  const ClassId k = inst.num_classes();
  const double alpha = inst.alpha();

  ReducedStrategies rs;
  rs.offsets.assign(static_cast<size_t>(n) + 1, 0);
  rs.forced.assign(n, ReducedStrategies::kNoForced);
  rs.classes.reserve(n);  // at least one strategy per user

  std::vector<double> cost(k);
  for (NodeId v = 0; v < n; ++v) {
    inst.AssignmentCostsFor(v, cost.data());
    const double c_min = *std::min_element(cost.begin(), cost.end());
    // VR_v = c(v, s_min) + ((1-α)/α)·W_v  (Equation in §4.1): strategies
    // whose assignment cost exceeds VR_v can never beat s_min even if all
    // friends adopt them.
    const double vr =
        c_min + (1.0 - alpha) / alpha * inst.HalfIncidentWeight(v);
    uint32_t kept = 0;
    for (ClassId p = 0; p < k; ++p) {
      if (cost[p] <= vr + kImprovementEps * (1.0 + std::abs(vr))) {
        rs.classes.push_back(p);
        ++kept;
      }
    }
    RMGP_CHECK_GE(kept, 1u);
    rs.offsets[v + 1] = rs.offsets[v] + kept;
    rs.pruned_strategies += k - kept;
    if (kept == 1) {
      rs.forced[v] = rs.classes[rs.offsets[v]];
      ++rs.eliminated_users;
    }
  }
  rs.build_millis = sw.ElapsedMillis();
  return rs;
}

}  // namespace internal
}  // namespace rmgp
