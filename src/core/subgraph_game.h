#ifndef RMGP_CORE_SUBGRAPH_GAME_H_
#define RMGP_CORE_SUBGRAPH_GAME_H_

#include <vector>

#include "core/instance.h"
#include "core/objective.h"
#include "core/solver.h"
#include "spatial/point.h"

namespace rmgp {

/// Result of an area-of-interest (subgraph) query: the equilibrium over
/// the induced sub-game plus the mapping back to original user ids.
struct SubgraphSolveResult {
  /// The participants, ascending; index-aligned with `solve.assignment`.
  std::vector<NodeId> participants;
  /// Solver outcome over the induced instance.
  SolveResult solve;

  /// Class of original user `v`, or kNotParticipating.
  static constexpr ClassId kNotParticipating = UINT32_MAX;
  std::vector<ClassId> full_assignment;  ///< size = original |V|
};

/// Solves RMGP restricted to `participants` (§1: "for some tasks only a
/// subset of the network, determined at query time, may participate" —
/// e.g. users who recently checked in inside an area of interest). The
/// induced subgraph keeps only edges between participants; costs and α are
/// inherited from `inst` (including its normalization constant).
///
/// `participants` must be distinct, in range, and non-empty.
Result<SubgraphSolveResult> SolveSubgraph(
    const Instance& inst, const std::vector<NodeId>& participants,
    SolverKind kind, const SolverOptions& options);

/// Convenience for LAGP: the users whose check-in lies inside `box`,
/// ascending. `locations` is indexed by user id.
std::vector<NodeId> SelectUsersInBox(const std::vector<Point>& locations,
                                     const BoundingBox& box);

/// A cost provider restricted to a subset of users: user i of the view is
/// `participants[i]` of `parent` (which must outlive the view). Used by
/// the subgraph game and the decentralized area-of-interest queries.
std::shared_ptr<const CostProvider> MakeSubsetCostProvider(
    const CostProvider* parent, std::vector<NodeId> participants);

}  // namespace rmgp

#endif  // RMGP_CORE_SUBGRAPH_GAME_H_
