#include "core/game_analysis.h"

#include <algorithm>
#include <limits>

#include "util/rng.h"

namespace rmgp {

Result<EquilibriumSample> SampleEquilibria(
    const Instance& inst, const MultiStartOptions& options) {
  if (options.num_starts == 0) {
    return Status::InvalidArgument("num_starts must be positive");
  }
  Rng rng(options.seed);
  EquilibriumSample sample;
  sample.best = std::numeric_limits<double>::infinity();
  sample.worst = -std::numeric_limits<double>::infinity();
  double sum = 0.0;
  for (uint32_t start = 0; start < options.num_starts; ++start) {
    SolverOptions opt = options.solver;
    opt.init = InitPolicy::kRandom;
    opt.seed = rng.Next();
    opt.record_rounds = false;
    auto res = Solve(options.kind, inst, opt);
    if (!res.ok()) return res.status();
    if (!res->converged) {
      return Status::Internal("dynamics failed to converge in a start");
    }
    const double total = res->objective.total;
    sum += total;
    if (total < sample.best) {
      sample.best = total;
      sample.best_assignment = std::move(res->assignment);
    }
    sample.worst = std::max(sample.worst, total);
    ++sample.num_starts;
  }
  sample.mean = sum / sample.num_starts;
  sample.spread = sample.best > 0 ? sample.worst / sample.best : 0.0;
  return sample;
}

double EmpiricalPoA(const EquilibriumSample& sample, double lower_bound) {
  if (lower_bound <= 0.0) return 0.0;
  return sample.worst / lower_bound;
}

}  // namespace rmgp
