#include <algorithm>
#include <limits>

#include "core/solver_internal.h"

namespace rmgp {
namespace internal {

std::vector<double> ComputeMaxSocialCosts(const Instance& inst) {
  const NodeId n = inst.num_users();
  std::vector<double> max_sc(n);
  const double factor = 1.0 - inst.alpha();
  for (NodeId v = 0; v < n; ++v) {
    max_sc[v] = factor * inst.HalfIncidentWeight(v);
  }
  return max_sc;
}

BestResponse BestResponseScratch(const Instance& inst, const Assignment& a,
                                 NodeId v, const std::vector<double>& max_sc,
                                 const kernels::Kernels& kn, double* scratch) {
  const ClassId k = inst.num_classes();
  const double alpha = inst.alpha();
  // Lines 7-8: cost_v[p] = α·c(v,p) + maxSC_v.
  inst.AssignmentCostsFor(v, scratch);
  kn.cost_row_d(scratch, k, alpha, max_sc[v]);
  // Lines 9-10: credit back friends' classes.
  const double social_factor = 1.0 - alpha;
  for (const Neighbor& nb : inst.graph().neighbors(v)) {
    scratch[a[nb.node]] -= social_factor * 0.5 * nb.weight;
  }
  // Lines 11-13: pick the minimum (lowest class id on ties).
  BestResponse br;
  br.current_cost = scratch[a[v]];
  br.best_class = static_cast<ClassId>(kn.argmin_d(scratch, k));
  br.best_cost = scratch[br.best_class];
  return br;
}

BestResponse BestResponseReduced(const Instance& inst, const Assignment& a,
                                 NodeId v, const std::vector<double>& max_sc,
                                 const ReducedStrategies& rs,
                                 double* scratch) {
  const auto candidates = rs.StrategiesOf(v);
  const double alpha = inst.alpha();
  const double msc = max_sc[v];
  for (ClassId p : candidates) {
    scratch[p] = alpha * inst.AssignmentCost(v, p) + msc;
  }
  const double social_factor = 1.0 - alpha;
  for (const Neighbor& nb : inst.graph().neighbors(v)) {
    // Classes outside the candidate list receive garbage updates here, but
    // they are never read below; avoiding the membership test keeps the
    // inner loop at O(deg).
    scratch[a[nb.node]] -= social_factor * 0.5 * nb.weight;
  }
  BestResponse br;
  const bool current_valid =
      std::binary_search(candidates.begin(), candidates.end(), a[v]);
  br.current_cost = current_valid ? scratch[a[v]]
                                  : std::numeric_limits<double>::infinity();
  br.best_class = candidates[0];
  br.best_cost = scratch[candidates[0]];
  for (size_t i = 1; i < candidates.size(); ++i) {
    const ClassId p = candidates[i];
    if (scratch[p] < br.best_cost) {
      br.best_cost = scratch[p];
      br.best_class = p;
    }
  }
  return br;
}

}  // namespace internal
}  // namespace rmgp
