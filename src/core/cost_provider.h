#ifndef RMGP_CORE_COST_PROVIDER_H_
#define RMGP_CORE_COST_PROVIDER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "spatial/point.h"
#include "util/status.h"

namespace rmgp {

/// Identifier of a class (a partition target: an event in LAGP, an
/// advertisement topic in TAGP). Classes are query-time input (the set P).
using ClassId = uint32_t;

/// Source of assignment costs c(v, p): the cost of assigning user v to
/// class p (Equation 1). Implementations may precompute a dense matrix or
/// compute costs on the fly; the paper's Foursquare runs (2.15M users ×
/// 1024 events) make lazy evaluation mandatory at the large end.
class CostProvider {
 public:
  virtual ~CostProvider() = default;

  /// Number of users the provider covers (must equal |V| of the instance).
  virtual NodeId num_users() const = 0;

  /// Number of classes k = |P|.
  virtual ClassId num_classes() const = 0;

  /// Assignment cost c(v, p) >= 0.
  virtual double Cost(NodeId v, ClassId p) const = 0;

  /// Fills out[0..num_classes) with the costs of every class for user v.
  /// Default implementation loops over Cost(); providers with cheaper bulk
  /// access may override.
  virtual void CostsFor(NodeId v, double* out) const;
};

/// Dense |V| × k cost matrix, row-major. The natural provider for small and
/// mid-size instances, and the form the UML baselines require as input.
class DenseCostMatrix : public CostProvider {
 public:
  /// Takes ownership of `costs` (size num_users * num_classes, row-major).
  DenseCostMatrix(NodeId num_users, ClassId num_classes,
                  std::vector<double> costs);

  NodeId num_users() const override { return num_users_; }
  ClassId num_classes() const override { return num_classes_; }
  double Cost(NodeId v, ClassId p) const override {
    return costs_[static_cast<size_t>(v) * num_classes_ + p];
  }
  void CostsFor(NodeId v, double* out) const override;

  /// Mutable access for builders/tests.
  double& At(NodeId v, ClassId p) {
    return costs_[static_cast<size_t>(v) * num_classes_ + p];
  }

 private:
  NodeId num_users_;
  ClassId num_classes_;
  std::vector<double> costs_;
};

/// Lazy Euclidean-distance costs for LAGP: c(v, p) = ||user_v, event_p||.
/// Nothing is materialized, matching the paper's Foursquare-scale runs
/// where round 0 performs billions of distance computations.
class EuclideanCostProvider : public CostProvider {
 public:
  EuclideanCostProvider(std::vector<Point> users, std::vector<Point> events);

  NodeId num_users() const override {
    return static_cast<NodeId>(users_.size());
  }
  ClassId num_classes() const override {
    return static_cast<ClassId>(events_.size());
  }
  double Cost(NodeId v, ClassId p) const override {
    return Distance(users_[v], events_[p]);
  }
  void CostsFor(NodeId v, double* out) const override;

  const std::vector<Point>& users() const { return users_; }
  const std::vector<Point>& events() const { return events_; }

 private:
  std::vector<Point> users_;
  std::vector<Point> events_;
};

/// Materializes any provider into a DenseCostMatrix (used to hand identical
/// inputs to the UML baselines, which need the full matrix).
std::shared_ptr<DenseCostMatrix> Materialize(const CostProvider& provider);

}  // namespace rmgp

#endif  // RMGP_CORE_COST_PROVIDER_H_
