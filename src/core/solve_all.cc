#include <algorithm>
#include <cstdint>

#include "core/solver.h"
#include "core/solver_audit.h"
#include "core/solver_internal.h"
#include "graph/coloring.h"
#include "util/dcheck.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace rmgp {

using internal::ReducedStrategies;
using internal::StrictlyBetter;

namespace {

/// Index of class p within the sorted candidate list, or UINT32_MAX.
constexpr uint32_t kNoIdx = UINT32_MAX;

uint32_t CandidateIndex(std::span<const ClassId> cands, ClassId p) {
  auto it = std::lower_bound(cands.begin(), cands.end(), p);
  if (it != cands.end() && *it == p) {
    return static_cast<uint32_t>(it - cands.begin());
  }
  return kNoIdx;
}

/// One accepted deviation of Phase A, to be applied to friends' rows.
struct Move {
  NodeId user;
  ClassId old_class;
  ClassId new_class;
};

/// One pending row delta gathered by Phase B1: friend f's cells at
/// idx_new / idx_old (kNoIdx = class not in S'_f) change by ∓delta.
struct RowUpdate {
  NodeId f;
  uint32_t idx_new;
  uint32_t idx_old;
  double delta;
};

}  // namespace

/// RMGP_all: the three optimizations of §4 combined —
///   * strategy elimination (§4.1) shrinks each user's row to S'_v, which
///     also bounds the global table's memory (the trade-off §4.3 calls out);
///   * the global table (§4.3) is maintained over the reduced rows, with a
///     per-row cached lowest-index argmin so examinations are O(1), and an
///     explicit per-color unhappy worklist instead of a flag scan;
///   * users are processed per color group (§4.2): within a group no user
///     is a friend of another, so decisions read only rows the group never
///     writes.
///
/// Each color group runs in three phases. Phase A decides all deviations
/// sequentially (O(1) per user off the argmin cache — decisions are
/// order-independent within a group, so sequencing them loses nothing but
/// fixes the order). Phase B1 gathers the friend-row deltas of all accepted
/// moves in parallel chunks (pure reads plus chunk-local buffers). Phase B2
/// applies the deltas sequentially in (move, neighbor) order — a canonical
/// order independent of both chunking and thread count, which makes the
/// floating-point state and hence the full trajectory invariant to
/// `num_threads` (the sharded-lock scheme this replaces applied deltas in
/// scheduling order).
Result<SolveResult> SolveAll(const Instance& inst,
                             const SolverOptions& options) {
  Status st = internal::ValidateOptions(inst, options);
  if (!st.ok()) return st;

  Stopwatch total_sw;
  Rng rng(options.seed);
  SolveResult res;

  const NodeId n = inst.num_users();
  const double social_factor = 1.0 - inst.alpha();
  const kernels::Kernels& kn = kernels::ResolveKernels(options.kernels);
  ThreadPool pool(options.num_threads);

  // ---- Round 0: elimination, coloring, initial strategies, reduced GT.
  Stopwatch init_sw;
  const ReducedStrategies rs = internal::ComputeReducedStrategies(inst, &pool);
  res.eliminated_users = rs.eliminated_users;
  res.pruned_strategies = rs.pruned_strategies;
  res.counters.eliminated_users = rs.eliminated_users;
  res.counters.pruned_strategies = rs.pruned_strategies;
  res.assignment = internal::MakeReducedInitialAssignment(inst, options, rs,
                                                          &rng);
  const std::vector<double> max_sc = internal::ComputeMaxSocialCosts(inst);

  Coloring coloring = GreedyColoring(inst.graph());
  std::vector<uint32_t> rank(n);
  {
    const std::vector<NodeId> order = internal::MakeOrder(inst, options, &rng);
    for (uint32_t i = 0; i < order.size(); ++i) rank[order[i]] = i;
    for (auto& group : coloring.groups) {
      // Eliminated users never deviate; drop them from the schedule.
      std::erase_if(group, [&](NodeId v) {
        return rs.forced[v] != ReducedStrategies::kNoForced;
      });
      std::sort(group.begin(), group.end(),
                [&](NodeId a, NodeId b) { return rank[a] < rank[b]; });
    }
  }

  // Reduced global table: values[i] is the total cost of candidate
  // rs.classes[i] for the user owning slot i; best_idx caches each row's
  // lowest-index argmin. Rows only read the initial assignment, so the
  // build is embarrassingly parallel.
  std::vector<double> values(rs.classes.size());
  std::vector<uint32_t> cur_idx(n);   // index of s_v within S'_v
  std::vector<uint32_t> best_idx(n);  // cached lowest-index argmin of row
  {
    const size_t grain =
        std::max<size_t>(64, n / (pool.num_threads() * 8 + 1));
    pool.ParallelFor(0, n, grain, [&](size_t begin, size_t end, size_t) {
      for (size_t vi = begin; vi < end; ++vi) {
        const NodeId v = static_cast<NodeId>(vi);
        const auto cands = rs.StrategiesOf(v);
        double* row = values.data() + rs.offsets[v];
        for (size_t i = 0; i < cands.size(); ++i) {
          row[i] = inst.alpha() * inst.AssignmentCost(v, cands[i]) + max_sc[v];
        }
        for (const Neighbor& nb : inst.graph().neighbors(v)) {
          const uint32_t idx = CandidateIndex(cands, res.assignment[nb.node]);
          if (idx != kNoIdx) row[idx] -= social_factor * 0.5 * nb.weight;
        }
        const uint32_t ci = CandidateIndex(cands, res.assignment[v]);
        RMGP_CHECK_NE(ci, kNoIdx);
        cur_idx[v] = ci;
        best_idx[v] = kn.argmin_d(row, cands.size());
      }
    });
  }

  // Per-color unhappy worklists. queued: 0 = not queued, 1 = scheduled for
  // the current round, 2 = for the next round. Seeding scans groups in
  // schedule order, so the initial lists are already rank-sorted.
  const size_t num_colors = coloring.groups.size();
  std::vector<std::vector<NodeId>> active_cur(num_colors);
  std::vector<std::vector<NodeId>> active_next(num_colors);
  std::vector<uint8_t> queued(n, 0);
  for (size_t c = 0; c < num_colors; ++c) {
    for (const NodeId v : coloring.groups[c]) {
      const double* row = values.data() + rs.offsets[v];
      if (StrictlyBetter(row[best_idx[v]], row[cur_idx[v]])) {
        active_cur[c].push_back(v);
        queued[v] = 1;
        ++res.counters.worklist_pushes;
      }
    }
  }
  res.init_millis = init_sw.ElapsedMillis();
  res.counters.gt_cells_built = rs.classes.size();
  res.counters.gt_rebuilds = 1;
  for (const std::vector<NodeId>& group : coloring.groups) {
    res.counters.color_group_sizes.push_back(group.size());
  }
  if (options.record_rounds) {
    RoundStats rs0;
    rs0.round = 0;
    rs0.millis = res.init_millis;
    if (options.record_potential) {
      rs0.potential = EvaluatePotential(inst, res.assignment);
    }
    res.round_stats.push_back(rs0);
  }

  if (kDChecksEnabled) {
    RMGP_DCHECK_OK(audit::CheckColorGroupsIndependent(inst.graph(), coloring));
  }
  double audit_phi =
      kDChecksEnabled ? EvaluatePotential(inst, res.assignment) : 0.0;

  std::vector<Move> moves;
  std::vector<std::vector<RowUpdate>> update_chunks;

  for (uint32_t round = 1; round <= options.max_rounds; ++round) {
    if (internal::StopRequested(options)) {
      res.timed_out = true;
      break;
    }
    Stopwatch round_sw;
    uint64_t deviations = 0;
    uint64_t examined = 0;
    for (size_t c = 0; c < num_colors; ++c) {
      std::vector<NodeId>& active = active_cur[c];
      if (active.empty()) continue;
      std::sort(active.begin(), active.end(),
                [&](NodeId a, NodeId b) { return rank[a] < rank[b]; });

      // Phase A: decide every deviation of this group. In-group rows are
      // not written until Phase B2, so each decision sees exactly the
      // state a simultaneous (Fig 4) evaluation would.
      moves.clear();
      for (const NodeId v : active) {
        queued[v] = 0;
        ++examined;
        const double* row = values.data() + rs.offsets[v];
        const uint32_t bv = best_idx[v];
        // May have turned happy again since it was enqueued.
        if (!StrictlyBetter(row[bv], row[cur_idx[v]])) continue;
        const auto cands = rs.StrategiesOf(v);
        const ClassId old_class = res.assignment[v];
        const ClassId new_class = cands[bv];
        res.assignment[v] = new_class;
        cur_idx[v] = bv;
        moves.push_back({v, old_class, new_class});
        ++deviations;
      }
      active.clear();
      if (moves.empty()) continue;

      // Phase B1: gather friend-row deltas in parallel. Chunk id
      // (= begin/grain) is a pure function of the range, so concatenating
      // buffers in chunk order yields (move, neighbor) order no matter
      // which worker ran which chunk or how many threads exist.
      const size_t grain = std::max<size_t>(
          32, moves.size() / (pool.num_threads() * 4 + 1));
      const size_t num_chunks = (moves.size() + grain - 1) / grain;
      update_chunks.assign(num_chunks, {});
      pool.ParallelFor(
          0, moves.size(), grain, [&](size_t begin, size_t end, size_t) {
            std::vector<RowUpdate>& out = update_chunks[begin / grain];
            for (size_t mi = begin; mi < end; ++mi) {
              const Move& m = moves[mi];
              for (const Neighbor& nb : inst.graph().neighbors(m.user)) {
                const NodeId f = nb.node;
                // Forced users never deviate and nobody reads their rows.
                if (rs.forced[f] != ReducedStrategies::kNoForced) continue;
                const auto fcands = rs.StrategiesOf(f);
                const uint32_t idx_new = CandidateIndex(fcands, m.new_class);
                const uint32_t idx_old = CandidateIndex(fcands, m.old_class);
                if (idx_new == kNoIdx && idx_old == kNoIdx) continue;
                out.push_back(
                    {f, idx_new, idx_old, social_factor * 0.5 * nb.weight});
              }
            }
          });

      // Phase B2: apply deltas sequentially in canonical order, maintain
      // the argmin caches, and enqueue friends that turned unhappy: a
      // friend in a later group of this round joins the current round,
      // anyone else waits for the next one (exactly when a flag scan
      // would next examine them).
      for (const std::vector<RowUpdate>& chunk : update_chunks) {
        for (const RowUpdate& u : chunk) {
          double* frow = values.data() + rs.offsets[u.f];
          const ClassId flen =
              static_cast<ClassId>(rs.offsets[u.f + 1] - rs.offsets[u.f]);
          if (u.idx_new != kNoIdx) {
            frow[u.idx_new] -= u.delta;
            internal::ArgminOnDecrease(frow, u.idx_new, &best_idx[u.f]);
            ++res.counters.gt_incremental_updates;
          }
          if (u.idx_old != kNoIdx) {
            frow[u.idx_old] += u.delta;
            if (internal::ArgminOnIncrease(kn, frow, flen, u.idx_old,
                                           &best_idx[u.f])) {
              ++res.counters.argmin_cache_repairs;
            }
            ++res.counters.gt_incremental_updates;
          }
          if (queued[u.f] == 0 &&
              StrictlyBetter(frow[best_idx[u.f]], frow[cur_idx[u.f]])) {
            ++res.counters.worklist_pushes;
            const size_t fc = coloring.color[u.f];
            if (fc > c) {
              queued[u.f] = 1;
              active_cur[fc].push_back(u.f);
            } else {
              queued[u.f] = 2;
              active_next[fc].push_back(u.f);
            }
          }
        }
      }
    }
    res.rounds = round;
    res.counters.best_response_evals += examined;
    if (options.record_rounds) {
      RoundStats stat;
      stat.round = round;
      stat.deviations = deviations;
      stat.examined = examined;
      stat.millis = round_sw.ElapsedMillis();
      if (options.record_potential) {
        stat.potential = EvaluatePotential(inst, res.assignment);
      }
      res.round_stats.push_back(stat);
    }
    if (kDChecksEnabled) {
      // All current-round lists are drained, so queued ∈ {0, 2}: anything
      // unhappy must be waiting in an active_next bucket.
      RMGP_DCHECK_OK(audit::CheckForcedRespected(rs, res.assignment));
      RMGP_DCHECK_OK(audit::CheckReducedTable(inst, res.assignment, max_sc, rs,
                                              values, cur_idx, best_idx,
                                              audit::SampleStride(n)));
      RMGP_DCHECK_OK(audit::CheckReducedWorklistComplete(
          inst, res.assignment, rs, values, cur_idx, best_idx, queued));
      if (deviations > 0) {
        RMGP_DCHECK_OK(audit::CheckPotentialDecreased(inst, res.assignment,
                                                      audit_phi, &audit_phi));
      }
    }
    if (deviations == 0) {
      res.converged = true;
      break;
    }
    for (size_t c = 0; c < num_colors; ++c) {
      active_cur[c].swap(active_next[c]);
      active_next[c].clear();
      for (const NodeId v : active_cur[c]) queued[v] = 1;
    }
  }

  res.counters.thread_busy_millis = pool.BusyMillis();
  internal::FinalizeResult(inst, &res);
  res.total_millis = total_sw.ElapsedMillis();
  return res;
}

}  // namespace rmgp
