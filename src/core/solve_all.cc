#include <algorithm>
#include <atomic>
#include <mutex>

#include "core/solver.h"
#include "core/solver_internal.h"
#include "graph/coloring.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace rmgp {

using internal::ReducedStrategies;
using internal::StrictlyBetter;

namespace {

/// Index of class p within the sorted candidate list, or SIZE_MAX.
size_t CandidateIndex(std::span<const ClassId> cands, ClassId p) {
  auto it = std::lower_bound(cands.begin(), cands.end(), p);
  if (it != cands.end() && *it == p) {
    return static_cast<size_t>(it - cands.begin());
  }
  return SIZE_MAX;
}

constexpr size_t kNumShards = 1024;

}  // namespace

/// RMGP_all: the three optimizations of §4 combined —
///   * strategy elimination (§4.1) shrinks each user's row to S'_v, which
///     also bounds the global table's memory (the trade-off §4.3 calls out);
///   * the global table (§4.3) is maintained over the reduced rows and only
///     unhappy users are examined;
///   * users are processed per color group (§4.2) across num_threads
///     workers; friends' row updates are serialized by sharded locks.
Result<SolveResult> SolveAll(const Instance& inst,
                             const SolverOptions& options) {
  Status st = internal::ValidateOptions(inst, options);
  if (!st.ok()) return st;

  Stopwatch total_sw;
  Rng rng(options.seed);
  SolveResult res;

  const NodeId n = inst.num_users();
  const double social_factor = 1.0 - inst.alpha();
  ThreadPool pool(options.num_threads);

  // ---- Round 0: elimination, coloring, initial strategies, reduced GT.
  Stopwatch init_sw;
  const ReducedStrategies rs = internal::ComputeReducedStrategies(inst);
  res.eliminated_users = rs.eliminated_users;
  res.pruned_strategies = rs.pruned_strategies;
  res.counters.eliminated_users = rs.eliminated_users;
  res.counters.pruned_strategies = rs.pruned_strategies;
  res.assignment = internal::MakeReducedInitialAssignment(inst, options, rs,
                                                          &rng);
  const std::vector<double> max_sc = internal::ComputeMaxSocialCosts(inst);

  Coloring coloring = GreedyColoring(inst.graph());
  {
    const std::vector<NodeId> order = internal::MakeOrder(inst, options, &rng);
    std::vector<uint32_t> rank(n);
    for (uint32_t i = 0; i < order.size(); ++i) rank[order[i]] = i;
    for (auto& group : coloring.groups) {
      // Eliminated users never deviate; drop them from the schedule.
      std::erase_if(group, [&](NodeId v) {
        return rs.forced[v] != ReducedStrategies::kNoForced;
      });
      std::sort(group.begin(), group.end(),
                [&](NodeId a, NodeId b) { return rank[a] < rank[b]; });
    }
  }

  // Reduced global table: values[i] is the total cost of candidate
  // rs.classes[i] for the user owning slot i.
  std::vector<double> values(rs.classes.size());
  std::vector<uint32_t> cur_idx(n);  // index of s_v within S'_v
  std::vector<char> happy(n);
  pool.ParallelFor(n, [&](size_t vi) {
    const NodeId v = static_cast<NodeId>(vi);
    const auto cands = rs.StrategiesOf(v);
    double* row = values.data() + rs.offsets[v];
    for (size_t i = 0; i < cands.size(); ++i) {
      row[i] = inst.alpha() * inst.AssignmentCost(v, cands[i]) + max_sc[v];
    }
    for (const Neighbor& nb : inst.graph().neighbors(v)) {
      const size_t idx = CandidateIndex(cands, res.assignment[nb.node]);
      if (idx != SIZE_MAX) row[idx] -= social_factor * 0.5 * nb.weight;
    }
    const size_t ci = CandidateIndex(cands, res.assignment[v]);
    RMGP_CHECK_NE(ci, SIZE_MAX);
    cur_idx[v] = static_cast<uint32_t>(ci);
    const double best = *std::min_element(row, row + cands.size());
    happy[v] = !StrictlyBetter(best, row[ci]);
  });
  res.init_millis = init_sw.ElapsedMillis();
  res.counters.gt_cells_built = rs.classes.size();
  res.counters.gt_rebuilds = 1;
  for (const std::vector<NodeId>& group : coloring.groups) {
    res.counters.color_group_sizes.push_back(group.size());
  }
  if (options.record_rounds) {
    RoundStats rs0;
    rs0.round = 0;
    rs0.millis = res.init_millis;
    if (options.record_potential) {
      rs0.potential = EvaluatePotential(inst, res.assignment);
    }
    res.round_stats.push_back(rs0);
  }

  std::vector<std::mutex> shards(kNumShards);

  for (uint32_t round = 1; round <= options.max_rounds; ++round) {
    Stopwatch round_sw;
    std::atomic<uint64_t> deviations{0};
    std::atomic<uint64_t> examined{0};
    std::atomic<uint64_t> cell_updates{0};
    for (const std::vector<NodeId>& group : coloring.groups) {
      const size_t chunks = std::min<size_t>(
          pool.num_threads(), std::max<size_t>(group.size(), 1));
      const size_t per_chunk = (group.size() + chunks - 1) / chunks;
      for (size_t c = 0; c < chunks; ++c) {
        const size_t begin = c * per_chunk;
        const size_t end = std::min(group.size(), begin + per_chunk);
        if (begin >= end) break;
        pool.Submit([&, begin, end] {
          uint64_t local_dev = 0, local_exam = 0, local_upd = 0;
          for (size_t gi = begin; gi < end; ++gi) {
            const NodeId v = group[gi];
            if (happy[v]) continue;
            ++local_exam;
            const auto cands = rs.StrategiesOf(v);
            double* row = values.data() + rs.offsets[v];
            size_t best = 0;
            for (size_t i = 1; i < cands.size(); ++i) {
              if (row[i] < row[best]) best = i;
            }
            happy[v] = 1;
            if (!StrictlyBetter(row[best], row[cur_idx[v]])) continue;
            const ClassId old_class = res.assignment[v];
            const ClassId new_class = cands[best];
            res.assignment[v] = new_class;
            cur_idx[v] = static_cast<uint32_t>(best);
            ++local_dev;
            for (const Neighbor& nb : inst.graph().neighbors(v)) {
              const NodeId f = nb.node;
              const auto fcands = rs.StrategiesOf(f);
              const size_t idx_new = CandidateIndex(fcands, new_class);
              const size_t idx_old = CandidateIndex(fcands, old_class);
              if (idx_new == SIZE_MAX && idx_old == SIZE_MAX) continue;
              const double delta = social_factor * 0.5 * nb.weight;
              double* frow = values.data() + rs.offsets[f];
              local_upd += (idx_new != SIZE_MAX) + (idx_old != SIZE_MAX);
              std::lock_guard<std::mutex> lock(shards[f % kNumShards]);
              if (idx_new != SIZE_MAX) frow[idx_new] -= delta;
              if (idx_old != SIZE_MAX) frow[idx_old] += delta;
              if (res.assignment[f] == old_class ||
                  (idx_new != SIZE_MAX &&
                   StrictlyBetter(frow[idx_new], frow[cur_idx[f]]))) {
                happy[f] = 0;
              }
            }
          }
          deviations.fetch_add(local_dev, std::memory_order_relaxed);
          examined.fetch_add(local_exam, std::memory_order_relaxed);
          cell_updates.fetch_add(local_upd, std::memory_order_relaxed);
        });
      }
      pool.Wait();
    }
    res.rounds = round;
    res.counters.best_response_evals += examined.load();
    res.counters.gt_incremental_updates += cell_updates.load();
    const uint64_t dev = deviations.load();
    if (options.record_rounds) {
      RoundStats stat;
      stat.round = round;
      stat.deviations = dev;
      stat.examined = examined.load();
      stat.millis = round_sw.ElapsedMillis();
      if (options.record_potential) {
        stat.potential = EvaluatePotential(inst, res.assignment);
      }
      res.round_stats.push_back(stat);
    }
    if (dev == 0) {
      res.converged = true;
      break;
    }
  }

  res.counters.thread_busy_millis = pool.BusyMillis();
  internal::FinalizeResult(inst, &res);
  res.total_millis = total_sw.ElapsedMillis();
  return res;
}

}  // namespace rmgp
