#ifndef RMGP_CORE_INCREMENTAL_H_
#define RMGP_CORE_INCREMENTAL_H_

#include <span>

#include "core/instance.h"
#include "core/objective.h"
#include "core/solver.h"
#include "graph/graph.h"

namespace rmgp {

/// Incremental re-equilibration after a mutation epoch (§3.1's "the
/// solution of the last execution can be used as the seed of the next
/// one", extended from moved check-ins to structural churn).
///
/// `inst` is the *post-mutation* instance; `previous` is a Nash
/// equilibrium of the pre-mutation instance (size <= |V| — appended users
/// are seeded at their closest class); `touched` lists every vertex whose
/// assignment costs or incident edges changed (the epoch's touched set,
/// including appended ids).
///
/// Best-response dynamics restart from `previous` with the unhappy
/// worklist initialized to `touched` plus its 1-hop frontier. Because
/// only touched vertices' best-response rows differ from the seeded
/// equilibrium's — and everyone else can only become unhappy when a
/// neighbor switches, which enqueues them — the result is a valid Nash
/// equilibrium of `inst`, exactly as Φ-valid as a cold solve
/// (`VerifyEquilibrium` passes with the same tolerance; audited under
/// RMGP_DCHECKS). Global-table rows are materialized lazily, so the cost
/// is O(affected neighborhood · k) instead of O(|V|·k).
///
/// Counters reported: best_response_evals (worklist examinations),
/// worklist_pushes, gt_cells_built (lazily materialized cells),
/// gt_incremental_updates (cell patches on switches),
/// argmin_cache_repairs.
///
/// `options`: seed/init/order are ignored (the seed *is* `previous`);
/// max_rounds bounds total examinations at max_rounds·|V| (converged =
/// false when exhausted); deadline/cancel_token give anytime semantics.
Result<SolveResult> ReEquilibrate(const Instance& inst,
                                  const Assignment& previous,
                                  std::span<const NodeId> touched,
                                  const SolverOptions& options);

}  // namespace rmgp

#endif  // RMGP_CORE_INCREMENTAL_H_
