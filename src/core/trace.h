#ifndef RMGP_CORE_TRACE_H_
#define RMGP_CORE_TRACE_H_

#include <string>
#include <vector>

#include "core/instance.h"
#include "core/objective.h"
#include "core/solver.h"

namespace rmgp {

/// One player's examination within a round of the traced game: the
/// per-class costs at decision time (Table 1's columns), the chosen best
/// response, and whether the player deviated.
struct TraceStep {
  uint32_t round = 0;
  NodeId player = 0;
  std::vector<double> class_costs;  ///< size k, at decision time
  ClassId previous_class = 0;
  ClassId chosen_class = 0;
  bool deviated = false;
};

/// Full record of a baseline best-response game, mirroring the paper's
/// Table 1. Intended for teaching/debugging on small instances — the
/// trace stores |V|·k doubles per round.
struct GameTrace {
  Assignment initial;                   ///< the round-0 strategies
  std::vector<TraceStep> steps;         ///< player examinations in order
  SolveResult result;                   ///< the final outcome

  /// Renders a Table-1-like text table: one block per round, one row per
  /// player with the costs of all classes, the best response underlined
  /// with '*', and deviations marked with '<-'.
  std::string ToString() const;
};

/// Runs the baseline game (RMGP_b semantics, Fig 3) recording every
/// examination. Identical dynamics to SolveBaseline with the same options.
Result<GameTrace> TraceGame(const Instance& inst,
                            const SolverOptions& options);

}  // namespace rmgp

#endif  // RMGP_CORE_TRACE_H_
