#ifndef RMGP_CORE_KERNELS_INTERNAL_H_
#define RMGP_CORE_KERNELS_INTERNAL_H_

#include "core/kernels.h"

namespace rmgp {
namespace kernels {
namespace internal {

/// The AVX2 kernel table, or nullptr when the build lacks the AVX2
/// translation unit or the running CPU lacks the instructions. Defined in
/// kernels_avx2.cc (the only TU compiled with -mavx2); every other symbol
/// of that TU has internal linkage so no AVX2 code can leak into the
/// baseline-ISA path via ODR merging.
[[nodiscard]] const Kernels* Avx2KernelsOrNull();

}  // namespace internal
}  // namespace kernels
}  // namespace rmgp

#endif  // RMGP_CORE_KERNELS_INTERNAL_H_
