#ifndef RMGP_CORE_KERNELS_H_
#define RMGP_CORE_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace rmgp {
namespace kernels {

/// Instruction-set tier of a kernel table. The binary is compiled for the
/// baseline ISA; the AVX2 tier lives in its own translation unit and is
/// only selected when cpuid reports support (util/cpu_features.h).
enum class KernelBackend : uint8_t { kScalar = 0, kAvx2 = 1 };

[[nodiscard]] const char* KernelBackendName(KernelBackend backend);

/// Per-solve kernel selection carried on SolverOptions: kAuto picks the
/// widest backend the host supports; kScalar forces the reference scalar
/// loops — the bit-identity reference mode the agreement tests and the
/// kernels microbench race against.
enum class KernelPolicy : uint8_t { kAuto = 0, kScalar = 1 };

/// Function table of the hot-row kernels. Every backend of one operation
/// returns bit-identical results: the cost-row transform is elementwise
/// IEEE mul+add (never fused — see the -ffp-contract=off note in the root
/// CMakeLists), and the argmins implement the same lowest-index-on-ties
/// semantics as the strict `<` left-to-right scan they replace. That
/// tie-break is load-bearing: the solver audits and the cached-argmin
/// repair path (internal::ArgminOnIncrease) compare against scalar
/// recomputation and assume one canonical winner per row.
struct Kernels {
  KernelBackend backend = KernelBackend::kScalar;

  /// row[p] = alpha * row[p] + base for p in [0, k): the affine cost-row
  /// transform of Fig 3 line 7 (alpha-weighted assignment cost plus
  /// maxSC_v), applied in place before the neighbor credits.
  void (*cost_row_d)(double* row, size_t k, double alpha, double base);
  void (*cost_row_f)(float* row, size_t k, float alpha, float base);

  /// Lowest-index argmin of row[0, k); k >= 1. Cells may be +/-infinity;
  /// NaN is outside the contract.
  uint32_t (*argmin_d)(const double* row, size_t k);
  uint32_t (*argmin_f)(const float* row, size_t k);
};

/// The reference scalar table — always available.
[[nodiscard]] const Kernels& ScalarKernels();

/// The widest table the host supports: AVX2 when cpuid says so, else the
/// scalar table.
[[nodiscard]] const Kernels& SimdKernels();

/// The process-wide default: SimdKernels(), unless the RMGP_KERNELS=scalar
/// environment variable pins the reference mode (read once at first use).
[[nodiscard]] const Kernels& ActiveKernels();

/// Maps a per-solve policy to a table: kScalar -> ScalarKernels(),
/// kAuto -> ActiveKernels().
[[nodiscard]] const Kernels& ResolveKernels(KernelPolicy policy);

}  // namespace kernels
}  // namespace rmgp

#endif  // RMGP_CORE_KERNELS_H_
