#include "core/portfolio.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <utility>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace rmgp {

std::vector<SolverOptions> MakePortfolioInstanceOptions(
    const PortfolioOptions& options) {
  std::vector<SolverOptions> configs;
  configs.reserve(options.num_instances);
  // Seeds for the random racers come from a generator keyed on the template
  // seed, so the whole portfolio is reproducible from one number and the
  // first two (deterministic-heuristic) racers never consume draws.
  Rng rng(options.solver.seed);
  for (uint32_t i = 0; i < options.num_instances; ++i) {
    SolverOptions o = options.solver;
    o.num_threads = 1;
    o.record_rounds = false;
    o.record_potential = false;
    if (i == 0) {
      o.init = InitPolicy::kClosestClass;  // "+i+o"
      o.order = OrderPolicy::kDegreeDesc;
    } else if (i == 1) {
      o.init = InitPolicy::kClosestClass;  // "+i", id order
      o.order = OrderPolicy::kNodeId;
    } else {
      o.init = InitPolicy::kRandom;
      o.order = OrderPolicy::kRandom;
      o.seed = rng.Next();
    }
    configs.push_back(std::move(o));
  }
  return configs;
}

Result<PortfolioResult> SolvePortfolio(const Instance& inst,
                                       const PortfolioOptions& options) {
  if (options.num_instances == 0) {
    return Status::InvalidArgument("portfolio needs at least one instance");
  }
  const std::vector<SolverOptions> configs =
      MakePortfolioInstanceOptions(options);
  const size_t num = configs.size();

  // One slot per racer; slots are written by distinct tasks and read only
  // after Wait(), so no synchronization beyond the pool's is needed.
  std::vector<std::optional<Result<SolveResult>>> slots(num);
  {
    const size_t workers =
        options.num_threads > 0 ? options.num_threads : num;
    ThreadPool pool(workers);
    for (size_t i = 0; i < num; ++i) {
      pool.Submit([&inst, &options, &configs, &slots, i] {
        slots[i].emplace(Solve(options.kind, inst, configs[i]));
      });
    }
    pool.Wait();
  }

  PortfolioResult out;
  out.instances.resize(num);
  out.sample.best = std::numeric_limits<double>::infinity();
  out.sample.worst = -std::numeric_limits<double>::infinity();
  double sum = 0.0;
  size_t winner = num;  // sentinel: no valid instance yet
  const Status* first_error = nullptr;
  for (size_t i = 0; i < num; ++i) {
    PortfolioInstance& rec = out.instances[i];
    rec.init = configs[i].init;
    rec.order = configs[i].order;
    rec.seed = configs[i].seed;
    const Result<SolveResult>& slot = *slots[i];
    if (!slot.ok()) {
      if (first_error == nullptr) first_error = &slot.status();
      continue;
    }
    const SolveResult& r = slot.value();
    rec.ok = true;
    rec.converged = r.converged;
    rec.timed_out = r.timed_out;
    rec.rounds = r.rounds;
    rec.best_response_evals = r.counters.best_response_evals;
    rec.potential = r.potential;
    rec.objective_total = r.objective.total;
    rec.total_millis = r.total_millis;
    sum += r.objective.total;
    out.sample.best = std::min(out.sample.best, r.objective.total);
    out.sample.worst = std::max(out.sample.worst, r.objective.total);
    ++out.sample.num_starts;
    // Strict < keeps the lowest index on Φ ties, so the winner is
    // deterministic regardless of completion order.
    if (winner == num ||
        r.potential < out.instances[winner].potential) {
      winner = i;
    }
  }
  if (winner == num) {
    if (first_error != nullptr) return *first_error;
    return Status::Internal("no portfolio instance produced a result");
  }
  out.sample.mean = sum / static_cast<double>(out.sample.num_starts);
  out.sample.spread =
      out.sample.best > 0 ? out.sample.worst / out.sample.best : 0.0;
  out.winner = winner;
  out.best = std::move(slots[winner]->value());
  return out;
}

}  // namespace rmgp
