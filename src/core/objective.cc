#include "core/objective.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "util/logging.h"

namespace rmgp {

Status ValidateAssignment(const Instance& inst, const Assignment& a) {
  if (a.size() != inst.num_users()) {
    return Status::InvalidArgument(
        "assignment covers " + std::to_string(a.size()) + " users, expected " +
        std::to_string(inst.num_users()));
  }
  for (NodeId v = 0; v < a.size(); ++v) {
    if (a[v] >= inst.num_classes()) {
      return Status::InvalidArgument("user " + std::to_string(v) +
                                     " assigned to out-of-range class " +
                                     std::to_string(a[v]));
    }
  }
  return Status::OK();
}

CostBreakdown EvaluateObjective(const Instance& inst, const Assignment& a) {
  RMGP_CHECK(ValidateAssignment(inst, a).ok());
  const Graph& g = inst.graph();
  CostBreakdown out;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    out.raw_assignment += inst.AssignmentCost(v, a[v]);
    for (const Neighbor& nb : g.neighbors(v)) {
      if (v < nb.node && a[v] != a[nb.node]) out.raw_social += nb.weight;
    }
  }
  out.assignment = inst.alpha() * out.raw_assignment;
  out.social = (1.0 - inst.alpha()) * out.raw_social;
  out.total = out.assignment + out.social;
  return out;
}

double EvaluatePotential(const Instance& inst, const Assignment& a) {
  const CostBreakdown b = EvaluateObjective(inst, a);
  // Φ halves the social term relative to the objective (Equation 4).
  return b.assignment + 0.5 * b.social;
}

double UserCost(const Instance& inst, const Assignment& a, NodeId v) {
  return UserCostIfAssigned(inst, a, v, a[v]);
}

double UserCostIfAssigned(const Instance& inst, const Assignment& a, NodeId v,
                          ClassId p) {
  double social = 0.0;
  for (const Neighbor& nb : inst.graph().neighbors(v)) {
    if (a[nb.node] != p) social += 0.5 * nb.weight;
  }
  return inst.alpha() * inst.AssignmentCost(v, p) +
         (1.0 - inst.alpha()) * social;
}

BestResponse ComputeBestResponse(const Instance& inst, const Assignment& a,
                                 NodeId v) {
  const ClassId k = inst.num_classes();
  // Fig 3 lines 7-10: start every class at c(v,p)·α + maxSC_v, then credit
  // back the weight of friends already in that class.
  std::vector<double> cost(k);
  inst.AssignmentCostsFor(v, cost.data());
  const double alpha = inst.alpha();
  const double max_sc = (1.0 - alpha) * inst.HalfIncidentWeight(v);
  for (ClassId p = 0; p < k; ++p) cost[p] = alpha * cost[p] + max_sc;
  for (const Neighbor& nb : inst.graph().neighbors(v)) {
    cost[a[nb.node]] -= (1.0 - alpha) * 0.5 * nb.weight;
  }
  BestResponse br;
  br.current_cost = cost[a[v]];
  br.best_class = 0;
  br.best_cost = cost[0];
  for (ClassId p = 1; p < k; ++p) {
    if (cost[p] < br.best_cost) {
      br.best_cost = cost[p];
      br.best_class = p;
    }
  }
  return br;
}

Status VerifyEquilibrium(const Instance& inst, const Assignment& a,
                         double tolerance) {
  RMGP_RETURN_IF_ERROR(ValidateAssignment(inst, a));
  for (NodeId v = 0; v < inst.num_users(); ++v) {
    const BestResponse br = ComputeBestResponse(inst, a, v);
    // Scale-aware margin, the same shape as internal::StrictlyBetter: at
    // costs around 1e9 an absolute 1e-9 margin is below one ulp, so a
    // solver-accepted equilibrium would be rejected on rounding noise
    // alone (and the incremental DCHECKs would oscillate).
    if (br.best_cost <
        br.current_cost - tolerance * (1.0 + std::abs(br.current_cost))) {
      return Status::FailedPrecondition(
          "user " + std::to_string(v) + " can deviate from class " +
          std::to_string(a[v]) + " (cost " + std::to_string(br.current_cost) +
          ") to class " + std::to_string(br.best_class) + " (cost " +
          std::to_string(br.best_cost) + ")");
    }
  }
  return Status::OK();
}

double ObjectiveLowerBound(const Instance& inst) {
  double c_min_sum = 0.0;
  std::vector<double> cost(inst.num_classes());
  for (NodeId v = 0; v < inst.num_users(); ++v) {
    inst.AssignmentCostsFor(v, cost.data());
    c_min_sum += *std::min_element(cost.begin(), cost.end());
  }
  return inst.alpha() * c_min_sum;
}

double PriceOfAnarchyBound(const Instance& inst) {
  const Graph& g = inst.graph();
  if (g.num_nodes() == 0) return 1.0;
  const double deg_avg = g.average_degree();
  const double w_avg = g.average_edge_weight();
  double c_min_sum = 0.0;
  std::vector<double> cost(inst.num_classes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    inst.AssignmentCostsFor(v, cost.data());
    c_min_sum += *std::min_element(cost.begin(), cost.end());
  }
  const double c_avg = c_min_sum / g.num_nodes();
  if (c_avg <= 0.0) return std::numeric_limits<double>::infinity();
  const double alpha = inst.alpha();
  return 1.0 + ((1.0 - alpha) / alpha) * (deg_avg * w_avg) / (2.0 * c_avg);
}

uint64_t CountReassigned(const Assignment& before, const Assignment& after) {
  RMGP_CHECK_EQ(before.size(), after.size());
  uint64_t count = 0;
  for (size_t i = 0; i < before.size(); ++i) {
    if (before[i] != after[i]) ++count;
  }
  return count;
}

}  // namespace rmgp
