#include <algorithm>
#include <memory>
#include <queue>

#include "core/solver.h"
#include "core/solver_audit.h"
#include "core/solver_internal.h"
#include "util/aligned.h"
#include "util/dcheck.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace rmgp {

using internal::StrictlyBetter;

/// RMGP_pq — best-improvement (steepest-descent) dynamics, an ablation
/// beyond the paper's round-robin best response: a max-heap always plays
/// the user with the largest available cost improvement. Each move still
/// lowers the potential Φ by exactly the player's improvement (Theorem 1),
/// so convergence is preserved; what changes is the *order* of moves and
/// hence possibly the equilibrium reached and the number of moves needed.
///
/// Shares RMGP_gt's hot-path engineering: parallel round-0 table build and
/// a per-row cached lowest-index argmin, so computing a user's improvement
/// is O(1) instead of O(k). The cache holds the exact argmin at all times,
/// so every heap entry carries the same improvement value as a full scan
/// would produce — the move trajectory is bit-identical.
Result<SolveResult> SolveBestImprovement(const Instance& inst,
                                         const SolverOptions& options) {
  Status s = internal::ValidateOptions(inst, options);
  if (!s.ok()) return s;

  Stopwatch total_sw;
  Rng rng(options.seed);
  SolveResult res;

  const NodeId n = inst.num_users();
  const ClassId k = inst.num_classes();
  const double social_factor = 1.0 - inst.alpha();
  const kernels::Kernels& kn = kernels::ResolveKernels(options.kernels);

  Stopwatch init_sw;
  res.assignment = internal::MakeInitialAssignment(inst, options, &rng);
  const std::vector<double> max_sc = internal::ComputeMaxSocialCosts(inst);

  // Global table as in RMGP_gt, with the per-row argmin cache.
  AlignedBuffer<double> gt(static_cast<size_t>(n) * k);
  std::vector<ClassId> best(n);
  res.counters.gt_cells_built = static_cast<uint64_t>(n) * k;
  res.counters.gt_rebuilds = 1;
  {
    std::unique_ptr<ThreadPool> pool;
    if (options.num_threads > 1 &&
        static_cast<size_t>(n) * k >= internal::kMinCellsForParallelInit) {
      pool = std::make_unique<ThreadPool>(options.num_threads);
    }
    internal::BuildDenseGlobalTable(inst, res.assignment, max_sc, kn,
                                    pool.get(), gt.data(), best.data());
    if (pool != nullptr) res.counters.thread_busy_millis = pool->BusyMillis();
  }

  // Max-heap of (improvement, user, stamp) with lazy invalidation.
  struct Entry {
    double improvement;
    NodeId user;
    uint64_t stamp;
    bool operator<(const Entry& other) const {
      return improvement < other.improvement;
    }
  };
  std::vector<uint64_t> stamp(n, 0);
  std::priority_queue<Entry> heap;
  auto push_if_unhappy = [&](NodeId v) {
    const double* row = gt.data() + static_cast<size_t>(v) * k;
    const double cur = row[res.assignment[v]];
    const double best_cost = row[best[v]];
    if (StrictlyBetter(best_cost, cur)) {
      heap.push({cur - best_cost, v, ++stamp[v]});
      ++res.counters.worklist_pushes;
    }
  };
  for (NodeId v = 0; v < n; ++v) push_if_unhappy(v);
  res.init_millis = init_sw.ElapsedMillis();

  double audit_phi =
      kDChecksEnabled ? EvaluatePotential(inst, res.assignment) : 0.0;

  uint64_t moves = 0;
  uint64_t examined = 0;
  while (!heap.empty()) {
    // Best-improvement runs one long sweep instead of rounds, so the
    // anytime check fires every 1024 pops: frequent enough for millisecond
    // deadlines, rare enough that the clock read never shows in profiles.
    if ((examined & 1023u) == 0 && internal::StopRequested(options)) {
      res.timed_out = true;
      break;
    }
    const Entry top = heap.top();
    heap.pop();
    ++examined;
    if (top.stamp != stamp[top.user]) continue;  // stale
    const NodeId v = top.user;
    double* row = gt.data() + static_cast<size_t>(v) * k;
    const ClassId bv = best[v];
    const ClassId old = res.assignment[v];
    ++stamp[v];  // invalidate any other queued entry for v
    if (!StrictlyBetter(row[bv], row[old])) continue;
    res.assignment[v] = bv;
    ++moves;
    for (const Neighbor& nb : inst.graph().neighbors(v)) {
      const NodeId f = nb.node;
      double* frow = gt.data() + static_cast<size_t>(f) * k;
      const double delta = social_factor * 0.5 * nb.weight;
      frow[bv] -= delta;
      internal::ArgminOnDecrease(frow, bv, &best[f]);
      frow[old] += delta;
      if (internal::ArgminOnIncrease(kn, frow, k, old, &best[f])) {
        ++res.counters.argmin_cache_repairs;
      }
      res.counters.gt_incremental_updates += 2;
      push_if_unhappy(f);
    }
    push_if_unhappy(v);  // v itself is happy now; push_if_unhappy no-ops
  }

  if (kDChecksEnabled) {
    // The table must match a fresh build even on a deadline-expired partial;
    // worklist completeness (no unhappy user anywhere) only holds when the
    // heap drained naturally — a timeout leaves pending entries behind.
    RMGP_DCHECK_OK(audit::CheckDenseTable(inst, res.assignment, max_sc,
                                          gt.data(), best.data(),
                                          audit::SampleStride(n)));
    if (!res.timed_out) {
      RMGP_DCHECK_OK(audit::CheckDenseWorklistComplete(
          inst, res.assignment, gt.data(), best.data(), {}));
    }
    if (moves > 0) {
      RMGP_DCHECK_OK(audit::CheckPotentialDecreased(inst, res.assignment,
                                                    audit_phi, nullptr));
    }
  }

  res.converged = !res.timed_out;
  res.rounds = 1;  // single asynchronous sweep; `deviations` = moves
  res.counters.best_response_evals = examined;
  if (options.record_rounds) {
    RoundStats st;
    st.round = 1;
    st.deviations = moves;
    st.examined = examined;
    st.millis = total_sw.ElapsedMillis() - res.init_millis;
    if (options.record_potential) {
      st.potential = EvaluatePotential(inst, res.assignment);
    }
    res.round_stats.push_back(st);
  }
  internal::FinalizeResult(inst, &res);
  res.total_millis = total_sw.ElapsedMillis();
  return res;
}

}  // namespace rmgp
