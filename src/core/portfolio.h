#ifndef RMGP_CORE_PORTFOLIO_H_
#define RMGP_CORE_PORTFOLIO_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/game_analysis.h"
#include "core/instance.h"
#include "core/solver.h"
#include "util/status.h"

namespace rmgp {

/// Deadline-racing solver portfolio: P independent solver instances with
/// diverse initialization heuristics race under one shared deadline /
/// cancel token, and the lowest-Φ valid assignment at expiry wins.
///
/// Rationale: best-response dynamics converge to *some* equilibrium of the
/// potential game, and which basin a run lands in is decided almost
/// entirely by the initial assignment and examination order (§3.1's "+i"
/// and "+o" heuristics). Racing diverse starts therefore buys objective
/// quality the way multi-start sampling does — but anytime: every instance
/// is valid after its round 0, so even an expired deadline returns a
/// usable assignment, just a worse one.
struct PortfolioOptions {
  /// Number of racing instances P. Instance 0 runs "+i+o" (closest-class
  /// init, degree-descending order), instance 1 runs "+i" with node-id
  /// order, instances 2+ run random init/order with per-instance seeds
  /// derived from `solver.seed`.
  uint32_t num_instances = 4;

  /// Solver variant every instance runs (the racers differ in starting
  /// point, not algorithm).
  SolverKind kind = SolverKind::kGlobalTable;

  /// Template options. `deadline`, `cancel_token`, `max_rounds` and
  /// `kernels` are inherited by every instance; `init`, `order`, `seed`,
  /// `num_threads` and the record flags are overridden per instance (each
  /// racer is single-threaded — parallelism comes from racing).
  SolverOptions solver;

  /// Pool width for the race; 0 means one worker per instance. Results
  /// never depend on this value: instances are mutually independent, so
  /// only wall time changes with the schedule.
  uint32_t num_threads = 0;
};

/// Progress/outcome record of one racer, for observability and for the
/// serving layer's per-query instance breakdown.
struct PortfolioInstance {
  InitPolicy init = InitPolicy::kRandom;
  OrderPolicy order = OrderPolicy::kRandom;
  uint64_t seed = 0;
  bool ok = false;         ///< instance produced a valid assignment
  bool converged = false;  ///< reached a Nash equilibrium before expiry
  bool timed_out = false;  ///< stopped by the shared deadline/cancel token
  uint32_t rounds = 0;
  uint64_t best_response_evals = 0;
  double potential = 0.0;        ///< Φ of the instance's final assignment
  double objective_total = 0.0;  ///< Equation 1 at the final assignment
  double total_millis = 0.0;
};

struct PortfolioResult {
  /// The winning run: lowest Φ among instances that produced a valid
  /// assignment, lowest instance index on ties.
  SolveResult best;
  size_t winner = 0;  ///< index into `instances` of the winning racer

  /// One record per configured instance, in configuration order.
  std::vector<PortfolioInstance> instances;

  /// Multi-start-style spread statistics over the successful instances'
  /// objective totals (best/worst/mean/spread), reusable with
  /// EmpiricalPoA. `best_assignment` is left empty — the winning
  /// assignment lives in `best.assignment`.
  EquilibriumSample sample;
};

/// Expands `options` into the P per-instance SolverOptions described on
/// PortfolioOptions::num_instances. Deterministic in `options` alone, so
/// callers (and tests) can predict exactly what each racer runs.
[[nodiscard]] std::vector<SolverOptions> MakePortfolioInstanceOptions(
    const PortfolioOptions& options);

/// Races the portfolio and returns the best valid result. With no
/// deadline every instance converges, the winner is an equilibrium, and
/// the outcome is a pure function of `options` (thread count included).
/// With an expired or tight deadline the winner may be a non-converged
/// but always *valid* assignment. Fails only if every instance failed.
Result<PortfolioResult> SolvePortfolio(const Instance& inst,
                                       const PortfolioOptions& options);

}  // namespace rmgp

#endif  // RMGP_CORE_PORTFOLIO_H_
