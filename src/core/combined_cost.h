#ifndef RMGP_CORE_COMBINED_COST_H_
#define RMGP_CORE_COMBINED_COST_H_

#include <memory>
#include <vector>

#include "core/cost_provider.h"
#include "util/status.h"

namespace rmgp {

/// Multi-criteria assignment costs (§1 / §3.1): "the assignment cost could
/// take into account both the distance of each user and his preference to
/// an event … a linear combination (or any other scoring function)".
///
/// CombinedCostProvider computes c(v,p) = Σ_i weight_i · provider_i(v,p).
/// Each criterion keeps its own scale; callers typically normalize each
/// provider to a comparable range (or fold the difference into the
/// weights) before combining — the same §3.3 concern, one level down.
class CombinedCostProvider : public CostProvider {
 public:
  struct Term {
    std::shared_ptr<const CostProvider> provider;
    double weight = 1.0;
  };

  /// Validates that all terms agree on user/class counts and have positive
  /// weights.
  static Result<std::shared_ptr<CombinedCostProvider>> Create(
      std::vector<Term> terms);

  NodeId num_users() const override { return num_users_; }
  ClassId num_classes() const override { return num_classes_; }
  double Cost(NodeId v, ClassId p) const override;
  void CostsFor(NodeId v, double* out) const override;

 private:
  explicit CombinedCostProvider(std::vector<Term> terms);

  std::vector<Term> terms_;
  NodeId num_users_ = 0;
  ClassId num_classes_ = 0;
};

}  // namespace rmgp

#endif  // RMGP_CORE_COMBINED_COST_H_
