#include <algorithm>
#include <memory>

#include "core/solver.h"
#include "core/solver_audit.h"
#include "core/solver_internal.h"
#include "util/aligned.h"
#include "util/dcheck.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace rmgp {

using internal::StrictlyBetter;

/// RMGP_gt (§4.3, Fig 5): the cost of every (user, class) pair is
/// materialized once into a |V|×k global table and maintained
/// incrementally as players switch. Only "unhappy" users — whose current
/// strategy is no longer their minimum — are examined, so per-round cost
/// shrinks as the game approaches the equilibrium.
///
/// Engineering on top of the paper's scheme (results are bit-identical to
/// the plain Fig 5 loop for a fixed seed):
///   * round 0 builds table rows in parallel (rows only read the initial
///     assignment);
///   * each row caches its lowest-index argmin, updated in O(1) per
///     incremental delta (full rescan only when the best cell itself gets
///     dearer), so examining an unhappy user is O(1) instead of O(k);
///   * instead of rescanning all of `order` every round for unhappy flags,
///     an explicit worklist keyed by rank(v) = position of v in `order`
///     yields exactly the users a flag scan would have examined: a user
///     made unhappy at rank r joins the current round if its own rank is
///     still ahead (> r), else the next round.
Result<SolveResult> SolveGlobalTable(const Instance& inst,
                                     const SolverOptions& options) {
  Status s = internal::ValidateOptions(inst, options);
  if (!s.ok()) return s;

  Stopwatch total_sw;
  Rng rng(options.seed);
  SolveResult res;

  const NodeId n = inst.num_users();
  const ClassId k = inst.num_classes();
  const double social_factor = 1.0 - inst.alpha();
  const kernels::Kernels& kn = kernels::ResolveKernels(options.kernels);

  // Round 0 (Fig 5 lines 1-6): initial strategies, then GT[v][p] = C_v(p,π)
  // with per-row cached argmin, and the initial unhappy worklist.
  Stopwatch init_sw;
  res.assignment = internal::MakeInitialAssignment(inst, options, &rng);
  const std::vector<NodeId> order = internal::MakeOrder(inst, options, &rng);
  const std::vector<double> max_sc = internal::ComputeMaxSocialCosts(inst);

  AlignedBuffer<double> gt(static_cast<size_t>(n) * k);
  std::vector<ClassId> best(n);
  res.counters.gt_cells_built = static_cast<uint64_t>(n) * k;
  res.counters.gt_rebuilds = 1;
  {
    std::unique_ptr<ThreadPool> pool;
    if (options.num_threads > 1 &&
        static_cast<size_t>(n) * k >= internal::kMinCellsForParallelInit) {
      pool = std::make_unique<ThreadPool>(options.num_threads);
    }
    internal::BuildDenseGlobalTable(inst, res.assignment, max_sc, kn,
                                    pool.get(), gt.data(), best.data());
    if (pool != nullptr) res.counters.thread_busy_millis = pool->BusyMillis();
    // Workers join here; the best-response rounds are sequential.
  }

  std::vector<uint32_t> rank(n);
  for (size_t i = 0; i < order.size(); ++i) {
    rank[order[i]] = static_cast<uint32_t>(i);
  }
  // Worklist state: 0 = not queued, 1 = current-round heap, 2 = next-round
  // buffer. The current round is a min-heap on rank (lowest rank pops
  // first), reproducing the seed's left-to-right scan of `order`.
  std::vector<uint8_t> queued(n, 0);
  std::vector<NodeId> heap;
  std::vector<NodeId> next_round;
  const auto rank_gt = [&rank](NodeId a, NodeId b) {
    return rank[a] > rank[b];
  };
  heap.reserve(n);
  for (NodeId i = 0; i < n; ++i) {
    // Seeding in rank order makes the ascending array a valid min-heap.
    const NodeId v = order[i];
    const double* row = gt.data() + static_cast<size_t>(v) * k;
    if (StrictlyBetter(row[best[v]], row[res.assignment[v]])) {
      heap.push_back(v);
      queued[v] = 1;
      ++res.counters.worklist_pushes;
    }
  }
  res.init_millis = init_sw.ElapsedMillis();
  if (options.record_rounds) {
    RoundStats rs0;
    rs0.round = 0;
    rs0.millis = res.init_millis;
    if (options.record_potential) {
      rs0.potential = EvaluatePotential(inst, res.assignment);
    }
    res.round_stats.push_back(rs0);
  }

  double audit_phi =
      kDChecksEnabled ? EvaluatePotential(inst, res.assignment) : 0.0;

  // Fig 5 lines 7-16. Each iteration is one best-response round; a round
  // always executes (even onto an empty worklist) so the round count — and
  // the terminal deviation-free round — match the flag-scan loop exactly.
  for (uint32_t round = 1; round <= options.max_rounds; ++round) {
    if (internal::StopRequested(options)) {
      res.timed_out = true;
      break;
    }
    Stopwatch round_sw;
    uint64_t deviations = 0;
    uint64_t examined = 0;
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), rank_gt);
      const NodeId v = heap.back();
      heap.pop_back();
      queued[v] = 0;
      ++examined;
      double* row = gt.data() + static_cast<size_t>(v) * k;
      const ClassId bv = best[v];
      const ClassId old = res.assignment[v];
      // May have turned happy again since it was enqueued.
      if (!StrictlyBetter(row[bv], row[old])) continue;
      res.assignment[v] = bv;
      ++deviations;
      const uint32_t vrank = rank[v];
      // Inform friends (Fig 5 lines 11-15): v joining `bv` makes it
      // cheaper for them, leaving `old` makes that dearer.
      for (const Neighbor& nb : inst.graph().neighbors(v)) {
        const NodeId f = nb.node;
        double* frow = gt.data() + static_cast<size_t>(f) * k;
        const double delta = social_factor * 0.5 * nb.weight;
        frow[bv] -= delta;
        internal::ArgminOnDecrease(frow, bv, &best[f]);
        frow[old] += delta;
        if (internal::ArgminOnIncrease(kn, frow, k, old, &best[f])) {
          ++res.counters.argmin_cache_repairs;
        }
        res.counters.gt_incremental_updates += 2;
        if (queued[f] == 0 &&
            StrictlyBetter(frow[best[f]], frow[res.assignment[f]])) {
          ++res.counters.worklist_pushes;
          if (rank[f] > vrank) {
            // Still ahead of the scan position: examined this round.
            queued[f] = 1;
            heap.push_back(f);
            std::push_heap(heap.begin(), heap.end(), rank_gt);
          } else {
            queued[f] = 2;
            next_round.push_back(f);
          }
        }
      }
    }
    res.rounds = round;
    res.counters.best_response_evals += examined;
    if (options.record_rounds) {
      RoundStats st;
      st.round = round;
      st.deviations = deviations;
      st.examined = examined;
      st.millis = round_sw.ElapsedMillis();
      if (options.record_potential) {
        st.potential = EvaluatePotential(inst, res.assignment);
      }
      res.round_stats.push_back(st);
    }
    if (kDChecksEnabled) {
      // The heap is drained here, so queued ∈ {0, 2}: anything unhappy must
      // be waiting in next_round.
      RMGP_DCHECK_OK(audit::CheckDenseTable(inst, res.assignment, max_sc,
                                            gt.data(), best.data(),
                                            audit::SampleStride(n)));
      RMGP_DCHECK_OK(audit::CheckDenseWorklistComplete(
          inst, res.assignment, gt.data(), best.data(), queued));
      if (deviations > 0) {
        RMGP_DCHECK_OK(audit::CheckPotentialDecreased(inst, res.assignment,
                                                      audit_phi, &audit_phi));
      }
    }
    if (deviations == 0) {
      res.converged = true;
      break;
    }
    std::sort(next_round.begin(), next_round.end(),
              [&rank](NodeId a, NodeId b) { return rank[a] < rank[b]; });
    heap.swap(next_round);
    next_round.clear();
    for (NodeId u : heap) queued[u] = 1;
  }

  internal::FinalizeResult(inst, &res);
  res.total_millis = total_sw.ElapsedMillis();
  return res;
}

}  // namespace rmgp
