#include <algorithm>

#include "core/solver.h"
#include "core/solver_internal.h"
#include "util/stopwatch.h"

namespace rmgp {

using internal::StrictlyBetter;

/// RMGP_gt (§4.3, Fig 5): the cost of every (user, class) pair is
/// materialized once into a |V|×k global table and maintained
/// incrementally as players switch. Only "unhappy" users — whose current
/// strategy is no longer their minimum — are examined, so per-round cost
/// shrinks as the game approaches the equilibrium.
Result<SolveResult> SolveGlobalTable(const Instance& inst,
                                     const SolverOptions& options) {
  Status s = internal::ValidateOptions(inst, options);
  if (!s.ok()) return s;

  Stopwatch total_sw;
  Rng rng(options.seed);
  SolveResult res;

  const NodeId n = inst.num_users();
  const ClassId k = inst.num_classes();
  const double social_factor = 1.0 - inst.alpha();

  // Round 0 (Fig 5 lines 1-6): initial strategies, then GT[v][p] = C_v(p,π)
  // and the happiness flags.
  Stopwatch init_sw;
  res.assignment = internal::MakeInitialAssignment(inst, options, &rng);
  const std::vector<NodeId> order = internal::MakeOrder(inst, options, &rng);
  const std::vector<double> max_sc = internal::ComputeMaxSocialCosts(inst);

  std::vector<double> gt(static_cast<size_t>(n) * k);
  std::vector<char> happy(n);
  res.counters.gt_cells_built = static_cast<uint64_t>(n) * k;
  res.counters.gt_rebuilds = 1;
  for (NodeId v = 0; v < n; ++v) {
    double* row = gt.data() + static_cast<size_t>(v) * k;
    inst.AssignmentCostsFor(v, row);
    for (ClassId p = 0; p < k; ++p) {
      row[p] = inst.alpha() * row[p] + max_sc[v];
    }
    for (const Neighbor& nb : inst.graph().neighbors(v)) {
      row[res.assignment[nb.node]] -= social_factor * 0.5 * nb.weight;
    }
    const double best = *std::min_element(row, row + k);
    happy[v] = !StrictlyBetter(best, row[res.assignment[v]]);
  }
  res.init_millis = init_sw.ElapsedMillis();
  if (options.record_rounds) {
    RoundStats rs0;
    rs0.round = 0;
    rs0.millis = res.init_millis;
    if (options.record_potential) {
      rs0.potential = EvaluatePotential(inst, res.assignment);
    }
    res.round_stats.push_back(rs0);
  }

  // Fig 5 lines 7-16.
  for (uint32_t round = 1; round <= options.max_rounds; ++round) {
    Stopwatch round_sw;
    uint64_t deviations = 0;
    uint64_t examined = 0;
    for (NodeId v : order) {
      if (happy[v]) continue;
      ++examined;
      double* row = gt.data() + static_cast<size_t>(v) * k;
      ClassId best = 0;
      for (ClassId p = 1; p < k; ++p) {
        if (row[p] < row[best]) best = p;
      }
      const ClassId old = res.assignment[v];
      happy[v] = 1;
      if (!StrictlyBetter(row[best], row[old])) continue;
      res.assignment[v] = best;
      ++deviations;
      // Inform friends (Fig 5 lines 11-15): v joining `best` makes it
      // cheaper for them, leaving `old` makes that dearer.
      for (const Neighbor& nb : inst.graph().neighbors(v)) {
        const NodeId f = nb.node;
        double* frow = gt.data() + static_cast<size_t>(f) * k;
        const double delta = social_factor * 0.5 * nb.weight;
        frow[best] -= delta;
        frow[old] += delta;
        res.counters.gt_incremental_updates += 2;
        const ClassId sf = res.assignment[f];
        if (sf == old || StrictlyBetter(frow[best], frow[sf])) {
          // Conservative: the friend's current strategy either got dearer
          // or `best` now undercuts it; re-examination will settle it.
          happy[f] = 0;
        }
      }
    }
    res.rounds = round;
    res.counters.best_response_evals += examined;
    if (options.record_rounds) {
      RoundStats st;
      st.round = round;
      st.deviations = deviations;
      st.examined = examined;
      st.millis = round_sw.ElapsedMillis();
      if (options.record_potential) {
        st.potential = EvaluatePotential(inst, res.assignment);
      }
      res.round_stats.push_back(st);
    }
    if (deviations == 0) {
      res.converged = true;
      break;
    }
  }

  internal::FinalizeResult(inst, &res);
  res.total_millis = total_sw.ElapsedMillis();
  return res;
}

}  // namespace rmgp
