#ifndef RMGP_CORE_DYNAMIC_GAME_H_
#define RMGP_CORE_DYNAMIC_GAME_H_

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/instance.h"
#include "core/objective.h"
#include "core/solver.h"
#include "spatial/point.h"

namespace rmgp {

/// Maintains an LAGP equilibrium under the online updates the paper
/// motivates (§1/§3.1): "locations of users may be updated through
/// check-ins, while new events may appear frequently … the solution of
/// the last execution can be used as the seed of the next one."
///
/// Internally this is a persistent RMGP_gt state: the |V|×k global table
/// and happiness flags survive across updates; each update patches only
/// the affected rows and re-runs the unhappy-user loop, which typically
/// touches a small neighborhood instead of the whole graph.
///
/// Not thread-safe; one game per query stream.
class DynamicGame {
 public:
  /// Creates the game over `graph` (borrowed; must outlive the game) with
  /// Euclidean costs, computes the initial equilibrium.
  /// `alpha` and `cost_scale` as in Instance (apply normalization by
  /// passing the CN you would have set on the instance).
  static Result<std::unique_ptr<DynamicGame>> Create(
      const Graph* graph, std::vector<Point> user_locations,
      std::vector<Point> events, double alpha, double cost_scale,
      const SolverOptions& options);

  /// Shared-ownership variant: the game keeps the graph version it was
  /// built on alive, which is what epoch-versioned serving sessions need
  /// (the session may move to a newer graph while cached games still
  /// reference the old one until they are patched).
  static Result<std::unique_ptr<DynamicGame>> Create(
      std::shared_ptr<const Graph> graph, std::vector<Point> user_locations,
      std::vector<Point> events, double alpha, double cost_scale,
      const SolverOptions& options);

  /// One committed mutation epoch: the next graph version plus what
  /// changed relative to the version this game currently holds.
  struct GraphEpochUpdate {
    std::shared_ptr<const Graph> graph;  ///< next version; |V| may grow
    /// Users whose check-in location changed (old ids, new locations).
    std::span<const std::pair<NodeId, Point>> moved;
    /// Locations of appended users, in id order (old_n, old_n+1, ...).
    std::span<const Point> appended;
    /// Vertices whose adjacency changed, incl. every appended id, sorted.
    std::span<const NodeId> touched;
  };

  /// Migrates the maintained equilibrium onto the next graph version:
  /// patches moved users' locations, grows per-user state for appended
  /// users (seeded at their closest class), rebuilds the best-response
  /// rows of the touched set, wakes the touched set plus its 1-hop
  /// frontier, and re-settles. Returns the number of users that changed
  /// class. On error the game is unchanged.
  Result<uint64_t> ApplyEpoch(const GraphEpochUpdate& update);

  /// Moves user v to a new check-in location and restores equilibrium.
  /// Returns the number of users that changed class.
  Result<uint64_t> UpdateUserLocation(NodeId v, const Point& location);

  /// Adds a new event (class) and restores equilibrium. Returns the
  /// number of users that changed class. The new event's id is
  /// num_events()-1 after the call.
  Result<uint64_t> AddEvent(const Point& location);

  /// Removes event p: its attendees are re-seeded to their best remaining
  /// class and equilibrium is restored. The last event is renumbered to p
  /// (swap-remove). Fails if it is the only event.
  Result<uint64_t> RemoveEvent(ClassId p);

  /// Current equilibrium assignment (size |V|).
  const Assignment& assignment() const { return assignment_; }

  /// Equation-1 objective of the current assignment.
  CostBreakdown Objective() const;

  /// Verifies the maintained state really is an equilibrium (testing aid).
  Status Verify() const;

  ClassId num_events() const {
    return static_cast<ClassId>(events_.size());
  }
  const std::vector<Point>& events() const { return events_; }
  const std::vector<Point>& user_locations() const { return users_; }

  /// Total best-response examinations performed across all updates
  /// (the work metric the dynamic-vs-resolve bench reports).
  uint64_t total_examinations() const { return total_examinations_; }

 private:
  DynamicGame(std::shared_ptr<const Graph> graph, std::vector<Point> users,
              std::vector<Point> events, double alpha, double cost_scale);

  double UserClassCost(NodeId v, ClassId p) const;
  void RebuildRow(NodeId v);
  void RefreshHappiness(NodeId v);
  /// Runs unhappy-user best-response rounds to convergence; returns the
  /// number of users whose class changed.
  uint64_t Settle();
  /// Applies a class switch of v (updates gsv + friends' rows/happiness).
  void ApplySwitch(NodeId v, ClassId to);

  std::shared_ptr<const Graph> graph_owner_;  // may be non-owning (aliased)
  const Graph* graph_;                        // == graph_owner_.get()
  std::vector<Point> users_;
  std::vector<Point> events_;
  double alpha_;
  double cost_scale_;
  std::vector<double> max_sc_;   // (1-α)·½·Σ w, per user
  std::vector<double> table_;   // |V| rows × capacity_ columns
  size_t capacity_ = 0;         // allocated columns per row (>= k)
  Assignment assignment_;
  std::vector<char> happy_;
  uint32_t max_rounds_ = 100000;
  uint64_t total_examinations_ = 0;
};

}  // namespace rmgp

#endif  // RMGP_CORE_DYNAMIC_GAME_H_
