#include "core/kernels.h"

#include <cstdlib>
#include <cstring>

#include "core/kernels_internal.h"

namespace rmgp {
namespace kernels {

const char* KernelBackendName(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return "scalar";
    case KernelBackend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

namespace {

// The reference loops. These are the exact loops the solvers ran before
// the kernel split; the wide backends must match them bit for bit.

void CostRowScalarD(double* row, size_t k, double alpha, double base) {
  for (size_t p = 0; p < k; ++p) row[p] = alpha * row[p] + base;
}

void CostRowScalarF(float* row, size_t k, float alpha, float base) {
  for (size_t p = 0; p < k; ++p) row[p] = alpha * row[p] + base;
}

uint32_t ArgminScalarD(const double* row, size_t k) {
  uint32_t b = 0;
  for (uint32_t p = 1; p < k; ++p) {
    if (row[p] < row[b]) b = p;
  }
  return b;
}

uint32_t ArgminScalarF(const float* row, size_t k) {
  uint32_t b = 0;
  for (uint32_t p = 1; p < k; ++p) {
    if (row[p] < row[b]) b = p;
  }
  return b;
}

}  // namespace

const Kernels& ScalarKernels() {
  static const Kernels table = {KernelBackend::kScalar, CostRowScalarD,
                                CostRowScalarF, ArgminScalarD, ArgminScalarF};
  return table;
}

const Kernels& SimdKernels() {
  static const Kernels* table = [] {
    const Kernels* avx2 = internal::Avx2KernelsOrNull();
    return avx2 != nullptr ? avx2 : &ScalarKernels();
  }();
  return *table;
}

const Kernels& ActiveKernels() {
  static const Kernels* table = [] {
    const char* env = std::getenv("RMGP_KERNELS");
    if (env != nullptr && std::strcmp(env, "scalar") == 0) {
      return &ScalarKernels();
    }
    return &SimdKernels();
  }();
  return *table;
}

const Kernels& ResolveKernels(KernelPolicy policy) {
  return policy == KernelPolicy::kScalar ? ScalarKernels() : ActiveKernels();
}

}  // namespace kernels
}  // namespace rmgp
