#include "core/solver.h"

#include "core/solver_audit.h"
#include "core/solver_internal.h"
#include "util/dcheck.h"
#include "util/stopwatch.h"

namespace rmgp {

using internal::BestResponseScratch;
using internal::StrictlyBetter;

/// RMGP_b (Fig 3): random (or heuristic) initialization followed by rounds
/// of sequential best responses until no player deviates.
Result<SolveResult> SolveBaseline(const Instance& inst,
                                  const SolverOptions& options) {
  Status s = internal::ValidateOptions(inst, options);
  if (!s.ok()) return s;

  Stopwatch total_sw;
  Rng rng(options.seed);
  SolveResult res;

  // Round 0: initialization (Fig 3 lines 1-3).
  Stopwatch init_sw;
  res.assignment = internal::MakeInitialAssignment(inst, options, &rng);
  const std::vector<NodeId> order = internal::MakeOrder(inst, options, &rng);
  const std::vector<double> max_sc = internal::ComputeMaxSocialCosts(inst);
  res.init_millis = init_sw.ElapsedMillis();
  if (options.record_rounds) {
    RoundStats rs0;
    rs0.round = 0;
    rs0.millis = res.init_millis;
    if (options.record_potential) {
      rs0.potential = EvaluatePotential(inst, res.assignment);
    }
    res.round_stats.push_back(rs0);
  }

  // Best-response rounds (Fig 3 lines 4-14).
  double audit_phi =
      kDChecksEnabled ? EvaluatePotential(inst, res.assignment) : 0.0;
  const kernels::Kernels& kn = kernels::ResolveKernels(options.kernels);
  std::vector<double> scratch(inst.num_classes());
  for (uint32_t round = 1; round <= options.max_rounds; ++round) {
    if (internal::StopRequested(options)) {
      res.timed_out = true;
      break;
    }
    Stopwatch round_sw;
    uint64_t deviations = 0;
    for (NodeId v : order) {
      const BestResponse br = BestResponseScratch(inst, res.assignment, v,
                                                  max_sc, kn, scratch.data());
      if (StrictlyBetter(br.best_cost, br.current_cost)) {
        res.assignment[v] = br.best_class;
        ++deviations;
      }
    }
    res.rounds = round;
    res.counters.best_response_evals += inst.num_users();
    if (options.record_rounds) {
      RoundStats rs;
      rs.round = round;
      rs.deviations = deviations;
      rs.examined = inst.num_users();
      rs.millis = round_sw.ElapsedMillis();
      if (options.record_potential) {
        rs.potential = EvaluatePotential(inst, res.assignment);
      }
      res.round_stats.push_back(rs);
    }
    if (kDChecksEnabled && deviations > 0) {
      RMGP_DCHECK_OK(audit::CheckPotentialDecreased(inst, res.assignment,
                                                    audit_phi, &audit_phi));
    }
    if (deviations == 0) {
      res.converged = true;
      break;
    }
  }

  internal::FinalizeResult(inst, &res);
  res.total_millis = total_sw.ElapsedMillis();
  return res;
}

}  // namespace rmgp
