// The one translation unit compiled with -mavx2 (see src/core/CMakeLists).
// Everything here except Avx2KernelsOrNull has internal linkage: inline or
// weak symbols from an AVX2-compiled TU could otherwise be merged over
// their baseline-ISA twins by the linker and crash pre-AVX2 hosts.
//
// Bit-identity with the scalar reference (core/kernels.cc):
//   * cost_row is elementwise vmulpd+vaddpd — the same IEEE mul and add the
//     scalar loop performs, never contracted into an FMA (the project
//     builds with -ffp-contract=off, and intrinsics are not contracted
//     anyway).
//   * argmin keeps per-slot minima with a strict `<` compare, so each
//     accumulator slot (a lane of one of the chains) holds the earliest
//     minimum of its index class (slot j of a stride-S sweep sees indices
//     j, j+S, j+2S, ...). The horizontal reduction then takes the lowest
//     index among slots attaining the global minimum. If e is the globally
//     earliest index of the minimum value m, slot e mod S records exactly
//     (m, e) — an earlier index in that slot with value m would contradict
//     e's minimality — and every other slot records either a larger value
//     or a larger index, so the reduction returns e: the same answer as
//     the scalar left-to-right scan. +/-infinity flows through the
//     ordinary compares; NaN is outside the contract.

#include "core/kernels_internal.h"
#include "util/cpu_features.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace rmgp {
namespace kernels {
namespace internal {
namespace {

void CostRowAvx2D(double* row, size_t k, double alpha, double base) {
  const __m256d va = _mm256_set1_pd(alpha);
  const __m256d vb = _mm256_set1_pd(base);
  size_t p = 0;
  for (; p + 4 <= k; p += 4) {
    const __m256d v = _mm256_loadu_pd(row + p);
    _mm256_storeu_pd(row + p, _mm256_add_pd(_mm256_mul_pd(v, va), vb));
  }
  for (; p < k; ++p) row[p] = alpha * row[p] + base;
}

void CostRowAvx2F(float* row, size_t k, float alpha, float base) {
  const __m256 va = _mm256_set1_ps(alpha);
  const __m256 vb = _mm256_set1_ps(base);
  size_t p = 0;
  for (; p + 8 <= k; p += 8) {
    const __m256 v = _mm256_loadu_ps(row + p);
    _mm256_storeu_ps(row + p, _mm256_add_ps(_mm256_mul_ps(v, va), vb));
  }
  for (; p < k; ++p) row[p] = alpha * row[p] + base;
}

uint32_t ArgminAvx2D(const double* row, size_t k) {
  if (k < 8) {  // too short for the vector ramp-up to pay off
    uint32_t b = 0;
    for (uint32_t p = 1; p < k; ++p) {
      if (row[p] < row[b]) b = p;
    }
    return b;
  }
  // Long rows run two independent accumulator chains: the cmp→blendv
  // update of a single chain is a loop-carried dependency (~6 cycles), so
  // a second chain nearly doubles throughput. Each (chain, lane) slot owns
  // a disjoint index class mod 8, which keeps the lowest-index argument
  // above intact — the final reduction just spans 8 slots instead of 4.
  alignas(32) double vals[8];
  alignas(32) int64_t idxs[8];
  int lanes;
  size_t p;
  if (k >= 16) {
    __m256d best0 = _mm256_loadu_pd(row);
    __m256d best1 = _mm256_loadu_pd(row + 4);
    __m256i bidx0 = _mm256_setr_epi64x(0, 1, 2, 3);
    __m256i bidx1 = _mm256_setr_epi64x(4, 5, 6, 7);
    __m256i idx0 = bidx0;
    __m256i idx1 = bidx1;
    const __m256i step = _mm256_set1_epi64x(8);
    for (p = 8; p + 8 <= k; p += 8) {
      idx0 = _mm256_add_epi64(idx0, step);
      idx1 = _mm256_add_epi64(idx1, step);
      const __m256d v0 = _mm256_loadu_pd(row + p);
      const __m256d v1 = _mm256_loadu_pd(row + p + 4);
      const __m256d lt0 = _mm256_cmp_pd(v0, best0, _CMP_LT_OQ);
      const __m256d lt1 = _mm256_cmp_pd(v1, best1, _CMP_LT_OQ);
      best0 = _mm256_blendv_pd(best0, v0, lt0);
      best1 = _mm256_blendv_pd(best1, v1, lt1);
      bidx0 = _mm256_castpd_si256(_mm256_blendv_pd(
          _mm256_castsi256_pd(bidx0), _mm256_castsi256_pd(idx0), lt0));
      bidx1 = _mm256_castpd_si256(_mm256_blendv_pd(
          _mm256_castsi256_pd(bidx1), _mm256_castsi256_pd(idx1), lt1));
    }
    _mm256_store_pd(vals, best0);
    _mm256_store_pd(vals + 4, best1);
    _mm256_store_si256(reinterpret_cast<__m256i*>(idxs), bidx0);
    _mm256_store_si256(reinterpret_cast<__m256i*>(idxs + 4), bidx1);
    lanes = 8;
  } else {
    __m256d best = _mm256_loadu_pd(row);
    __m256i best_idx = _mm256_setr_epi64x(0, 1, 2, 3);
    __m256i idx = best_idx;
    const __m256i step = _mm256_set1_epi64x(4);
    for (p = 4; p + 4 <= k; p += 4) {
      idx = _mm256_add_epi64(idx, step);
      const __m256d v = _mm256_loadu_pd(row + p);
      const __m256d lt = _mm256_cmp_pd(v, best, _CMP_LT_OQ);
      best = _mm256_blendv_pd(best, v, lt);
      best_idx = _mm256_castpd_si256(_mm256_blendv_pd(
          _mm256_castsi256_pd(best_idx), _mm256_castsi256_pd(idx), lt));
    }
    _mm256_store_pd(vals, best);
    _mm256_store_si256(reinterpret_cast<__m256i*>(idxs), best_idx);
    lanes = 4;
  }
  double bv = vals[0];
  uint32_t bi = static_cast<uint32_t>(idxs[0]);
  for (int lane = 1; lane < lanes; ++lane) {
    const uint32_t li = static_cast<uint32_t>(idxs[lane]);
    if (vals[lane] < bv || (vals[lane] == bv && li < bi)) {
      bv = vals[lane];
      bi = li;
    }
  }
  // Tail indices all exceed the vector indices, so strict `<` preserves
  // the lowest-index tie-break.
  for (; p < k; ++p) {
    if (row[p] < bv) {
      bv = row[p];
      bi = static_cast<uint32_t>(p);
    }
  }
  return bi;
}

uint32_t ArgminAvx2F(const float* row, size_t k) {
  if (k < 16) {
    uint32_t b = 0;
    for (uint32_t p = 1; p < k; ++p) {
      if (row[p] < row[b]) b = p;
    }
    return b;
  }
  // Same dual-chain structure as ArgminAvx2D: disjoint index classes mod
  // 16 per (chain, lane) slot, reduced lexicographically at the end.
  alignas(32) float vals[16];
  alignas(32) int32_t idxs[16];
  int lanes;
  size_t p;
  if (k >= 32) {
    __m256 best0 = _mm256_loadu_ps(row);
    __m256 best1 = _mm256_loadu_ps(row + 8);
    __m256i bidx0 = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    __m256i bidx1 = _mm256_setr_epi32(8, 9, 10, 11, 12, 13, 14, 15);
    __m256i idx0 = bidx0;
    __m256i idx1 = bidx1;
    const __m256i step = _mm256_set1_epi32(16);
    for (p = 16; p + 16 <= k; p += 16) {
      idx0 = _mm256_add_epi32(idx0, step);
      idx1 = _mm256_add_epi32(idx1, step);
      const __m256 v0 = _mm256_loadu_ps(row + p);
      const __m256 v1 = _mm256_loadu_ps(row + p + 8);
      const __m256 lt0 = _mm256_cmp_ps(v0, best0, _CMP_LT_OQ);
      const __m256 lt1 = _mm256_cmp_ps(v1, best1, _CMP_LT_OQ);
      best0 = _mm256_blendv_ps(best0, v0, lt0);
      best1 = _mm256_blendv_ps(best1, v1, lt1);
      bidx0 = _mm256_castps_si256(_mm256_blendv_ps(
          _mm256_castsi256_ps(bidx0), _mm256_castsi256_ps(idx0), lt0));
      bidx1 = _mm256_castps_si256(_mm256_blendv_ps(
          _mm256_castsi256_ps(bidx1), _mm256_castsi256_ps(idx1), lt1));
    }
    _mm256_store_ps(vals, best0);
    _mm256_store_ps(vals + 8, best1);
    _mm256_store_si256(reinterpret_cast<__m256i*>(idxs), bidx0);
    _mm256_store_si256(reinterpret_cast<__m256i*>(idxs + 8), bidx1);
    lanes = 16;
  } else {
    __m256 best = _mm256_loadu_ps(row);
    __m256i best_idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    __m256i idx = best_idx;
    const __m256i step = _mm256_set1_epi32(8);
    for (p = 8; p + 8 <= k; p += 8) {
      idx = _mm256_add_epi32(idx, step);
      const __m256 v = _mm256_loadu_ps(row + p);
      const __m256 lt = _mm256_cmp_ps(v, best, _CMP_LT_OQ);
      best = _mm256_blendv_ps(best, v, lt);
      best_idx = _mm256_castps_si256(_mm256_blendv_ps(
          _mm256_castsi256_ps(best_idx), _mm256_castsi256_ps(idx), lt));
    }
    _mm256_store_ps(vals, best);
    _mm256_store_si256(reinterpret_cast<__m256i*>(idxs), best_idx);
    lanes = 8;
  }
  float bv = vals[0];
  uint32_t bi = static_cast<uint32_t>(idxs[0]);
  for (int lane = 1; lane < lanes; ++lane) {
    const uint32_t li = static_cast<uint32_t>(idxs[lane]);
    if (vals[lane] < bv || (vals[lane] == bv && li < bi)) {
      bv = vals[lane];
      bi = li;
    }
  }
  for (; p < k; ++p) {
    if (row[p] < bv) {
      bv = row[p];
      bi = static_cast<uint32_t>(p);
    }
  }
  return bi;
}

}  // namespace

const Kernels* Avx2KernelsOrNull() {
  if (!CpuSupportsAvx2()) return nullptr;
  static const Kernels table = {KernelBackend::kAvx2, CostRowAvx2D,
                                CostRowAvx2F, ArgminAvx2D, ArgminAvx2F};
  return &table;
}

}  // namespace internal
}  // namespace kernels
}  // namespace rmgp

#else  // !defined(__AVX2__)

namespace rmgp {
namespace kernels {
namespace internal {

const Kernels* Avx2KernelsOrNull() { return nullptr; }

}  // namespace internal
}  // namespace kernels
}  // namespace rmgp

#endif  // defined(__AVX2__)
