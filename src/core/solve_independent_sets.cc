#include <algorithm>

#include "core/solver.h"
#include "core/solver_audit.h"
#include "core/solver_internal.h"
#include "graph/coloring.h"
#include "util/dcheck.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace rmgp {

using internal::BestResponseScratch;
using internal::StrictlyBetter;

/// RMGP_is (§4.2, Fig 4): users are grouped by a greedy graph coloring;
/// nodes of one color form an independent set, so their best responses
/// depend only on nodes outside the set and can be computed simultaneously.
/// Groups are visited round-robin; ParallelFor's completion latch is the
/// barrier between groups (Fig 4 line 8). Per-worker scratch lives in the
/// pool's persistent arenas, so steady-state rounds allocate nothing; each
/// user's best response reads only out-of-group strategies, so results are
/// independent of the number of threads and of chunk scheduling.
Result<SolveResult> SolveIndependentSets(const Instance& inst,
                                         const SolverOptions& options) {
  Status s = internal::ValidateOptions(inst, options);
  if (!s.ok()) return s;

  Stopwatch total_sw;
  Rng rng(options.seed);
  SolveResult res;

  Stopwatch init_sw;
  res.assignment = internal::MakeInitialAssignment(inst, options, &rng);
  const std::vector<double> max_sc = internal::ComputeMaxSocialCosts(inst);
  // The paper computes the coloring offline; we fold it into round 0.
  Coloring coloring = GreedyColoring(inst.graph());
  // Order users *within* each group by the configured policy so that the
  // "+o" heuristic stays meaningful under parallelism.
  {
    const std::vector<NodeId> order = internal::MakeOrder(inst, options, &rng);
    std::vector<uint32_t> rank(inst.num_users());
    for (uint32_t i = 0; i < order.size(); ++i) rank[order[i]] = i;
    for (auto& group : coloring.groups) {
      std::sort(group.begin(), group.end(),
                [&](NodeId a, NodeId b) { return rank[a] < rank[b]; });
    }
  }
  res.init_millis = init_sw.ElapsedMillis();
  for (const std::vector<NodeId>& group : coloring.groups) {
    res.counters.color_group_sizes.push_back(group.size());
  }
  if (options.record_rounds) {
    RoundStats rs0;
    rs0.round = 0;
    rs0.millis = res.init_millis;
    if (options.record_potential) {
      rs0.potential = EvaluatePotential(inst, res.assignment);
    }
    res.round_stats.push_back(rs0);
  }

  if (kDChecksEnabled) {
    // A color class that is not an independent set would let two friends
    // respond simultaneously — a data race on their mutual social cost.
    RMGP_DCHECK_OK(audit::CheckColorGroupsIndependent(inst.graph(), coloring));
  }
  double audit_phi =
      kDChecksEnabled ? EvaluatePotential(inst, res.assignment) : 0.0;

  ThreadPool pool(options.num_threads);
  const ClassId k = inst.num_classes();
  const kernels::Kernels& kn = kernels::ResolveKernels(options.kernels);
  // Per-slot deviation tallies, padded to a cache line each: a worker's
  // counter bump must not ping-pong the line holding a neighbor slot's
  // counter (or anything else) while `assignment` writes are in flight.
  std::vector<CacheAligned<uint64_t>> dev_slots(pool.num_slots());

  for (uint32_t round = 1; round <= options.max_rounds; ++round) {
    if (internal::StopRequested(options)) {
      res.timed_out = true;
      break;
    }
    Stopwatch round_sw;
    for (CacheAligned<uint64_t>& slot : dev_slots) slot.value = 0;
    for (const std::vector<NodeId>& group : coloring.groups) {
      // Fig 4 lines 4-8: all writes go to strategies of group members,
      // which no concurrent reader touches (their friends are outside the
      // group by construction), so chunking is free to be dynamic.
      const size_t grain = std::max<size_t>(
          1, group.size() / (pool.num_threads() * 4));
      pool.ParallelFor(
          0, group.size(), grain,
          [&](size_t begin, size_t end, size_t slot) {
            double* scratch = pool.ScratchDoubles(slot, k);
            uint64_t local_dev = 0;
            for (size_t i = begin; i < end; ++i) {
              const NodeId v = group[i];
              const BestResponse br = BestResponseScratch(
                  inst, res.assignment, v, max_sc, kn, scratch);
              if (StrictlyBetter(br.best_cost, br.current_cost)) {
                res.assignment[v] = br.best_class;
                ++local_dev;
              }
            }
            dev_slots[slot].value += local_dev;
          });
    }
    res.rounds = round;
    res.counters.best_response_evals += inst.num_users();
    uint64_t dev = 0;
    for (const CacheAligned<uint64_t>& slot : dev_slots) dev += slot.value;
    if (options.record_rounds) {
      RoundStats st;
      st.round = round;
      st.deviations = dev;
      st.examined = inst.num_users();
      st.millis = round_sw.ElapsedMillis();
      if (options.record_potential) {
        st.potential = EvaluatePotential(inst, res.assignment);
      }
      res.round_stats.push_back(st);
    }
    if (kDChecksEnabled && dev > 0) {
      RMGP_DCHECK_OK(audit::CheckPotentialDecreased(inst, res.assignment,
                                                    audit_phi, &audit_phi));
    }
    if (dev == 0) {
      res.converged = true;
      break;
    }
  }

  res.counters.thread_busy_millis = pool.BusyMillis();
  internal::FinalizeResult(inst, &res);
  res.total_millis = total_sw.ElapsedMillis();
  return res;
}

}  // namespace rmgp
