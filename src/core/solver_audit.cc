#include "core/solver_audit.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

namespace rmgp {
namespace audit {

namespace {

/// Incremental table maintenance applies the same ± deltas a fresh build
/// sums, but in chronological rather than neighbor order, so cells agree
/// only up to rounding drift. 1e-7 relative is ~9 decimal orders above
/// double rounding yet far below any kImprovementEps-accepted move.
constexpr double kCellTol = 1e-7;

bool CellsMatch(double stored, double fresh) {
  // Exact equality first: excluded-class cells hold +inf on both sides, and
  // inf - inf is NaN, which would fail the tolerance test below.
  if (stored == fresh) return true;
  return std::abs(stored - fresh) <= kCellTol * (1.0 + std::abs(fresh));
}

std::string UserStr(NodeId v) { return "user " + std::to_string(v); }

/// Lowest-index argmin of row[0..len), the invariant the caches maintain.
template <typename T>
uint32_t ScanArgmin(const T* row, uint32_t len) {
  uint32_t b = 0;
  for (uint32_t i = 1; i < len; ++i) {
    if (row[i] < row[b]) b = i;
  }
  return b;
}

}  // namespace

Status CheckPotentialDecreased(const Instance& inst, const Assignment& a,
                               double prev_phi, double* phi_out) {
  RMGP_RETURN_IF_ERROR(ValidateAssignment(inst, a));
  const double phi = EvaluatePotential(inst, a);
  if (!(phi < prev_phi)) {
    return Status::FailedPrecondition(
        "potential did not strictly decrease across a round with accepted "
        "deviations: before=" +
        std::to_string(prev_phi) + " after=" + std::to_string(phi));
  }
  if (phi_out != nullptr) *phi_out = phi;
  return Status::OK();
}

Status CheckDenseTable(const Instance& inst, const Assignment& a,
                       const std::vector<double>& max_sc, const double* table,
                       const ClassId* best, NodeId stride) {
  RMGP_RETURN_IF_ERROR(ValidateAssignment(inst, a));
  const NodeId n = inst.num_users();
  const ClassId k = inst.num_classes();
  if (stride == 0) stride = 1;

  // Sampled rows: fresh recomputation + exact argmin-cache verification.
  std::vector<double> fresh(k);
  for (NodeId v = 0; v < n; v += stride) {
    const double* row = table + static_cast<size_t>(v) * k;
    // The audit recomputes with the scalar reference kernels on purpose —
    // it must stay independent of whatever backend built the table.
    (void)internal::BestResponseScratch(inst, a, v, max_sc,
                                        kernels::ScalarKernels(),
                                        fresh.data());
    for (ClassId p = 0; p < k; ++p) {
      if (!CellsMatch(row[p], fresh[p])) {
        return Status::FailedPrecondition(
            "global-table cell drifted from fresh value: " + UserStr(v) +
            " class " + std::to_string(p) + " stored=" +
            std::to_string(row[p]) + " fresh=" + std::to_string(fresh[p]));
      }
    }
    const ClassId scan = ScanArgmin(row, k);
    if (best[v] >= k || row[best[v]] != row[scan] || best[v] > scan) {
      return Status::FailedPrecondition(
          "stale argmin cache: " + UserStr(v) + " cached=" +
          std::to_string(best[v]) + " fresh scan=" + std::to_string(scan));
    }
  }

  // Identity check over all users: the sum of current-strategy cells is the
  // objective — Σ_v GT[v][s_v] = α·Σ CN·c + (1-α)·Σ_cut w (Equations 1/3).
  double incremental_total = 0.0;
  for (NodeId v = 0; v < n; ++v) {
    incremental_total += table[static_cast<size_t>(v) * k + a[v]];
  }
  const CostBreakdown obj = EvaluateObjective(inst, a);
  if (std::abs(incremental_total - obj.total) >
      1e-6 * (1.0 + std::abs(obj.total))) {
    return Status::FailedPrecondition(
        "incremental objective diverged from scratch evaluation: "
        "Σ table[v][s_v]=" +
        std::to_string(incremental_total) +
        " objective=" + std::to_string(obj.total));
  }
  return Status::OK();
}

Status CheckDenseWorklistComplete(const Instance& inst, const Assignment& a,
                                  const double* table, const ClassId* best,
                                  const std::vector<uint8_t>& queued) {
  const NodeId n = inst.num_users();
  const ClassId k = inst.num_classes();
  for (NodeId v = 0; v < n; ++v) {
    const double* row = table + static_cast<size_t>(v) * k;
    if (internal::StrictlyBetter(row[best[v]], row[a[v]]) &&
        (queued.empty() || queued[v] == 0)) {
      return Status::FailedPrecondition(
          "unhappy user outside the worklist: " + UserStr(v) + " current=" +
          std::to_string(row[a[v]]) + " best=" + std::to_string(row[best[v]]));
    }
  }
  return Status::OK();
}

Status CheckReducedTable(const Instance& inst, const Assignment& a,
                         const std::vector<double>& max_sc,
                         const internal::ReducedStrategies& rs,
                         const std::vector<double>& values,
                         const std::vector<uint32_t>& cur_idx,
                         const std::vector<uint32_t>& best_idx,
                         NodeId stride) {
  RMGP_RETURN_IF_ERROR(ValidateAssignment(inst, a));
  const NodeId n = inst.num_users();
  if (stride == 0) stride = 1;
  const double alpha = inst.alpha();
  const double social_factor = 1.0 - alpha;

  for (NodeId v = 0; v < n; v += stride) {
    if (rs.forced[v] != internal::ReducedStrategies::kNoForced) continue;
    const auto cands = rs.StrategiesOf(v);
    const double* row = values.data() + rs.offsets[v];
    const auto len = static_cast<uint32_t>(cands.size());

    // Fresh per-candidate costs, restricted to S'_v (mirror of the round-0
    // build rather than BestResponseReduced, whose scratch is k-indexed).
    std::vector<double> fresh(len);
    for (uint32_t i = 0; i < len; ++i) {
      fresh[i] = alpha * inst.AssignmentCost(v, cands[i]) + max_sc[v];
    }
    for (const Neighbor& nb : inst.graph().neighbors(v)) {
      const ClassId fc = a[nb.node];
      const auto it = std::lower_bound(cands.begin(), cands.end(), fc);
      if (it != cands.end() && *it == fc) {
        fresh[static_cast<uint32_t>(it - cands.begin())] -=
            social_factor * 0.5 * nb.weight;
      }
    }
    for (uint32_t i = 0; i < len; ++i) {
      if (!CellsMatch(row[i], fresh[i])) {
        return Status::FailedPrecondition(
            "reduced-table cell drifted from fresh value: " + UserStr(v) +
            " candidate " + std::to_string(cands[i]) + " stored=" +
            std::to_string(row[i]) + " fresh=" + std::to_string(fresh[i]));
      }
    }
    if (cur_idx[v] >= len || cands[cur_idx[v]] != a[v]) {
      return Status::FailedPrecondition(
          "cur_idx out of sync with assignment: " + UserStr(v));
    }
    const uint32_t scan = ScanArgmin(row, len);
    if (best_idx[v] >= len || row[best_idx[v]] != row[scan] ||
        best_idx[v] > scan) {
      return Status::FailedPrecondition(
          "stale reduced argmin cache: " + UserStr(v) + " cached=" +
          std::to_string(best_idx[v]) + " fresh scan=" + std::to_string(scan));
    }
  }

  // Incremental-objective identity over the non-forced users, with the
  // forced users' (α·c + maxSC − credit) contribution recomputed directly.
  double incremental_total = 0.0;
  for (NodeId v = 0; v < n; ++v) {
    if (rs.forced[v] == internal::ReducedStrategies::kNoForced) {
      incremental_total += values[rs.offsets[v] + cur_idx[v]];
    } else {
      double cell = alpha * inst.AssignmentCost(v, a[v]) + max_sc[v];
      for (const Neighbor& nb : inst.graph().neighbors(v)) {
        if (a[nb.node] == a[v]) cell -= social_factor * 0.5 * nb.weight;
      }
      incremental_total += cell;
    }
  }
  const CostBreakdown obj = EvaluateObjective(inst, a);
  if (std::abs(incremental_total - obj.total) >
      1e-6 * (1.0 + std::abs(obj.total))) {
    return Status::FailedPrecondition(
        "incremental objective diverged from scratch evaluation: "
        "Σ values[v][cur]=" +
        std::to_string(incremental_total) +
        " objective=" + std::to_string(obj.total));
  }
  return Status::OK();
}

Status CheckReducedWorklistComplete(const Instance& inst, const Assignment& a,
                                    const internal::ReducedStrategies& rs,
                                    const std::vector<double>& values,
                                    const std::vector<uint32_t>& cur_idx,
                                    const std::vector<uint32_t>& best_idx,
                                    const std::vector<uint8_t>& queued) {
  (void)a;
  const NodeId n = inst.num_users();
  for (NodeId v = 0; v < n; ++v) {
    if (rs.forced[v] != internal::ReducedStrategies::kNoForced) continue;
    const double* row = values.data() + rs.offsets[v];
    if (internal::StrictlyBetter(row[best_idx[v]], row[cur_idx[v]]) &&
        (queued.empty() || queued[v] == 0)) {
      return Status::FailedPrecondition(
          "unhappy user outside the worklist: " + UserStr(v) + " current=" +
          std::to_string(row[cur_idx[v]]) +
          " best=" + std::to_string(row[best_idx[v]]));
    }
  }
  return Status::OK();
}

Status CheckColorGroupsIndependent(const Graph& g, const Coloring& coloring) {
  std::vector<uint8_t> in_group(g.num_nodes(), 0);
  for (size_t c = 0; c < coloring.groups.size(); ++c) {
    const std::vector<NodeId>& group = coloring.groups[c];
    for (const NodeId v : group) in_group[v] = 1;
    for (const NodeId v : group) {
      for (const Neighbor& nb : g.neighbors(v)) {
        if (in_group[nb.node]) {
          return Status::FailedPrecondition(
              "color class " + std::to_string(c) +
              " is not an independent set: edge {" + std::to_string(v) + "," +
              std::to_string(nb.node) + "} inside the class");
        }
      }
    }
    for (const NodeId v : group) in_group[v] = 0;
  }
  return Status::OK();
}

Status CheckForcedRespected(const internal::ReducedStrategies& rs,
                            const Assignment& a) {
  for (NodeId v = 0; v < a.size(); ++v) {
    if (rs.forced[v] != internal::ReducedStrategies::kNoForced &&
        a[v] != rs.forced[v]) {
      return Status::FailedPrecondition(
          "eliminated user deviated from its forced strategy: " + UserStr(v) +
          " forced=" + std::to_string(rs.forced[v]) +
          " assigned=" + std::to_string(a[v]));
    }
  }
  return Status::OK();
}

}  // namespace audit
}  // namespace rmgp
