#include "core/dynamic_game.h"

#include <algorithm>
#include <string>

#include "core/solver_internal.h"
#include "util/logging.h"
#include "util/rng.h"

namespace rmgp {

using internal::StrictlyBetter;

DynamicGame::DynamicGame(std::shared_ptr<const Graph> graph,
                         std::vector<Point> users, std::vector<Point> events,
                         double alpha, double cost_scale)
    : graph_owner_(std::move(graph)),
      graph_(graph_owner_.get()),
      users_(std::move(users)),
      events_(std::move(events)),
      alpha_(alpha),
      cost_scale_(cost_scale) {}

Result<std::unique_ptr<DynamicGame>> DynamicGame::Create(
    const Graph* graph, std::vector<Point> user_locations,
    std::vector<Point> events, double alpha, double cost_scale,
    const SolverOptions& options) {
  // Non-owning alias: the caller guarantees the graph outlives the game.
  return Create(std::shared_ptr<const Graph>(std::shared_ptr<void>(), graph),
                std::move(user_locations), std::move(events), alpha,
                cost_scale, options);
}

Result<std::unique_ptr<DynamicGame>> DynamicGame::Create(
    std::shared_ptr<const Graph> graph, std::vector<Point> user_locations,
    std::vector<Point> events, double alpha, double cost_scale,
    const SolverOptions& options) {
  if (graph == nullptr) return Status::InvalidArgument("graph is null");
  if (user_locations.size() != graph->num_nodes()) {
    return Status::InvalidArgument("one location per user required");
  }
  if (events.empty()) {
    return Status::InvalidArgument("need at least one event");
  }
  if (!(alpha > 0.0 && alpha < 1.0)) {
    return Status::InvalidArgument("alpha must be in (0,1)");
  }
  if (cost_scale <= 0.0) {
    return Status::InvalidArgument("cost_scale must be positive");
  }

  std::unique_ptr<DynamicGame> game(
      new DynamicGame(std::move(graph), std::move(user_locations),
                      std::move(events), alpha, cost_scale));
  const NodeId n = game->graph_->num_nodes();
  const ClassId k = game->num_events();
  game->capacity_ = std::max<size_t>(k, 8);
  game->table_.assign(static_cast<size_t>(n) * game->capacity_, 0.0);
  game->max_sc_.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    game->max_sc_[v] = (1.0 - alpha) * 0.5 * game->graph_->weighted_degree(v);
  }
  game->max_rounds_ = options.max_rounds;

  // Initial strategies.
  game->assignment_.resize(n);
  Rng rng(options.seed);
  for (NodeId v = 0; v < n; ++v) {
    switch (options.init) {
      case InitPolicy::kRandom:
        game->assignment_[v] = static_cast<ClassId>(rng.UniformInt(k));
        break;
      case InitPolicy::kGiven:
        if (options.warm_start.size() != n ||
            options.warm_start[v] >= k) {
          return Status::InvalidArgument("bad warm start");
        }
        game->assignment_[v] = options.warm_start[v];
        break;
      case InitPolicy::kClosestClass: {
        ClassId best = 0;
        double best_d = DistanceSquared(game->users_[v], game->events_[0]);
        for (ClassId p = 1; p < k; ++p) {
          const double d =
              DistanceSquared(game->users_[v], game->events_[p]);
          if (d < best_d) {
            best_d = d;
            best = p;
          }
        }
        game->assignment_[v] = best;
        break;
      }
    }
  }

  game->happy_.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) game->RebuildRow(v);
  for (NodeId v = 0; v < n; ++v) game->RefreshHappiness(v);
  game->Settle();
  return game;
}

double DynamicGame::UserClassCost(NodeId v, ClassId p) const {
  return alpha_ * cost_scale_ * Distance(users_[v], events_[p]) +
         max_sc_[v];
}

void DynamicGame::RebuildRow(NodeId v) {
  double* row = table_.data() + static_cast<size_t>(v) * capacity_;
  const ClassId k = num_events();
  for (ClassId p = 0; p < k; ++p) row[p] = UserClassCost(v, p);
  const double social = 1.0 - alpha_;
  for (const Neighbor& nb : graph_->neighbors(v)) {
    row[assignment_[nb.node]] -= social * 0.5 * nb.weight;
  }
}

void DynamicGame::RefreshHappiness(NodeId v) {
  const double* row = table_.data() + static_cast<size_t>(v) * capacity_;
  const ClassId k = num_events();
  double best = row[0];
  for (ClassId p = 1; p < k; ++p) best = std::min(best, row[p]);
  happy_[v] = !StrictlyBetter(best, row[assignment_[v]]);
}

void DynamicGame::ApplySwitch(NodeId v, ClassId to) {
  const ClassId old = assignment_[v];
  assignment_[v] = to;
  const double social = 1.0 - alpha_;
  for (const Neighbor& nb : graph_->neighbors(v)) {
    const NodeId f = nb.node;
    double* frow = table_.data() + static_cast<size_t>(f) * capacity_;
    const double delta = social * 0.5 * nb.weight;
    frow[to] -= delta;
    frow[old] += delta;
    if (assignment_[f] == old ||
        StrictlyBetter(frow[to], frow[assignment_[f]])) {
      happy_[f] = 0;
    }
  }
}

uint64_t DynamicGame::Settle() {
  const NodeId n = graph_->num_nodes();
  const ClassId k = num_events();
  std::vector<ClassId> before = assignment_;
  for (uint32_t round = 0; round < max_rounds_; ++round) {
    uint64_t deviations = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (happy_[v]) continue;
      ++total_examinations_;
      const double* row = table_.data() + static_cast<size_t>(v) * capacity_;
      ClassId best = 0;
      for (ClassId p = 1; p < k; ++p) {
        if (row[p] < row[best]) best = p;
      }
      happy_[v] = 1;
      if (StrictlyBetter(row[best], row[assignment_[v]])) {
        ApplySwitch(v, best);
        ++deviations;
      }
    }
    if (deviations == 0) break;
  }
  return CountReassigned(before, assignment_);
}

Result<uint64_t> DynamicGame::UpdateUserLocation(NodeId v,
                                                 const Point& location) {
  if (v >= graph_->num_nodes()) {
    return Status::InvalidArgument("user out of range");
  }
  users_[v] = location;
  // Only v's assignment costs change; the social credits in other rows
  // depend on v's class, not its location.
  RebuildRow(v);
  RefreshHappiness(v);
  return Settle();
}

Result<uint64_t> DynamicGame::ApplyEpoch(const GraphEpochUpdate& update) {
  if (update.graph == nullptr) {
    return Status::InvalidArgument("epoch update carries no graph");
  }
  const NodeId old_n = graph_->num_nodes();
  const NodeId new_n = update.graph->num_nodes();
  if (static_cast<size_t>(new_n) != old_n + update.appended.size()) {
    return Status::InvalidArgument("appended-user count mismatch");
  }
  for (const auto& [v, p] : update.moved) {
    (void)p;
    if (v >= old_n) return Status::InvalidArgument("moved user out of range");
  }
  for (const NodeId v : update.touched) {
    if (v >= new_n) {
      return Status::InvalidArgument("touched vertex out of range");
    }
  }

  // Commit point: no failure paths below.
  graph_owner_ = update.graph;
  graph_ = graph_owner_.get();
  for (const auto& [v, p] : update.moved) users_[v] = p;
  users_.insert(users_.end(), update.appended.begin(), update.appended.end());

  const ClassId k = num_events();
  if (new_n > old_n) {
    table_.resize(static_cast<size_t>(new_n) * capacity_, 0.0);
    max_sc_.resize(new_n, 0.0);
    happy_.resize(new_n, 0);
    assignment_.resize(new_n);
    // Seed appended users at their closest class (max_sc is a per-row
    // constant, so distance argmin == row argmin for an edgeless seed);
    // their real rows are built below — every appended id is touched.
    for (NodeId v = old_n; v < new_n; ++v) {
      ClassId best = 0;
      double best_d = DistanceSquared(users_[v], events_[0]);
      for (ClassId p = 1; p < k; ++p) {
        const double d = DistanceSquared(users_[v], events_[p]);
        if (d < best_d) {
          best_d = d;
          best = p;
        }
      }
      assignment_[v] = best;
    }
  }

  // Only touched vertices' rows change: an edge edit moves the incident
  // weight term (max_sc) and one credit in each endpoint's row, and a
  // moved user's assignment-cost column is location-dependent. Third
  // parties react through ApplySwitch during Settle, if at all.
  const double social = 1.0 - alpha_;
  for (const NodeId v : update.touched) {
    max_sc_[v] = social * 0.5 * graph_->weighted_degree(v);
  }
  for (const auto& [v, p] : update.moved) {
    (void)p;
    RebuildRow(v);
  }
  for (const NodeId v : update.touched) RebuildRow(v);
  for (const auto& [v, p] : update.moved) {
    (void)p;
    RefreshHappiness(v);
  }
  // Wake the touched set plus its 1-hop frontier (ISSUE spec: the
  // worklist incremental re-equilibration starts from).
  for (const NodeId v : update.touched) {
    RefreshHappiness(v);
    for (const Neighbor& nb : graph_->neighbors(v)) happy_[nb.node] = 0;
  }
  return Settle();
}

Result<uint64_t> DynamicGame::AddEvent(const Point& location) {
  const ClassId new_id = num_events();
  events_.push_back(location);
  const NodeId n = graph_->num_nodes();
  if (static_cast<size_t>(new_id) + 1 > capacity_) {
    // Grow the row capacity (amortized doubling) and re-pack rows.
    const size_t new_capacity = capacity_ * 2;
    std::vector<double> grown(static_cast<size_t>(n) * new_capacity, 0.0);
    for (NodeId v = 0; v < n; ++v) {
      std::copy_n(table_.data() + static_cast<size_t>(v) * capacity_,
                  capacity_,
                  grown.data() + static_cast<size_t>(v) * new_capacity);
    }
    table_ = std::move(grown);
    capacity_ = new_capacity;
  }
  // Nobody attends the new event yet, so its column is pure assignment
  // cost; users for whom it undercuts their current class become unhappy.
  for (NodeId v = 0; v < n; ++v) {
    double* row = table_.data() + static_cast<size_t>(v) * capacity_;
    row[new_id] = UserClassCost(v, new_id);
    if (StrictlyBetter(row[new_id], row[assignment_[v]])) happy_[v] = 0;
  }
  return Settle();
}

Result<uint64_t> DynamicGame::RemoveEvent(ClassId p) {
  const ClassId k = num_events();
  if (p >= k) return Status::InvalidArgument("event out of range");
  if (k == 1) {
    return Status::FailedPrecondition("cannot remove the only event");
  }
  const NodeId n = graph_->num_nodes();
  const double social = 1.0 - alpha_;

  // 1. Attendees of p, before any renumbering.
  std::vector<NodeId> attendees;
  for (NodeId v = 0; v < n; ++v) {
    if (assignment_[v] == p) attendees.push_back(v);
  }
  // 2. Remove their social contribution from friends' rows (the credit
  // for "my friend is at p" disappears with the event).
  for (NodeId v : attendees) {
    for (const Neighbor& nb : graph_->neighbors(v)) {
      double* frow =
          table_.data() + static_cast<size_t>(nb.node) * capacity_;
      frow[p] += social * 0.5 * nb.weight;
      if (assignment_[nb.node] == p) happy_[nb.node] = 0;
    }
  }
  // 3. Swap-remove the column: the last event takes id p.
  const ClassId last = k - 1;
  events_[p] = events_[last];
  events_.pop_back();
  if (p != last) {
    for (NodeId v = 0; v < n; ++v) {
      double* row = table_.data() + static_cast<size_t>(v) * capacity_;
      row[p] = row[last];
      if (assignment_[v] == last) assignment_[v] = p;
    }
  }
  // 4. Re-seed the displaced attendees at their best remaining class.
  const ClassId new_k = num_events();
  for (NodeId v : attendees) {
    const double* row = table_.data() + static_cast<size_t>(v) * capacity_;
    ClassId best = 0;
    for (ClassId c = 1; c < new_k; ++c) {
      if (row[c] < row[best]) best = c;
    }
    // assignment_[v] currently names a dead class; install `best` and
    // credit friends (ApplySwitch would wrongly debit the dead class).
    assignment_[v] = best;
    for (const Neighbor& nb : graph_->neighbors(v)) {
      double* frow =
          table_.data() + static_cast<size_t>(nb.node) * capacity_;
      const double delta = social * 0.5 * nb.weight;
      frow[best] -= delta;
      if (StrictlyBetter(frow[best], frow[assignment_[nb.node]])) {
        happy_[nb.node] = 0;
      }
    }
    happy_[v] = 1;
  }
  for (NodeId v : attendees) RefreshHappiness(v);
  return Settle();
}

CostBreakdown DynamicGame::Objective() const {
  CostBreakdown out;
  const NodeId n = graph_->num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    out.raw_assignment +=
        cost_scale_ * Distance(users_[v], events_[assignment_[v]]);
    for (const Neighbor& nb : graph_->neighbors(v)) {
      if (v < nb.node && assignment_[v] != assignment_[nb.node]) {
        out.raw_social += nb.weight;
      }
    }
  }
  out.assignment = alpha_ * out.raw_assignment;
  out.social = (1.0 - alpha_) * out.raw_social;
  out.total = out.assignment + out.social;
  return out;
}

Status DynamicGame::Verify() const {
  const NodeId n = graph_->num_nodes();
  const ClassId k = num_events();
  const double social = 1.0 - alpha_;
  for (NodeId v = 0; v < n; ++v) {
    // Recompute the row from scratch and compare against the maintained
    // table, then check the no-deviation condition.
    std::vector<double> fresh(k);
    for (ClassId p = 0; p < k; ++p) fresh[p] = UserClassCost(v, p);
    for (const Neighbor& nb : graph_->neighbors(v)) {
      fresh[assignment_[nb.node]] -= social * 0.5 * nb.weight;
    }
    const double* row = table_.data() + static_cast<size_t>(v) * capacity_;
    for (ClassId p = 0; p < k; ++p) {
      if (std::abs(fresh[p] - row[p]) > 1e-6 * (1.0 + std::abs(fresh[p]))) {
        return Status::Internal("stale table row for user " +
                                std::to_string(v));
      }
    }
    for (ClassId p = 0; p < k; ++p) {
      if (fresh[p] < fresh[assignment_[v]] - 1e-9) {
        return Status::FailedPrecondition(
            "user " + std::to_string(v) + " can deviate to class " +
            std::to_string(p));
      }
    }
  }
  return Status::OK();
}

}  // namespace rmgp
