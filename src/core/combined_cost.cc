#include "core/combined_cost.h"

#include <string>

namespace rmgp {

Result<std::shared_ptr<CombinedCostProvider>> CombinedCostProvider::Create(
    std::vector<Term> terms) {
  if (terms.empty()) {
    return Status::InvalidArgument("need at least one cost criterion");
  }
  for (size_t i = 0; i < terms.size(); ++i) {
    if (terms[i].provider == nullptr) {
      return Status::InvalidArgument("criterion " + std::to_string(i) +
                                     " is null");
    }
    if (terms[i].weight <= 0.0) {
      return Status::InvalidArgument("criterion " + std::to_string(i) +
                                     " has non-positive weight");
    }
    if (terms[i].provider->num_users() != terms[0].provider->num_users() ||
        terms[i].provider->num_classes() !=
            terms[0].provider->num_classes()) {
      return Status::InvalidArgument(
          "criterion " + std::to_string(i) +
          " disagrees on user/class counts with criterion 0");
    }
  }
  return std::shared_ptr<CombinedCostProvider>(
      new CombinedCostProvider(std::move(terms)));
}

CombinedCostProvider::CombinedCostProvider(std::vector<Term> terms)
    : terms_(std::move(terms)),
      num_users_(terms_[0].provider->num_users()),
      num_classes_(terms_[0].provider->num_classes()) {}

double CombinedCostProvider::Cost(NodeId v, ClassId p) const {
  double total = 0.0;
  for (const Term& term : terms_) {
    total += term.weight * term.provider->Cost(v, p);
  }
  return total;
}

void CombinedCostProvider::CostsFor(NodeId v, double* out) const {
  std::vector<double> scratch(num_classes_);
  for (ClassId p = 0; p < num_classes_; ++p) out[p] = 0.0;
  for (const Term& term : terms_) {
    term.provider->CostsFor(v, scratch.data());
    for (ClassId p = 0; p < num_classes_; ++p) {
      out[p] += term.weight * scratch[p];
    }
  }
}

}  // namespace rmgp
