#ifndef RMGP_CORE_SOLVER_AUDIT_H_
#define RMGP_CORE_SOLVER_AUDIT_H_

#include <cstdint>
#include <vector>

#include "core/instance.h"
#include "core/objective.h"
#include "core/solver_internal.h"
#include "graph/coloring.h"
#include "util/status.h"

namespace rmgp {
namespace audit {

/// Debug-build audits of the solver invariants that PR 2's incremental hot
/// paths rely on. Each function recomputes some quantity from scratch and
/// compares it against the solver's incrementally-maintained state,
/// returning FailedPrecondition naming the first mismatch. They are wired
/// into the solvers behind RMGP_DCHECK_OK (util/dcheck.h), so a build
/// without -DRMGP_DCHECKS=ON never evaluates them:
///
///   * Φ strictly decreases across every round that accepted a deviation
///     (Lemma 2 — the convergence argument itself);
///   * global-table rows match a fresh best-response computation and each
///     cached per-row argmin is exact for its stored row (a stale cache
///     compiles into a plausible but non-Nash "equilibrium");
///   * worklist completeness: no unhappy user outside a worklist (a lost
///     wakeup makes the solver converge early with profitable deviations
///     left on the table);
///   * RMGP_is/RMGP_all color classes are independent sets (a violated
///     coloring races parallel best responses).
///
/// All audits are O(n·k / stride + n + Σdeg) — affordable every round on
/// test instances, and free when RMGP_DCHECKS is off.

/// Default row-sampling stride for the table audits: audit every row on
/// small instances, ~256 evenly-spaced rows on large ones.
inline NodeId SampleStride(NodeId n) {
  return n <= 256 ? 1 : n / 256;
}

/// Recomputes Φ (Equation 4) from scratch and checks it strictly decreased
/// from `prev_phi`. Call only after a round that accepted at least one
/// deviation. On success `*phi_out` holds the recomputed value for the next
/// round's comparison. Also validates the assignment shape/range.
Status CheckPotentialDecreased(const Instance& inst, const Assignment& a,
                               double prev_phi, double* phi_out);

/// Audits the dense |V|×k global table of RMGP_gt / RMGP_pq:
///   * rows v = 0, stride, 2·stride, ... are recomputed from scratch and
///     compared cell-by-cell (tolerance absorbs incremental-update rounding
///     drift);
///   * each sampled row's cached argmin `best[v]` must be the lowest-index
///     argmin of the *stored* row (exact — the cache maintains this);
///   * Σ_v table[v][a[v]] over all users must match the freshly evaluated
///     objective (Equation 1) — the "incremental objective" identity.
Status CheckDenseTable(const Instance& inst, const Assignment& a,
                       const std::vector<double>& max_sc, const double* table,
                       const ClassId* best, NodeId stride);

/// Checks that every unhappy user (stored row strictly prefers best[v] over
/// a[v]) is on a worklist: queued[v] != 0. An empty `queued` means "nothing
/// is queued" (RMGP_pq's drained heap) — then no user may be unhappy.
Status CheckDenseWorklistComplete(const Instance& inst, const Assignment& a,
                                  const double* table, const ClassId* best,
                                  const std::vector<uint8_t>& queued);

/// Same audits for RMGP_all's reduced table (values/cur_idx/best_idx over
/// rs.StrategiesOf(v)). Rows of forced users are skipped: the solver
/// neither maintains nor reads them after round 0.
Status CheckReducedTable(const Instance& inst, const Assignment& a,
                         const std::vector<double>& max_sc,
                         const internal::ReducedStrategies& rs,
                         const std::vector<double>& values,
                         const std::vector<uint32_t>& cur_idx,
                         const std::vector<uint32_t>& best_idx, NodeId stride);

/// Worklist completeness over the reduced table (forced users skipped).
Status CheckReducedWorklistComplete(const Instance& inst, const Assignment& a,
                                    const internal::ReducedStrategies& rs,
                                    const std::vector<double>& values,
                                    const std::vector<uint32_t>& cur_idx,
                                    const std::vector<uint32_t>& best_idx,
                                    const std::vector<uint8_t>& queued);

/// Every scheduled color group must be an independent set of `g`. Operates
/// on the groups actually scheduled (RMGP_all erases eliminated users
/// first), so it intentionally does not require the groups to cover V —
/// use ValidateColoring (graph/coloring.h) for full colorings.
Status CheckColorGroupsIndependent(const Graph& g, const Coloring& coloring);

/// §4.1 contract: every user with a forced strategy holds exactly that
/// strategy (RMGP_se / RMGP_all).
Status CheckForcedRespected(const internal::ReducedStrategies& rs,
                            const Assignment& a);

}  // namespace audit
}  // namespace rmgp

#endif  // RMGP_CORE_SOLVER_AUDIT_H_
