#include "shard/worker.h"

#include <utility>

#include "util/logging.h"

namespace rmgp {
namespace shard {

ShardWorker::ShardWorker(ShardWorkerOptions options)
    : options_(std::move(options)) {}

Status ShardWorker::Run() {
  auto conn_or =
      net::Connection::Dial(options_.host, options_.port,
                            options_.dial_timeout_ms);
  if (!conn_or.ok()) return conn_or.status();
  net::Connection conn = std::move(conn_or).value();

  RMGP_RETURN_IF_ERROR(conn.SendFrame(kHello, EncodeAck(kProtocolMagic),
                                      options_.io_timeout_ms));
  auto welcome = conn.ReadFrame(options_.io_timeout_ms);
  if (!welcome.ok()) return welcome.status();
  if (welcome->type != kWelcome) {
    return Status::Internal("expected kWelcome from the coordinator");
  }
  auto id_or = DecodeAck(welcome->payload);
  if (!id_or.ok()) return id_or.status();
  worker_id_ = static_cast<uint32_t>(id_or.value());

  for (;;) {
    if (options_.stop != nullptr &&
        options_.stop->load(std::memory_order_relaxed)) {
      break;  // SIGTERM et al.: exit 0 without waiting for the coordinator
    }
    auto frame_or = conn.ReadFrame(options_.poll_interval_ms);
    if (!frame_or.ok()) {
      const StatusCode code = frame_or.status().code();
      if (code == StatusCode::kDeadlineExceeded) continue;  // idle poll
      if (code == StatusCode::kUnavailable) break;  // coordinator gone
      return frame_or.status();
    }
    const net::Frame& frame = frame_or.value();
    Status handled = Status::OK();
    switch (frame.type) {
      case kLoadShard:
        handled = HandleLoadShard(conn, frame.payload);
        break;
      case kQueryInit:
        handled = HandleQueryInit(conn, frame.payload);
        break;
      case kGsv:
        handled = HandleGsv(conn, frame.payload);
        break;
      case kComputeColor:
        handled = HandleComputeColor(conn, frame.payload);
        break;
      case kApplyChanges:
        handled = HandleApplyChanges(conn, frame.payload);
        break;
      case kPing:
        handled = conn.SendFrame(kPong, EncodeAck(worker_id_),
                                 options_.io_timeout_ms);
        break;
      case kShutdown:
        sent_ = conn.sent();
        received_ = conn.received();
        return Status::OK();
      default:
        handled = Status::Internal("unexpected frame type " +
                                   std::to_string(frame.type));
    }
    if (!handled.ok()) {
      // Best-effort error report before giving up; the coordinator treats
      // any wire failure as worker death anyway.
      RMGP_IGNORE_STATUS(
          conn.SendFrame(kError, handled.ToString(), options_.io_timeout_ms));
      return handled;
    }
  }
  sent_ = conn.sent();
  received_ = conn.received();
  return Status::OK();
}

Status ShardWorker::HandleLoadShard(net::Connection& conn,
                                    const std::string& payload) {
  auto shard_or = DecodeShard(payload);
  if (!shard_or.ok()) return shard_or.status();
  shard_ = std::move(shard_or).value();
  if (shard_.local_colors.size() != shard_.local_users.size() ||
      shard_.locations.size() != shard_.local_users.size()) {
    return Status::InvalidArgument("inconsistent shard payload");
  }

  // Rebuild the local view: a full-|V| id space whose adjacency holds only
  // this shard's rows. Remote users pick up spurious reverse rows (CSR
  // stores each edge at both endpoints) — harmless, because the game only
  // ever iterates local users' rows.
  GraphBuilder builder(shard_.n);
  for (const Edge& e : shard_.edges) {
    RMGP_RETURN_IF_ERROR(builder.AddEdge(e.u, e.v, e.weight));
  }
  graph_ = std::make_unique<Graph>(std::move(builder).Build());
  points_.assign(shard_.n, Point{0.0, 0.0});
  colors_.assign(shard_.n, 0);
  for (size_t i = 0; i < shard_.local_users.size(); ++i) {
    const NodeId v = shard_.local_users[i];
    if (v >= shard_.n) return Status::InvalidArgument("shard user out of range");
    points_[v] = shard_.locations[i];
    colors_[v] = shard_.local_colors[i];
  }
  // Dangling per-query state from a previous session would reference the
  // old graph; drop it before acking.
  game_.reset();
  inst_.reset();
  costs_.reset();
  return conn.SendFrame(kAck, EncodeAck(shard_.session_version),
                        options_.io_timeout_ms);
}

Status ShardWorker::HandleQueryInit(net::Connection& conn,
                                    const std::string& payload) {
  if (graph_ == nullptr) {
    return Status::FailedPrecondition("query before shard load");
  }
  auto query_or = DecodeQueryInit(payload);
  if (!query_or.ok()) return query_or.status();
  QueryInitPayload query = std::move(query_or).value();

  costs_ = std::make_shared<EuclideanCostProvider>(points_, query.events);
  auto inst_or = Instance::Create(graph_.get(), costs_, query.alpha);
  if (!inst_or.ok()) return inst_or.status();
  inst_ = std::make_unique<Instance>(std::move(inst_or).value());
  inst_->set_cost_scale(query.cost_scale);

  SolverOptions options;
  options.init = static_cast<InitPolicy>(query.init);
  options.seed = query.seed;
  if (query.warm) {
    if (query.warm_local.size() != shard_.local_users.size()) {
      return Status::InvalidArgument("warm start size mismatch");
    }
    options.init = InitPolicy::kGiven;
    // Only local entries are ever read by InitStrategies; scatter the
    // shipped per-local warm classes into a full-size vector.
    options.warm_start.assign(shard_.n, 0);
    for (size_t i = 0; i < shard_.local_users.size(); ++i) {
      options.warm_start[shard_.local_users[i]] = query.warm_local[i];
    }
  }

  game_ = std::make_unique<SlaveGame>(*inst_, shard_.local_users, colors_);
  const std::vector<StrategyChange> lsv = game_->InitStrategies(options);
  ++queries_served_;
  color_commands_ = 0;
  return conn.SendFrame(kLsv, EncodeChanges(lsv), options_.io_timeout_ms);
}

Status ShardWorker::HandleGsv(net::Connection& conn,
                              const std::string& payload) {
  if (game_ == nullptr) {
    return Status::FailedPrecondition("gsv before query init");
  }
  auto gsv_or = DecodeGsv(payload);
  if (!gsv_or.ok()) return gsv_or.status();
  if (gsv_or->size() != shard_.n) {
    return Status::InvalidArgument("gsv size mismatch");
  }
  game_->BuildTables(gsv_or.value());
  return conn.SendFrame(kAck, EncodeAck(0), options_.io_timeout_ms);
}

Status ShardWorker::HandleComputeColor(net::Connection& conn,
                                       const std::string& payload) {
  if (game_ == nullptr) {
    return Status::FailedPrecondition("color step before query init");
  }
  if (options_.max_color_commands > 0 &&
      color_commands_ >= options_.max_color_commands) {
    // Injected crash: vanish mid-round exactly the way a killed process
    // would, so the coordinator's failure path sees a dropped connection.
    conn.Close();
    return Status::Unavailable("injected worker failure");
  }
  ++color_commands_;
  auto cmd = DecodeCommand(payload);
  if (!cmd.ok()) return cmd.status();
  const uint32_t color = static_cast<uint32_t>(cmd->first);
  const std::vector<StrategyChange> changes = game_->ComputeColor(color);
  return conn.SendFrame(kChanges, EncodeChanges(changes),
                        options_.io_timeout_ms);
}

Status ShardWorker::HandleApplyChanges(net::Connection& conn,
                                       const std::string& payload) {
  if (game_ == nullptr) {
    return Status::FailedPrecondition("apply before query init");
  }
  auto wire_or = DecodeChanges(payload);
  if (!wire_or.ok()) return wire_or.status();
  std::vector<StrategyChange> changes;
  changes.reserve(wire_or->size());
  const Assignment& gsv = game_->gsv();
  for (const WireChange& ch : wire_or.value()) {
    if (ch.user >= shard_.n) {
      return Status::InvalidArgument("change user out of range");
    }
    // old_class = our current view of the user; current for every user we
    // host a friend of (see StrategyChange in dist/slave_game.h).
    changes.push_back({ch.user, gsv[ch.user], ch.new_class});
  }
  game_->ApplyRemoteChanges(changes);
  return conn.SendFrame(kAck, EncodeAck(0), options_.io_timeout_ms);
}

}  // namespace shard
}  // namespace rmgp
