#ifndef RMGP_SHARD_MESSAGES_H_
#define RMGP_SHARD_MESSAGES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/solver.h"
#include "dist/network.h"
#include "dist/slave_game.h"
#include "graph/graph.h"
#include "spatial/point.h"
#include "util/status.h"

namespace rmgp {
namespace shard {

/// Message types carried in the net/frame.h type field. One coordinator
/// (the master of Fig 6, embedded in RmgpService) drives N workers over a
/// star topology; workers never talk to each other — with direct exchange
/// the simulation halves the hop count, but over a star the relay through
/// the coordinator is the only path (identical game outcome either way).
enum MsgType : uint32_t {
  kHello = 1,     ///< worker -> coordinator: protocol magic
  kWelcome,       ///< coordinator -> worker: assigned worker id
  kLoadShard,     ///< coordinator -> worker: shard payload; reply kAck
  kQueryInit,     ///< coordinator -> worker: query + init policy; reply kLsv
  kLsv,           ///< worker -> coordinator: local strategic vector
  kGsv,           ///< coordinator -> worker: full GSV; reply kAck
  kComputeColor,  ///< coordinator -> worker: color step; reply kChanges
  kChanges,       ///< worker -> coordinator: this color's local deviations
  kApplyChanges,  ///< coordinator -> worker: remote deviations; reply kAck
  kAck,           ///< 8-byte acknowledgement (wire::kAck)
  kPing,          ///< coordinator -> worker: liveness probe; reply kPong
  kPong,          ///< worker -> coordinator
  kShutdown,      ///< coordinator -> worker: exit cleanly, no reply
  kError,         ///< worker -> coordinator: human-readable failure
};

inline constexpr uint64_t kProtocolMagic = 0x3150474d52ull;  // "RMGP1"

/// A strategy change as it travels: (user, new_class), exactly
/// wire::kPerStrategyChange bytes. The receiver derives old_class from its
/// own GSV entry (see StrategyChange in dist/slave_game.h for why that is
/// always current).
struct WireChange {
  NodeId user;
  ClassId new_class;
};

/// Everything a worker needs to own a shard: its users, their colors,
/// their adjacency rows, and their check-in locations.
///
/// Encoding note — the one deviation from the wire:: sizes: the
/// simulation charged f32 coordinates/weights (kPerEdge = kPerLocation =
/// 12), but the sharded game must reproduce the in-process game's Φ
/// bit-for-bit, so bulk shard payloads carry f64 (16 bytes per edge, 16
/// per location). Per-query traffic (strategy entries, changes, events,
/// commands, acks) matches wire:: exactly.
struct ShardPayload {
  uint64_t session_version = 0;
  NodeId n = 0;           ///< total users in the session (GSV length)
  uint32_t num_colors = 0;
  std::vector<NodeId> local_users;      ///< ascending
  std::vector<uint32_t> local_colors;   ///< parallel to local_users
  std::vector<Edge> edges;              ///< owned rows, each edge once
  std::vector<Point> locations;         ///< parallel to local_users
};

std::string EncodeShard(const ShardPayload& shard);
Result<ShardPayload> DecodeShard(std::string_view payload);

/// Fig 6 round 0: the query broadcast. Events travel as
/// wire::kPerEvent = 20 bytes each (u32 id + two f64 coordinates); a warm
/// start (recovery replay) adds wire::kPerStrategyEntry bytes per local
/// user.
struct QueryInitPayload {
  uint64_t seq = 0;
  double alpha = 0.5;
  double cost_scale = 1.0;
  uint64_t seed = 1;
  uint32_t init = 0;  ///< InitPolicy as uint32
  std::vector<Point> events;
  bool warm = false;
  std::vector<ClassId> warm_local;  ///< parallel to the shard's local_users
};

std::string EncodeQueryInit(const QueryInitPayload& query);
Result<QueryInitPayload> DecodeQueryInit(std::string_view payload);

/// Strategy changes: wire::kPerStrategyChange bytes each, count implied by
/// the frame length.
std::string EncodeChanges(const std::vector<StrategyChange>& changes);
std::string EncodeWireChanges(const std::vector<WireChange>& changes);
Result<std::vector<WireChange>> DecodeChanges(std::string_view payload);

/// The full GSV: wire::kPerStrategyEntry bytes per user.
std::string EncodeGsv(const Assignment& gsv);
Result<Assignment> DecodeGsv(std::string_view payload);

/// Control command: wire::kCommand = 16 bytes (opcode + argument).
std::string EncodeCommand(uint64_t opcode, uint64_t arg);
Result<std::pair<uint64_t, uint64_t>> DecodeCommand(std::string_view payload);

/// Acknowledgement: wire::kAck = 8 bytes.
std::string EncodeAck(uint64_t value);
Result<uint64_t> DecodeAck(std::string_view payload);

}  // namespace shard
}  // namespace rmgp

#endif  // RMGP_SHARD_MESSAGES_H_
