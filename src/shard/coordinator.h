#ifndef RMGP_SHARD_COORDINATOR_H_
#define RMGP_SHARD_COORDINATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/solver.h"
#include "dist/decentralized.h"  // DgResult / DgRoundStats
#include "dist/network.h"
#include "dist/slave_game.h"
#include "graph/coloring.h"
#include "graph/graph.h"
#include "net/socket.h"
#include "shard/messages.h"
#include "spatial/point.h"
#include "util/status.h"

namespace rmgp {
namespace shard {

struct CoordinatorConfig {
  /// Placement of users onto workers — the session graph is cut with the
  /// same PlaceUsers the simulation uses (kLocality dogfoods the
  /// src/partition mini-METIS).
  PartitionScheme partition = PartitionScheme::kHash;
  /// Ship a strategy change only to workers hosting a friend of the
  /// changed user (identical game outcome; collapses change traffic when
  /// combined with kLocality). Requires at most 64 workers.
  bool interest_multicast = false;
  /// Per-frame I/O deadline. A worker that misses it mid-round is treated
  /// as dead — this doubles as the heartbeat timeout.
  int io_timeout_ms = 30000;
  /// Recovery attempts per query before the query fails outright.
  uint32_t max_recoveries = 8;
};

/// Liveness/failure telemetry for one coordinator (ISSUE 8 state machine:
/// detect -> reassign -> replay-from-snapshot, or fail the round when
/// quorum is lost).
struct RecoveryStats {
  uint64_t recoveries = 0;      ///< successful reassign+replay cycles
  double last_recovery_ms = 0;  ///< reassign + re-ship wall time
  uint32_t workers_lost = 0;    ///< total worker deaths observed
};

/// The master of the decentralized game (Fig 6) over real sockets: owns
/// the listener, the worker connections, the session partition, and the
/// authoritative global strategy vector. Embedded in RmgpService for
/// dist-mode queries; usable standalone from tools and tests.
///
/// Not thread-safe: serialize calls externally (RmgpService holds a mutex
/// around the coordinator).
class ShardCoordinator {
 public:
  explicit ShardCoordinator(CoordinatorConfig config);

  /// Binds the coordinator socket (port 0 = ephemeral; see port()).
  Status Listen(uint16_t port);
  uint16_t port() const { return listener_.port(); }

  /// Accepts and handshakes `count` workers (waits up to timeout_ms).
  Status AwaitWorkers(uint32_t count, int timeout_ms);

  /// Cuts the session graph into one shard per live worker (PlaceUsers +
  /// GreedyColoring, both identical to the in-process simulation) and
  /// ships the shards. Must be re-called when the session changes.
  Status LoadSession(std::shared_ptr<const Graph> graph,
                     std::vector<Point> users, uint64_t version);

  /// Runs one distributed query: round-0 handshake (init + GSV), then
  /// synchronized per-color best-response rounds until no deviations.
  /// Converged results are bit-identical to RunDecentralizedGame (and so
  /// to the centralized coloring-synchronous game) on the same inputs.
  /// Worker death mid-query triggers recovery: the dead shard is
  /// re-assigned to the least-loaded live worker and the query replays
  /// from the last equilibrium snapshot; when quorum is lost (fewer than
  /// half the original workers alive) the query fails with Unavailable —
  /// the session itself stays usable.
  Result<DgResult> Solve(const std::vector<Point>& events, double alpha,
                         double cost_scale, const SolverOptions& solver);

  /// Measured lifetime wire traffic (both directions, framing included).
  TrafficStats traffic() const;

  uint32_t num_workers() const {
    return static_cast<uint32_t>(slots_.size());
  }
  uint32_t live_workers() const;
  uint64_t session_version() const { return version_; }
  const RecoveryStats& recovery_stats() const { return recovery_; }

  /// Sends kShutdown to every live worker and closes all connections.
  Status Shutdown();

 private:
  struct WorkerSlot {
    net::Connection conn;
    std::vector<NodeId> users;
    bool alive = false;
  };

  Status ShipShard(uint32_t slot);
  /// Ping-drain barrier: pings every live worker and discards stale frames
  /// until the matching pong arrives. Workers reply strictly in request
  /// order, so after this returns every connection is quiescent — the only
  /// safe state to start (or replay) an attempt from. Workers that fail
  /// the barrier are marked dead.
  void Resync();
  /// Marks `slot` dead, folding its traffic counters into the total.
  void MarkDead(uint32_t slot, const Status& cause);
  /// Reassigns every dead slot's users to the least-loaded live worker and
  /// re-ships the merged shards. Unavailable when quorum is lost.
  Status Recover();
  Result<DgResult> RunAttempt(const Instance& inst,
                              const std::vector<Point>& events,
                              const SolverOptions& solver,
                              const Assignment& warm);
  /// Bundle for `slot`: every change it must learn about (not its own;
  /// interest-filtered under multicast).
  std::string BundleFor(uint32_t slot,
                        const std::vector<StrategyChange>& changes) const;

  CoordinatorConfig config_;
  net::Listener listener_;
  std::vector<WorkerSlot> slots_;
  TrafficStats closed_traffic_;  ///< from connections already closed

  // ---- Session state (LoadSession).
  std::shared_ptr<const Graph> graph_;
  std::vector<Point> users_;
  uint64_t version_ = 0;
  bool session_loaded_ = false;
  Coloring coloring_;
  std::vector<uint32_t> slot_of_;     ///< user -> owning slot index
  std::vector<uint64_t> interest_;    ///< multicast masks (bit = slot)

  // ---- Query state.
  uint64_t seq_ = 0;
  Assignment snapshot_;  ///< GSV after the last completed round
  RecoveryStats recovery_;
};

}  // namespace shard
}  // namespace rmgp

#endif  // RMGP_SHARD_COORDINATOR_H_
