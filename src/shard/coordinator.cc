#include "shard/coordinator.h"

#include <algorithm>
#include <utility>

#include "core/cost_provider.h"
#include "core/objective.h"
#include "util/dcheck.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace rmgp {
namespace shard {

ShardCoordinator::ShardCoordinator(CoordinatorConfig config)
    : config_(config) {}

Status ShardCoordinator::Listen(uint16_t port) {
  RMGP_ASSIGN_OR_RETURN(listener_, net::Listener::Bind(port));
  return Status::OK();
}

Status ShardCoordinator::AwaitWorkers(uint32_t count, int timeout_ms) {
  if (!listener_.open()) {
    return Status::FailedPrecondition("coordinator is not listening");
  }
  if (config_.interest_multicast && slots_.size() + count > 64) {
    return Status::InvalidArgument(
        "interest_multicast supports at most 64 workers");
  }
  for (uint32_t i = 0; i < count; ++i) {
    auto conn_or = listener_.Accept(timeout_ms);
    if (!conn_or.ok()) return conn_or.status();
    net::Connection conn = std::move(conn_or).value();
    auto hello = conn.ReadFrame(config_.io_timeout_ms);
    if (!hello.ok()) return hello.status();
    if (hello->type != kHello) {
      return Status::Internal("expected kHello from worker");
    }
    auto magic = DecodeAck(hello->payload);
    if (!magic.ok()) return magic.status();
    if (magic.value() != kProtocolMagic) {
      return Status::InvalidArgument("worker protocol magic mismatch");
    }
    const uint32_t slot = static_cast<uint32_t>(slots_.size());
    RMGP_RETURN_IF_ERROR(
        conn.SendFrame(kWelcome, EncodeAck(slot), config_.io_timeout_ms));
    WorkerSlot ws;
    ws.conn = std::move(conn);
    ws.alive = true;
    slots_.push_back(std::move(ws));
  }
  return Status::OK();
}

uint32_t ShardCoordinator::live_workers() const {
  uint32_t live = 0;
  for (const WorkerSlot& slot : slots_) live += slot.alive ? 1 : 0;
  return live;
}

TrafficStats ShardCoordinator::traffic() const {
  TrafficStats total = closed_traffic_;
  for (const WorkerSlot& slot : slots_) {
    if (!slot.conn.open()) continue;
    total.Merge(slot.conn.sent());
    total.Merge(slot.conn.received());
  }
  return total;
}

void ShardCoordinator::MarkDead(uint32_t slot, const Status& cause) {
  WorkerSlot& ws = slots_[slot];
  if (!ws.alive) return;
  RMGP_LOG(kWarning) << "worker " << slot << " died: " << cause.ToString();
  ws.alive = false;
  closed_traffic_.Merge(ws.conn.sent());
  closed_traffic_.Merge(ws.conn.received());
  ws.conn.Close();
  ++recovery_.workers_lost;
}

Status ShardCoordinator::LoadSession(std::shared_ptr<const Graph> graph,
                                     std::vector<Point> users,
                                     uint64_t version) {
  if (graph == nullptr || users.size() != graph->num_nodes()) {
    return Status::InvalidArgument("session graph/locations mismatch");
  }
  const uint32_t live = live_workers();
  if (live == 0) {
    return Status::FailedPrecondition("no live workers to shard over");
  }
  graph_ = std::move(graph);
  users_ = std::move(users);
  version_ = version;
  session_loaded_ = false;
  snapshot_.clear();

  // Same offline precomputation as the simulation: greedy coloring for the
  // color-synchronous rounds, PlaceUsers for the shard cut (kLocality
  // dogfoods the src/partition mini-METIS).
  coloring_ = GreedyColoring(*graph_);
  auto parts_or = PlaceUsers(*graph_, config_.partition, live);
  if (!parts_or.ok()) return parts_or.status();
  std::vector<std::vector<NodeId>> parts = std::move(parts_or).value();

  // Hand the i-th part to the i-th live slot. Dead slots keep empty user
  // lists; a recovery after LoadSession re-balances from here.
  uint32_t next_part = 0;
  for (WorkerSlot& slot : slots_) {
    slot.users.clear();
    if (slot.alive) slot.users = std::move(parts[next_part++]);
  }
  slot_of_.assign(graph_->num_nodes(), 0);
  for (uint32_t s = 0; s < slots_.size(); ++s) {
    for (const NodeId v : slots_[s].users) slot_of_[v] = s;
  }
  interest_ = config_.interest_multicast
                  ? BuildInterestMasks(*graph_, slot_of_)
                  : std::vector<uint64_t>();

  for (uint32_t s = 0; s < slots_.size(); ++s) {
    if (!slots_[s].alive) continue;
    if (Status st = ShipShard(s); !st.ok()) {
      MarkDead(s, st);
      return st;
    }
  }
  session_loaded_ = true;
  return Status::OK();
}

Status ShardCoordinator::ShipShard(uint32_t slot) {
  WorkerSlot& ws = slots_[slot];
  ShardPayload payload;
  payload.session_version = version_;
  payload.n = graph_->num_nodes();
  payload.num_colors = coloring_.num_colors();
  payload.local_users = ws.users;
  std::sort(payload.local_users.begin(), payload.local_users.end());
  payload.local_colors.reserve(payload.local_users.size());
  payload.locations.reserve(payload.local_users.size());
  for (const NodeId v : payload.local_users) {
    payload.local_colors.push_back(coloring_.color[v]);
    payload.locations.push_back(users_[v]);
  }
  // Owned adjacency rows. Each local-local edge must reach the worker's
  // GraphBuilder exactly once (the builder sums duplicates); local-remote
  // edges appear in exactly one of the two rows we iterate, so they are
  // emitted unconditionally.
  for (const NodeId v : payload.local_users) {
    for (const Neighbor& nb : graph_->neighbors(v)) {
      if (slot_of_[nb.node] == slot && nb.node < v) {
        continue;  // local-local edge, already emitted from the lower row
      }
      payload.edges.push_back({v, nb.node, nb.weight});
    }
  }
  RMGP_RETURN_IF_ERROR(ws.conn.SendFrame(kLoadShard, EncodeShard(payload),
                                         config_.io_timeout_ms));
  auto ack = ws.conn.ReadFrame(config_.io_timeout_ms);
  if (!ack.ok()) return ack.status();
  if (ack->type != kAck) {
    return Status::Internal("expected shard ack, got frame type " +
                            std::to_string(ack->type));
  }
  return Status::OK();
}

void ShardCoordinator::Resync() {
  for (uint32_t s = 0; s < slots_.size(); ++s) {
    if (!slots_[s].alive) continue;
    Status st = slots_[s].conn.SendFrame(kPing, EncodeCommand(kPing, seq_),
                                         config_.io_timeout_ms);
    if (!st.ok()) {
      MarkDead(s, st);
      continue;
    }
    // Discard everything queued ahead of the pong. The worker serves
    // requests one at a time in arrival order, so at most a handful of
    // replies to already-sent requests can precede it; the cap only
    // guards against a malfunctioning peer flooding the stream.
    for (int drained = 0; drained < 1024; ++drained) {
      auto frame = slots_[s].conn.ReadFrame(config_.io_timeout_ms);
      if (!frame.ok()) {
        MarkDead(s, frame.status());
        break;
      }
      if (frame->type == kPong) break;
    }
  }
}

Status ShardCoordinator::Recover() {
  Stopwatch sw;
  const uint32_t live = live_workers();
  // Quorum: fewer than half the original workers alive fails the query
  // (not the session — the caller can still solve locally or retry after
  // workers rejoin).
  if (live == 0 || live * 2 < slots_.size()) {
    return Status::Unavailable(
        "quorum lost: " + std::to_string(live) + " of " +
        std::to_string(slots_.size()) + " workers alive");
  }

  // Re-assign every dead slot's users to the least-loaded live worker.
  std::vector<uint32_t> reshipped;
  for (uint32_t s = 0; s < slots_.size(); ++s) {
    if (slots_[s].alive || slots_[s].users.empty()) continue;
    uint32_t target = UINT32_MAX;
    for (uint32_t t = 0; t < slots_.size(); ++t) {
      if (!slots_[t].alive) continue;
      if (target == UINT32_MAX ||
          slots_[t].users.size() < slots_[target].users.size()) {
        target = t;
      }
    }
    for (const NodeId v : slots_[s].users) slot_of_[v] = target;
    slots_[target].users.insert(slots_[target].users.end(),
                                slots_[s].users.begin(),
                                slots_[s].users.end());
    slots_[s].users.clear();
    if (std::find(reshipped.begin(), reshipped.end(), target) ==
        reshipped.end()) {
      reshipped.push_back(target);
    }
  }
  if (config_.interest_multicast) {
    interest_ = BuildInterestMasks(*graph_, slot_of_);
  }
  for (const uint32_t s : reshipped) {
    if (Status st = ShipShard(s); !st.ok()) {
      MarkDead(s, st);
      return Recover();  // cascade: the merge target died too
    }
  }
  ++recovery_.recoveries;
  recovery_.last_recovery_ms = sw.ElapsedMillis();
  return Status::OK();
}

std::string ShardCoordinator::BundleFor(
    uint32_t slot, const std::vector<StrategyChange>& changes) const {
  std::vector<WireChange> bundle;
  for (const StrategyChange& ch : changes) {
    if (slot_of_[ch.user] == slot) continue;  // its own change
    if (config_.interest_multicast &&
        ((interest_[ch.user] >> slot) & 1) == 0) {
      continue;  // no friend of ch.user lives on this worker
    }
    bundle.push_back({ch.user, ch.new_class});
  }
  return EncodeWireChanges(bundle);
}

Result<DgResult> ShardCoordinator::Solve(const std::vector<Point>& events,
                                         double alpha, double cost_scale,
                                         const SolverOptions& solver) {
  if (!session_loaded_) {
    return Status::FailedPrecondition("no session loaded");
  }
  if (events.empty()) {
    return Status::InvalidArgument("query carries no events");
  }

  auto costs = std::make_shared<EuclideanCostProvider>(users_, events);
  auto inst_or = Instance::Create(graph_.get(), std::move(costs), alpha);
  if (!inst_or.ok()) return inst_or.status();
  Instance inst = std::move(inst_or).value();
  inst.set_cost_scale(cost_scale);

  // Liveness probe + stale-frame drain before committing to the round
  // protocol, so deaths between queries are absorbed up-front instead of
  // burning an attempt.
  Resync();
  if (live_workers() < slots_.size()) {
    RMGP_RETURN_IF_ERROR(Recover());
  }

  // Replay loop: a worker death mid-attempt marks the slot dead; recovery
  // reassigns its shard and the attempt restarts from the last equilibrium
  // snapshot (warm start), preserving convergence without restarting the
  // session.
  Assignment warm;  // empty = cold start
  for (uint32_t attempt = 0; attempt <= config_.max_recoveries; ++attempt) {
    Result<DgResult> result = RunAttempt(inst, events, solver, warm);
    if (result.ok()) {
#ifdef RMGP_DCHECKS_ENABLED
      if (result->converged) {
        RMGP_DCHECK_OK(VerifyEquilibrium(inst, result->assignment));
      }
#endif
      return result;
    }
    const StatusCode code = result.status().code();
    if (code != StatusCode::kUnavailable &&
        code != StatusCode::kDeadlineExceeded) {
      return result.status();
    }
    // A mid-round death leaves survivors with unread in-flight replies;
    // drain them to a quiescent state before re-sharding and replaying.
    Resync();
    RMGP_RETURN_IF_ERROR(Recover());
    warm = snapshot_;  // replay from the last completed round
  }
  return Status::Unavailable("recovery budget exhausted");
}

Result<DgResult> ShardCoordinator::RunAttempt(
    const Instance& inst, const std::vector<Point>& events,
    const SolverOptions& solver, const Assignment& warm) {
  const NodeId n = graph_->num_nodes();
  ++seq_;
  DgResult res;
  Stopwatch total_sw;
  const TrafficStats query_base = traffic();

  // Per-slot send/read with death detection folded in.
  const auto send_to = [&](uint32_t s, uint32_t type,
                           const std::string& payload) -> Status {
    Status st = slots_[s].conn.SendFrame(type, payload, config_.io_timeout_ms);
    if (!st.ok()) MarkDead(s, st);
    return st;
  };
  const auto read_from = [&](uint32_t s,
                             uint32_t expect) -> Result<net::Frame> {
    auto frame = slots_[s].conn.ReadFrame(config_.io_timeout_ms);
    if (!frame.ok()) {
      MarkDead(s, frame.status());
      return frame.status();
    }
    if (frame->type == kError) {
      Status st = Status::Internal("worker " + std::to_string(s) +
                                   " reported: " + frame->payload);
      MarkDead(s, st);
      return st;
    }
    if (frame->type != expect) {
      Status st = Status::Internal(
          "worker " + std::to_string(s) + ": expected frame type " +
          std::to_string(expect) + ", got " + std::to_string(frame->type));
      MarkDead(s, st);
      return st;
    }
    return frame;
  };

  // ---- Round 0: initialization handshake (Fig 6 lines 1-13).
  DgRoundStats round0;
  {
    Stopwatch sw;
    const TrafficStats base = traffic();
    QueryInitPayload init;
    init.seq = seq_;
    init.alpha = inst.alpha();
    init.cost_scale = inst.cost_scale();
    init.seed = solver.seed;
    init.init = static_cast<uint32_t>(solver.init);
    init.events = events;
    for (uint32_t s = 0; s < slots_.size(); ++s) {
      if (!slots_[s].alive) continue;
      init.warm = !warm.empty();
      init.warm_local.clear();
      if (init.warm) {
        init.warm_local.reserve(slots_[s].users.size());
        std::vector<NodeId> sorted = slots_[s].users;
        std::sort(sorted.begin(), sorted.end());
        for (const NodeId v : sorted) init.warm_local.push_back(warm[v]);
      }
      RMGP_RETURN_IF_ERROR(send_to(s, kQueryInit, EncodeQueryInit(init)));
    }
    Assignment master_gsv(n, 0);
    for (uint32_t s = 0; s < slots_.size(); ++s) {
      if (!slots_[s].alive) continue;
      RMGP_ASSIGN_OR_RETURN(net::Frame lsv, read_from(s, kLsv));
      RMGP_ASSIGN_OR_RETURN(std::vector<WireChange> entries,
                            DecodeChanges(lsv.payload));
      for (const WireChange& ch : entries) {
        if (ch.user >= n) {
          return Status::Internal("worker sent out-of-range user");
        }
        master_gsv[ch.user] = ch.new_class;
      }
    }
    const std::string gsv_payload = EncodeGsv(master_gsv);
    for (uint32_t s = 0; s < slots_.size(); ++s) {
      if (!slots_[s].alive) continue;
      RMGP_RETURN_IF_ERROR(send_to(s, kGsv, gsv_payload));
    }
    for (uint32_t s = 0; s < slots_.size(); ++s) {
      if (!slots_[s].alive) continue;
      RMGP_RETURN_IF_ERROR(read_from(s, kAck).status());
    }
    snapshot_ = master_gsv;
    res.assignment = std::move(master_gsv);

    const TrafficStats now = traffic();
    round0.round = 0;
    round0.seconds = sw.ElapsedSeconds();
    round0.compute_seconds = round0.seconds;  // measured wall, no split
    round0.bytes = now.bytes - base.bytes;
    round0.messages = now.messages - base.messages;
  }
  res.round_stats.push_back(round0);

  // ---- Game rounds (Fig 6 lines 14-25).
  Assignment& master_gsv = res.assignment;
  std::vector<StrategyChange> all_changes;  // reused across color steps
  for (uint32_t round = 1; round <= solver.max_rounds; ++round) {
    Stopwatch sw;
    const TrafficStats base = traffic();
    uint64_t round_changes = 0;
    for (uint32_t color = 0; color < coloring_.num_colors(); ++color) {
      for (uint32_t s = 0; s < slots_.size(); ++s) {
        if (!slots_[s].alive) continue;
        RMGP_RETURN_IF_ERROR(
            send_to(s, kComputeColor, EncodeCommand(color, seq_)));
      }
      all_changes.clear();
      for (uint32_t s = 0; s < slots_.size(); ++s) {
        if (!slots_[s].alive) continue;
        RMGP_ASSIGN_OR_RETURN(net::Frame reply, read_from(s, kChanges));
        RMGP_ASSIGN_OR_RETURN(std::vector<WireChange> entries,
                              DecodeChanges(reply.payload));
        for (const WireChange& ch : entries) {
          if (ch.user >= n) {
            return Status::Internal("worker sent out-of-range user");
          }
          all_changes.push_back(
              {ch.user, master_gsv[ch.user], ch.new_class});
        }
      }
      for (const StrategyChange& ch : all_changes) {
        master_gsv[ch.user] = ch.new_class;
      }
      round_changes += all_changes.size();
      // Redistribute, then barrier on acks so every worker finishes the
      // color step before the next one starts (the color-synchronous
      // schedule is what keeps this identical to the centralized game).
      for (uint32_t s = 0; s < slots_.size(); ++s) {
        if (!slots_[s].alive) continue;
        RMGP_RETURN_IF_ERROR(
            send_to(s, kApplyChanges, BundleFor(s, all_changes)));
      }
      for (uint32_t s = 0; s < slots_.size(); ++s) {
        if (!slots_[s].alive) continue;
        RMGP_RETURN_IF_ERROR(read_from(s, kAck).status());
      }
    }

    DgRoundStats rs;
    rs.round = round;
    rs.deviations = round_changes;
    rs.seconds = sw.ElapsedSeconds();
    rs.compute_seconds = rs.seconds;
    const TrafficStats now = traffic();
    rs.bytes = now.bytes - base.bytes;
    rs.messages = now.messages - base.messages;
    res.round_stats.push_back(rs);
    res.rounds = round;
    snapshot_ = master_gsv;  // completed round = new recovery point
    if (round_changes == 0) {
      res.converged = true;
      break;
    }
  }

  res.objective = EvaluateObjective(inst, res.assignment);
  res.simulated_seconds = total_sw.ElapsedSeconds();  // measured, not modeled
  const TrafficStats now = traffic();
  res.traffic.bytes = now.bytes - query_base.bytes;
  res.traffic.messages = now.messages - query_base.messages;
  return res;
}

Status ShardCoordinator::Shutdown() {
  for (WorkerSlot& slot : slots_) {
    if (!slot.alive) continue;
    RMGP_IGNORE_STATUS(slot.conn.SendFrame(kShutdown, EncodeAck(0),
                                           config_.io_timeout_ms));
    closed_traffic_.Merge(slot.conn.sent());
    closed_traffic_.Merge(slot.conn.received());
    slot.conn.Close();
    slot.alive = false;
  }
  listener_.Close();
  return Status::OK();
}

}  // namespace shard
}  // namespace rmgp
