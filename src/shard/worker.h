#ifndef RMGP_SHARD_WORKER_H_
#define RMGP_SHARD_WORKER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/cost_provider.h"
#include "core/instance.h"
#include "dist/slave_game.h"
#include "graph/graph.h"
#include "net/socket.h"
#include "shard/messages.h"
#include "spatial/point.h"
#include "util/status.h"

namespace rmgp {
namespace shard {

struct ShardWorkerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int dial_timeout_ms = 10000;
  /// Cadence of the idle poll loop — how often the stop flag is checked
  /// while waiting for the next coordinator frame.
  int poll_interval_ms = 200;
  /// Per-frame I/O deadline for replies back to the coordinator.
  int io_timeout_ms = 30000;
  /// Failure injection for the recovery tests: the worker drops its
  /// connection without warning right before serving this many
  /// kComputeColor commands (0 = never).
  uint64_t max_color_commands = 0;
  /// External shutdown request (SIGTERM handler in tools/rmgp_worker sets
  /// it); checked every poll interval. May be null.
  const std::atomic<bool>* stop = nullptr;
};

/// One worker process of the sharded deployment: connects to the
/// coordinator, receives a shard of the session graph (kLoadShard),
/// reconstructs local state, and then plays the decentralized game's
/// per-color best-response steps (dist/slave_game.h — the exact logic the
/// in-process simulation runs) on command. Single-threaded and
/// socket-driven; exits cleanly on kShutdown, coordinator disconnect, or
/// the stop flag.
class ShardWorker {
 public:
  explicit ShardWorker(ShardWorkerOptions options);

  /// Dials, handshakes, and serves until shutdown. Returns OK on a clean
  /// exit (kShutdown frame, coordinator EOF, or stop flag), an error
  /// Status otherwise.
  Status Run();

  uint32_t worker_id() const { return worker_id_; }
  uint64_t queries_served() const { return queries_served_; }
  const TrafficStats& sent() const { return sent_; }
  const TrafficStats& received() const { return received_; }

 private:
  Status HandleLoadShard(net::Connection& conn, const std::string& payload);
  Status HandleQueryInit(net::Connection& conn, const std::string& payload);
  Status HandleGsv(net::Connection& conn, const std::string& payload);
  Status HandleComputeColor(net::Connection& conn, const std::string& payload);
  Status HandleApplyChanges(net::Connection& conn, const std::string& payload);

  ShardWorkerOptions options_;
  uint32_t worker_id_ = 0;
  uint64_t queries_served_ = 0;
  uint64_t color_commands_ = 0;
  TrafficStats sent_;
  TrafficStats received_;

  // ---- Shard state (rebuilt on every kLoadShard).
  ShardPayload shard_;
  std::unique_ptr<Graph> graph_;     ///< full-|V| id space, local rows only
  std::vector<Point> points_;        ///< |V|; zeros for remote users
  std::vector<uint32_t> colors_;     ///< |V|; zeros for remote users

  // ---- Per-query state (rebuilt on every kQueryInit).
  std::shared_ptr<const CostProvider> costs_;
  std::unique_ptr<Instance> inst_;
  std::unique_ptr<SlaveGame> game_;
};

}  // namespace shard
}  // namespace rmgp

#endif  // RMGP_SHARD_WORKER_H_
