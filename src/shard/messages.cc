#include "shard/messages.h"

#include "net/frame.h"

namespace rmgp {
namespace shard {

using net::PutF64;
using net::PutU32;
using net::PutU64;
using net::Reader;

namespace {

Status Truncated(const char* what) {
  return Status::InvalidArgument(std::string("truncated ") + what +
                                 " payload");
}

}  // namespace

std::string EncodeShard(const ShardPayload& shard) {
  std::string out;
  const size_t num_local = shard.local_users.size();
  out.reserve(40 + num_local * 24 + shard.edges.size() * 16);
  PutU64(out, shard.session_version);
  PutU32(out, shard.n);
  PutU32(out, shard.num_colors);
  PutU32(out, static_cast<uint32_t>(num_local));
  PutU32(out, static_cast<uint32_t>(shard.edges.size()));
  for (const NodeId v : shard.local_users) PutU32(out, v);
  for (const uint32_t c : shard.local_colors) PutU32(out, c);
  for (const Edge& e : shard.edges) {
    PutU32(out, e.u);
    PutU32(out, e.v);
    PutF64(out, e.weight);
  }
  for (const Point& p : shard.locations) {
    PutF64(out, p.x);
    PutF64(out, p.y);
  }
  return out;
}

Result<ShardPayload> DecodeShard(std::string_view payload) {
  Reader r(payload);
  ShardPayload shard;
  uint32_t num_local = 0, num_edges = 0;
  if (!r.U64(&shard.session_version) || !r.U32(&shard.n) ||
      !r.U32(&shard.num_colors) || !r.U32(&num_local) || !r.U32(&num_edges)) {
    return Truncated("shard header");
  }
  // Validate the declared counts against the bytes actually present BEFORE
  // any resize: a hostile header claiming 4 billion edges must fail here,
  // not drive a ~64 GB allocation. Exact match also covers trailing bytes.
  const uint64_t need = uint64_t{num_local} * 24 + uint64_t{num_edges} * 16;
  if (r.remaining() != need) {
    return Status::InvalidArgument(
        "shard payload size does not match its counts");
  }
  shard.local_users.resize(num_local);
  for (uint32_t i = 0; i < num_local; ++i) {
    if (!r.U32(&shard.local_users[i])) return Truncated("shard users");
  }
  shard.local_colors.resize(num_local);
  for (uint32_t i = 0; i < num_local; ++i) {
    if (!r.U32(&shard.local_colors[i])) return Truncated("shard colors");
  }
  shard.edges.resize(num_edges);
  for (uint32_t i = 0; i < num_edges; ++i) {
    Edge& e = shard.edges[i];
    if (!r.U32(&e.u) || !r.U32(&e.v) || !r.F64(&e.weight)) {
      return Truncated("shard edges");
    }
  }
  shard.locations.resize(num_local);
  for (uint32_t i = 0; i < num_local; ++i) {
    Point& p = shard.locations[i];
    if (!r.F64(&p.x) || !r.F64(&p.y)) return Truncated("shard locations");
  }
  if (!r.done()) {
    return Status::InvalidArgument("trailing bytes in shard payload");
  }
  return shard;
}

std::string EncodeQueryInit(const QueryInitPayload& query) {
  std::string out;
  out.reserve(48 + query.events.size() * wire::kPerEvent +
              query.warm_local.size() * wire::kPerStrategyEntry);
  PutU64(out, query.seq);
  PutF64(out, query.alpha);
  PutF64(out, query.cost_scale);
  PutU64(out, query.seed);
  PutU32(out, query.init);
  PutU32(out, static_cast<uint32_t>(query.events.size()));
  PutU32(out, query.warm ? 1 : 0);
  PutU32(out, static_cast<uint32_t>(query.warm_local.size()));
  for (uint32_t p = 0; p < query.events.size(); ++p) {
    // wire::kPerEvent = 20: event id + two f64 coordinates.
    PutU32(out, p);
    PutF64(out, query.events[p].x);
    PutF64(out, query.events[p].y);
  }
  for (const ClassId c : query.warm_local) PutU32(out, c);
  return out;
}

Result<QueryInitPayload> DecodeQueryInit(std::string_view payload) {
  Reader r(payload);
  QueryInitPayload query;
  uint32_t num_events = 0, warm = 0, num_warm = 0;
  if (!r.U64(&query.seq) || !r.F64(&query.alpha) ||
      !r.F64(&query.cost_scale) || !r.U64(&query.seed) ||
      !r.U32(&query.init) || !r.U32(&num_events) || !r.U32(&warm) ||
      !r.U32(&num_warm)) {
    return Truncated("query header");
  }
  query.warm = warm != 0;
  // Same count-vs-bytes validation as DecodeShard, before any allocation.
  const uint64_t need = uint64_t{num_events} * wire::kPerEvent +
                        uint64_t{num_warm} * wire::kPerStrategyEntry;
  if (r.remaining() != need) {
    return Status::InvalidArgument(
        "query payload size does not match its counts");
  }
  query.events.resize(num_events);
  for (uint32_t i = 0; i < num_events; ++i) {
    uint32_t id = 0;
    Point& p = query.events[i];
    if (!r.U32(&id) || !r.F64(&p.x) || !r.F64(&p.y)) {
      return Truncated("query events");
    }
    if (id != i) return Status::InvalidArgument("event ids out of order");
  }
  query.warm_local.resize(num_warm);
  for (uint32_t i = 0; i < num_warm; ++i) {
    if (!r.U32(&query.warm_local[i])) return Truncated("query warm start");
  }
  if (!r.done()) {
    return Status::InvalidArgument("trailing bytes in query payload");
  }
  return query;
}

std::string EncodeChanges(const std::vector<StrategyChange>& changes) {
  std::string out;
  out.reserve(changes.size() * wire::kPerStrategyChange);
  for (const StrategyChange& ch : changes) {
    PutU32(out, ch.user);
    PutU32(out, ch.new_class);
  }
  return out;
}

std::string EncodeWireChanges(const std::vector<WireChange>& changes) {
  std::string out;
  out.reserve(changes.size() * wire::kPerStrategyChange);
  for (const WireChange& ch : changes) {
    PutU32(out, ch.user);
    PutU32(out, ch.new_class);
  }
  return out;
}

Result<std::vector<WireChange>> DecodeChanges(std::string_view payload) {
  if (payload.size() % wire::kPerStrategyChange != 0) {
    return Status::InvalidArgument("changes payload not a multiple of 8");
  }
  Reader r(payload);
  std::vector<WireChange> changes(payload.size() / wire::kPerStrategyChange);
  for (WireChange& ch : changes) {
    if (!r.U32(&ch.user) || !r.U32(&ch.new_class)) {
      return Truncated("changes");
    }
  }
  return changes;
}

std::string EncodeGsv(const Assignment& gsv) {
  std::string out;
  out.reserve(gsv.size() * wire::kPerStrategyEntry);
  for (const ClassId c : gsv) PutU32(out, c);
  return out;
}

Result<Assignment> DecodeGsv(std::string_view payload) {
  if (payload.size() % wire::kPerStrategyEntry != 0) {
    return Status::InvalidArgument("gsv payload not a multiple of 4");
  }
  Reader r(payload);
  Assignment gsv(payload.size() / wire::kPerStrategyEntry);
  for (ClassId& c : gsv) {
    if (!r.U32(&c)) return Truncated("gsv");
  }
  return gsv;
}

std::string EncodeCommand(uint64_t opcode, uint64_t arg) {
  std::string out;
  out.reserve(wire::kCommand);
  PutU64(out, opcode);
  PutU64(out, arg);
  return out;
}

Result<std::pair<uint64_t, uint64_t>> DecodeCommand(std::string_view payload) {
  Reader r(payload);
  uint64_t opcode = 0, arg = 0;
  if (!r.U64(&opcode) || !r.U64(&arg) || !r.done()) {
    return Status::InvalidArgument("malformed command payload");
  }
  return std::make_pair(opcode, arg);
}

std::string EncodeAck(uint64_t value) {
  std::string out;
  out.reserve(wire::kAck);
  PutU64(out, value);
  return out;
}

Result<uint64_t> DecodeAck(std::string_view payload) {
  Reader r(payload);
  uint64_t value = 0;
  if (!r.U64(&value) || !r.done()) {
    return Status::InvalidArgument("malformed ack payload");
  }
  return value;
}

}  // namespace shard
}  // namespace rmgp
