#ifndef RMGP_STORE_COMPRESSED_H_
#define RMGP_STORE_COMPRESSED_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "store/format.h"
#include "util/status.h"

namespace rmgp {
namespace store {

/// The compressed adjacency representation (container sections 3-6).
///
/// Nodes are relabeled in degree-descending order (ties by old id) so hub
/// lists — the bulk of a social graph's edges — reference small, dense ids
/// that delta-encode into one or two bytes. Per relabeled node r the
/// stream carries varint(degree) followed by the neighbor list as strictly
/// increasing relabeled ids: varint(first), then varint(id - prev) for the
/// rest. A SkipBlock every kSkipStride nodes gives random access without
/// decoding the whole stream. Weights travel as a parallel f64 stream in
/// the same order (omitted entirely when every weight is 1.0).
struct CompressedSections {
  std::vector<uint32_t> old_of_new;  ///< kPermutation: old id of node r
  std::vector<SkipBlock> skip;       ///< kSkipBlocks (incl. end sentinel)
  std::vector<uint8_t> adj;          ///< kCompressedAdj byte stream
  std::vector<double> weights;       ///< kWeights; empty iff unit_weights
  bool unit_weights = false;
};

/// Encodes `g` into the compressed sections. Deterministic: the relabel
/// order and stream layout depend only on the graph.
CompressedSections EncodeCompressed(const Graph& g);

/// Decodes compressed sections back into an owned in-RAM Graph carrying
/// original node ids, bit-identical to the graph that was encoded. All
/// spans point at untrusted storage: the decoder validates the permutation,
/// every varint, id bounds, strict monotonicity, self-loop freedom, weight
/// finiteness, skip-block cross-consistency and exact stream/entry counts,
/// and returns InvalidArgument instead of reading out of bounds.
///
/// `n`/`m`/`total_edge_weight` come from the (already checksummed)
/// container header; span sizes are pre-checked by the container reader but
/// re-checked here so the function is safe to call with arbitrary spans.
Result<Graph> DecodeCompressedGraph(NodeId n, uint64_t m,
                                    double total_edge_weight,
                                    std::span<const uint32_t> old_of_new,
                                    std::span<const SkipBlock> skip,
                                    std::span<const uint8_t> adj,
                                    std::span<const double> weights,
                                    bool unit_weights);

/// Random access into a compressed adjacency without materializing the
/// whole graph: seeks via the skip blocks, then decodes at most
/// kSkipStride lists. Used by the decode-throughput bench and by tests to
/// cross-check per-node decode against the full decode; hostile-input safe
/// like DecodeCompressedGraph.
class CompressedAdjacencyView {
 public:
  /// Validates sizes and that `old_of_new` is a permutation (O(n)).
  /// The spans must outlive the view.
  static Result<CompressedAdjacencyView> Create(
      NodeId n, uint64_t m, std::span<const uint32_t> old_of_new,
      std::span<const SkipBlock> skip, std::span<const uint8_t> adj,
      std::span<const double> weights, bool unit_weights);

  /// Decodes the neighbor list of *original* node id `v` (sorted by
  /// original neighbor id) into `out`, replacing its contents.
  Status Neighbors(NodeId v, std::vector<Neighbor>* out) const;

  NodeId num_nodes() const { return n_; }

 private:
  NodeId n_ = 0;
  uint64_t m_ = 0;
  std::span<const uint32_t> old_of_new_;
  std::span<const SkipBlock> skip_;
  std::span<const uint8_t> adj_;
  std::span<const double> weights_;
  bool unit_weights_ = false;
  std::vector<uint32_t> new_of_old_;
};

}  // namespace store
}  // namespace rmgp

#endif  // RMGP_STORE_COMPRESSED_H_
