#ifndef RMGP_STORE_MAPPED_FILE_H_
#define RMGP_STORE_MAPPED_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "util/status.h"

namespace rmgp {
namespace store {

/// Read-only, shared (MAP_SHARED) memory mapping of a whole file. Pages
/// are faulted lazily by the kernel and shared across every process that
/// maps the same container — the mechanism behind "one copy of the session
/// graph serves rmgp_serve and all rmgp_worker processes".
///
/// Movable, not copyable; the mapping is released on destruction. A
/// zero-length file maps to {data() == nullptr, size() == 0}.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile() { Unmap(); }

  MappedFile(MappedFile&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  MappedFile& operator=(MappedFile&& other) noexcept {
    if (this != &other) {
      Unmap();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only. IOError on open/stat/map failure.
  static Result<MappedFile> Open(const std::string& path);

  const uint8_t* data() const { return static_cast<const uint8_t*>(data_); }
  size_t size() const { return size_; }

 private:
  void Unmap();

  void* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace store
}  // namespace rmgp

#endif  // RMGP_STORE_MAPPED_FILE_H_
