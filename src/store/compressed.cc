#include "store/compressed.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>

#include "store/varint.h"

namespace rmgp {
namespace store {

namespace {

/// Validates that `old_of_new` is a permutation of [0, n) and returns the
/// inverse mapping.
Result<std::vector<uint32_t>> InvertPermutation(
    NodeId n, std::span<const uint32_t> old_of_new) {
  if (old_of_new.size() != n) {
    return Status::InvalidArgument("permutation has " +
                                   std::to_string(old_of_new.size()) +
                                   " entries, want " + std::to_string(n));
  }
  constexpr uint32_t kUnset = 0xFFFFFFFFu;
  std::vector<uint32_t> new_of_old(n, kUnset);
  for (NodeId r = 0; r < n; ++r) {
    const uint32_t old_id = old_of_new[r];
    if (old_id >= n) {
      return Status::InvalidArgument("permutation entry out of range");
    }
    if (new_of_old[old_id] != kUnset) {
      return Status::InvalidArgument("permutation entry repeated");
    }
    new_of_old[old_id] = r;
  }
  return new_of_old;
}

uint64_t NumSkipBlocks(NodeId n) {
  return (static_cast<uint64_t>(n) + kSkipStride - 1) / kSkipStride + 1;
}

/// Decodes relabeled node r's list at *p: varint(degree), varint(first),
/// varint(delta)... Appends the strictly increasing relabeled neighbor ids
/// to `out`. Shared by the full decoder and the random-access view.
Status DecodeOneList(NodeId n, NodeId r, const uint8_t** p,
                     const uint8_t* end, std::vector<uint32_t>* out) {
  uint64_t deg = 0;
  if (!DecodeVarint(p, end, &deg)) {
    return Status::InvalidArgument("compressed adjacency: bad degree varint");
  }
  if (deg >= n && deg != 0) {
    // Distinct non-self neighbors cap the degree at n-1.
    return Status::InvalidArgument("compressed adjacency: degree " +
                                   std::to_string(deg) + " out of range");
  }
  uint64_t prev = 0;
  for (uint64_t k = 0; k < deg; ++k) {
    uint64_t raw = 0;
    if (!DecodeVarint(p, end, &raw)) {
      return Status::InvalidArgument(
          "compressed adjacency: bad neighbor varint");
    }
    // First entry is the id itself; the rest are gaps (id - prev >= 1).
    // Bounding the gap by n before adding rules out uint64 wraparound
    // sneaking a non-increasing id past the range check below.
    if (k != 0 && (raw == 0 || raw >= n)) {
      return Status::InvalidArgument(
          "compressed adjacency: neighbor list not strictly increasing");
    }
    const uint64_t id = k == 0 ? raw : prev + raw;
    if (id >= n) {
      return Status::InvalidArgument(
          "compressed adjacency: neighbor id out of range");
    }
    if (id == r) {
      return Status::InvalidArgument("compressed adjacency: self-loop");
    }
    out->push_back(static_cast<uint32_t>(id));
    prev = id;
  }
  return Status::OK();
}

Status CheckWeight(double w) {
  if (!std::isfinite(w) || w <= 0.0) {
    return Status::InvalidArgument(
        "compressed adjacency: edge weight must be positive and finite");
  }
  return Status::OK();
}

}  // namespace

CompressedSections EncodeCompressed(const Graph& g) {
  const NodeId n = g.num_nodes();
  const uint64_t two_m = g.adjacency().size();

  CompressedSections out;
  out.unit_weights = true;
  for (const Neighbor& nb : g.adjacency()) {
    if (nb.weight != 1.0) {
      out.unit_weights = false;
      break;
    }
  }

  // Degree-descending relabel, ties broken by old id for determinism.
  out.old_of_new.resize(n);
  std::iota(out.old_of_new.begin(), out.old_of_new.end(), 0u);
  std::stable_sort(out.old_of_new.begin(), out.old_of_new.end(),
                   [&g](uint32_t a, uint32_t b) {
                     return g.degree(a) > g.degree(b);
                   });
  std::vector<uint32_t> new_of_old(n);
  for (NodeId r = 0; r < n; ++r) new_of_old[out.old_of_new[r]] = r;

  out.adj.reserve(two_m + n);  // one-byte gaps dominate after relabeling
  if (!out.unit_weights) out.weights.reserve(two_m);
  out.skip.reserve(NumSkipBlocks(n));

  // (relabeled neighbor id, weight), sorted by relabeled id per node.
  std::vector<std::pair<uint32_t, double>> list;
  uint64_t entries = 0;
  for (NodeId r = 0; r < n; ++r) {
    if (r % kSkipStride == 0) {
      out.skip.push_back({out.adj.size(), entries});
    }
    const NodeId old_id = out.old_of_new[r];
    list.clear();
    for (const Neighbor& nb : g.neighbors(old_id)) {
      list.emplace_back(new_of_old[nb.node], nb.weight);
    }
    std::sort(list.begin(), list.end());
    AppendVarint(list.size(), &out.adj);
    uint32_t prev = 0;
    for (size_t k = 0; k < list.size(); ++k) {
      const uint32_t id = list[k].first;
      AppendVarint(k == 0 ? id : id - prev, &out.adj);
      prev = id;
      if (!out.unit_weights) out.weights.push_back(list[k].second);
      ++entries;
    }
  }
  out.skip.push_back({out.adj.size(), entries});  // end sentinel
  return out;
}

Result<Graph> DecodeCompressedGraph(NodeId n, uint64_t m,
                                    double total_edge_weight,
                                    std::span<const uint32_t> old_of_new,
                                    std::span<const SkipBlock> skip,
                                    std::span<const uint8_t> adj,
                                    std::span<const double> weights,
                                    bool unit_weights) {
  RMGP_ASSIGN_OR_RETURN(std::vector<uint32_t> new_of_old,
                        InvertPermutation(n, old_of_new));
  if (skip.size() != NumSkipBlocks(n)) {
    return Status::InvalidArgument("skip block table has wrong size");
  }
  const uint64_t two_m = m * 2;
  if (m > UINT64_MAX / 2 || (!unit_weights && weights.size() != two_m)) {
    return Status::InvalidArgument("weight stream has wrong size");
  }

  // Single pass over the stream: validate, collect relabeled neighbor ids
  // (stream order == weight-stream order) and per-old-id degrees.
  std::vector<uint32_t> nbr_new;
  nbr_new.reserve(two_m);
  std::vector<uint64_t> offsets(static_cast<size_t>(n) + 1, 0);
  std::vector<uint64_t> list_start(n);
  const uint8_t* p = adj.data();
  const uint8_t* const end = adj.data() + adj.size();
  for (NodeId r = 0; r < n; ++r) {
    if (r % kSkipStride == 0) {
      const SkipBlock& sb = skip[r / kSkipStride];
      if (sb.byte_offset != static_cast<uint64_t>(p - adj.data()) ||
          sb.entry_offset != nbr_new.size()) {
        return Status::InvalidArgument(
            "skip block disagrees with the adjacency stream");
      }
    }
    list_start[r] = nbr_new.size();
    RMGP_RETURN_IF_ERROR(DecodeOneList(n, r, &p, end, &nbr_new));
    if (nbr_new.size() > two_m) {
      return Status::InvalidArgument(
          "compressed adjacency: more entries than the header declares");
    }
    offsets[old_of_new[r]] = nbr_new.size() - list_start[r];
  }
  if (p != end) {
    return Status::InvalidArgument(
        "compressed adjacency: trailing bytes after the last list");
  }
  if (nbr_new.size() != two_m) {
    return Status::InvalidArgument(
        "compressed adjacency: entry count disagrees with the header");
  }
  const SkipBlock& sentinel = skip[skip.size() - 1];
  if (sentinel.byte_offset != adj.size() || sentinel.entry_offset != two_m) {
    return Status::InvalidArgument("skip block sentinel is wrong");
  }

  // offsets currently holds per-old-id degrees (shifted by nothing);
  // exclusive prefix sum turns it into CSR offsets.
  uint64_t acc = 0;
  for (NodeId v = 0; v < n; ++v) {
    const uint64_t deg = offsets[v];
    offsets[v] = acc;
    acc += deg;
  }
  offsets[n] = acc;

  std::vector<Neighbor> csr(two_m);
  std::vector<uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (NodeId r = 0; r < n; ++r) {
    const NodeId old_id = old_of_new[r];
    const uint64_t start = list_start[r];
    const uint64_t stop = r + 1 < n ? list_start[r + 1] : two_m;
    for (uint64_t k = start; k < stop; ++k) {
      const double w = unit_weights ? 1.0 : weights[k];
      RMGP_RETURN_IF_ERROR(CheckWeight(w));
      csr[cursor[old_id]++] = {old_of_new[nbr_new[k]], w};
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    std::sort(csr.begin() + static_cast<int64_t>(offsets[v]),
              csr.begin() + static_cast<int64_t>(offsets[v + 1]),
              [](const Neighbor& a, const Neighbor& b) {
                return a.node < b.node;
              });
  }

  return Graph::FromOwnedParts(std::move(offsets), std::move(csr),
                               total_edge_weight);
}

Result<CompressedAdjacencyView> CompressedAdjacencyView::Create(
    NodeId n, uint64_t m, std::span<const uint32_t> old_of_new,
    std::span<const SkipBlock> skip, std::span<const uint8_t> adj,
    std::span<const double> weights, bool unit_weights) {
  CompressedAdjacencyView view;
  RMGP_ASSIGN_OR_RETURN(view.new_of_old_, InvertPermutation(n, old_of_new));
  if (skip.size() != NumSkipBlocks(n)) {
    return Status::InvalidArgument("skip block table has wrong size");
  }
  if (m > UINT64_MAX / 2 || (!unit_weights && weights.size() != m * 2)) {
    return Status::InvalidArgument("weight stream has wrong size");
  }
  view.n_ = n;
  view.m_ = m;
  view.old_of_new_ = old_of_new;
  view.skip_ = skip;
  view.adj_ = adj;
  view.weights_ = weights;
  view.unit_weights_ = unit_weights;
  return view;
}

Status CompressedAdjacencyView::Neighbors(NodeId v,
                                          std::vector<Neighbor>* out) const {
  out->clear();
  if (v >= n_) {
    return Status::InvalidArgument("node id out of range");
  }
  const NodeId r = new_of_old_[v];
  const SkipBlock& sb = skip_[r / kSkipStride];
  if (sb.byte_offset > adj_.size() || sb.entry_offset > m_ * 2) {
    return Status::InvalidArgument("skip block out of range");
  }
  const uint8_t* p = adj_.data() + sb.byte_offset;
  const uint8_t* const end = adj_.data() + adj_.size();
  uint64_t entry = sb.entry_offset;
  std::vector<uint32_t> ids;
  // Decode (and discard) the lists between the block start and r.
  for (NodeId s = r / kSkipStride * kSkipStride; s <= r; ++s) {
    ids.clear();
    RMGP_RETURN_IF_ERROR(DecodeOneList(n_, s, &p, end, &ids));
    if (s < r) {
      entry += ids.size();
      continue;
    }
    if (!unit_weights_ && entry + ids.size() > weights_.size()) {
      return Status::InvalidArgument("weight stream too short");
    }
    out->reserve(ids.size());
    for (size_t k = 0; k < ids.size(); ++k) {
      const double w = unit_weights_ ? 1.0 : weights_[entry + k];
      RMGP_RETURN_IF_ERROR(CheckWeight(w));
      out->push_back({old_of_new_[ids[k]], w});
    }
  }
  std::sort(out->begin(), out->end(),
            [](const Neighbor& a, const Neighbor& b) {
              return a.node < b.node;
            });
  return Status::OK();
}

}  // namespace store
}  // namespace rmgp
