#include "store/checksum.h"

#include <array>

namespace rmgp {
namespace store {

namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected CRC-32C polynomial

using CrcTables = std::array<std::array<uint32_t, 256>, 8>;

constexpr CrcTables BuildTables() {
  CrcTables t{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) != 0 ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    t[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = t[0][i];
    for (size_t slice = 1; slice < t.size(); ++slice) {
      crc = t[0][crc & 0xFFu] ^ (crc >> 8);
      t[slice][i] = crc;
    }
  }
  return t;
}

constexpr CrcTables kTables = BuildTables();

}  // namespace

uint32_t Crc32c(const void* data, size_t size, uint32_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  while (size >= 8) {
    // Bytewise loads keep this alignment- and endian-agnostic; the
    // eight table lookups per iteration are the throughput win.
    crc ^= static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
           static_cast<uint32_t>(p[2]) << 16 |
           static_cast<uint32_t>(p[3]) << 24;
    const uint32_t hi = static_cast<uint32_t>(p[4]) |
                        static_cast<uint32_t>(p[5]) << 8 |
                        static_cast<uint32_t>(p[6]) << 16 |
                        static_cast<uint32_t>(p[7]) << 24;
    crc = kTables[7][crc & 0xFFu] ^ kTables[6][(crc >> 8) & 0xFFu] ^
          kTables[5][(crc >> 16) & 0xFFu] ^ kTables[4][crc >> 24] ^
          kTables[3][hi & 0xFFu] ^ kTables[2][(hi >> 8) & 0xFFu] ^
          kTables[1][(hi >> 16) & 0xFFu] ^ kTables[0][hi >> 24];
    p += 8;
    size -= 8;
  }
  while (size-- != 0) {
    crc = kTables[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace store
}  // namespace rmgp
