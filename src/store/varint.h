#ifndef RMGP_STORE_VARINT_H_
#define RMGP_STORE_VARINT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rmgp {
namespace store {

/// LEB128 varint codec used by the compressed adjacency sections. The
/// decoder is hostile-input safe: it never reads past `end`, rejects
/// over-long encodings (more than 10 bytes) and 64-bit overflow, and
/// reports how many bytes it consumed — the fuzz_store harness drives it
/// directly.

/// Appends the LEB128 encoding of `value` (1-10 bytes).
inline void AppendVarint(uint64_t value, std::vector<uint8_t>* out) {
  while (value >= 0x80u) {
    out->push_back(static_cast<uint8_t>(value) | 0x80u);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

/// Decodes one varint from [*p, end). On success advances *p past the
/// encoding and returns true; on truncated/over-long/overflowing input
/// returns false with *p unchanged.
inline bool DecodeVarint(const uint8_t** p, const uint8_t* end,
                         uint64_t* value) {
  const uint8_t* q = *p;
  uint64_t v = 0;
  for (uint32_t shift = 0; shift < 64; shift += 7) {
    if (q >= end) return false;
    const uint8_t byte = *q++;
    const uint64_t payload = byte & 0x7Fu;
    // The 10th byte may only carry the final bit of a 64-bit value.
    if (shift == 63 && payload > 1) return false;
    v |= payload << shift;
    if ((byte & 0x80u) == 0) {
      *p = q;
      *value = v;
      return true;
    }
  }
  return false;  // 10 continuation bytes: over-long
}

/// Number of bytes AppendVarint would emit for `value`.
inline size_t VarintSize(uint64_t value) {
  size_t n = 1;
  while (value >= 0x80u) {
    value >>= 7;
    ++n;
  }
  return n;
}

}  // namespace store
}  // namespace rmgp

#endif  // RMGP_STORE_VARINT_H_
