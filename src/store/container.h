#ifndef RMGP_STORE_CONTAINER_H_
#define RMGP_STORE_CONTAINER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "store/format.h"
#include "store/mapped_file.h"
#include "util/status.h"

namespace rmgp {
namespace store {

/// Options for WriteContainer.
struct PackOptions {
  /// Store adjacency delta+varint compressed over degree-descending
  /// relabeled ids (smaller file, decode on load) instead of as raw CSR
  /// sections (larger file, zero-parse mmap load).
  bool compress = false;
};

/// Writes `g` as a .rmgp container at `path`. Sections are checksummed and
/// 64-byte aligned; the plain layout round-trips Graph bit-identically
/// through LoadMapped, the compressed layout through Decode.
Status WriteContainer(const Graph& g, const std::string& path,
                      const PackOptions& options = {});

/// Options for Container::Open / Container::FromBuffer.
struct OpenOptions {
  /// Recompute the CRC-32C of every section payload and compare against
  /// the table. Touches every page — off by default so the mmap load stays
  /// zero-parse; rmgp_pack --verify and the fuzz harness turn it on.
  bool verify_checksums = false;

  /// Full structural validation beyond the always-on header/table/offsets
  /// checks: every adjacency entry in bounds, per-node lists strictly
  /// sorted, weights positive and finite, compressed streams decoded and
  /// cross-checked against their skip blocks, adjacency symmetric. Also a
  /// full data scan — same opt-in sites as verify_checksums.
  bool deep_validate = false;
};

/// A parsed and validated .rmgp container. Open() maps the file and keeps
/// the mapping alive through any Graph loaded from it; FromBuffer() parses
/// a caller-owned byte buffer (fuzzing, tests) that must outlive the
/// Container and anything loaded from it.
///
/// Validation always performed (cheap, O(sections) + O(|V|) on the offsets
/// array): magic/version/endianness/flags, header CRC, section table
/// bounds and alignment, required-section presence and exact sizes, CSR
/// offsets monotone and consistent with the header's edge count, skip
/// blocks monotone and in bounds. The adjacency payload itself is trusted
/// by default (the zero-parse contract; see OpenOptions).
class Container {
 public:
  static Result<Container> Open(const std::string& path,
                                const OpenOptions& options = {});

  /// Parses a container image in memory. `data` must be 8-byte aligned
  /// (section payloads are reinterpreted as uint64/Neighbor arrays) and
  /// outlive the Container and every Graph loaded from it.
  static Result<Container> FromBuffer(const uint8_t* data, size_t size,
                                      const OpenOptions& options = {});

  NodeId num_nodes() const { return static_cast<NodeId>(header_.num_nodes); }
  uint64_t num_edges() const { return header_.num_edges; }
  double total_edge_weight() const { return header_.total_edge_weight; }
  uint32_t flags() const { return header_.flags; }
  bool compressed() const { return (header_.flags & kFlagCompressed) != 0; }
  bool unit_weights() const {
    return (header_.flags & kFlagUnitWeights) != 0;
  }
  uint64_t file_size() const { return size_; }

  /// Payload pointer / size of the section of the given kind; nullptr / 0
  /// when the container does not carry it.
  const uint8_t* SectionData(SectionKind kind) const;
  uint64_t SectionSize(SectionKind kind) const;

  /// Recomputes every section checksum. IOError with the section kind in
  /// the message on the first mismatch.
  Status VerifyChecksums() const;

  /// Zero-copy Graph whose CSR spans alias the mapped offsets/adjacency
  /// sections. Plain containers only (FailedPrecondition for compressed).
  /// The returned Graph (and its copies) share ownership of the mapping.
  Result<Graph> LoadMapped() const;

  /// Decodes the container into an owned in-RAM Graph: a verbatim copy for
  /// plain containers, a full delta+varint decode (with hostile-input
  /// validation) for compressed ones.
  Result<Graph> Decode() const;

 private:
  static Result<Container> Parse(const uint8_t* base, size_t size,
                                 const OpenOptions& options,
                                 std::shared_ptr<const MappedFile> mapping);

  struct ParsedSection {
    SectionKind kind;
    const uint8_t* data;
    uint64_t size;
    uint64_t crc;
  };

  const uint8_t* base_ = nullptr;
  size_t size_ = 0;
  ContainerHeader header_{};
  std::vector<ParsedSection> sections_;
  std::shared_ptr<const MappedFile> mapping_;  // null for FromBuffer
};

}  // namespace store
}  // namespace rmgp

#endif  // RMGP_STORE_CONTAINER_H_
