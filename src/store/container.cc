#include "store/container.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <utility>

#include "store/checksum.h"
#include "store/compressed.h"

namespace rmgp {
namespace store {

namespace {

/// Largest |E| the format accepts: 2|E| Neighbor records must fit a
/// uint64 byte count with room to spare. Far beyond any mappable file.
constexpr uint64_t kMaxEdges = uint64_t{1} << 57;

const char* SectionKindName(uint32_t kind) {
  switch (static_cast<SectionKind>(kind)) {
    case SectionKind::kOffsets:
      return "offsets";
    case SectionKind::kAdjacency:
      return "adjacency";
    case SectionKind::kPermutation:
      return "permutation";
    case SectionKind::kSkipBlocks:
      return "skip-blocks";
    case SectionKind::kCompressedAdj:
      return "compressed-adjacency";
    case SectionKind::kWeights:
      return "weights";
  }
  return "unknown";
}

bool IsKnownKind(uint32_t kind) {
  return kind >= static_cast<uint32_t>(SectionKind::kOffsets) &&
         kind <= static_cast<uint32_t>(SectionKind::kWeights);
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Buffered, CRC-tracking file writer. The first write error latches into
/// `status` and turns the remaining operations into no-ops, so call sites
/// stay linear and check once at the end.
class FileWriter {
 public:
  explicit FileWriter(const std::string& path) : path_(path) {
    f_ = std::fopen(path.c_str(), "wb");
    if (f_ == nullptr) {
      status_ = Status::IOError("cannot create " + path);
    }
  }
  ~FileWriter() {
    if (f_ != nullptr) std::fclose(f_);
  }
  FileWriter(const FileWriter&) = delete;
  FileWriter& operator=(const FileWriter&) = delete;

  void Write(const void* data, size_t size) {
    if (!status_.ok() || size == 0) return;
    if (std::fwrite(data, 1, size, f_) != size) {
      status_ = Status::IOError("short write to " + path_);
      return;
    }
    section_crc_ = Crc32c(data, size, section_crc_);
    pos_ += size;
  }

  /// Zero-fills up to `offset` (the next section boundary).
  void PadTo(uint64_t offset) {
    static constexpr char kZeros[kSectionAlign] = {};
    while (status_.ok() && pos_ < offset) {
      const uint64_t chunk =
          std::min<uint64_t>(offset - pos_, sizeof(kZeros));
      if (std::fwrite(kZeros, 1, chunk, f_) != chunk) {
        status_ = Status::IOError("short write to " + path_);
        return;
      }
      pos_ += chunk;
    }
  }

  void BeginSection() { section_crc_ = 0; }
  uint32_t section_crc() const { return section_crc_; }
  uint64_t pos() const { return pos_; }

  Status Seek(uint64_t offset) {
    RMGP_RETURN_IF_ERROR(status_);
    if (std::fseek(f_, static_cast<long>(offset), SEEK_SET) != 0) {
      status_ = Status::IOError("cannot seek in " + path_);
    }
    pos_ = offset;
    return status_;
  }

  Status Close() {
    RMGP_RETURN_IF_ERROR(status_);
    const int rc = std::fclose(f_);
    f_ = nullptr;
    if (rc != 0) return Status::IOError("cannot finish writing " + path_);
    return Status::OK();
  }

  const Status& status() const { return status_; }

 private:
  std::string path_;
  std::FILE* f_ = nullptr;
  Status status_;
  uint64_t pos_ = 0;
  uint32_t section_crc_ = 0;
};

/// Streams the adjacency span as on-disk records ({u32 node, u32 zero,
/// f64 weight}) in bounded chunks. Field-by-field assembly, not a raw
/// fwrite of the Neighbor array: the struct's padding bytes are
/// indeterminate in memory and must be zero on disk for the checksum and
/// byte-for-byte reproducibility.
void WriteAdjacency(std::span<const Neighbor> adj, FileWriter* w) {
  constexpr size_t kChunkEntries = 4096;
  uint8_t buf[kChunkEntries * sizeof(Neighbor)];
  size_t i = 0;
  while (i < adj.size()) {
    const size_t count = std::min(kChunkEntries, adj.size() - i);
    uint8_t* p = buf;
    for (size_t k = 0; k < count; ++k, ++i, p += sizeof(Neighbor)) {
      std::memcpy(p, &adj[i].node, sizeof(uint32_t));
      std::memset(p + sizeof(uint32_t), 0, sizeof(uint32_t));
      std::memcpy(p + sizeof(uint64_t), &adj[i].weight, sizeof(double));
    }
    w->Write(buf, count * sizeof(Neighbor));
  }
}

}  // namespace

Status WriteContainer(const Graph& g, const std::string& path,
                      const PackOptions& options) {
  const NodeId n = g.num_nodes();
  const uint64_t m = g.num_edges();
  if (m > kMaxEdges) {
    return Status::InvalidArgument("graph too large for the container format");
  }

  CompressedSections comp;
  if (options.compress) comp = EncodeCompressed(g);

  // Plan the section layout.
  struct PlannedSection {
    SectionKind kind;
    const void* raw;  ///< contiguous payload, or nullptr for adjacency
    uint64_t byte_size;
  };
  std::vector<PlannedSection> plan;
  if (options.compress) {
    plan.push_back({SectionKind::kPermutation, comp.old_of_new.data(),
                    comp.old_of_new.size() * sizeof(uint32_t)});
    plan.push_back({SectionKind::kSkipBlocks, comp.skip.data(),
                    comp.skip.size() * sizeof(SkipBlock)});
    plan.push_back(
        {SectionKind::kCompressedAdj, comp.adj.data(), comp.adj.size()});
    if (!comp.unit_weights) {
      plan.push_back({SectionKind::kWeights, comp.weights.data(),
                      comp.weights.size() * sizeof(double)});
    }
  } else {
    // A default-constructed Graph has an empty offsets span; the container
    // always carries the canonical n+1 = 1 entries for n = 0.
    static constexpr uint64_t kZeroOffset[1] = {0};
    const bool empty = g.offsets().empty();
    plan.push_back({SectionKind::kOffsets,
                    empty ? kZeroOffset : g.offsets().data(),
                    (empty ? 1 : g.offsets().size()) * sizeof(uint64_t)});
    plan.push_back(
        {SectionKind::kAdjacency, nullptr, g.adjacency().size_bytes()});
  }

  ContainerHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kFormatVersion;
  header.endian = kEndianMark;
  header.flags = options.compress
                     ? (kFlagCompressed |
                        (comp.unit_weights ? kFlagUnitWeights : 0u))
                     : 0u;
  header.section_count = static_cast<uint32_t>(plan.size());
  header.num_nodes = n;
  header.num_edges = m;
  header.total_edge_weight = g.total_edge_weight();
  header.header_crc = Crc32c(&header, kHeaderCrcBytes);

  const uint64_t table_offset = sizeof(ContainerHeader);
  const uint64_t data_start =
      AlignUp(table_offset + plan.size() * sizeof(SectionDesc));

  FileWriter w(path);
  w.Write(&header, sizeof(header));
  // Placeholder table: payload offsets are known now but CRCs only after
  // streaming the payloads, so the real table is written by the seek-back
  // below.
  std::vector<SectionDesc> table(plan.size(), SectionDesc{});
  w.Write(table.data(), table.size() * sizeof(SectionDesc));

  uint64_t offset = data_start;
  for (size_t i = 0; i < plan.size(); ++i) {
    w.PadTo(offset);
    w.BeginSection();
    if (plan[i].kind == SectionKind::kAdjacency) {
      WriteAdjacency(g.adjacency(), &w);
    } else {
      w.Write(plan[i].raw, plan[i].byte_size);
    }
    table[i] = {static_cast<uint32_t>(plan[i].kind), 0, offset,
                plan[i].byte_size, w.section_crc()};
    offset = AlignUp(offset + plan[i].byte_size);
  }
  RMGP_RETURN_IF_ERROR(w.Seek(table_offset));
  w.Write(table.data(), table.size() * sizeof(SectionDesc));
  RMGP_RETURN_IF_ERROR(w.status());
  return w.Close();
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

namespace {

/// Full structural validation of a loaded graph's payload: every neighbor
/// id in bounds, per-node lists strictly sorted, weights positive and
/// finite, adjacency symmetric with matching mirror weights.
Status DeepValidateGraph(const Graph& g) {
  const NodeId n = g.num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    const auto nbrs = g.neighbors(v);
    NodeId prev = 0;
    for (size_t k = 0; k < nbrs.size(); ++k) {
      const Neighbor& nb = nbrs[k];
      if (nb.node >= n) {
        return Status::InvalidArgument("adjacency: neighbor id out of range");
      }
      if (nb.node == v) {
        return Status::InvalidArgument("adjacency: self-loop");
      }
      if (k > 0 && nb.node <= prev) {
        return Status::InvalidArgument(
            "adjacency: neighbor list not strictly increasing");
      }
      prev = nb.node;
      if (!std::isfinite(nb.weight) || nb.weight <= 0.0) {
        return Status::InvalidArgument(
            "adjacency: edge weight must be positive and finite");
      }
      if (g.EdgeWeight(nb.node, v) != nb.weight) {
        return Status::InvalidArgument(
            "adjacency: edge {u,v} has no matching mirror entry");
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<Container> Container::Parse(const uint8_t* base, size_t size,
                                   const OpenOptions& options,
                                   std::shared_ptr<const MappedFile> mapping) {
  if (reinterpret_cast<uintptr_t>(base) % alignof(uint64_t) != 0) {
    return Status::InvalidArgument("container buffer must be 8-byte aligned");
  }
  if (size < sizeof(ContainerHeader)) {
    return Status::InvalidArgument("container truncated: no header");
  }
  ContainerHeader header;
  std::memcpy(&header, base, sizeof(header));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a .rmgp container (bad magic)");
  }
  if (header.version != kFormatVersion) {
    return Status::InvalidArgument("unsupported container version " +
                                   std::to_string(header.version));
  }
  if (header.endian != kEndianMark) {
    return Status::InvalidArgument(
        "container written with a different byte order");
  }
  if (Crc32c(base, kHeaderCrcBytes) != header.header_crc) {
    return Status::InvalidArgument("container header checksum mismatch");
  }
  if ((header.flags & ~kKnownFlags) != 0) {
    return Status::InvalidArgument("container carries unknown flags");
  }
  const bool compressed = (header.flags & kFlagCompressed) != 0;
  const bool unit_weights = (header.flags & kFlagUnitWeights) != 0;
  if (unit_weights && !compressed) {
    return Status::InvalidArgument(
        "unit-weights flag is only meaningful for compressed containers");
  }
  if (header.section_count > kMaxSections) {
    return Status::InvalidArgument("container section table too large");
  }
  if (header.num_nodes > uint64_t{0xFFFFFFFF}) {
    return Status::InvalidArgument(
        "container node count overflows the 32-bit NodeId space");
  }
  if (header.num_edges > kMaxEdges) {
    return Status::InvalidArgument("container edge count out of range");
  }
  if (!std::isfinite(header.total_edge_weight) ||
      header.total_edge_weight < 0.0) {
    return Status::InvalidArgument(
        "container total edge weight must be finite and non-negative");
  }
  const NodeId n = static_cast<NodeId>(header.num_nodes);
  const uint64_t two_m = header.num_edges * 2;

  const uint64_t table_bytes =
      uint64_t{header.section_count} * sizeof(SectionDesc);
  if (sizeof(ContainerHeader) + table_bytes > size) {
    return Status::InvalidArgument("container truncated: no section table");
  }
  const uint64_t data_start = AlignUp(sizeof(ContainerHeader) + table_bytes);

  Container c;
  c.base_ = base;
  c.size_ = size;
  c.header_ = header;
  c.mapping_ = std::move(mapping);
  c.sections_.reserve(header.section_count);
  for (uint32_t i = 0; i < header.section_count; ++i) {
    SectionDesc desc;
    std::memcpy(&desc, base + sizeof(ContainerHeader) + i * sizeof(desc),
                sizeof(desc));
    const char* name = SectionKindName(desc.kind);
    if (desc.file_offset % kSectionAlign != 0) {
      return Status::InvalidArgument(std::string("section ") + name +
                                     " is misaligned");
    }
    if (desc.file_offset < data_start || desc.file_offset > size ||
        desc.byte_size > size - desc.file_offset) {
      return Status::InvalidArgument(std::string("section ") + name +
                                     " lies outside the file");
    }
    if (IsKnownKind(desc.kind)) {
      for (const auto& prev : c.sections_) {
        if (static_cast<uint32_t>(prev.kind) == desc.kind) {
          return Status::InvalidArgument(std::string("duplicate section ") +
                                         name);
        }
      }
    }
    c.sections_.push_back({static_cast<SectionKind>(desc.kind),
                           base + desc.file_offset, desc.byte_size,
                           desc.crc});
  }

  // Required sections and exact payload sizes per layout.
  const auto require = [&c](SectionKind kind,
                            uint64_t want_size) -> Status {
    const uint8_t* data = c.SectionData(kind);
    if (data == nullptr) {
      return Status::InvalidArgument(
          std::string("container is missing the ") +
          SectionKindName(static_cast<uint32_t>(kind)) + " section");
    }
    if (c.SectionSize(kind) != want_size) {
      return Status::InvalidArgument(
          std::string("section ") +
          SectionKindName(static_cast<uint32_t>(kind)) + " has " +
          std::to_string(c.SectionSize(kind)) + " bytes, want " +
          std::to_string(want_size));
    }
    return Status::OK();
  };
  const auto forbid = [&c](SectionKind kind) -> Status {
    if (c.SectionData(kind) != nullptr) {
      return Status::InvalidArgument(
          std::string("section ") +
          SectionKindName(static_cast<uint32_t>(kind)) +
          " does not belong in this layout");
    }
    return Status::OK();
  };
  const uint64_t skip_blocks =
      (uint64_t{n} + kSkipStride - 1) / kSkipStride + 1;
  if (compressed) {
    RMGP_RETURN_IF_ERROR(require(SectionKind::kPermutation,
                                 uint64_t{n} * sizeof(uint32_t)));
    RMGP_RETURN_IF_ERROR(
        require(SectionKind::kSkipBlocks, skip_blocks * sizeof(SkipBlock)));
    if (c.SectionData(SectionKind::kCompressedAdj) == nullptr) {
      return Status::InvalidArgument(
          "container is missing the compressed-adjacency section");
    }
    if (unit_weights) {
      RMGP_RETURN_IF_ERROR(forbid(SectionKind::kWeights));
    } else {
      RMGP_RETURN_IF_ERROR(
          require(SectionKind::kWeights, two_m * sizeof(double)));
    }
    RMGP_RETURN_IF_ERROR(forbid(SectionKind::kOffsets));
    RMGP_RETURN_IF_ERROR(forbid(SectionKind::kAdjacency));

    // Cheap skip-table sanity: monotone, first at zero, sentinel at the
    // stream end. The per-block cross-check against the actual stream
    // happens in Decode().
    const auto* skip = reinterpret_cast<const SkipBlock*>(
        c.SectionData(SectionKind::kSkipBlocks));
    const uint64_t adj_bytes = c.SectionSize(SectionKind::kCompressedAdj);
    if (skip[0].byte_offset != 0 || skip[0].entry_offset != 0) {
      return Status::InvalidArgument("skip block table must start at zero");
    }
    for (uint64_t i = 1; i < skip_blocks; ++i) {
      if (skip[i].byte_offset < skip[i - 1].byte_offset ||
          skip[i].entry_offset < skip[i - 1].entry_offset) {
        return Status::InvalidArgument("skip block table is not monotone");
      }
    }
    if (skip[skip_blocks - 1].byte_offset != adj_bytes ||
        skip[skip_blocks - 1].entry_offset != two_m) {
      return Status::InvalidArgument("skip block sentinel is wrong");
    }
  } else {
    RMGP_RETURN_IF_ERROR(require(
        SectionKind::kOffsets, (uint64_t{n} + 1) * sizeof(uint64_t)));
    RMGP_RETURN_IF_ERROR(
        require(SectionKind::kAdjacency, two_m * sizeof(Neighbor)));
    RMGP_RETURN_IF_ERROR(forbid(SectionKind::kPermutation));
    RMGP_RETURN_IF_ERROR(forbid(SectionKind::kSkipBlocks));
    RMGP_RETURN_IF_ERROR(forbid(SectionKind::kCompressedAdj));
    RMGP_RETURN_IF_ERROR(forbid(SectionKind::kWeights));

    // Offsets monotonicity is the memory-safety contract of the mapped
    // spans (neighbors(v) indexes adjacency through it), so it is always
    // validated — O(|V|) on pages the loader touches anyway.
    const auto* offs = reinterpret_cast<const uint64_t*>(
        c.SectionData(SectionKind::kOffsets));
    if (offs[0] != 0) {
      return Status::InvalidArgument("CSR offsets must start at zero");
    }
    for (NodeId v = 0; v < n; ++v) {
      if (offs[v + 1] < offs[v]) {
        return Status::InvalidArgument("CSR offsets are not monotone");
      }
    }
    if (offs[n] != two_m) {
      return Status::InvalidArgument(
          "CSR offsets disagree with the header edge count");
    }
  }

  if (options.verify_checksums) {
    RMGP_RETURN_IF_ERROR(c.VerifyChecksums());
  }
  if (options.deep_validate) {
    RMGP_ASSIGN_OR_RETURN(Graph g, c.Decode());
    RMGP_RETURN_IF_ERROR(DeepValidateGraph(g));
  }
  return c;
}

Result<Container> Container::Open(const std::string& path,
                                  const OpenOptions& options) {
  RMGP_ASSIGN_OR_RETURN(MappedFile mf, MappedFile::Open(path));
  auto mapping = std::make_shared<const MappedFile>(std::move(mf));
  const uint8_t* base = mapping->data();
  const size_t size = mapping->size();
  return Parse(base, size, options, std::move(mapping));
}

Result<Container> Container::FromBuffer(const uint8_t* data, size_t size,
                                        const OpenOptions& options) {
  return Parse(data, size, options, nullptr);
}

const uint8_t* Container::SectionData(SectionKind kind) const {
  for (const auto& s : sections_) {
    if (s.kind == kind) return s.data;
  }
  return nullptr;
}

uint64_t Container::SectionSize(SectionKind kind) const {
  for (const auto& s : sections_) {
    if (s.kind == kind) return s.size;
  }
  return 0;
}

Status Container::VerifyChecksums() const {
  for (const auto& s : sections_) {
    if (Crc32c(s.data, s.size) != s.crc) {
      return Status::IOError(
          std::string("section ") +
          SectionKindName(static_cast<uint32_t>(s.kind)) +
          " checksum mismatch");
    }
  }
  return Status::OK();
}

Result<Graph> Container::LoadMapped() const {
  if (compressed()) {
    return Status::FailedPrecondition(
        "compressed containers cannot be mapped zero-copy; use Decode()");
  }
  const auto* offs =
      reinterpret_cast<const uint64_t*>(SectionData(SectionKind::kOffsets));
  const auto* adj =
      reinterpret_cast<const Neighbor*>(SectionData(SectionKind::kAdjacency));
  std::span<const uint64_t> off_span(offs, header_.num_nodes + 1);
  std::span<const Neighbor> adj_span(adj, header_.num_edges * 2);
  std::shared_ptr<const void> backing;
  if (mapping_ != nullptr) {
    backing = std::shared_ptr<const void>(mapping_, mapping_->data());
  } else {
    // FromBuffer path: the caller owns the bytes and guarantees lifetime;
    // a non-owning token keeps Graph::is_external() (and copy semantics)
    // on the external-storage path.
    backing = std::shared_ptr<const void>(base_, [](const void*) {});
  }
  return Graph::FromExternalParts(off_span, adj_span,
                                  header_.total_edge_weight,
                                  std::move(backing));
}

Result<Graph> Container::Decode() const {
  if (!compressed()) {
    RMGP_ASSIGN_OR_RETURN(Graph mapped, LoadMapped());
    std::vector<uint64_t> offs(mapped.offsets().begin(),
                               mapped.offsets().end());
    std::vector<Neighbor> adj(mapped.adjacency().begin(),
                              mapped.adjacency().end());
    return Graph::FromOwnedParts(std::move(offs), std::move(adj),
                                 header_.total_edge_weight);
  }
  const NodeId n = num_nodes();
  std::span<const uint32_t> perm(
      reinterpret_cast<const uint32_t*>(
          SectionData(SectionKind::kPermutation)),
      n);
  std::span<const SkipBlock> skip(
      reinterpret_cast<const SkipBlock*>(
          SectionData(SectionKind::kSkipBlocks)),
      SectionSize(SectionKind::kSkipBlocks) / sizeof(SkipBlock));
  std::span<const uint8_t> adj(SectionData(SectionKind::kCompressedAdj),
                               SectionSize(SectionKind::kCompressedAdj));
  std::span<const double> weights;
  if (!unit_weights()) {
    weights = std::span<const double>(
        reinterpret_cast<const double*>(SectionData(SectionKind::kWeights)),
        header_.num_edges * 2);
  }
  return DecodeCompressedGraph(n, header_.num_edges,
                               header_.total_edge_weight, perm, skip, adj,
                               weights, unit_weights());
}

}  // namespace store
}  // namespace rmgp
