#include "store/storage.h"

#include <sys/stat.h>

#include <cstdio>
#include <cstring>
#include <utility>

#include "graph/io.h"
#include "store/container.h"
#include "store/format.h"

namespace rmgp {
namespace store {

namespace {

uint64_t FileBytes(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size);
}

uint64_t OwnedCsrBytes(const Graph& g) {
  return g.offsets().size() * sizeof(uint64_t) +
         g.adjacency().size() * sizeof(Neighbor);
}

}  // namespace

const char* StorageBackendName(StorageBackend backend) {
  switch (backend) {
    case StorageBackend::kAuto:
      return "auto";
    case StorageBackend::kInRam:
      return "ram";
    case StorageBackend::kMapped:
      return "mmap";
    case StorageBackend::kCompressed:
      return "compressed";
  }
  return "unknown";
}

Result<StorageBackend> ParseStorageBackend(const std::string& name) {
  if (name == "auto") return StorageBackend::kAuto;
  if (name == "ram") return StorageBackend::kInRam;
  if (name == "mmap") return StorageBackend::kMapped;
  if (name == "compressed") return StorageBackend::kCompressed;
  return Status::InvalidArgument(
      "unknown storage backend '" + name +
      "' (want auto, ram, mmap or compressed)");
}

bool HasContainerMagic(const uint8_t* data, size_t size) {
  return size >= sizeof(kMagic) &&
         std::memcmp(data, kMagic, sizeof(kMagic)) == 0;
}

bool IsContainerFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  uint8_t head[sizeof(kMagic)];
  const size_t got = std::fread(head, 1, sizeof(head), f);
  std::fclose(f);
  return HasContainerMagic(head, got);
}

Result<StoredGraph> LoadGraph(const std::string& path,
                              const LoadOptions& options) {
  StoredGraph out;
  out.file_bytes = FileBytes(path);

  if (!IsContainerFile(path)) {
    if (options.backend != StorageBackend::kAuto &&
        options.backend != StorageBackend::kInRam) {
      return Status::InvalidArgument(
          std::string(StorageBackendName(options.backend)) +
          " backend needs a .rmgp container, but " + path +
          " is not one (pack it with rmgp_pack)");
    }
    RMGP_ASSIGN_OR_RETURN(out.graph, ReadEdgeList(path));
    out.backend = StorageBackend::kInRam;
    out.heap_bytes = OwnedCsrBytes(out.graph);
    return out;
  }

  OpenOptions open_options;
  open_options.verify_checksums = options.verify_checksums;
  open_options.deep_validate = options.deep_validate;
  RMGP_ASSIGN_OR_RETURN(Container c, Container::Open(path, open_options));

  StorageBackend backend = options.backend;
  if (backend == StorageBackend::kAuto) {
    backend = c.compressed() ? StorageBackend::kCompressed
                             : StorageBackend::kMapped;
  }
  switch (backend) {
    case StorageBackend::kMapped: {
      RMGP_ASSIGN_OR_RETURN(out.graph, c.LoadMapped());
      out.backend = StorageBackend::kMapped;
      out.heap_bytes = 0;
      return out;
    }
    case StorageBackend::kCompressed: {
      if (!c.compressed()) {
        return Status::InvalidArgument(
            path + " is a plain container, not a compressed one");
      }
      RMGP_ASSIGN_OR_RETURN(out.graph, c.Decode());
      out.backend = StorageBackend::kCompressed;
      out.heap_bytes = OwnedCsrBytes(out.graph);
      return out;
    }
    case StorageBackend::kInRam: {
      RMGP_ASSIGN_OR_RETURN(out.graph, c.Decode());
      out.backend = StorageBackend::kInRam;
      out.heap_bytes = OwnedCsrBytes(out.graph);
      return out;
    }
    case StorageBackend::kAuto:
      break;  // resolved above
  }
  return Status::Internal("unreachable storage backend");
}

}  // namespace store
}  // namespace rmgp
