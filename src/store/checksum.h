#ifndef RMGP_STORE_CHECKSUM_H_
#define RMGP_STORE_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace rmgp {
namespace store {

/// CRC-32C (Castagnoli) over `size` bytes, seeded with `seed` so large
/// sections can be checksummed in streaming chunks:
///
///   uint32_t crc = 0;
///   for (chunk : chunks) crc = Crc32c(chunk.data, chunk.size, crc);
///
/// Software slice-by-8 implementation — no SSE4.2 dependency; checksums are
/// only computed at pack time and in --verify / fuzz paths, never on the
/// mmap fast path.
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

}  // namespace store
}  // namespace rmgp

#endif  // RMGP_STORE_CHECKSUM_H_
