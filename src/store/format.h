#ifndef RMGP_STORE_FORMAT_H_
#define RMGP_STORE_FORMAT_H_

#include <cstddef>
#include <cstdint>

#include "graph/graph.h"

namespace rmgp {
namespace store {

// On-disk layout of the .rmgp graph container (DESIGN.md §11).
//
//   [ContainerHeader: 64 bytes]
//   [SectionDesc * section_count: 32 bytes each]
//   [padding to 64]
//   [section payloads, each 64-byte aligned, in table order]
//
// All integers are little-endian host integers; the `endian` field makes a
// byte-swapped reader fail loudly instead of misparsing. Sections are
// 64-byte aligned so a mapped offsets/adjacency section can be handed to
// the solvers' SIMD row kernels without a fixup copy, and so no section
// shares a cache line with the previous one's tail.

/// File magic: "RMGPGRF" + format generation.
inline constexpr char kMagic[8] = {'R', 'M', 'G', 'P', 'G', 'R', 'F', '1'};

/// Container format version. Readers reject versions they do not know;
/// adding new optional section kinds does NOT bump this (unknown kinds are
/// skipped), changing the meaning of existing fields does.
inline constexpr uint32_t kFormatVersion = 1;

/// Value of ContainerHeader::endian as written by the native writer.
inline constexpr uint32_t kEndianMark = 0x01020304u;

/// Section payload alignment within the file.
inline constexpr uint64_t kSectionAlign = 64;

/// Hard cap on the section table: a hostile header cannot make the reader
/// allocate or scan an unbounded table. Far above any legitimate layout
/// (plain containers carry 2 sections, compressed ones 3-4).
inline constexpr uint32_t kMaxSections = 64;

/// ContainerHeader::flags bits.
enum ContainerFlags : uint32_t {
  /// Adjacency is stored delta+varint compressed over degree-relabeled ids
  /// (sections kPermutation/kSkipBlocks/kCompressedAdj[+kWeights]) instead
  /// of as a raw Neighbor array (sections kOffsets/kAdjacency).
  kFlagCompressed = 1u << 0,
  /// Every edge weight is exactly 1.0 and the kWeights section is omitted
  /// (only meaningful together with kFlagCompressed).
  kFlagUnitWeights = 1u << 1,
};
inline constexpr uint32_t kKnownFlags = kFlagCompressed | kFlagUnitWeights;

/// Section kinds. Unknown kinds are skipped by readers (forward compat:
/// a newer writer may append e.g. a degree-histogram section).
enum class SectionKind : uint32_t {
  kOffsets = 1,        ///< uint64[num_nodes+1] CSR offsets
  kAdjacency = 2,      ///< Neighbor[2*num_edges], padding bytes zeroed
  kPermutation = 3,    ///< uint32[num_nodes]: old id of relabeled node r
  kSkipBlocks = 4,     ///< SkipBlock[ceil(n/kSkipStride)+1]
  kCompressedAdj = 5,  ///< concatenated per-node varint(degree) + deltas
  kWeights = 6,        ///< double[2*num_edges] in relabeled stream order
};

/// Fixed stride of the compressed adjacency skip blocks: one SkipBlock per
/// kSkipStride relabeled nodes. Random access decodes at most
/// kSkipStride-1 lists past the block start.
inline constexpr uint32_t kSkipStride = 64;

/// One skip block: where relabeled node (i * kSkipStride)'s encoded list
/// starts, both as a byte offset into kCompressedAdj and as an entry index
/// into the weight stream. The final block is the end sentinel (total
/// bytes / total entries).
struct SkipBlock {
  uint64_t byte_offset;
  uint64_t entry_offset;
};
static_assert(sizeof(SkipBlock) == 16);

/// The 64-byte container header.
struct ContainerHeader {
  char magic[8];             //  0: kMagic
  uint32_t version;          //  8: kFormatVersion
  uint32_t endian;           // 12: kEndianMark
  uint32_t flags;            // 16: ContainerFlags
  uint32_t section_count;    // 20: entries in the section table
  uint64_t num_nodes;        // 24: |V|
  uint64_t num_edges;        // 32: |E| (undirected; adjacency holds 2|E|)
  double total_edge_weight;  // 40: bit pattern of Graph::total_edge_weight
  uint64_t reserved0;        // 48: zero
  uint32_t reserved1;        // 56: zero
  uint32_t header_crc;       // 60: CRC-32C of bytes [0, 60)
};
static_assert(sizeof(ContainerHeader) == 64);
static_assert(offsetof(ContainerHeader, header_crc) == 60);

/// Number of header bytes covered by header_crc.
inline constexpr size_t kHeaderCrcBytes = offsetof(ContainerHeader, header_crc);

/// One section table entry.
struct SectionDesc {
  uint32_t kind;         ///< SectionKind (raw: unknown kinds are skipped)
  uint32_t reserved;     ///< zero
  uint64_t file_offset;  ///< from file start; kSectionAlign-aligned
  uint64_t byte_size;    ///< payload bytes (excludes alignment padding)
  uint64_t crc;          ///< CRC-32C of the payload in the low 32 bits
};
static_assert(sizeof(SectionDesc) == 32);

// The mapped loader reinterprets the kAdjacency section as a Neighbor
// array, so the in-memory layout is part of the format. The writer emits
// {u32 node, u32 zero, f64 weight} records to match.
static_assert(sizeof(Neighbor) == 16);
static_assert(offsetof(Neighbor, node) == 0);
static_assert(offsetof(Neighbor, weight) == 8);
static_assert(alignof(Neighbor) <= kSectionAlign);

/// Rounds a file offset up to the next section boundary.
constexpr uint64_t AlignUp(uint64_t offset) {
  return (offset + kSectionAlign - 1) / kSectionAlign * kSectionAlign;
}

}  // namespace store
}  // namespace rmgp

#endif  // RMGP_STORE_FORMAT_H_
