#ifndef RMGP_STORE_STORAGE_H_
#define RMGP_STORE_STORAGE_H_

#include <cstdint>
#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace rmgp {
namespace store {

/// How LoadGraph materializes the session graph.
enum class StorageBackend {
  /// Pick from the file: plain containers map (kMapped), compressed ones
  /// decode (kCompressed), edge lists parse (kInRam).
  kAuto,
  /// Owned CSR vectors in this process's heap: parse an edge list, copy a
  /// plain container's sections, or decode a compressed one.
  kInRam,
  /// Zero-copy spans over the mmap'ed plain container; pages are shared
  /// read-only with every other process mapping the same file. Errors for
  /// edge lists and compressed containers.
  kMapped,
  /// Decode the compressed container into owned CSR vectors. Errors for
  /// edge lists and plain containers.
  kCompressed,
};

const char* StorageBackendName(StorageBackend backend);

/// Parses "auto" / "ram" / "mmap" / "compressed" (the --graph-backend
/// flag vocabulary).
Result<StorageBackend> ParseStorageBackend(const std::string& name);

struct LoadOptions {
  StorageBackend backend = StorageBackend::kAuto;
  /// See store::OpenOptions: both force a full data scan and are only
  /// meaningful for containers.
  bool verify_checksums = false;
  bool deep_validate = false;
};

/// A loaded session graph plus where it lives.
struct StoredGraph {
  Graph graph;
  /// The backend actually used (kAuto resolved).
  StorageBackend backend = StorageBackend::kInRam;
  /// On-disk size of the source file.
  uint64_t file_bytes = 0;
  /// Bytes of owned CSR arrays in this process's heap; 0 for kMapped,
  /// where the footprint is the (shared, page-cache backed) file itself.
  uint64_t heap_bytes = 0;
};

/// True iff `data` starts with the .rmgp container magic.
bool HasContainerMagic(const uint8_t* data, size_t size);

/// True iff the file at `path` is a .rmgp container (by magic; false for
/// unreadable or short files).
bool IsContainerFile(const std::string& path);

/// Loads a session graph from `path` — a .rmgp container or a whitespace
/// edge list, auto-detected by magic. This is the single entry point the
/// tools (rmgp_serve --graph-file, rmgp_loadgen, rmgp_pack) go through, so
/// every solver runs storage-agnostic.
Result<StoredGraph> LoadGraph(const std::string& path,
                              const LoadOptions& options = {});

}  // namespace store
}  // namespace rmgp

#endif  // RMGP_STORE_STORAGE_H_
