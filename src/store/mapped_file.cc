#include "store/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace rmgp {
namespace store {

Result<MappedFile> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("cannot stat " + path + ": " + std::strerror(err));
  }
  MappedFile mf;
  mf.size_ = static_cast<size_t>(st.st_size);
  if (mf.size_ > 0) {
    // MAP_SHARED so the page cache backs every process mapping this
    // container with the same physical pages; PROT_READ keeps the graph
    // immutable (a stray write faults instead of corrupting the file).
    void* p = ::mmap(nullptr, mf.size_, PROT_READ, MAP_SHARED, fd, 0);
    if (p == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      return Status::IOError("cannot mmap " + path + ": " +
                             std::strerror(err));
    }
    mf.data_ = p;
  }
  // The mapping holds its own reference to the file; the descriptor is not
  // needed afterwards.
  ::close(fd);
  return mf;
}

void MappedFile::Unmap() {
  if (data_ != nullptr) {
    ::munmap(data_, size_);
    data_ = nullptr;
    size_ = 0;
  }
}

}  // namespace store
}  // namespace rmgp
