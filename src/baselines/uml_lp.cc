#include "baselines/uml_lp.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "util/rng.h"
#include "util/stopwatch.h"

namespace rmgp {

Result<UmlLpResult> SolveUmlLp(const Instance& inst,
                               const UmlLpOptions& options) {
  Stopwatch sw;
  const NodeId n = inst.num_users();
  const ClassId k = inst.num_classes();
  const std::vector<Edge> edges = inst.graph().CollectEdges();
  const uint64_t m = edges.size();

  // Variable layout: x[v][l] at v·k+l, z[e][l] at n·k + e·k + l.
  const auto xvar = [k](NodeId v, ClassId l) {
    return static_cast<uint32_t>(static_cast<uint64_t>(v) * k + l);
  };
  const uint64_t z_base = static_cast<uint64_t>(n) * k;
  const auto zvar = [&](uint64_t e, ClassId l) {
    return static_cast<uint32_t>(z_base + e * k + l);
  };

  LinearProgram lp;
  lp.num_vars = static_cast<uint32_t>(z_base + m * k);
  lp.objective.assign(lp.num_vars, 0.0);
  {
    std::vector<double> row(k);
    for (NodeId v = 0; v < n; ++v) {
      inst.AssignmentCostsFor(v, row.data());
      for (ClassId l = 0; l < k; ++l) {
        lp.objective[xvar(v, l)] = inst.alpha() * row[l];
      }
    }
  }
  for (uint64_t e = 0; e < m; ++e) {
    const double coeff = (1.0 - inst.alpha()) * edges[e].weight * 0.5;
    for (ClassId l = 0; l < k; ++l) lp.objective[zvar(e, l)] = coeff;
  }

  // Σ_l x_vl = 1.
  lp.eq.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    LinearProgram::Row row;
    row.rhs = 1.0;
    row.coeffs.reserve(k);
    for (ClassId l = 0; l < k; ++l) row.coeffs.push_back({xvar(v, l), 1.0});
    lp.eq.push_back(std::move(row));
  }
  // z_el >= |x_ul - x_vl| as two <= rows.
  lp.ub.reserve(2 * m * k);
  for (uint64_t e = 0; e < m; ++e) {
    for (ClassId l = 0; l < k; ++l) {
      LinearProgram::Row a;  //  x_ul - x_vl - z <= 0
      a.coeffs = {{xvar(edges[e].u, l), 1.0},
                  {xvar(edges[e].v, l), -1.0},
                  {zvar(e, l), -1.0}};
      lp.ub.push_back(std::move(a));
      LinearProgram::Row b;  // -x_ul + x_vl - z <= 0
      b.coeffs = {{xvar(edges[e].u, l), -1.0},
                  {xvar(edges[e].v, l), 1.0},
                  {zvar(e, l), -1.0}};
      lp.ub.push_back(std::move(b));
    }
  }

  auto lp_result = SolveSimplex(lp, options.simplex);
  if (!lp_result.ok()) return lp_result.status();
  if (lp_result->status != LpStatus::kOptimal) {
    return Status::Internal("UML LP did not reach optimality (status " +
                            std::to_string(static_cast<int>(
                                lp_result->status)) +
                            ")");
  }

  UmlLpResult out;
  out.lp_lower_bound = lp_result->objective;
  out.lp_iterations = lp_result->iterations;
  const std::vector<double>& x = lp_result->x;

  out.lp_integral = true;
  for (NodeId v = 0; v < n && out.lp_integral; ++v) {
    for (ClassId l = 0; l < k; ++l) {
      const double val = x[xvar(v, l)];
      if (val > 1e-6 && val < 1.0 - 1e-6) {
        out.lp_integral = false;
        break;
      }
    }
  }

  // Kleinberg–Tardos randomized rounding, best of `rounding_trials`.
  Rng rng(options.rounding_seed);
  Assignment best_assignment;
  double best_total = std::numeric_limits<double>::infinity();
  for (uint32_t trial = 0; trial < std::max(1u, options.rounding_trials);
       ++trial) {
    Assignment a(n, UINT32_MAX);
    NodeId unassigned = n;
    // Each phase picks a label and a threshold; in expectation a constant
    // fraction of the remaining mass is fixed per k phases.
    uint64_t guard = 0;
    while (unassigned > 0 && guard < 1000ull * k * (n + 1)) {
      ++guard;
      const ClassId l = static_cast<ClassId>(rng.UniformInt(k));
      const double theta = 1.0 - rng.UniformDouble();  // (0, 1]
      for (NodeId v = 0; v < n; ++v) {
        if (a[v] == UINT32_MAX && x[xvar(v, l)] >= theta) {
          a[v] = l;
          --unassigned;
        }
      }
    }
    for (NodeId v = 0; v < n; ++v) {
      if (a[v] == UINT32_MAX) a[v] = 0;  // guard fallback; never expected
    }
    const CostBreakdown obj = EvaluateObjective(inst, a);
    if (obj.total < best_total) {
      best_total = obj.total;
      best_assignment = std::move(a);
    }
  }

  out.base.assignment = std::move(best_assignment);
  out.base.total_millis = sw.ElapsedMillis();
  out.base.objective = EvaluateObjective(inst, out.base.assignment);
  return out;
}

}  // namespace rmgp
