#ifndef RMGP_BASELINES_MH_H_
#define RMGP_BASELINES_MH_H_

#include "baselines/baseline_result.h"
#include "partition/kway.h"
#include "util/status.h"

namespace rmgp {

/// The Metis–Hungarian benchmark (§6.1): first compute a minimum
/// (unbalanced) k-way social cut with the multilevel partitioner, then
/// assign each partition to a distinct class with the Hungarian method so
/// the total assignment cost is minimized. Minimizes the social cut first
/// and the assignment cost only afterwards, so it lands at low social but
/// high assignment cost — the behavior Fig 7(b) reports.
struct MhOptions {
  PartitionOptions partition;
};

Result<BaselineResult> SolveMetisHungarian(const Instance& inst,
                                           const MhOptions& options = {});

}  // namespace rmgp

#endif  // RMGP_BASELINES_MH_H_
