#include "baselines/mh.h"

#include "matching/hungarian.h"
#include "util/stopwatch.h"

namespace rmgp {

Result<BaselineResult> SolveMetisHungarian(const Instance& inst,
                                           const MhOptions& options) {
  Stopwatch sw;
  const ClassId k = inst.num_classes();
  const NodeId n = inst.num_users();

  PartitionOptions popt = options.partition;
  popt.num_parts = k;
  auto part_result = KWayPartition(inst.graph(), popt);
  if (!part_result.ok()) return part_result.status();
  const std::vector<uint32_t>& part = part_result->part;

  // Cost of assigning partition i to class j = Σ_{v in part i} c(v, j).
  std::vector<double> agg(static_cast<size_t>(k) * k, 0.0);
  std::vector<double> row(k);
  for (NodeId v = 0; v < n; ++v) {
    inst.AssignmentCostsFor(v, row.data());
    double* dst = agg.data() + static_cast<size_t>(part[v]) * k;
    for (ClassId p = 0; p < k; ++p) dst[p] += row[p];
  }

  auto matching = SolveAssignment(agg, k, k);
  if (!matching.ok()) return matching.status();

  BaselineResult res;
  res.assignment.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    res.assignment[v] = matching->col_of_row[part[v]];
  }
  res.total_millis = sw.ElapsedMillis();
  res.objective = EvaluateObjective(inst, res.assignment);
  return res;
}

}  // namespace rmgp
