#ifndef RMGP_BASELINES_BASELINE_RESULT_H_
#define RMGP_BASELINES_BASELINE_RESULT_H_

#include "core/instance.h"
#include "core/objective.h"

namespace rmgp {

/// Outcome shared by the benchmark baselines (§6.1): the assignment they
/// produce, its Equation-1 objective, and the wall time spent.
struct BaselineResult {
  Assignment assignment;
  CostBreakdown objective;
  double total_millis = 0.0;
};

}  // namespace rmgp

#endif  // RMGP_BASELINES_BASELINE_RESULT_H_
