#ifndef RMGP_BASELINES_BRUTE_FORCE_H_
#define RMGP_BASELINES_BRUTE_FORCE_H_

#include "baselines/baseline_result.h"
#include "util/status.h"

namespace rmgp {

/// Exhaustive search over all k^|V| assignments. Only for tiny instances
/// (it refuses anything over ~30M combinations); the ground truth for the
/// PoS/PoA property tests and for validating every other solver.
Result<BaselineResult> SolveBruteForce(const Instance& inst);

/// Enumerates all pure Nash equilibria of the instance by brute force and
/// returns the best and worst equilibrium objective values, plus the
/// social optimum — the ingredients of PoS and PoA (§2.2). Same size
/// limits as SolveBruteForce.
struct EquilibriumSpectrum {
  double social_optimum = 0.0;
  double best_equilibrium = 0.0;
  double worst_equilibrium = 0.0;
  uint64_t num_equilibria = 0;

  double PriceOfStability() const { return best_equilibrium / social_optimum; }
  double PriceOfAnarchy() const { return worst_equilibrium / social_optimum; }
};

Result<EquilibriumSpectrum> EnumerateEquilibria(const Instance& inst);

}  // namespace rmgp

#endif  // RMGP_BASELINES_BRUTE_FORCE_H_
