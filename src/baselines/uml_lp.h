#ifndef RMGP_BASELINES_UML_LP_H_
#define RMGP_BASELINES_UML_LP_H_

#include "baselines/baseline_result.h"
#include "lp/simplex.h"
#include "util/status.h"

namespace rmgp {

/// Options for UML_lp, the Kleinberg–Tardos LP-relaxation 2-approximation
/// (§2.1 / §6.1). The paper solved the LP with CVX; we solve it with the
/// from-scratch simplex of src/lp (DESIGN.md §5).
struct UmlLpOptions {
  /// Randomized-rounding repetitions; the best-objective rounding is kept.
  uint32_t rounding_trials = 5;
  uint64_t rounding_seed = 33;
  SimplexOptions simplex;
};

/// Result of UML_lp plus the LP's optimal value, which lower-bounds the
/// integral optimum — the quality yardstick Fig 7(b)/8(b) lean on ("in
/// most settings the linear relaxation gave integral solutions").
struct UmlLpResult {
  BaselineResult base;
  double lp_lower_bound = 0.0;
  bool lp_integral = false;   ///< LP solution was already integral
  uint64_t lp_iterations = 0;
};

/// Solves the UML LP relaxation
///   min Σ_v Σ_l α·c(v,l)·x_vl + Σ_e Σ_l (1-α)·(w_e/2)·z_el
///   s.t. Σ_l x_vl = 1,  z_el >= ±(x_ul - x_vl),  x,z >= 0
/// and rounds with the Kleinberg–Tardos randomized scheme (pick a label
/// and a threshold; assign matching fractional mass) to an integral
/// assignment. Exponential-size only in the simplex sense: intended for
/// the few-hundred-node graphs UML methods target.
Result<UmlLpResult> SolveUmlLp(const Instance& inst,
                               const UmlLpOptions& options = {});

}  // namespace rmgp

#endif  // RMGP_BASELINES_UML_LP_H_
