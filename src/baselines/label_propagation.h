#ifndef RMGP_BASELINES_LABEL_PROPAGATION_H_
#define RMGP_BASELINES_LABEL_PROPAGATION_H_

#include <vector>

#include "baselines/baseline_result.h"
#include "graph/graph.h"
#include "util/status.h"

namespace rmgp {

/// Classic (weighted) label propagation community detection (Raghavan et
/// al.): every node repeatedly adopts the label carrying the most
/// incident weight among its neighbors. RMGP's best-response dynamics
/// reduce to exactly this when α→0 and every class costs the same — the
/// resemblance §2.1's community-detection related work hints at; this
/// module makes the comparison concrete.
struct LabelPropagationOptions {
  uint32_t max_rounds = 100;
  uint64_t seed = 5;
};

struct LabelPropagationResult {
  /// Community id per node, compacted to [0, num_communities).
  std::vector<uint32_t> community;
  uint32_t num_communities = 0;
  uint32_t rounds = 0;
  bool converged = false;
};

/// Runs synchronous-order label propagation (each round visits nodes in a
/// fixed random permutation; ties keep the current label, then prefer the
/// smallest label for determinism).
LabelPropagationResult PropagateLabels(
    const Graph& g, const LabelPropagationOptions& options = {});

/// The "LPH" benchmark: label-propagation communities, merged down to at
/// most k groups (smallest communities merged into their most-connected
/// neighbor community), then assigned to classes with the Hungarian
/// method — the label-propagation analogue of the Metis–Hungarian
/// baseline. Shows what pure community detection misses versus playing
/// the multi-criteria game.
Result<BaselineResult> SolveLabelPropagationHungarian(
    const Instance& inst, const LabelPropagationOptions& options = {});

}  // namespace rmgp

#endif  // RMGP_BASELINES_LABEL_PROPAGATION_H_
