#ifndef RMGP_BASELINES_UML_GR_H_
#define RMGP_BASELINES_UML_GR_H_

#include "baselines/baseline_result.h"
#include "util/status.h"

namespace rmgp {

/// UML_gr — the greedy min-cut labeling baseline (§2.1 / §6.1, Bracht et
/// al.'s O(k·|V|³) greedy with its per-class graph transformations). For
/// every class, in ascending order of total assignment cost, the algorithm
/// builds a transformed flow network over the still-unlabeled nodes
/// ("assign this class now" vs "defer to the remaining classes") and takes
/// the minimum cut; the source side receives the class. Guarantees are of
/// the 8·log|V| kind — markedly looser than the LP's factor 2, which is
/// exactly the quality gap Fig 7(b)/8(b) shows.
Result<BaselineResult> SolveUmlGreedy(const Instance& inst);

}  // namespace rmgp

#endif  // RMGP_BASELINES_UML_GR_H_
