#include "baselines/brute_force.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/stopwatch.h"

namespace rmgp {
namespace {

constexpr double kMaxCombinations = 3e7;

Status CheckSize(const Instance& inst) {
  const double combos =
      std::pow(static_cast<double>(inst.num_classes()),
               static_cast<double>(inst.num_users()));
  if (combos > kMaxCombinations) {
    return Status::InvalidArgument(
        "instance too large for brute force (k^n > 3e7)");
  }
  return Status::OK();
}

/// Calls fn for every assignment; fn may inspect but not keep the vector.
template <typename Fn>
void ForEachAssignment(NodeId n, ClassId k, Fn&& fn) {
  Assignment a(n, 0);
  for (;;) {
    fn(a);
    NodeId pos = 0;
    while (pos < n) {
      if (++a[pos] < k) break;
      a[pos] = 0;
      ++pos;
    }
    if (pos == n) return;
  }
}

}  // namespace

Result<BaselineResult> SolveBruteForce(const Instance& inst) {
  RMGP_RETURN_IF_ERROR(CheckSize(inst));
  Stopwatch sw;
  BaselineResult best;
  double best_total = std::numeric_limits<double>::infinity();
  ForEachAssignment(inst.num_users(), inst.num_classes(),
                    [&](const Assignment& a) {
                      const CostBreakdown obj = EvaluateObjective(inst, a);
                      if (obj.total < best_total) {
                        best_total = obj.total;
                        best.assignment = a;
                        best.objective = obj;
                      }
                    });
  best.total_millis = sw.ElapsedMillis();
  return best;
}

Result<EquilibriumSpectrum> EnumerateEquilibria(const Instance& inst) {
  RMGP_RETURN_IF_ERROR(CheckSize(inst));
  EquilibriumSpectrum spec;
  spec.social_optimum = std::numeric_limits<double>::infinity();
  spec.best_equilibrium = std::numeric_limits<double>::infinity();
  spec.worst_equilibrium = -std::numeric_limits<double>::infinity();
  ForEachAssignment(
      inst.num_users(), inst.num_classes(), [&](const Assignment& a) {
        const CostBreakdown obj = EvaluateObjective(inst, a);
        spec.social_optimum = std::min(spec.social_optimum, obj.total);
        if (VerifyEquilibrium(inst, a).ok()) {
          ++spec.num_equilibria;
          spec.best_equilibrium = std::min(spec.best_equilibrium, obj.total);
          spec.worst_equilibrium =
              std::max(spec.worst_equilibrium, obj.total);
        }
      });
  return spec;
}

}  // namespace rmgp
