#include "baselines/label_propagation.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "matching/hungarian.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace rmgp {

LabelPropagationResult PropagateLabels(
    const Graph& g, const LabelPropagationOptions& options) {
  const NodeId n = g.num_nodes();
  LabelPropagationResult res;
  res.community.resize(n);
  std::iota(res.community.begin(), res.community.end(), 0);
  if (n == 0) {
    res.converged = true;
    return res;
  }

  Rng rng(options.seed);
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(&order);

  std::unordered_map<uint32_t, double> weight_by_label;
  for (uint32_t round = 1; round <= options.max_rounds; ++round) {
    uint64_t changes = 0;
    for (NodeId v : order) {
      weight_by_label.clear();
      for (const Neighbor& nb : g.neighbors(v)) {
        weight_by_label[res.community[nb.node]] += nb.weight;
      }
      if (weight_by_label.empty()) continue;
      const uint32_t current = res.community[v];
      // Maximum incident weight; ties keep the current label if it is
      // maximal, otherwise the smallest maximal label (deterministic).
      double max_weight = 0.0;
      for (const auto& [label, weight] : weight_by_label) {
        (void)label;
        max_weight = std::max(max_weight, weight);
      }
      const auto current_it = weight_by_label.find(current);
      const double current_weight =
          current_it != weight_by_label.end() ? current_it->second : 0.0;
      if (current_weight >= max_weight - 1e-12) continue;  // keep label
      uint32_t best_label = UINT32_MAX;
      for (const auto& [label, weight] : weight_by_label) {
        if (weight >= max_weight - 1e-12 && label < best_label) {
          best_label = label;
        }
      }
      res.community[v] = best_label;
      ++changes;
    }
    res.rounds = round;
    if (changes == 0) {
      res.converged = true;
      break;
    }
  }

  // Compact community ids.
  std::unordered_map<uint32_t, uint32_t> remap;
  for (uint32_t& c : res.community) {
    auto [it, inserted] = remap.try_emplace(
        c, static_cast<uint32_t>(remap.size()));
    c = it->second;
  }
  res.num_communities = static_cast<uint32_t>(remap.size());
  return res;
}

namespace {

/// Merges communities until at most `k` remain: repeatedly fold the
/// smallest community into the neighbor community it shares the most
/// edge weight with (or the next smallest if isolated).
std::vector<uint32_t> MergeToK(const Graph& g,
                               std::vector<uint32_t> community,
                               uint32_t num_communities, uint32_t k) {
  while (num_communities > k) {
    std::vector<uint32_t> size(num_communities, 0);
    for (uint32_t c : community) ++size[c];
    uint32_t smallest = 0;
    for (uint32_t c = 1; c < num_communities; ++c) {
      if (size[c] < size[smallest]) smallest = c;
    }
    // Strongest-connected other community.
    std::vector<double> link(num_communities, 0.0);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (community[v] != smallest) continue;
      for (const Neighbor& nb : g.neighbors(v)) {
        if (community[nb.node] != smallest) {
          link[community[nb.node]] += nb.weight;
        }
      }
    }
    uint32_t target = smallest == 0 ? 1 : 0;
    for (uint32_t c = 0; c < num_communities; ++c) {
      if (c != smallest && link[c] > link[target]) target = c;
    }
    // Relabel: smallest -> target, last -> smallest's slot.
    const uint32_t last = num_communities - 1;
    for (uint32_t& c : community) {
      if (c == smallest) c = target;
      if (c == last && smallest != last) c = smallest;
    }
    --num_communities;
  }
  return community;
}

}  // namespace

Result<BaselineResult> SolveLabelPropagationHungarian(
    const Instance& inst, const LabelPropagationOptions& options) {
  Stopwatch sw;
  const ClassId k = inst.num_classes();
  const NodeId n = inst.num_users();

  LabelPropagationResult lp = PropagateLabels(inst.graph(), options);
  std::vector<uint32_t> groups =
      MergeToK(inst.graph(), std::move(lp.community), lp.num_communities,
               k);
  uint32_t num_groups = 0;
  for (uint32_t c : groups) num_groups = std::max(num_groups, c + 1);

  // Group -> class assignment cost, then Hungarian (groups <= k).
  std::vector<double> agg(static_cast<size_t>(num_groups) * k, 0.0);
  std::vector<double> row(k);
  for (NodeId v = 0; v < n; ++v) {
    inst.AssignmentCostsFor(v, row.data());
    double* dst = agg.data() + static_cast<size_t>(groups[v]) * k;
    for (ClassId p = 0; p < k; ++p) dst[p] += row[p];
  }
  auto matching = SolveAssignment(agg, num_groups, k);
  if (!matching.ok()) return matching.status();

  BaselineResult res;
  res.assignment.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    res.assignment[v] = matching->col_of_row[groups[v]];
  }
  res.total_millis = sw.ElapsedMillis();
  res.objective = EvaluateObjective(inst, res.assignment);
  return res;
}

}  // namespace rmgp
