#include "baselines/uml_gr.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "flow/max_flow.h"
#include "util/stopwatch.h"

namespace rmgp {

Result<BaselineResult> SolveUmlGreedy(const Instance& inst) {
  Stopwatch sw;
  const NodeId n = inst.num_users();
  const ClassId k = inst.num_classes();
  const double alpha = inst.alpha();
  const double social = 1.0 - alpha;

  // Materialize costs once (the UML baselines take the cost matrix as
  // input, §6.1).
  std::vector<std::vector<double>> cost(n, std::vector<double>(k));
  for (NodeId v = 0; v < n; ++v) inst.AssignmentCostsFor(v, cost[v].data());

  // Classes ascending by total assignment cost: cheap classes get first
  // pick of the nodes.
  std::vector<ClassId> class_order(k);
  std::iota(class_order.begin(), class_order.end(), 0);
  std::vector<double> class_total(k, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    for (ClassId l = 0; l < k; ++l) class_total[l] += cost[v][l];
  }
  std::stable_sort(class_order.begin(), class_order.end(),
                   [&](ClassId a, ClassId b) {
                     return class_total[a] < class_total[b];
                   });

  Assignment assignment(n, UINT32_MAX);
  std::vector<bool> remaining_class(k, true);
  NodeId num_unassigned = n;

  for (uint32_t step = 0; step < k && num_unassigned > 0; ++step) {
    const ClassId l = class_order[step];
    remaining_class[l] = false;
    if (step + 1 == k) {
      // Last class takes every leftover node.
      for (NodeId v = 0; v < n; ++v) {
        if (assignment[v] == UINT32_MAX) assignment[v] = l;
      }
      num_unassigned = 0;
      break;
    }

    // Binary problem over unassigned nodes U: source side = "take l now",
    // sink side = "defer to the remaining classes".
    std::vector<NodeId> unassigned;
    std::vector<uint32_t> flow_id(n, UINT32_MAX);
    for (NodeId v = 0; v < n; ++v) {
      if (assignment[v] == UINT32_MAX) {
        flow_id[v] = static_cast<uint32_t>(unassigned.size());
        unassigned.push_back(v);
      }
    }
    MaxFlow flow(static_cast<uint32_t>(unassigned.size()) + 2);
    const uint32_t s = static_cast<uint32_t>(unassigned.size());
    const uint32_t t = s + 1;

    for (uint32_t i = 0; i < unassigned.size(); ++i) {
      const NodeId v = unassigned[i];
      // Taking l pays α·c(v,l); deferring pays (at least) the best
      // remaining alternative.
      double take_cost = alpha * cost[v][l];
      double defer_cost = std::numeric_limits<double>::infinity();
      for (ClassId l2 = 0; l2 < k; ++l2) {
        if (l2 != l && remaining_class[l2]) {
          defer_cost = std::min(defer_cost, cost[v][l2]);
        }
      }
      defer_cost *= alpha;
      // Friends already fixed to l pull v towards l: deferring would cut
      // those edges for sure.
      for (const Neighbor& nb : inst.graph().neighbors(v)) {
        if (assignment[nb.node] == l) defer_cost += social * nb.weight;
      }
      flow.AddEdge(s, i, defer_cost);  // cut => v on sink side => defer
      flow.AddEdge(i, t, take_cost);   // cut => v on source side => take l
      for (const Neighbor& nb : inst.graph().neighbors(v)) {
        if (flow_id[nb.node] != UINT32_MAX && v < nb.node) {
          flow.AddUndirectedEdge(i, flow_id[nb.node], social * nb.weight);
        }
      }
    }
    flow.Solve(s, t);
    const std::vector<bool> source_side = flow.MinCutSourceSide(s);
    for (uint32_t i = 0; i < unassigned.size(); ++i) {
      if (source_side[i]) {
        assignment[unassigned[i]] = l;
        --num_unassigned;
      }
    }
  }

  BaselineResult res;
  res.assignment = std::move(assignment);
  res.total_millis = sw.ElapsedMillis();
  res.objective = EvaluateObjective(inst, res.assignment);
  return res;
}

}  // namespace rmgp
