#ifndef RMGP_UTIL_STOPWATCH_H_
#define RMGP_UTIL_STOPWATCH_H_

#include <chrono>

namespace rmgp {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses and the
/// per-round timing instrumentation of the solvers.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  /// Resets the start time to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed microseconds since construction or the last Restart().
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rmgp

#endif  // RMGP_UTIL_STOPWATCH_H_
