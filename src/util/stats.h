#ifndef RMGP_UTIL_STATS_H_
#define RMGP_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rmgp {

/// Streaming mean/variance accumulator (Welford). Used for dataset
/// statistics (average degree, average edge weight) and bench summaries.
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Population variance; 0 for fewer than 2 observations.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Returns the p-th percentile (p in [0,100]) of `values` by linear
/// interpolation between closest ranks. `values` is copied and sorted.
double Percentile(std::vector<double> values, double p);

/// Median distance helper: median of a copied, sorted vector.
double Median(std::vector<double> values);

}  // namespace rmgp

#endif  // RMGP_UTIL_STATS_H_
