#include "util/build_info.h"

#include <thread>

// The RMGP_* macros below are injected by src/util/CMakeLists.txt; the
// fallbacks keep non-CMake builds (e.g. IDE single-file checks) compiling.
#ifndef RMGP_GIT_SHA
#define RMGP_GIT_SHA "unknown"
#endif
#ifndef RMGP_COMPILER_ID
#define RMGP_COMPILER_ID "unknown"
#endif
#ifndef RMGP_CXX_FLAGS
#define RMGP_CXX_FLAGS ""
#endif
#ifndef RMGP_BUILD_TYPE
#define RMGP_BUILD_TYPE ""
#endif
#ifndef RMGP_SANITIZE_VALUE
#define RMGP_SANITIZE_VALUE ""
#endif

namespace rmgp {

BuildInfo GetBuildInfo() {
  BuildInfo info;
  info.git_sha = RMGP_GIT_SHA;
  info.compiler = RMGP_COMPILER_ID;
  info.compiler_flags = RMGP_CXX_FLAGS;
  info.build_type = RMGP_BUILD_TYPE;
  info.sanitize = RMGP_SANITIZE_VALUE;
  info.hardware_threads = std::thread::hardware_concurrency();
  return info;
}

}  // namespace rmgp
