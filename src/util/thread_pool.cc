#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>

namespace rmgp {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  busy_nanos_ = std::make_unique<std::atomic<uint64_t>[]>(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    busy_nanos_[i].store(0, std::memory_order_relaxed);
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t chunks = std::min(n, workers_.size());
  const size_t per_chunk = (n + chunks - 1) / chunks;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t begin = c * per_chunk;
    const size_t end = std::min(n, begin + per_chunk);
    if (begin >= end) break;
    Submit([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }
  Wait();
}

std::vector<double> ThreadPool::BusyMillis() const {
  std::vector<double> out(workers_.size());
  for (size_t i = 0; i < workers_.size(); ++i) {
    const uint64_t nanos = busy_nanos_[i].load(std::memory_order_relaxed);
    out[i] = static_cast<double>(nanos) * 1e-6;
  }
  return out;
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    const auto start = std::chrono::steady_clock::now();
    task();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    const auto nanos =
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
    busy_nanos_[worker_index].fetch_add(static_cast<uint64_t>(nanos),
                                        std::memory_order_relaxed);
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace rmgp
