#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>

namespace rmgp {

using util::MutexLock;

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  busy_nanos_ = std::make_unique<std::atomic<uint64_t>[]>(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    busy_nanos_[i].store(0, std::memory_order_relaxed);
  }
  arenas_.resize(num_threads + 1);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutting_down_ = true;
  }
  task_available_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (in_flight_ != 0) all_done_.Wait(mu_);
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const RangeFn& fn) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const size_t items = end - begin;
  const size_t chunks = (items + grain - 1) / grain;
  if (chunks == 1) {
    fn(begin, end, 0);
    return;
  }
  auto op = std::make_shared<ParallelOp>();
  op->fn = &fn;
  op->end = end;
  op->grain = grain;
  op->chunks_total = chunks;
  op->next.store(begin, std::memory_order_relaxed);
  {
    MutexLock lock(mu_);
    op_ = op;
  }
  task_available_.NotifyAll();
  {
    MutexLock lock(mu_);
    while (op->chunks_done.load(std::memory_order_acquire) !=
           op->chunks_total) {
      op_done_.Wait(mu_);
    }
    op_.reset();
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t grain = (n + workers_.size() - 1) / workers_.size();
  ParallelFor(0, n, grain, [&fn](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::RunOpChunks(ParallelOp* op, size_t slot) {
  for (;;) {
    const size_t begin = op->next.fetch_add(op->grain,
                                            std::memory_order_relaxed);
    if (begin >= op->end) return;
    const size_t end = std::min(op->end, begin + op->grain);
    (*op->fn)(begin, end, slot);
    if (op->chunks_done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        op->chunks_total) {
      // Last chunk: wake the caller blocked in ParallelFor. Taking the
      // lock orders the notify after the caller entered its wait.
      MutexLock lock(mu_);
      op_done_.NotifyAll();
    }
  }
}

double* ThreadPool::ScratchDoubles(size_t slot, size_t count) {
  ScratchArena& arena = arenas_[slot];
  if (arena.capacity < count) {
    arena.data = std::make_unique<double[]>(count);
    arena.capacity = count;
  }
  return arena.data.get();
}

std::vector<double> ThreadPool::BusyMillis() const {
  std::vector<double> out(workers_.size());
  for (size_t i = 0; i < workers_.size(); ++i) {
    const uint64_t nanos = busy_nanos_[i].load(std::memory_order_relaxed);
    out[i] = static_cast<double>(nanos) * 1e-6;
  }
  return out;
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  for (;;) {
    std::shared_ptr<ParallelOp> op;
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!(shutting_down_ || !tasks_.empty() ||
               (op_ != nullptr &&
                op_->next.load(std::memory_order_relaxed) < op_->end))) {
        task_available_.Wait(mu_);
      }
      if (op_ != nullptr &&
          op_->next.load(std::memory_order_relaxed) < op_->end) {
        op = op_;  // keep the op alive past the caller's return
      } else if (!tasks_.empty()) {
        task = std::move(tasks_.front());
        tasks_.pop();
      } else if (shutting_down_) {
        return;
      } else {
        continue;
      }
    }
    const auto start = std::chrono::steady_clock::now();
    if (op != nullptr) {
      RunOpChunks(op.get(), worker_index + 1);
    } else {
      task();
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    const auto nanos =
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
    busy_nanos_[worker_index].fetch_add(static_cast<uint64_t>(nanos),
                                        std::memory_order_relaxed);
    if (op == nullptr) {
      MutexLock lock(mu_);
      if (--in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

}  // namespace rmgp
