#include "util/cpu_features.h"

namespace rmgp {

bool CpuSupportsAvx2() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  // __builtin_cpu_supports reads cpuid once and caches; wrapping it in a
  // local static keeps the answer stable even if the libgcc cache is ever
  // bypassed.
  static const bool has_avx2 = __builtin_cpu_supports("avx2") != 0;
  return has_avx2;
#else
  return false;
#endif
}

const char* CpuSimdName() { return CpuSupportsAvx2() ? "avx2" : "scalar"; }

}  // namespace rmgp
