#ifndef RMGP_UTIL_DCHECK_H_
#define RMGP_UTIL_DCHECK_H_

#include "util/logging.h"

/// Debug invariant checks, gated on the RMGP_DCHECKS CMake option.
///
/// RMGP_CHECK (util/logging.h) is for cheap, always-on programmer-error
/// checks. RMGP_DCHECK is for invariants that are too expensive for release
/// builds — O(row) argmin verifications, full-potential recomputations, audit
/// sweeps — or for preconditions on hot paths (util/rng.h bounds). When the
/// build does not define RMGP_DCHECKS_ENABLED the condition is *compiled but
/// never evaluated* (it sits in a dead branch), so:
///   * disabled builds pay zero runtime cost,
///   * the expression still type-checks and its variables count as used,
///   * bit-rot in rarely-enabled audit code is caught by every build.
///
/// Usage mirrors RMGP_CHECK:
///   RMGP_DCHECK(bound > 0) << "UniformInt bound must be positive";
///   RMGP_DCHECK_LE(lo, hi);
///   RMGP_DCHECK_OK(audit::CheckDenseTable(...));   // expr returns Status
///
/// RMGP_DCHECK_OK requires util/status.h to be included by the caller.
#ifdef RMGP_DCHECKS_ENABLED

#define RMGP_DCHECK(cond)                             \
  if (cond) {                                         \
  } else                                              \
    ::rmgp::internal::FatalStream(__FILE__, __LINE__) \
        << "DCheck failed: " #cond " "

/// Fatals with the Status message when a (typically expensive) audit
/// expression returns non-OK. The expression is not evaluated at all in
/// builds without RMGP_DCHECKS.
#define RMGP_DCHECK_OK(expr)                                   \
  if (const ::rmgp::Status _rmgp_dcheck_st = (expr);           \
      _rmgp_dcheck_st.ok()) {                                  \
  } else                                                       \
    ::rmgp::internal::FatalStream(__FILE__, __LINE__)          \
        << "DCheck failed: (" #expr ") is not OK: "            \
        << _rmgp_dcheck_st.ToString() << " "

#else  // !RMGP_DCHECKS_ENABLED

// `if (true) {} else <check>` keeps the condition (and any streamed
// message) fully compiled yet unreachable; the optimizer deletes it.
#define RMGP_DCHECK(cond)                             \
  if (true) {                                         \
  } else if (cond) {                                  \
  } else                                              \
    ::rmgp::internal::FatalStream(__FILE__, __LINE__)

#define RMGP_DCHECK_OK(expr)                          \
  if (true) {                                         \
  } else if ((expr).ok()) {                           \
  } else                                              \
    ::rmgp::internal::FatalStream(__FILE__, __LINE__)

#endif  // RMGP_DCHECKS_ENABLED

#define RMGP_DCHECK_EQ(a, b) RMGP_DCHECK((a) == (b))
#define RMGP_DCHECK_NE(a, b) RMGP_DCHECK((a) != (b))
#define RMGP_DCHECK_LT(a, b) RMGP_DCHECK((a) < (b))
#define RMGP_DCHECK_LE(a, b) RMGP_DCHECK((a) <= (b))
#define RMGP_DCHECK_GT(a, b) RMGP_DCHECK((a) > (b))
#define RMGP_DCHECK_GE(a, b) RMGP_DCHECK((a) >= (b))

namespace rmgp {

/// True in builds configured with -DRMGP_DCHECKS=ON. Lets code branch on
/// the audit level (`if constexpr (kDChecksEnabled)`) without macros.
#ifdef RMGP_DCHECKS_ENABLED
inline constexpr bool kDChecksEnabled = true;
#else
inline constexpr bool kDChecksEnabled = false;
#endif

}  // namespace rmgp

#endif  // RMGP_UTIL_DCHECK_H_
