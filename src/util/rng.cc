#include "util/rng.h"

#include <cmath>

#include "util/dcheck.h"

namespace rmgp {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  RMGP_DCHECK(bound > 0)
      << "UniformInt(0) is ill-defined: an empty range has no uniform sample";
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  RMGP_DCHECK(lo <= hi) << "UniformRange requires lo <= hi, got ["
                        << lo << ", " << hi << "]";
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Gaussian() {
  if (have_spare_gaussian_) {
    have_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = UniformDouble(-1.0, 1.0);
    v = UniformDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * factor;
  have_spare_gaussian_ = true;
  return u * factor;
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) {
  RMGP_DCHECK(p >= 0.0 && p <= 1.0)
      << "Bernoulli probability must be in [0, 1], got " << p;
  return UniformDouble() < p;
}

uint64_t Rng::Geometric(double p) {
  RMGP_DCHECK(p > 0.0 && p <= 1.0)
      << "Geometric success probability must be in (0, 1], got " << p
      << "; out-of-range p silently biases the sample";
  if (p >= 1.0) return 1;
  // Inverse transform: ceil(log(U) / log(1-p)).
  double u = UniformDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  return static_cast<uint64_t>(std::ceil(std::log(u) / std::log1p(-p)));
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t n,
                                                    uint32_t count) {
  RMGP_DCHECK(count <= n)
      << "cannot sample " << count << " distinct indices from [0, " << n
      << ")";
  // Partial Fisher–Yates over an index array.
  std::vector<uint32_t> idx(n);
  for (uint32_t i = 0; i < n; ++i) idx[i] = i;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t j = i + static_cast<uint32_t>(UniformInt(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(count);
  return idx;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace rmgp
