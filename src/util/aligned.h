#ifndef RMGP_UTIL_ALIGNED_H_
#define RMGP_UTIL_ALIGNED_H_

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <type_traits>

#include "util/logging.h"

namespace rmgp {

/// Alignment of SIMD row storage: one cache line, which also satisfies the
/// 32-byte AVX2 vector alignment and keeps adjacent rows from sharing a
/// line when the row stride divides evenly.
inline constexpr size_t kRowAlignBytes = 64;

/// Minimal aligned heap array for the hot-path cost tables. Unlike
/// std::vector there is no growth path and no allocator indirection: the
/// base pointer is kRowAlignBytes-aligned so the SIMD kernels
/// (core/kernels.h) see aligned rows whenever the row stride preserves
/// alignment. Storage is zero-filled on allocation, matching the
/// value-initialization of the std::vector buffers it replaces.
template <typename T>
class AlignedBuffer {
  static_assert(std::is_trivial_v<T>,
                "AlignedBuffer only holds trivial hot-path element types");

 public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(size_t size) { Reset(size); }

  /// Releases the old storage and allocates `size` zero-filled elements.
  void Reset(size_t size) {
    data_.reset();
    size_ = size;
    if (size == 0) return;
    // std::aligned_alloc requires the byte count to be a multiple of the
    // alignment; round up — the padding is never read.
    size_t bytes = size * sizeof(T);
    bytes = (bytes + kRowAlignBytes - 1) / kRowAlignBytes * kRowAlignBytes;
    T* p = static_cast<T*>(std::aligned_alloc(kRowAlignBytes, bytes));
    RMGP_CHECK(p != nullptr);
    std::memset(p, 0, bytes);
    data_.reset(p);
  }

  [[nodiscard]] T* data() { return data_.get(); }
  [[nodiscard]] const T* data() const { return data_.get(); }
  [[nodiscard]] size_t size() const { return size_; }
  [[nodiscard]] T& operator[](size_t i) { return data_.get()[i]; }
  [[nodiscard]] const T& operator[](size_t i) const { return data_.get()[i]; }

 private:
  struct Deleter {
    void operator()(T* p) const { std::free(p); }
  };
  std::unique_ptr<T, Deleter> data_;
  size_t size_ = 0;
};

}  // namespace rmgp

#endif  // RMGP_UTIL_ALIGNED_H_
