#ifndef RMGP_UTIL_LOGGING_H_
#define RMGP_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace rmgp {

/// Log severities; kFatal aborts the process after printing.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum severity that is printed (default kInfo).
void SetLogLevel(LogLevel level);

/// Current minimum severity.
LogLevel GetLogLevel();

namespace internal {

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg);

[[noreturn]] void FatalMessage(const char* file, int line,
                               const std::string& msg);

/// Stream-style message collector used by the RMGP_LOG/RMGP_CHECK macros.
class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogMessage(level_, file_, line_, ss_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream ss_;
};

class FatalStream {
 public:
  FatalStream(const char* file, int line) : file_(file), line_(line) {}
  [[noreturn]] ~FatalStream() { FatalMessage(file_, line_, ss_.str()); }
  template <typename T>
  FatalStream& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::ostringstream ss_;
};

}  // namespace internal
}  // namespace rmgp

/// Leveled logging: RMGP_LOG(kInfo) << "...";
#define RMGP_LOG(level)                                             \
  ::rmgp::internal::LogStream(::rmgp::LogLevel::level, __FILE__, __LINE__)

/// Always-on invariant check (library-internal programming errors only;
/// user-facing validation returns Status instead). Aborts on failure.
#define RMGP_CHECK(cond)                                            \
  if (cond) {                                                       \
  } else                                                            \
    ::rmgp::internal::FatalStream(__FILE__, __LINE__)               \
        << "Check failed: " #cond " "

#define RMGP_CHECK_EQ(a, b) RMGP_CHECK((a) == (b))
#define RMGP_CHECK_NE(a, b) RMGP_CHECK((a) != (b))
#define RMGP_CHECK_LT(a, b) RMGP_CHECK((a) < (b))
#define RMGP_CHECK_LE(a, b) RMGP_CHECK((a) <= (b))
#define RMGP_CHECK_GT(a, b) RMGP_CHECK((a) > (b))
#define RMGP_CHECK_GE(a, b) RMGP_CHECK((a) >= (b))

#endif  // RMGP_UTIL_LOGGING_H_
