#include "util/logging.h"

// The logger is the one sanctioned direct-output path in the library; every
// other src/ file must go through RMGP_LOG (enforced by tools/rmgp_lint,
// which accepts this marker only for files on its sanctioned list).
// rmgp-lint: sanctioned-file(no-stdout)

#include <atomic>

#include "util/annotated_mutex.h"

namespace rmgp {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
util::Mutex g_log_mu;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg) {
  if (static_cast<int>(level) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  util::MutexLock lock(g_log_mu);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), file, line,
               msg.c_str());
}

void FatalMessage(const char* file, int line, const std::string& msg) {
  {
    util::MutexLock lock(g_log_mu);
    std::fprintf(stderr, "[FATAL %s:%d] %s\n", file, line, msg.c_str());
  }
  std::abort();
}

}  // namespace internal
}  // namespace rmgp
