#ifndef RMGP_UTIL_THREAD_POOL_H_
#define RMGP_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rmgp {

/// Fixed-size worker pool used by RMGP_is (coloring-based parallel
/// best-response) and by the simulated decentralized slaves.
///
/// The pool intentionally exposes only the two primitives the paper's
/// algorithms need: submit a task, and wait for *all* submitted tasks to
/// drain (the barrier at the end of each color group, Fig 4 line 8).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Joins all workers. Pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished executing.
  void Wait();

  /// Number of worker threads.
  size_t num_threads() const { return workers_.size(); }

  /// Cumulative wall time each worker has spent *inside* tasks, in
  /// milliseconds, indexed by worker. The complement of busy time over a
  /// solver's runtime is scheduling imbalance — surfaced per run in
  /// SolverCounters::thread_busy_millis. Safe to call concurrently with
  /// Submit/Wait; a task still running is not counted until it finishes.
  std::vector<double> BusyMillis() const;

  /// Convenience: runs fn(i) for i in [0, n) across `num_threads` workers in
  /// contiguous chunks and waits for completion. Static partitioning keeps
  /// the per-item order within a chunk deterministic.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop(size_t worker_index);

  std::vector<std::thread> workers_;
  std::unique_ptr<std::atomic<uint64_t>[]> busy_nanos_;  // one per worker
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;  // queued + running
  bool shutting_down_ = false;
};

}  // namespace rmgp

#endif  // RMGP_UTIL_THREAD_POOL_H_
