#ifndef RMGP_UTIL_THREAD_POOL_H_
#define RMGP_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <thread>
#include <vector>

#include "util/annotated_mutex.h"

namespace rmgp {

/// Size all per-thread state is padded to so that two threads never share a
/// cache line. 64 bytes covers x86-64 and most AArch64 parts; the cost of
/// over-padding on 128-byte-line hardware is a few wasted bytes.
inline constexpr size_t kCacheLineBytes = 64;

/// A value padded to a full cache line. Use for per-worker counters that
/// are written concurrently with neighboring slots (e.g. per-slot deviation
/// tallies accumulated inside ParallelFor chunks) to avoid false sharing.
template <typename T>
struct alignas(kCacheLineBytes) CacheAligned {
  T value{};
};

/// Fixed-size worker pool used by the parallel solvers (RMGP_is / RMGP_all),
/// the round-0 global-table builds of RMGP_gt / RMGP_pq, and the simulated
/// decentralized slaves.
///
/// Two execution primitives are exposed:
///   * Submit / Wait — the general task queue (the barrier at the end of
///     each color group, Fig 4 line 8);
///   * ParallelFor — a chunked parallel loop with a dedicated completion
///     latch that bypasses the task queue entirely: no per-chunk
///     std::function allocation, no queue mutex traffic per chunk, and
///     dynamic chunk claiming for load balance. Chunk *boundaries* are a
///     pure function of (begin, end, grain), so which worker runs a chunk
///     never changes what is computed — callers relying on determinism only
///     need their per-item work to be independent.
class ThreadPool {
 public:
  /// Chunk body for ParallelFor: processes items [begin, end). `slot` is a
  /// stable scratch index in [0, num_slots()): each slot is used by at most
  /// one thread at a time, so ScratchDoubles(slot, ...) needs no locking.
  using RangeFn = std::function<void(size_t begin, size_t end, size_t slot)>;

  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Joins all workers. Pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished executing.
  /// (Covers Submit only; ParallelFor has its own completion latch.)
  void Wait();

  /// Runs fn over [begin, end) in chunks of `grain` items and blocks until
  /// all chunks completed. Chunks are claimed dynamically by the workers
  /// (good load balance under skewed per-item cost) but their boundaries
  /// are fixed, so per-item results are independent of both the number of
  /// workers and the claiming order. Degenerate cases (empty range, a
  /// single chunk) run inline on the caller with slot 0.
  ///
  /// Must be called from the pool's owner thread, never from inside a
  /// task; at most one ParallelFor may be in flight per pool.
  void ParallelFor(size_t begin, size_t end, size_t grain, const RangeFn& fn);

  /// Convenience: runs fn(i) for i in [0, n) with one contiguous chunk per
  /// worker (the legacy static partition).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Number of worker threads.
  size_t num_threads() const { return workers_.size(); }

  /// Number of scratch slots: one per worker plus slot 0 for the caller
  /// (used by ParallelFor's inline fallback).
  size_t num_slots() const { return workers_.size() + 1; }

  /// Persistent per-slot scratch arena: returns at least `count` doubles.
  /// Grow-only and reused across ParallelFor calls, so steady-state solver
  /// rounds allocate nothing. Contents are unspecified on entry. Safe
  /// without locking because a slot is only ever used by one thread at a
  /// time; arenas are cache-line aligned so neighboring slots never share
  /// a line.
  double* ScratchDoubles(size_t slot, size_t count);

  /// Cumulative wall time each worker has spent *inside* tasks or
  /// ParallelFor chunks, in milliseconds, indexed by worker. The
  /// complement of busy time over a solver's runtime is scheduling
  /// imbalance — surfaced per run in SolverCounters::thread_busy_millis.
  /// Safe to call concurrently with Submit/Wait; a task still running is
  /// not counted until it finishes.
  std::vector<double> BusyMillis() const;

 private:
  /// State of one in-flight ParallelFor. `next` is the claiming cursor:
  /// a worker owns chunk [next, next+grain) after a successful fetch_add.
  /// The op outlives the call through shared_ptr copies held by late
  /// workers whose claim raced past `end`.
  struct ParallelOp {
    const RangeFn* fn = nullptr;
    size_t end = 0;
    size_t grain = 1;
    size_t chunks_total = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> chunks_done{0};
  };

  struct alignas(kCacheLineBytes) ScratchArena {
    std::unique_ptr<double[]> data;
    size_t capacity = 0;
  };

  void WorkerLoop(size_t worker_index);

  /// Claims and runs chunks of `op` until the range is exhausted.
  void RunOpChunks(ParallelOp* op, size_t slot);

  // workers_ and arenas_ are written only during construction and then
  // read-only (arenas_ slots are single-thread-owned by contract); both
  // are deliberately unguarded.
  std::vector<std::thread> workers_;  // rmgp-lint: allow(no-unannotated-shared-field)
  // num_slots() entries, never resized
  std::vector<ScratchArena> arenas_;  // rmgp-lint: allow(no-unannotated-shared-field)
  std::unique_ptr<std::atomic<uint64_t>[]> busy_nanos_;  // one per worker
  util::Mutex mu_;
  std::queue<std::function<void()>> tasks_ RMGP_GUARDED_BY(mu_);
  util::CondVar task_available_;
  util::CondVar all_done_;
  util::CondVar op_done_;
  // Non-null while a ParallelFor runs. The ParallelOp payload itself is
  // all-atomic, so only the pointer needs the guard.
  std::shared_ptr<ParallelOp> op_ RMGP_GUARDED_BY(mu_);
  size_t in_flight_ RMGP_GUARDED_BY(mu_) = 0;  // queued + running Submits
  bool shutting_down_ RMGP_GUARDED_BY(mu_) = false;
};

}  // namespace rmgp

#endif  // RMGP_UTIL_THREAD_POOL_H_
