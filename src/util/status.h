#ifndef RMGP_UTIL_STATUS_H_
#define RMGP_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/dcheck.h"

namespace rmgp {

/// Error categories used across the library. The library does not throw
/// exceptions across its public API; fallible operations return a Status
/// (or a Result<T>, below) instead, following the RocksDB/Arrow idiom.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIOError,
  kUnimplemented,
  kUnavailable,        ///< a peer/resource is gone (e.g. worker death)
  kDeadlineExceeded,   ///< an explicit wait deadline passed
};

/// Returns a human-readable name for a StatusCode ("OK", "InvalidArgument"...).
const char* StatusCodeToString(StatusCode code);

/// A lightweight success/error result carrying a code and a message.
///
/// Typical use:
///   Status s = DoThing();
///   if (!s.ok()) return s;
///
/// The class itself is [[nodiscard]]: any call that returns a Status (or a
/// Result<T>) and ignores it fails to compile under -Werror. Genuine
/// fire-and-forget sites must say so with RMGP_IGNORE_STATUS(expr), which is
/// greppable and visible in review.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  /// True iff this status represents success.
  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// errored Result is a programming error (checked by RMGP_DCHECK in
/// RMGP_DCHECKS builds). Like Status, the type is [[nodiscard]].
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT

  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    RMGP_DCHECK(!status_.ok())
        << "Result constructed from OK status without value";
  }

  [[nodiscard]] bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// The contained value. Must only be called when ok().
  const T& value() const& {
    RMGP_DCHECK(ok()) << status_.ToString();
    return *value_;
  }
  T& value() & {
    RMGP_DCHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    RMGP_DCHECK(ok()) << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Explicitly discards a Status (or Result) from a genuine fire-and-forget
/// call. This is the only sanctioned way to ignore a fallible API: the
/// [[nodiscard]] on Status/Result makes a bare call a compile error, and
/// tools/rmgp_lint can grep these sites for review.
#define RMGP_IGNORE_STATUS(expr) \
  do {                           \
    (void)(expr);                \
  } while (0)

/// Propagates a non-OK Status from an expression to the caller.
#define RMGP_RETURN_IF_ERROR(expr)             \
  do {                                         \
    ::rmgp::Status _rmgp_st = (expr);          \
    if (!_rmgp_st.ok()) return _rmgp_st;       \
  } while (0)

// Two-level paste so __LINE__ expands before concatenation; a direct
// `##__LINE__` would paste the literal token and collide when the macro is
// used twice in one scope.
#define RMGP_INTERNAL_CONCAT_(a, b) a##b
#define RMGP_INTERNAL_CONCAT(a, b) RMGP_INTERNAL_CONCAT_(a, b)

#define RMGP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

/// Evaluates a Result expression; on error returns its Status, otherwise
/// assigns the value to `lhs`.
#define RMGP_ASSIGN_OR_RETURN(lhs, rexpr)                              \
  RMGP_ASSIGN_OR_RETURN_IMPL(                                          \
      RMGP_INTERNAL_CONCAT(_rmgp_result_, __LINE__), lhs, rexpr)

}  // namespace rmgp

#endif  // RMGP_UTIL_STATUS_H_
