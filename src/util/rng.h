#ifndef RMGP_UTIL_RNG_H_
#define RMGP_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace rmgp {

/// Deterministic, seedable pseudo-random number generator
/// (xoshiro256** seeded via splitmix64). Every randomized component in the
/// library takes an explicit seed so that experiments are reproducible
/// run-to-run; std::mt19937 is avoided because its distributions are not
/// specified bit-exactly across standard library implementations.
class Rng {
 public:
  /// Creates a generator whose full state is derived from `seed` by
  /// splitmix64, so nearby seeds still produce independent streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value. Sampling methods are [[nodiscard]]:
  /// discarding a draw silently advances the stream and desynchronizes
  /// seeded experiments.
  [[nodiscard]] uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling, so the result is exactly uniform.
  [[nodiscard]] uint64_t UniformInt(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  [[nodiscard]] double UniformDouble();

  /// Uniform double in [lo, hi).
  [[nodiscard]] double UniformDouble(double lo, double hi);

  /// Standard normal via Box–Muller (mean 0, stddev 1).
  [[nodiscard]] double Gaussian();

  /// Normal with the given mean and standard deviation.
  [[nodiscard]] double Gaussian(double mean, double stddev);

  /// Bernoulli trial that succeeds with probability p.
  [[nodiscard]] bool Bernoulli(double p);

  /// Geometric number of trials until first success for probability p
  /// (support {1, 2, ...}); used by Forest Fire sampling.
  [[nodiscard]] uint64_t Geometric(double p);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples `count` distinct indices from [0, n) (count <= n), in
  /// random order.
  [[nodiscard]] std::vector<uint32_t> SampleWithoutReplacement(uint32_t n,
                                                               uint32_t count);

  /// Forks an independent generator; the child stream does not overlap the
  /// parent's for any practical output length.
  [[nodiscard]] Rng Fork();

 private:
  uint64_t s_[4];
  bool have_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace rmgp

#endif  // RMGP_UTIL_RNG_H_
