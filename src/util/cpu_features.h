#ifndef RMGP_UTIL_CPU_FEATURES_H_
#define RMGP_UTIL_CPU_FEATURES_H_

namespace rmgp {

/// True iff the running CPU supports AVX2, detected once via cpuid on
/// x86-64 (always false elsewhere). The kernels dispatcher
/// (core/kernels.h) consults this at first use, so binaries compiled with
/// the baseline ISA still pick up the wide kernels on capable hosts.
[[nodiscard]] bool CpuSupportsAvx2();

/// Short name of the widest SIMD tier the hot-path kernels can use on this
/// host: "avx2" or "scalar". Reported in the bench environment metadata so
/// two BENCH files can be compared with their kernel tiers visible.
[[nodiscard]] const char* CpuSimdName();

}  // namespace rmgp

#endif  // RMGP_UTIL_CPU_FEATURES_H_
