#include "util/table.h"

#include <cstdio>
#include <fstream>

#include "util/logging.h"

namespace rmgp {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  RMGP_CHECK_LE(cells.size(), headers_.size());
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string Table::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += "  ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = render_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  out += std::string(total, '-') + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

Status Table::WriteCsv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return Status::IOError("cannot open " + path);
  auto write_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) f << ',';
      // Cells produced by the benches never contain commas or quotes, but
      // quote defensively anyway.
      bool needs_quote = row[c].find_first_of(",\"\n") != std::string::npos;
      if (needs_quote) {
        f << '"';
        for (char ch : row[c]) {
          if (ch == '"') f << '"';
          f << ch;
        }
        f << '"';
      } else {
        f << row[c];
      }
    }
    f << '\n';
  };
  write_row(headers_);
  for (const auto& row : rows_) write_row(row);
  if (!f) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace rmgp
