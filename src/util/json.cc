#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace rmgp {

namespace {

constexpr int kMaxDepth = 256;

void AppendUtf8(std::string* out, uint32_t cp) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

/// Formats a double the shortest way that still round-trips: try
/// increasing precision until strtod gives back the same bits.
void AppendNumber(std::string* out, double v) {
  RMGP_CHECK(std::isfinite(v)) << "JSON cannot represent non-finite numbers";
  char buf[32];
  // Integral values (counters, sizes, seeds) print as plain integers rather
  // than the "3e+02" a minimal %g would produce.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    out->append(buf);
    return;
  }
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out->append(buf);
}

/// Strict single-pass parser over a string_view with explicit position.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> ParseDocument() {
    Json value;
    Status s = ParseValue(&value, 0);
    if (!s.ok()) return s;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Status ParseValue(Json* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case 'n':
        if (!ConsumeLiteral("null")) return Error("invalid literal");
        *out = Json();
        return Status::OK();
      case 't':
        if (!ConsumeLiteral("true")) return Error("invalid literal");
        *out = Json(true);
        return Status::OK();
      case 'f':
        if (!ConsumeLiteral("false")) return Error("invalid literal");
        *out = Json(false);
        return Status::OK();
      case '"':
        return ParseString(out);
      case '[':
        return ParseArray(out, depth);
      case '{':
        return ParseObject(out, depth);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseNumber(Json* out) {
    const size_t start = pos_;
    Consume('-');
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Error("malformed number");
    // Literals like 1e400 overflow strtod to infinity; a Json holding a
    // non-finite double would fatally CHECK in Dump (found by fuzzing), so
    // reject them at the parse boundary like any other malformed input.
    if (!std::isfinite(v)) return Error("number out of double range");
    *out = Json(v);
    return Status::OK();
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    *out = v;
    return Status::OK();
  }

  Status ParseString(Json* out) {
    std::string s;
    Status st = ParseRawString(&s);
    if (!st.ok()) return st;
    *out = Json(std::move(s));
    return Status::OK();
  }

  Status ParseRawString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          Status hs = ParseHex4(&cp);
          if (!hs.ok()) return hs;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00-\uDFFF.
            if (!ConsumeLiteral("\\u")) return Error("lone high surrogate");
            uint32_t lo = 0;
            hs = ParseHex4(&lo);
            if (!hs.ok()) return hs;
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("lone low surrogate");
          }
          AppendUtf8(out, cp);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  Status ParseArray(Json* out, int depth) {
    if (!Consume('[')) return Error("expected '['");
    *out = Json::Array();
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      Json element;
      Status s = ParseValue(&element, depth + 1);
      if (!s.ok()) return s;
      out->Append(std::move(element));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Status ParseObject(Json* out, int depth) {
    if (!Consume('{')) return Error("expected '{'");
    *out = Json::Object();
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      std::string key;
      Status s = ParseRawString(&key);
      if (!s.ok()) return s;
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      Json value;
      s = ParseValue(&value, depth + 1);
      if (!s.ok()) return s;
      out->Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

Json Json::Array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::AsBool() const {
  RMGP_CHECK(is_bool());
  return bool_;
}

double Json::AsDouble() const {
  RMGP_CHECK(is_number());
  return number_;
}

const std::string& Json::AsString() const {
  RMGP_CHECK(is_string());
  return string_;
}

size_t Json::size() const {
  if (is_array()) return array_.size();
  if (is_object()) return object_.size();
  return 0;
}

const Json& Json::operator[](size_t i) const {
  RMGP_CHECK(is_array());
  RMGP_CHECK_LT(i, array_.size());
  return array_[i];
}

void Json::Append(Json value) {
  RMGP_CHECK(is_array());
  array_.push_back(std::move(value));
}

void Json::Set(std::string key, Json value) {
  RMGP_CHECK(is_object());
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

const Json* Json::Find(std::string_view key) const {
  RMGP_CHECK(is_object());
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::At(std::string_view key) const {
  const Json* found = Find(key);
  RMGP_CHECK(found != nullptr) << "missing JSON key: " << key;
  return *found;
}

const std::vector<std::pair<std::string, Json>>& Json::items() const {
  RMGP_CHECK(is_object());
  return object_;
}

void Json::DumpTo(std::string* out, int indent, int depth) const {
  // Built via append rather than `"\n" + std::string(...)`: the operator+
  // form trips a gcc 12 -O2 -Wrestrict false positive (PR105651).
  std::string pad;
  std::string close_pad;
  if (indent > 0) {
    pad.append(1, '\n');
    pad.append(static_cast<size_t>(indent) * (depth + 1), ' ');
    close_pad.append(1, '\n');
    close_pad.append(static_cast<size_t>(indent) * depth, ' ');
  }
  switch (type_) {
    case Type::kNull:
      out->append("null");
      break;
    case Type::kBool:
      out->append(bool_ ? "true" : "false");
      break;
    case Type::kNumber:
      AppendNumber(out, number_);
      break;
    case Type::kString:
      out->append(JsonEscape(string_));
      break;
    case Type::kArray: {
      if (array_.empty()) {
        out->append("[]");
        break;
      }
      out->push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out->push_back(',');
        out->append(pad);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      out->append(close_pad);
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out->append("{}");
        break;
      }
      out->push_back('{');
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out->push_back(',');
        first = false;
        out->append(pad);
        out->append(JsonEscape(k));
        out->push_back(':');
        if (indent > 0) out->push_back(' ');
        v.DumpTo(out, indent, depth + 1);
      }
      out->append(close_pad);
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

Result<Json> Json::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

Status Json::WriteFile(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return Status::IOError("cannot open for writing: " + path);
  f << Dump(2) << "\n";
  f.flush();
  if (!f) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<Json> Json::ReadFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::IOError("cannot open: " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return Parse(buf.str());
}

}  // namespace rmgp
