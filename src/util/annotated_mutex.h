#ifndef RMGP_UTIL_ANNOTATED_MUTEX_H_
#define RMGP_UTIL_ANNOTATED_MUTEX_H_

// Mutex wrappers carrying Clang Thread Safety Analysis annotations.
//
// Every lock in the project goes through these types so that the locking
// discipline is checked at compile time on the clang CI cells
// (-Wthread-safety -Wthread-safety-beta -Werror): each shared field names
// its guard with RMGP_GUARDED_BY, each method that expects a lock held
// declares it with RMGP_REQUIRES, and the lock hierarchy is written down
// with RMGP_ACQUIRED_BEFORE so lock-order inversions are rejected before
// they ever run. Under gcc (or any compiler without the capability
// attribute) every macro expands to nothing and the wrappers are exactly
// std::mutex / std::shared_mutex / std::condition_variable in cost.
//
// Conventions (see DESIGN.md "Locking discipline"):
//   * Prefer scoped RAII (MutexLock / ReaderMutexLock / WriterMutexLock)
//     over manual Lock/Unlock.
//   * Condition waits are plain `while (!pred) cv.Wait(mu);` loops — the
//     analysis treats lambdas as separate functions, so predicate-lambda
//     waits would produce false positives.
//   * Direct use of std:: synchronization primitives anywhere else in the
//     repo is rejected by the rmgp_lint `no-raw-mutex` rule; this header
//     is the single sanctioned implementation site.
// rmgp-lint: sanctioned-file(no-raw-mutex)

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define RMGP_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef RMGP_THREAD_ANNOTATION
#define RMGP_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

// Type attributes.
#define RMGP_CAPABILITY(x) RMGP_THREAD_ANNOTATION(capability(x))
#define RMGP_SCOPED_CAPABILITY RMGP_THREAD_ANNOTATION(scoped_lockable)

// Field attributes.
#define RMGP_GUARDED_BY(x) RMGP_THREAD_ANNOTATION(guarded_by(x))
#define RMGP_PT_GUARDED_BY(x) RMGP_THREAD_ANNOTATION(pt_guarded_by(x))
#define RMGP_ACQUIRED_BEFORE(...) \
  RMGP_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define RMGP_ACQUIRED_AFTER(...) \
  RMGP_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// Function attributes.
#define RMGP_REQUIRES(...) \
  RMGP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define RMGP_REQUIRES_SHARED(...) \
  RMGP_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define RMGP_ACQUIRE(...) RMGP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RMGP_ACQUIRE_SHARED(...) \
  RMGP_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RMGP_RELEASE(...) RMGP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RMGP_RELEASE_SHARED(...) \
  RMGP_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RMGP_TRY_ACQUIRE(...) \
  RMGP_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define RMGP_EXCLUDES(...) RMGP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define RMGP_ASSERT_CAPABILITY(x) \
  RMGP_THREAD_ANNOTATION(assert_capability(x))
#define RMGP_RETURN_CAPABILITY(x) RMGP_THREAD_ANNOTATION(lock_returned(x))
#define RMGP_NO_THREAD_SAFETY_ANALYSIS \
  RMGP_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace rmgp::util {

class CondVar;

/// Plain exclusive mutex. Identical to std::mutex at runtime; the
/// annotations make it a capability the analysis can track.
class RMGP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() RMGP_ACQUIRE() { mu_.lock(); }
  void Unlock() RMGP_RELEASE() { mu_.unlock(); }
  bool TryLock() RMGP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Reader/writer mutex over std::shared_mutex.
class RMGP_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() RMGP_ACQUIRE() { mu_.lock(); }
  void Unlock() RMGP_RELEASE() { mu_.unlock(); }
  void LockShared() RMGP_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RMGP_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over Mutex. No mid-scope unlock on purpose: scopes
/// that need to drop the lock split into two MutexLock blocks instead,
/// which the analysis can follow precisely.
class RMGP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) RMGP_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RMGP_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive lock over SharedMutex.
class RMGP_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) RMGP_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() RMGP_RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock over SharedMutex.
class RMGP_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) RMGP_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() RMGP_RELEASE() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to util::Mutex. Wait requires the mutex held
/// and holds it again on return (the analysis sees no lock state change).
/// Use with an explicit while loop:
///
///   MutexLock lock(mu_);
///   while (queue_.empty() && !stop_) wake_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified (or spuriously
  /// woken), and re-acquires `mu` before returning.
  void Wait(Mutex& mu) RMGP_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // the caller's scope still owns the re-acquired lock
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace rmgp::util

#endif  // RMGP_UTIL_ANNOTATED_MUTEX_H_
