#ifndef RMGP_UTIL_JSON_H_
#define RMGP_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace rmgp {

/// Minimal JSON document — the machine-readable sibling of the CSV writer
/// in util/table.h. Covers exactly what the BENCH_*.json trajectory files
/// need: null, bool, double, string, array, and object (with
/// insertion-ordered keys so emitted schemas are stable), plus a strict
/// recursive-descent parser so bench_compare and round-trip tests can read
/// the files back without an external dependency.
///
/// Numbers are stored as double; integers up to 2^53 round-trip exactly,
/// which comfortably covers every solver counter.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Null by default.
  Json() = default;
  Json(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT
  Json(double v) : type_(Type::kNumber), number_(v) {}  // NOLINT
  Json(int v) : Json(static_cast<double>(v)) {}  // NOLINT
  Json(int64_t v) : Json(static_cast<double>(v)) {}  // NOLINT
  Json(uint32_t v) : Json(static_cast<double>(v)) {}  // NOLINT
  Json(uint64_t v) : Json(static_cast<double>(v)) {}  // NOLINT
  Json(const char* s) : type_(Type::kString), string_(s) {}  // NOLINT
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT

  /// Empty array / object factories (a default Json is null, not {}).
  static Json Array();
  static Json Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; the value must have the matching type (checked).
  [[nodiscard]] bool AsBool() const;
  [[nodiscard]] double AsDouble() const;
  [[nodiscard]] const std::string& AsString() const;

  /// Number of array elements or object members; 0 for scalars.
  size_t size() const;

  /// Array access (checked bounds) and append.
  const Json& operator[](size_t i) const;
  void Append(Json value);

  /// Object access. Set overwrites an existing key in place (its position
  /// in the emitted output is preserved). Find returns nullptr when the
  /// key is absent; At checks that it is present.
  void Set(std::string key, Json value);
  [[nodiscard]] const Json* Find(std::string_view key) const;
  const Json& At(std::string_view key) const;
  const std::vector<std::pair<std::string, Json>>& items() const;

  /// Serializes the document. indent == 0 is compact single-line output;
  /// indent > 0 pretty-prints with that many spaces per level. Strings are
  /// escaped per RFC 8259; doubles print with up to 17 significant digits
  /// so that Parse(Dump(x)) reproduces x bit-for-bit.
  [[nodiscard]] std::string Dump(int indent = 0) const;

  /// Strict parser: one JSON value followed only by whitespace. Rejects
  /// trailing commas, comments, and documents nested deeper than 256
  /// levels.
  static Result<Json> Parse(std::string_view text);

  /// Dump(2) to `path` with a trailing newline.
  Status WriteFile(const std::string& path) const;
  static Result<Json> ReadFile(const std::string& path);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

/// Escapes `s` as a JSON string literal, including the surrounding quotes.
std::string JsonEscape(std::string_view s);

}  // namespace rmgp

#endif  // RMGP_UTIL_JSON_H_
