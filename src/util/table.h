#ifndef RMGP_UTIL_TABLE_H_
#define RMGP_UTIL_TABLE_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace rmgp {

/// Column-aligned text table used by the figure benchmarks to print the
/// same rows/series the paper reports, plus CSV export so the numbers can
/// be re-plotted.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; missing cells render empty, extra cells are an error
  /// (checked).
  void AddRow(std::vector<std::string> cells);

  /// Formats a double with `precision` significant decimal digits.
  static std::string Num(double v, int precision = 3);

  /// Formats an integer.
  static std::string Int(long long v);

  /// Renders the aligned table to a string (with header separator).
  std::string ToString() const;

  /// Writes the table as CSV to `path`.
  Status WriteCsv(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

  /// Raw access for alternative serializers (bench JSON export).
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rmgp

#endif  // RMGP_UTIL_TABLE_H_
