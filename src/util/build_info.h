#ifndef RMGP_UTIL_BUILD_INFO_H_
#define RMGP_UTIL_BUILD_INFO_H_

#include <string>

namespace rmgp {

/// Environment metadata stamped into every BENCH_*.json so a recorded perf
/// trajectory is attributable: two runs are only comparable if the sha,
/// compiler, and flags say they measured the same code the same way.
struct BuildInfo {
  std::string git_sha;         ///< configure-time `git rev-parse`, or "unknown"
  std::string compiler;        ///< e.g. "GNU 12.2.0"
  std::string compiler_flags;  ///< CMAKE_CXX_FLAGS + active build-type flags
  std::string build_type;      ///< e.g. "Release"
  std::string sanitize;        ///< RMGP_SANITIZE value, usually empty
  unsigned hardware_threads;   ///< std::thread::hardware_concurrency()
};

/// Returns the metadata baked in at configure time plus runtime nproc.
BuildInfo GetBuildInfo();

}  // namespace rmgp

#endif  // RMGP_UTIL_BUILD_INFO_H_
