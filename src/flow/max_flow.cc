#include "flow/max_flow.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/logging.h"

namespace rmgp {

MaxFlow::MaxFlow(uint32_t num_nodes) : head_(num_nodes) {}

uint32_t MaxFlow::AddEdge(uint32_t u, uint32_t v, double capacity) {
  RMGP_CHECK_LT(u, num_nodes());
  RMGP_CHECK_LT(v, num_nodes());
  RMGP_CHECK_GE(capacity, 0.0);
  const uint32_t id = static_cast<uint32_t>(arcs_.size());
  arcs_.push_back({v, capacity});
  arcs_.push_back({u, 0.0});
  initial_cap_.push_back(capacity);
  initial_cap_.push_back(0.0);
  head_[u].push_back(id);
  head_[v].push_back(id + 1);
  return id;
}

void MaxFlow::AddUndirectedEdge(uint32_t u, uint32_t v, double capacity) {
  RMGP_CHECK_LT(u, num_nodes());
  RMGP_CHECK_LT(v, num_nodes());
  const uint32_t id = static_cast<uint32_t>(arcs_.size());
  arcs_.push_back({v, capacity});
  arcs_.push_back({u, capacity});
  initial_cap_.push_back(capacity);
  initial_cap_.push_back(capacity);
  head_[u].push_back(id);
  head_[v].push_back(id + 1);
}

bool MaxFlow::Bfs(uint32_t s, uint32_t t) {
  level_.assign(num_nodes(), -1);
  std::queue<uint32_t> q;
  level_[s] = 0;
  q.push(s);
  while (!q.empty()) {
    const uint32_t v = q.front();
    q.pop();
    for (uint32_t a : head_[v]) {
      if (arcs_[a].cap > 1e-12 && level_[arcs_[a].to] < 0) {
        level_[arcs_[a].to] = level_[v] + 1;
        q.push(arcs_[a].to);
      }
    }
  }
  return level_[t] >= 0;
}

double MaxFlow::Dfs(uint32_t v, uint32_t t, double pushed) {
  if (v == t) return pushed;
  for (uint32_t& i = iter_[v]; i < head_[v].size(); ++i) {
    const uint32_t a = head_[v][i];
    Arc& arc = arcs_[a];
    if (arc.cap > 1e-12 && level_[arc.to] == level_[v] + 1) {
      const double got = Dfs(arc.to, t, std::min(pushed, arc.cap));
      if (got > 0.0) {
        arc.cap -= got;
        arcs_[a ^ 1].cap += got;
        return got;
      }
    }
  }
  return 0.0;
}

double MaxFlow::Solve(uint32_t s, uint32_t t) {
  RMGP_CHECK_NE(s, t);
  double flow = 0.0;
  while (Bfs(s, t)) {
    iter_.assign(num_nodes(), 0);
    for (;;) {
      const double got =
          Dfs(s, t, std::numeric_limits<double>::infinity());
      if (got <= 0.0) break;
      flow += got;
    }
  }
  return flow;
}

std::vector<bool> MaxFlow::MinCutSourceSide(uint32_t s) const {
  std::vector<bool> side(num_nodes(), false);
  std::queue<uint32_t> q;
  side[s] = true;
  q.push(s);
  while (!q.empty()) {
    const uint32_t v = q.front();
    q.pop();
    for (uint32_t a : head_[v]) {
      if (arcs_[a].cap > 1e-12 && !side[arcs_[a].to]) {
        side[arcs_[a].to] = true;
        q.push(arcs_[a].to);
      }
    }
  }
  return side;
}

double MaxFlow::FlowOn(uint32_t edge_id) const {
  RMGP_CHECK_LT(edge_id, initial_cap_.size());
  return initial_cap_[edge_id] - arcs_[edge_id].cap;
}

}  // namespace rmgp
