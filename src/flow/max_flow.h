#ifndef RMGP_FLOW_MAX_FLOW_H_
#define RMGP_FLOW_MAX_FLOW_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace rmgp {

/// Dinic max-flow / min-cut on a directed capacitated graph. Substrate for
/// the UML_gr greedy baseline, which isolates one label at a time via
/// minimum cuts on a transformed graph (DESIGN.md §5).
class MaxFlow {
 public:
  /// Creates a flow network with `num_nodes` nodes.
  explicit MaxFlow(uint32_t num_nodes);

  /// Adds a directed arc u -> v with the given capacity (and implicit
  /// residual arc of capacity 0). Returns the arc id.
  /// For an undirected edge, call AddUndirectedEdge instead.
  uint32_t AddEdge(uint32_t u, uint32_t v, double capacity);

  /// Adds an undirected edge: capacity in both directions.
  void AddUndirectedEdge(uint32_t u, uint32_t v, double capacity);

  /// Computes the maximum s-t flow. May be called once per instance.
  double Solve(uint32_t s, uint32_t t);

  /// After Solve: nodes on the source side of a minimum cut.
  std::vector<bool> MinCutSourceSide(uint32_t s) const;

  /// Flow currently on arc `edge_id` (as returned by AddEdge).
  double FlowOn(uint32_t edge_id) const;

  uint32_t num_nodes() const { return static_cast<uint32_t>(head_.size()); }

 private:
  struct Arc {
    uint32_t to;
    double cap;  // residual capacity
  };

  bool Bfs(uint32_t s, uint32_t t);
  double Dfs(uint32_t v, uint32_t t, double pushed);

  std::vector<Arc> arcs_;                 // arc 2i and 2i+1 are a pair
  std::vector<std::vector<uint32_t>> head_;  // adjacency: arc indices
  std::vector<double> initial_cap_;       // for FlowOn
  std::vector<int32_t> level_;
  std::vector<uint32_t> iter_;
};

}  // namespace rmgp

#endif  // RMGP_FLOW_MAX_FLOW_H_
