#ifndef RMGP_DIST_NETWORK_H_
#define RMGP_DIST_NETWORK_H_

#include <cstdint>

namespace rmgp {

/// Cost model for the simulated cluster interconnect. The paper's testbed
/// is three servers on 100 Mbps Ethernet (§6.4); the simulation charges
/// bytes against bandwidth and a fixed per-message latency, and these two
/// terms are exactly what separates DG from FaE in Fig 13/14.
struct NetworkModel {
  double bandwidth_mbps = 100.0;  ///< megabits per second
  double latency_ms = 0.2;        ///< one-way per-message latency

  /// Simulated seconds to move `bytes` in `messages` messages.
  double TransferSeconds(uint64_t bytes, uint64_t messages) const {
    const double bw_bytes_per_sec = bandwidth_mbps * 1e6 / 8.0;
    return static_cast<double>(bytes) / bw_bytes_per_sec +
           static_cast<double>(messages) * latency_ms / 1e3;
  }
};

/// Running totals of simulated traffic.
struct TrafficStats {
  uint64_t bytes = 0;
  uint64_t messages = 0;

  void Add(uint64_t b, uint64_t m = 1) {
    bytes += b;
    messages += m;
  }
  void Merge(const TrafficStats& other) {
    bytes += other.bytes;
    messages += other.messages;
  }
  double Seconds(const NetworkModel& net) const {
    return net.TransferSeconds(bytes, messages);
  }
};

/// Wire-format sizes (bytes) shared by DG and FaE accounting.
namespace wire {
inline constexpr uint64_t kPerStrategyEntry = 4;   ///< class id in the GSV
inline constexpr uint64_t kPerStrategyChange = 8;  ///< user id + new class
inline constexpr uint64_t kPerEdge = 12;           ///< u, v, weight (f32)
inline constexpr uint64_t kPerLocation = 12;       ///< user id + x, y (f32)
inline constexpr uint64_t kPerEvent = 20;          ///< event id + coords
inline constexpr uint64_t kCommand = 16;           ///< opcode + argument
inline constexpr uint64_t kAck = 8;
}  // namespace wire

}  // namespace rmgp

#endif  // RMGP_DIST_NETWORK_H_
