#ifndef RMGP_DIST_DECENTRALIZED_H_
#define RMGP_DIST_DECENTRALIZED_H_

#include <vector>

#include "core/instance.h"
#include "core/objective.h"
#include "core/solver.h"
#include "dist/network.h"
#include "dist/slave_game.h"  // PartitionScheme, SlaveGame
#include "util/status.h"

namespace rmgp {

/// Options for the decentralized experiments (§5 / §6.4). The social graph
/// is hash-partitioned over `num_slaves` processing nodes (the paper notes
/// the partitioning scheme is orthogonal); slaves exchange data only
/// through the master, whose traffic is charged to `network`. The per-slave
/// game state lives in dist/slave_game.h, shared bit-for-bit with the real
/// multi-process deployment in src/shard.
struct DecentralizedOptions {
  uint32_t num_slaves = 2;
  NetworkModel network;
  /// Initialization for the underlying RMGP_all computation. Order policy
  /// applies within each slave's local users.
  SolverOptions solver;
  /// §5: "DG can be easily extended to handle direct data exchange
  /// between slaves." When true, strategy changes travel slave→slave
  /// instead of slave→master→slaves, halving the per-round change traffic
  /// (identical game outcome).
  bool direct_exchange = false;
  /// Placement of users onto slaves.
  PartitionScheme partition = PartitionScheme::kHash;
  /// Extension beyond the paper's broadcast: the master (or, with
  /// direct_exchange, each slave) ships a strategy change only to slaves
  /// hosting at least one friend of the changed user. Identical game
  /// outcome; with kLocality placement most changes stay local and the
  /// change traffic collapses. Requires num_slaves <= 64.
  bool interest_multicast = false;
};

/// Per-round telemetry of the decentralized game — the series Fig 14
/// plots: processing time and data transferred per round.
struct DgRoundStats {
  uint32_t round = 0;             ///< 0 = initialization round
  double compute_seconds = 0.0;   ///< Σ over color steps of max-slave time
  double network_seconds = 0.0;   ///< simulated transfer time
  double seconds = 0.0;           ///< compute + network
  uint64_t bytes = 0;
  uint64_t messages = 0;
  uint64_t deviations = 0;
};

/// Result of the decentralized game (DG, Fig 6).
struct DgResult {
  Assignment assignment;
  bool converged = false;
  uint32_t rounds = 0;
  CostBreakdown objective;
  double simulated_seconds = 0.0;  ///< end-to-end simulated wall time
  TrafficStats traffic;
  std::vector<DgRoundStats> round_stats;  ///< [0] is the init round
};

/// Runs the decentralized game: slaves initialize local players, exchange
/// local strategic vectors through the master, then per round and per
/// color compute best responses locally (RMGP_all-style reduced global
/// tables) and ship only strategy changes. Deterministic: identical
/// assignments to the centralized coloring-synchronous game.
Result<DgResult> RunDecentralizedGame(const Instance& inst,
                                      const DecentralizedOptions& options);

/// Result of fetch-and-execute (FaE): ship the distributed graph to one
/// server, then run RMGP_all locally — the stacked transfer/execute bars
/// of Fig 13.
struct FaeResult {
  Assignment assignment;
  CostBreakdown objective;
  double transfer_seconds = 0.0;  ///< simulated: move graph + locations
  double execute_seconds = 0.0;   ///< measured local RMGP_all time
  double total_seconds = 0.0;
  TrafficStats traffic;
  SolveResult solve;
};

Result<FaeResult> RunFetchAndExecute(const Instance& inst,
                                     const DecentralizedOptions& options);

/// Result of an area-of-interest decentralized query (Fig 6 lines 2-3:
/// each slave "determines the users who are stored locally and will
/// participate in the game"; slaves without participants are excluded).
struct DgAreaResult {
  std::vector<NodeId> participants;  ///< ascending, original ids
  DgResult dg;                       ///< over the induced sub-instance
  /// Per original user: class, or kNotParticipating.
  static constexpr ClassId kNotParticipating = UINT32_MAX;
  std::vector<ClassId> full_assignment;
};

/// Runs the decentralized game restricted to `participants` (e.g. the
/// users inside a query box, via SelectUsersInBox). The induced subgraph
/// keeps only edges between participants; the GSV and all traffic
/// accounting cover participants only.
Result<DgAreaResult> RunDecentralizedGameInArea(
    const Instance& inst, const std::vector<NodeId>& participants,
    const DecentralizedOptions& options);

}  // namespace rmgp

#endif  // RMGP_DIST_DECENTRALIZED_H_
