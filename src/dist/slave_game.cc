#include "dist/slave_game.h"

#include <algorithm>
#include <cmath>

#include "core/solver_internal.h"
#include "partition/kway.h"
#include "util/logging.h"
#include "util/rng.h"

namespace rmgp {

using internal::StrictlyBetter;

SlaveGame::SlaveGame(const Instance& inst, std::vector<NodeId> local_users,
                     std::vector<uint32_t> colors)
    : inst_(inst), local_users_(std::move(local_users)),
      colors_(std::move(colors)) {
  const NodeId n = inst_.num_users();
  RMGP_CHECK_EQ(colors_.size(), n);
  local_index_.assign(n, UINT32_MAX);
  for (uint32_t i = 0; i < local_users_.size(); ++i) {
    local_index_[local_users_[i]] = i;
  }
  // Reverse index: for any user u, the local users adjacent to u. Built
  // from the local rows only (a slave never reads remote adjacency).
  std::vector<uint64_t> count(n + 1, 0);
  for (NodeId v : local_users_) {
    for (const Neighbor& nb : inst_.graph().neighbors(v)) {
      ++count[nb.node + 1];
    }
  }
  for (NodeId u = 0; u < n; ++u) count[u + 1] += count[u];
  rev_offsets_ = std::move(count);
  rev_entries_.resize(rev_offsets_[n]);
  std::vector<uint64_t> cursor(rev_offsets_.begin(), rev_offsets_.end() - 1);
  for (NodeId v : local_users_) {
    for (const Neighbor& nb : inst_.graph().neighbors(v)) {
      rev_entries_[cursor[nb.node]++] = {v, nb.weight};
    }
  }
}

std::vector<StrategyChange> SlaveGame::InitStrategies(
    const SolverOptions& options) {
  const double alpha = inst_.alpha();
  Rng rng(options.seed ^ (0x5151 + local_users_.size()));
  const ClassId k = inst_.num_classes();

  // Strategy elimination (§4.1) for local users.
  offsets_.assign(local_users_.size() + 1, 0);
  candidates_.clear();
  max_sc_.resize(local_users_.size());
  std::vector<double> row(k);
  init_strategy_.resize(local_users_.size());
  for (uint32_t i = 0; i < local_users_.size(); ++i) {
    const NodeId v = local_users_[i];
    inst_.AssignmentCostsFor(v, row.data());
    const double c_min = *std::min_element(row.begin(), row.end());
    const double vr =
        c_min + (1.0 - alpha) / alpha * inst_.HalfIncidentWeight(v);
    ClassId closest = 0;
    for (ClassId p = 0; p < k; ++p) {
      // Same tolerance as the centralized ComputeReducedStrategies so
      // that DG candidate sets match the centralized ones exactly.
      if (row[p] <= vr + internal::kImprovementEps * (1.0 + std::abs(vr))) {
        candidates_.push_back(p);
      }
      if (row[p] < row[closest]) closest = p;
    }
    offsets_[i + 1] = candidates_.size();
    max_sc_[i] = (1.0 - alpha) * inst_.HalfIncidentWeight(v);
    switch (options.init) {
      case InitPolicy::kClosestClass:
        init_strategy_[i] = closest;
        break;
      case InitPolicy::kGiven: {
        const ClassId given = options.warm_start[v];
        const ClassId* begin = candidates_.data() + offsets_[i];
        const ClassId* end = candidates_.data() + offsets_[i + 1];
        // A warm-start strategy outside the valid region would switch in
        // round 1 anyway; snap it to the closest class up-front.
        init_strategy_[i] =
            std::binary_search(begin, end, given) ? given : closest;
        break;
      }
      case InitPolicy::kRandom: {
        const uint64_t span = offsets_[i + 1] - offsets_[i];
        init_strategy_[i] = candidates_[offsets_[i] + rng.UniformInt(span)];
        break;
      }
    }
  }
  std::vector<StrategyChange> lsv;
  lsv.reserve(local_users_.size());
  for (uint32_t i = 0; i < local_users_.size(); ++i) {
    lsv.push_back({local_users_[i], 0, init_strategy_[i]});
  }
  return lsv;
}

void SlaveGame::BuildTables(const Assignment& gsv) {
  gsv_ = gsv;
  values_.assign(candidates_.size(), 0.0);
  cur_idx_.assign(local_users_.size(), 0);
  happy_.assign(local_users_.size(), 1);
  const double alpha = inst_.alpha();
  const double social = 1.0 - alpha;
  for (uint32_t i = 0; i < local_users_.size(); ++i) {
    const NodeId v = local_users_[i];
    double* vals = values_.data() + offsets_[i];
    const size_t count = offsets_[i + 1] - offsets_[i];
    const ClassId* cands = candidates_.data() + offsets_[i];
    for (size_t c = 0; c < count; ++c) {
      vals[c] = alpha * inst_.AssignmentCost(v, cands[c]) + max_sc_[i];
    }
    for (const Neighbor& nb : inst_.graph().neighbors(v)) {
      const size_t ci = FindCandidate(i, gsv_[nb.node]);
      if (ci != SIZE_MAX) vals[ci] -= social * 0.5 * nb.weight;
    }
    const size_t mine = FindCandidate(i, gsv_[v]);
    RMGP_CHECK_NE(mine, SIZE_MAX);
    cur_idx_[i] = static_cast<uint32_t>(mine);
    double best = vals[0];
    for (size_t c = 1; c < count; ++c) best = std::min(best, vals[c]);
    happy_[i] = !StrictlyBetter(best, vals[mine]);
  }
}

std::vector<StrategyChange> SlaveGame::ComputeColor(uint32_t color) {
  std::vector<StrategyChange> changes;
  for (uint32_t i = 0; i < local_users_.size(); ++i) {
    const NodeId v = local_users_[i];
    if (colors_[v] != color || happy_[i]) continue;
    const double* vals = values_.data() + offsets_[i];
    const size_t count = offsets_[i + 1] - offsets_[i];
    size_t best = 0;
    for (size_t c = 1; c < count; ++c) {
      if (vals[c] < vals[best]) best = c;
    }
    happy_[i] = 1;
    if (!StrictlyBetter(vals[best], vals[cur_idx_[i]])) continue;
    const ClassId old_class = gsv_[v];
    const ClassId new_class = candidates_[offsets_[i] + best];
    gsv_[v] = new_class;
    cur_idx_[i] = static_cast<uint32_t>(best);
    changes.push_back({v, old_class, new_class});
    UpdateLocalFriends(v, old_class, new_class);
  }
  return changes;
}

void SlaveGame::ApplyRemoteChanges(const std::vector<StrategyChange>& changes) {
  for (const StrategyChange& ch : changes) {
    if (local_index_[ch.user] != UINT32_MAX) continue;  // own change
    gsv_[ch.user] = ch.new_class;
    UpdateLocalFriends(ch.user, ch.old_class, ch.new_class);
  }
}

size_t SlaveGame::FindCandidate(uint32_t local_i, ClassId p) const {
  const ClassId* begin = candidates_.data() + offsets_[local_i];
  const ClassId* end = candidates_.data() + offsets_[local_i + 1];
  const ClassId* it = std::lower_bound(begin, end, p);
  if (it != end && *it == p) return static_cast<size_t>(it - begin);
  return SIZE_MAX;
}

void SlaveGame::UpdateLocalFriends(NodeId u, ClassId old_class,
                                   ClassId new_class) {
  const double social = 1.0 - inst_.alpha();
  for (uint64_t r = rev_offsets_[u]; r < rev_offsets_[u + 1]; ++r) {
    const NodeId f = rev_entries_[r].node;
    const uint32_t fi = local_index_[f];
    const double delta = social * 0.5 * rev_entries_[r].weight;
    const size_t idx_new = FindCandidate(fi, new_class);
    const size_t idx_old = FindCandidate(fi, old_class);
    double* frow = values_.data() + offsets_[fi];
    if (idx_new != SIZE_MAX) frow[idx_new] -= delta;
    if (idx_old != SIZE_MAX) frow[idx_old] += delta;
    if (gsv_[f] == old_class ||
        (idx_new != SIZE_MAX &&
         StrictlyBetter(frow[idx_new], frow[cur_idx_[fi]]))) {
      happy_[fi] = 0;
    }
  }
}

Result<std::vector<std::vector<NodeId>>> PlaceUsers(const Graph& graph,
                                                    PartitionScheme scheme,
                                                    uint32_t num_slaves) {
  if (num_slaves == 0) {
    return Status::InvalidArgument("need at least one slave");
  }
  const NodeId n = graph.num_nodes();
  std::vector<std::vector<NodeId>> parts(num_slaves);
  if (scheme == PartitionScheme::kLocality && num_slaves > 1 && n > 0) {
    PartitionOptions popt;
    popt.num_parts = num_slaves;
    popt.imbalance = 1.1;
    auto part_result = KWayPartition(graph, popt);
    if (!part_result.ok()) return part_result.status();
    for (NodeId v = 0; v < n; ++v) {
      parts[part_result->part[v]].push_back(v);
    }
  } else {
    for (NodeId v = 0; v < n; ++v) parts[v % num_slaves].push_back(v);
  }
  return parts;
}

std::vector<uint64_t> BuildInterestMasks(
    const Graph& graph, const std::vector<uint32_t>& slave_of) {
  const NodeId n = graph.num_nodes();
  std::vector<uint64_t> interest(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    for (const Neighbor& nb : graph.neighbors(v)) {
      interest[v] |= uint64_t{1} << slave_of[nb.node];
    }
  }
  return interest;
}

}  // namespace rmgp
