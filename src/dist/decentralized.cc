#include "dist/decentralized.h"

#include <algorithm>
#include <limits>

#include "core/solver_internal.h"
#include "core/subgraph_game.h"
#include "partition/kway.h"
#include "graph/coloring.h"
#include "graph/traversal.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace rmgp {
namespace {

using internal::StrictlyBetter;

/// One strategy deviation shipped through the master.
struct Change {
  NodeId user;
  ClassId old_class;
  ClassId new_class;
};

/// A simulated slave processing node. It owns the adjacency rows, check-in
/// data and game state of its local users only; everything it learns about
/// remote users arrives as strategy changes through the master (Fig 6).
class Slave {
 public:
  Slave(const Instance& inst, std::vector<NodeId> local_users,
        const Coloring& coloring)
      : inst_(inst), local_users_(std::move(local_users)),
        coloring_(coloring) {
    const NodeId n = inst_.num_users();
    local_index_.assign(n, UINT32_MAX);
    for (uint32_t i = 0; i < local_users_.size(); ++i) {
      local_index_[local_users_[i]] = i;
    }
    // Reverse index: for any user u, the local users adjacent to u. Built
    // from the local rows only (a slave never reads remote adjacency).
    std::vector<uint64_t> count(n + 1, 0);
    for (NodeId v : local_users_) {
      for (const Neighbor& nb : inst_.graph().neighbors(v)) {
        ++count[nb.node + 1];
      }
    }
    for (NodeId u = 0; u < n; ++u) count[u + 1] += count[u];
    rev_offsets_ = std::move(count);
    rev_entries_.resize(rev_offsets_[n]);
    std::vector<uint64_t> cursor(rev_offsets_.begin(),
                                 rev_offsets_.end() - 1);
    for (NodeId v : local_users_) {
      for (const Neighbor& nb : inst_.graph().neighbors(v)) {
        rev_entries_[cursor[nb.node]++] = {v, nb.weight};
      }
    }
  }

  /// Fig 6 steps 2-5: initialize local players' strategies. Returns the
  /// local strategic vector to send to the master.
  std::vector<Change> InitStrategies(const SolverOptions& options) {
    const double alpha = inst_.alpha();
    Rng rng(options.seed ^ (0x5151 + local_users_.size()));
    const ClassId k = inst_.num_classes();

    // Strategy elimination (§4.1) for local users.
    offsets_.assign(local_users_.size() + 1, 0);
    candidates_.clear();
    max_sc_.resize(local_users_.size());
    std::vector<double> row(k);
    init_strategy_.resize(local_users_.size());
    for (uint32_t i = 0; i < local_users_.size(); ++i) {
      const NodeId v = local_users_[i];
      inst_.AssignmentCostsFor(v, row.data());
      const double c_min = *std::min_element(row.begin(), row.end());
      const double vr =
          c_min + (1.0 - alpha) / alpha * inst_.HalfIncidentWeight(v);
      ClassId closest = 0;
      for (ClassId p = 0; p < k; ++p) {
        // Same tolerance as the centralized ComputeReducedStrategies so
        // that DG candidate sets match the centralized ones exactly.
        if (row[p] <=
            vr + internal::kImprovementEps * (1.0 + std::abs(vr))) {
          candidates_.push_back(p);
        }
        if (row[p] < row[closest]) closest = p;
      }
      offsets_[i + 1] = candidates_.size();
      max_sc_[i] = (1.0 - alpha) * inst_.HalfIncidentWeight(v);
      switch (options.init) {
        case InitPolicy::kClosestClass:
          init_strategy_[i] = closest;
          break;
        case InitPolicy::kGiven: {
          const ClassId given = options.warm_start[v];
          const ClassId* begin = candidates_.data() + offsets_[i];
          const ClassId* end = candidates_.data() + offsets_[i + 1];
          // A warm-start strategy outside the valid region would switch in
          // round 1 anyway; snap it to the closest class up-front.
          init_strategy_[i] =
              std::binary_search(begin, end, given) ? given : closest;
          break;
        }
        case InitPolicy::kRandom: {
          const uint64_t span = offsets_[i + 1] - offsets_[i];
          init_strategy_[i] =
              candidates_[offsets_[i] + rng.UniformInt(span)];
          break;
        }
      }
    }
    std::vector<Change> lsv;
    lsv.reserve(local_users_.size());
    for (uint32_t i = 0; i < local_users_.size(); ++i) {
      lsv.push_back({local_users_[i], 0, init_strategy_[i]});
    }
    return lsv;
  }

  /// Fig 6 steps 10-13: store the GSV and build the reduced global table.
  void BuildTables(const Assignment& gsv) {
    gsv_ = gsv;
    values_.assign(candidates_.size(), 0.0);
    cur_idx_.assign(local_users_.size(), 0);
    happy_.assign(local_users_.size(), 1);
    const double alpha = inst_.alpha();
    const double social = 1.0 - alpha;
    for (uint32_t i = 0; i < local_users_.size(); ++i) {
      const NodeId v = local_users_[i];
      double* vals = values_.data() + offsets_[i];
      const size_t count = offsets_[i + 1] - offsets_[i];
      const ClassId* cands = candidates_.data() + offsets_[i];
      for (size_t c = 0; c < count; ++c) {
        vals[c] = alpha * inst_.AssignmentCost(v, cands[c]) + max_sc_[i];
      }
      for (const Neighbor& nb : inst_.graph().neighbors(v)) {
        const size_t ci = FindCandidate(i, gsv_[nb.node]);
        if (ci != SIZE_MAX) vals[ci] -= social * 0.5 * nb.weight;
      }
      const size_t mine = FindCandidate(i, gsv_[v]);
      RMGP_CHECK_NE(mine, SIZE_MAX);
      cur_idx_[i] = static_cast<uint32_t>(mine);
      double best = vals[0];
      for (size_t c = 1; c < count; ++c) best = std::min(best, vals[c]);
      happy_[i] = !StrictlyBetter(best, vals[mine]);
    }
  }

  /// Fig 6 steps 17-19: best responses of local unhappy users with the
  /// given color; changes are applied locally (own GSV + local friends'
  /// table rows) and returned for the master to redistribute.
  std::vector<Change> ComputeColor(uint32_t color) {
    std::vector<Change> changes;
    for (uint32_t i = 0; i < local_users_.size(); ++i) {
      const NodeId v = local_users_[i];
      if (coloring_.color[v] != color || happy_[i]) continue;
      const double* vals = values_.data() + offsets_[i];
      const size_t count = offsets_[i + 1] - offsets_[i];
      size_t best = 0;
      for (size_t c = 1; c < count; ++c) {
        if (vals[c] < vals[best]) best = c;
      }
      happy_[i] = 1;
      if (!StrictlyBetter(vals[best], vals[cur_idx_[i]])) continue;
      const ClassId old_class = gsv_[v];
      const ClassId new_class = candidates_[offsets_[i] + best];
      gsv_[v] = new_class;
      cur_idx_[i] = static_cast<uint32_t>(best);
      changes.push_back({v, old_class, new_class});
      UpdateLocalFriends(v, old_class, new_class);
    }
    return changes;
  }

  /// Fig 6 steps 22-24: apply changes made on other slaves.
  void ApplyRemoteChanges(const std::vector<Change>& changes) {
    for (const Change& ch : changes) {
      if (local_index_[ch.user] != UINT32_MAX) continue;  // own change
      gsv_[ch.user] = ch.new_class;
      UpdateLocalFriends(ch.user, ch.old_class, ch.new_class);
    }
  }

  const std::vector<NodeId>& local_users() const { return local_users_; }
  const Assignment& gsv() const { return gsv_; }

 private:
  size_t FindCandidate(uint32_t local_i, ClassId p) const {
    const ClassId* begin = candidates_.data() + offsets_[local_i];
    const ClassId* end = candidates_.data() + offsets_[local_i + 1];
    const ClassId* it = std::lower_bound(begin, end, p);
    if (it != end && *it == p) return static_cast<size_t>(it - begin);
    return SIZE_MAX;
  }

  void UpdateLocalFriends(NodeId u, ClassId old_class, ClassId new_class) {
    const double social = 1.0 - inst_.alpha();
    for (uint64_t r = rev_offsets_[u]; r < rev_offsets_[u + 1]; ++r) {
      const NodeId f = rev_entries_[r].node;
      const uint32_t fi = local_index_[f];
      const double delta = social * 0.5 * rev_entries_[r].weight;
      const size_t idx_new = FindCandidate(fi, new_class);
      const size_t idx_old = FindCandidate(fi, old_class);
      double* frow = values_.data() + offsets_[fi];
      if (idx_new != SIZE_MAX) frow[idx_new] -= delta;
      if (idx_old != SIZE_MAX) frow[idx_old] += delta;
      if (gsv_[f] == old_class ||
          (idx_new != SIZE_MAX &&
           StrictlyBetter(frow[idx_new], frow[cur_idx_[fi]]))) {
        happy_[fi] = 0;
      }
    }
  }

  const Instance& inst_;
  std::vector<NodeId> local_users_;
  const Coloring& coloring_;
  std::vector<uint32_t> local_index_;        // |V| -> local idx or UINT32_MAX
  std::vector<uint64_t> rev_offsets_;        // |V|+1
  std::vector<Neighbor> rev_entries_;        // local users adjacent to key
  std::vector<uint64_t> offsets_;            // reduced lists, local indexing
  std::vector<ClassId> candidates_;
  std::vector<double> values_;               // reduced global table
  std::vector<double> max_sc_;
  std::vector<uint32_t> cur_idx_;
  std::vector<char> happy_;
  std::vector<ClassId> init_strategy_;
  Assignment gsv_;
};

std::vector<std::vector<NodeId>> HashPartition(NodeId n, uint32_t slaves) {
  std::vector<std::vector<NodeId>> parts(slaves);
  for (NodeId v = 0; v < n; ++v) parts[v % slaves].push_back(v);
  return parts;
}

}  // namespace

Result<DgResult> RunDecentralizedGame(const Instance& inst,
                                      const DecentralizedOptions& options) {
  if (options.num_slaves == 0) {
    return Status::InvalidArgument("need at least one slave");
  }
  if (options.interest_multicast && options.num_slaves > 64) {
    return Status::InvalidArgument(
        "interest_multicast supports at most 64 slaves");
  }
  if (options.solver.init == InitPolicy::kGiven) {
    Status s = ValidateAssignment(inst, options.solver.warm_start);
    if (!s.ok()) return s;
  }

  const NodeId n = inst.num_users();
  const ClassId k = inst.num_classes();
  const uint32_t S = options.num_slaves;

  // Precondition per §5: the graph has been colored offline (the paper
  // cites a distributed coloring technique; we use the same greedy
  // coloring as the centralized algorithms).
  const Coloring coloring = GreedyColoring(inst.graph());

  // Placement of users onto slaves.
  std::vector<std::vector<NodeId>> parts;
  if (options.partition == PartitionScheme::kLocality && S > 1 && n > 0) {
    PartitionOptions popt;
    popt.num_parts = S;
    popt.imbalance = 1.1;
    auto part_result = KWayPartition(inst.graph(), popt);
    if (!part_result.ok()) return part_result.status();
    parts.resize(S);
    for (NodeId v = 0; v < n; ++v) {
      parts[part_result->part[v]].push_back(v);
    }
  } else {
    parts = HashPartition(n, S);
  }
  std::vector<uint32_t> slave_of(n, 0);
  for (uint32_t s = 0; s < S; ++s) {
    for (NodeId v : parts[s]) slave_of[v] = s;
  }
  // Interest masks: which slaves host at least one friend of each user
  // (only needed for multicast redistribution).
  std::vector<uint64_t> interest;
  if (options.interest_multicast) {
    interest.assign(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      for (const Neighbor& nb : inst.graph().neighbors(v)) {
        interest[v] |= uint64_t{1} << slave_of[nb.node];
      }
    }
  }

  std::vector<Slave> slaves;
  slaves.reserve(S);
  for (uint32_t s = 0; s < S; ++s) {
    slaves.emplace_back(inst, std::move(parts[s]), coloring);
  }

  DgResult res;
  double sim_seconds = 0.0;
  // The master's authoritative global strategic vector (Fig 6 line 8).
  Assignment master_gsv(n, 0);

  // ---- Round 0: initialization handshake (Fig 6 lines 1-13).
  DgRoundStats round0;
  {
    TrafficStats traffic;
    // Master -> slaves: query (events, alpha, init policy).
    traffic.Add((wire::kCommand + static_cast<uint64_t>(k) * wire::kPerEvent) *
                    S,
                S);
    double max_slave = 0.0;
    for (Slave& slave : slaves) {
      Stopwatch sw;
      const std::vector<Change> lsv = slave.InitStrategies(options.solver);
      max_slave = std::max(max_slave, sw.ElapsedSeconds());
      for (const Change& ch : lsv) master_gsv[ch.user] = ch.new_class;
      // Slave -> master: LSV + its distinct colors.
      traffic.Add(lsv.size() * wire::kPerStrategyChange +
                  coloring.num_colors() * 4);
    }
    // Master -> slaves: the full GSV.
    traffic.Add(static_cast<uint64_t>(n) * wire::kPerStrategyEntry * S, S);
    for (Slave& slave : slaves) {
      Stopwatch sw;
      slave.BuildTables(master_gsv);
      max_slave = std::max(max_slave, sw.ElapsedSeconds());
      traffic.Add(wire::kAck);  // ACK
    }
    round0.round = 0;
    round0.compute_seconds = max_slave;
    round0.network_seconds = traffic.Seconds(options.network);
    round0.seconds = round0.compute_seconds + round0.network_seconds;
    round0.bytes = traffic.bytes;
    round0.messages = traffic.messages;
    res.traffic.Merge(traffic);
    sim_seconds += round0.seconds;
  }
  res.round_stats.push_back(round0);

  // ---- Game rounds (Fig 6 lines 14-25).
  const uint32_t max_rounds = options.solver.max_rounds;
  for (uint32_t round = 1; round <= max_rounds; ++round) {
    DgRoundStats rs;
    rs.round = round;
    TrafficStats traffic;
    double compute = 0.0;
    uint64_t round_changes = 0;
    for (uint32_t color = 0; color < coloring.num_colors(); ++color) {
      // Master -> slaves: "compute color c".
      traffic.Add(wire::kCommand * S, S);
      std::vector<Change> all_changes;
      std::vector<size_t> per_slave(S, 0);
      double max_slave = 0.0;
      for (uint32_t s = 0; s < S; ++s) {
        Stopwatch sw;
        std::vector<Change> changes = slaves[s].ComputeColor(color);
        max_slave = std::max(max_slave, sw.ElapsedSeconds());
        per_slave[s] = changes.size();
        if (!options.direct_exchange) {
          // Slave -> master: its strategy changes.
          traffic.Add(changes.size() * wire::kPerStrategyChange);
        }
        all_changes.insert(all_changes.end(), changes.begin(),
                           changes.end());
      }
      compute += max_slave;
      round_changes += all_changes.size();
      for (const Change& ch : all_changes) {
        master_gsv[ch.user] = ch.new_class;
      }
      // Redistribute the changes, then ACKs. Master-mediated: each slave
      // receives everyone else's changes from the master. Direct
      // exchange (§5 extension): each slave ships its own changes
      // straight to the S-1 peers, bypassing the master hop entirely.
      // Interest multicast (extension): a change travels only to slaves
      // hosting a friend of the changed user.
      double max_apply = 0.0;
      if (options.interest_multicast) {
        std::vector<std::vector<Change>> bundles(S);
        for (const Change& ch : all_changes) {
          const uint64_t mask = interest[ch.user];
          for (uint32_t s = 0; s < S; ++s) {
            if (s != slave_of[ch.user] && ((mask >> s) & 1)) {
              bundles[s].push_back(ch);
            }
          }
        }
        for (uint32_t s = 0; s < S; ++s) {
          if (!bundles[s].empty()) {
            traffic.Add(bundles[s].size() * wire::kPerStrategyChange, 1);
          }
          Stopwatch sw;
          slaves[s].ApplyRemoteChanges(bundles[s]);
          max_apply = std::max(max_apply, sw.ElapsedSeconds());
          traffic.Add(wire::kAck);
        }
      } else {
        if (options.direct_exchange) {
          for (uint32_t s = 0; s < S; ++s) {
            traffic.Add(per_slave[s] * wire::kPerStrategyChange * (S - 1),
                        S - 1);
          }
        } else {
          for (uint32_t s = 0; s < S; ++s) {
            traffic.Add((all_changes.size() - per_slave[s]) *
                            wire::kPerStrategyChange,
                        1);
          }
        }
        for (uint32_t s = 0; s < S; ++s) {
          Stopwatch sw;
          slaves[s].ApplyRemoteChanges(all_changes);
          max_apply = std::max(max_apply, sw.ElapsedSeconds());
          traffic.Add(wire::kAck);
        }
      }
      compute += max_apply;
    }
    rs.deviations = round_changes;
    rs.compute_seconds = compute;
    rs.network_seconds = traffic.Seconds(options.network);
    rs.seconds = rs.compute_seconds + rs.network_seconds;
    rs.bytes = traffic.bytes;
    rs.messages = traffic.messages;
    res.traffic.Merge(traffic);
    sim_seconds += rs.seconds;
    res.round_stats.push_back(rs);
    res.rounds = round;
    if (round_changes == 0) {
      res.converged = true;
      break;
    }
  }

  res.assignment = master_gsv;
  // Sanity: every slave's view of its own users matches the master; with
  // broadcast redistribution the whole vectors must agree (multicast
  // intentionally leaves entries of unrelated users stale).
  for (uint32_t s = 0; s < S; ++s) {
    if (options.interest_multicast) {
      for (NodeId v : slaves[s].local_users()) {
        RMGP_CHECK_EQ(slaves[s].gsv()[v], master_gsv[v]);
      }
    } else {
      RMGP_CHECK(slaves[s].gsv() == master_gsv);
    }
  }
  res.objective = EvaluateObjective(inst, res.assignment);
  res.simulated_seconds = sim_seconds;
  return res;
}

Result<DgAreaResult> RunDecentralizedGameInArea(
    const Instance& inst, const std::vector<NodeId>& participants,
    const DecentralizedOptions& options) {
  if (participants.empty()) {
    return Status::InvalidArgument("no participants in the area of interest");
  }
  std::vector<NodeId> sorted = participants;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] >= inst.num_users()) {
      return Status::InvalidArgument("participant out of range");
    }
    if (i > 0 && sorted[i] == sorted[i - 1]) {
      return Status::InvalidArgument("duplicate participant");
    }
  }

  DgAreaResult out;
  out.participants = sorted;
  // Fig 6 lines 2-3 performed up-front: the induced sub-instance is what
  // the participating slaves actually play over.
  const Graph sub = InducedSubgraph(inst.graph(), sorted);
  auto costs = MakeSubsetCostProvider(&inst.costs(), sorted);
  auto sub_inst = Instance::Create(&sub, std::move(costs), inst.alpha());
  if (!sub_inst.ok()) return sub_inst.status();
  sub_inst->set_cost_scale(inst.cost_scale());

  DecentralizedOptions sub_options = options;
  if (options.solver.init == InitPolicy::kGiven) {
    if (Status s = ValidateAssignment(inst, options.solver.warm_start);
        !s.ok()) {
      return s;
    }
    sub_options.solver.warm_start.resize(sorted.size());
    for (size_t i = 0; i < sorted.size(); ++i) {
      sub_options.solver.warm_start[i] =
          options.solver.warm_start[sorted[i]];
    }
  }

  auto dg = RunDecentralizedGame(*sub_inst, sub_options);
  if (!dg.ok()) return dg.status();
  out.dg = std::move(dg).value();

  out.full_assignment.assign(inst.num_users(),
                             DgAreaResult::kNotParticipating);
  for (size_t i = 0; i < sorted.size(); ++i) {
    out.full_assignment[sorted[i]] = out.dg.assignment[i];
  }
  return out;
}

Result<FaeResult> RunFetchAndExecute(const Instance& inst,
                                     const DecentralizedOptions& options) {
  if (options.num_slaves == 0) {
    return Status::InvalidArgument("need at least one slave");
  }
  FaeResult res;
  // Transfer: every slave ships its adjacency rows (each undirected edge
  // travels once from the slave owning its lower endpoint) and its users'
  // check-in locations to the processing server.
  const uint64_t edge_bytes = inst.graph().num_edges() * wire::kPerEdge;
  const uint64_t loc_bytes =
      static_cast<uint64_t>(inst.num_users()) * wire::kPerLocation;
  res.traffic.Add(edge_bytes + loc_bytes, options.num_slaves);
  res.transfer_seconds = res.traffic.Seconds(options.network);

  auto solve = SolveAll(inst, options.solver);
  if (!solve.ok()) return solve.status();
  res.solve = std::move(solve).value();
  res.execute_seconds = res.solve.total_millis / 1e3;
  res.total_seconds = res.transfer_seconds + res.execute_seconds;
  res.assignment = res.solve.assignment;
  res.objective = res.solve.objective;
  return res;
}

}  // namespace rmgp
