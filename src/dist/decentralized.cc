#include "dist/decentralized.h"

#include <algorithm>
#include <limits>

#include "core/subgraph_game.h"
#include "graph/coloring.h"
#include "graph/traversal.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace rmgp {
namespace {

// The per-slave game state (strategy elimination, reduced tables, per-color
// best responses) lives in dist/slave_game.h so that the real worker
// process in src/shard runs the exact code the simulation is validated
// against. `Slave` and `Change` are kept as local aliases to preserve the
// Fig 6 vocabulary of the driver below.
using Change = StrategyChange;
using Slave = SlaveGame;

}  // namespace

Result<DgResult> RunDecentralizedGame(const Instance& inst,
                                      const DecentralizedOptions& options) {
  if (options.num_slaves == 0) {
    return Status::InvalidArgument("need at least one slave");
  }
  if (options.interest_multicast && options.num_slaves > 64) {
    return Status::InvalidArgument(
        "interest_multicast supports at most 64 slaves");
  }
  if (options.solver.init == InitPolicy::kGiven) {
    Status s = ValidateAssignment(inst, options.solver.warm_start);
    if (!s.ok()) return s;
  }

  const NodeId n = inst.num_users();
  const ClassId k = inst.num_classes();
  const uint32_t S = options.num_slaves;

  // Precondition per §5: the graph has been colored offline (the paper
  // cites a distributed coloring technique; we use the same greedy
  // coloring as the centralized algorithms).
  const Coloring coloring = GreedyColoring(inst.graph());

  // Placement of users onto slaves (shared with the real coordinator so
  // both cut identical shards).
  auto parts_or = PlaceUsers(inst.graph(), options.partition, S);
  if (!parts_or.ok()) return parts_or.status();
  std::vector<std::vector<NodeId>> parts = std::move(parts_or).value();
  std::vector<uint32_t> slave_of(n, 0);
  for (uint32_t s = 0; s < S; ++s) {
    for (NodeId v : parts[s]) slave_of[v] = s;
  }
  // Interest masks: which slaves host at least one friend of each user
  // (only needed for multicast redistribution).
  std::vector<uint64_t> interest;
  if (options.interest_multicast) {
    interest = BuildInterestMasks(inst.graph(), slave_of);
  }

  std::vector<Slave> slaves;
  slaves.reserve(S);
  for (uint32_t s = 0; s < S; ++s) {
    slaves.emplace_back(inst, std::move(parts[s]), coloring.color);
  }

  DgResult res;
  double sim_seconds = 0.0;
  // The master's authoritative global strategic vector (Fig 6 line 8).
  Assignment master_gsv(n, 0);

  // ---- Round 0: initialization handshake (Fig 6 lines 1-13).
  DgRoundStats round0;
  {
    TrafficStats traffic;
    // Master -> slaves: query (events, alpha, init policy).
    traffic.Add((wire::kCommand + static_cast<uint64_t>(k) * wire::kPerEvent) *
                    S,
                S);
    double max_slave = 0.0;
    for (Slave& slave : slaves) {
      Stopwatch sw;
      const std::vector<Change> lsv = slave.InitStrategies(options.solver);
      max_slave = std::max(max_slave, sw.ElapsedSeconds());
      for (const Change& ch : lsv) master_gsv[ch.user] = ch.new_class;
      // Slave -> master: LSV + its distinct colors.
      traffic.Add(lsv.size() * wire::kPerStrategyChange +
                  coloring.num_colors() * 4);
    }
    // Master -> slaves: the full GSV.
    traffic.Add(static_cast<uint64_t>(n) * wire::kPerStrategyEntry * S, S);
    for (Slave& slave : slaves) {
      Stopwatch sw;
      slave.BuildTables(master_gsv);
      max_slave = std::max(max_slave, sw.ElapsedSeconds());
      traffic.Add(wire::kAck);  // ACK
    }
    round0.round = 0;
    round0.compute_seconds = max_slave;
    round0.network_seconds = traffic.Seconds(options.network);
    round0.seconds = round0.compute_seconds + round0.network_seconds;
    round0.bytes = traffic.bytes;
    round0.messages = traffic.messages;
    res.traffic.Merge(traffic);
    sim_seconds += round0.seconds;
  }
  res.round_stats.push_back(round0);

  // ---- Game rounds (Fig 6 lines 14-25).
  const uint32_t max_rounds = options.solver.max_rounds;
  for (uint32_t round = 1; round <= max_rounds; ++round) {
    DgRoundStats rs;
    rs.round = round;
    TrafficStats traffic;
    double compute = 0.0;
    uint64_t round_changes = 0;
    for (uint32_t color = 0; color < coloring.num_colors(); ++color) {
      // Master -> slaves: "compute color c".
      traffic.Add(wire::kCommand * S, S);
      std::vector<Change> all_changes;
      std::vector<size_t> per_slave(S, 0);
      double max_slave = 0.0;
      for (uint32_t s = 0; s < S; ++s) {
        Stopwatch sw;
        std::vector<Change> changes = slaves[s].ComputeColor(color);
        max_slave = std::max(max_slave, sw.ElapsedSeconds());
        per_slave[s] = changes.size();
        if (!options.direct_exchange) {
          // Slave -> master: its strategy changes.
          traffic.Add(changes.size() * wire::kPerStrategyChange);
        }
        all_changes.insert(all_changes.end(), changes.begin(),
                           changes.end());
      }
      compute += max_slave;
      round_changes += all_changes.size();
      for (const Change& ch : all_changes) {
        master_gsv[ch.user] = ch.new_class;
      }
      // Redistribute the changes, then ACKs. Master-mediated: each slave
      // receives everyone else's changes from the master. Direct
      // exchange (§5 extension): each slave ships its own changes
      // straight to the S-1 peers, bypassing the master hop entirely.
      // Interest multicast (extension): a change travels only to slaves
      // hosting a friend of the changed user.
      double max_apply = 0.0;
      if (options.interest_multicast) {
        std::vector<std::vector<Change>> bundles(S);
        for (const Change& ch : all_changes) {
          const uint64_t mask = interest[ch.user];
          for (uint32_t s = 0; s < S; ++s) {
            if (s != slave_of[ch.user] && ((mask >> s) & 1)) {
              bundles[s].push_back(ch);
            }
          }
        }
        for (uint32_t s = 0; s < S; ++s) {
          if (!bundles[s].empty()) {
            traffic.Add(bundles[s].size() * wire::kPerStrategyChange, 1);
          }
          Stopwatch sw;
          slaves[s].ApplyRemoteChanges(bundles[s]);
          max_apply = std::max(max_apply, sw.ElapsedSeconds());
          traffic.Add(wire::kAck);
        }
      } else {
        if (options.direct_exchange) {
          for (uint32_t s = 0; s < S; ++s) {
            traffic.Add(per_slave[s] * wire::kPerStrategyChange * (S - 1),
                        S - 1);
          }
        } else {
          for (uint32_t s = 0; s < S; ++s) {
            traffic.Add((all_changes.size() - per_slave[s]) *
                            wire::kPerStrategyChange,
                        1);
          }
        }
        for (uint32_t s = 0; s < S; ++s) {
          Stopwatch sw;
          slaves[s].ApplyRemoteChanges(all_changes);
          max_apply = std::max(max_apply, sw.ElapsedSeconds());
          traffic.Add(wire::kAck);
        }
      }
      compute += max_apply;
    }
    rs.deviations = round_changes;
    rs.compute_seconds = compute;
    rs.network_seconds = traffic.Seconds(options.network);
    rs.seconds = rs.compute_seconds + rs.network_seconds;
    rs.bytes = traffic.bytes;
    rs.messages = traffic.messages;
    res.traffic.Merge(traffic);
    sim_seconds += rs.seconds;
    res.round_stats.push_back(rs);
    res.rounds = round;
    if (round_changes == 0) {
      res.converged = true;
      break;
    }
  }

  res.assignment = master_gsv;
  // Sanity: every slave's view of its own users matches the master; with
  // broadcast redistribution the whole vectors must agree (multicast
  // intentionally leaves entries of unrelated users stale).
  for (uint32_t s = 0; s < S; ++s) {
    if (options.interest_multicast) {
      for (NodeId v : slaves[s].local_users()) {
        RMGP_CHECK_EQ(slaves[s].gsv()[v], master_gsv[v]);
      }
    } else {
      RMGP_CHECK(slaves[s].gsv() == master_gsv);
    }
  }
  res.objective = EvaluateObjective(inst, res.assignment);
  res.simulated_seconds = sim_seconds;
  return res;
}

Result<DgAreaResult> RunDecentralizedGameInArea(
    const Instance& inst, const std::vector<NodeId>& participants,
    const DecentralizedOptions& options) {
  if (participants.empty()) {
    return Status::InvalidArgument("no participants in the area of interest");
  }
  std::vector<NodeId> sorted = participants;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] >= inst.num_users()) {
      return Status::InvalidArgument("participant out of range");
    }
    if (i > 0 && sorted[i] == sorted[i - 1]) {
      return Status::InvalidArgument("duplicate participant");
    }
  }

  DgAreaResult out;
  out.participants = sorted;
  // Fig 6 lines 2-3 performed up-front: the induced sub-instance is what
  // the participating slaves actually play over.
  const Graph sub = InducedSubgraph(inst.graph(), sorted);
  auto costs = MakeSubsetCostProvider(&inst.costs(), sorted);
  auto sub_inst = Instance::Create(&sub, std::move(costs), inst.alpha());
  if (!sub_inst.ok()) return sub_inst.status();
  sub_inst->set_cost_scale(inst.cost_scale());

  DecentralizedOptions sub_options = options;
  if (options.solver.init == InitPolicy::kGiven) {
    if (Status s = ValidateAssignment(inst, options.solver.warm_start);
        !s.ok()) {
      return s;
    }
    sub_options.solver.warm_start.resize(sorted.size());
    for (size_t i = 0; i < sorted.size(); ++i) {
      sub_options.solver.warm_start[i] =
          options.solver.warm_start[sorted[i]];
    }
  }

  auto dg = RunDecentralizedGame(*sub_inst, sub_options);
  if (!dg.ok()) return dg.status();
  out.dg = std::move(dg).value();

  out.full_assignment.assign(inst.num_users(),
                             DgAreaResult::kNotParticipating);
  for (size_t i = 0; i < sorted.size(); ++i) {
    out.full_assignment[sorted[i]] = out.dg.assignment[i];
  }
  return out;
}

Result<FaeResult> RunFetchAndExecute(const Instance& inst,
                                     const DecentralizedOptions& options) {
  if (options.num_slaves == 0) {
    return Status::InvalidArgument("need at least one slave");
  }
  FaeResult res;
  // Transfer: every slave ships its adjacency rows (each undirected edge
  // travels once from the slave owning its lower endpoint) and its users'
  // check-in locations to the processing server.
  const uint64_t edge_bytes = inst.graph().num_edges() * wire::kPerEdge;
  const uint64_t loc_bytes =
      static_cast<uint64_t>(inst.num_users()) * wire::kPerLocation;
  res.traffic.Add(edge_bytes + loc_bytes, options.num_slaves);
  res.transfer_seconds = res.traffic.Seconds(options.network);

  auto solve = SolveAll(inst, options.solver);
  if (!solve.ok()) return solve.status();
  res.solve = std::move(solve).value();
  res.execute_seconds = res.solve.total_millis / 1e3;
  res.total_seconds = res.transfer_seconds + res.execute_seconds;
  res.assignment = res.solve.assignment;
  res.objective = res.solve.objective;
  return res;
}

}  // namespace rmgp
