#ifndef RMGP_DIST_SLAVE_GAME_H_
#define RMGP_DIST_SLAVE_GAME_H_

#include <cstdint>
#include <vector>

#include "core/instance.h"
#include "core/solver.h"
#include "graph/graph.h"
#include "util/status.h"

namespace rmgp {

/// How users are assigned to slaves. The paper calls the scheme
/// "orthogonal to our problem"; kLocality lets the ablation check that
/// claim (it only pays off combined with interest multicast).
enum class PartitionScheme {
  kHash,      ///< user v lives on slave v mod S (the default)
  kLocality,  ///< multilevel k-way partition: friends co-located
};

/// One strategy deviation shipped through the master (Fig 6). On the wire
/// only (user, new_class) travels — wire::kPerStrategyChange bytes — and
/// the receiver derives old_class from its own GSV entry, which is current
/// for every user it hosts a friend of (broadcast keeps all entries
/// current; multicast delivers *all* changes of a user to every slave
/// hosting one of its friends, because interest masks are static).
struct StrategyChange {
  NodeId user;
  ClassId old_class;
  ClassId new_class;
};

/// The per-slave state and per-color best-response steps of the
/// decentralized game (DG, Fig 6). This is the exact game logic shared by
/// the in-process simulation (dist/decentralized.cc) and the real
/// multi-process deployment (shard/worker.cc): a slave owns the adjacency
/// rows, check-in data and game state of its local users only; everything
/// it learns about remote users arrives as strategy changes through the
/// master.
class SlaveGame {
 public:
  /// `colors` is indexed by global user id; only local users' entries are
  /// read (a worker process ships local colors and zero-fills the rest).
  /// The instance must outlive the game.
  SlaveGame(const Instance& inst, std::vector<NodeId> local_users,
            std::vector<uint32_t> colors);

  /// Fig 6 steps 2-5: initialize local players' strategies. Returns the
  /// local strategic vector to send to the master.
  std::vector<StrategyChange> InitStrategies(const SolverOptions& options);

  /// Fig 6 steps 10-13: store the GSV and build the reduced global table.
  void BuildTables(const Assignment& gsv);

  /// Fig 6 steps 17-19: best responses of local unhappy users with the
  /// given color; changes are applied locally (own GSV + local friends'
  /// table rows) and returned for the master to redistribute.
  std::vector<StrategyChange> ComputeColor(uint32_t color);

  /// Fig 6 steps 22-24: apply changes made on other slaves (own changes
  /// are skipped).
  void ApplyRemoteChanges(const std::vector<StrategyChange>& changes);

  bool IsLocal(NodeId v) const { return local_index_[v] != UINT32_MAX; }
  const std::vector<NodeId>& local_users() const { return local_users_; }
  const Assignment& gsv() const { return gsv_; }

 private:
  size_t FindCandidate(uint32_t local_i, ClassId p) const;
  void UpdateLocalFriends(NodeId u, ClassId old_class, ClassId new_class);

  const Instance& inst_;
  std::vector<NodeId> local_users_;
  std::vector<uint32_t> colors_;             // |V|, local entries meaningful
  std::vector<uint32_t> local_index_;        // |V| -> local idx or UINT32_MAX
  std::vector<uint64_t> rev_offsets_;        // |V|+1
  std::vector<Neighbor> rev_entries_;        // local users adjacent to key
  std::vector<uint64_t> offsets_;            // reduced lists, local indexing
  std::vector<ClassId> candidates_;
  std::vector<double> values_;               // reduced global table
  std::vector<double> max_sc_;
  std::vector<uint32_t> cur_idx_;
  std::vector<char> happy_;
  std::vector<ClassId> init_strategy_;
  Assignment gsv_;
};

/// Placement of users onto slaves — shared by the simulation and the real
/// coordinator so both cut identical shards from identical inputs. kHash
/// places user v on slave v mod S; kLocality runs the mini-METIS k-way
/// partition (num_parts = S, imbalance 1.1, default seed).
Result<std::vector<std::vector<NodeId>>> PlaceUsers(const Graph& graph,
                                                    PartitionScheme scheme,
                                                    uint32_t num_slaves);

/// Interest masks for multicast redistribution: bit s of mask[v] is set
/// when slave s hosts at least one friend of v. Requires num_slaves <= 64.
std::vector<uint64_t> BuildInterestMasks(const Graph& graph,
                                         const std::vector<uint32_t>& slave_of);

}  // namespace rmgp

#endif  // RMGP_DIST_SLAVE_GAME_H_
