#ifndef RMGP_SPATIAL_POINT_H_
#define RMGP_SPATIAL_POINT_H_

#include <cmath>
#include <vector>

namespace rmgp {

/// A 2-D location (e.g., a user check-in or an event venue). Units are
/// whatever the dataset uses — kilometers for the Gowalla-like data, unit
/// space for normalized workloads; the normalization machinery of §3.3
/// exists precisely because RMGP must work for any unit.
struct Point {
  double x = 0.0;
  double y = 0.0;

  bool operator==(const Point&) const = default;
};

/// Euclidean distance between two points.
inline double Distance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// Squared Euclidean distance (cheaper comparator for nearest-neighbor).
inline double DistanceSquared(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Axis-aligned bounding box.
struct BoundingBox {
  Point min;
  Point max;

  bool Contains(const Point& p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }

  /// Grows the box to include p.
  void Extend(const Point& p) {
    if (p.x < min.x) min.x = p.x;
    if (p.y < min.y) min.y = p.y;
    if (p.x > max.x) max.x = p.x;
    if (p.y > max.y) max.y = p.y;
  }

  double width() const { return max.x - min.x; }
  double height() const { return max.y - min.y; }
};

/// Smallest box containing all of `points` (undefined for empty input).
BoundingBox ComputeBoundingBox(const std::vector<Point>& points);

}  // namespace rmgp

#endif  // RMGP_SPATIAL_POINT_H_
