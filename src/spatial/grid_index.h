#ifndef RMGP_SPATIAL_GRID_INDEX_H_
#define RMGP_SPATIAL_GRID_INDEX_H_

#include <cstdint>
#include <vector>

#include "spatial/point.h"
#include "util/status.h"

namespace rmgp {

/// Uniform-grid spatial index over a static set of points (the events of an
/// LAGP task). Supports nearest-neighbor and axis-aligned range queries.
/// Used for closest-event initialization and for restricting a game to an
/// area of interest (§5's decentralized scenario) without scanning all
/// events.
class GridIndex {
 public:
  /// Builds an index over `points` with roughly `cells_per_axis`² cells.
  /// `points` must be non-empty.
  explicit GridIndex(std::vector<Point> points, uint32_t cells_per_axis = 32);

  /// Index of the point nearest to `q` (ties broken by lower index).
  [[nodiscard]] uint32_t Nearest(const Point& q) const;

  /// Indices of all points inside `box`, ascending.
  std::vector<uint32_t> Range(const BoundingBox& box) const;

  /// Number of indexed points.
  size_t size() const { return points_.size(); }

  const std::vector<Point>& points() const { return points_; }

 private:
  uint32_t CellX(double x) const;
  uint32_t CellY(double y) const;
  const std::vector<uint32_t>& Cell(uint32_t cx, uint32_t cy) const {
    return cells_[static_cast<size_t>(cy) * nx_ + cx];
  }

  std::vector<Point> points_;
  BoundingBox box_;
  uint32_t nx_ = 1;
  uint32_t ny_ = 1;
  double cell_w_ = 1.0;
  double cell_h_ = 1.0;
  std::vector<std::vector<uint32_t>> cells_;
};

}  // namespace rmgp

#endif  // RMGP_SPATIAL_GRID_INDEX_H_
