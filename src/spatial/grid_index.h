#ifndef RMGP_SPATIAL_GRID_INDEX_H_
#define RMGP_SPATIAL_GRID_INDEX_H_

#include <cstdint>
#include <vector>

#include "spatial/point.h"
#include "util/status.h"

namespace rmgp {

/// Uniform-grid spatial index over a set of points (the events of an LAGP
/// task, or a session's user check-ins). Supports nearest-neighbor and
/// axis-aligned range queries, and can be *patched* in place when a churn
/// epoch moves, appends, or tombstones points — O(affected cells) instead
/// of an O(n) rebuild. The grid geometry is fixed at construction; points
/// drifting outside the original bounding box clamp into edge cells
/// (queries stay correct because real coordinates are always re-checked).
class GridIndex {
 public:
  /// Builds an index over `points` with roughly `cells_per_axis`² cells.
  /// `points` must be non-empty.
  explicit GridIndex(std::vector<Point> points, uint32_t cells_per_axis = 32);

  /// Index of the point nearest to `q` (ties broken by lower index).
  /// At least one point must be active.
  [[nodiscard]] uint32_t Nearest(const Point& q) const;

  /// Indices of all active points inside `box`, ascending.
  std::vector<uint32_t> Range(const BoundingBox& box) const;

  /// Moves active point i to `p` (a check-in): re-files it into the new
  /// cell.
  void Update(uint32_t i, const Point& p);

  /// Appends a new point and returns its index (= size()-1 after the
  /// call).
  uint32_t Append(const Point& p);

  /// Removes point i from the grid (a tombstoned user). Its slot — and
  /// id — survive for a later Reactivate; queries skip it.
  void Deactivate(uint32_t i);

  /// Re-inserts previously deactivated point i at location `p`.
  void Reactivate(uint32_t i, const Point& p);

  bool active(uint32_t i) const { return active_[i] != 0; }

  /// Number of point slots, active or not.
  size_t size() const { return points_.size(); }

  /// Patch operations applied since construction (Update/Append/
  /// Deactivate/Reactivate) — serving metrics proving the index is
  /// patched, not rebuilt.
  uint64_t patch_ops() const { return patch_ops_; }

  const std::vector<Point>& points() const { return points_; }

 private:
  std::vector<uint32_t>& MutableCellFor(const Point& p) {
    return cells_[static_cast<size_t>(CellY(p.y)) * nx_ + CellX(p.x)];
  }

  /// Erases i from the cell currently holding it.
  void Unfile(uint32_t i);

  uint32_t CellX(double x) const;
  uint32_t CellY(double y) const;
  const std::vector<uint32_t>& Cell(uint32_t cx, uint32_t cy) const {
    return cells_[static_cast<size_t>(cy) * nx_ + cx];
  }

  std::vector<Point> points_;
  std::vector<char> active_;  // 0 = deactivated (not filed in any cell)
  BoundingBox box_;
  uint32_t nx_ = 1;
  uint32_t ny_ = 1;
  double cell_w_ = 1.0;
  double cell_h_ = 1.0;
  uint64_t patch_ops_ = 0;
  std::vector<std::vector<uint32_t>> cells_;
};

}  // namespace rmgp

#endif  // RMGP_SPATIAL_GRID_INDEX_H_
