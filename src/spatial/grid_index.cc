#include "spatial/grid_index.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace rmgp {

GridIndex::GridIndex(std::vector<Point> points, uint32_t cells_per_axis)
    : points_(std::move(points)), active_(points_.size(), 1) {
  RMGP_CHECK(!points_.empty());
  box_ = ComputeBoundingBox(points_);
  nx_ = std::max<uint32_t>(1, cells_per_axis);
  ny_ = nx_;
  cell_w_ = std::max(box_.width() / nx_, 1e-12);
  cell_h_ = std::max(box_.height() / ny_, 1e-12);
  cells_.resize(static_cast<size_t>(nx_) * ny_);
  for (uint32_t i = 0; i < points_.size(); ++i) {
    cells_[static_cast<size_t>(CellY(points_[i].y)) * nx_ +
           CellX(points_[i].x)]
        .push_back(i);
  }
}

uint32_t GridIndex::CellX(double x) const {
  double t = (x - box_.min.x) / cell_w_;
  if (t < 0) t = 0;
  uint32_t c = static_cast<uint32_t>(t);
  return std::min(c, nx_ - 1);
}

uint32_t GridIndex::CellY(double y) const {
  double t = (y - box_.min.y) / cell_h_;
  if (t < 0) t = 0;
  uint32_t c = static_cast<uint32_t>(t);
  return std::min(c, ny_ - 1);
}

uint32_t GridIndex::Nearest(const Point& q) const {
  const uint32_t qx = CellX(q.x);
  const uint32_t qy = CellY(q.y);
  uint32_t best = UINT32_MAX;
  double best_d2 = std::numeric_limits<double>::infinity();

  // Expand ring by ring around the query cell; stop once the closest
  // possible point in the next ring cannot beat the current best.
  const uint32_t max_ring = std::max(nx_, ny_);
  for (uint32_t ring = 0; ring <= max_ring; ++ring) {
    if (best != UINT32_MAX) {
      // Minimum distance from q to the boundary of the ring-away cells.
      const double ring_dist =
          (ring > 0 ? (ring - 1) * std::min(cell_w_, cell_h_) : 0.0);
      if (ring_dist * ring_dist > best_d2) break;
    }
    const int64_t lo_x = static_cast<int64_t>(qx) - ring;
    const int64_t hi_x = static_cast<int64_t>(qx) + ring;
    const int64_t lo_y = static_cast<int64_t>(qy) - ring;
    const int64_t hi_y = static_cast<int64_t>(qy) + ring;
    for (int64_t cy = lo_y; cy <= hi_y; ++cy) {
      if (cy < 0 || cy >= ny_) continue;
      for (int64_t cx = lo_x; cx <= hi_x; ++cx) {
        if (cx < 0 || cx >= nx_) continue;
        // Only the ring boundary is new.
        if (ring > 0 && cx != lo_x && cx != hi_x && cy != lo_y && cy != hi_y) {
          continue;
        }
        for (uint32_t idx :
             Cell(static_cast<uint32_t>(cx), static_cast<uint32_t>(cy))) {
          const double d2 = DistanceSquared(q, points_[idx]);
          if (d2 < best_d2 || (d2 == best_d2 && idx < best)) {
            best_d2 = d2;
            best = idx;
          }
        }
      }
    }
  }
  RMGP_CHECK_NE(best, UINT32_MAX);
  return best;
}

void GridIndex::Unfile(uint32_t i) {
  std::vector<uint32_t>& cell = MutableCellFor(points_[i]);
  const auto it = std::find(cell.begin(), cell.end(), i);
  RMGP_CHECK(it != cell.end());
  cell.erase(it);
}

void GridIndex::Update(uint32_t i, const Point& p) {
  RMGP_CHECK_LT(i, points_.size());
  RMGP_CHECK(active_[i]);
  Unfile(i);
  points_[i] = p;
  MutableCellFor(p).push_back(i);
  ++patch_ops_;
}

uint32_t GridIndex::Append(const Point& p) {
  const uint32_t i = static_cast<uint32_t>(points_.size());
  points_.push_back(p);
  active_.push_back(1);
  MutableCellFor(p).push_back(i);
  ++patch_ops_;
  return i;
}

void GridIndex::Deactivate(uint32_t i) {
  RMGP_CHECK_LT(i, points_.size());
  RMGP_CHECK(active_[i]);
  Unfile(i);
  active_[i] = 0;
  ++patch_ops_;
}

void GridIndex::Reactivate(uint32_t i, const Point& p) {
  RMGP_CHECK_LT(i, points_.size());
  RMGP_CHECK(!active_[i]);
  points_[i] = p;
  active_[i] = 1;
  MutableCellFor(p).push_back(i);
  ++patch_ops_;
}

std::vector<uint32_t> GridIndex::Range(const BoundingBox& box) const {
  std::vector<uint32_t> out;
  const uint32_t lo_x = CellX(box.min.x);
  const uint32_t hi_x = CellX(box.max.x);
  const uint32_t lo_y = CellY(box.min.y);
  const uint32_t hi_y = CellY(box.max.y);
  for (uint32_t cy = lo_y; cy <= hi_y; ++cy) {
    for (uint32_t cx = lo_x; cx <= hi_x; ++cx) {
      for (uint32_t idx : Cell(cx, cy)) {
        if (box.Contains(points_[idx])) out.push_back(idx);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace rmgp
