#include "spatial/point.h"

#include "util/logging.h"

namespace rmgp {

BoundingBox ComputeBoundingBox(const std::vector<Point>& points) {
  RMGP_CHECK(!points.empty());
  BoundingBox box{points[0], points[0]};
  for (const Point& p : points) box.Extend(p);
  return box;
}

}  // namespace rmgp
