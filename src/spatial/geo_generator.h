#ifndef RMGP_SPATIAL_GEO_GENERATOR_H_
#define RMGP_SPATIAL_GEO_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "spatial/point.h"
#include "util/rng.h"

namespace rmgp {

/// One Gaussian population cluster (a "metro area"): check-ins concentrate
/// around `center` with isotropic standard deviation `stddev`; `weight` is
/// the relative share of users drawn from it.
struct GeoCluster {
  Point center;
  double stddev = 1.0;
  double weight = 1.0;
};

/// Gaussian-mixture generator for geo-social check-in locations. The
/// Gowalla-like dataset uses two clusters ~300 km apart (Dallas & Austin);
/// the Foursquare-like dataset uses many clusters.
class GeoGenerator {
 public:
  /// `clusters` must be non-empty with positive weights.
  GeoGenerator(std::vector<GeoCluster> clusters, uint64_t seed);

  /// Draws one check-in location.
  Point Sample();

  /// Draws `n` check-in locations.
  std::vector<Point> SampleMany(size_t n);

  /// Draws a point near a cluster center (stddev scaled by
  /// `center_concentration` < 1), modeling event venues that sit in town
  /// centers rather than suburbs.
  Point SampleNearCenter(double center_concentration = 0.3);

  /// Draws `n` venue locations via SampleNearCenter.
  std::vector<Point> SampleVenues(size_t n, double center_concentration = 0.3);

 private:
  size_t PickCluster();

  std::vector<GeoCluster> clusters_;
  std::vector<double> cum_weight_;
  Rng rng_;
};

}  // namespace rmgp

#endif  // RMGP_SPATIAL_GEO_GENERATOR_H_
