#include "spatial/estimators.h"

#include <algorithm>

#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"

namespace rmgp {

DistanceEstimates EstimateDistances(const std::vector<Point>& users,
                                    const std::vector<Point>& events,
                                    uint32_t max_sampled_users,
                                    uint64_t seed) {
  RMGP_CHECK(!users.empty());
  RMGP_CHECK(!events.empty());

  std::vector<uint32_t> sample;
  if (users.size() > max_sampled_users) {
    Rng rng(seed);
    sample = rng.SampleWithoutReplacement(
        static_cast<uint32_t>(users.size()), max_sampled_users);
  } else {
    sample.resize(users.size());
    for (uint32_t i = 0; i < users.size(); ++i) sample[i] = i;
  }

  RunningStats min_stats, med_stats;
  std::vector<double> dists(events.size());
  for (uint32_t ui : sample) {
    for (size_t j = 0; j < events.size(); ++j) {
      dists[j] = Distance(users[ui], events[j]);
    }
    min_stats.Add(*std::min_element(dists.begin(), dists.end()));
    med_stats.Add(Median(dists));
  }
  return {min_stats.mean(), med_stats.mean()};
}

}  // namespace rmgp
