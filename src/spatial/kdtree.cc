#include "spatial/kdtree.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/logging.h"

namespace rmgp {
namespace {

double Coord(const Point& p, uint8_t axis) { return axis == 0 ? p.x : p.y; }

}  // namespace

KdTree::KdTree(std::vector<Point> points) : points_(std::move(points)) {
  RMGP_CHECK(!points_.empty());
  nodes_.reserve(points_.size());
  std::vector<uint32_t> indices(points_.size());
  std::iota(indices.begin(), indices.end(), 0);
  root_ = BuildRecursive(indices.data(), indices.data() + indices.size(), 0);
}

uint32_t KdTree::BuildRecursive(uint32_t* begin, uint32_t* end, int depth) {
  if (begin == end) return UINT32_MAX;
  const uint8_t axis = static_cast<uint8_t>(depth % 2);
  uint32_t* mid = begin + (end - begin) / 2;
  std::nth_element(begin, mid, end, [&](uint32_t a, uint32_t b) {
    const double ca = Coord(points_[a], axis);
    const double cb = Coord(points_[b], axis);
    return ca != cb ? ca < cb : a < b;
  });
  const uint32_t node_index = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back({*mid, UINT32_MAX, UINT32_MAX, axis});
  const uint32_t left = BuildRecursive(begin, mid, depth + 1);
  const uint32_t right = BuildRecursive(mid + 1, end, depth + 1);
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

void KdTree::NearestRecursive(uint32_t node, const Point& q, uint32_t* best,
                              double* best_d2) const {
  if (node == UINT32_MAX) return;
  const Node& n = nodes_[node];
  const Point& p = points_[n.point_index];
  const double d2 = DistanceSquared(q, p);
  if (d2 < *best_d2 || (d2 == *best_d2 && n.point_index < *best)) {
    *best_d2 = d2;
    *best = n.point_index;
  }
  const double diff = Coord(q, n.axis) - Coord(p, n.axis);
  const uint32_t near_child = diff <= 0 ? n.left : n.right;
  const uint32_t far_child = diff <= 0 ? n.right : n.left;
  NearestRecursive(near_child, q, best, best_d2);
  if (diff * diff <= *best_d2) {
    NearestRecursive(far_child, q, best, best_d2);
  }
}

uint32_t KdTree::Nearest(const Point& q) const {
  uint32_t best = UINT32_MAX;
  double best_d2 = std::numeric_limits<double>::infinity();
  NearestRecursive(root_, q, &best, &best_d2);
  return best;
}

void KdTree::KNearestRecursive(
    uint32_t node, const Point& q, uint32_t count,
    std::vector<std::pair<double, uint32_t>>* heap) const {
  if (node == UINT32_MAX) return;
  const Node& n = nodes_[node];
  const Point& p = points_[n.point_index];
  const double d2 = DistanceSquared(q, p);
  if (heap->size() < count) {
    heap->push_back({d2, n.point_index});
    std::push_heap(heap->begin(), heap->end());
  } else if (d2 < heap->front().first) {
    std::pop_heap(heap->begin(), heap->end());
    heap->back() = {d2, n.point_index};
    std::push_heap(heap->begin(), heap->end());
  }
  const double diff = Coord(q, n.axis) - Coord(p, n.axis);
  const uint32_t near_child = diff <= 0 ? n.left : n.right;
  const uint32_t far_child = diff <= 0 ? n.right : n.left;
  KNearestRecursive(near_child, q, count, heap);
  if (heap->size() < count || diff * diff <= heap->front().first) {
    KNearestRecursive(far_child, q, count, heap);
  }
}

std::vector<uint32_t> KdTree::KNearest(const Point& q,
                                       uint32_t count) const {
  count = std::min<uint32_t>(count, static_cast<uint32_t>(points_.size()));
  std::vector<std::pair<double, uint32_t>> heap;
  heap.reserve(count);
  KNearestRecursive(root_, q, count, &heap);
  std::sort_heap(heap.begin(), heap.end());
  std::vector<uint32_t> out;
  out.reserve(heap.size());
  for (const auto& [d2, idx] : heap) {
    (void)d2;
    out.push_back(idx);
  }
  return out;
}

}  // namespace rmgp
