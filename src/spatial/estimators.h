#ifndef RMGP_SPATIAL_ESTIMATORS_H_
#define RMGP_SPATIAL_ESTIMATORS_H_

#include <cstdint>
#include <vector>

#include "spatial/point.h"

namespace rmgp {

/// Estimates of the distance statistics the normalization constants of
/// §3.3 need: dist_min (average over users of the minimum user-event
/// distance) and dist_med (average over users of the median user-event
/// distance).
struct DistanceEstimates {
  double dist_min = 0.0;
  double dist_med = 0.0;
};

/// Computes dist_min / dist_med over `users` × `events`.
/// When users.size() > max_sampled_users, a deterministic sample of
/// `max_sampled_users` users (seeded by `seed`) stands in for the full set —
/// the paper computes these "at an initialization phase" or via cost models;
/// sampling keeps that phase cheap on the Foursquare scale.
DistanceEstimates EstimateDistances(const std::vector<Point>& users,
                                    const std::vector<Point>& events,
                                    uint32_t max_sampled_users = 2000,
                                    uint64_t seed = 7);

}  // namespace rmgp

#endif  // RMGP_SPATIAL_ESTIMATORS_H_
