#ifndef RMGP_SPATIAL_KDTREE_H_
#define RMGP_SPATIAL_KDTREE_H_

#include <cstdint>
#include <vector>

#include "spatial/point.h"

namespace rmgp {

/// Static 2-D k-d tree over a point set. Alternative to GridIndex for
/// nearest-neighbor queries when the event distribution is highly skewed
/// (grids degrade when most points share a cell). Build O(n log n),
/// query O(log n) expected.
class KdTree {
 public:
  /// Builds the tree; `points` must be non-empty.
  explicit KdTree(std::vector<Point> points);

  /// Index of the point nearest to `q` (ties broken by lower index).
  [[nodiscard]] uint32_t Nearest(const Point& q) const;

  /// Indices of the `count` points nearest to `q`, closest first
  /// (count clamped to size()).
  [[nodiscard]] std::vector<uint32_t> KNearest(const Point& q,
                                               uint32_t count) const;

  size_t size() const { return points_.size(); }
  const std::vector<Point>& points() const { return points_; }

 private:
  struct Node {
    uint32_t point_index;  // index into points_
    uint32_t left = UINT32_MAX;
    uint32_t right = UINT32_MAX;
    uint8_t axis = 0;  // 0 = x, 1 = y
  };

  uint32_t BuildRecursive(uint32_t* begin, uint32_t* end, int depth);
  void NearestRecursive(uint32_t node, const Point& q, uint32_t* best,
                        double* best_d2) const;
  void KNearestRecursive(uint32_t node, const Point& q, uint32_t count,
                         std::vector<std::pair<double, uint32_t>>* heap)
      const;

  std::vector<Point> points_;
  std::vector<Node> nodes_;
  uint32_t root_ = UINT32_MAX;
};

}  // namespace rmgp

#endif  // RMGP_SPATIAL_KDTREE_H_
