#include "spatial/geo_generator.h"

#include <algorithm>

#include "util/logging.h"

namespace rmgp {

GeoGenerator::GeoGenerator(std::vector<GeoCluster> clusters, uint64_t seed)
    : clusters_(std::move(clusters)), rng_(seed) {
  RMGP_CHECK(!clusters_.empty());
  double total = 0.0;
  cum_weight_.reserve(clusters_.size());
  for (const GeoCluster& c : clusters_) {
    RMGP_CHECK_GT(c.weight, 0.0);
    total += c.weight;
    cum_weight_.push_back(total);
  }
  for (double& w : cum_weight_) w /= total;
}

size_t GeoGenerator::PickCluster() {
  const double u = rng_.UniformDouble();
  auto it = std::upper_bound(cum_weight_.begin(), cum_weight_.end(), u);
  size_t idx = static_cast<size_t>(it - cum_weight_.begin());
  return std::min(idx, clusters_.size() - 1);
}

Point GeoGenerator::Sample() {
  const GeoCluster& c = clusters_[PickCluster()];
  return {rng_.Gaussian(c.center.x, c.stddev),
          rng_.Gaussian(c.center.y, c.stddev)};
}

std::vector<Point> GeoGenerator::SampleMany(size_t n) {
  std::vector<Point> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(Sample());
  return out;
}

Point GeoGenerator::SampleNearCenter(double center_concentration) {
  const GeoCluster& c = clusters_[PickCluster()];
  const double s = c.stddev * center_concentration;
  return {rng_.Gaussian(c.center.x, s), rng_.Gaussian(c.center.y, s)};
}

std::vector<Point> GeoGenerator::SampleVenues(size_t n,
                                              double center_concentration) {
  std::vector<Point> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(SampleNearCenter(center_concentration));
  }
  return out;
}

}  // namespace rmgp
