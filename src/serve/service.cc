#include "serve/service.h"

#include <algorithm>
#include <utility>

#include "core/cost_provider.h"
#include "core/instance.h"
#include "core/portfolio.h"
#include "util/dcheck.h"

namespace rmgp {
namespace serve {
namespace {

double MillisBetween(std::chrono::steady_clock::time_point from,
                     std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// Solver name -> SolverKind for the portfolio path. RMGP_pq is absent
/// from SolverKind (it is an ablation outside the Solve() dispatch), so a
/// portfolio query naming it is rejected rather than silently remapped.
Result<SolverKind> SolverKindFromName(const std::string& name) {
  if (name == "RMGP_b") return SolverKind::kBaseline;
  if (name == "RMGP_se") return SolverKind::kStrategyElimination;
  if (name == "RMGP_is") return SolverKind::kIndependentSets;
  if (name == "RMGP_gt") return SolverKind::kGlobalTable;
  if (name == "RMGP_all") return SolverKind::kAll;
  if (name == "RMGP_pq") {
    return Status::InvalidArgument("portfolio does not support RMGP_pq");
  }
  return Status::InvalidArgument("unknown solver: " + name);
}

std::shared_ptr<const SessionSnapshot> MakeSeedSnapshot(
    Graph graph, std::vector<Point> user_locations) {
  auto snap = std::make_shared<SessionSnapshot>();
  snap->graph = std::make_shared<const Graph>(std::move(graph));
  snap->users = std::move(user_locations);
  snap->active.assign(snap->graph->num_nodes(), 1);
  snap->version = 0;
  return snap;
}

}  // namespace

const char* CacheOutcomeName(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kDisabled: return "disabled";
    case CacheOutcome::kMiss: return "miss";
    case CacheOutcome::kExactHit: return "exact_hit";
    case CacheOutcome::kWarmHit: return "warm_hit";
  }
  return "unknown";
}

RmgpService::RmgpService(Graph graph, std::vector<Point> user_locations,
                         const ServiceConfig& config)
    : config_(config),
      snapshot_(MakeSeedSnapshot(std::move(graph), std::move(user_locations))),
      log_(snapshot_),
      cache_(EquilibriumCache::Config{config.cache_capacity,
                                      config.max_warm_edits}) {
  RMGP_DCHECK(snapshot_->users.size() == snapshot_->graph->num_nodes())
      << "user_locations size must match the graph";
  if (!snapshot_->users.empty()) {
    user_index_ = std::make_unique<GridIndex>(snapshot_->users);
  }
  if (config_.dist_workers > 0) {
    shard::CoordinatorConfig dist;
    dist.partition = config_.dist_partition;
    dist.interest_multicast = config_.dist_multicast;
    dist.io_timeout_ms = config_.dist_timeout_ms;
    coordinator_ = std::make_unique<shard::ShardCoordinator>(dist);
    if (Status st = coordinator_->Listen(config_.dist_port); !st.ok()) {
      RMGP_LOG(kError) << "dist coordinator bind failed: " << st.ToString();
      coordinator_.reset();  // dist queries will fail; local serving works
    }
  }
  pool_ = std::make_unique<ThreadPool>(
      std::max<uint32_t>(1, config_.num_workers));
}

RmgpService::~RmgpService() {
  pool_.reset();  // drain in-flight queries before touching the fleet
  if (coordinator_ != nullptr) {
    RMGP_IGNORE_STATUS(coordinator_->Shutdown());
  }
}

SolverOptions RmgpService::MakeSolverOptions(const Query& query,
                                             uint32_t solver_threads) {
  SolverOptions options;
  // Deterministic serving defaults: closest-class init and node-id order
  // make a query's result a pure function of (session state, query), so
  // cache hits and fresh solves are comparable and tests can replay
  // served queries offline.
  options.init = InitPolicy::kClosestClass;
  options.order = OrderPolicy::kNodeId;
  options.seed = query.seed;
  options.num_threads = std::max<uint32_t>(1, solver_threads);
  options.record_rounds = false;
  return options;
}

Result<SolveResult> RmgpService::RunSolver(const std::string& name,
                                           const Instance& inst,
                                           const SolverOptions& options) {
  if (name == "RMGP_b") return SolveBaseline(inst, options);
  if (name == "RMGP_se") return SolveStrategyElimination(inst, options);
  if (name == "RMGP_is") return SolveIndependentSets(inst, options);
  if (name == "RMGP_gt") return SolveGlobalTable(inst, options);
  if (name == "RMGP_all") return SolveAll(inst, options);
  if (name == "RMGP_pq") return SolveBestImprovement(inst, options);
  return Status::InvalidArgument("unknown solver: " + name);
}

Status RmgpService::Submit(Query query, Callback done) {
  metrics_.Counter("solve.requests").fetch_add(1, std::memory_order_relaxed);
  if (!admitting_.load(std::memory_order_acquire)) {
    metrics_.Counter("solve.rejected").fetch_add(1,
                                                 std::memory_order_relaxed);
    return Status::Unavailable("server is draining");
  }
  // Admission control: claim a queue token before enqueueing; give it
  // back and reject synchronously when the queue (queued + running) is
  // full. The callback never runs for a rejected query.
  const size_t occupied = in_flight_.fetch_add(1, std::memory_order_acq_rel);
  if (occupied >= config_.queue_capacity) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    metrics_.Counter("solve.rejected").fetch_add(1,
                                                 std::memory_order_relaxed);
    return Status::FailedPrecondition("request queue full");
  }
  metrics_.Gauge("queue.depth")
      .store(static_cast<int64_t>(occupied + 1), std::memory_order_relaxed);

  const auto submit_time = std::chrono::steady_clock::now();
  pool_->Submit([this, query = std::move(query), done = std::move(done),
                 submit_time]() mutable {
    Result<QueryResult> result = Execute(query, submit_time);
    if (!result.ok()) {
      metrics_.Counter("solve.errors").fetch_add(1,
                                                 std::memory_order_relaxed);
      if (done) done(result.status(), QueryResult{});
    } else {
      if (done) done(Status::OK(), result.value());
    }
    // Release the queue token only after the callback: Drain() promises
    // that every admitted query's callback has finished when it returns.
    const size_t remaining =
        in_flight_.fetch_sub(1, std::memory_order_acq_rel) - 1;
    metrics_.Gauge("queue.depth")
        .store(static_cast<int64_t>(remaining), std::memory_order_relaxed);
    if (remaining == 0) {
      // Notify under the lock so a drainer between its predicate check
      // and wait cannot miss the signal.
      util::MutexLock drain_lock(drain_mu_);
      drain_cv_.NotifyAll();
    }
  });
  return Status::OK();
}

Result<QueryResult> RmgpService::Solve(const Query& query) {
  metrics_.Counter("solve.requests").fetch_add(1, std::memory_order_relaxed);
  Result<QueryResult> result = Execute(query, std::chrono::steady_clock::now());
  if (!result.ok()) {
    metrics_.Counter("solve.errors").fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

Result<QueryResult> RmgpService::Execute(
    const Query& query, std::chrono::steady_clock::time_point submit_time) {
  const auto start = std::chrono::steady_clock::now();
  if (query.events.empty()) {
    return Status::InvalidArgument("query carries no events");
  }

  QueryResult out;
  out.queue_ms = MillisBetween(submit_time, start);

  // Pin the session snapshot: the query runs against this immutable
  // version even if an epoch commits mid-solve (the shared_ptr keeps the
  // old graph and locations alive — no copy).
  std::shared_ptr<const SessionSnapshot> snap;
  {
    util::ReaderMutexLock lock(session_mu_);
    snap = snapshot_;
  }
  out.session_version = snap->version;

  if (query.dist) {
    return ExecuteDist(query, snap, std::move(out));
  }

  auto costs =
      std::make_shared<EuclideanCostProvider>(snap->users, query.events);
  Result<Instance> inst_or =
      Instance::Create(snap->graph.get(), std::move(costs), query.alpha);
  if (!inst_or.ok()) return inst_or.status();
  Instance inst = std::move(inst_or).value();
  inst.set_cost_scale(query.cost_scale);

  // Portfolio races bypass the cache (see Query::portfolio): hits would
  // return a single-start equilibrium under a best-of-P label.
  const bool cache_enabled =
      query.use_cache && !query.portfolio && config_.cache_capacity > 0;
  out.cache = cache_enabled ? CacheOutcome::kMiss : CacheOutcome::kDisabled;
  bool solved = false;
  if (cache_enabled) {
    std::optional<EquilibriumCache::Hit> hit = cache_.Lookup(
        out.session_version, query.events, query.alpha, query.cost_scale);
    if (hit.has_value()) {
      out.assignment = std::move(hit->assignment);
      // Recompute through the same EvaluateObjective a fresh solve ends
      // with (FinalizeResult), so a hit's objective is bit-comparable.
      out.objective = EvaluateObjective(inst, out.assignment);
      out.potential =
          out.objective.assignment + 0.5 * out.objective.social;
      out.converged = true;
      out.cache =
          hit->warm ? CacheOutcome::kWarmHit : CacheOutcome::kExactHit;
      solved = true;
    }
  }

  if (!solved) {
    SolverOptions options =
        MakeSolverOptions(query, config_.solver_threads);
    if (query.deadline_ms > 0.0) {
      options.deadline =
          submit_time + std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double, std::milli>(
                                query.deadline_ms));
    }
    Result<SolveResult> res_or = Status::Internal("unreachable");
    if (query.portfolio) {
      Result<SolverKind> kind = SolverKindFromName(query.solver);
      if (!kind.ok()) return kind.status();
      PortfolioOptions popt;
      popt.kind = kind.value();
      popt.num_instances = std::max<uint32_t>(1, config_.portfolio_width);
      popt.solver = options;
      Result<PortfolioResult> race_or = SolvePortfolio(inst, popt);
      if (!race_or.ok()) return race_or.status();
      out.portfolio_width = popt.num_instances;
      out.portfolio_winner = static_cast<uint32_t>(race_or->winner);
      metrics_.Counter("solve.portfolio")
          .fetch_add(1, std::memory_order_relaxed);
      res_or = std::move(race_or->best);
    } else {
      res_or = RunSolver(query.solver, inst, options);
    }
    if (!res_or.ok()) return res_or.status();
    SolveResult res = std::move(res_or).value();
    out.converged = res.converged;
    out.timed_out = res.timed_out;
    out.rounds = res.rounds;
    out.objective = res.objective;
    out.potential = res.potential;
    if (cache_enabled && res.converged && !res.timed_out) {
      // Insert under the query's own snapshot: if an epoch committed while
      // we solved, the entry is self-consistent but stale and dies at the
      // next lookup.
      cache_.Insert(out.session_version, snap->graph, snap->users,
                    query.events, query.alpha, query.cost_scale,
                    res.assignment);
    }
    out.assignment = std::move(res.assignment);
  }

  // Realized optimality gap: served objective over the assignment-cost
  // floor. O(n·k), the same order as one table build — cheap next to the
  // solve, and it makes quality regressions visible per query instead of
  // only in offline EmpiricalPoA sweeps.
  const double floor = ObjectiveLowerBound(inst);
  out.realized_gap = floor > 0.0 ? out.objective.total / floor : 0.0;

  const auto end = std::chrono::steady_clock::now();
  out.solve_ms = MillisBetween(start, end);
  out.total_ms = MillisBetween(submit_time, end);

  metrics_.Counter("solve.completed").fetch_add(1, std::memory_order_relaxed);
  if (out.timed_out) {
    metrics_.Counter("solve.timed_out").fetch_add(1,
                                                  std::memory_order_relaxed);
  }
  switch (out.cache) {
    case CacheOutcome::kExactHit:
      metrics_.Counter("cache.exact_hits")
          .fetch_add(1, std::memory_order_relaxed);
      break;
    case CacheOutcome::kWarmHit:
      metrics_.Counter("cache.warm_hits")
          .fetch_add(1, std::memory_order_relaxed);
      break;
    case CacheOutcome::kMiss:
      metrics_.Counter("cache.misses").fetch_add(1,
                                                 std::memory_order_relaxed);
      break;
    case CacheOutcome::kDisabled:
      break;
  }
  metrics_.Histogram("solve.queue_ms").Record(out.queue_ms);
  metrics_.Histogram("solve.solve_ms").Record(out.solve_ms);
  metrics_.Histogram("solve.total_ms").Record(out.total_ms);
  if (out.realized_gap > 0.0) {
    metrics_.Histogram("solve.realized_gap").Record(out.realized_gap);
  }

  if (!query.return_assignment) {
    out.assignment.clear();
    out.assignment.shrink_to_fit();
  }
  return out;
}

Result<QueryResult> RmgpService::ExecuteDist(
    const Query& query, const std::shared_ptr<const SessionSnapshot>& snap,
    QueryResult out) {
  const auto start = std::chrono::steady_clock::now();
  // The coordinator is a single state machine over N sockets; queries take
  // their turn. Parallel dist queries would interleave frames of different
  // rounds on the same connections.
  util::MutexLock lock(dist_mu_);
  if (coordinator_ == nullptr) {
    return Status::FailedPrecondition(
        "dist query but the service has no worker fleet (dist_workers=0)");
  }
  if (!dist_session_shipped_ || dist_version_shipped_ != snap->version) {
    RMGP_RETURN_IF_ERROR(
        coordinator_->LoadSession(snap->graph, snap->users, snap->version));
    dist_session_shipped_ = true;
    dist_version_shipped_ = snap->version;
    metrics_.Counter("dist.sessions_shipped")
        .fetch_add(1, std::memory_order_relaxed);
  }

  SolverOptions options = MakeSolverOptions(query, config_.solver_threads);
  Result<DgResult> res_or = coordinator_->Solve(query.events, query.alpha,
                                                query.cost_scale, options);
  if (!res_or.ok()) {
    metrics_.Counter("dist.errors").fetch_add(1, std::memory_order_relaxed);
    return res_or.status();
  }
  DgResult res = std::move(res_or).value();

  // The dist path bypasses the equilibrium cache: its result is already
  // bit-identical to the in-process coloring-synchronous game, but the
  // fleet owns the authoritative state and re-running is the cheap case.
  out.cache = CacheOutcome::kDisabled;
  out.converged = res.converged;
  out.rounds = res.rounds;
  out.objective = res.objective;
  out.potential = out.objective.assignment + 0.5 * out.objective.social;
  out.assignment = std::move(res.assignment);
  out.dist_workers = coordinator_->live_workers();
  out.dist_bytes = res.traffic.bytes;
  out.dist_messages = res.traffic.messages;
  out.dist_recoveries = coordinator_->recovery_stats().recoveries;

  // Same counters the simulation's accounting feeds in rmgp_loadgen:
  // measured transport and modeled transport are directly comparable.
  RecordTraffic(metrics_, "dist", res.traffic);
  metrics_.Counter("dist.queries").fetch_add(1, std::memory_order_relaxed);
  metrics_.Gauge("dist.live_workers")
      .store(out.dist_workers, std::memory_order_relaxed);
  metrics_.Gauge("dist.recoveries")
      .store(static_cast<int64_t>(out.dist_recoveries),
             std::memory_order_relaxed);
  for (const DgRoundStats& rs : res.round_stats) {
    metrics_.Histogram("dist.round_ms").Record(rs.seconds * 1e3);
    metrics_.Histogram("dist.round_bytes")
        .Record(static_cast<double>(rs.bytes));
  }

  const auto end = std::chrono::steady_clock::now();
  out.solve_ms = MillisBetween(start, end);
  out.total_ms = out.queue_ms + out.solve_ms;
  metrics_.Counter("solve.completed").fetch_add(1, std::memory_order_relaxed);
  metrics_.Histogram("solve.queue_ms").Record(out.queue_ms);
  metrics_.Histogram("solve.solve_ms").Record(out.solve_ms);
  metrics_.Histogram("solve.total_ms").Record(out.total_ms);

  if (!query.return_assignment) {
    out.assignment.clear();
    out.assignment.shrink_to_fit();
  }
  return out;
}

uint16_t RmgpService::dist_port() const {
  // Lock even for this read: the coordinator mutates its socket state
  // under dist_mu_, and reading port() against a concurrent LoadSession
  // was a (benign-looking) race TSan could trip on.
  util::MutexLock lock(dist_mu_);
  return coordinator_ == nullptr ? 0 : coordinator_->port();
}

Status RmgpService::WaitForDistWorkers(int timeout_ms) {
  util::MutexLock lock(dist_mu_);
  if (coordinator_ == nullptr) {
    return Status::FailedPrecondition("service has no dist coordinator");
  }
  return coordinator_->AwaitWorkers(config_.dist_workers, timeout_ms);
}

void RmgpService::StopAdmitting() {
  admitting_.store(false, std::memory_order_release);
}

void RmgpService::Drain() {
  util::MutexLock lock(drain_mu_);
  while (in_flight_.load(std::memory_order_acquire) != 0) {
    drain_cv_.Wait(drain_mu_);
  }
}

Result<MutationAck> RmgpService::Mutate(const Mutation& mutation) {
  metrics_.Counter("mutate.requests").fetch_add(1, std::memory_order_relaxed);
  util::WriterMutexLock lock(session_mu_);
  Result<NodeId> id_or = log_.Append(mutation);
  if (!id_or.ok()) {
    metrics_.Counter("mutate.rejected").fetch_add(1,
                                                  std::memory_order_relaxed);
    return id_or.status();
  }
  metrics_.Counter("mutate.accepted").fetch_add(1, std::memory_order_relaxed);

  MutationAck ack;
  ack.user = id_or.value();
  ack.pending = log_.pending_ops();
  ack.version = snapshot_->version;
  if (config_.epoch_size > 0 && log_.pending_ops() >= config_.epoch_size) {
    const EpochResult epoch = CommitEpochLocked();
    ack.committed = true;
    ack.pending = 0;
    ack.version = epoch.version;
  }
  return ack;
}

Result<EpochResult> RmgpService::CommitEpoch() {
  util::WriterMutexLock lock(session_mu_);
  return CommitEpochLocked();
}

EpochResult RmgpService::CommitEpochLocked() {
  const auto start = std::chrono::steady_clock::now();
  EpochResult out;
  out.version = snapshot_->version;

  std::optional<MutationLog::Epoch> epoch = log_.Commit();
  if (!epoch.has_value()) {
    // Pending edits netted to zero: same state, same version — cached
    // equilibria stay exactly valid, so nothing moves.
    metrics_.Counter("epoch.clean").fetch_add(1, std::memory_order_relaxed);
    out.commit_ms = MillisBetween(start, std::chrono::steady_clock::now());
    return out;
  }

  const std::shared_ptr<const SessionSnapshot>& next = epoch->next;

  // Patch the spatial index in place rather than rebuilding it: O(epoch)
  // instead of O(|V|).
  if (user_index_ == nullptr) {
    if (!next->users.empty()) {
      user_index_ = std::make_unique<GridIndex>(next->users);
      for (NodeId v = 0; v < next->active.size(); ++v) {
        if (!next->active[v]) user_index_->Deactivate(v);
      }
    }
  } else {
    for (const NodeId v : epoch->deactivated) {
      user_index_->Deactivate(v);
    }
    for (const auto& [v, p] : epoch->reactivated) {
      user_index_->Reactivate(v, p);
    }
    // moved ⊇ reactivated, both sorted by id: skip the ids Reactivate
    // already filed at their new location.
    size_t r = 0;
    for (const auto& [v, p] : epoch->moved) {
      if (r < epoch->reactivated.size() &&
          epoch->reactivated[r].first == v) {
        ++r;
        continue;
      }
      user_index_->Update(v, p);
    }
    for (const Point& p : epoch->appended) {
      user_index_->Append(p);
    }
    metrics_.Gauge("index.patch_ops")
        .store(static_cast<int64_t>(user_index_->patch_ops()),
               std::memory_order_relaxed);
  }

  snapshot_ = next;
  out.committed = true;
  out.version = next->version;
  out.touched = epoch->touched.size();
  out.moved = epoch->moved.size();
  out.appended = epoch->appended.size();

  // Carry cached equilibria across the version bump. Past the budget the
  // per-entry ApplyEpoch cost stops beating a cold rebuild, so fall back
  // to wholesale invalidation.
  if (epoch->touched.size() + epoch->moved.size() >
      config_.epoch_patch_budget) {
    cache_.Clear();
    out.cache_cleared = true;
  } else {
    DynamicGame::GraphEpochUpdate update;
    update.graph = next->graph;
    update.moved = epoch->moved;
    update.appended = epoch->appended;
    update.touched = epoch->touched;
    const EquilibriumCache::PatchResult patched =
        cache_.PatchEpoch(next->version, update);
    out.cache_patched = patched.patched;
    out.cache_dropped = patched.dropped;
  }

  metrics_.Counter("epoch.commits").fetch_add(1, std::memory_order_relaxed);
  metrics_.Counter("epoch.touched")
      .fetch_add(epoch->touched.size(), std::memory_order_relaxed);
  out.commit_ms = MillisBetween(start, std::chrono::steady_clock::now());
  metrics_.Histogram("epoch.commit_ms").Record(out.commit_ms);
  return out;
}

Status RmgpService::UpdateUserLocation(NodeId v, const Point& location) {
  metrics_.Counter("update_user.requests")
      .fetch_add(1, std::memory_order_relaxed);
  Mutation m;
  m.kind = MutationKind::kMoveUser;
  m.user = v;
  m.location = location;
  util::WriterMutexLock lock(session_mu_);
  Result<NodeId> id_or = log_.Append(m);
  if (!id_or.ok()) return id_or.status();
  // One-op epoch: commit immediately so the move is visible to the next
  // query (protocol back-compat with the pre-churn endpoint).
  CommitEpochLocked();
  return Status::OK();
}

size_t RmgpService::CountUsersIn(const BoundingBox& box) const {
  metrics_.Counter("nearby.requests").fetch_add(1, std::memory_order_relaxed);
  util::ReaderMutexLock lock(session_mu_);
  if (user_index_ == nullptr) return 0;
  return user_index_->Range(box).size();
}

NodeId RmgpService::num_users() const {
  util::ReaderMutexLock lock(session_mu_);
  return snapshot_->graph->num_nodes();
}

uint64_t RmgpService::version() const {
  util::ReaderMutexLock lock(session_mu_);
  return snapshot_->version;
}

size_t RmgpService::pending_mutations() const {
  util::ReaderMutexLock lock(session_mu_);
  return log_.pending_ops();
}

Json RmgpService::MetricsJson() const {
  Json out = metrics_.ToJson();

  const EquilibriumCache::Stats cs = cache_.stats();
  const uint64_t hits = cs.exact_hits + cs.warm_hits;
  Json cache = Json::Object();
  cache.Set("lookups", cs.lookups);
  cache.Set("exact_hits", cs.exact_hits);
  cache.Set("warm_hits", cs.warm_hits);
  cache.Set("misses", cs.misses);
  cache.Set("hit_rate", cs.lookups == 0 ? 0.0
                                        : static_cast<double>(hits) /
                                              static_cast<double>(cs.lookups));
  cache.Set("insertions", cs.insertions);
  cache.Set("evictions", cs.evictions);
  cache.Set("invalidations", cs.invalidations);
  cache.Set("epoch_patched", cs.epoch_patched);
  cache.Set("epoch_dropped", cs.epoch_dropped);
  cache.Set("size", static_cast<uint64_t>(cache_.size()));
  out.Set("cache", std::move(cache));

  Json queue = Json::Object();
  queue.Set("depth",
            static_cast<uint64_t>(in_flight_.load(std::memory_order_relaxed)));
  queue.Set("capacity", static_cast<uint64_t>(config_.queue_capacity));
  queue.Set("workers", config_.num_workers);
  out.Set("queue", std::move(queue));

  Json session = Json::Object();
  {
    util::ReaderMutexLock lock(session_mu_);
    session.Set("version", snapshot_->version);
    session.Set("num_users", snapshot_->graph->num_nodes());
    session.Set("num_edges", snapshot_->graph->num_edges());
    uint64_t active = 0;
    for (const char a : snapshot_->active) active += a != 0;
    session.Set("active_users", active);
    session.Set("pending_mutations",
                static_cast<uint64_t>(log_.pending_ops()));
  }
  out.Set("session", std::move(session));

  {
    // Pre-analysis these reads raced a concurrent dist query: the
    // coordinator mutates live_workers / recovery_stats / traffic inside
    // Solve(), which runs under dist_mu_ — so the metrics endpoint must
    // hold it too (it was the "metrics read without the lock" bug the
    // annotations flagged).
    util::MutexLock lock(dist_mu_);
    if (coordinator_ != nullptr) {
      Json dist = Json::Object();
      dist.Set("workers", config_.dist_workers);
      dist.Set("live_workers",
               static_cast<uint64_t>(coordinator_->live_workers()));
      const shard::RecoveryStats& rs = coordinator_->recovery_stats();
      dist.Set("recoveries", rs.recoveries);
      dist.Set("workers_lost", rs.workers_lost);
      dist.Set("last_recovery_ms", rs.last_recovery_ms);
      const TrafficStats traffic = coordinator_->traffic();
      dist.Set("bytes", traffic.bytes);
      dist.Set("messages", traffic.messages);
      out.Set("dist", std::move(dist));
    }
  }
  return out;
}

}  // namespace serve
}  // namespace rmgp
