#include "serve/service.h"

#include <algorithm>
#include <utility>

#include "core/cost_provider.h"
#include "core/instance.h"
#include "util/dcheck.h"

namespace rmgp {
namespace serve {
namespace {

double MillisBetween(std::chrono::steady_clock::time_point from,
                     std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

const char* CacheOutcomeName(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kDisabled: return "disabled";
    case CacheOutcome::kMiss: return "miss";
    case CacheOutcome::kExactHit: return "exact_hit";
    case CacheOutcome::kWarmHit: return "warm_hit";
  }
  return "unknown";
}

RmgpService::RmgpService(Graph graph, std::vector<Point> user_locations,
                         const ServiceConfig& config)
    : graph_(std::move(graph)),
      config_(config),
      users_(std::move(user_locations)),
      cache_(&graph_, EquilibriumCache::Config{config.cache_capacity,
                                               config.max_warm_edits}) {
  RMGP_DCHECK(users_.size() == graph_.num_nodes())
      << "user_locations size must match the graph";
  if (!users_.empty()) {
    user_index_ = std::make_unique<GridIndex>(users_);
  }
  pool_ = std::make_unique<ThreadPool>(
      std::max<uint32_t>(1, config_.num_workers));
}

RmgpService::~RmgpService() = default;  // pool_ dies first and drains

SolverOptions RmgpService::MakeSolverOptions(const Query& query,
                                             uint32_t solver_threads) {
  SolverOptions options;
  // Deterministic serving defaults: closest-class init and node-id order
  // make a query's result a pure function of (session state, query), so
  // cache hits and fresh solves are comparable and tests can replay
  // served queries offline.
  options.init = InitPolicy::kClosestClass;
  options.order = OrderPolicy::kNodeId;
  options.seed = query.seed;
  options.num_threads = std::max<uint32_t>(1, solver_threads);
  options.record_rounds = false;
  return options;
}

Result<SolveResult> RmgpService::RunSolver(const std::string& name,
                                           const Instance& inst,
                                           const SolverOptions& options) {
  if (name == "RMGP_b") return SolveBaseline(inst, options);
  if (name == "RMGP_se") return SolveStrategyElimination(inst, options);
  if (name == "RMGP_is") return SolveIndependentSets(inst, options);
  if (name == "RMGP_gt") return SolveGlobalTable(inst, options);
  if (name == "RMGP_all") return SolveAll(inst, options);
  if (name == "RMGP_pq") return SolveBestImprovement(inst, options);
  return Status::InvalidArgument("unknown solver: " + name);
}

Status RmgpService::Submit(Query query, Callback done) {
  metrics_.Counter("solve.requests").fetch_add(1, std::memory_order_relaxed);
  // Admission control: claim a queue token before enqueueing; give it
  // back and reject synchronously when the queue (queued + running) is
  // full. The callback never runs for a rejected query.
  const size_t occupied = in_flight_.fetch_add(1, std::memory_order_acq_rel);
  if (occupied >= config_.queue_capacity) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    metrics_.Counter("solve.rejected").fetch_add(1,
                                                 std::memory_order_relaxed);
    return Status::FailedPrecondition("request queue full");
  }
  metrics_.Gauge("queue.depth")
      .store(static_cast<int64_t>(occupied + 1), std::memory_order_relaxed);

  const auto submit_time = std::chrono::steady_clock::now();
  pool_->Submit([this, query = std::move(query), done = std::move(done),
                 submit_time]() mutable {
    Result<QueryResult> result = Execute(query, submit_time);
    const size_t remaining =
        in_flight_.fetch_sub(1, std::memory_order_acq_rel) - 1;
    metrics_.Gauge("queue.depth")
        .store(static_cast<int64_t>(remaining), std::memory_order_relaxed);
    if (!result.ok()) {
      metrics_.Counter("solve.errors").fetch_add(1,
                                                 std::memory_order_relaxed);
      if (done) done(result.status(), QueryResult{});
      return;
    }
    if (done) done(Status::OK(), result.value());
  });
  return Status::OK();
}

Result<QueryResult> RmgpService::Solve(const Query& query) {
  metrics_.Counter("solve.requests").fetch_add(1, std::memory_order_relaxed);
  Result<QueryResult> result = Execute(query, std::chrono::steady_clock::now());
  if (!result.ok()) {
    metrics_.Counter("solve.errors").fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

Result<QueryResult> RmgpService::Execute(
    const Query& query, std::chrono::steady_clock::time_point submit_time) {
  const auto start = std::chrono::steady_clock::now();
  if (query.events.empty()) {
    return Status::InvalidArgument("query carries no events");
  }

  QueryResult out;
  out.queue_ms = MillisBetween(submit_time, start);

  // Snapshot the session: in-flight queries finish against the user
  // locations they started with even if a check-in lands mid-solve.
  std::vector<Point> users;
  {
    std::shared_lock<std::shared_mutex> lock(session_mu_);
    users = users_;
    out.session_version = version_;
  }

  auto costs =
      std::make_shared<EuclideanCostProvider>(users, query.events);
  Result<Instance> inst_or =
      Instance::Create(&graph_, std::move(costs), query.alpha);
  if (!inst_or.ok()) return inst_or.status();
  Instance inst = std::move(inst_or).value();
  inst.set_cost_scale(query.cost_scale);

  const bool cache_enabled = query.use_cache && config_.cache_capacity > 0;
  out.cache = cache_enabled ? CacheOutcome::kMiss : CacheOutcome::kDisabled;
  bool solved = false;
  if (cache_enabled) {
    std::optional<EquilibriumCache::Hit> hit = cache_.Lookup(
        out.session_version, query.events, query.alpha, query.cost_scale);
    if (hit.has_value()) {
      out.assignment = std::move(hit->assignment);
      // Recompute through the same EvaluateObjective a fresh solve ends
      // with (FinalizeResult), so a hit's objective is bit-comparable.
      out.objective = EvaluateObjective(inst, out.assignment);
      out.converged = true;
      out.cache =
          hit->warm ? CacheOutcome::kWarmHit : CacheOutcome::kExactHit;
      solved = true;
    }
  }

  if (!solved) {
    SolverOptions options =
        MakeSolverOptions(query, config_.solver_threads);
    if (query.deadline_ms > 0.0) {
      options.deadline =
          submit_time + std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double, std::milli>(
                                query.deadline_ms));
    }
    Result<SolveResult> res_or = RunSolver(query.solver, inst, options);
    if (!res_or.ok()) return res_or.status();
    SolveResult res = std::move(res_or).value();
    out.converged = res.converged;
    out.timed_out = res.timed_out;
    out.rounds = res.rounds;
    out.objective = res.objective;
    if (cache_enabled && res.converged && !res.timed_out) {
      cache_.Insert(out.session_version, users, query.events, query.alpha,
                    query.cost_scale, res.assignment);
    }
    out.assignment = std::move(res.assignment);
  }

  const auto end = std::chrono::steady_clock::now();
  out.solve_ms = MillisBetween(start, end);
  out.total_ms = MillisBetween(submit_time, end);

  metrics_.Counter("solve.completed").fetch_add(1, std::memory_order_relaxed);
  if (out.timed_out) {
    metrics_.Counter("solve.timed_out").fetch_add(1,
                                                  std::memory_order_relaxed);
  }
  switch (out.cache) {
    case CacheOutcome::kExactHit:
      metrics_.Counter("cache.exact_hits")
          .fetch_add(1, std::memory_order_relaxed);
      break;
    case CacheOutcome::kWarmHit:
      metrics_.Counter("cache.warm_hits")
          .fetch_add(1, std::memory_order_relaxed);
      break;
    case CacheOutcome::kMiss:
      metrics_.Counter("cache.misses").fetch_add(1,
                                                 std::memory_order_relaxed);
      break;
    case CacheOutcome::kDisabled:
      break;
  }
  metrics_.Histogram("solve.queue_ms").Record(out.queue_ms);
  metrics_.Histogram("solve.solve_ms").Record(out.solve_ms);
  metrics_.Histogram("solve.total_ms").Record(out.total_ms);

  if (!query.return_assignment) {
    out.assignment.clear();
    out.assignment.shrink_to_fit();
  }
  return out;
}

Status RmgpService::UpdateUserLocation(NodeId v, const Point& location) {
  metrics_.Counter("update_user.requests")
      .fetch_add(1, std::memory_order_relaxed);
  if (v >= graph_.num_nodes()) {
    return Status::OutOfRange("user id out of range");
  }
  std::unique_lock<std::shared_mutex> lock(session_mu_);
  users_[v] = location;
  ++version_;  // cached equilibria for older versions die lazily
  user_index_ = std::make_unique<GridIndex>(users_);
  return Status::OK();
}

size_t RmgpService::CountUsersIn(const BoundingBox& box) const {
  metrics_.Counter("nearby.requests").fetch_add(1, std::memory_order_relaxed);
  std::shared_lock<std::shared_mutex> lock(session_mu_);
  if (user_index_ == nullptr) return 0;
  return user_index_->Range(box).size();
}

uint64_t RmgpService::version() const {
  std::shared_lock<std::shared_mutex> lock(session_mu_);
  return version_;
}

Json RmgpService::MetricsJson() const {
  Json out = metrics_.ToJson();

  const EquilibriumCache::Stats cs = cache_.stats();
  const uint64_t hits = cs.exact_hits + cs.warm_hits;
  Json cache = Json::Object();
  cache.Set("lookups", cs.lookups);
  cache.Set("exact_hits", cs.exact_hits);
  cache.Set("warm_hits", cs.warm_hits);
  cache.Set("misses", cs.misses);
  cache.Set("hit_rate", cs.lookups == 0 ? 0.0
                                        : static_cast<double>(hits) /
                                              static_cast<double>(cs.lookups));
  cache.Set("insertions", cs.insertions);
  cache.Set("evictions", cs.evictions);
  cache.Set("invalidations", cs.invalidations);
  cache.Set("size", static_cast<uint64_t>(cache_.size()));
  out.Set("cache", std::move(cache));

  Json queue = Json::Object();
  queue.Set("depth",
            static_cast<uint64_t>(in_flight_.load(std::memory_order_relaxed)));
  queue.Set("capacity", static_cast<uint64_t>(config_.queue_capacity));
  queue.Set("workers", config_.num_workers);
  out.Set("queue", std::move(queue));

  Json session = Json::Object();
  session.Set("version", version());
  session.Set("num_users", graph_.num_nodes());
  session.Set("num_edges", graph_.num_edges());
  out.Set("session", std::move(session));
  return out;
}

}  // namespace serve
}  // namespace rmgp
