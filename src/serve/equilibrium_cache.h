#ifndef RMGP_SERVE_EQUILIBRIUM_CACHE_H_
#define RMGP_SERVE_EQUILIBRIUM_CACHE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/dynamic_game.h"
#include "core/objective.h"
#include "graph/graph.h"
#include "spatial/point.h"
#include "util/annotated_mutex.h"
#include "util/status.h"

namespace rmgp {
namespace serve {

/// Caches converged equilibria keyed by the canonical query signature
/// (session version, α, CN, event multiset). Two hit modes:
///
///   * exact — the query's event multiset matches a cached entry (possibly
///     in a different order); the cached assignment is remapped to the
///     query's event numbering and returned without touching a solver.
///   * warm — the multisets differ by at most `max_warm_edits` events; the
///     entry's persistent DynamicGame is patched (AddEvent/RemoveEvent),
///     which re-settles only the perturbed neighborhood (§3.1's "seed the
///     next execution with the last solution") instead of re-solving from
///     scratch. The patched entry then *becomes* the entry for the new
///     signature.
///
/// Versioning under churn: each entry remembers the session version it was
/// computed under and each entry's game co-owns that version's graph, so
/// old versions stay alive while referenced. An epoch commit calls
/// PatchEpoch, which carries current-version entries forward through
/// DynamicGame::ApplyEpoch instead of invalidating them wholesale; entries
/// that miss the patch train (older versions) are dropped lazily by the
/// next Lookup. A lookup never touches entries *newer* than its own
/// version — an in-flight query pinned to an old snapshot must not eat the
/// current generation's cache. Eviction is LRU. All methods are
/// thread-safe behind one mutex — patching a game is milliseconds, so a
/// finer scheme buys nothing at serving scale.
class EquilibriumCache {
 public:
  struct Config {
    size_t capacity = 64;        ///< max cached games (0 disables)
    uint32_t max_warm_edits = 4; ///< max event edits for a warm hit
  };

  struct Stats {
    uint64_t lookups = 0;
    uint64_t exact_hits = 0;
    uint64_t warm_hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;   ///< entries dropped for stale version
    uint64_t epoch_patched = 0;   ///< entries carried across an epoch
    uint64_t epoch_dropped = 0;   ///< entries a patch failed to carry
  };

  struct Hit {
    Assignment assignment;  ///< remapped to the query's event numbering
    bool warm = false;      ///< true when the entry was patched, not exact
  };

  /// What PatchEpoch did to the resident entries.
  struct PatchResult {
    size_t patched = 0;  ///< entries now live at the new version
    size_t dropped = 0;  ///< entries removed (patch failure or stale)
  };

  explicit EquilibriumCache(const Config& config);

  /// Returns the cached equilibrium for the signature, patching a
  /// near-duplicate entry when possible; nullopt on a miss. Entries cached
  /// under an *older* session version are dropped on sight (they missed an
  /// epoch patch); entries under a *newer* version are skipped but kept. A
  /// warm patch that fails internally degrades to a miss.
  std::optional<Hit> Lookup(uint64_t version, const std::vector<Point>& events,
                            double alpha, double cost_scale);

  /// Caches a *converged* equilibrium for the signature: builds a
  /// persistent DynamicGame warm-started from `assignment` (immediate
  /// settle — the assignment is already a Nash equilibrium). `graph` and
  /// `users` are the snapshot the query ran against, so a late insert from
  /// a stale query stays self-consistent (and is reaped at next lookup).
  /// No-op when an entry with this signature already exists or capacity
  /// is 0.
  void Insert(uint64_t version, std::shared_ptr<const Graph> graph,
              const std::vector<Point>& users, const std::vector<Point>& events,
              double alpha, double cost_scale, const Assignment& assignment);

  /// Carries entries across an epoch commit: every entry at
  /// `new_version - 1` is migrated through DynamicGame::ApplyEpoch (graph
  /// swap, moved check-ins, appended users, touched re-equilibration) and
  /// re-tagged `new_version`; entries at even older versions are dropped;
  /// entries already at or past `new_version` are left alone. An entry
  /// whose patch fails is dropped — the cache just gets colder, never
  /// wrong. The spans inside `update` need only outlive this call.
  PatchResult PatchEpoch(uint64_t new_version,
                         const DynamicGame::GraphEpochUpdate& update);

  /// Drops every entry (epoch too large to patch within budget).
  void Clear();

  Stats stats() const;
  size_t size() const;

 private:
  struct Entry {
    double alpha = 0.0;
    double cost_scale = 1.0;
    uint64_t version = 0;
    std::vector<Point> events;  ///< signature order (query order at insert)
    std::unique_ptr<DynamicGame> game;
    uint64_t last_used = 0;
  };

  /// Number of AddEvent/RemoveEvent edits to turn `entry`'s event multiset
  /// into `events`; SIZE_MAX when either side is empty.
  static size_t EditDistance(const std::vector<Point>& a,
                             const std::vector<Point>& b);

  const Config config_;
  mutable util::Mutex mu_;
  std::vector<Entry> entries_ RMGP_GUARDED_BY(mu_);
  uint64_t tick_ RMGP_GUARDED_BY(mu_) = 0;  // LRU clock
  Stats stats_ RMGP_GUARDED_BY(mu_);
};

}  // namespace serve
}  // namespace rmgp

#endif  // RMGP_SERVE_EQUILIBRIUM_CACHE_H_
