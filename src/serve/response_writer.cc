// The serving layer's single sanctioned output path: every response line
// tools/rmgp_serve emits goes through the writer thread below, keeping
// worker callbacks free of blocking I/O.
// rmgp-lint: sanctioned-file(no-stdout)
// rmgp-lint: sanctioned-file(no-blocking-io)
#include "serve/response_writer.h"

#include <utility>

namespace rmgp {
namespace serve {

ResponseWriter::ResponseWriter(std::FILE* out)
    : out_(out), thread_([this] { Loop(); }) {}

ResponseWriter::~ResponseWriter() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_.notify_all();
  thread_.join();
}

void ResponseWriter::Write(std::string line) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(line));
  }
  wake_.notify_one();
}

void ResponseWriter::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_.wait(lock, [this] { return queue_.empty() && !writing_; });
}

void ResponseWriter::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    wake_.wait(lock, [this] { return !queue_.empty() || stop_; });
    if (queue_.empty() && stop_) break;
    if (queue_.empty()) continue;
    std::string line = std::move(queue_.front());
    queue_.pop_front();
    writing_ = true;
    lock.unlock();
    // I/O happens with the lock released so Write never blocks behind a
    // slow pipe.
    std::fwrite(line.data(), 1, line.size(), out_);
    std::fputc('\n', out_);
    std::fflush(out_);
    lock.lock();
    writing_ = false;
    if (queue_.empty()) drained_.notify_all();
  }
  std::fflush(out_);
}

}  // namespace serve
}  // namespace rmgp
