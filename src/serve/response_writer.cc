// The serving layer's single sanctioned output path: every response line
// tools/rmgp_serve emits goes through the writer thread below, keeping
// worker callbacks free of blocking I/O.
// rmgp-lint: sanctioned-file(no-stdout)
// rmgp-lint: sanctioned-file(no-blocking-io)
#include "serve/response_writer.h"

#include <utility>

namespace rmgp {
namespace serve {

ResponseWriter::ResponseWriter(std::FILE* out)
    : out_(out), thread_([this] { Loop(); }) {}

ResponseWriter::~ResponseWriter() {
  {
    util::MutexLock lock(mu_);
    stop_ = true;
  }
  wake_.NotifyAll();
  thread_.join();
}

void ResponseWriter::Write(std::string line) {
  {
    util::MutexLock lock(mu_);
    queue_.push_back(std::move(line));
  }
  wake_.NotifyOne();
}

void ResponseWriter::Drain() {
  util::MutexLock lock(mu_);
  while (!queue_.empty() || writing_) drained_.Wait(mu_);
}

void ResponseWriter::Loop() {
  for (;;) {
    std::string line;
    {
      util::MutexLock lock(mu_);
      while (queue_.empty() && !stop_) wake_.Wait(mu_);
      if (queue_.empty()) break;  // stop_ set and nothing left to write
      line = std::move(queue_.front());
      queue_.pop_front();
      writing_ = true;
    }
    // I/O happens with the lock released so Write never blocks behind a
    // slow pipe.
    std::fwrite(line.data(), 1, line.size(), out_);
    std::fputc('\n', out_);
    std::fflush(out_);
    {
      util::MutexLock lock(mu_);
      writing_ = false;
      if (queue_.empty()) drained_.NotifyAll();
    }
  }
  std::fflush(out_);
}

}  // namespace serve
}  // namespace rmgp
