#include "serve/mutation_log.h"

#include <algorithm>
#include <string>

#include "util/dcheck.h"

namespace rmgp {
namespace serve {

const char* MutationKindName(MutationKind kind) {
  switch (kind) {
    case MutationKind::kAddUser: return "add_user";
    case MutationKind::kRemoveUser: return "remove_user";
    case MutationKind::kAddEdge: return "add_edge";
    case MutationKind::kRemoveEdge: return "remove_edge";
    case MutationKind::kReweightEdge: return "reweight_edge";
    case MutationKind::kMoveUser: return "move_user";
  }
  return "unknown";
}

Result<MutationKind> ParseMutationKind(std::string_view name) {
  if (name == "add_user") return MutationKind::kAddUser;
  if (name == "remove_user") return MutationKind::kRemoveUser;
  if (name == "add_edge") return MutationKind::kAddEdge;
  if (name == "remove_edge") return MutationKind::kRemoveEdge;
  if (name == "reweight_edge") return MutationKind::kReweightEdge;
  if (name == "move_user") return MutationKind::kMoveUser;
  return Status::InvalidArgument("unknown mutation kind: " +
                                 std::string(name));
}

MutationLog::MutationLog(std::shared_ptr<const SessionSnapshot> base)
    : base_(std::move(base)), delta_(base_->graph.get()) {
  RMGP_DCHECK(base_ != nullptr);
  RMGP_DCHECK_EQ(base_->users.size(), base_->graph->num_nodes());
  RMGP_DCHECK_EQ(base_->active.size(), base_->graph->num_nodes());
}

bool MutationLog::ActiveInView(NodeId v) const {
  if (v >= delta_.num_nodes()) return false;
  if (v >= base_nodes()) {
    // Appended this epoch; active unless removed again since.
    return deactivated_.count(v) == 0;
  }
  if (reactivated_.count(v) != 0) return true;
  if (deactivated_.count(v) != 0) return false;
  return base_->active[v] != 0;
}

Result<NodeId> MutationLog::Append(const Mutation& m) {
  switch (m.kind) {
    case MutationKind::kAddUser: {
      if (!m.has_user) {
        const NodeId id = delta_.AddNode();
        appended_.push_back(m.location);
        ++pending_ops_;
        return id;
      }
      // Reactivation of a tombstoned user (the "re-add of a removed
      // user" path): the id and its (edgeless) vertex survive removal.
      const NodeId v = m.user;
      if (v >= delta_.num_nodes()) {
        return Status::OutOfRange("user id out of range");
      }
      if (ActiveInView(v)) {
        return Status::FailedPrecondition(
            "user " + std::to_string(v) + " is already active");
      }
      if (v >= base_nodes()) {
        // Appended and removed within this epoch; un-remove it.
        deactivated_.erase(v);
        appended_[v - base_nodes()] = m.location;
      } else if (deactivated_.count(v) != 0) {
        // Removed earlier in this same epoch: nets out to "still active,
        // possibly moved" — but its edges are already gone from the
        // delta, which is exactly removal-then-re-add semantics.
        deactivated_.erase(v);
        if (base_->users[v].x == m.location.x &&
            base_->users[v].y == m.location.y) {
          moves_.erase(v);
        } else {
          moves_[v] = m.location;
        }
      } else {
        reactivated_[v] = m.location;
      }
      ++pending_ops_;
      return v;
    }
    case MutationKind::kRemoveUser: {
      const NodeId v = m.user;
      if (v >= delta_.num_nodes()) {
        return Status::OutOfRange("user id out of range");
      }
      if (!ActiveInView(v)) {
        return Status::FailedPrecondition(
            "user " + std::to_string(v) + " is not active");
      }
      RMGP_RETURN_IF_ERROR(delta_.RemoveNodeEdges(v));
      if (v >= base_nodes()) {
        deactivated_.insert(v);
      } else if (reactivated_.count(v) != 0) {
        reactivated_.erase(v);  // back to the base tombstone
      } else {
        deactivated_.insert(v);
        moves_.erase(v);
      }
      ++pending_ops_;
      return v;
    }
    case MutationKind::kMoveUser: {
      const NodeId v = m.user;
      if (v >= delta_.num_nodes()) {
        return Status::OutOfRange("user id out of range");
      }
      if (!ActiveInView(v)) {
        return Status::FailedPrecondition(
            "user " + std::to_string(v) + " is not active");
      }
      if (v >= base_nodes()) {
        appended_[v - base_nodes()] = m.location;
      } else if (reactivated_.count(v) != 0) {
        reactivated_[v] = m.location;
      } else if (base_->users[v].x == m.location.x &&
                 base_->users[v].y == m.location.y) {
        moves_.erase(v);  // exact same spot: net no-op
      } else {
        moves_[v] = m.location;
      }
      ++pending_ops_;
      return v;
    }
    case MutationKind::kAddEdge:
    case MutationKind::kRemoveEdge:
    case MutationKind::kReweightEdge: {
      if (m.u >= delta_.num_nodes() || m.v >= delta_.num_nodes()) {
        return Status::OutOfRange("edge endpoint out of range");
      }
      if (!ActiveInView(m.u) || !ActiveInView(m.v)) {
        return Status::FailedPrecondition("edge endpoint is not active");
      }
      if (m.kind == MutationKind::kAddEdge) {
        RMGP_RETURN_IF_ERROR(delta_.AddEdge(m.u, m.v, m.weight));
      } else if (m.kind == MutationKind::kRemoveEdge) {
        RMGP_RETURN_IF_ERROR(delta_.RemoveEdge(m.u, m.v));
      } else {
        RMGP_RETURN_IF_ERROR(delta_.ReweightEdge(m.u, m.v, m.weight));
      }
      ++pending_ops_;
      return std::min(m.u, m.v);
    }
  }
  return Status::InvalidArgument("unknown mutation kind");
}

std::optional<MutationLog::Epoch> MutationLog::Commit() {
  const bool clean = delta_.empty() && moves_.empty() &&
                     reactivated_.empty() && deactivated_.empty();
  pending_ops_ = 0;
  if (clean) return std::nullopt;

  GraphDelta::BuildResult built = delta_.Build();
  const NodeId n = built.graph.num_nodes();

  auto next = std::make_shared<SessionSnapshot>();
  next->graph = std::make_shared<const Graph>(std::move(built.graph));
  next->version = base_->version + 1;
  next->users = base_->users;
  next->users.insert(next->users.end(), appended_.begin(), appended_.end());
  next->active = base_->active;
  next->active.resize(n, 1);

  Epoch epoch;
  epoch.touched = std::move(built.touched);
  epoch.appended = std::move(appended_);
  for (const auto& [v, p] : moves_) {
    next->users[v] = p;
    epoch.moved.emplace_back(v, p);
  }
  for (const auto& [v, p] : reactivated_) {
    next->users[v] = p;
    next->active[v] = 1;
    epoch.moved.emplace_back(v, p);
    epoch.reactivated.emplace_back(v, p);
  }
  for (const NodeId v : deactivated_) {
    next->active[v] = 0;
    epoch.deactivated.push_back(v);
  }
  std::sort(epoch.moved.begin(), epoch.moved.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  epoch.net_changes =
      epoch.touched.size() + epoch.moved.size() + epoch.deactivated.size();
  epoch.next = next;

  // Re-base onto the committed snapshot.
  base_ = std::move(next);
  delta_ = GraphDelta(base_->graph.get());
  moves_.clear();
  appended_.clear();
  reactivated_.clear();
  deactivated_.clear();
  return epoch;
}

}  // namespace serve
}  // namespace rmgp
