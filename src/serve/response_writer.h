#ifndef RMGP_SERVE_RESPONSE_WRITER_H_
#define RMGP_SERVE_RESPONSE_WRITER_H_

#include <cstdio>
#include <deque>
#include <string>
#include <thread>

#include "util/annotated_mutex.h"

namespace rmgp {
namespace serve {

/// Serializes response lines to an output stream from a dedicated writer
/// thread. Worker callbacks — which must never block on I/O (a stalled
/// client pipe would wedge the solve pool; see the rmgp_lint
/// no-blocking-io rule) — just enqueue a string; the writer thread owns
/// every fwrite/fflush. Lines are emitted in enqueue order, one '\n'
/// appended each, flushed after every line so drivers see responses
/// promptly.
class ResponseWriter {
 public:
  /// `out` is borrowed (typically stdout) and must outlive the writer.
  explicit ResponseWriter(std::FILE* out);

  /// Drains the queue, then joins the writer thread.
  ~ResponseWriter();

  ResponseWriter(const ResponseWriter&) = delete;
  ResponseWriter& operator=(const ResponseWriter&) = delete;

  /// Enqueues one response line (without trailing newline). Thread-safe,
  /// never blocks on the output stream.
  void Write(std::string line);

  /// Blocks until everything enqueued so far has been written + flushed.
  void Drain();

 private:
  void Loop();

  // Written by the writer thread only (and the constructor); unguarded.
  std::FILE* out_;  // rmgp-lint: allow(no-unannotated-shared-field)
  util::Mutex mu_;
  util::CondVar wake_;
  util::CondVar drained_;
  std::deque<std::string> queue_ RMGP_GUARDED_BY(mu_);
  // Loop is between dequeue and flush
  bool writing_ RMGP_GUARDED_BY(mu_) = false;
  bool stop_ RMGP_GUARDED_BY(mu_) = false;
  // last member: started after state is ready
  std::thread thread_;  // rmgp-lint: allow(no-unannotated-shared-field)
};

}  // namespace serve
}  // namespace rmgp

#endif  // RMGP_SERVE_RESPONSE_WRITER_H_
