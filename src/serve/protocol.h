#ifndef RMGP_SERVE_PROTOCOL_H_
#define RMGP_SERVE_PROTOCOL_H_

#include <string>
#include <string_view>

#include "serve/service.h"
#include "spatial/point.h"
#include "util/json.h"
#include "util/status.h"

namespace rmgp {
namespace serve {

/// Wire protocol of tools/rmgp_serve: newline-delimited JSON, one request
/// object per line, one response object per line, correlated by the echoed
/// client-chosen "id". See README "Serving" for the full field reference.
///
///   {"id":1,"op":"solve","events":[[x,y],...],"alpha":0.5,
///    "solver":"RMGP_gt","deadline_ms":50,"seed":7,"cost_scale":1.0,
///    "cache":true,"portfolio":false,"dist":false,
///    "return_assignment":false}
///   {"id":2,"op":"update_user","user":17,"location":[x,y]}
///   {"id":3,"op":"nearby","box":[min_x,min_y,max_x,max_y]}
///   {"id":4,"op":"metrics"}
///   {"id":5,"op":"quit"}
///   {"id":6,"op":"mutate","kind":"add_edge","u":1,"v":2,"weight":1.5}
///   {"id":7,"op":"mutate","kind":"move_user","user":3,"location":[x,y]}
///   {"id":8,"op":"mutate","kind":"add_user","location":[x,y]}
///   {"id":9,"op":"epoch"}
///
/// Mutation kinds: add_user (optional "user" reactivates a removed id),
/// remove_user, add_edge, remove_edge, reweight_edge, move_user. Mutations
/// are validated and logged; "epoch" (or the server's --epoch-size
/// auto-commit) applies them as one batch and bumps the session version.
///
/// "dist":true routes the solve to the sharded worker fleet (the server
/// must run with --dist-workers); the response carries a "dist" object
/// with measured transport traffic:
///   {"id":1,...,"dist":{"workers":4,"bytes":...,"messages":...,
///    "recoveries":0}}
inline constexpr const char* kProtocolName = "rmgp-serve/3";

/// A parsed request line.
struct Request {
  enum class Op { kSolve, kUpdateUser, kNearby, kMetrics, kQuit, kMutate,
                  kEpoch };

  double id = 0.0;  ///< echoed verbatim in the response
  Op op = Op::kSolve;
  Query query;            // kSolve
  NodeId user = 0;        // kUpdateUser
  Point location;         // kUpdateUser
  BoundingBox box;        // kNearby
  Mutation mutation;      // kMutate
};

/// Parses one request line. InvalidArgument on malformed JSON, unknown op,
/// or missing/ill-typed fields.
Result<Request> ParseRequest(std::string_view line);

/// {"status":"ready","protocol":"rmgp-serve/3","num_users":..,...} — the
/// banner rmgp_serve prints once the session is loaded, so drivers know
/// the server is accepting requests.
std::string ReadyBanner(const RmgpService& service);

/// {"id":..,"status":"ok",...} for a completed solve.
std::string SerializeQueryResult(double id, const QueryResult& result);

/// {"id":..,"status":"ok","count":..} for a nearby count.
std::string SerializeCount(double id, size_t count);

/// {"id":..,"status":"ok"} for an acknowledged mutation.
std::string SerializeAck(double id);

/// {"id":..,"status":"ok","user":..,"pending":..,"version":..,
///  "committed":..} for an accepted mutation.
std::string SerializeMutationAck(double id, const MutationAck& ack);

/// {"id":..,"status":"ok","committed":..,"version":..,"touched":..,
///  "moved":..,"appended":..,"cache_patched":..,"cache_dropped":..,
///  "cache_cleared":..,"commit_ms":..} for an epoch commit.
std::string SerializeEpochResult(double id, const EpochResult& epoch);

/// {"id":..,"status":"ok","metrics":{...}}.
std::string SerializeMetrics(double id, Json metrics);

/// {"id":..,"status":"rejected"|"error","code":..,"message":..}. A
/// FailedPrecondition (queue full) maps to "rejected" — load shedding the
/// client should retry — everything else to "error".
std::string SerializeFailure(double id, const Status& status);

}  // namespace serve
}  // namespace rmgp

#endif  // RMGP_SERVE_PROTOCOL_H_
