#include "serve/protocol.h"

#include <cmath>
#include <utility>

namespace rmgp {
namespace serve {
namespace {

/// Checked double -> unsigned conversion. JSON numbers arrive as doubles,
/// and static_cast of a negative, fractional, NaN, or out-of-range value
/// to an unsigned type is undefined behavior, not truncation (found by
/// fuzzing the request parser under UBSan). `limit` is exclusive.
bool ToUnsigned(double d, double limit, uint64_t* out) {
  if (!(d >= 0.0) || d >= limit || d != std::floor(d)) return false;
  *out = static_cast<uint64_t>(d);
  return true;
}

/// NodeId-valued field: rejects anything but an integer in [0, 2^32).
bool ToNodeId(double d, NodeId* out) {
  uint64_t wide = 0;
  if (!ToUnsigned(d, 4294967296.0, &wide)) return false;
  *out = static_cast<NodeId>(wide);
  return true;
}

/// Reads an optional scalar field, keeping `out` untouched when absent.
/// Returns false (after setting *error) on a type mismatch.
bool ReadNumber(const Json& obj, std::string_view key, double* out,
                std::string* error) {
  const Json* field = obj.Find(key);
  if (field == nullptr) return true;
  if (!field->is_number()) {
    *error = std::string(key) + " must be a number";
    return false;
  }
  *out = field->AsDouble();
  return true;
}

bool ReadBool(const Json& obj, std::string_view key, bool* out,
              std::string* error) {
  const Json* field = obj.Find(key);
  if (field == nullptr) return true;
  if (!field->is_bool()) {
    *error = std::string(key) + " must be a boolean";
    return false;
  }
  *out = field->AsBool();
  return true;
}

/// [x, y] -> Point.
bool ReadPoint(const Json& value, Point* out, std::string* error) {
  if (!value.is_array() || value.size() != 2 || !value[0].is_number() ||
      !value[1].is_number()) {
    *error = "a point must be a [x, y] number pair";
    return false;
  }
  out->x = value[0].AsDouble();
  out->y = value[1].AsDouble();
  return true;
}

Status ParseSolve(const Json& obj, Request* req) {
  std::string error;
  const Json* events = obj.Find("events");
  if (events == nullptr || !events->is_array() || events->size() == 0) {
    return Status::InvalidArgument("solve requires a non-empty events array");
  }
  req->query.events.reserve(events->size());
  for (size_t i = 0; i < events->size(); ++i) {
    Point p;
    if (!ReadPoint((*events)[i], &p, &error)) {
      return Status::InvalidArgument(error);
    }
    req->query.events.push_back(p);
  }
  double seed = static_cast<double>(req->query.seed);
  if (!ReadNumber(obj, "alpha", &req->query.alpha, &error) ||
      !ReadNumber(obj, "cost_scale", &req->query.cost_scale, &error) ||
      !ReadNumber(obj, "deadline_ms", &req->query.deadline_ms, &error) ||
      !ReadNumber(obj, "seed", &seed, &error) ||
      !ReadBool(obj, "cache", &req->query.use_cache, &error) ||
      !ReadBool(obj, "portfolio", &req->query.portfolio, &error) ||
      !ReadBool(obj, "dist", &req->query.dist, &error) ||
      !ReadBool(obj, "return_assignment", &req->query.return_assignment,
                &error)) {
    return Status::InvalidArgument(error);
  }
  if (!ToUnsigned(seed, std::ldexp(1.0, 64), &req->query.seed)) {
    return Status::InvalidArgument("seed must be an integer in [0, 2^64)");
  }
  if (const Json* solver = obj.Find("solver"); solver != nullptr) {
    if (!solver->is_string()) {
      return Status::InvalidArgument("solver must be a string");
    }
    req->query.solver = solver->AsString();
  }
  return Status::OK();
}

Status ParseUpdateUser(const Json& obj, Request* req) {
  std::string error;
  const Json* user = obj.Find("user");
  if (user == nullptr || !user->is_number() ||
      !ToNodeId(user->AsDouble(), &req->user)) {
    return Status::InvalidArgument(
        "update_user requires an integer user id");
  }
  const Json* location = obj.Find("location");
  if (location == nullptr || !ReadPoint(*location, &req->location, &error)) {
    return Status::InvalidArgument("update_user requires a [x, y] location");
  }
  return Status::OK();
}

Status ParseNearby(const Json& obj, Request* req) {
  const Json* box = obj.Find("box");
  if (box == nullptr || !box->is_array() || box->size() != 4 ||
      !(*box)[0].is_number() || !(*box)[1].is_number() ||
      !(*box)[2].is_number() || !(*box)[3].is_number()) {
    return Status::InvalidArgument(
        "nearby requires box: [min_x, min_y, max_x, max_y]");
  }
  req->box.min.x = (*box)[0].AsDouble();
  req->box.min.y = (*box)[1].AsDouble();
  req->box.max.x = (*box)[2].AsDouble();
  req->box.max.y = (*box)[3].AsDouble();
  return Status::OK();
}

Status ParseMutate(const Json& obj, Request* req) {
  std::string error;
  const Json* kind = obj.Find("kind");
  if (kind == nullptr || !kind->is_string()) {
    return Status::InvalidArgument("mutate requires a string kind");
  }
  Result<MutationKind> parsed = ParseMutationKind(kind->AsString());
  if (!parsed.ok()) return parsed.status();
  Mutation& m = req->mutation;
  m.kind = parsed.value();

  const Json* user = obj.Find("user");
  if (user != nullptr) {
    if (!user->is_number() || !ToNodeId(user->AsDouble(), &m.user)) {
      return Status::InvalidArgument("user must be an integer id");
    }
    m.has_user = true;
  }
  if (const Json* location = obj.Find("location"); location != nullptr) {
    if (!ReadPoint(*location, &m.location, &error)) {
      return Status::InvalidArgument(error);
    }
  }

  switch (m.kind) {
    case MutationKind::kRemoveUser:
    case MutationKind::kMoveUser:
      if (!m.has_user) {
        return Status::InvalidArgument(
            std::string(MutationKindName(m.kind)) +
            " requires a numeric user");
      }
      break;
    case MutationKind::kAddUser:
      break;  // user optional: present = reactivate, absent = append
    case MutationKind::kAddEdge:
    case MutationKind::kRemoveEdge:
    case MutationKind::kReweightEdge: {
      const Json* u = obj.Find("u");
      const Json* v = obj.Find("v");
      if (u == nullptr || !u->is_number() || v == nullptr ||
          !v->is_number() || !ToNodeId(u->AsDouble(), &m.u) ||
          !ToNodeId(v->AsDouble(), &m.v)) {
        return Status::InvalidArgument(
            std::string(MutationKindName(m.kind)) +
            " requires integer u and v ids");
      }
      if (!ReadNumber(obj, "weight", &m.weight, &error)) {
        return Status::InvalidArgument(error);
      }
      if (m.kind != MutationKind::kRemoveEdge && m.weight <= 0.0) {
        return Status::InvalidArgument("weight must be positive");
      }
      break;
    }
  }
  return Status::OK();
}

}  // namespace

Result<Request> ParseRequest(std::string_view line) {
  Result<Json> doc = Json::Parse(line);
  if (!doc.ok()) return doc.status();
  const Json& obj = doc.value();
  if (!obj.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }

  Request req;
  if (const Json* id = obj.Find("id"); id != nullptr) {
    if (!id->is_number()) {
      return Status::InvalidArgument("id must be a number");
    }
    req.id = id->AsDouble();
  }

  const Json* op = obj.Find("op");
  if (op == nullptr || !op->is_string()) {
    return Status::InvalidArgument("request requires a string op");
  }
  const std::string& name = op->AsString();
  Status parsed = Status::OK();
  if (name == "solve") {
    req.op = Request::Op::kSolve;
    parsed = ParseSolve(obj, &req);
  } else if (name == "update_user") {
    req.op = Request::Op::kUpdateUser;
    parsed = ParseUpdateUser(obj, &req);
  } else if (name == "nearby") {
    req.op = Request::Op::kNearby;
    parsed = ParseNearby(obj, &req);
  } else if (name == "mutate") {
    req.op = Request::Op::kMutate;
    parsed = ParseMutate(obj, &req);
  } else if (name == "epoch") {
    req.op = Request::Op::kEpoch;
  } else if (name == "metrics") {
    req.op = Request::Op::kMetrics;
  } else if (name == "quit") {
    req.op = Request::Op::kQuit;
  } else {
    return Status::InvalidArgument("unknown op: " + name);
  }
  if (!parsed.ok()) return parsed;
  return req;
}

std::string ReadyBanner(const RmgpService& service) {
  Json banner = Json::Object();
  banner.Set("status", "ready");
  banner.Set("protocol", kProtocolName);
  banner.Set("num_users", service.num_users());
  banner.Set("version", service.version());
  if (service.dist_port() != 0) {
    banner.Set("dist_port", static_cast<uint64_t>(service.dist_port()));
  }
  return banner.Dump();
}

std::string SerializeQueryResult(double id, const QueryResult& result) {
  Json out = Json::Object();
  out.Set("id", id);
  out.Set("status", "ok");
  out.Set("converged", result.converged);
  out.Set("timed_out", result.timed_out);
  out.Set("rounds", result.rounds);
  out.Set("objective", result.objective.total);
  out.Set("assignment_cost", result.objective.assignment);
  out.Set("social_cost", result.objective.social);
  out.Set("potential", result.potential);
  out.Set("cache", CacheOutcomeName(result.cache));
  out.Set("queue_ms", result.queue_ms);
  out.Set("solve_ms", result.solve_ms);
  out.Set("total_ms", result.total_ms);
  out.Set("session_version", result.session_version);
  out.Set("realized_gap", result.realized_gap);
  if (result.portfolio_width > 0) {
    Json portfolio = Json::Object();
    portfolio.Set("width", result.portfolio_width);
    portfolio.Set("winner", result.portfolio_winner);
    out.Set("portfolio", std::move(portfolio));
  }
  if (result.dist_workers > 0) {
    Json dist = Json::Object();
    dist.Set("workers", result.dist_workers);
    dist.Set("bytes", result.dist_bytes);
    dist.Set("messages", result.dist_messages);
    dist.Set("recoveries", result.dist_recoveries);
    out.Set("dist", std::move(dist));
  }
  if (!result.assignment.empty()) {
    Json assignment = Json::Array();
    for (const ClassId c : result.assignment) assignment.Append(c);
    out.Set("assignment", std::move(assignment));
  }
  return out.Dump();
}

std::string SerializeCount(double id, size_t count) {
  Json out = Json::Object();
  out.Set("id", id);
  out.Set("status", "ok");
  out.Set("count", static_cast<uint64_t>(count));
  return out.Dump();
}

std::string SerializeAck(double id) {
  Json out = Json::Object();
  out.Set("id", id);
  out.Set("status", "ok");
  return out.Dump();
}

std::string SerializeMutationAck(double id, const MutationAck& ack) {
  Json out = Json::Object();
  out.Set("id", id);
  out.Set("status", "ok");
  out.Set("user", ack.user);
  out.Set("pending", static_cast<uint64_t>(ack.pending));
  out.Set("version", ack.version);
  out.Set("committed", ack.committed);
  return out.Dump();
}

std::string SerializeEpochResult(double id, const EpochResult& epoch) {
  Json out = Json::Object();
  out.Set("id", id);
  out.Set("status", "ok");
  out.Set("committed", epoch.committed);
  out.Set("version", epoch.version);
  out.Set("touched", static_cast<uint64_t>(epoch.touched));
  out.Set("moved", static_cast<uint64_t>(epoch.moved));
  out.Set("appended", static_cast<uint64_t>(epoch.appended));
  out.Set("cache_patched", static_cast<uint64_t>(epoch.cache_patched));
  out.Set("cache_dropped", static_cast<uint64_t>(epoch.cache_dropped));
  out.Set("cache_cleared", epoch.cache_cleared);
  out.Set("commit_ms", epoch.commit_ms);
  return out.Dump();
}

std::string SerializeMetrics(double id, Json metrics) {
  Json out = Json::Object();
  out.Set("id", id);
  out.Set("status", "ok");
  out.Set("metrics", std::move(metrics));
  return out.Dump();
}

std::string SerializeFailure(double id, const Status& status) {
  Json out = Json::Object();
  out.Set("id", id);
  out.Set("status", status.code() == StatusCode::kFailedPrecondition
                        ? "rejected"
                        : "error");
  out.Set("code", StatusCodeToString(status.code()));
  out.Set("message", status.message());
  return out.Dump();
}

}  // namespace serve
}  // namespace rmgp
