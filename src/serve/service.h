#ifndef RMGP_SERVE_SERVICE_H_
#define RMGP_SERVE_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/objective.h"
#include "core/solver.h"
#include "graph/graph.h"
#include "serve/equilibrium_cache.h"
#include "serve/mutation_log.h"
#include "serve/serve_metrics.h"
#include "shard/coordinator.h"
#include "spatial/grid_index.h"
#include "spatial/point.h"
#include "util/annotated_mutex.h"
#include "util/json.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace rmgp {
namespace serve {

/// Serving-session knobs.
struct ServiceConfig {
  uint32_t num_workers = 4;    ///< query worker threads
  size_t queue_capacity = 64;  ///< max in-flight queries (queued + running)
  size_t cache_capacity = 64;  ///< equilibrium cache entries (0 disables)
  uint32_t max_warm_edits = 4; ///< event edits a warm cache hit may patch
  uint32_t solver_threads = 2; ///< threads *inside* one solver run; results
                               ///< never depend on this (see SolverOptions)
  uint32_t epoch_size = 64;    ///< pending mutations that trigger an
                               ///< auto-commit (0 = manual commits only)
  uint32_t epoch_patch_budget = 4096;  ///< max touched vertices an epoch may
                                       ///< carry and still patch the cache
                                       ///< in place; beyond it the cache is
                                       ///< cleared instead
  uint32_t portfolio_width = 4;  ///< racers launched for Query::portfolio

  /// Sharded deployment: when > 0 the service embeds a shard::ShardCoordinator
  /// and serves Query::dist queries over that many real worker processes
  /// (tools/rmgp_worker) instead of in-process. Workers connect to
  /// dist_port (0 = ephemeral, see RmgpService::dist_port()).
  uint32_t dist_workers = 0;
  uint16_t dist_port = 0;
  PartitionScheme dist_partition = PartitionScheme::kHash;
  bool dist_multicast = false;   ///< interest multicast on the real transport
  int dist_timeout_ms = 30000;   ///< per-frame I/O / heartbeat deadline
};

/// One partitioning query: the classes P (event locations), the preference
/// α, the cost normalization CN, and serving controls.
struct Query {
  std::vector<Point> events;
  double alpha = 0.5;
  double cost_scale = 1.0;
  std::string solver = "RMGP_gt";  ///< RMGP_b/se/is/gt/all/pq
  uint64_t seed = 1;
  double deadline_ms = 0.0;  ///< 0 = no deadline; else anytime semantics
  bool use_cache = true;
  bool return_assignment = false;

  /// Race ServiceConfig::portfolio_width diverse-start instances of the
  /// chosen solver under the query deadline and return the lowest-Φ valid
  /// assignment (core/portfolio.h). Bypasses the equilibrium cache: a
  /// cached single-start equilibrium is not comparable to a best-of-P
  /// race. Not supported for RMGP_pq.
  bool portfolio = false;

  /// Run the query on the sharded worker fleet (ServiceConfig::dist_workers)
  /// instead of in-process. Bypasses the equilibrium cache and the solver
  /// name; the decentralized game is coloring-synchronous RMGP_all.
  bool dist = false;
};

/// How the equilibrium cache participated in a query.
enum class CacheOutcome { kDisabled, kMiss, kExactHit, kWarmHit };

const char* CacheOutcomeName(CacheOutcome outcome);

/// Everything a client gets back for one query.
struct QueryResult {
  Assignment assignment;  ///< filled iff Query::return_assignment
  CostBreakdown objective;
  double potential = 0.0;  ///< Φ (Equation 4) at the served assignment —
                           ///< the quantity portfolio racing minimizes
  bool converged = false;
  bool timed_out = false;  ///< deadline tripped; assignment is the anytime
                           ///< partial solution (still valid)
  uint32_t rounds = 0;
  CacheOutcome cache = CacheOutcome::kDisabled;
  double queue_ms = 0.0;  ///< submit -> worker pickup
  double solve_ms = 0.0;  ///< solver (or cache path) alone
  double total_ms = 0.0;  ///< submit -> completion
  uint64_t session_version = 0;  ///< session state the query saw

  /// objective.total / ObjectiveLowerBound(instance): how far the served
  /// assignment sits above the assignment-cost floor (>= 1 up to rounding;
  /// 0 when the floor is 0). Lower is better; the per-query analogue of
  /// the EmpiricalPoA spread.
  double realized_gap = 0.0;

  /// Portfolio racing (Query::portfolio): racers launched and the index
  /// of the winning instance; width 0 means the query ran single-start.
  uint32_t portfolio_width = 0;
  uint32_t portfolio_winner = 0;

  /// Sharded execution (Query::dist): workers the query ran on (0 = the
  /// query ran in-process) and measured wire traffic + recoveries.
  uint32_t dist_workers = 0;
  uint64_t dist_bytes = 0;
  uint64_t dist_messages = 0;
  uint64_t dist_recoveries = 0;
};

/// Receipt for one accepted mutation.
struct MutationAck {
  NodeId user = 0;       ///< affected id (newly assigned for appends)
  size_t pending = 0;    ///< ops waiting in the log after this one
  uint64_t version = 0;  ///< session version after this call
  bool committed = false;  ///< true when this op tripped an auto-commit
};

/// What one epoch commit did.
struct EpochResult {
  bool committed = false;  ///< false: pending edits netted to zero
  uint64_t version = 0;    ///< session version after the call
  size_t touched = 0;      ///< vertices with adjacency changes
  size_t moved = 0;        ///< users whose location changed
  size_t appended = 0;     ///< users added
  size_t cache_patched = 0;  ///< cache entries carried to the new version
  size_t cache_dropped = 0;  ///< cache entries a patch failed to carry
  bool cache_cleared = false;  ///< epoch exceeded the patch budget
  double commit_ms = 0.0;
};

/// A long-lived serving session: one social graph plus the latest user
/// check-in locations, a bounded query queue feeding a worker pool, the
/// equilibrium cache, and a metrics registry. Queries are admitted or
/// rejected synchronously (FailedPrecondition when the queue is full) and
/// complete asynchronously via callback.
///
/// Churn: mutations (Mutate) enqueue into a validated log and apply in
/// epochs (CommitEpoch, or automatically every `epoch_size` ops). A commit
/// builds the next immutable SessionSnapshot, patches the spatial index in
/// place, and carries cached equilibria forward through
/// DynamicGame::ApplyEpoch instead of invalidating them — falling back to
/// a full cache clear past `epoch_patch_budget` touched vertices.
///
/// Thread-safety: all public methods may be called concurrently. Queries
/// pin the snapshot they started against (shared_ptr), so an epoch commit
/// mid-solve never corrupts a running query; cache entries from older
/// versions are dropped lazily.
class RmgpService {
 public:
  /// Called on a worker thread when the query finishes. The status is
  /// non-OK only for invalid queries (bad α, unknown solver, ...).
  using Callback = std::function<void(const Status&, const QueryResult&)>;

  /// Takes ownership of the session graph and check-in locations
  /// (`user_locations.size()` must equal the graph's node count). With
  /// ServiceConfig::dist_workers > 0 also binds the coordinator socket
  /// (see dist_port()); workers are awaited via WaitForDistWorkers().
  RmgpService(Graph graph, std::vector<Point> user_locations,
              const ServiceConfig& config);

  /// Drains in-flight queries and shuts the worker fleet down.
  ~RmgpService();

  RmgpService(const RmgpService&) = delete;
  RmgpService& operator=(const RmgpService&) = delete;

  /// Admits the query into the request queue, or rejects it *now* with
  /// FailedPrecondition when `queue_capacity` queries are already in
  /// flight (the callback never runs for a rejected query).
  Status Submit(Query query, Callback done);

  /// Synchronous convenience: runs the query on the caller's thread with
  /// the same pipeline (cache, deadline, metrics) but no admission
  /// control.
  Result<QueryResult> Solve(const Query& query);

  /// Validates and enqueues one mutation; commits an epoch automatically
  /// once `epoch_size` ops are pending. Invalid ops (removing a missing
  /// edge, moving a tombstoned user, ...) are rejected here and never
  /// reach the log.
  Result<MutationAck> Mutate(const Mutation& mutation);

  /// Applies all pending mutations as one epoch: new graph version, new
  /// snapshot, spatial index patched, cached equilibria carried forward.
  /// An epoch whose edits net to zero reports committed=false and does
  /// NOT bump the session version.
  Result<EpochResult> CommitEpoch();

  /// Moves user v to a new check-in location (a one-op epoch: enqueue the
  /// move and commit immediately). Kept for protocol back-compat.
  Status UpdateUserLocation(NodeId v, const Point& location);

  /// Users currently checked in inside `box` (spatial-index endpoint;
  /// tombstoned users are not counted).
  size_t CountUsersIn(const BoundingBox& box) const;

  NodeId num_users() const;
  uint64_t version() const;
  size_t pending_mutations() const;

  /// Port the embedded coordinator listens on (0 when the service was not
  /// configured with dist workers, or the bind failed).
  uint16_t dist_port() const;

  /// Blocks until ServiceConfig::dist_workers workers have connected and
  /// handshaked. Must complete before the first Query::dist query.
  Status WaitForDistWorkers(int timeout_ms);

  /// Graceful-shutdown half 1: stop admitting. Submit() rejects every new
  /// query with Unavailable from here on; in-flight queries keep running.
  void StopAdmitting();

  /// Graceful-shutdown half 2: blocks until every admitted query has
  /// completed (callbacks included). Call StopAdmitting() first or this
  /// may never return under sustained load.
  void Drain();

  /// Queue + worker + cache + churn + latency metrics as one JSON object.
  Json MetricsJson() const;

  MetricsRegistry& metrics() { return metrics_; }
  EquilibriumCache::Stats cache_stats() const { return cache_.stats(); }

  /// The exact SolverOptions a query runs with (deadline aside). Exposed
  /// so tests can reproduce served results bit-for-bit offline.
  static SolverOptions MakeSolverOptions(const Query& query,
                                         uint32_t solver_threads);

  /// Dispatches `name` ("RMGP_b", ..., "RMGP_pq") to the matching solver.
  static Result<SolveResult> RunSolver(const std::string& name,
                                       const Instance& inst,
                                       const SolverOptions& options);

 private:
  /// Full query pipeline; runs on a worker (Submit) or inline (Solve).
  Result<QueryResult> Execute(
      const Query& query, std::chrono::steady_clock::time_point submit_time);

  /// Sharded-path body of Execute: ships the pinned snapshot to the fleet
  /// when its version changed, then drives one distributed query.
  Result<QueryResult> ExecuteDist(
      const Query& query, const std::shared_ptr<const SessionSnapshot>& snap,
      QueryResult out);

  /// Commit body; caller holds `session_mu_` exclusively.
  EpochResult CommitEpochLocked() RMGP_REQUIRES(session_mu_);

  const ServiceConfig config_;

  // Lock hierarchy (see DESIGN.md "Locking discipline"): session_mu_
  // before dist_mu_ before drain_mu_. No public path nests them today —
  // every method takes one, copies what it needs, and releases before the
  // next — but the declared order means a future nesting that inverts it
  // is rejected at compile time on the clang cells.
  mutable util::SharedMutex session_mu_
      RMGP_ACQUIRED_BEFORE(dist_mu_, drain_mu_);  // snapshot_, log_, index
  std::shared_ptr<const SessionSnapshot> snapshot_
      RMGP_GUARDED_BY(session_mu_);
  MutationLog log_ RMGP_GUARDED_BY(session_mu_);
  std::unique_ptr<GridIndex> user_index_ RMGP_GUARDED_BY(session_mu_);

  // Internally synchronized behind their own mutexes (leaves of the
  // hierarchy; they never call back into the service).
  mutable EquilibriumCache cache_;  // rmgp-lint: allow(no-unannotated-shared-field)
  // mutable: const observers (CountUsersIn, MetricsJson) still count
  // themselves; the registry is internally synchronized.
  mutable MetricsRegistry metrics_;  // rmgp-lint: allow(no-unannotated-shared-field)
  std::atomic<size_t> in_flight_{0};  // admission-control token count
  std::atomic<bool> admitting_{true};
  util::Mutex drain_mu_;
  util::CondVar drain_cv_;  // signalled when in_flight_ hits 0

  // Sharded deployment (ServiceConfig::dist_workers > 0). The coordinator
  // is single-threaded by design; dist queries serialize on dist_mu_,
  // which guards both the pointer and the coordinator state behind it.
  mutable util::Mutex dist_mu_ RMGP_ACQUIRED_BEFORE(drain_mu_);
  std::unique_ptr<shard::ShardCoordinator> coordinator_
      RMGP_GUARDED_BY(dist_mu_) RMGP_PT_GUARDED_BY(dist_mu_);
  bool dist_session_shipped_ RMGP_GUARDED_BY(dist_mu_) = false;
  uint64_t dist_version_shipped_ RMGP_GUARDED_BY(dist_mu_) = 0;

  // last member: dies (drains) first
  std::unique_ptr<ThreadPool> pool_;  // rmgp-lint: allow(no-unannotated-shared-field)
};

}  // namespace serve
}  // namespace rmgp

#endif  // RMGP_SERVE_SERVICE_H_
