#ifndef RMGP_SERVE_SERVICE_H_
#define RMGP_SERVE_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/objective.h"
#include "core/solver.h"
#include "graph/graph.h"
#include "serve/equilibrium_cache.h"
#include "serve/serve_metrics.h"
#include "spatial/grid_index.h"
#include "spatial/point.h"
#include "util/json.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace rmgp {
namespace serve {

/// Serving-session knobs.
struct ServiceConfig {
  uint32_t num_workers = 4;    ///< query worker threads
  size_t queue_capacity = 64;  ///< max in-flight queries (queued + running)
  size_t cache_capacity = 64;  ///< equilibrium cache entries (0 disables)
  uint32_t max_warm_edits = 4; ///< event edits a warm cache hit may patch
  uint32_t solver_threads = 2; ///< threads *inside* one solver run; results
                               ///< never depend on this (see SolverOptions)
};

/// One partitioning query: the classes P (event locations), the preference
/// α, the cost normalization CN, and serving controls.
struct Query {
  std::vector<Point> events;
  double alpha = 0.5;
  double cost_scale = 1.0;
  std::string solver = "RMGP_gt";  ///< RMGP_b/se/is/gt/all/pq
  uint64_t seed = 1;
  double deadline_ms = 0.0;  ///< 0 = no deadline; else anytime semantics
  bool use_cache = true;
  bool return_assignment = false;
};

/// How the equilibrium cache participated in a query.
enum class CacheOutcome { kDisabled, kMiss, kExactHit, kWarmHit };

const char* CacheOutcomeName(CacheOutcome outcome);

/// Everything a client gets back for one query.
struct QueryResult {
  Assignment assignment;  ///< filled iff Query::return_assignment
  CostBreakdown objective;
  bool converged = false;
  bool timed_out = false;  ///< deadline tripped; assignment is the anytime
                           ///< partial solution (still valid)
  uint32_t rounds = 0;
  CacheOutcome cache = CacheOutcome::kDisabled;
  double queue_ms = 0.0;  ///< submit -> worker pickup
  double solve_ms = 0.0;  ///< solver (or cache path) alone
  double total_ms = 0.0;  ///< submit -> completion
  uint64_t session_version = 0;  ///< session state the query saw
};

/// A long-lived serving session: one social graph plus the latest user
/// check-in locations, a bounded query queue feeding a worker pool, the
/// equilibrium cache, and a metrics registry. Queries are admitted or
/// rejected synchronously (FailedPrecondition when the queue is full) and
/// complete asynchronously via callback.
///
/// Thread-safety: Submit/Solve/UpdateUserLocation/CountUsersIn/MetricsJson
/// may be called concurrently. Session mutations (UpdateUserLocation) bump
/// an internal version; in-flight queries finish against the snapshot they
/// started with, and cache entries from older versions are dropped lazily.
class RmgpService {
 public:
  /// Called on a worker thread when the query finishes. The status is
  /// non-OK only for invalid queries (bad α, unknown solver, ...).
  using Callback = std::function<void(const Status&, const QueryResult&)>;

  /// Takes ownership of the session graph and check-in locations
  /// (`user_locations.size()` must equal the graph's node count).
  RmgpService(Graph graph, std::vector<Point> user_locations,
              const ServiceConfig& config);

  /// Drains in-flight queries.
  ~RmgpService();

  RmgpService(const RmgpService&) = delete;
  RmgpService& operator=(const RmgpService&) = delete;

  /// Admits the query into the request queue, or rejects it *now* with
  /// FailedPrecondition when `queue_capacity` queries are already in
  /// flight (the callback never runs for a rejected query).
  Status Submit(Query query, Callback done);

  /// Synchronous convenience: runs the query on the caller's thread with
  /// the same pipeline (cache, deadline, metrics) but no admission
  /// control.
  Result<QueryResult> Solve(const Query& query);

  /// Moves user v to a new check-in location: bumps the session version
  /// (invalidating cached equilibria) and rebuilds the user index.
  Status UpdateUserLocation(NodeId v, const Point& location);

  /// Users currently checked in inside `box` (spatial-index endpoint).
  size_t CountUsersIn(const BoundingBox& box) const;

  NodeId num_users() const { return graph_.num_nodes(); }
  uint64_t version() const;

  /// Queue + worker + cache + latency metrics as one JSON object.
  Json MetricsJson() const;

  MetricsRegistry& metrics() { return metrics_; }
  EquilibriumCache::Stats cache_stats() const { return cache_.stats(); }

  /// The exact SolverOptions a query runs with (deadline aside). Exposed
  /// so tests can reproduce served results bit-for-bit offline.
  static SolverOptions MakeSolverOptions(const Query& query,
                                         uint32_t solver_threads);

  /// Dispatches `name` ("RMGP_b", ..., "RMGP_pq") to the matching solver.
  static Result<SolveResult> RunSolver(const std::string& name,
                                       const Instance& inst,
                                       const SolverOptions& options);

 private:
  /// Full query pipeline; runs on a worker (Submit) or inline (Solve).
  Result<QueryResult> Execute(
      const Query& query, std::chrono::steady_clock::time_point submit_time);

  Graph graph_;
  ServiceConfig config_;

  mutable std::shared_mutex session_mu_;  // users_, user_index_, version_
  std::vector<Point> users_;
  std::unique_ptr<GridIndex> user_index_;
  uint64_t version_ = 0;

  mutable EquilibriumCache cache_;
  // mutable: const observers (CountUsersIn, MetricsJson) still count
  // themselves; the registry is internally synchronized.
  mutable MetricsRegistry metrics_;
  std::atomic<size_t> in_flight_{0};  // admission-control token count
  std::unique_ptr<ThreadPool> pool_;  // last member: dies (drains) first
};

}  // namespace serve
}  // namespace rmgp

#endif  // RMGP_SERVE_SERVICE_H_
