#ifndef RMGP_SERVE_SERVE_METRICS_H_
#define RMGP_SERVE_SERVE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "dist/network.h"
#include "util/annotated_mutex.h"
#include "util/json.h"

namespace rmgp {
namespace serve {

/// Sliding-window latency recorder: keeps the most recent `capacity`
/// samples in a ring buffer (plus running count/sum/max over *all*
/// samples) and computes percentile snapshots on demand via
/// util::Percentile. Recording is a mutex-protected store — cheap next to
/// the millisecond-scale solves it measures.
class LatencyHistogram {
 public:
  explicit LatencyHistogram(size_t capacity = size_t{1} << 14);

  void Record(double millis);

  struct Snapshot {
    uint64_t count = 0;   ///< lifetime samples (window may be smaller)
    double mean = 0.0;    ///< lifetime mean
    double max = 0.0;     ///< lifetime max
    double p50 = 0.0;     ///< percentiles over the current window
    double p90 = 0.0;
    double p99 = 0.0;
  };

  /// Copies the window and sorts it; call at dump frequency, not per query.
  Snapshot Snap() const;

  /// {"count":..,"mean_ms":..,"p50_ms":..,"p90_ms":..,"p99_ms":..,"max_ms":..}
  Json ToJson() const;

 private:
  mutable util::Mutex mu_;
  // ring buffer, size <= capacity_
  std::vector<double> window_ RMGP_GUARDED_BY(mu_);
  const size_t capacity_;
  size_t next_ RMGP_GUARDED_BY(mu_) = 0;      // ring cursor
  uint64_t count_ RMGP_GUARDED_BY(mu_) = 0;   // lifetime
  double sum_ RMGP_GUARDED_BY(mu_) = 0.0;
  double max_ RMGP_GUARDED_BY(mu_) = 0.0;
};

/// Named counters, gauges, and latency histograms for the serving layer.
/// Handles returned by Counter()/Gauge()/Histogram() are stable for the
/// registry's lifetime, so hot paths resolve a name once and then touch an
/// atomic. ToJson() emits the whole registry (insertion-ordered) for the
/// `metrics` endpoint and BENCH_serving.json.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Monotonically increasing event count (requests, hits, errors...).
  std::atomic<uint64_t>& Counter(std::string_view name);

  /// Instantaneous level (queue depth, cache size...); may go down.
  std::atomic<int64_t>& Gauge(std::string_view name);

  LatencyHistogram& Histogram(std::string_view name);

  /// {"counters":{...},"gauges":{...},"latency":{name:{count,..},...}}
  Json ToJson() const;

 private:
  mutable util::Mutex mu_;  // guards the name->slot maps, not the values
  std::vector<std::pair<std::string, std::unique_ptr<std::atomic<uint64_t>>>>
      counters_ RMGP_GUARDED_BY(mu_);
  std::vector<std::pair<std::string, std::unique_ptr<std::atomic<int64_t>>>>
      gauges_ RMGP_GUARDED_BY(mu_);
  std::vector<std::pair<std::string, std::unique_ptr<LatencyHistogram>>>
      histograms_ RMGP_GUARDED_BY(mu_);
};

/// Folds one transport measurement into `<prefix>.bytes` /
/// `<prefix>.messages` counters. Both the in-process simulation
/// (dist::RunDecentralizedGame's modeled accounting) and the real sharded
/// transport report through this, so the two deployments are compared on
/// the same counters.
void RecordTraffic(MetricsRegistry& metrics, std::string_view prefix,
                   const TrafficStats& traffic);

}  // namespace serve
}  // namespace rmgp

#endif  // RMGP_SERVE_SERVE_METRICS_H_
