#include "serve/serve_metrics.h"

#include <algorithm>

#include "util/stats.h"

namespace rmgp {
namespace serve {

LatencyHistogram::LatencyHistogram(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)) {}

void LatencyHistogram::Record(double millis) {
  util::MutexLock lock(mu_);
  if (window_.size() < capacity_) {
    window_.push_back(millis);
  } else {
    window_[next_] = millis;
  }
  next_ = (next_ + 1) % capacity_;
  ++count_;
  sum_ += millis;
  max_ = std::max(max_, millis);
}

LatencyHistogram::Snapshot LatencyHistogram::Snap() const {
  std::vector<double> window;
  Snapshot snap;
  {
    util::MutexLock lock(mu_);
    if (count_ == 0) return snap;
    window = window_;
    snap.count = count_;
    snap.mean = sum_ / static_cast<double>(count_);
    snap.max = max_;
  }
  snap.p50 = Percentile(window, 50.0);
  snap.p90 = Percentile(window, 90.0);
  snap.p99 = Percentile(std::move(window), 99.0);
  return snap;
}

Json LatencyHistogram::ToJson() const {
  const Snapshot snap = Snap();
  Json out = Json::Object();
  out.Set("count", snap.count);
  out.Set("mean_ms", snap.mean);
  out.Set("p50_ms", snap.p50);
  out.Set("p90_ms", snap.p90);
  out.Set("p99_ms", snap.p99);
  out.Set("max_ms", snap.max);
  return out;
}

std::atomic<uint64_t>& MetricsRegistry::Counter(std::string_view name) {
  util::MutexLock lock(mu_);
  for (auto& [key, value] : counters_) {
    if (key == name) return *value;
  }
  counters_.emplace_back(std::string(name),
                         std::make_unique<std::atomic<uint64_t>>(0));
  return *counters_.back().second;
}

std::atomic<int64_t>& MetricsRegistry::Gauge(std::string_view name) {
  util::MutexLock lock(mu_);
  for (auto& [key, value] : gauges_) {
    if (key == name) return *value;
  }
  gauges_.emplace_back(std::string(name),
                       std::make_unique<std::atomic<int64_t>>(0));
  return *gauges_.back().second;
}

LatencyHistogram& MetricsRegistry::Histogram(std::string_view name) {
  util::MutexLock lock(mu_);
  for (auto& [key, value] : histograms_) {
    if (key == name) return *value;
  }
  histograms_.emplace_back(std::string(name),
                           std::make_unique<LatencyHistogram>());
  return *histograms_.back().second;
}

Json MetricsRegistry::ToJson() const {
  util::MutexLock lock(mu_);
  Json counters = Json::Object();
  for (const auto& [key, value] : counters_) {
    counters.Set(key, value->load(std::memory_order_relaxed));
  }
  Json gauges = Json::Object();
  for (const auto& [key, value] : gauges_) {
    gauges.Set(key, static_cast<int64_t>(value->load(
                        std::memory_order_relaxed)));
  }
  Json latency = Json::Object();
  for (const auto& [key, value] : histograms_) {
    latency.Set(key, value->ToJson());
  }
  Json out = Json::Object();
  out.Set("counters", std::move(counters));
  out.Set("gauges", std::move(gauges));
  out.Set("latency", std::move(latency));
  return out;
}

void RecordTraffic(MetricsRegistry& metrics, std::string_view prefix,
                   const TrafficStats& traffic) {
  std::string name(prefix);
  metrics.Counter(name + ".bytes")
      .fetch_add(traffic.bytes, std::memory_order_relaxed);
  metrics.Counter(name + ".messages")
      .fetch_add(traffic.messages, std::memory_order_relaxed);
}

}  // namespace serve
}  // namespace rmgp
