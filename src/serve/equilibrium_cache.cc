#include "serve/equilibrium_cache.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "core/solver.h"

namespace rmgp {
namespace serve {
namespace {

/// Lexicographic (x, y) order. Exact double comparison is intentional:
/// repeated queries carry bit-identical coordinates, and two events that
/// differ in the last ulp *are* different classes.
bool PointLess(const Point& a, const Point& b) {
  return a.x != b.x ? a.x < b.x : a.y < b.y;
}

bool PointEq(const Point& a, const Point& b) {
  return a.x == b.x && a.y == b.y;
}

/// Indices 0..n-1 sorted by the coordinates they refer to.
std::vector<uint32_t> SortedOrder(const std::vector<Point>& pts) {
  std::vector<uint32_t> order(pts.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&pts](uint32_t a, uint32_t b) {
    return PointLess(pts[a], pts[b]);
  });
  return order;
}

/// For equal multisets: map[i] = index in `to` of the element matched with
/// `from[i]`. Duplicates pair up in sorted order, which is a bijection.
std::vector<uint32_t> MapEvents(const std::vector<Point>& from,
                                const std::vector<Point>& to) {
  const std::vector<uint32_t> from_order = SortedOrder(from);
  const std::vector<uint32_t> to_order = SortedOrder(to);
  std::vector<uint32_t> map(from.size());
  for (size_t i = 0; i < from.size(); ++i) {
    map[from_order[i]] = to_order[i];
  }
  return map;
}

}  // namespace

EquilibriumCache::EquilibriumCache(const Config& config) : config_(config) {}

size_t EquilibriumCache::EditDistance(const std::vector<Point>& a,
                                      const std::vector<Point>& b) {
  if (a.empty() || b.empty()) return SIZE_MAX;
  std::vector<Point> sa = a;
  std::vector<Point> sb = b;
  std::sort(sa.begin(), sa.end(), PointLess);
  std::sort(sb.begin(), sb.end(), PointLess);
  size_t i = 0;
  size_t j = 0;
  size_t edits = 0;
  while (i < sa.size() && j < sb.size()) {
    if (PointEq(sa[i], sb[j])) {
      ++i;
      ++j;
    } else if (PointLess(sa[i], sb[j])) {
      ++edits;  // only in a: would need RemoveEvent
      ++i;
    } else {
      ++edits;  // only in b: would need AddEvent
      ++j;
    }
  }
  return edits + (sa.size() - i) + (sb.size() - j);
}

std::optional<EquilibriumCache::Hit> EquilibriumCache::Lookup(
    uint64_t version, const std::vector<Point>& events, double alpha,
    double cost_scale) {
  util::MutexLock lock(mu_);
  ++stats_.lookups;

  // Drop entries computed under an *older* session: they missed an epoch
  // patch, so their equilibria — and their games' user snapshots — are
  // stale. Entries under a *newer* version belong to the current
  // generation; an in-flight query pinned to an old snapshot skips them
  // without dropping them.
  for (size_t e = entries_.size(); e-- > 0;) {
    if (entries_[e].version < version) {
      entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(e));
      ++stats_.invalidations;
    }
  }

  size_t best = SIZE_MAX;
  size_t best_edits = SIZE_MAX;
  for (size_t e = 0; e < entries_.size(); ++e) {
    const Entry& entry = entries_[e];
    if (entry.version != version) continue;
    if (entry.alpha != alpha || entry.cost_scale != cost_scale) continue;
    const size_t edits = EditDistance(entry.game->events(), events);
    if (edits < best_edits) {
      best_edits = edits;
      best = e;
    }
  }
  if (best == SIZE_MAX || best_edits > config_.max_warm_edits) {
    ++stats_.misses;
    return std::nullopt;
  }

  Entry& entry = entries_[best];
  if (best_edits > 0) {
    // Warm patch: add the query's new events, then remove the vanished
    // ones (additions first so the class count never hits zero). Each
    // edit re-settles only the perturbed neighborhood.
    std::vector<Point> game_events = entry.game->events();
    std::sort(game_events.begin(), game_events.end(), PointLess);
    std::vector<Point> query_events = events;
    std::sort(query_events.begin(), query_events.end(), PointLess);
    std::vector<Point> additions;
    std::vector<Point> removals;
    size_t i = 0;
    size_t j = 0;
    while (i < game_events.size() && j < query_events.size()) {
      if (PointEq(game_events[i], query_events[j])) {
        ++i;
        ++j;
      } else if (PointLess(game_events[i], query_events[j])) {
        removals.push_back(game_events[i++]);
      } else {
        additions.push_back(query_events[j++]);
      }
    }
    removals.insert(removals.end(), game_events.begin() + i,
                    game_events.end());
    additions.insert(additions.end(), query_events.begin() + j,
                     query_events.end());

    bool failed = false;
    for (const Point& p : additions) {
      if (!entry.game->AddEvent(p).ok()) {
        failed = true;
        break;
      }
    }
    // RemoveEvent renumbers by swap-remove, so re-locate each victim by
    // coordinates after every removal.
    for (size_t r = 0; !failed && r < removals.size(); ++r) {
      const std::vector<Point>& cur = entry.game->events();
      ClassId victim = static_cast<ClassId>(cur.size());
      for (ClassId p = 0; p < cur.size(); ++p) {
        if (PointEq(cur[p], removals[r])) {
          victim = p;
          break;
        }
      }
      if (victim == cur.size() || !entry.game->RemoveEvent(victim).ok()) {
        failed = true;
      }
    }
    if (failed) {
      // The game is in an unknown intermediate state; drop it.
      entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(best));
      ++stats_.misses;
      return std::nullopt;
    }
    entry.events = events;
  }

  // The game's event numbering drifts from the query's (insertion order,
  // swap-removes); remap the assignment into the query's numbering.
  const std::vector<uint32_t> map = MapEvents(entry.game->events(), events);
  const Assignment& game_assignment = entry.game->assignment();
  Hit hit;
  hit.warm = best_edits > 0;
  hit.assignment.resize(game_assignment.size());
  for (size_t v = 0; v < game_assignment.size(); ++v) {
    hit.assignment[v] = map[game_assignment[v]];
  }
  entry.last_used = ++tick_;
  if (hit.warm) {
    ++stats_.warm_hits;
  } else {
    ++stats_.exact_hits;
  }
  return hit;
}

void EquilibriumCache::Insert(uint64_t version,
                              std::shared_ptr<const Graph> graph,
                              const std::vector<Point>& users,
                              const std::vector<Point>& events, double alpha,
                              double cost_scale,
                              const Assignment& assignment) {
  if (config_.capacity == 0) return;
  util::MutexLock lock(mu_);
  for (Entry& entry : entries_) {
    if (entry.version == version && entry.alpha == alpha &&
        entry.cost_scale == cost_scale &&
        EditDistance(entry.game->events(), events) == 0) {
      entry.last_used = ++tick_;
      return;  // already cached
    }
  }

  // Warm-started creation: `assignment` is already an equilibrium, so the
  // game settles immediately — the cost is the O(|V|·k) table build. The
  // game co-owns the graph, so a stale query's version stays alive exactly
  // as long as its entry does.
  SolverOptions options;
  options.init = InitPolicy::kGiven;
  options.order = OrderPolicy::kNodeId;
  options.warm_start = assignment;
  Result<std::unique_ptr<DynamicGame>> game = DynamicGame::Create(
      std::move(graph), users, events, alpha, cost_scale, options);
  if (!game.ok()) return;  // cache stays correct, just colder

  if (entries_.size() >= config_.capacity) {
    size_t lru = 0;
    for (size_t e = 1; e < entries_.size(); ++e) {
      if (entries_[e].last_used < entries_[lru].last_used) lru = e;
    }
    entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(lru));
    ++stats_.evictions;
  }

  Entry entry;
  entry.alpha = alpha;
  entry.cost_scale = cost_scale;
  entry.version = version;
  entry.events = events;
  entry.game = std::move(game).value();
  entry.last_used = ++tick_;
  entries_.push_back(std::move(entry));
  ++stats_.insertions;
}

EquilibriumCache::PatchResult EquilibriumCache::PatchEpoch(
    uint64_t new_version, const DynamicGame::GraphEpochUpdate& update) {
  util::MutexLock lock(mu_);
  PatchResult result;
  for (size_t e = entries_.size(); e-- > 0;) {
    Entry& entry = entries_[e];
    if (entry.version >= new_version) continue;  // already current (or ahead)
    bool ok = false;
    if (entry.version + 1 == new_version) {
      // Exactly one epoch behind: carry it forward in place. ApplyEpoch
      // re-settles only the touched neighborhood, so surviving entries
      // keep their warm tables.
      ok = entry.game->ApplyEpoch(update).ok();
    }
    if (ok) {
      entry.version = new_version;
      ++result.patched;
      ++stats_.epoch_patched;
    } else {
      entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(e));
      ++result.dropped;
      ++stats_.epoch_dropped;
    }
  }
  return result;
}

void EquilibriumCache::Clear() {
  util::MutexLock lock(mu_);
  stats_.invalidations += entries_.size();
  entries_.clear();
}

EquilibriumCache::Stats EquilibriumCache::stats() const {
  util::MutexLock lock(mu_);
  return stats_;
}

size_t EquilibriumCache::size() const {
  util::MutexLock lock(mu_);
  return entries_.size();
}

}  // namespace serve
}  // namespace rmgp
