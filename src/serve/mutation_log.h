#ifndef RMGP_SERVE_MUTATION_LOG_H_
#define RMGP_SERVE_MUTATION_LOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_delta.h"
#include "spatial/point.h"
#include "util/status.h"

namespace rmgp {
namespace serve {

/// One immutable version of a serving session: the social graph, the
/// latest check-in locations, and which users are active (tombstoned
/// users stay in the graph as isolated vertices so ids never shift).
/// Snapshots are shared_ptr-held: in-flight queries pin the version they
/// started against while epoch commits swap in the next one.
struct SessionSnapshot {
  std::shared_ptr<const Graph> graph;
  std::vector<Point> users;  ///< size graph->num_nodes()
  std::vector<char> active;  ///< size graph->num_nodes(); 0 = tombstoned
  uint64_t version = 0;
};

/// The mutation vocabulary of a churn-tolerant session.
enum class MutationKind : uint8_t {
  kAddUser,       ///< append a new user, or reactivate a tombstoned one
  kRemoveUser,    ///< tombstone a user and drop its edges
  kAddEdge,       ///< new friendship {u,v} with weight
  kRemoveEdge,    ///< drop friendship {u,v}
  kReweightEdge,  ///< change the tie strength of {u,v}
  kMoveUser,      ///< check-in: user moved to a new location
};

const char* MutationKindName(MutationKind kind);

/// Parses the wire spelling ("add_user", "move_user", ...).
Result<MutationKind> ParseMutationKind(std::string_view name);

/// One client mutation.
struct Mutation {
  MutationKind kind = MutationKind::kMoveUser;
  NodeId user = 0;        ///< kRemoveUser/kMoveUser/kAddUser-reactivate
  bool has_user = false;  ///< kAddUser: reactivate `user` vs. append
  NodeId u = 0;           ///< edge ops
  NodeId v = 0;
  Weight weight = 1.0;    ///< kAddEdge/kReweightEdge
  Point location{};       ///< kAddUser/kMoveUser
};

/// Validated, epoch-batched mutation log over a SessionSnapshot. Appends
/// validate each op against the *pending view* (base snapshot ⊕ earlier
/// pending ops) and reject contradictions — removing a nonexistent edge,
/// moving a tombstoned user — at enqueue time, so an epoch commit can
/// never fail. Commit() materializes the next snapshot (graph built via
/// GraphDelta, spatial/user state patched) and re-bases the log; an epoch
/// whose edits net to zero returns nullopt and does NOT bump the version.
///
/// Not thread-safe; RmgpService serializes access under its session lock.
class MutationLog {
 public:
  explicit MutationLog(std::shared_ptr<const SessionSnapshot> base);

  /// Validates and enqueues. Returns the affected user id (for kAddUser
  /// appends this is the newly assigned id, already usable in follow-up
  /// mutations of the same epoch).
  Result<NodeId> Append(const Mutation& m);

  /// Accepted-but-uncommitted op count (net-cancelling ops still count —
  /// this drives epoch-size auto-commit, not dirtiness).
  size_t pending_ops() const { return pending_ops_; }

  /// Everything an epoch commit produces, shaped for the three consumers:
  /// the service snapshot swap, DynamicGame::ApplyEpoch (graph/moved/
  /// appended/touched), and the GridIndex patch (moved/appended/
  /// deactivated/reactivated).
  struct Epoch {
    std::shared_ptr<const SessionSnapshot> next;
    /// Vertices whose adjacency changed, incl. every appended id; sorted.
    std::vector<NodeId> touched;
    /// Location changes of existing ids (net moves ∪ reactivations).
    std::vector<std::pair<NodeId, Point>> moved;
    /// Locations of appended ids, in id order.
    std::vector<Point> appended;
    /// Users tombstoned this epoch.
    std::vector<NodeId> deactivated;
    /// Tombstones brought back (subset of `moved` by id).
    std::vector<std::pair<NodeId, Point>> reactivated;
    /// Net state changes: |touched| + |moved| + |deactivated|.
    size_t net_changes = 0;
  };

  /// Builds the next snapshot (version + 1) from the pending edits and
  /// re-bases the log onto it. Returns nullopt — and stays on the current
  /// version — when the pending edits net to zero.
  std::optional<Epoch> Commit();

  const std::shared_ptr<const SessionSnapshot>& base() const { return base_; }

 private:
  NodeId base_nodes() const { return base_->graph->num_nodes(); }

  /// Is `v` active in the pending view?
  bool ActiveInView(NodeId v) const;

  std::shared_ptr<const SessionSnapshot> base_;
  GraphDelta delta_;  ///< over base_->graph (kept alive by base_)
  size_t pending_ops_ = 0;
  /// Net location changes of active base users (exact-same-location moves
  /// are dropped, so presence here means a real change).
  std::map<NodeId, Point> moves_;
  std::vector<Point> appended_;          ///< locations of appended ids
  std::map<NodeId, Point> reactivated_;  ///< base tombstones coming back
  std::set<NodeId> deactivated_;         ///< active users removed this epoch
};

}  // namespace serve
}  // namespace rmgp

#endif  // RMGP_SERVE_MUTATION_LOG_H_
