#ifndef RMGP_NET_FRAME_H_
#define RMGP_NET_FRAME_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace rmgp {
namespace net {

/// Length-prefixed binary framing: every message on the wire is
///
///   [u32 payload_len][u32 type][payload_len bytes]
///
/// all little-endian. The 8-byte header is the only transport overhead;
/// payload encodings reuse the per-entry sizes of dist/network.h's wire::
/// constants (see shard/messages.h), so the measured TrafficStats line up
/// with what the simulation used to charge.
inline constexpr size_t kFrameHeaderBytes = 8;

/// Upper bound on a single payload — a corrupted length prefix must not
/// drive a multi-gigabyte allocation.
inline constexpr uint32_t kMaxFramePayload = uint32_t{1} << 30;

/// A decoded frame: the message type plus its raw payload.
struct Frame {
  uint32_t type = 0;
  std::string payload;
};

/// Outcome of one TryExtractFrame step over a receive buffer.
enum class ExtractResult {
  kFrame,     ///< one complete frame extracted and consumed from the buffer
  kNeedMore,  ///< header or payload still incomplete; buffer untouched
  kCorrupt,   ///< length prefix exceeds kMaxFramePayload; tear the
              ///< connection down (the stream cannot be resynchronized)
};

/// Pure incremental frame extraction: the whole framing state machine with
/// no socket attached, so Connection::ReadFrame and the fuzzer exercise
/// the identical code. On kFrame the decoded frame is in *frame, the
/// consumed byte count (header + payload) is added to *consumed when
/// given, and those bytes are erased from `buf`; any other result leaves
/// `buf` unchanged. Never allocates more than the declared payload length,
/// which is bounded by kMaxFramePayload.
inline ExtractResult TryExtractFrame(std::string& buf, Frame* frame,
                                     size_t* consumed = nullptr) {
  if (buf.size() < kFrameHeaderBytes) return ExtractResult::kNeedMore;
  const unsigned char* p = reinterpret_cast<const unsigned char*>(buf.data());
  const uint32_t len = static_cast<uint32_t>(p[0]) |
                       (static_cast<uint32_t>(p[1]) << 8) |
                       (static_cast<uint32_t>(p[2]) << 16) |
                       (static_cast<uint32_t>(p[3]) << 24);
  const uint32_t type = static_cast<uint32_t>(p[4]) |
                        (static_cast<uint32_t>(p[5]) << 8) |
                        (static_cast<uint32_t>(p[6]) << 16) |
                        (static_cast<uint32_t>(p[7]) << 24);
  if (len > kMaxFramePayload) return ExtractResult::kCorrupt;
  const size_t total = kFrameHeaderBytes + len;
  if (buf.size() < total) return ExtractResult::kNeedMore;
  frame->type = type;
  frame->payload = buf.substr(kFrameHeaderBytes, len);
  buf.erase(0, total);
  if (consumed != nullptr) *consumed += total;
  return ExtractResult::kFrame;
}

// ---- Little-endian scalar append/read helpers. All fixed-width message
// encoding in net/shard goes through these, so the wire format is
// host-endianness independent.

inline void PutU32(std::string& out, uint32_t v) {
  char b[4];
  b[0] = static_cast<char>(v & 0xff);
  b[1] = static_cast<char>((v >> 8) & 0xff);
  b[2] = static_cast<char>((v >> 16) & 0xff);
  b[3] = static_cast<char>((v >> 24) & 0xff);
  out.append(b, 4);
}

inline void PutU64(std::string& out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xffffffffu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

inline void PutF64(std::string& out, double v) {
  // Doubles travel as their IEEE-754 bit pattern: the sharded game must
  // reproduce the in-process game's Φ bit-for-bit, so no narrowing.
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

/// Bounds-checked sequential reader over a received payload.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool U32(uint32_t* out) {
    if (pos_ + 4 > data_.size()) return false;
    const unsigned char* p =
        reinterpret_cast<const unsigned char*>(data_.data()) + pos_;
    *out = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    pos_ += 4;
    return true;
  }

  bool U64(uint64_t* out) {
    uint32_t lo = 0, hi = 0;
    if (!U32(&lo) || !U32(&hi)) return false;
    *out = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
    return true;
  }

  bool F64(double* out) {
    uint64_t bits = 0;
    if (!U64(&bits)) return false;
    std::memcpy(out, &bits, sizeof(*out));
    return true;
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace net
}  // namespace rmgp

#endif  // RMGP_NET_FRAME_H_
