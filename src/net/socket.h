#ifndef RMGP_NET_SOCKET_H_
#define RMGP_NET_SOCKET_H_

#include <cstdint>
#include <string>

#include "dist/network.h"  // TrafficStats
#include "net/frame.h"
#include "util/status.h"

namespace rmgp {
namespace net {

/// A connected stream socket carrying length-prefixed frames (net/frame.h).
/// The fd is non-blocking; every operation is poll-driven with an explicit
/// millisecond deadline, so callers never block indefinitely and a peer
/// death surfaces as a Status instead of a hang:
///
///   - DeadlineExceeded: the deadline passed (peer alive but slow/idle)
///   - Unavailable: the peer closed or reset the connection
///
/// Traffic is measured at the frame layer (payload + 8-byte header per
/// frame, one message per frame) into dist::TrafficStats, replacing the
/// simulation's modeled byte accounting with numbers from the wire.
///
/// Not thread-safe: one Connection belongs to one thread at a time.
class Connection {
 public:
  Connection() = default;
  ~Connection();
  Connection(Connection&& other) noexcept;
  Connection& operator=(Connection&& other) noexcept;
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Connects to host:port, retrying refused connections until the
  /// deadline (the listener may still be coming up).
  static Result<Connection> Dial(const std::string& host, uint16_t port,
                                 int timeout_ms);

  /// Writes one frame and flushes the send buffer fully.
  Status SendFrame(uint32_t type, const std::string& payload, int timeout_ms);

  /// Reads the next complete frame.
  Result<Frame> ReadFrame(int timeout_ms);

  bool open() const { return fd_ >= 0; }
  void Close();

  const TrafficStats& sent() const { return sent_; }
  const TrafficStats& received() const { return received_; }

 private:
  friend class Listener;
  explicit Connection(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string recv_buf_;  // bytes received but not yet framed
  TrafficStats sent_;
  TrafficStats received_;
};

/// A listening TCP socket bound to 127.0.0.1 (the deployment target is
/// coordinator + N workers on one host; bind-all stays out of scope).
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds and listens; port 0 picks an ephemeral port (see port()).
  static Result<Listener> Bind(uint16_t port);

  uint16_t port() const { return port_; }
  bool open() const { return fd_ >= 0; }

  /// Accepts one connection (DeadlineExceeded if none arrives in time).
  Result<Connection> Accept(int timeout_ms);

  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

/// Sleeps the calling thread for `ms` without std::this_thread (blocked by
/// the project's no-blocking-io lint outside sanctioned files); backoff
/// loops in src/net and src/shard route through here.
void SleepMs(int ms);

}  // namespace net
}  // namespace rmgp

#endif  // RMGP_NET_SOCKET_H_
