// The transport layer's single sanctioned syscall path: every socket
// operation in the sharded deployment — bind/listen/accept on the
// coordinator, connect on the workers, poll-driven send/recv everywhere —
// funnels through this translation unit. src/net and src/shard fall under
// rmgp_lint's no-blocking-io rule; only this file may touch the
// primitives, and every one of them runs on a non-blocking fd under an
// explicit poll() deadline, so nothing here can block indefinitely.
// rmgp-lint: sanctioned-file(no-blocking-io)

#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <utility>

namespace rmgp {
namespace net {
namespace {

using Clock = std::chrono::steady_clock;

int RemainingMs(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  if (left < 0) return 0;
  if (left > INT32_MAX) return INT32_MAX;
  return static_cast<int>(left);
}

Status MakeNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(std::string("fcntl: ") + std::strerror(errno));
  }
  return Status::OK();
}

void TuneStream(int fd) {
  // Round-trip latency dominates the per-color protocol; never batch the
  // small command/ack frames behind Nagle.
  int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Polls `fd` for `events` until the deadline. OK = ready, DeadlineExceeded
/// = timed out, Unavailable = hangup/error on the fd.
Status PollFor(int fd, short events, Clock::time_point deadline) {
  for (;;) {
    pollfd p{};
    p.fd = fd;
    p.events = events;
    const int rc = poll(&p, 1, RemainingMs(deadline));
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("poll: ") + std::strerror(errno));
    }
    if (rc == 0) return Status::DeadlineExceeded("socket wait timed out");
    if (p.revents & (events | POLLHUP | POLLERR)) return Status::OK();
  }
}

sockaddr_in LoopbackAddr(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  }
  return addr;
}

}  // namespace

void SleepMs(int ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(ms);
  for (;;) {
    const int left = RemainingMs(deadline);
    if (left <= 0) return;
    if (poll(nullptr, 0, left) == 0) return;  // retried only on EINTR
  }
}

// ---- Connection

Connection::~Connection() { Close(); }

Connection::Connection(Connection&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      recv_buf_(std::move(other.recv_buf_)),
      sent_(other.sent_),
      received_(other.received_) {}

Connection& Connection::operator=(Connection&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    recv_buf_ = std::move(other.recv_buf_);
    sent_ = other.sent_;
    received_ = other.received_;
  }
  return *this;
}

void Connection::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Result<Connection> Connection::Dial(const std::string& host, uint16_t port,
                                    int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::Internal(std::string("socket: ") + std::strerror(errno));
    }
    Connection conn(fd);
    if (Status s = MakeNonBlocking(fd); !s.ok()) return s;
    sockaddr_in addr = LoopbackAddr(host, port);
    int rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno == EINPROGRESS) {
      if (Status s = PollFor(fd, POLLOUT, deadline); !s.ok()) return s;
      int err = 0;
      socklen_t len = sizeof(err);
      if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
        err = errno;
      }
      rc = err == 0 ? 0 : -1;
      errno = err;
    }
    if (rc == 0) {
      TuneStream(fd);
      return conn;
    }
    // The listener may still be coming up (worker launched before the
    // coordinator finished binding): back off briefly and retry refused
    // connections until the deadline.
    if (errno != ECONNREFUSED || RemainingMs(deadline) == 0) {
      return Status::Unavailable(std::string("connect ") + host + ": " +
                                 std::strerror(errno));
    }
    conn.Close();
    SleepMs(RemainingMs(deadline) < 20 ? RemainingMs(deadline) : 20);
  }
}

Status Connection::SendFrame(uint32_t type, const std::string& payload,
                             int timeout_ms) {
  if (fd_ < 0) return Status::Unavailable("connection closed");
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload too large");
  }
  std::string buf;
  buf.reserve(kFrameHeaderBytes + payload.size());
  PutU32(buf, static_cast<uint32_t>(payload.size()));
  PutU32(buf, type);
  buf.append(payload);

  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  size_t off = 0;
  while (off < buf.size()) {
    const ssize_t n =
        send(fd_, buf.data() + off, buf.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (Status s = PollFor(fd_, POLLOUT, deadline); !s.ok()) return s;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::Unavailable(std::string("send: ") +
                               (n == 0 ? "peer closed" : std::strerror(errno)));
  }
  sent_.Add(buf.size());
  return Status::OK();
}

Result<Frame> Connection::ReadFrame(int timeout_ms) {
  if (fd_ < 0) return Status::Unavailable("connection closed");
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    // Frame complete in the buffer?
    Frame frame;
    size_t consumed = 0;
    switch (TryExtractFrame(recv_buf_, &frame, &consumed)) {
      case ExtractResult::kFrame:
        received_.Add(consumed);
        return frame;
      case ExtractResult::kCorrupt:
        return Status::Internal("oversized frame on the wire");
      case ExtractResult::kNeedMore:
        break;
    }
    char chunk[64 * 1024];
    const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      recv_buf_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      return Status::Unavailable("peer closed the connection");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (Status s = PollFor(fd_, POLLIN, deadline); !s.ok()) return s;
      continue;
    }
    if (errno == EINTR) continue;
    return Status::Unavailable(std::string("recv: ") + std::strerror(errno));
  }
}

// ---- Listener

Listener::~Listener() { Close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), port_(other.port_) {}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = other.port_;
  }
  return *this;
}

void Listener::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Result<Listener> Listener::Bind(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  Listener listener;
  listener.fd_ = fd;
  int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = LoopbackAddr("127.0.0.1", port);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status::Unavailable(std::string("bind: ") + std::strerror(errno));
  }
  if (listen(fd, 64) != 0) {
    return Status::Internal(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Status::Internal(std::string("getsockname: ") +
                            std::strerror(errno));
  }
  listener.port_ = ntohs(addr.sin_port);
  if (Status s = MakeNonBlocking(fd); !s.ok()) return s;
  return listener;
}

Result<Connection> Listener::Accept(int timeout_ms) {
  if (fd_ < 0) return Status::Unavailable("listener closed");
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const int fd = accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      Connection conn(fd);
      if (Status s = MakeNonBlocking(fd); !s.ok()) return s;
      TuneStream(fd);
      return conn;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (Status s = PollFor(fd_, POLLIN, deadline); !s.ok()) return s;
      continue;
    }
    if (errno == EINTR) continue;
    return Status::Internal(std::string("accept: ") + std::strerror(errno));
  }
}

}  // namespace net
}  // namespace rmgp
