#ifndef RMGP_PARTITION_KWAY_H_
#define RMGP_PARTITION_KWAY_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace rmgp {

/// Options for the multilevel k-way partitioner ("mini-METIS"), the
/// substrate of the Metis–Hungarian benchmark (§6.1). The paper computes a
/// *minimum unbalanced* k-way social cut; a loose `imbalance` reproduces
/// that behavior.
struct PartitionOptions {
  uint32_t num_parts = 2;
  /// Maximum part weight as a multiple of the average (1.0 = perfectly
  /// balanced). The MH benchmark uses a loose bound since RMGP classes have
  /// no size constraints.
  double imbalance = 1.5;
  uint64_t seed = 17;
  /// Coarsening stops once the graph has at most
  /// max(min_coarse_nodes, coarse_nodes_per_part · k) nodes.
  uint32_t min_coarse_nodes = 128;
  uint32_t coarse_nodes_per_part = 30;
  /// Boundary-refinement passes per level.
  uint32_t refine_passes = 8;
};

/// A k-way node partition and its edge cut.
struct PartitionResult {
  std::vector<uint32_t> part;  // part id per node, in [0, num_parts)
  double cut_weight = 0.0;     // Σ w_e over edges crossing parts
};

/// Total weight of edges whose endpoints lie in different parts.
double CutWeight(const Graph& g, const std::vector<uint32_t>& part);

/// Multilevel k-way partitioning: heavy-edge-matching coarsening, greedy
/// region-growing initial partition on the coarsest graph, and greedy
/// boundary Kernighan–Lin refinement during uncoarsening.
Result<PartitionResult> KWayPartition(const Graph& g,
                                      const PartitionOptions& options);

}  // namespace rmgp

#endif  // RMGP_PARTITION_KWAY_H_
