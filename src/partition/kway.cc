#include "partition/kway.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>

#include "util/logging.h"
#include "util/rng.h"

namespace rmgp {
namespace {

/// One level of the multilevel hierarchy.
struct Level {
  Graph graph;
  std::vector<uint64_t> node_weight;   // merged fine-node count
  std::vector<NodeId> fine_to_coarse;  // size of the finer level's |V|
};

/// Heavy-edge matching: each unmatched node pairs with its unmatched
/// neighbor of maximum edge weight. Returns coarse node count and the
/// fine→coarse map.
NodeId HeavyEdgeMatching(const Graph& g, Rng* rng,
                         std::vector<NodeId>* fine_to_coarse) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);

  constexpr NodeId kUnmatched = UINT32_MAX;
  std::vector<NodeId> match(n, kUnmatched);
  for (NodeId v : order) {
    if (match[v] != kUnmatched) continue;
    NodeId best = kUnmatched;
    double best_w = -1.0;
    for (const Neighbor& nb : g.neighbors(v)) {
      if (match[nb.node] == kUnmatched && nb.node != v &&
          nb.weight > best_w) {
        best_w = nb.weight;
        best = nb.node;
      }
    }
    if (best != kUnmatched) {
      match[v] = best;
      match[best] = v;
    } else {
      match[v] = v;  // stays single
    }
  }

  fine_to_coarse->assign(n, UINT32_MAX);
  NodeId next = 0;
  for (NodeId v = 0; v < n; ++v) {
    if ((*fine_to_coarse)[v] != UINT32_MAX) continue;
    (*fine_to_coarse)[v] = next;
    const NodeId m = match[v];
    if (m != v && m != kUnmatched) (*fine_to_coarse)[m] = next;
    ++next;
  }
  return next;
}

Level Coarsen(const Graph& g, const std::vector<uint64_t>& node_weight,
              Rng* rng) {
  Level out;
  const NodeId coarse_n = HeavyEdgeMatching(g, rng, &out.fine_to_coarse);
  out.node_weight.assign(coarse_n, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    out.node_weight[out.fine_to_coarse[v]] += node_weight[v];
  }
  GraphBuilder b(coarse_n);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const Neighbor& nb : g.neighbors(v)) {
      if (v < nb.node) {
        const NodeId cu = out.fine_to_coarse[v];
        const NodeId cv = out.fine_to_coarse[nb.node];
        if (cu != cv) {
          RMGP_CHECK(b.AddEdge(cu, cv, nb.weight).ok());
        }
      }
    }
  }
  out.graph = std::move(b).Build();
  return out;
}

/// Greedy graph growing: k spread-out seeds, BFS frontier assignment with
/// the lightest part expanding first.
std::vector<uint32_t> InitialPartition(const Graph& g,
                                       const std::vector<uint64_t>& nw,
                                       uint32_t k, Rng* rng) {
  const NodeId n = g.num_nodes();
  std::vector<uint32_t> part(n, UINT32_MAX);
  if (k >= n) {
    for (NodeId v = 0; v < n; ++v) part[v] = v % k;
    return part;
  }
  std::vector<uint64_t> weight(k, 0);
  std::vector<std::queue<NodeId>> frontier(k);
  // Seeds: random distinct nodes.
  std::vector<uint32_t> seeds = rng->SampleWithoutReplacement(n, k);
  for (uint32_t p = 0; p < k; ++p) {
    part[seeds[p]] = p;
    weight[p] += nw[seeds[p]];
    frontier[p].push(seeds[p]);
  }
  NodeId assigned = k;
  while (assigned < n) {
    // The lightest part with a non-empty frontier grows next.
    uint32_t best = UINT32_MAX;
    for (uint32_t p = 0; p < k; ++p) {
      if (!frontier[p].empty() &&
          (best == UINT32_MAX || weight[p] < weight[best])) {
        best = p;
      }
    }
    if (best == UINT32_MAX) {
      // Disconnected remainder: seed the lightest part somewhere fresh.
      best = static_cast<uint32_t>(
          std::min_element(weight.begin(), weight.end()) - weight.begin());
      for (NodeId v = 0; v < n; ++v) {
        if (part[v] == UINT32_MAX) {
          part[v] = best;
          weight[best] += nw[v];
          frontier[best].push(v);
          ++assigned;
          break;
        }
      }
      continue;
    }
    // Pop until we find a frontier node with an unassigned neighbor.
    bool grew = false;
    while (!frontier[best].empty() && !grew) {
      const NodeId v = frontier[best].front();
      bool exhausted = true;
      for (const Neighbor& nb : g.neighbors(v)) {
        if (part[nb.node] == UINT32_MAX) {
          part[nb.node] = best;
          weight[best] += nw[nb.node];
          frontier[best].push(nb.node);
          ++assigned;
          grew = true;
          exhausted = false;
          break;
        }
      }
      if (exhausted) frontier[best].pop();
    }
  }
  return part;
}

/// Greedy boundary refinement: move nodes to the adjacent part with the
/// highest positive gain, subject to the balance bound.
void Refine(const Graph& g, const std::vector<uint64_t>& nw, uint32_t k,
            double max_part_weight, uint32_t passes,
            std::vector<uint32_t>* part) {
  const NodeId n = g.num_nodes();
  std::vector<uint64_t> weight(k, 0);
  for (NodeId v = 0; v < n; ++v) weight[(*part)[v]] += nw[v];

  std::vector<double> conn(k, 0.0);
  std::vector<uint32_t> touched;
  for (uint32_t pass = 0; pass < passes; ++pass) {
    uint64_t moves = 0;
    for (NodeId v = 0; v < n; ++v) {
      const uint32_t from = (*part)[v];
      touched.clear();
      for (const Neighbor& nb : g.neighbors(v)) {
        const uint32_t p = (*part)[nb.node];
        if (conn[p] == 0.0) touched.push_back(p);
        conn[p] += nb.weight;
      }
      double best_gain = 0.0;
      uint32_t best_part = from;
      for (uint32_t p : touched) {
        if (p == from) continue;
        const double gain = conn[p] - conn[from];
        if (gain > best_gain + 1e-12 &&
            static_cast<double>(weight[p] + nw[v]) <= max_part_weight) {
          best_gain = gain;
          best_part = p;
        }
      }
      for (uint32_t p : touched) conn[p] = 0.0;
      if (best_part != from) {
        weight[from] -= nw[v];
        weight[best_part] += nw[v];
        (*part)[v] = best_part;
        ++moves;
      }
    }
    if (moves == 0) break;
  }
}

}  // namespace

double CutWeight(const Graph& g, const std::vector<uint32_t>& part) {
  RMGP_CHECK_EQ(part.size(), g.num_nodes());
  double cut = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const Neighbor& nb : g.neighbors(v)) {
      if (v < nb.node && part[v] != part[nb.node]) cut += nb.weight;
    }
  }
  return cut;
}

Result<PartitionResult> KWayPartition(const Graph& g,
                                      const PartitionOptions& options) {
  const uint32_t k = options.num_parts;
  if (k == 0) return Status::InvalidArgument("num_parts must be positive");
  if (options.imbalance < 1.0) {
    return Status::InvalidArgument("imbalance must be >= 1.0");
  }
  PartitionResult result;
  if (g.num_nodes() == 0) return result;
  if (k == 1) {
    result.part.assign(g.num_nodes(), 0);
    return result;
  }

  Rng rng(options.seed);

  // ---- Coarsening phase.
  std::vector<Level> levels;
  {
    Level base;
    base.graph = g;  // copy of the CSR arrays
    base.node_weight.assign(g.num_nodes(), 1);
    levels.push_back(std::move(base));
  }
  const NodeId stop_at = std::max<NodeId>(
      options.min_coarse_nodes,
      static_cast<NodeId>(options.coarse_nodes_per_part) * k);
  while (levels.back().graph.num_nodes() > stop_at) {
    Level next =
        Coarsen(levels.back().graph, levels.back().node_weight, &rng);
    // Bail if matching stops shrinking the graph (e.g., star graphs).
    if (next.graph.num_nodes() >
        0.95 * static_cast<double>(levels.back().graph.num_nodes())) {
      break;
    }
    levels.push_back(std::move(next));
  }

  // ---- Initial partition on the coarsest level.
  const Level& coarsest = levels.back();
  const uint64_t total_weight = g.num_nodes();
  const double max_part_weight =
      options.imbalance * static_cast<double>(total_weight) / k;
  std::vector<uint32_t> part =
      InitialPartition(coarsest.graph, coarsest.node_weight, k, &rng);
  Refine(coarsest.graph, coarsest.node_weight, k, max_part_weight,
         options.refine_passes, &part);

  // ---- Uncoarsening with refinement.
  for (size_t li = levels.size(); li-- > 1;) {
    const Level& level = levels[li];
    const Level& finer = levels[li - 1];
    std::vector<uint32_t> fine_part(finer.graph.num_nodes());
    for (NodeId v = 0; v < finer.graph.num_nodes(); ++v) {
      fine_part[v] = part[level.fine_to_coarse[v]];
    }
    part = std::move(fine_part);
    Refine(finer.graph, finer.node_weight, k, max_part_weight,
           options.refine_passes, &part);
  }

  result.part = std::move(part);
  result.cut_weight = CutWeight(g, result.part);
  return result;
}

}  // namespace rmgp
