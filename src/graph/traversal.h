#ifndef RMGP_GRAPH_TRAVERSAL_H_
#define RMGP_GRAPH_TRAVERSAL_H_

#include <vector>

#include "graph/graph.h"

namespace rmgp {

/// Connected-component labeling. `component[v]` is a dense id in
/// [0, num_components); components are numbered by smallest contained node.
struct Components {
  std::vector<uint32_t> component;
  uint32_t num_components = 0;

  /// Sizes indexed by component id.
  std::vector<uint32_t> Sizes() const;
};

/// Labels connected components by BFS.
Components ConnectedComponents(const Graph& g);

/// BFS distances (in hops) from `source`; unreachable nodes get UINT32_MAX.
std::vector<uint32_t> BfsDistances(const Graph& g, NodeId source);

/// Nodes of the largest connected component, ascending.
std::vector<NodeId> LargestComponentNodes(const Graph& g);

/// The subgraph induced by `nodes` (which must be distinct and in range).
/// Node i of the result corresponds to nodes[i]. Also returns the mapping
/// old->new in `old_to_new` if non-null (UINT32_MAX for dropped nodes).
Graph InducedSubgraph(const Graph& g, const std::vector<NodeId>& nodes,
                      std::vector<NodeId>* old_to_new = nullptr);

}  // namespace rmgp

#endif  // RMGP_GRAPH_TRAVERSAL_H_
