#ifndef RMGP_GRAPH_DIRECTED_H_
#define RMGP_GRAPH_DIRECTED_H_

#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace rmgp {

/// A directed social tie (e.g., the "follow" relationship in Twitter —
/// paper §1 notes RMGP's edges "may be directed").
struct DirectedEdge {
  NodeId from;
  NodeId to;
  Weight weight;
};

/// How to fold a directed pair (u→v, v→u) into one undirected weight.
/// The RMGP game analysis (§3.2) relies on symmetric social costs — a
/// friend leaving affects both ends equally — so directed inputs are
/// symmetrized up-front.
enum class DirectedCombine {
  kSum,      ///< w(u,v) = w(u→v) + w(v→u); one-sided ties count half
  kMax,      ///< the stronger direction wins
  kMin,      ///< mutual ties only (one-sided edges drop out)
  kAverage,  ///< (w(u→v) + w(v→u)) / 2, missing direction counts as 0
};

/// Builds the undirected game graph from directed edges. Self-loops are
/// dropped; duplicate directed edges have their weights summed before
/// combining. Returns InvalidArgument for out-of-range endpoints or
/// non-positive weights.
Result<Graph> SymmetrizeDirected(NodeId num_nodes,
                                 const std::vector<DirectedEdge>& edges,
                                 DirectedCombine combine);

}  // namespace rmgp

#endif  // RMGP_GRAPH_DIRECTED_H_
