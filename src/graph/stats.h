#ifndef RMGP_GRAPH_STATS_H_
#define RMGP_GRAPH_STATS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace rmgp {

/// Summary statistics of a social graph, used to validate that the
/// synthetic datasets match the published crawl statistics and by the
/// CLI's `stats` subcommand.
struct GraphStats {
  NodeId num_nodes = 0;
  uint64_t num_edges = 0;
  double average_degree = 0.0;
  uint32_t max_degree = 0;
  double average_edge_weight = 0.0;
  uint64_t num_triangles = 0;
  /// Global clustering coefficient: 3·triangles / #wedges (0 if no wedge).
  double global_clustering = 0.0;
  uint32_t num_components = 0;
  NodeId largest_component = 0;
};

/// Computes all statistics. Triangle counting is exact and runs in
/// O(Σ_v deg(v)²) — fine for the datasets in this repo; prefer
/// CountTrianglesSampled on graphs with very heavy hubs.
GraphStats ComputeGraphStats(const Graph& g);

/// Exact triangle count via neighbor-intersection on ordered adjacency.
uint64_t CountTriangles(const Graph& g);

/// Number of wedges (paths of length 2): Σ_v deg(v)·(deg(v)-1)/2.
uint64_t CountWedges(const Graph& g);

/// Degree histogram: hist[d] = number of nodes with degree d.
std::vector<uint64_t> DegreeHistogram(const Graph& g);

}  // namespace rmgp

#endif  // RMGP_GRAPH_STATS_H_
