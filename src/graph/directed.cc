#include "graph/directed.h"

#include <algorithm>
#include <string>
#include <unordered_map>

namespace rmgp {

Result<Graph> SymmetrizeDirected(NodeId num_nodes,
                                 const std::vector<DirectedEdge>& edges,
                                 DirectedCombine combine) {
  // Aggregate directed multiplicity first: key = (min,max), value =
  // (weight low->high, weight high->low).
  struct Pair {
    double fwd = 0.0;  // min -> max
    double rev = 0.0;  // max -> min
  };
  std::unordered_map<uint64_t, Pair> pairs;
  pairs.reserve(edges.size());
  for (const DirectedEdge& e : edges) {
    if (e.from >= num_nodes || e.to >= num_nodes) {
      return Status::InvalidArgument(
          "directed edge endpoint out of range: " + std::to_string(e.from) +
          "->" + std::to_string(e.to));
    }
    if (e.weight <= 0.0) {
      return Status::InvalidArgument("directed edge weight must be positive");
    }
    if (e.from == e.to) continue;
    const NodeId lo = std::min(e.from, e.to);
    const NodeId hi = std::max(e.from, e.to);
    Pair& p = pairs[(static_cast<uint64_t>(lo) << 32) | hi];
    if (e.from == lo) {
      p.fwd += e.weight;
    } else {
      p.rev += e.weight;
    }
  }

  GraphBuilder b(num_nodes);
  for (const auto& [key, p] : pairs) {
    const NodeId lo = static_cast<NodeId>(key >> 32);
    const NodeId hi = static_cast<NodeId>(key & 0xffffffffu);
    double w = 0.0;
    switch (combine) {
      case DirectedCombine::kSum:
        w = p.fwd + p.rev;
        break;
      case DirectedCombine::kMax:
        w = std::max(p.fwd, p.rev);
        break;
      case DirectedCombine::kMin:
        w = std::min(p.fwd, p.rev);
        break;
      case DirectedCombine::kAverage:
        w = (p.fwd + p.rev) / 2.0;
        break;
    }
    if (w > 0.0) {
      RMGP_RETURN_IF_ERROR(b.AddEdge(lo, hi, w));
    }
  }
  return std::move(b).Build();
}

}  // namespace rmgp
