#include "graph/graph.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace rmgp {

Weight Graph::weighted_degree(NodeId v) const {
  Weight sum = 0.0;
  for (const Neighbor& nb : neighbors(v)) sum += nb.weight;
  return sum;
}

double Graph::average_degree() const {
  if (num_nodes() == 0) return 0.0;
  return static_cast<double>(adj_.size()) / num_nodes();
}

double Graph::average_edge_weight() const {
  if (num_edges() == 0) return 0.0;
  return total_edge_weight_ / static_cast<double>(num_edges());
}

uint32_t Graph::max_degree() const {
  uint32_t best = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) best = std::max(best, degree(v));
  return best;
}

Weight Graph::EdgeWeight(NodeId u, NodeId v) const {
  auto nbrs = neighbors(u);
  auto it = std::lower_bound(
      nbrs.begin(), nbrs.end(), v,
      [](const Neighbor& nb, NodeId id) { return nb.node < id; });
  if (it != nbrs.end() && it->node == v) return it->weight;
  return 0.0;
}

std::vector<Edge> Graph::CollectEdges() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges());
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (const Neighbor& nb : neighbors(u)) {
      if (u < nb.node) edges.push_back({u, nb.node, nb.weight});
    }
  }
  return edges;
}

Status GraphBuilder::AddEdge(NodeId u, NodeId v, Weight w) {
  if (u >= num_nodes_ || v >= num_nodes_) {
    return Status::InvalidArgument(
        "edge endpoint out of range: {" + std::to_string(u) + "," +
        std::to_string(v) + "} with |V|=" + std::to_string(num_nodes_));
  }
  if (!std::isfinite(w) || w <= 0.0) {
    return Status::InvalidArgument("edge weight must be positive and finite");
  }
  if (u == v) return Status::OK();  // self-loops carry no social cost
  if (u > v) std::swap(u, v);
  edges_.push_back({u, v, w});
  return Status::OK();
}

Graph GraphBuilder::Build() && {
  // Canonicalize: sort by (u,v) and merge duplicates by summing weights.
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  std::vector<Edge> merged;
  merged.reserve(edges_.size());
  for (const Edge& e : edges_) {
    if (!merged.empty() && merged.back().u == e.u && merged.back().v == e.v) {
      merged.back().weight += e.weight;
    } else {
      merged.push_back(e);
    }
  }

  Graph g;
  g.offsets_own_.assign(static_cast<size_t>(num_nodes_) + 1, 0);
  for (const Edge& e : merged) {
    ++g.offsets_own_[e.u + 1];
    ++g.offsets_own_[e.v + 1];
    g.total_edge_weight_ += e.weight;
  }
  for (size_t i = 1; i < g.offsets_own_.size(); ++i) {
    g.offsets_own_[i] += g.offsets_own_[i - 1];
  }
  g.adj_own_.resize(merged.size() * 2);
  std::vector<uint64_t> cursor(g.offsets_own_.begin(),
                               g.offsets_own_.end() - 1);
  for (const Edge& e : merged) {
    g.adj_own_[cursor[e.u]++] = {e.v, e.weight};
    g.adj_own_[cursor[e.v]++] = {e.u, e.weight};
  }
  // Per-node lists are already sorted for the lower endpoint ordering, but
  // entries for the higher endpoint interleave; sort each list.
  for (NodeId v = 0; v < num_nodes_; ++v) {
    std::sort(g.adj_own_.begin() + static_cast<ptrdiff_t>(g.offsets_own_[v]),
              g.adj_own_.begin() + static_cast<ptrdiff_t>(g.offsets_own_[v + 1]),
              [](const Neighbor& a, const Neighbor& b) {
                return a.node < b.node;
              });
  }
  g.SealOwned();
  return g;
}

}  // namespace rmgp
