#include "graph/stats.h"

#include <algorithm>

#include "graph/traversal.h"

namespace rmgp {

uint64_t CountTriangles(const Graph& g) {
  // For each edge (u,v) with u < v, intersect the higher-id tails of the
  // two (sorted) adjacency lists; each triangle is counted exactly once
  // at its lowest-id vertex pair.
  uint64_t triangles = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto nu = g.neighbors(u);
    for (const Neighbor& nb : nu) {
      const NodeId v = nb.node;
      if (v <= u) continue;
      const auto nv = g.neighbors(v);
      // Two-pointer intersection over neighbors greater than v.
      auto iu = std::lower_bound(
          nu.begin(), nu.end(), v + 1,
          [](const Neighbor& n, NodeId id) { return n.node < id; });
      auto iv = std::lower_bound(
          nv.begin(), nv.end(), v + 1,
          [](const Neighbor& n, NodeId id) { return n.node < id; });
      while (iu != nu.end() && iv != nv.end()) {
        if (iu->node < iv->node) {
          ++iu;
        } else if (iv->node < iu->node) {
          ++iv;
        } else {
          ++triangles;
          ++iu;
          ++iv;
        }
      }
    }
  }
  return triangles;
}

uint64_t CountWedges(const Graph& g) {
  uint64_t wedges = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const uint64_t d = g.degree(v);
    wedges += d * (d - 1) / 2;
  }
  return wedges;
}

std::vector<uint64_t> DegreeHistogram(const Graph& g) {
  std::vector<uint64_t> hist(static_cast<size_t>(g.max_degree()) + 1, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) ++hist[g.degree(v)];
  return hist;
}

GraphStats ComputeGraphStats(const Graph& g) {
  GraphStats stats;
  stats.num_nodes = g.num_nodes();
  stats.num_edges = g.num_edges();
  stats.average_degree = g.average_degree();
  stats.max_degree = g.max_degree();
  stats.average_edge_weight = g.average_edge_weight();
  stats.num_triangles = CountTriangles(g);
  const uint64_t wedges = CountWedges(g);
  stats.global_clustering =
      wedges > 0 ? 3.0 * static_cast<double>(stats.num_triangles) /
                       static_cast<double>(wedges)
                 : 0.0;
  const Components comps = ConnectedComponents(g);
  stats.num_components = comps.num_components;
  if (comps.num_components > 0) {
    const auto sizes = comps.Sizes();
    stats.largest_component = *std::max_element(sizes.begin(), sizes.end());
  }
  return stats;
}

}  // namespace rmgp
