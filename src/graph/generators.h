#ifndef RMGP_GRAPH_GENERATORS_H_
#define RMGP_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"
#include "util/rng.h"

namespace rmgp {

/// G(n, p) Erdős–Rényi random graph with unit edge weights.
Graph ErdosRenyi(NodeId n, double p, uint64_t seed);

/// G(n, m) Erdős–Rényi: exactly m distinct random edges (m clamped to the
/// number of possible edges), unit weights.
Graph ErdosRenyiM(NodeId n, uint64_t m, uint64_t seed);

/// Barabási–Albert preferential attachment: each new node attaches
/// `edges_per_node` edges to existing nodes with probability proportional to
/// their degree. Produces a power-law-ish degree distribution typical of
/// social networks. Unit weights.
Graph BarabasiAlbert(NodeId n, uint32_t edges_per_node, uint64_t seed);

/// Watts–Strogatz small-world graph: ring lattice with `k` nearest
/// neighbors per node (k even), each edge rewired with probability `beta`.
/// Unit weights.
Graph WattsStrogatz(NodeId n, uint32_t k, double beta, uint64_t seed);

/// Planted-partition graph: `num_blocks` equal-size communities; nodes in
/// the same block connect with probability p_in, across blocks with p_out.
/// Useful for testing that the game recovers community structure. Unit
/// weights. `block_of` (if non-null) receives the planted block per node.
Graph PlantedPartition(NodeId n, uint32_t num_blocks, double p_in,
                       double p_out, uint64_t seed,
                       std::vector<uint32_t>* block_of = nullptr);

/// Assigns each edge of `g` a weight drawn uniformly from [lo, hi),
/// returning a new graph with identical topology. Used by tests that need
/// non-unit weights (both Gowalla and Foursquare use unit weights).
Graph RandomizeWeights(const Graph& g, double lo, double hi, uint64_t seed);

}  // namespace rmgp

#endif  // RMGP_GRAPH_GENERATORS_H_
