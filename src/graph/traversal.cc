#include "graph/traversal.h"

#include <algorithm>
#include <queue>

#include "util/logging.h"

namespace rmgp {

std::vector<uint32_t> Components::Sizes() const {
  std::vector<uint32_t> sizes(num_components, 0);
  for (uint32_t c : component) ++sizes[c];
  return sizes;
}

Components ConnectedComponents(const Graph& g) {
  const NodeId n = g.num_nodes();
  Components result;
  result.component.assign(n, UINT32_MAX);
  std::vector<NodeId> queue;
  for (NodeId start = 0; start < n; ++start) {
    if (result.component[start] != UINT32_MAX) continue;
    const uint32_t c = result.num_components++;
    result.component[start] = c;
    queue.clear();
    queue.push_back(start);
    while (!queue.empty()) {
      NodeId v = queue.back();
      queue.pop_back();
      for (const Neighbor& nb : g.neighbors(v)) {
        if (result.component[nb.node] == UINT32_MAX) {
          result.component[nb.node] = c;
          queue.push_back(nb.node);
        }
      }
    }
  }
  return result;
}

std::vector<uint32_t> BfsDistances(const Graph& g, NodeId source) {
  RMGP_CHECK_LT(source, g.num_nodes());
  std::vector<uint32_t> dist(g.num_nodes(), UINT32_MAX);
  dist[source] = 0;
  std::queue<NodeId> q;
  q.push(source);
  while (!q.empty()) {
    NodeId v = q.front();
    q.pop();
    for (const Neighbor& nb : g.neighbors(v)) {
      if (dist[nb.node] == UINT32_MAX) {
        dist[nb.node] = dist[v] + 1;
        q.push(nb.node);
      }
    }
  }
  return dist;
}

std::vector<NodeId> LargestComponentNodes(const Graph& g) {
  Components comps = ConnectedComponents(g);
  if (comps.num_components == 0) return {};
  std::vector<uint32_t> sizes = comps.Sizes();
  uint32_t best =
      static_cast<uint32_t>(std::max_element(sizes.begin(), sizes.end()) -
                            sizes.begin());
  std::vector<NodeId> nodes;
  nodes.reserve(sizes[best]);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (comps.component[v] == best) nodes.push_back(v);
  }
  return nodes;
}

Graph InducedSubgraph(const Graph& g, const std::vector<NodeId>& nodes,
                      std::vector<NodeId>* old_to_new) {
  std::vector<NodeId> map(g.num_nodes(), UINT32_MAX);
  for (size_t i = 0; i < nodes.size(); ++i) {
    RMGP_CHECK_LT(nodes[i], g.num_nodes());
    RMGP_CHECK_EQ(map[nodes[i]], UINT32_MAX);  // distinct
    map[nodes[i]] = static_cast<NodeId>(i);
  }
  GraphBuilder b(static_cast<NodeId>(nodes.size()));
  for (NodeId old_u : nodes) {
    for (const Neighbor& nb : g.neighbors(old_u)) {
      if (old_u < nb.node && map[nb.node] != UINT32_MAX) {
        RMGP_CHECK(b.AddEdge(map[old_u], map[nb.node], nb.weight).ok());
      }
    }
  }
  if (old_to_new != nullptr) *old_to_new = std::move(map);
  return std::move(b).Build();
}

}  // namespace rmgp
