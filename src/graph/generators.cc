#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/logging.h"

namespace rmgp {
namespace {

uint64_t EdgeKey(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | v;
}

}  // namespace

Graph ErdosRenyi(NodeId n, double p, uint64_t seed) {
  RMGP_CHECK(p >= 0.0 && p <= 1.0);
  Rng rng(seed);
  GraphBuilder b(n);
  if (p > 0.0) {
    // Geometric skipping over the lexicographic edge sequence: O(|E|).
    const uint64_t total = static_cast<uint64_t>(n) * (n - 1) / 2;
    uint64_t idx = 0;
    while (idx < total) {
      uint64_t skip = (p >= 1.0) ? 1 : rng.Geometric(p);
      idx += skip;
      if (idx > total) break;
      const uint64_t e = idx - 1;  // 0-based edge index
      // Decode e -> (u, v), u < v, rows of the upper triangle.
      NodeId u = 0;
      uint64_t rem = e;
      uint64_t row_len = n - 1;
      while (rem >= row_len) {
        rem -= row_len;
        ++u;
        --row_len;
      }
      NodeId v = static_cast<NodeId>(u + 1 + rem);
      RMGP_CHECK(b.AddEdge(u, v, 1.0).ok());
    }
  }
  return std::move(b).Build();
}

Graph ErdosRenyiM(NodeId n, uint64_t m, uint64_t seed) {
  const uint64_t max_edges = static_cast<uint64_t>(n) * (n - 1) / 2;
  m = std::min(m, max_edges);
  Rng rng(seed);
  GraphBuilder b(n);
  std::unordered_set<uint64_t> used;
  used.reserve(m * 2);
  while (used.size() < m) {
    NodeId u = static_cast<NodeId>(rng.UniformInt(n));
    NodeId v = static_cast<NodeId>(rng.UniformInt(n));
    if (u == v) continue;
    if (used.insert(EdgeKey(u, v)).second) {
      RMGP_CHECK(b.AddEdge(u, v, 1.0).ok());
    }
  }
  return std::move(b).Build();
}

Graph BarabasiAlbert(NodeId n, uint32_t edges_per_node, uint64_t seed) {
  RMGP_CHECK_GE(edges_per_node, 1u);
  Rng rng(seed);
  GraphBuilder b(n);
  // `targets` holds one entry per edge endpoint; sampling uniformly from it
  // implements preferential attachment.
  std::vector<NodeId> endpoints;
  const NodeId seed_nodes = std::min<NodeId>(n, edges_per_node + 1);
  // Seed clique over the first m+1 nodes.
  for (NodeId u = 0; u < seed_nodes; ++u) {
    for (NodeId v = u + 1; v < seed_nodes; ++v) {
      RMGP_CHECK(b.AddEdge(u, v, 1.0).ok());
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  std::unordered_set<NodeId> chosen;
  for (NodeId v = seed_nodes; v < n; ++v) {
    chosen.clear();
    const uint32_t m = std::min<uint32_t>(edges_per_node, v);
    while (chosen.size() < m) {
      NodeId t = endpoints[rng.UniformInt(endpoints.size())];
      chosen.insert(t);
    }
    for (NodeId t : chosen) {
      RMGP_CHECK(b.AddEdge(v, t, 1.0).ok());
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return std::move(b).Build();
}

Graph WattsStrogatz(NodeId n, uint32_t k, double beta, uint64_t seed) {
  RMGP_CHECK(k % 2 == 0) << "WattsStrogatz requires even k";
  RMGP_CHECK_GT(n, k);
  Rng rng(seed);
  std::unordered_set<uint64_t> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (uint32_t j = 1; j <= k / 2; ++j) {
      NodeId v = static_cast<NodeId>((u + j) % n);
      edges.insert(EdgeKey(u, v));
    }
  }
  // Rewire each lattice edge with probability beta.
  std::vector<uint64_t> initial(edges.begin(), edges.end());
  std::sort(initial.begin(), initial.end());
  for (uint64_t key : initial) {
    if (!rng.Bernoulli(beta)) continue;
    NodeId u = static_cast<NodeId>(key >> 32);
    NodeId w;
    int attempts = 0;
    do {
      w = static_cast<NodeId>(rng.UniformInt(n));
      if (++attempts > 64) break;  // dense corner case: keep original edge
    } while (w == u || edges.count(EdgeKey(u, w)) > 0);
    if (attempts > 64) continue;
    edges.erase(key);
    edges.insert(EdgeKey(u, w));
  }
  GraphBuilder b(n);
  for (uint64_t key : edges) {
    RMGP_CHECK(b.AddEdge(static_cast<NodeId>(key >> 32),
                         static_cast<NodeId>(key & 0xffffffffu), 1.0)
                   .ok());
  }
  return std::move(b).Build();
}

Graph PlantedPartition(NodeId n, uint32_t num_blocks, double p_in,
                       double p_out, uint64_t seed,
                       std::vector<uint32_t>* block_of) {
  RMGP_CHECK_GE(num_blocks, 1u);
  Rng rng(seed);
  std::vector<uint32_t> block(n);
  for (NodeId v = 0; v < n; ++v) block[v] = v % num_blocks;
  GraphBuilder b(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const double p = (block[u] == block[v]) ? p_in : p_out;
      if (rng.Bernoulli(p)) {
        RMGP_CHECK(b.AddEdge(u, v, 1.0).ok());
      }
    }
  }
  if (block_of != nullptr) *block_of = std::move(block);
  return std::move(b).Build();
}

Graph RandomizeWeights(const Graph& g, double lo, double hi, uint64_t seed) {
  RMGP_CHECK(lo > 0.0 && hi > lo);
  Rng rng(seed);
  GraphBuilder b(g.num_nodes());
  for (const Edge& e : g.CollectEdges()) {
    RMGP_CHECK(b.AddEdge(e.u, e.v, rng.UniformDouble(lo, hi)).ok());
  }
  return std::move(b).Build();
}

}  // namespace rmgp
