#ifndef RMGP_GRAPH_GRAPH_DELTA_H_
#define RMGP_GRAPH_GRAPH_DELTA_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace rmgp {

/// A validated batch of structural edits (one *epoch* of mutations) against
/// an immutable base Graph. Edits accumulate as a net-change overlay: an
/// edge added and removed inside the same epoch cancels out entirely, so
/// `empty()` is true exactly when committing the batch would reproduce the
/// base graph — the caller can skip the version bump for a no-op epoch.
///
/// Every operation validates against the *current view* (base ⊕ overlay):
/// adding an edge that exists, or removing/reweighting one that does not,
/// is an error — the mutation log surfaces these to the client instead of
/// silently merging them the way GraphBuilder does.
///
/// `Build()` produces the next CSR graph plus the set of vertices whose
/// adjacency (or existence) changed — the seed of incremental
/// re-equilibration. Untouched vertices' adjacency spans are copied
/// verbatim; only touched vertices pay a merge.
///
/// Not thread-safe; the owner (serve::MutationLog) serializes access.
class GraphDelta {
 public:
  /// `base` is borrowed and must outlive the delta.
  explicit GraphDelta(const Graph* base);

  /// Adds undirected edge {u,v} with weight w. Errors: endpoint out of
  /// range, u == v, non-positive weight, edge already present in the view.
  [[nodiscard]] Status AddEdge(NodeId u, NodeId v, Weight w = 1.0);

  /// Removes edge {u,v}. Errors: endpoint out of range, edge not present
  /// in the view.
  [[nodiscard]] Status RemoveEdge(NodeId u, NodeId v);

  /// Sets the weight of existing edge {u,v} to w. Errors: endpoint out of
  /// range, non-positive weight, edge not present in the view.
  [[nodiscard]] Status ReweightEdge(NodeId u, NodeId v, Weight w);

  /// Appends a new isolated node and returns its id (= num_nodes()-1
  /// after the call). Node removal keeps ids stable instead: see
  /// RemoveNodeEdges.
  NodeId AddNode();

  /// Drops every edge incident to v (the graph half of removing a user;
  /// id-stability means the vertex itself stays, isolated). Errors:
  /// endpoint out of range.
  [[nodiscard]] Status RemoveNodeEdges(NodeId v);

  /// Weight of {u,v} in the current view (base ⊕ overlay), 0 if absent or
  /// out of range.
  [[nodiscard]] Weight EdgeWeight(NodeId u, NodeId v) const;

  [[nodiscard]] bool HasEdge(NodeId u, NodeId v) const {
    return EdgeWeight(u, v) > 0.0;
  }

  /// Node count of the view: base nodes plus appends.
  NodeId num_nodes() const { return base_->num_nodes() + appended_; }

  /// True iff committing now would reproduce the base graph exactly (no
  /// net edge change and no appended node).
  bool empty() const { return overlay_.empty() && appended_ == 0; }

  /// Number of edges whose weight differs from the base (removals count).
  size_t num_edge_changes() const { return overlay_.size(); }

  NodeId num_appended_nodes() const { return appended_; }

  struct BuildResult {
    Graph graph;
    /// Sorted unique ids whose adjacency changed, plus every appended
    /// node (their global-table rows must be built from scratch).
    std::vector<NodeId> touched;
  };

  /// Materializes the next graph version. The delta itself is unchanged
  /// (the owner re-bases by constructing a fresh GraphDelta over the new
  /// graph).
  [[nodiscard]] BuildResult Build() const;

 private:
  /// Canonical overlay key: (min, max).
  static std::pair<NodeId, NodeId> Key(NodeId u, NodeId v) {
    return u < v ? std::make_pair(u, v) : std::make_pair(v, u);
  }

  [[nodiscard]] Status CheckEndpoints(NodeId u, NodeId v) const;

  /// Base-graph weight of {u,v}; 0 when either endpoint is appended.
  Weight BaseWeight(NodeId u, NodeId v) const;

  /// Records "the view weight of {u,v} is now w" (w == 0 removes),
  /// erasing the overlay entry when w matches the base weight again.
  void SetWeight(NodeId u, NodeId v, Weight w);

  const Graph* base_;
  NodeId appended_ = 0;
  /// Net changes vs. base, keyed canonically. Invariants: a value of 0
  /// (removal) only ever shadows an existing base edge; a positive value
  /// always differs from the base weight. std::map keeps iteration
  /// deterministic for Build().
  std::map<std::pair<NodeId, NodeId>, Weight> overlay_;
};

}  // namespace rmgp

#endif  // RMGP_GRAPH_GRAPH_DELTA_H_
