#ifndef RMGP_GRAPH_GRAPH_H_
#define RMGP_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/status.h"

namespace rmgp {

/// Node identifier. Social graphs in the paper's scale (up to ~2.15M users)
/// fit comfortably in 32 bits.
using NodeId = uint32_t;

/// Weight of a social connection (strength of the tie). Binary friendship
/// graphs use weight 1.0.
using Weight = double;

/// One endpoint of an adjacency entry: the neighbor and the edge weight.
struct Neighbor {
  NodeId node;
  Weight weight;

  bool operator==(const Neighbor&) const = default;
};

/// An undirected weighted edge (u < v is not required at the builder level;
/// the builder canonicalizes).
struct Edge {
  NodeId u;
  NodeId v;
  Weight weight;
};

class GraphBuilder;

/// Immutable undirected weighted social graph in CSR (compressed sparse
/// row) form. Each undirected edge {u,v} is stored twice, once in each
/// adjacency list, so `degree(v)` and neighbor iteration are O(1)/O(deg).
///
/// Construction goes through GraphBuilder, which validates endpoints,
/// merges duplicate edges and drops self-loops.
class Graph {
 public:
  /// Empty graph with zero nodes.
  Graph() = default;

  /// Number of nodes |V|.
  NodeId num_nodes() const { return static_cast<NodeId>(offsets_.empty() ? 0 : offsets_.size() - 1); }

  /// Number of undirected edges |E|.
  uint64_t num_edges() const { return adj_.size() / 2; }

  /// Degree of node v.
  uint32_t degree(NodeId v) const {
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Neighbors of v with edge weights, sorted by neighbor id.
  std::span<const Neighbor> neighbors(NodeId v) const {
    return {adj_.data() + offsets_[v], adj_.data() + offsets_[v + 1]};
  }

  /// Sum of weights of edges incident to v (the paper's 2·W_v).
  Weight weighted_degree(NodeId v) const;

  /// Total weight over all undirected edges: Σ_{e∈E} w_e.
  Weight total_edge_weight() const { return total_edge_weight_; }

  /// Average degree deg_avg = 2|E| / |V| (0 for the empty graph).
  double average_degree() const;

  /// Average edge weight w_avg = Σw_e / |E| (0 for the edgeless graph).
  double average_edge_weight() const;

  /// Maximum degree d_max.
  uint32_t max_degree() const;

  /// Weight of edge {u,v}, or 0 if absent. O(log deg(u)).
  [[nodiscard]] Weight EdgeWeight(NodeId u, NodeId v) const;

  /// True iff {u,v} is an edge. O(log deg(u)).
  [[nodiscard]] bool HasEdge(NodeId u, NodeId v) const { return EdgeWeight(u, v) > 0.0; }

  /// All undirected edges, each reported once with u < v, ordered by (u,v).
  std::vector<Edge> CollectEdges() const;

 private:
  friend class GraphBuilder;
  friend class GraphDelta;  // builds the next version of a mutated graph

  std::vector<uint64_t> offsets_;  // size |V|+1
  std::vector<Neighbor> adj_;      // size 2|E|, sorted per node
  Weight total_edge_weight_ = 0.0;
};

/// Mutable accumulator of edges that produces an immutable CSR Graph.
///
///   GraphBuilder b(6);
///   b.AddEdge(0, 1, 0.4);
///   Graph g = std::move(b).Build();
class GraphBuilder {
 public:
  /// Creates a builder for a graph over `num_nodes` nodes (ids 0..n-1).
  explicit GraphBuilder(NodeId num_nodes) : num_nodes_(num_nodes) {}

  /// Adds undirected edge {u,v} with weight w. Self-loops are ignored;
  /// duplicate edges have their weights summed. Returns InvalidArgument for
  /// out-of-range endpoints or non-positive weight.
  Status AddEdge(NodeId u, NodeId v, Weight w = 1.0);

  /// Number of nodes the builder was created with.
  NodeId num_nodes() const { return num_nodes_; }

  /// Number of AddEdge calls accepted so far (before dedup).
  size_t num_added_edges() const { return edges_.size(); }

  /// Builds the CSR graph. The builder is consumed.
  [[nodiscard]] Graph Build() &&;

 private:
  NodeId num_nodes_;
  std::vector<Edge> edges_;
};

}  // namespace rmgp

#endif  // RMGP_GRAPH_GRAPH_H_
