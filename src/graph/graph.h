#ifndef RMGP_GRAPH_GRAPH_H_
#define RMGP_GRAPH_GRAPH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "util/status.h"

namespace rmgp {

/// Node identifier. Social graphs in the paper's scale (up to ~2.15M users)
/// fit comfortably in 32 bits.
using NodeId = uint32_t;

/// Weight of a social connection (strength of the tie). Binary friendship
/// graphs use weight 1.0.
using Weight = double;

/// One endpoint of an adjacency entry: the neighbor and the edge weight.
///
/// The layout is part of the on-disk container format (src/store): a mapped
/// adjacency section is reinterpreted as a Neighbor array, so the padding
/// between `node` and `weight` is written as explicit zero bytes and the
/// layout is pinned by static_asserts in store/format.h.
struct Neighbor {
  NodeId node;
  Weight weight;

  bool operator==(const Neighbor&) const = default;
};

/// An undirected weighted edge (u < v is not required at the builder level;
/// the builder canonicalizes).
struct Edge {
  NodeId u;
  NodeId v;
  Weight weight;
};

class GraphBuilder;

/// Immutable undirected weighted social graph in CSR (compressed sparse
/// row) form. Each undirected edge {u,v} is stored twice, once in each
/// adjacency list, so `degree(v)` and neighbor iteration are O(1)/O(deg).
///
/// Storage-agnostic: the accessors read through spans that point either at
/// vectors owned by this Graph (kInRam — the GraphBuilder / GraphDelta
/// path) or at external read-only memory kept alive by `backing_` (kMapped
/// — an mmap'ed .rmgp container section, see src/store/container.h). The
/// solvers, GraphDelta overlays, the spatial index build and the shard
/// cutter all consume this API and never observe which backend is under it.
///
/// Construction goes through GraphBuilder, which validates endpoints,
/// merges duplicate edges and drops self-loops, or through
/// Graph::FromExternalParts for pre-validated storage backends.
class Graph {
 public:
  /// Empty graph with zero nodes.
  Graph() = default;

  Graph(const Graph& other) { CopyFrom(other); }
  Graph& operator=(const Graph& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Graph(Graph&& other) noexcept { MoveFrom(std::move(other)); }
  Graph& operator=(Graph&& other) noexcept {
    if (this != &other) MoveFrom(std::move(other));
    return *this;
  }

  /// Wraps externally owned CSR arrays (e.g. sections of an mmap'ed
  /// container) without copying. `backing` keeps the memory alive for the
  /// lifetime of this Graph and all its copies. The caller must have
  /// validated the CSR invariants (offsets monotone, offsets.size() ==
  /// num_nodes+1, offsets.back() == adj.size(), per-node lists sorted by
  /// neighbor id) — src/store/container.cc is the sanctioned caller and
  /// validates before wrapping.
  static Graph FromExternalParts(std::span<const uint64_t> offsets,
                                 std::span<const Neighbor> adj,
                                 Weight total_edge_weight,
                                 std::shared_ptr<const void> backing) {
    Graph g;
    g.offsets_ = offsets;
    g.adj_ = adj;
    g.total_edge_weight_ = total_edge_weight;
    g.backing_ = std::move(backing);
    return g;
  }

  /// Adopts pre-validated owned CSR arrays (offsets.size() == num_nodes+1,
  /// offsets.back() == adj.size(), per-node lists sorted by neighbor id).
  /// Used by storage backends that decode a container into RAM.
  static Graph FromOwnedParts(std::vector<uint64_t> offsets,
                              std::vector<Neighbor> adj,
                              Weight total_edge_weight) {
    Graph g;
    g.offsets_own_ = std::move(offsets);
    g.adj_own_ = std::move(adj);
    g.total_edge_weight_ = total_edge_weight;
    g.SealOwned();
    return g;
  }

  /// True iff the CSR arrays live in external storage (mmap) rather than
  /// vectors owned by this Graph.
  bool is_external() const { return backing_ != nullptr; }

  /// Number of nodes |V|.
  NodeId num_nodes() const {
    return static_cast<NodeId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }

  /// Number of undirected edges |E|.
  uint64_t num_edges() const { return adj_.size() / 2; }

  /// Degree of node v.
  uint32_t degree(NodeId v) const {
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Neighbors of v with edge weights, sorted by neighbor id.
  std::span<const Neighbor> neighbors(NodeId v) const {
    return {adj_.data() + offsets_[v], adj_.data() + offsets_[v + 1]};
  }

  /// The raw CSR offsets array (|V|+1 entries); offsets()[v]..offsets()[v+1]
  /// index into adjacency(). Exposed for storage backends (src/store) and
  /// whole-graph serializers.
  std::span<const uint64_t> offsets() const { return offsets_; }

  /// The raw adjacency array (2|E| entries, per-node sorted by neighbor).
  std::span<const Neighbor> adjacency() const { return adj_; }

  /// Sum of weights of edges incident to v (the paper's 2·W_v).
  Weight weighted_degree(NodeId v) const;

  /// Total weight over all undirected edges: Σ_{e∈E} w_e.
  Weight total_edge_weight() const { return total_edge_weight_; }

  /// Average degree deg_avg = 2|E| / |V| (0 for the empty graph).
  double average_degree() const;

  /// Average edge weight w_avg = Σw_e / |E| (0 for the edgeless graph).
  double average_edge_weight() const;

  /// Maximum degree d_max.
  uint32_t max_degree() const;

  /// Weight of edge {u,v}, or 0 if absent. O(log deg(u)).
  [[nodiscard]] Weight EdgeWeight(NodeId u, NodeId v) const;

  /// True iff {u,v} is an edge. O(log deg(u)).
  [[nodiscard]] bool HasEdge(NodeId u, NodeId v) const {
    return EdgeWeight(u, v) > 0.0;
  }

  /// All undirected edges, each reported once with u < v, ordered by (u,v).
  std::vector<Edge> CollectEdges() const;

 private:
  friend class GraphBuilder;
  friend class GraphDelta;  // builds the next version of a mutated graph

  /// Points the access spans at the owned vectors. Every friend that
  /// mutates offsets_own_ / adj_own_ must call this before the Graph is
  /// read (vector growth relocates the buffers the spans alias).
  void SealOwned() {
    offsets_ = offsets_own_;
    adj_ = adj_own_;
    backing_ = nullptr;
  }

  void CopyFrom(const Graph& other) {
    offsets_own_ = other.offsets_own_;
    adj_own_ = other.adj_own_;
    total_edge_weight_ = other.total_edge_weight_;
    backing_ = other.backing_;
    if (backing_ != nullptr) {
      offsets_ = other.offsets_;
      adj_ = other.adj_;
    } else {
      SealOwned();
    }
  }

  void MoveFrom(Graph&& other) noexcept {
    // Moving a vector transfers its heap buffer, so spans into the owned
    // storage stay valid across the move.
    offsets_own_ = std::move(other.offsets_own_);
    adj_own_ = std::move(other.adj_own_);
    offsets_ = other.offsets_;
    adj_ = other.adj_;
    total_edge_weight_ = other.total_edge_weight_;
    backing_ = std::move(other.backing_);
    other.offsets_ = {};
    other.adj_ = {};
    other.total_edge_weight_ = 0.0;
  }

  std::vector<uint64_t> offsets_own_;  // size |V|+1 when owned
  std::vector<Neighbor> adj_own_;      // size 2|E| when owned
  std::span<const uint64_t> offsets_;  // the arrays the accessors read
  std::span<const Neighbor> adj_;
  Weight total_edge_weight_ = 0.0;
  std::shared_ptr<const void> backing_;  // keeps external storage alive
};

/// Mutable accumulator of edges that produces an immutable CSR Graph.
///
///   GraphBuilder b(6);
///   b.AddEdge(0, 1, 0.4);
///   Graph g = std::move(b).Build();
class GraphBuilder {
 public:
  /// Creates a builder for a graph over `num_nodes` nodes (ids 0..n-1).
  explicit GraphBuilder(NodeId num_nodes) : num_nodes_(num_nodes) {}

  /// Adds undirected edge {u,v} with weight w. Self-loops are ignored;
  /// duplicate edges have their weights summed. Returns InvalidArgument for
  /// out-of-range endpoints or a weight that is not positive and finite.
  Status AddEdge(NodeId u, NodeId v, Weight w = 1.0);

  /// Number of nodes the builder was created with.
  NodeId num_nodes() const { return num_nodes_; }

  /// Number of AddEdge calls accepted so far (before dedup).
  size_t num_added_edges() const { return edges_.size(); }

  /// Builds the CSR graph. The builder is consumed.
  [[nodiscard]] Graph Build() &&;

 private:
  NodeId num_nodes_;
  std::vector<Edge> edges_;
};

}  // namespace rmgp

#endif  // RMGP_GRAPH_GRAPH_H_
