#ifndef RMGP_GRAPH_COLORING_H_
#define RMGP_GRAPH_COLORING_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace rmgp {

/// A proper node coloring: `color[v]` for every node, plus the nodes grouped
/// by color. Nodes of the same color form an independent set, so their
/// best responses can be computed in parallel (paper §4.2).
struct Coloring {
  std::vector<uint32_t> color;             // size |V|
  std::vector<std::vector<NodeId>> groups;  // groups[c] = nodes with color c

  uint32_t num_colors() const { return static_cast<uint32_t>(groups.size()); }
};

/// Greedy graph coloring in decreasing-degree (Welsh–Powell) order.
/// Uses at most d_max + 1 colors, as referenced by the paper (§4.2).
[[nodiscard]] Coloring GreedyColoring(const Graph& g);

/// Validates that `coloring` assigns different colors to adjacent nodes and
/// covers all nodes.
Status ValidateColoring(const Graph& g, const Coloring& coloring);

}  // namespace rmgp

#endif  // RMGP_GRAPH_COLORING_H_
