#include "graph/coloring.h"

#include <algorithm>
#include <string>

namespace rmgp {

Coloring GreedyColoring(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> order(n);
  for (NodeId v = 0; v < n; ++v) order[v] = v;
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return g.degree(a) > g.degree(b);
  });

  constexpr uint32_t kUncolored = UINT32_MAX;
  Coloring result;
  result.color.assign(n, kUncolored);

  // forbidden[c] == v marks color c as used by a neighbor of v in this pass.
  std::vector<NodeId> forbidden(static_cast<size_t>(g.max_degree()) + 2,
                                UINT32_MAX);
  uint32_t num_colors = 0;
  for (NodeId v : order) {
    for (const Neighbor& nb : g.neighbors(v)) {
      uint32_t c = result.color[nb.node];
      if (c != kUncolored && c < forbidden.size()) forbidden[c] = v;
    }
    uint32_t c = 0;
    while (c < forbidden.size() && forbidden[c] == v) ++c;
    result.color[v] = c;
    num_colors = std::max(num_colors, c + 1);
  }

  result.groups.resize(num_colors);
  for (NodeId v = 0; v < n; ++v) result.groups[result.color[v]].push_back(v);
  return result;
}

Status ValidateColoring(const Graph& g, const Coloring& coloring) {
  if (coloring.color.size() != g.num_nodes()) {
    return Status::InvalidArgument("coloring size != |V|");
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (coloring.color[v] >= coloring.num_colors()) {
      return Status::InvalidArgument("node " + std::to_string(v) +
                                     " has out-of-range color");
    }
    for (const Neighbor& nb : g.neighbors(v)) {
      if (coloring.color[v] == coloring.color[nb.node]) {
        return Status::FailedPrecondition(
            "adjacent nodes " + std::to_string(v) + " and " +
            std::to_string(nb.node) + " share color " +
            std::to_string(coloring.color[v]));
      }
    }
  }
  // Groups must partition V consistently with `color`.
  size_t total = 0;
  for (uint32_t c = 0; c < coloring.num_colors(); ++c) {
    for (NodeId v : coloring.groups[c]) {
      if (coloring.color[v] != c) {
        return Status::FailedPrecondition("groups inconsistent with colors");
      }
    }
    total += coloring.groups[c].size();
  }
  if (total != g.num_nodes()) {
    return Status::FailedPrecondition("groups do not cover all nodes");
  }
  return Status::OK();
}

}  // namespace rmgp
