#include "graph/io.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

namespace rmgp {

Status WriteEdgeList(const Graph& g, const std::string& path) {
  std::ofstream f(path);
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  f.precision(17);  // round-trip exact for doubles
  f << "# nodes " << g.num_nodes() << " edges " << g.num_edges() << "\n";
  for (const Edge& e : g.CollectEdges()) {
    f << e.u << ' ' << e.v << ' ' << e.weight << "\n";
  }
  if (!f) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<Graph> ReadEdgeList(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::IOError("cannot open " + path);
  std::string line;
  NodeId declared_nodes = 0;
  bool have_declared = false;
  struct RawEdge {
    NodeId u, v;
    Weight w;
  };
  std::vector<RawEdge> edges;
  NodeId max_id = 0;
  size_t line_no = 0;
  while (std::getline(f, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#' || line[0] == '%') {
      std::istringstream hs(line);
      std::string hash, word;
      uint64_t n = 0;
      if (hs >> hash >> word >> n && word == "nodes") {
        declared_nodes = static_cast<NodeId>(n);
        have_declared = true;
      }
      continue;
    }
    std::istringstream ls(line);
    uint64_t u, v;
    double w = 1.0;
    if (!(ls >> u >> v)) {
      return Status::IOError("malformed edge at " + path + ":" +
                             std::to_string(line_no));
    }
    ls >> w;  // optional
    if (u == v) continue;
    edges.push_back({static_cast<NodeId>(u), static_cast<NodeId>(v), w});
    max_id = std::max(max_id, static_cast<NodeId>(std::max(u, v)));
  }
  NodeId n = have_declared ? declared_nodes
                           : (edges.empty() ? 0 : max_id + 1);
  GraphBuilder b(n);
  for (const RawEdge& e : edges) {
    Status s = b.AddEdge(e.u, e.v, e.w);
    if (!s.ok()) return s;
  }
  return std::move(b).Build();
}

}  // namespace rmgp
