#include "graph/io.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace rmgp {

namespace {

/// Node ids must leave room for |V| = max_id + 1 in NodeId.
constexpr uint64_t kMaxNodeId = 0xFFFFFFFEull;

bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f';
}

const char* SkipSpace(const char* p, const char* end) {
  while (p < end && IsSpace(*p)) ++p;
  return p;
}

/// Parses one whitespace-delimited u64 token. Advances *p past the token on
/// success; returns false on a missing/malformed/overflowing token.
bool ParseU64(const char** p, const char* end, uint64_t* out) {
  const char* q = SkipSpace(*p, end);
  if (q >= end) return false;
  const auto [next, ec] = std::from_chars(q, end, *out);
  if (ec != std::errc() || next == q) return false;
  if (next < end && !IsSpace(*next)) return false;
  *p = next;
  return true;
}

/// Parses one whitespace-delimited double token.
bool ParseDouble(const char** p, const char* end, double* out) {
  const char* q = SkipSpace(*p, end);
  if (q >= end) return false;
  const auto [next, ec] = std::from_chars(q, end, *out);
  if (ec != std::errc() || next == q) return false;
  if (next < end && !IsSpace(*next)) return false;
  *p = next;
  return true;
}

Status ReadWholeFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::IOError("seek failed for " + path);
  }
  const long size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    return Status::IOError("tell failed for " + path);
  }
  std::rewind(f);
  out->resize(static_cast<size_t>(size));
  const size_t got = size > 0 ? std::fread(out->data(), 1, out->size(), f) : 0;
  std::fclose(f);
  if (got != out->size()) return Status::IOError("short read for " + path);
  return Status::OK();
}

Status MalformedAt(const std::string& path, size_t line_no, const char* what) {
  return Status::InvalidArgument(std::string(what) + " at " + path + ":" +
                                 std::to_string(line_no));
}

}  // namespace

Status WriteEdgeList(const Graph& g, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  char line[96];
  int len = std::snprintf(line, sizeof(line), "# nodes %u edges %llu\n",
                          g.num_nodes(),
                          static_cast<unsigned long long>(g.num_edges()));
  bool ok = len > 0 && std::fwrite(line, 1, static_cast<size_t>(len), f) ==
                           static_cast<size_t>(len);
  for (NodeId u = 0; ok && u < g.num_nodes(); ++u) {
    for (const Neighbor& nb : g.neighbors(u)) {
      if (u >= nb.node) continue;  // report each edge once, u < v
      // %.17g round-trips doubles exactly, matching the reader's
      // from_chars.
      len = std::snprintf(line, sizeof(line), "%u %u %.17g\n", u, nb.node,
                          nb.weight);
      if (len <= 0 || std::fwrite(line, 1, static_cast<size_t>(len), f) !=
                          static_cast<size_t>(len)) {
        ok = false;
        break;
      }
    }
  }
  if (std::fclose(f) != 0) ok = false;
  if (!ok) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<Graph> ReadEdgeList(const std::string& path) {
  // One read + a manual pointer-walking tokenizer: the previous
  // istringstream-per-line reader spent 3x the whole parse-and-build time
  // on stream setup and locale-aware numeric parsing alone (see
  // EXPERIMENTS.md "Edge-list parse").
  std::string content;
  RMGP_RETURN_IF_ERROR(ReadWholeFile(path, &content));

  struct RawEdge {
    NodeId u, v;
    Weight w;
  };
  std::vector<RawEdge> edges;
  NodeId declared_nodes = 0;
  bool have_declared = false;
  uint64_t max_id = 0;
  size_t line_no = 0;

  const char* p = content.data();
  const char* const file_end = p + content.size();
  while (p < file_end) {
    ++line_no;
    const char* eol = static_cast<const char*>(
        memchr(p, '\n', static_cast<size_t>(file_end - p)));
    const char* const end = eol != nullptr ? eol : file_end;
    const char* cur = SkipSpace(p, end);
    p = eol != nullptr ? eol + 1 : file_end;
    if (cur >= end) continue;  // blank line

    if (*cur == '#' || *cur == '%') {
      // Comment, or the "# nodes <n> edges <m>" header: the marker must be
      // a standalone token followed by the word "nodes" and a count.
      const char marker = *cur;
      ++cur;
      if (cur < end && !IsSpace(*cur)) continue;  // "#foo": plain comment
      cur = SkipSpace(cur, end);
      static constexpr std::string_view kNodes = "nodes";
      if (static_cast<size_t>(end - cur) < kNodes.size() ||
          std::string_view(cur, kNodes.size()) != kNodes) {
        continue;
      }
      cur += kNodes.size();
      if (cur < end && !IsSpace(*cur)) continue;
      uint64_t n = 0;
      if (!ParseU64(&cur, end, &n)) continue;
      if (have_declared) {
        return MalformedAt(path, line_no,
                           "duplicate node-count header (earlier header "
                           "already declared the graph size)");
      }
      if (n > kMaxNodeId + 1) {
        return MalformedAt(path, line_no, "declared node count overflows "
                                          "the 32-bit NodeId space");
      }
      (void)marker;
      declared_nodes = static_cast<NodeId>(n);
      have_declared = true;
      continue;
    }

    uint64_t u = 0, v = 0;
    if (!ParseU64(&cur, end, &u) || !ParseU64(&cur, end, &v)) {
      return MalformedAt(path, line_no, "malformed edge");
    }
    if (u > kMaxNodeId || v > kMaxNodeId) {
      return MalformedAt(path, line_no,
                         "node id overflows the 32-bit NodeId space");
    }
    double w = 1.0;
    const char* after_v = SkipSpace(cur, end);
    if (after_v < end) {
      if (!ParseDouble(&cur, end, &w)) {
        return MalformedAt(path, line_no, "malformed edge weight");
      }
      if (SkipSpace(cur, end) < end) {
        return MalformedAt(path, line_no, "trailing garbage after edge");
      }
    }
    if (!std::isfinite(w) || w <= 0.0) {
      return MalformedAt(path, line_no,
                         "edge weight must be positive and finite");
    }
    if (u == v) continue;
    edges.push_back({static_cast<NodeId>(u), static_cast<NodeId>(v), w});
    max_id = std::max(max_id, std::max(u, v));
  }

  const NodeId n = have_declared
                       ? declared_nodes
                       : (edges.empty() ? 0 : static_cast<NodeId>(max_id) + 1);
  GraphBuilder b(n);
  for (const RawEdge& e : edges) {
    Status s = b.AddEdge(e.u, e.v, e.w);
    if (!s.ok()) return s;
  }
  return std::move(b).Build();
}

}  // namespace rmgp
