#include "graph/graph_delta.h"

#include <algorithm>
#include <string>

#include "util/dcheck.h"

namespace rmgp {

GraphDelta::GraphDelta(const Graph* base) : base_(base) {
  RMGP_DCHECK(base != nullptr) << "GraphDelta over a null base graph";
}

Status GraphDelta::CheckEndpoints(NodeId u, NodeId v) const {
  const NodeId n = num_nodes();
  if (u >= n || v >= n) {
    return Status::OutOfRange("edge endpoint out of range: {" +
                              std::to_string(u) + "," + std::to_string(v) +
                              "} with |V|=" + std::to_string(n));
  }
  return Status::OK();
}

Weight GraphDelta::BaseWeight(NodeId u, NodeId v) const {
  const NodeId base_n = base_->num_nodes();
  if (u >= base_n || v >= base_n) return 0.0;
  return base_->EdgeWeight(u, v);
}

Weight GraphDelta::EdgeWeight(NodeId u, NodeId v) const {
  if (u >= num_nodes() || v >= num_nodes() || u == v) return 0.0;
  const auto it = overlay_.find(Key(u, v));
  if (it != overlay_.end()) return it->second;
  return BaseWeight(u, v);
}

void GraphDelta::SetWeight(NodeId u, NodeId v, Weight w) {
  const auto key = Key(u, v);
  if (BaseWeight(u, v) == w) {
    overlay_.erase(key);  // net no-op: the view reverted to the base
  } else {
    overlay_[key] = w;
  }
}

Status GraphDelta::AddEdge(NodeId u, NodeId v, Weight w) {
  RMGP_RETURN_IF_ERROR(CheckEndpoints(u, v));
  if (u == v) return Status::InvalidArgument("self-loops carry no cost");
  if (w <= 0.0) {
    return Status::InvalidArgument("edge weight must be positive");
  }
  if (EdgeWeight(u, v) > 0.0) {
    return Status::FailedPrecondition(
        "edge {" + std::to_string(u) + "," + std::to_string(v) +
        "} already exists; use reweight_edge");
  }
  SetWeight(u, v, w);
  return Status::OK();
}

Status GraphDelta::RemoveEdge(NodeId u, NodeId v) {
  RMGP_RETURN_IF_ERROR(CheckEndpoints(u, v));
  if (EdgeWeight(u, v) <= 0.0) {
    return Status::NotFound("no edge {" + std::to_string(u) + "," +
                            std::to_string(v) + "} to remove");
  }
  SetWeight(u, v, 0.0);
  return Status::OK();
}

Status GraphDelta::ReweightEdge(NodeId u, NodeId v, Weight w) {
  RMGP_RETURN_IF_ERROR(CheckEndpoints(u, v));
  if (w <= 0.0) {
    return Status::InvalidArgument("edge weight must be positive");
  }
  if (EdgeWeight(u, v) <= 0.0) {
    return Status::NotFound("no edge {" + std::to_string(u) + "," +
                            std::to_string(v) + "} to reweight");
  }
  SetWeight(u, v, w);
  return Status::OK();
}

NodeId GraphDelta::AddNode() {
  ++appended_;
  return num_nodes() - 1;
}

Status GraphDelta::RemoveNodeEdges(NodeId v) {
  RMGP_RETURN_IF_ERROR(CheckEndpoints(v, v));
  // Incident edges in the view: base neighbors not shadowed by the
  // overlay, plus overlay additions/reweights touching v. Collect first —
  // SetWeight mutates overlay_ under our feet otherwise.
  std::vector<NodeId> incident;
  if (v < base_->num_nodes()) {
    for (const Neighbor& nb : base_->neighbors(v)) {
      if (EdgeWeight(v, nb.node) > 0.0) incident.push_back(nb.node);
    }
  }
  for (const auto& [key, w] : overlay_) {
    if (w <= 0.0) continue;
    if (key.first == v && BaseWeight(v, key.second) == 0.0) {
      incident.push_back(key.second);
    } else if (key.second == v && BaseWeight(v, key.first) == 0.0) {
      incident.push_back(key.first);
    }
  }
  for (const NodeId u : incident) SetWeight(v, u, 0.0);
  return Status::OK();
}

GraphDelta::BuildResult GraphDelta::Build() const {
  const NodeId base_n = base_->num_nodes();
  const NodeId n = num_nodes();

  // Per-touched-vertex delta lists (weight 0 = removal); map iteration
  // keeps everything deterministic.
  std::map<NodeId, std::vector<Neighbor>> delta;
  for (const auto& [key, w] : overlay_) {
    delta[key.first].push_back({key.second, w});
    delta[key.second].push_back({key.first, w});
  }
  for (auto& [v, list] : delta) {
    (void)v;
    std::sort(list.begin(), list.end(),
              [](const Neighbor& a, const Neighbor& b) {
                return a.node < b.node;
              });
  }

  BuildResult out;
  Graph& g = out.graph;
  g.offsets_own_.resize(static_cast<size_t>(n) + 1);
  g.offsets_own_[0] = 0;
  // Works identically over an in-RAM and an mmap'ed base: untouched
  // adjacency is copied verbatim out of whichever storage backs the base
  // into the owned vectors of the next version.
  g.adj_own_.reserve(base_->num_edges() * 2 + 2 * overlay_.size());

  auto it = delta.begin();
  for (NodeId v = 0; v < n; ++v) {
    if (it != delta.end() && it->first == v) {
      // Merge the (sorted) base adjacency with the (sorted) delta list;
      // delta entries override, removals drop out.
      std::span<const Neighbor> base_nbrs =
          v < base_n ? base_->neighbors(v) : std::span<const Neighbor>{};
      const std::vector<Neighbor>& dl = it->second;
      size_t bi = 0;
      size_t di = 0;
      while (bi < base_nbrs.size() || di < dl.size()) {
        if (di >= dl.size() ||
            (bi < base_nbrs.size() && base_nbrs[bi].node < dl[di].node)) {
          g.adj_own_.push_back(base_nbrs[bi++]);
        } else {
          const Neighbor d = dl[di++];
          if (bi < base_nbrs.size() && base_nbrs[bi].node == d.node) ++bi;
          if (d.weight > 0.0) g.adj_own_.push_back(d);
        }
      }
      ++it;
    } else if (v < base_n) {
      const std::span<const Neighbor> nbrs = base_->neighbors(v);
      g.adj_own_.insert(g.adj_own_.end(), nbrs.begin(), nbrs.end());
    }
    g.offsets_own_[v + 1] = g.adj_own_.size();
  }
  RMGP_DCHECK(it == delta.end());
  RMGP_DCHECK_EQ(g.adj_own_.size() % 2, 0u);

  // Recompute the total exactly rather than accumulating adjustments —
  // a session commits many epochs and additive drift would compound.
  Weight total = 0.0;
  for (const Neighbor& nb : g.adj_own_) total += nb.weight;
  g.total_edge_weight_ = total * 0.5;
  g.SealOwned();

  out.touched.reserve(delta.size() + appended_);
  for (const auto& [v, list] : delta) {
    (void)list;
    if (v < base_n) out.touched.push_back(v);
  }
  // Appended nodes are always touched, edges or not: they are new players
  // whose best-response rows do not exist yet. (Delta keys >= base_n are
  // subsumed by this range, keeping `touched` sorted and unique.)
  for (NodeId v = base_n; v < n; ++v) out.touched.push_back(v);
  return out;
}

}  // namespace rmgp
