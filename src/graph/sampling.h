#ifndef RMGP_GRAPH_SAMPLING_H_
#define RMGP_GRAPH_SAMPLING_H_

#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace rmgp {

/// Parameters of Forest Fire sampling (Leskovec & Faloutsos), the technique
/// the paper uses to shrink Gowalla for the UML comparisons (§6).
struct ForestFireOptions {
  /// Forward-burning probability p_f; each burning node burns a
  /// geometrically distributed number of its unvisited neighbors with mean
  /// p_f / (1 - p_f). 0.7 is the value recommended in the original paper.
  double forward_prob = 0.7;
  uint64_t seed = 42;
};

/// Samples `target_nodes` nodes from `g` by Forest Fire: repeatedly pick a
/// random unvisited ambassador and burn outward. Returns the sampled node
/// ids (sorted). If the fire dies out, a fresh ambassador restarts it, so
/// exactly min(target_nodes, |V|) nodes are returned.
std::vector<NodeId> ForestFireSample(const Graph& g, NodeId target_nodes,
                                     const ForestFireOptions& options);

/// Convenience: Forest Fire sample plus induced subgraph. `sampled_nodes`
/// (if non-null) receives the original ids of the kept nodes, index-aligned
/// with the new graph's node ids.
Graph ForestFireSubgraph(const Graph& g, NodeId target_nodes,
                         const ForestFireOptions& options,
                         std::vector<NodeId>* sampled_nodes = nullptr);

}  // namespace rmgp

#endif  // RMGP_GRAPH_SAMPLING_H_
