#include "graph/sampling.h"

#include <algorithm>
#include <deque>

#include "graph/traversal.h"
#include "util/logging.h"

namespace rmgp {

std::vector<NodeId> ForestFireSample(const Graph& g, NodeId target_nodes,
                                     const ForestFireOptions& options) {
  const NodeId n = g.num_nodes();
  target_nodes = std::min(target_nodes, n);
  Rng rng(options.seed);

  std::vector<bool> burned(n, false);
  std::vector<NodeId> result;
  result.reserve(target_nodes);
  std::deque<NodeId> frontier;
  std::vector<NodeId> candidates;

  auto burn = [&](NodeId v) {
    burned[v] = true;
    result.push_back(v);
    frontier.push_back(v);
  };

  while (result.size() < target_nodes) {
    if (frontier.empty()) {
      // Pick a fresh random unburned ambassador.
      NodeId amb;
      do {
        amb = static_cast<NodeId>(rng.UniformInt(n));
      } while (burned[amb]);
      burn(amb);
      continue;
    }
    NodeId v = frontier.front();
    frontier.pop_front();
    candidates.clear();
    for (const Neighbor& nb : g.neighbors(v)) {
      if (!burned[nb.node]) candidates.push_back(nb.node);
    }
    if (candidates.empty()) continue;
    // Burn x ~ Geometric(mean p/(1-p)) of the unburned neighbors.
    uint64_t x = rng.Geometric(1.0 - options.forward_prob) - 1;
    x = std::min<uint64_t>(x, candidates.size());
    if (x == 0) continue;
    rng.Shuffle(&candidates);
    for (uint64_t i = 0; i < x && result.size() < target_nodes; ++i) {
      burn(candidates[i]);
    }
  }

  std::sort(result.begin(), result.end());
  return result;
}

Graph ForestFireSubgraph(const Graph& g, NodeId target_nodes,
                         const ForestFireOptions& options,
                         std::vector<NodeId>* sampled_nodes) {
  std::vector<NodeId> nodes = ForestFireSample(g, target_nodes, options);
  Graph sub = InducedSubgraph(g, nodes);
  if (sampled_nodes != nullptr) *sampled_nodes = std::move(nodes);
  return sub;
}

}  // namespace rmgp
