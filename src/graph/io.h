#ifndef RMGP_GRAPH_IO_H_
#define RMGP_GRAPH_IO_H_

#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace rmgp {

/// Writes `g` as a whitespace-separated edge list: header line
/// "# nodes <n> edges <m>" followed by "u v w" lines (u < v).
Status WriteEdgeList(const Graph& g, const std::string& path);

/// Reads an edge list produced by WriteEdgeList, or a plain "u v [w]" list
/// (weight defaults to 1; node count defaults to 1 + max id). Lines starting
/// with '#' or '%' other than the header are ignored.
Result<Graph> ReadEdgeList(const std::string& path);

}  // namespace rmgp

#endif  // RMGP_GRAPH_IO_H_
