#ifndef RMGP_MATCHING_HUNGARIAN_H_
#define RMGP_MATCHING_HUNGARIAN_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace rmgp {

/// Result of a rectangular assignment: row i is matched to column
/// `col_of_row[i]`; `total_cost` is the sum of the matched entries.
struct AssignmentSolution {
  std::vector<uint32_t> col_of_row;
  double total_cost = 0.0;
};

/// Hungarian algorithm (Jonker–Volgenant-style O(n²m) shortest augmenting
/// paths with potentials) for the rectangular assignment problem:
/// minimize Σ cost[i][col_of_row[i]] over injective row→column maps.
///
/// `cost` is row-major with `rows` rows and `cols` columns; requires
/// rows <= cols. Substrate for the Metis–Hungarian baseline, which assigns
/// each k-way partition to a distinct event (§6.1).
Result<AssignmentSolution> SolveAssignment(const std::vector<double>& cost,
                                           uint32_t rows, uint32_t cols);

}  // namespace rmgp

#endif  // RMGP_MATCHING_HUNGARIAN_H_
