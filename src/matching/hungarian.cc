#include "matching/hungarian.h"

#include <limits>

namespace rmgp {

Result<AssignmentSolution> SolveAssignment(const std::vector<double>& cost,
                                           uint32_t rows, uint32_t cols) {
  if (rows == 0) return AssignmentSolution{};
  if (rows > cols) {
    return Status::InvalidArgument("assignment requires rows <= cols");
  }
  if (cost.size() != static_cast<size_t>(rows) * cols) {
    return Status::InvalidArgument("cost matrix size mismatch");
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // 1-based arrays per the classical formulation; p[j] is the row matched
  // to column j (0 = none), u/v are the dual potentials.
  std::vector<double> u(rows + 1, 0.0), v(cols + 1, 0.0);
  std::vector<uint32_t> p(cols + 1, 0), way(cols + 1, 0);

  auto c = [&](uint32_t i, uint32_t j) {  // 1-based accessor
    return cost[static_cast<size_t>(i - 1) * cols + (j - 1)];
  };

  for (uint32_t i = 1; i <= rows; ++i) {
    p[0] = i;
    uint32_t j0 = 0;
    std::vector<double> minv(cols + 1, kInf);
    std::vector<bool> used(cols + 1, false);
    do {
      used[j0] = true;
      const uint32_t i0 = p[j0];
      double delta = kInf;
      uint32_t j1 = 0;
      for (uint32_t j = 1; j <= cols; ++j) {
        if (used[j]) continue;
        const double cur = c(i0, j) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (uint32_t j = 0; j <= cols; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    // Augment along the alternating path.
    do {
      const uint32_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  AssignmentSolution sol;
  sol.col_of_row.assign(rows, UINT32_MAX);
  for (uint32_t j = 1; j <= cols; ++j) {
    if (p[j] != 0) sol.col_of_row[p[j] - 1] = j - 1;
  }
  for (uint32_t i = 0; i < rows; ++i) {
    sol.total_cost += cost[static_cast<size_t>(i) * cols + sol.col_of_row[i]];
  }
  return sol;
}

}  // namespace rmgp
