#include "data/geo_io.h"

#include <cstdint>
#include <fstream>
#include <sstream>

namespace rmgp {
namespace {

Status MalformedAt(const std::string& path, size_t line_no) {
  return Status::IOError("malformed row at " + path + ":" +
                         std::to_string(line_no));
}

}  // namespace

Status WritePointsCsv(const std::vector<Point>& points,
                      const std::string& path) {
  std::ofstream f(path);
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  f.precision(17);
  f << "id,x,y\n";
  for (size_t i = 0; i < points.size(); ++i) {
    f << i << ',' << points[i].x << ',' << points[i].y << '\n';
  }
  if (!f) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<std::vector<Point>> ReadPointsCsv(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::IOError("cannot open " + path);
  std::string line;
  size_t line_no = 0;
  std::vector<Point> points;
  std::vector<bool> seen;
  while (std::getline(f, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line_no == 1 && line.rfind("id,", 0) == 0) continue;  // header
    std::istringstream ls(line);
    uint64_t id;
    double x, y;
    char c1, c2;
    if (!(ls >> id >> c1 >> x >> c2 >> y) || c1 != ',' || c2 != ',') {
      return MalformedAt(path, line_no);
    }
    if (id >= points.size()) {
      points.resize(id + 1);
      seen.resize(id + 1, false);
    }
    if (seen[id]) {
      return Status::IOError("duplicate id " + std::to_string(id) + " in " +
                             path);
    }
    points[id] = {x, y};
    seen[id] = true;
  }
  for (size_t i = 0; i < seen.size(); ++i) {
    if (!seen[i]) {
      return Status::IOError("missing id " + std::to_string(i) + " in " +
                             path);
    }
  }
  return points;
}

Status WriteAssignmentCsv(const Assignment& assignment,
                          const std::string& path) {
  std::ofstream f(path);
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  f << "user,class\n";
  for (size_t v = 0; v < assignment.size(); ++v) {
    if (assignment[v] == UINT32_MAX) {
      f << v << ",-1\n";
    } else {
      f << v << ',' << assignment[v] << '\n';
    }
  }
  if (!f) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<Assignment> ReadAssignmentCsv(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::IOError("cannot open " + path);
  std::string line;
  size_t line_no = 0;
  Assignment out;
  while (std::getline(f, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line_no == 1 && line.rfind("user,", 0) == 0) continue;
    std::istringstream ls(line);
    uint64_t user;
    int64_t cls;
    char c1;
    if (!(ls >> user >> c1 >> cls) || c1 != ',') {
      return MalformedAt(path, line_no);
    }
    if (user >= out.size()) out.resize(user + 1, UINT32_MAX);
    out[user] = cls < 0 ? UINT32_MAX : static_cast<ClassId>(cls);
  }
  return out;
}

}  // namespace rmgp
