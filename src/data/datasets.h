#ifndef RMGP_DATA_DATASETS_H_
#define RMGP_DATA_DATASETS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/cost_provider.h"
#include "graph/graph.h"
#include "spatial/point.h"

namespace rmgp {

/// A geo-social workload: the friendship graph, the latest check-in
/// location of every user, and a pool of event venues from which a query
/// samples its k classes. Distances are in kilometers.
struct GeoSocialDataset {
  std::string name;
  Graph graph;
  std::vector<Point> user_locations;
  std::vector<Point> event_pool;

  /// Euclidean cost provider over the first k events of the pool.
  std::shared_ptr<EuclideanCostProvider> MakeCosts(ClassId k) const;
};

/// Parameters for the synthetic Gowalla-like dataset. Defaults match the
/// statistics the paper reports for Gowalla (§6): 12,748 users in the
/// Dallas & Austin metro areas, 48,419 friendships (unit weights, avg
/// degree 7.6), and 128 Eventbrite events. The real crawl is unavailable
/// offline — see DESIGN.md §5 for why the substitution preserves behavior.
struct GowallaLikeOptions {
  NodeId num_users = 12748;
  uint64_t num_edges = 48419;
  ClassId num_events = 128;
  uint64_t seed = 2009;
};

/// Builds the Gowalla-like dataset: a preferential-attachment friendship
/// graph trimmed to the exact edge count, check-ins drawn from two
/// Gaussian metro clusters ~290 km apart, and events placed near the two
/// town centers.
GeoSocialDataset MakeGowallaLike(const GowallaLikeOptions& options);

/// Parameters for the synthetic Foursquare-like dataset. Full scale
/// matches the paper (2,153,471 users, 27,098,490 edges, 1,143,092
/// venues); `scale` shrinks users/edges/venues proportionally so the
/// decentralized experiments also run on small machines.
struct FoursquareLikeOptions {
  double scale = 1.0;
  ClassId max_events = 1024;  ///< size of the event pool actually generated
  uint64_t seed = 2013;
};

GeoSocialDataset MakeFoursquareLike(const FoursquareLikeOptions& options);

/// Generates a small LAGP instance in the unit square (used by unit tests
/// and the quickstart example): `n` users on an Erdős–Rényi-ish social
/// graph with random [0.1, 1) edge weights and `k` uniformly placed events.
GeoSocialDataset MakeUnitSquareToy(NodeId n, ClassId k, double edge_prob,
                                   uint64_t seed);

}  // namespace rmgp

#endif  // RMGP_DATA_DATASETS_H_
