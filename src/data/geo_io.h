#ifndef RMGP_DATA_GEO_IO_H_
#define RMGP_DATA_GEO_IO_H_

#include <string>
#include <vector>

#include "core/objective.h"
#include "spatial/point.h"
#include "util/status.h"

namespace rmgp {

/// Writes points as CSV: header "id,x,y", one row per point (id = index).
Status WritePointsCsv(const std::vector<Point>& points,
                      const std::string& path);

/// Reads points written by WritePointsCsv (or any "id,x,y" CSV with ids
/// 0..n-1 in any order; missing ids are an error).
Result<std::vector<Point>> ReadPointsCsv(const std::string& path);

/// Writes an assignment as CSV: header "user,class", one row per user.
/// SubgraphSolveResult::kNotParticipating entries are written as -1.
Status WriteAssignmentCsv(const Assignment& assignment,
                          const std::string& path);

/// Reads an assignment written by WriteAssignmentCsv; -1 entries load as
/// UINT32_MAX.
Result<Assignment> ReadAssignmentCsv(const std::string& path);

}  // namespace rmgp

#endif  // RMGP_DATA_GEO_IO_H_
