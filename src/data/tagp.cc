#include "data/tagp.h"

#include <cmath>

#include "graph/generators.h"
#include "util/logging.h"
#include "util/rng.h"

namespace rmgp {
namespace {

void NormalizeL2(std::vector<double>* v) {
  double norm = 0.0;
  for (double x : *v) norm += x * x;
  norm = std::sqrt(norm);
  if (norm > 0.0) {
    for (double& x : *v) x /= norm;
  }
}

double Cosine(const std::vector<double>& a, const std::vector<double>& b) {
  double dot = 0.0;
  for (size_t i = 0; i < a.size(); ++i) dot += a[i] * b[i];
  return dot;
}

}  // namespace

TagpDataset MakeTagp(const TagpOptions& options) {
  RMGP_CHECK_GE(options.num_topics, 1u);
  Rng rng(options.seed);
  TagpDataset ds;

  // Latent interest per ad: a direction in topic space.
  ds.ad_topics.resize(options.num_ads);
  for (auto& ad : ds.ad_topics) {
    ad.assign(options.num_topics, 0.0);
    for (double& x : ad) x = std::abs(rng.Gaussian()) * 0.15;
    // A few dominant topics.
    for (int d = 0; d < 3; ++d) {
      ad[rng.UniformInt(options.num_topics)] += 1.0;
    }
    NormalizeL2(&ad);
  }

  // Users: each leans towards one latent interest plus noise.
  ds.user_topics.resize(options.num_users);
  for (auto& ut : ds.user_topics) {
    const auto& lean = ds.ad_topics[rng.UniformInt(options.num_ads)];
    ut.assign(options.num_topics, 0.0);
    for (uint32_t t = 0; t < options.num_topics; ++t) {
      ut[t] = 0.7 * lean[t] + 0.3 * std::abs(rng.Gaussian()) * 0.4;
    }
    NormalizeL2(&ut);
  }

  // Cost = 1 - cosine similarity (dissimilarity, ~[0, 1] for nonneg vecs).
  std::vector<double> costs(static_cast<size_t>(options.num_users) *
                            options.num_ads);
  for (NodeId v = 0; v < options.num_users; ++v) {
    for (ClassId p = 0; p < options.num_ads; ++p) {
      costs[static_cast<size_t>(v) * options.num_ads + p] =
          1.0 - Cosine(ds.user_topics[v], ds.ad_topics[p]);
    }
  }
  ds.costs = std::make_shared<DenseCostMatrix>(options.num_users,
                                               options.num_ads,
                                               std::move(costs));

  // Discussion graph with common-thread counts as weights.
  Graph topo =
      BarabasiAlbert(options.num_users, options.ba_edges_per_node,
                     options.seed + 1);
  GraphBuilder b(options.num_users);
  const double p_geom =
      1.0 / std::max(1.0, options.mean_common_discussions);
  for (const Edge& e : topo.CollectEdges()) {
    const double common = static_cast<double>(rng.Geometric(p_geom));
    RMGP_CHECK(b.AddEdge(e.u, e.v, common).ok());
  }
  ds.graph = std::move(b).Build();
  return ds;
}

}  // namespace rmgp
