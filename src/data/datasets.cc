#include "data/datasets.h"

#include <algorithm>
#include <cmath>

#include "graph/generators.h"
#include "spatial/geo_generator.h"
#include "util/logging.h"
#include "util/rng.h"

namespace rmgp {
namespace {

/// Uniformly deletes edges until exactly `target_edges` remain. BA graphs
/// come in quanta of m edges per node; trimming hits the paper's exact
/// |E| while keeping the degree distribution shape.
Graph TrimEdges(const Graph& g, uint64_t target_edges, uint64_t seed) {
  if (g.num_edges() <= target_edges) return g;
  std::vector<Edge> edges = g.CollectEdges();
  Rng rng(seed);
  // Partial Fisher–Yates: keep a random subset of size target_edges.
  for (uint64_t i = 0; i < target_edges; ++i) {
    const uint64_t j = i + rng.UniformInt(edges.size() - i);
    std::swap(edges[i], edges[j]);
  }
  edges.resize(target_edges);
  GraphBuilder b(g.num_nodes());
  for (const Edge& e : edges) {
    RMGP_CHECK(b.AddEdge(e.u, e.v, e.weight).ok());
  }
  return std::move(b).Build();
}

}  // namespace

std::shared_ptr<EuclideanCostProvider> GeoSocialDataset::MakeCosts(
    ClassId k) const {
  RMGP_CHECK_LE(k, event_pool.size());
  std::vector<Point> events(event_pool.begin(), event_pool.begin() + k);
  return std::make_shared<EuclideanCostProvider>(user_locations,
                                                 std::move(events));
}

GeoSocialDataset MakeGowallaLike(const GowallaLikeOptions& options) {
  GeoSocialDataset ds;
  ds.name = "gowalla-like";

  // Friendship graph: preferential attachment with enough stubs, trimmed
  // to the exact edge count (target avg degree 2·48419/12748 ≈ 7.6).
  const uint32_t m = std::max<uint32_t>(
      1, static_cast<uint32_t>(std::ceil(
             static_cast<double>(options.num_edges) / options.num_users)));
  Graph ba = BarabasiAlbert(options.num_users, m, options.seed);
  ds.graph = TrimEdges(ba, options.num_edges, options.seed + 1);

  // Geography (km): two metro clusters roughly 290 km apart, like Dallas
  // (pop-weighted heavier) and Austin.
  std::vector<GeoCluster> metros = {
      {{0.0, 0.0}, /*stddev=*/28.0, /*weight=*/0.62},     // "Dallas"
      {{-80.0, -280.0}, /*stddev=*/22.0, /*weight=*/0.38}  // "Austin"
  };
  GeoGenerator geo(metros, options.seed + 2);
  ds.user_locations = geo.SampleMany(options.num_users);
  ds.event_pool = geo.SampleVenues(options.num_events,
                                   /*center_concentration=*/0.35);
  return ds;
}

GeoSocialDataset MakeFoursquareLike(const FoursquareLikeOptions& options) {
  RMGP_CHECK_GT(options.scale, 0.0);
  GeoSocialDataset ds;
  ds.name = "foursquare-like";

  const NodeId users = std::max<NodeId>(
      1000, static_cast<NodeId>(2153471 * options.scale));
  const uint64_t edges = static_cast<uint64_t>(27098490 * options.scale);
  // Target avg degree ≈ 25.2 -> m = 13 stubs per node, then trim.
  const uint32_t m = std::max<uint32_t>(
      1, static_cast<uint32_t>(
             std::ceil(static_cast<double>(edges) / users)));
  Graph ba = BarabasiAlbert(users, m, options.seed);
  ds.graph = TrimEdges(ba, edges, options.seed + 1);

  // Many metro areas spread over a continent-scale extent (km).
  std::vector<GeoCluster> metros;
  Rng rng(options.seed + 2);
  const int kMetros = 20;
  for (int i = 0; i < kMetros; ++i) {
    GeoCluster c;
    c.center = {rng.UniformDouble(-2000.0, 2000.0),
                rng.UniformDouble(-1500.0, 1500.0)};
    c.stddev = rng.UniformDouble(15.0, 45.0);
    c.weight = rng.UniformDouble(0.5, 2.0);
    metros.push_back(c);
  }
  GeoGenerator geo(metros, options.seed + 3);
  ds.user_locations = geo.SampleMany(users);
  ds.event_pool = geo.SampleVenues(options.max_events, 0.35);
  return ds;
}

GeoSocialDataset MakeUnitSquareToy(NodeId n, ClassId k, double edge_prob,
                                   uint64_t seed) {
  GeoSocialDataset ds;
  ds.name = "unit-square-toy";
  Graph er = ErdosRenyi(n, edge_prob, seed);
  ds.graph = RandomizeWeights(er, 0.1, 1.0, seed + 1);
  Rng rng(seed + 2);
  ds.user_locations.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    ds.user_locations.push_back(
        {rng.UniformDouble(), rng.UniformDouble()});
  }
  ds.event_pool.reserve(k);
  for (ClassId p = 0; p < k; ++p) {
    ds.event_pool.push_back({rng.UniformDouble(), rng.UniformDouble()});
  }
  return ds;
}

}  // namespace rmgp
