#ifndef RMGP_DATA_TAGP_H_
#define RMGP_DATA_TAGP_H_

#include <memory>
#include <vector>

#include "core/cost_provider.h"
#include "graph/graph.h"

namespace rmgp {

/// A Topic-Aware Graph Partitioning workload (paper Example 2): users have
/// topic-interest profiles, advertisements have topic vectors, the
/// assignment cost is a tf-idf-style dissimilarity, and edge weights count
/// common discussion threads (so they live on a very different scale from
/// the costs — exactly the normalization problem of §3.3).
struct TagpDataset {
  Graph graph;                       ///< weights = #common discussions
  std::vector<std::vector<double>> user_topics;  ///< unit-norm profiles
  std::vector<std::vector<double>> ad_topics;    ///< unit-norm ad vectors
  std::shared_ptr<DenseCostMatrix> costs;  ///< 1 - cosine(user, ad) ∈ [0,2]
};

struct TagpOptions {
  NodeId num_users = 2000;
  ClassId num_ads = 16;
  uint32_t num_topics = 25;
  /// Mean common-discussion count on an edge (weights are geometric with
  /// this mean, giving the "order of thousands" totals §3.3 mentions for
  /// heavy co-participants).
  double mean_common_discussions = 40.0;
  uint32_t ba_edges_per_node = 4;
  uint64_t seed = 99;
};

/// Builds a TAGP workload: a preferential-attachment discussion graph with
/// common-thread edge weights, sparse user topic profiles clustered around
/// `num_ads` latent interests, and ads aligned with those interests.
TagpDataset MakeTagp(const TagpOptions& options);

}  // namespace rmgp

#endif  // RMGP_DATA_TAGP_H_
