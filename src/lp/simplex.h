#ifndef RMGP_LP_SIMPLEX_H_
#define RMGP_LP_SIMPLEX_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "util/status.h"

namespace rmgp {

/// A linear program in the form
///   minimize    cᵀx
///   subject to  A_eq·x  =  b_eq
///               A_ub·x  <= b_ub
///               x >= 0
/// Rows are stored sparsely; the solver densifies internally.
///
/// This is the substrate for the UML_lp baseline (Kleinberg–Tardos LP
/// relaxation); the paper used CVX, which is unavailable offline — see
/// DESIGN.md §5.
struct LinearProgram {
  /// One sparse constraint row: Σ coeffs·x = / <= rhs.
  struct Row {
    std::vector<std::pair<uint32_t, double>> coeffs;  // (var index, value)
    double rhs = 0.0;
  };

  uint32_t num_vars = 0;
  std::vector<double> objective;  // size num_vars
  std::vector<Row> eq;
  std::vector<Row> ub;
};

/// Outcome of a simplex solve.
enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  std::vector<double> x;   // size num_vars (valid when kOptimal)
  double objective = 0.0;  // cᵀx (valid when kOptimal)
  uint64_t iterations = 0;
};

struct SimplexOptions {
  uint64_t max_iterations = 2'000'000;
  /// Pivot tolerance.
  double eps = 1e-9;
};

/// Two-phase dense tableau simplex. Dantzig pricing with a Bland's-rule
/// fallback for anti-cycling. Intended for the small instances UML methods
/// target (the paper evaluates them on graphs of a few hundred nodes).
Result<LpSolution> SolveSimplex(const LinearProgram& lp,
                                const SimplexOptions& options = {});

}  // namespace rmgp

#endif  // RMGP_LP_SIMPLEX_H_
