#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace rmgp {
namespace {

/// Dense two-phase simplex working state. Column layout:
///   [0, n_struct)                structural variables
///   [n_struct, n_struct+n_slack) slack variables (one per <= row)
///   [.., ..+n_art)               artificial variables
/// plus one rhs column. The objective (reduced-cost) row is row `m`.
class Tableau {
 public:
  Tableau(const LinearProgram& lp, const SimplexOptions& options)
      : options_(options) {
    n_struct_ = lp.num_vars;
    n_slack_ = static_cast<uint32_t>(lp.ub.size());
    m_ = static_cast<uint32_t>(lp.eq.size() + lp.ub.size());

    // First pass: find rows that need artificials. A <= row with rhs >= 0
    // can use its slack as the initial basic variable; everything else
    // (equalities, and <= rows with negative rhs, which flip sign) needs an
    // artificial.
    needs_art_.assign(m_, true);
    for (uint32_t r = 0; r < lp.ub.size(); ++r) {
      if (lp.ub[r].rhs >= 0.0) needs_art_[lp.eq.size() + r] = false;
    }
    n_art_ = 0;
    for (uint32_t r = 0; r < m_; ++r) {
      if (needs_art_[r]) ++n_art_;
    }
    n_total_ = n_struct_ + n_slack_ + n_art_;
    t_.assign(static_cast<size_t>(m_ + 1) * (n_total_ + 1), 0.0);
    basis_.assign(m_, UINT32_MAX);

    uint32_t art_cursor = n_struct_ + n_slack_;
    // Equality rows.
    for (uint32_t r = 0; r < lp.eq.size(); ++r) {
      FillRow(r, lp.eq[r], /*slack_col=*/UINT32_MAX);
      if (Rhs(r) < 0.0) NegateRow(r);
      At(r, art_cursor) = 1.0;
      basis_[r] = art_cursor++;
    }
    // <= rows: add slack.
    for (uint32_t r = 0; r < lp.ub.size(); ++r) {
      const uint32_t row = static_cast<uint32_t>(lp.eq.size()) + r;
      FillRow(row, lp.ub[r], n_struct_ + r);
      if (Rhs(row) < 0.0) {
        NegateRow(row);  // slack coefficient becomes -1, not basic-feasible
        At(row, art_cursor) = 1.0;
        basis_[row] = art_cursor++;
      } else {
        basis_[row] = n_struct_ + r;
      }
    }
    RMGP_CHECK_EQ(art_cursor, n_total_);
  }

  /// Runs both phases; returns the solve status.
  LpStatus Solve(const std::vector<double>& objective) {
    // Phase 1: minimize the sum of artificials.
    if (n_art_ > 0) {
      SetPhase1Objective();
      const LpStatus st = Optimize(/*restrict_artificials=*/false);
      if (st != LpStatus::kOptimal) return st;
      if (-At(m_, n_total_) > 1e-7) return LpStatus::kInfeasible;
      PivotOutArtificials();
    }
    SetObjective(objective);
    return Optimize(/*restrict_artificials=*/true);
  }

  /// Extracts structural variable values.
  std::vector<double> Extract() const {
    std::vector<double> x(n_struct_, 0.0);
    for (uint32_t r = 0; r < m_; ++r) {
      if (basis_[r] < n_struct_) x[basis_[r]] = Rhs(r);
    }
    return x;
  }

  uint64_t iterations() const { return iterations_; }

 private:
  double& At(uint32_t row, uint32_t col) {
    return t_[static_cast<size_t>(row) * (n_total_ + 1) + col];
  }
  double At(uint32_t row, uint32_t col) const {
    return t_[static_cast<size_t>(row) * (n_total_ + 1) + col];
  }
  double Rhs(uint32_t row) const { return At(row, n_total_); }

  void FillRow(uint32_t row, const LinearProgram::Row& src,
               uint32_t slack_col) {
    for (const auto& [var, coeff] : src.coeffs) {
      RMGP_CHECK_LT(var, n_struct_);
      At(row, var) += coeff;
    }
    if (slack_col != UINT32_MAX) At(row, slack_col) = 1.0;
    At(row, n_total_) = src.rhs;
  }

  void NegateRow(uint32_t row) {
    double* p = &At(row, 0);
    for (uint32_t c = 0; c <= n_total_; ++c) p[c] = -p[c];
  }

  /// Phase-1 objective: minimize Σ artificials. Reduced costs start as
  /// -Σ(rows with artificial basis), expressed in terms of the nonbasic
  /// variables.
  void SetPhase1Objective() {
    double* z = &At(m_, 0);
    std::fill(z, z + n_total_ + 1, 0.0);
    for (uint32_t c = n_struct_ + n_slack_; c < n_total_; ++c) z[c] = 1.0;
    for (uint32_t r = 0; r < m_; ++r) {
      if (basis_[r] >= n_struct_ + n_slack_) {
        for (uint32_t c = 0; c <= n_total_; ++c) z[c] -= At(r, c);
      }
    }
  }

  /// Installs the phase-2 objective, priced out against the current basis.
  void SetObjective(const std::vector<double>& objective) {
    double* z = &At(m_, 0);
    std::fill(z, z + n_total_ + 1, 0.0);
    for (uint32_t c = 0; c < n_struct_; ++c) z[c] = objective[c];
    for (uint32_t r = 0; r < m_; ++r) {
      const uint32_t b = basis_[r];
      const double cb = (b < n_struct_) ? objective[b] : 0.0;
      if (cb != 0.0) {
        for (uint32_t c = 0; c <= n_total_; ++c) z[c] -= cb * At(r, c);
      }
    }
  }

  /// After phase 1: any artificial still basic sits at value 0; pivot it
  /// out on any eligible column, or leave it (it can never re-enter).
  void PivotOutArtificials() {
    for (uint32_t r = 0; r < m_; ++r) {
      if (basis_[r] < n_struct_ + n_slack_) continue;
      for (uint32_t c = 0; c < n_struct_ + n_slack_; ++c) {
        if (std::abs(At(r, c)) > options_.eps) {
          Pivot(r, c);
          break;
        }
      }
    }
  }

  void Pivot(uint32_t prow, uint32_t pcol) {
    const double pivot = At(prow, pcol);
    const double inv = 1.0 / pivot;
    double* prow_p = &At(prow, 0);
    for (uint32_t c = 0; c <= n_total_; ++c) prow_p[c] *= inv;
    prow_p[pcol] = 1.0;
    for (uint32_t r = 0; r <= m_; ++r) {
      if (r == prow) continue;
      const double factor = At(r, pcol);
      if (factor == 0.0) continue;
      double* rp = &At(r, 0);
      for (uint32_t c = 0; c <= n_total_; ++c) rp[c] -= factor * prow_p[c];
      rp[pcol] = 0.0;
    }
    basis_[prow] = pcol;
    ++iterations_;
  }

  LpStatus Optimize(bool restrict_artificials) {
    const uint32_t limit_col =
        restrict_artificials ? n_struct_ + n_slack_ : n_total_;
    uint64_t stalled = 0;
    double last_obj = -At(m_, n_total_);
    while (iterations_ < options_.max_iterations) {
      // Pricing: Dantzig (most negative reduced cost); Bland's rule when
      // the objective has stalled, to break cycles.
      const bool bland = stalled > 64;
      uint32_t enter = UINT32_MAX;
      double best = -options_.eps;
      for (uint32_t c = 0; c < limit_col; ++c) {
        const double rc = At(m_, c);
        if (rc < best) {
          enter = c;
          if (bland) break;
          best = rc;
        }
      }
      if (enter == UINT32_MAX) return LpStatus::kOptimal;

      // Ratio test (Bland tie-break on basic variable index).
      uint32_t leave = UINT32_MAX;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (uint32_t r = 0; r < m_; ++r) {
        const double a = At(r, enter);
        if (a > options_.eps) {
          const double ratio = Rhs(r) / a;
          if (ratio < best_ratio - 1e-12 ||
              (ratio < best_ratio + 1e-12 && leave != UINT32_MAX &&
               basis_[r] < basis_[leave])) {
            best_ratio = ratio;
            leave = r;
          }
        }
      }
      if (leave == UINT32_MAX) return LpStatus::kUnbounded;
      Pivot(leave, enter);

      const double obj = -At(m_, n_total_);
      if (obj < last_obj - 1e-12) {
        stalled = 0;
        last_obj = obj;
      } else {
        ++stalled;
      }
    }
    return LpStatus::kIterationLimit;
  }

  SimplexOptions options_;
  uint32_t n_struct_ = 0, n_slack_ = 0, n_art_ = 0, n_total_ = 0, m_ = 0;
  std::vector<double> t_;
  std::vector<uint32_t> basis_;
  std::vector<bool> needs_art_;
  uint64_t iterations_ = 0;
};

}  // namespace

Result<LpSolution> SolveSimplex(const LinearProgram& lp,
                                const SimplexOptions& options) {
  if (lp.objective.size() != lp.num_vars) {
    return Status::InvalidArgument("objective size != num_vars");
  }
  for (const auto* rows : {&lp.eq, &lp.ub}) {
    for (const auto& row : *rows) {
      for (const auto& [var, coeff] : row.coeffs) {
        (void)coeff;
        if (var >= lp.num_vars) {
          return Status::InvalidArgument("constraint references bad variable");
        }
      }
    }
  }

  Tableau tableau(lp, options);
  LpSolution sol;
  sol.status = tableau.Solve(lp.objective);
  sol.iterations = tableau.iterations();
  if (sol.status == LpStatus::kOptimal) {
    sol.x = tableau.Extract();
    sol.objective = 0.0;
    for (uint32_t c = 0; c < lp.num_vars; ++c) {
      sol.objective += lp.objective[c] * sol.x[c];
    }
  }
  return sol;
}

}  // namespace rmgp
