#!/usr/bin/env bash
# Regenerates every figure of the paper's evaluation section.
#
#   scripts/run_figures.sh [--paper] [OUT_DIR]
#
# Default scale finishes in a few minutes; --paper uses the published
# dataset sizes (the Fig 13/14 runs then need several GB of RAM and tens
# of minutes, and the Fig 7/8 UML_lp sweeps can take hours — the LP is
# the paper's point).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD=${BUILD_DIR:-build}
PAPER=""
OUT="bench_results"
for arg in "$@"; do
  case "$arg" in
    --paper) PAPER="--paper" ;;
    *) OUT="$arg" ;;
  esac
done

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"

for fig in 7_vs_k 8_vs_v 9_normalization 10_heuristics 11_alpha \
           12_optimizations 13_dg_vs_fae 14_dg_rounds; do
  echo "=== fig${fig} ==="
  "$BUILD/bench/bench_fig${fig}" $PAPER --out "$OUT"
done

for ab in order threads warmstart dynamic normalization multistart \
          placement; do
  echo "=== ablation_${ab} ==="
  "$BUILD/bench/bench_ablation_${ab}" $PAPER --out "$OUT"
done

"$BUILD/bench/bench_micro"
echo "CSVs in $OUT/"
