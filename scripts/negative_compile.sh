#!/usr/bin/env bash
# Thread-safety negative-compile gate.
#
# Each tests/negative_compile/bad_*.cc encodes one locking violation
# (guarded field without the lock, RMGP_REQUIRES not held, lock-order
# inversion) and must FAIL to compile under clang's
#   -Wthread-safety -Wthread-safety-beta -Werror
# while good_*.cc (the same shapes, locked correctly) must compile. This
# is what keeps the annotation macros honest: if someone hollows out
# RMGP_GUARDED_BY, the bad fixtures start compiling and this gate fails.
#
# Under non-clang compilers the annotations expand to nothing, so every
# fixture compiles; the script then only checks that the fixtures are
# valid C++ (a cheap guard against bit-rotted fixtures) and reports SKIP
# for the rejection checks.
#
# Usage: negative_compile.sh [CXX] [REPO_ROOT]

set -u

CXX="${1:-clang++}"
ROOT="${2:-$(cd "$(dirname "$0")/.." && pwd)}"
FIXTURES="$ROOT/tests/negative_compile"
COMMON=(-std=c++20 -fsyntax-only -I "$ROOT/src")

if ! "$CXX" --version 2>/dev/null | grep -qi clang; then
  echo "negative_compile: $CXX is not clang — thread-safety analysis" \
       "unavailable; checking the fixtures still parse (SKIP rejections)"
  status=0
  for f in "$FIXTURES"/*.cc; do
    if "$CXX" "${COMMON[@]}" "$f"; then
      echo "ok (parses): ${f##*/}"
    else
      echo "FAIL (fixture bit-rot): ${f##*/} is no longer valid C++"
      status=1
    fi
  done
  exit "$status"
fi

TSA=("${COMMON[@]}" -Wthread-safety -Wthread-safety-beta -Werror)
status=0

for f in "$FIXTURES"/bad_*.cc; do
  if "$CXX" "${TSA[@]}" "$f" 2>/dev/null; then
    echo "FAIL: ${f##*/} compiled cleanly; expected a thread-safety error"
    status=1
  else
    echo "ok (rejected): ${f##*/}"
  fi
done

for f in "$FIXTURES"/good_*.cc; do
  if "$CXX" "${TSA[@]}" "$f"; then
    echo "ok (accepted): ${f##*/}"
  else
    echo "FAIL: ${f##*/} must compile under the analysis"
    status=1
  fi
done

exit "$status"
