// Ablation (beyond the paper): the equilibrium landscape in practice.
// Runs the game from many random initializations and reports the spread
// of equilibria (empirical best / mean / worst) against the closest-init
// heuristic and the UML LP lower bound — how much does a single random
// start risk, and how close does multi-start get to the LP?

#include <memory>

#include "baselines/uml_lp.h"
#include "bench/bench_common.h"
#include "core/game_analysis.h"
#include "core/normalization.h"
#include "core/solver.h"
#include "data/datasets.h"
#include "graph/sampling.h"

using namespace rmgp;
using bench::BenchArgs;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);

  // Small Forest-Fire samples so the LP lower bound stays affordable.
  GowallaLikeOptions gopt;
  GeoSocialDataset ds = MakeGowallaLike(gopt);
  const NodeId v = args.paper ? 120 : 60;
  const ClassId k = 5;
  ForestFireOptions ff;
  ff.seed = 41;
  std::vector<NodeId> nodes;
  Graph sub = ForestFireSubgraph(ds.graph, v, ff, &nodes);
  std::vector<Point> users;
  for (NodeId u : nodes) users.push_back(ds.user_locations[u]);
  std::vector<Point> events(ds.event_pool.begin(),
                            ds.event_pool.begin() + k);
  auto costs = std::make_shared<EuclideanCostProvider>(users, events);
  auto inst = Instance::Create(&sub, costs, 0.5);
  if (!inst.ok()) return 1;
  if (!NormalizeExact(&inst.value(), NormalizationPolicy::kPessimistic)
           .ok()) {
    return 1;
  }
  std::printf("ablation_multistart: |V|=%u, k=%u, normalized\n", v, k);

  auto lp = SolveUmlLp(*inst);
  if (!lp.ok()) return 1;

  SolverOptions copt;
  copt.init = InitPolicy::kClosestClass;
  copt.order = OrderPolicy::kDegreeDesc;
  auto closest = SolveGlobalTable(*inst, copt);
  if (!closest.ok()) return 1;

  Table tab({"starts", "best", "mean", "worst", "spread",
             "best/LP_bound"});
  for (uint32_t starts : {1u, 4u, 16u, 64u}) {
    MultiStartOptions mopt;
    mopt.num_starts = starts;
    mopt.seed = 5;
    auto sample = SampleEquilibria(*inst, mopt);
    if (!sample.ok()) return 1;
    tab.AddRow({Table::Int(starts), Table::Num(sample->best, 3),
                Table::Num(sample->mean, 3), Table::Num(sample->worst, 3),
                Table::Num(sample->spread, 4),
                Table::Num(sample->best / lp->lp_lower_bound, 4)});
  }
  tab.AddRow({"closest-init", Table::Num(closest->objective.total, 3), "",
              "", "",
              Table::Num(closest->objective.total / lp->lp_lower_bound,
                         4)});
  tab.AddRow({"LP_bound", Table::Num(lp->lp_lower_bound, 3), "", "", "",
              "1.0000"});

  bench::Emit(args, "ablation_multistart", tab);
  return 0;
}
