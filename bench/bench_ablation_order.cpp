// Ablation (beyond the paper): how the round-order policy affects rounds
// to convergence and quality. The paper motivates decreasing-degree order
// ("community leaders first", §3.1); this bench adds increasing-degree and
// node-id orders for contrast, across several seeds.

#include <vector>

#include "bench/bench_common.h"
#include "baselines/label_propagation.h"
#include "core/normalization.h"
#include "core/solver.h"
#include "data/datasets.h"
#include "spatial/estimators.h"
#include "util/stats.h"

using namespace rmgp;
using bench::BenchArgs;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);

  GowallaLikeOptions gopt;
  gopt.num_users = args.paper ? 12748 : 4000;
  gopt.num_edges = static_cast<uint64_t>(gopt.num_users * 3.8);
  GeoSocialDataset ds = MakeGowallaLike(gopt);
  const ClassId k = 32;
  auto costs = ds.MakeCosts(k);
  DistanceEstimates est =
      EstimateDistances(ds.user_locations, costs->events());
  std::printf("ablation_order: %s |V|=%u, k=%u, closest init\n",
              ds.name.c_str(), ds.graph.num_nodes(), k);

  struct Policy {
    const char* name;
    OrderPolicy order;
  };
  const Policy policies[] = {
      {"random", OrderPolicy::kRandom},
      {"degree_desc", OrderPolicy::kDegreeDesc},
      {"degree_asc", OrderPolicy::kDegreeAsc},
      {"node_id", OrderPolicy::kNodeId},
  };

  Table tab({"order", "mean_rounds", "mean_ms", "mean_total_cost"});
  for (const Policy& policy : policies) {
    RunningStats rounds, ms, cost;
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      auto inst = Instance::Create(&ds.graph, costs, 0.5);
      if (!inst.ok()) return 1;
      if (!Normalize(&inst.value(), NormalizationPolicy::kPessimistic,
                     {est.dist_min, est.dist_med})
               .ok()) {
        return 1;
      }
      SolverOptions sopt;
      sopt.init = InitPolicy::kClosestClass;
      sopt.order = policy.order;
      sopt.seed = seed;
      sopt.record_rounds = false;
      auto res = SolveBaseline(*inst, sopt);
      if (!res.ok()) return 1;
      rounds.Add(res->rounds);
      ms.Add(res->total_millis);
      cost.Add(res->objective.total);
    }
    tab.AddRow({policy.name, Table::Num(rounds.mean(), 1),
                Table::Num(ms.mean(), 2), Table::Num(cost.mean(), 1)});
  }
  // Steepest descent (RMGP_pq): no rounds, one asynchronous sweep driven
  // by a max-heap of improvements.
  {
    RunningStats ms, cost;
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      auto inst = Instance::Create(&ds.graph, costs, 0.5);
      if (!inst.ok()) return 1;
      if (!Normalize(&inst.value(), NormalizationPolicy::kPessimistic,
                     {est.dist_min, est.dist_med})
               .ok()) {
        return 1;
      }
      SolverOptions sopt;
      sopt.init = InitPolicy::kClosestClass;
      sopt.seed = seed;
      sopt.record_rounds = false;
      auto res = SolveBestImprovement(*inst, sopt);
      if (!res.ok()) return 1;
      ms.Add(res->total_millis);
      cost.Add(res->objective.total);
    }
    tab.AddRow({"best_improvement", "-", Table::Num(ms.mean(), 2),
                Table::Num(cost.mean(), 1)});
  }
  // Community-seeded initialization: warm-start the game from the
  // label-propagation + Hungarian solution.
  {
    RunningStats rounds, ms, cost;
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      auto inst = Instance::Create(&ds.graph, costs, 0.5);
      if (!inst.ok()) return 1;
      if (!Normalize(&inst.value(), NormalizationPolicy::kPessimistic,
                     {est.dist_min, est.dist_med})
               .ok()) {
        return 1;
      }
      LabelPropagationOptions lopt;
      lopt.seed = seed;
      auto lph = SolveLabelPropagationHungarian(*inst, lopt);
      if (!lph.ok()) return 1;
      SolverOptions sopt;
      sopt.init = InitPolicy::kGiven;
      sopt.warm_start = lph->assignment;
      sopt.order = OrderPolicy::kDegreeDesc;
      sopt.seed = seed;
      sopt.record_rounds = false;
      auto res = SolveBaseline(*inst, sopt);
      if (!res.ok()) return 1;
      rounds.Add(res->rounds);
      ms.Add(res->total_millis + lph->total_millis);
      cost.Add(res->objective.total);
    }
    tab.AddRow({"lph_seeded", Table::Num(rounds.mean(), 1),
                Table::Num(ms.mean(), 2), Table::Num(cost.mean(), 1)});
  }

  bench::Emit(args, "ablation_order", tab);
  return 0;
}
