// Ablation (beyond the paper, motivated by its §1/§3.1 online setting):
// maintaining the equilibrium incrementally under a stream of check-ins
// and event changes (DynamicGame) versus re-solving from scratch after
// every update. Reports wall time and best-response examinations per
// update.

#include <memory>

#include "bench/bench_common.h"
#include "core/dynamic_game.h"
#include "core/normalization.h"
#include "core/solver.h"
#include "data/datasets.h"
#include "spatial/estimators.h"
#include "util/rng.h"
#include "util/stopwatch.h"

using namespace rmgp;
using bench::BenchArgs;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);

  GowallaLikeOptions gopt;
  gopt.num_users = args.paper ? 12748 : 5000;
  gopt.num_edges = static_cast<uint64_t>(gopt.num_users * 3.8);
  gopt.num_events = 32;
  GeoSocialDataset ds = MakeGowallaLike(gopt);
  const ClassId k = 32;
  std::printf("ablation_dynamic: |V|=%u, k=%u, update stream of check-ins\n",
              ds.graph.num_nodes(), k);

  std::vector<Point> events(ds.event_pool.begin(), ds.event_pool.begin() + k);
  DistanceEstimates est = EstimateDistances(ds.user_locations, events);
  auto costs =
      std::make_shared<EuclideanCostProvider>(ds.user_locations, events);
  auto inst = Instance::Create(&ds.graph, costs, 0.5);
  if (!inst.ok()) return 1;
  auto cn = Normalize(&inst.value(), NormalizationPolicy::kPessimistic,
                      {est.dist_min, est.dist_med});
  if (!cn.ok()) return 1;

  SolverOptions sopt;
  sopt.init = InitPolicy::kClosestClass;
  sopt.order = OrderPolicy::kNodeId;
  sopt.record_rounds = false;

  auto game = DynamicGame::Create(&ds.graph, ds.user_locations, events,
                                  0.5, *cn, sopt);
  if (!game.ok()) return 1;

  const int kUpdates = 200;
  Rng rng(77);

  // --- Incremental: apply kUpdates single-check-in updates.
  Table tab({"strategy", "updates", "total_ms", "ms_per_update",
             "examinations", "objective"});
  std::vector<std::pair<NodeId, Point>> stream;
  for (int i = 0; i < kUpdates; ++i) {
    const NodeId v =
        static_cast<NodeId>(rng.UniformInt(ds.graph.num_nodes()));
    Point p = ds.user_locations[v];
    p.x += rng.Gaussian(0.0, 8.0);
    p.y += rng.Gaussian(0.0, 8.0);
    stream.push_back({v, p});
  }

  {
    Stopwatch sw;
    const uint64_t exams_before = (*game)->total_examinations();
    for (const auto& [v, p] : stream) {
      if (!(*game)->UpdateUserLocation(v, p).ok()) return 1;
    }
    const double ms = sw.ElapsedMillis();
    tab.AddRow({"incremental", Table::Int(kUpdates), Table::Num(ms, 2),
                Table::Num(ms / kUpdates, 4),
                Table::Int(static_cast<long long>(
                    (*game)->total_examinations() - exams_before)),
                Table::Num((*game)->Objective().total, 1)});
  }

  // --- Re-solve: after each update run RMGP_gt from a warm start (the
  // §3.1 recommendation without incremental state).
  {
    std::vector<Point> locations = ds.user_locations;
    auto resolve_costs =
        std::make_shared<EuclideanCostProvider>(locations, events);
    Assignment warm;
    Stopwatch sw;
    uint64_t examinations = 0;
    double final_obj = 0.0;
    for (const auto& [v, p] : stream) {
      locations[v] = p;
      resolve_costs =
          std::make_shared<EuclideanCostProvider>(locations, events);
      auto step_inst = Instance::Create(&ds.graph, resolve_costs, 0.5);
      if (!step_inst.ok()) return 1;
      step_inst->set_cost_scale(*cn);
      SolverOptions wopt = sopt;
      if (!warm.empty()) {
        wopt.init = InitPolicy::kGiven;
        wopt.warm_start = warm;
      }
      wopt.record_rounds = true;
      auto res = SolveGlobalTable(*step_inst, wopt);
      if (!res.ok()) return 1;
      warm = res->assignment;
      for (const RoundStats& rs : res->round_stats) {
        examinations += rs.examined;
      }
      final_obj = res->objective.total;
    }
    const double ms = sw.ElapsedMillis();
    tab.AddRow({"resolve_warm", Table::Int(kUpdates), Table::Num(ms, 2),
                Table::Num(ms / kUpdates, 4),
                Table::Int(static_cast<long long>(examinations)),
                Table::Num(final_obj, 1)});
  }

  bench::Emit(args, "ablation_dynamic", tab);
  return 0;
}
