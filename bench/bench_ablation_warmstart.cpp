// Ablation (paper §3.1, last paragraph): repeated executions — e.g.
// location-based advertisements sent every hour — can seed each run with
// the previous solution. This bench perturbs a fraction of user locations
// between runs and compares cold-start vs warm-start rounds and time.

#include <vector>

#include "bench/bench_common.h"
#include "core/normalization.h"
#include "core/solver.h"
#include "data/datasets.h"
#include "spatial/estimators.h"
#include "util/rng.h"

using namespace rmgp;
using bench::BenchArgs;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);

  GowallaLikeOptions gopt;
  gopt.num_users = args.paper ? 12748 : 5000;
  gopt.num_edges = static_cast<uint64_t>(gopt.num_users * 3.8);
  GeoSocialDataset ds = MakeGowallaLike(gopt);
  const ClassId k = 32;
  std::printf("ablation_warmstart: |V|=%u, k=%u\n", ds.graph.num_nodes(),
              k);

  Table tab({"moved_frac", "cold_rounds", "cold_ms", "warm_rounds",
             "warm_ms"});

  for (double moved_frac : {0.01, 0.05, 0.2, 0.5}) {
    // Hour 0: solve from scratch.
    auto costs0 = ds.MakeCosts(k);
    DistanceEstimates est0 =
        EstimateDistances(ds.user_locations, costs0->events());
    auto inst0 = Instance::Create(&ds.graph, costs0, 0.5);
    if (!inst0.ok()) return 1;
    if (!Normalize(&inst0.value(), NormalizationPolicy::kPessimistic,
                   {est0.dist_min, est0.dist_med})
             .ok()) {
      return 1;
    }
    SolverOptions cold;
    cold.init = InitPolicy::kClosestClass;
    cold.order = OrderPolicy::kDegreeDesc;
    cold.record_rounds = false;
    auto hour0 = SolveGlobalTable(*inst0, cold);
    if (!hour0.ok()) return 1;

    // Hour 1: a fraction of users checked in somewhere new.
    Rng rng(11);
    std::vector<Point> moved = ds.user_locations;
    for (NodeId v = 0; v < moved.size(); ++v) {
      if (rng.Bernoulli(moved_frac)) {
        moved[v].x += rng.Gaussian(0.0, 10.0);
        moved[v].y += rng.Gaussian(0.0, 10.0);
      }
    }
    std::vector<Point> events(ds.event_pool.begin(),
                              ds.event_pool.begin() + k);
    auto costs1 = std::make_shared<EuclideanCostProvider>(moved, events);
    DistanceEstimates est1 = EstimateDistances(moved, events);
    auto inst1 = Instance::Create(&ds.graph, costs1, 0.5);
    if (!inst1.ok()) return 1;
    if (!Normalize(&inst1.value(), NormalizationPolicy::kPessimistic,
                   {est1.dist_min, est1.dist_med})
             .ok()) {
      return 1;
    }

    auto cold1 = SolveGlobalTable(*inst1, cold);
    if (!cold1.ok()) return 1;
    SolverOptions warm = cold;
    warm.init = InitPolicy::kGiven;
    warm.warm_start = hour0->assignment;
    auto warm1 = SolveGlobalTable(*inst1, warm);
    if (!warm1.ok()) return 1;

    tab.AddRow({Table::Num(moved_frac, 2), Table::Int(cold1->rounds),
                Table::Num(cold1->total_millis, 2),
                Table::Int(warm1->rounds),
                Table::Num(warm1->total_millis, 2)});
  }

  bench::Emit(args, "ablation_warmstart", tab);
  return 0;
}
