// Figure 11: effect of the preference parameter α (k = 32) on the
// Gowalla-like dataset with pessimistic normalization.
// (a) running time and rounds per variant (paper: heuristics 5-8 rounds,
//     plain baseline 9-11);
// (b) quality split — small α suppresses the social component; α = 0.9
//     pins users to their closest events.

#include <vector>

#include "bench/bench_common.h"
#include "core/normalization.h"
#include "core/solver.h"
#include "data/datasets.h"
#include "spatial/estimators.h"

using namespace rmgp;
using bench::BenchArgs;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);

  GowallaLikeOptions gopt;
  if (!args.paper) {
    gopt.num_users = 4000;
    gopt.num_edges = 15200;
  }
  GeoSocialDataset ds = MakeGowallaLike(gopt);
  const ClassId k = 32;
  std::printf("fig11: %s |V|=%u, k=%u, pessimistic RMGP_N\n",
              ds.name.c_str(), ds.graph.num_nodes(), k);

  Table time_tab({"alpha", "RMGP_b_ms", "RMGP_b_rounds", "RMGP_b+i_ms",
                  "RMGP_b+i_rounds", "RMGP_b+i+o_ms", "RMGP_b+i+o_rounds"});
  Table qual_tab(
      {"alpha", "variant", "assignment", "social", "total"});

  struct Variant {
    const char* name;
    InitPolicy init;
    OrderPolicy order;
  };
  const Variant variants[] = {
      {"RMGP_b", InitPolicy::kRandom, OrderPolicy::kRandom},
      {"RMGP_b+i", InitPolicy::kClosestClass, OrderPolicy::kRandom},
      {"RMGP_b+i+o", InitPolicy::kClosestClass, OrderPolicy::kDegreeDesc},
  };

  auto costs = ds.MakeCosts(k);
  DistanceEstimates est =
      EstimateDistances(ds.user_locations, costs->events());

  for (double alpha : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    std::vector<std::string> time_row{Table::Num(alpha, 1)};
    for (const Variant& variant : variants) {
      auto inst = Instance::Create(&ds.graph, costs, alpha);
      if (!inst.ok()) return 1;
      if (auto cn = Normalize(&inst.value(),
                              NormalizationPolicy::kPessimistic,
                              {est.dist_min, est.dist_med});
          !cn.ok()) {
        return 1;
      }
      SolverOptions sopt;
      sopt.init = variant.init;
      sopt.order = variant.order;
      sopt.seed = 7;
      sopt.record_rounds = false;
      auto res = SolveBaseline(*inst, sopt);
      if (!res.ok()) return 1;
      time_row.push_back(Table::Num(res->total_millis, 2));
      time_row.push_back(Table::Int(res->rounds));
      qual_tab.AddRow({Table::Num(alpha, 1), variant.name,
                       Table::Num(res->objective.assignment, 1),
                       Table::Num(res->objective.social, 1),
                       Table::Num(res->objective.total, 1)});
    }
    time_tab.AddRow(std::move(time_row));
  }

  bench::Emit(args, "fig11a_time_vs_alpha", time_tab);
  bench::Emit(args, "fig11b_quality_vs_alpha", qual_tab);
  return 0;
}
