// Figure 13: DG vs FaE on the Foursquare-like dataset (2 slaves + master
// on a simulated 100 Mbps interconnect), total time vs k, α = 0.5,
// RMGP_all underneath. FaE time stacks graph-transfer (query-independent)
// on top of local execution; DG avoids the transfer and parallelizes
// round-0 initialization across slaves.
//
// Default runs at 1/50 of the paper's dataset scale; --paper uses the
// full 2.15M users / 27M edges (needs several GB of RAM).

#include <vector>

#include "bench/bench_common.h"
#include "core/normalization.h"
#include "data/datasets.h"
#include "dist/decentralized.h"
#include "spatial/estimators.h"

using namespace rmgp;
using bench::BenchArgs;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);

  FoursquareLikeOptions fopt;
  fopt.scale = args.paper ? 1.0 : 0.02;
  fopt.max_events = 1024;
  std::printf("building foursquare-like dataset (scale %.3f)...\n",
              fopt.scale);
  GeoSocialDataset ds = MakeFoursquareLike(fopt);
  std::printf("fig13: |V|=%u |E|=%llu, alpha=0.5, 2 slaves, 100 Mbps\n",
              ds.graph.num_nodes(),
              static_cast<unsigned long long>(ds.graph.num_edges()));

  const std::vector<ClassId> ks =
      args.paper ? std::vector<ClassId>{64, 128, 256, 512, 1024}
                 : std::vector<ClassId>{64, 128, 256};

  Table tab({"k", "FaE_transfer_s", "FaE_execute_s", "FaE_total_s",
             "DG_total_s", "DG_data_MB", "FaE_data_MB"});

  for (ClassId k : ks) {
    auto costs = ds.MakeCosts(k);
    DistanceEstimates est =
        EstimateDistances(ds.user_locations, costs->events());
    auto inst = Instance::Create(&ds.graph, costs, 0.5);
    if (!inst.ok()) return 1;
    if (!Normalize(&inst.value(), NormalizationPolicy::kPessimistic,
                   {est.dist_min, est.dist_med})
             .ok()) {
      return 1;
    }

    DecentralizedOptions dopt;
    dopt.num_slaves = 2;
    dopt.network.bandwidth_mbps = 100.0;
    dopt.network.latency_ms = 0.2;
    dopt.solver.init = InitPolicy::kClosestClass;
    dopt.solver.order = OrderPolicy::kDegreeDesc;
    dopt.solver.num_threads = 4;
    dopt.solver.record_rounds = false;

    auto fae = RunFetchAndExecute(*inst, dopt);
    if (!fae.ok()) return 1;
    auto dg = RunDecentralizedGame(*inst, dopt);
    if (!dg.ok()) return 1;

    tab.AddRow({Table::Int(k), Table::Num(fae->transfer_seconds, 2),
                Table::Num(fae->execute_seconds, 2),
                Table::Num(fae->total_seconds, 2),
                Table::Num(dg->simulated_seconds, 2),
                Table::Num(dg->traffic.bytes / 1e6, 2),
                Table::Num(fae->traffic.bytes / 1e6, 2)});
  }

  bench::Emit(args, "fig13_dg_vs_fae", tab);
  return 0;
}
