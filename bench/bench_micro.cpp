// Micro-benchmarks (google-benchmark) for the hot paths of the library:
// the per-user best response (Lemma 1's O(k + deg_v) inner loop),
// objective/potential evaluation, graph construction, coloring, sampling
// and the spatial index.

#include <benchmark/benchmark.h>

#include <memory>

#include "core/objective.h"
#include "core/solver.h"
#include "core/solver_internal.h"
#include "data/datasets.h"
#include "graph/coloring.h"
#include "graph/generators.h"
#include "graph/sampling.h"
#include "spatial/grid_index.h"
#include "util/rng.h"

namespace rmgp {
namespace {

struct Fixture {
  GeoSocialDataset ds;
  std::shared_ptr<EuclideanCostProvider> costs;
  std::unique_ptr<Instance> inst;
  Assignment assignment;

  Fixture(NodeId users, ClassId k) {
    GowallaLikeOptions opt;
    opt.num_users = users;
    opt.num_edges = static_cast<uint64_t>(users * 3.8);
    opt.num_events = k;
    ds = MakeGowallaLike(opt);
    costs = ds.MakeCosts(k);
    auto created = Instance::Create(&ds.graph, costs, 0.5);
    inst = std::make_unique<Instance>(std::move(created).value());
    Rng rng(1);
    assignment.resize(users);
    for (auto& a : assignment) a = static_cast<ClassId>(rng.UniformInt(k));
  }
};

Fixture& SharedFixture() {
  static Fixture fixture(4000, 32);
  return fixture;
}

void BM_BestResponse(benchmark::State& state) {
  Fixture& f = SharedFixture();
  const auto max_sc = internal::ComputeMaxSocialCosts(*f.inst);
  std::vector<double> scratch(f.inst->num_classes());
  NodeId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(internal::BestResponseScratch(
        *f.inst, f.assignment, v, max_sc, kernels::ActiveKernels(),
        scratch.data()));
    v = (v + 1) % f.inst->num_users();
  }
}
BENCHMARK(BM_BestResponse);

void BM_EvaluateObjective(benchmark::State& state) {
  Fixture& f = SharedFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateObjective(*f.inst, f.assignment));
  }
}
BENCHMARK(BM_EvaluateObjective);

void BM_VerifyEquilibrium(benchmark::State& state) {
  Fixture& f = SharedFixture();
  SolverOptions opt;
  opt.record_rounds = false;
  auto res = SolveGlobalTable(*f.inst, opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(VerifyEquilibrium(*f.inst, res->assignment));
  }
}
BENCHMARK(BM_VerifyEquilibrium);

void BM_SolveGlobalTable(benchmark::State& state) {
  Fixture& f = SharedFixture();
  SolverOptions opt;
  opt.init = InitPolicy::kClosestClass;
  opt.order = OrderPolicy::kDegreeDesc;
  opt.record_rounds = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveGlobalTable(*f.inst, opt));
  }
}
BENCHMARK(BM_SolveGlobalTable);

void BM_GraphBuild(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Graph src = BarabasiAlbert(n, 4, 3);
  auto edges = src.CollectEdges();
  for (auto _ : state) {
    GraphBuilder b(n);
    for (const Edge& e : edges) {
      benchmark::DoNotOptimize(b.AddEdge(e.u, e.v, e.weight));
    }
    Graph g = std::move(b).Build();
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(edges.size()));
}
BENCHMARK(BM_GraphBuild)->Arg(1000)->Arg(10000);

void BM_GreedyColoring(benchmark::State& state) {
  Graph g = BarabasiAlbert(static_cast<NodeId>(state.range(0)), 4, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GreedyColoring(g));
  }
}
BENCHMARK(BM_GreedyColoring)->Arg(1000)->Arg(10000);

void BM_ForestFire(benchmark::State& state) {
  Graph g = BarabasiAlbert(20000, 4, 3);
  ForestFireOptions opt;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ForestFireSample(g, static_cast<NodeId>(state.range(0)), opt));
  }
}
BENCHMARK(BM_ForestFire)->Arg(200)->Arg(2000);

void BM_GridNearest(benchmark::State& state) {
  Rng rng(5);
  std::vector<Point> pts;
  for (int i = 0; i < 1024; ++i) {
    pts.push_back({rng.UniformDouble(0, 100), rng.UniformDouble(0, 100)});
  }
  GridIndex idx(pts, 32);
  for (auto _ : state) {
    Point q{rng.UniformDouble(0, 100), rng.UniformDouble(0, 100)};
    benchmark::DoNotOptimize(idx.Nearest(q));
  }
}
BENCHMARK(BM_GridNearest);

}  // namespace
}  // namespace rmgp

BENCHMARK_MAIN();
