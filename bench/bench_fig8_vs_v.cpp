// Figure 8: RMGP_b vs MH vs UML_lp vs UML_gr as a function of node
// cardinality |V| (paper: 100..300, k = 7). Same setup as Fig 7 with the
// sweep over the Forest-Fire sample size instead of k.

#include <memory>
#include <vector>

#include "baselines/mh.h"
#include "baselines/uml_gr.h"
#include "baselines/uml_lp.h"
#include "bench/bench_common.h"
#include "core/solver.h"
#include "data/datasets.h"
#include "graph/sampling.h"

using namespace rmgp;
using bench::BenchArgs;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);

  GowallaLikeOptions gopt;
  GeoSocialDataset ds = MakeGowallaLike(gopt);

  const ClassId k = args.paper ? 7 : 4;
  const std::vector<NodeId> vs =
      args.paper ? std::vector<NodeId>{100, 150, 200, 250, 300}
                 : std::vector<NodeId>{40, 60, 80, 100};
  std::printf("fig8: k=%u, alpha=0.5, Forest-Fire samples of %s\n", k,
              ds.name.c_str());

  Table time_tab({"V", "RMGP_b_ms", "MH_ms", "UML_gr_ms", "UML_lp_ms"});
  Table qual_tab({"V", "RMGP_b", "MH", "UML_gr", "UML_lp", "LP_bound"});

  for (NodeId v : vs) {
    ForestFireOptions ff;
    ff.seed = 31;
    std::vector<NodeId> nodes;
    Graph sub = ForestFireSubgraph(ds.graph, v, ff, &nodes);
    std::vector<Point> users;
    users.reserve(nodes.size());
    for (NodeId u : nodes) users.push_back(ds.user_locations[u]);
    std::vector<Point> events(ds.event_pool.begin(),
                              ds.event_pool.begin() + k);
    auto costs = std::make_shared<EuclideanCostProvider>(users, events);
    auto inst = Instance::Create(&sub, costs, 0.5);
    if (!inst.ok()) return 1;

    SolverOptions sopt;
    sopt.init = InitPolicy::kRandom;
    sopt.order = OrderPolicy::kRandom;
    sopt.seed = 7;
    sopt.record_rounds = false;
    auto game = SolveBaseline(*inst, sopt);
    if (!game.ok()) return 1;
    auto mh = SolveMetisHungarian(*inst);
    if (!mh.ok()) return 1;
    auto gr = SolveUmlGreedy(*inst);
    if (!gr.ok()) return 1;
    auto lp = SolveUmlLp(*inst);
    if (!lp.ok()) {
      std::fprintf(stderr, "UML_lp failed at V=%u: %s\n", v,
                   lp.status().ToString().c_str());
      return 1;
    }

    time_tab.AddRow({Table::Int(v), Table::Num(game->total_millis, 3),
                     Table::Num(mh->total_millis, 3),
                     Table::Num(gr->total_millis, 3),
                     Table::Num(lp->base.total_millis, 1)});
    qual_tab.AddRow({Table::Int(v), Table::Num(game->objective.total, 2),
                     Table::Num(mh->objective.total, 2),
                     Table::Num(gr->objective.total, 2),
                     Table::Num(lp->base.objective.total, 2),
                     Table::Num(lp->lp_lower_bound, 2)});
  }

  bench::Emit(args, "fig8a_time_vs_v", time_tab);
  bench::Emit(args, "fig8b_quality_vs_v", qual_tab);
  return 0;
}
