// Ablation (beyond the paper): thread-count scaling of the parallel
// variants RMGP_is and RMGP_all (the paper's parameter T, §4.2). Also
// reports the number of color groups — the parallelism ceiling per round.

#include "bench/bench_common.h"
#include "core/normalization.h"
#include "core/solver.h"
#include "data/datasets.h"
#include "graph/coloring.h"
#include "spatial/estimators.h"

using namespace rmgp;
using bench::BenchArgs;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);

  GowallaLikeOptions gopt;
  gopt.num_users = args.paper ? 12748 : 6000;
  gopt.num_edges = static_cast<uint64_t>(gopt.num_users * 3.8);
  GeoSocialDataset ds = MakeGowallaLike(gopt);
  const ClassId k = 64;
  auto costs = ds.MakeCosts(k);
  DistanceEstimates est =
      EstimateDistances(ds.user_locations, costs->events());

  const Coloring coloring = GreedyColoring(ds.graph);
  std::printf("ablation_threads: |V|=%u, k=%u, %u color groups\n",
              ds.graph.num_nodes(), k, coloring.num_colors());

  Table tab({"threads", "RMGP_is_ms", "RMGP_all_ms"});
  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    std::vector<std::string> row{Table::Int(threads)};
    for (SolverKind kind :
         {SolverKind::kIndependentSets, SolverKind::kAll}) {
      auto inst = Instance::Create(&ds.graph, costs, 0.5);
      if (!inst.ok()) return 1;
      if (!Normalize(&inst.value(), NormalizationPolicy::kPessimistic,
                     {est.dist_min, est.dist_med})
               .ok()) {
        return 1;
      }
      SolverOptions sopt;
      sopt.init = InitPolicy::kClosestClass;
      sopt.order = OrderPolicy::kDegreeDesc;
      sopt.num_threads = threads;
      sopt.seed = 7;
      sopt.record_rounds = false;
      auto res = Solve(kind, *inst, sopt);
      if (!res.ok()) return 1;
      row.push_back(Table::Num(res->total_millis, 2));
    }
    tab.AddRow(std::move(row));
  }

  bench::Emit(args, "ablation_threads", tab);
  return 0;
}
