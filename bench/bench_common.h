#ifndef RMGP_BENCH_BENCH_COMMON_H_
#define RMGP_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "util/table.h"

namespace rmgp {
namespace bench {

/// Shared command-line convention for the figure benches:
///   --paper   run at the paper's full dataset scale (slow)
///   --out DIR write CSVs into DIR (default ./bench_results)
struct BenchArgs {
  bool paper = false;
  std::string out_dir = "bench_results";

  static BenchArgs Parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--paper") == 0) {
        args.paper = true;
      } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
        args.out_dir = argv[++i];
      } else {
        std::fprintf(stderr,
                     "usage: %s [--paper] [--out DIR]\n"
                     "  --paper  full paper-scale datasets (slow)\n"
                     "  --out    CSV output directory\n",
                     argv[0]);
        std::exit(2);
      }
    }
    return args;
  }
};

/// Prints the table and writes it as CSV under args.out_dir.
inline void Emit(const BenchArgs& args, const std::string& name,
                 const Table& table) {
  std::printf("\n== %s ==\n%s", name.c_str(), table.ToString().c_str());
  std::error_code ec;
  std::filesystem::create_directories(args.out_dir, ec);
  const std::string path = args.out_dir + "/" + name + ".csv";
  if (Status s = table.WriteCsv(path); !s.ok()) {
    std::fprintf(stderr, "warning: %s\n", s.ToString().c_str());
  } else {
    std::printf("(csv: %s)\n", path.c_str());
  }
}

}  // namespace bench
}  // namespace rmgp

#endif  // RMGP_BENCH_BENCH_COMMON_H_
