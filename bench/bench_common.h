#ifndef RMGP_BENCH_BENCH_COMMON_H_
#define RMGP_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "util/json.h"
#include "util/table.h"

namespace rmgp {
namespace bench {

/// Shared command-line convention for the figure benches:
///   --paper   run at the paper's full dataset scale (slow)
///   --out DIR write CSVs into DIR (default ./bench_results)
///   --json    additionally write each table as <name>.json
struct BenchArgs {
  bool paper = false;
  bool json = false;
  std::string out_dir = "bench_results";

  static BenchArgs Parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--paper") == 0) {
        args.paper = true;
      } else if (std::strcmp(argv[i], "--json") == 0) {
        args.json = true;
      } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
        args.out_dir = argv[++i];
      } else {
        std::fprintf(stderr,
                     "usage: %s [--paper] [--json] [--out DIR]\n"
                     "  --paper  full paper-scale datasets (slow)\n"
                     "  --json   also write machine-readable JSON\n"
                     "  --out    output directory\n",
                     argv[0]);
        std::exit(2);
      }
    }
    return args;
  }
};

/// A Table as a JSON array of one object per row, keyed by header.
inline Json TableToJson(const Table& table) {
  Json rows = Json::Array();
  for (const auto& row : table.rows()) {
    Json obj = Json::Object();
    for (size_t c = 0; c < table.headers().size(); ++c) {
      obj.Set(table.headers()[c], row[c]);
    }
    rows.Append(std::move(obj));
  }
  return rows;
}

/// Prints the table and writes it as CSV (and JSON with --json) under
/// args.out_dir.
inline void Emit(const BenchArgs& args, const std::string& name,
                 const Table& table) {
  std::printf("\n== %s ==\n%s", name.c_str(), table.ToString().c_str());
  std::error_code ec;
  std::filesystem::create_directories(args.out_dir, ec);
  const std::string path = args.out_dir + "/" + name + ".csv";
  if (Status s = table.WriteCsv(path); !s.ok()) {
    std::fprintf(stderr, "warning: %s\n", s.ToString().c_str());
  } else {
    std::printf("(csv: %s)\n", path.c_str());
  }
  if (args.json) {
    const std::string jpath = args.out_dir + "/" + name + ".json";
    if (Status s = TableToJson(table).WriteFile(jpath); !s.ok()) {
      std::fprintf(stderr, "warning: %s\n", s.ToString().c_str());
    } else {
      std::printf("(json: %s)\n", jpath.c_str());
    }
  }
}

}  // namespace bench
}  // namespace rmgp

#endif  // RMGP_BENCH_BENCH_COMMON_H_
