// Figure 12: the §4 optimizations on the Gowalla-like dataset with
// pessimistic normalization. All variants use the b+i+o heuristics
// (closest init, decreasing-degree order), as in the paper.
//   (a) time vs k (α = 0.5): RMGP_gt is the best single optimization;
//       RMGP_all the best overall;
//   (b) time vs α (k = 32): RMGP_se gains as α grows (valid regions
//       shrink);
//   (c) per-round time for k = 32, α = 0.5: round 0 is dearer for se/gt
//       (precomputation), RMGP_gt's rounds get cheaper over time.

#include <vector>

#include "bench/bench_common.h"
#include "core/normalization.h"
#include "core/solver.h"
#include "data/datasets.h"
#include "spatial/estimators.h"

using namespace rmgp;
using bench::BenchArgs;

namespace {

const SolverKind kKinds[] = {SolverKind::kBaseline,
                             SolverKind::kStrategyElimination,
                             SolverKind::kIndependentSets,
                             SolverKind::kGlobalTable, SolverKind::kAll};

SolverOptions MakeOptions(bool record_rounds) {
  SolverOptions sopt;
  sopt.init = InitPolicy::kClosestClass;
  sopt.order = OrderPolicy::kDegreeDesc;
  sopt.num_threads = 4;
  sopt.seed = 7;
  sopt.record_rounds = record_rounds;
  return sopt;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);

  GowallaLikeOptions gopt;
  if (!args.paper) {
    gopt.num_users = 4000;
    gopt.num_edges = 15200;
  }
  GeoSocialDataset ds = MakeGowallaLike(gopt);
  std::printf("fig12: %s |V|=%u, pessimistic RMGP_N, b+i+o heuristics\n",
              ds.name.c_str(), ds.graph.num_nodes());

  const std::vector<ClassId> ks = args.paper
                                      ? std::vector<ClassId>{8, 16, 32, 64, 128}
                                      : std::vector<ClassId>{8, 16, 32, 64};

  // ---- (a) time vs k, alpha = 0.5.
  {
    Table tab({"k", "RMGP_b_ms", "RMGP_se_ms", "RMGP_is_ms", "RMGP_gt_ms",
               "RMGP_all_ms"});
    for (ClassId k : ks) {
      auto costs = ds.MakeCosts(k);
      DistanceEstimates est =
          EstimateDistances(ds.user_locations, costs->events());
      std::vector<std::string> row{Table::Int(k)};
      for (SolverKind kind : kKinds) {
        auto inst = Instance::Create(&ds.graph, costs, 0.5);
        if (!inst.ok()) return 1;
        if (!Normalize(&inst.value(), NormalizationPolicy::kPessimistic,
                       {est.dist_min, est.dist_med})
                 .ok()) {
          return 1;
        }
        auto res = Solve(kind, *inst, MakeOptions(false));
        if (!res.ok()) return 1;
        row.push_back(Table::Num(res->total_millis, 2));
      }
      tab.AddRow(std::move(row));
    }
    bench::Emit(args, "fig12a_time_vs_k", tab);
  }

  // ---- (b) time vs alpha, k = 32.
  {
    const ClassId k = 32;
    auto costs = ds.MakeCosts(k);
    DistanceEstimates est =
        EstimateDistances(ds.user_locations, costs->events());
    Table tab({"alpha", "RMGP_b_ms", "RMGP_se_ms", "RMGP_is_ms",
               "RMGP_gt_ms", "RMGP_all_ms", "se_pruned_frac"});
    for (double alpha : {0.1, 0.3, 0.5, 0.7, 0.9}) {
      std::vector<std::string> row{Table::Num(alpha, 1)};
      double pruned_frac = 0.0;
      for (SolverKind kind : kKinds) {
        auto inst = Instance::Create(&ds.graph, costs, alpha);
        if (!inst.ok()) return 1;
        if (!Normalize(&inst.value(), NormalizationPolicy::kPessimistic,
                       {est.dist_min, est.dist_med})
                 .ok()) {
          return 1;
        }
        auto res = Solve(kind, *inst, MakeOptions(false));
        if (!res.ok()) return 1;
        row.push_back(Table::Num(res->total_millis, 2));
        if (kind == SolverKind::kStrategyElimination) {
          pruned_frac = static_cast<double>(res->pruned_strategies) /
                        (static_cast<double>(ds.graph.num_nodes()) * k);
        }
      }
      row.push_back(Table::Num(pruned_frac, 3));
      tab.AddRow(std::move(row));
    }
    bench::Emit(args, "fig12b_time_vs_alpha", tab);
  }

  // ---- (c) per-round time, k = 32, alpha = 0.5.
  {
    const ClassId k = 32;
    auto costs = ds.MakeCosts(k);
    DistanceEstimates est =
        EstimateDistances(ds.user_locations, costs->events());
    Table tab({"round", "RMGP_b_ms", "RMGP_se_ms", "RMGP_is_ms",
               "RMGP_gt_ms", "RMGP_all_ms"});
    std::vector<std::vector<RoundStats>> per_kind;
    size_t max_rounds = 0;
    for (SolverKind kind : kKinds) {
      auto inst = Instance::Create(&ds.graph, costs, 0.5);
      if (!inst.ok()) return 1;
      if (!Normalize(&inst.value(), NormalizationPolicy::kPessimistic,
                     {est.dist_min, est.dist_med})
               .ok()) {
        return 1;
      }
      auto res = Solve(kind, *inst, MakeOptions(true));
      if (!res.ok()) return 1;
      max_rounds = std::max(max_rounds, res->round_stats.size());
      per_kind.push_back(res->round_stats);
    }
    for (size_t r = 0; r < max_rounds; ++r) {
      std::vector<std::string> row{Table::Int(static_cast<long long>(r))};
      for (const auto& stats : per_kind) {
        row.push_back(r < stats.size() ? Table::Num(stats[r].millis, 3)
                                       : std::string());
      }
      tab.AddRow(std::move(row));
    }
    bench::Emit(args, "fig12c_time_per_round", tab);
  }
  return 0;
}
