// Ablation (beyond the paper): slave placement × redistribution protocol.
// The paper calls the data-to-slave partitioning "orthogonal" — true for
// its broadcast protocol, whose change traffic is placement-independent.
// With interest multicast (ship a change only to slaves hosting a friend
// of the changed user) placement suddenly matters: locality placement
// keeps most changes on-node and the change traffic collapses.

#include <memory>

#include "bench/bench_common.h"
#include "core/normalization.h"
#include "data/datasets.h"
#include "dist/decentralized.h"
#include "graph/generators.h"
#include "spatial/estimators.h"
#include "util/rng.h"

using namespace rmgp;
using bench::BenchArgs;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);

  // A community-structured social graph (preferential-attachment graphs
  // have no communities, so placement could never matter on them): 64
  // planted blocks, strong in-block density.
  const NodeId n = args.paper ? 16000 : 4000;
  // ~8 in-block friends and ~1 cross-block friend per user: strong
  // community structure, the regime where locality placement can win.
  Graph planted = PlantedPartition(n, 64, 8.0 / (n / 64.0), 1.0 / n, 11);
  // PlantedPartition numbers blocks round-robin (v mod 64), which would
  // accidentally align with the hash placement (v mod S); shuffle the
  // node ids so hash placement is genuinely community-oblivious.
  Graph graph;
  {
    Rng perm_rng(13);
    std::vector<NodeId> perm(n);
    for (NodeId v = 0; v < n; ++v) perm[v] = v;
    perm_rng.Shuffle(&perm);
    GraphBuilder b(n);
    for (const Edge& e : planted.CollectEdges()) {
      if (!b.AddEdge(perm[e.u], perm[e.v], e.weight).ok()) return 1;
    }
    graph = std::move(b).Build();
  }
  const ClassId k = 32;
  Rng rng(12);
  std::vector<Point> users, events;
  users.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    users.push_back({rng.UniformDouble(), rng.UniformDouble()});
  }
  for (ClassId p = 0; p < k; ++p) {
    events.push_back({rng.UniformDouble(), rng.UniformDouble()});
  }
  auto costs = std::make_shared<EuclideanCostProvider>(users, events);
  auto inst = Instance::Create(&graph, costs, 0.5);
  if (!inst.ok()) return 1;
  if (!NormalizeExact(&inst.value(), NormalizationPolicy::kPessimistic)
           .ok()) {
    return 1;
  }
  std::printf("ablation_placement: planted-partition |V|=%u |E|=%llu, "
              "k=%u, 4 slaves\n",
              graph.num_nodes(),
              static_cast<unsigned long long>(graph.num_edges()), k);

  Table tab({"placement", "protocol", "total_MB", "round1+_MB",
             "simulated_s", "objective"});

  struct Config {
    const char* placement;
    const char* protocol;
    PartitionScheme scheme;
    bool multicast;
    bool direct;
  };
  const Config configs[] = {
      {"hash", "broadcast", PartitionScheme::kHash, false, false},
      {"hash", "direct", PartitionScheme::kHash, false, true},
      {"hash", "multicast", PartitionScheme::kHash, true, false},
      {"locality", "broadcast", PartitionScheme::kLocality, false, false},
      {"locality", "multicast", PartitionScheme::kLocality, true, false},
  };
  for (const Config& config : configs) {
    DecentralizedOptions dopt;
    dopt.num_slaves = 4;
    dopt.partition = config.scheme;
    dopt.interest_multicast = config.multicast;
    dopt.direct_exchange = config.direct;
    dopt.solver.init = InitPolicy::kClosestClass;
    auto res = RunDecentralizedGame(*inst, dopt);
    if (!res.ok()) {
      std::fprintf(stderr, "%s\n", res.status().ToString().c_str());
      return 1;
    }
    uint64_t later_bytes = 0;
    for (const DgRoundStats& rs : res->round_stats) {
      if (rs.round > 0) later_bytes += rs.bytes;
    }
    tab.AddRow({config.placement, config.protocol,
                Table::Num(res->traffic.bytes / 1e6, 3),
                Table::Num(later_bytes / 1e6, 3),
                Table::Num(res->simulated_seconds, 3),
                Table::Num(res->objective.total, 1)});
  }

  bench::Emit(args, "ablation_placement", tab);
  return 0;
}
