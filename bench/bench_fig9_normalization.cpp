// Figure 9: effect of normalization on the Gowalla-like dataset, α=0.5,
// closest-event initialization.
//   (a) raw RMGP: assignment cost dominates; almost nobody leaves their
//       closest event;
//   (b) RMGP_N optimistic;
//   (c) RMGP_N pessimistic: assignment and social costs become comparable
//       and many more users move towards their friends.
// Also reports the CN constants per k and the number of re-assigned users
// (the paper quotes 1434 / 3459 / 6583 at k = 8).

#include <algorithm>
#include <vector>

#include "bench/bench_common.h"
#include "core/normalization.h"
#include "core/solver.h"
#include "data/datasets.h"
#include "spatial/estimators.h"

using namespace rmgp;
using bench::BenchArgs;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);

  GowallaLikeOptions gopt;
  if (!args.paper) {
    gopt.num_users = 3000;
    gopt.num_edges = 11400;
  }
  GeoSocialDataset ds = MakeGowallaLike(gopt);
  const std::vector<ClassId> ks = args.paper
                                      ? std::vector<ClassId>{8, 16, 32, 64, 128}
                                      : std::vector<ClassId>{8, 16, 32};
  std::printf("fig9: %s |V|=%u |E|=%llu, alpha=0.5, init=closest\n",
              ds.name.c_str(), ds.graph.num_nodes(),
              static_cast<unsigned long long>(ds.graph.num_edges()));

  Table tab({"k", "variant", "CN", "raw_assignment", "raw_social",
             "alpha_assignment", "alpha_social", "reassigned_users"});

  SolverOptions sopt;
  sopt.init = InitPolicy::kClosestClass;
  sopt.order = OrderPolicy::kNodeId;
  sopt.record_rounds = false;

  for (ClassId k : ks) {
    auto costs = ds.MakeCosts(k);
    DistanceEstimates est =
        EstimateDistances(ds.user_locations, costs->events());

    // Closest-event assignment: the yardstick for "users re-assigned".
    Assignment closest(ds.graph.num_nodes());
    {
      std::vector<double> row(k);
      for (NodeId u = 0; u < ds.graph.num_nodes(); ++u) {
        costs->CostsFor(u, row.data());
        closest[u] = static_cast<ClassId>(
            std::min_element(row.begin(), row.end()) - row.begin());
      }
    }

    struct Variant {
      const char* name;
      NormalizationPolicy policy;
    };
    for (const Variant& variant :
         {Variant{"RMGP_raw", NormalizationPolicy::kNone},
          Variant{"RMGP_N_opt", NormalizationPolicy::kOptimistic},
          Variant{"RMGP_N_pess", NormalizationPolicy::kPessimistic}}) {
      auto inst = Instance::Create(&ds.graph, costs, 0.5);
      if (!inst.ok()) return 1;
      auto cn = Normalize(&inst.value(), variant.policy,
                          {est.dist_min, est.dist_med});
      if (!cn.ok()) return 1;
      auto res = SolveBaseline(*inst, sopt);
      if (!res.ok()) return 1;
      tab.AddRow({Table::Int(k), variant.name, Table::Num(*cn, 4),
                  Table::Num(res->objective.raw_assignment, 1),
                  Table::Num(res->objective.raw_social, 1),
                  Table::Num(res->objective.assignment, 1),
                  Table::Num(res->objective.social, 1),
                  Table::Int(static_cast<long long>(
                      CountReassigned(closest, res->assignment)))});
    }
  }

  bench::Emit(args, "fig9_normalization", tab);
  return 0;
}
