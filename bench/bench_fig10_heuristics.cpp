// Figure 10: the §3.1 heuristics on the Gowalla-like dataset with
// pessimistic normalization, α = 0.5.
//   RMGP_b      random init, random round order
//   RMGP_b+i    closest-event init
//   RMGP_b+i+o  closest-event init + decreasing-degree order
// (a) CPU time vs k; (b) quality split into assignment/social components.

#include <vector>

#include "bench/bench_common.h"
#include "core/normalization.h"
#include "core/solver.h"
#include "data/datasets.h"
#include "spatial/estimators.h"

using namespace rmgp;
using bench::BenchArgs;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);

  GowallaLikeOptions gopt;
  if (!args.paper) {
    gopt.num_users = 4000;
    gopt.num_edges = 15200;
  }
  GeoSocialDataset ds = MakeGowallaLike(gopt);
  const std::vector<ClassId> ks = args.paper
                                      ? std::vector<ClassId>{8, 16, 32, 64, 128}
                                      : std::vector<ClassId>{8, 16, 32, 64};
  std::printf("fig10: %s |V|=%u, alpha=0.5, pessimistic RMGP_N\n",
              ds.name.c_str(), ds.graph.num_nodes());

  Table time_tab({"k", "RMGP_b_ms", "RMGP_b+i_ms", "RMGP_b+i+o_ms"});
  Table qual_tab({"k", "variant", "assignment", "social", "total", "rounds"});

  struct Variant {
    const char* name;
    InitPolicy init;
    OrderPolicy order;
  };
  const Variant variants[] = {
      {"RMGP_b", InitPolicy::kRandom, OrderPolicy::kRandom},
      {"RMGP_b+i", InitPolicy::kClosestClass, OrderPolicy::kRandom},
      {"RMGP_b+i+o", InitPolicy::kClosestClass, OrderPolicy::kDegreeDesc},
  };

  for (ClassId k : ks) {
    auto costs = ds.MakeCosts(k);
    DistanceEstimates est =
        EstimateDistances(ds.user_locations, costs->events());
    std::vector<std::string> time_row{Table::Int(k)};
    for (const Variant& variant : variants) {
      auto inst = Instance::Create(&ds.graph, costs, 0.5);
      if (!inst.ok()) return 1;
      if (auto cn = Normalize(&inst.value(),
                              NormalizationPolicy::kPessimistic,
                              {est.dist_min, est.dist_med});
          !cn.ok()) {
        return 1;
      }
      SolverOptions sopt;
      sopt.init = variant.init;
      sopt.order = variant.order;
      sopt.seed = 7;
      sopt.record_rounds = false;
      auto res = SolveBaseline(*inst, sopt);
      if (!res.ok()) return 1;
      time_row.push_back(Table::Num(res->total_millis, 2));
      qual_tab.AddRow({Table::Int(k), variant.name,
                       Table::Num(res->objective.assignment, 1),
                       Table::Num(res->objective.social, 1),
                       Table::Num(res->objective.total, 1),
                       Table::Int(res->rounds)});
    }
    time_tab.AddRow(std::move(time_row));
  }

  bench::Emit(args, "fig10a_time_vs_k", time_tab);
  bench::Emit(args, "fig10b_quality_vs_k", qual_tab);
  return 0;
}
