// Ablation (extends Fig 9): how the CN estimators interact with α. §3.3
// argues that after normalization "other values of α should indeed
// reflect the input preferences"; this bench sweeps α × policy and
// reports the realized cost ratio assignment/(assignment+social) — for a
// faithful normalization it should track α itself.

#include "bench/bench_common.h"
#include "core/normalization.h"
#include "core/solver.h"
#include "data/datasets.h"
#include "spatial/estimators.h"

using namespace rmgp;
using bench::BenchArgs;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);

  GowallaLikeOptions gopt;
  gopt.num_users = args.paper ? 12748 : 4000;
  gopt.num_edges = static_cast<uint64_t>(gopt.num_users * 3.8);
  GeoSocialDataset ds = MakeGowallaLike(gopt);
  const ClassId k = 32;
  auto costs = ds.MakeCosts(k);
  DistanceEstimates est =
      EstimateDistances(ds.user_locations, costs->events());
  std::printf(
      "ablation_normalization: |V|=%u, k=%u — assignment share of the\n"
      "total cost vs alpha, per CN policy (ideal: share tracks alpha)\n",
      ds.graph.num_nodes(), k);

  Table tab({"alpha", "policy", "CN", "assignment_share", "reassigned"});

  SolverOptions sopt;
  sopt.init = InitPolicy::kClosestClass;
  sopt.order = OrderPolicy::kDegreeDesc;
  sopt.record_rounds = false;

  // Closest-event yardstick for counting moved users.
  Assignment closest(ds.graph.num_nodes());
  {
    std::vector<double> row(k);
    for (NodeId v = 0; v < ds.graph.num_nodes(); ++v) {
      costs->CostsFor(v, row.data());
      ClassId best = 0;
      for (ClassId p = 1; p < k; ++p) {
        if (row[p] < row[best]) best = p;
      }
      closest[v] = best;
    }
  }

  struct Policy {
    const char* name;
    NormalizationPolicy policy;
  };
  for (double alpha : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    for (const Policy& policy :
         {Policy{"none", NormalizationPolicy::kNone},
          Policy{"optimistic", NormalizationPolicy::kOptimistic},
          Policy{"pessimistic", NormalizationPolicy::kPessimistic}}) {
      auto inst = Instance::Create(&ds.graph, costs, alpha);
      if (!inst.ok()) return 1;
      auto cn = Normalize(&inst.value(), policy.policy,
                          {est.dist_min, est.dist_med});
      if (!cn.ok()) return 1;
      auto res = SolveGlobalTable(*inst, sopt);
      if (!res.ok()) return 1;
      const double share =
          res->objective.total > 0
              ? res->objective.assignment / res->objective.total
              : 0.0;
      tab.AddRow({Table::Num(alpha, 1), policy.name, Table::Num(*cn, 4),
                  Table::Num(share, 3),
                  Table::Int(static_cast<long long>(
                      CountReassigned(closest, res->assignment)))});
    }
  }

  bench::Emit(args, "ablation_normalization", tab);
  return 0;
}
