// Figure 14: DG per-round processing time and data transferred for a
// k = 256 query on the Foursquare-like dataset. Round 0 peaks (each slave
// receives the full global strategic vector); later rounds ship only
// strategy changes, so both series decay toward convergence.

#include "bench/bench_common.h"
#include "core/normalization.h"
#include "data/datasets.h"
#include "dist/decentralized.h"
#include "spatial/estimators.h"

using namespace rmgp;
using bench::BenchArgs;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);

  FoursquareLikeOptions fopt;
  fopt.scale = args.paper ? 1.0 : 0.02;
  fopt.max_events = 256;
  std::printf("building foursquare-like dataset (scale %.3f)...\n",
              fopt.scale);
  GeoSocialDataset ds = MakeFoursquareLike(fopt);
  const ClassId k = 256;
  std::printf("fig14: |V|=%u |E|=%llu, k=%u, alpha=0.5\n",
              ds.graph.num_nodes(),
              static_cast<unsigned long long>(ds.graph.num_edges()), k);

  auto costs = ds.MakeCosts(k);
  DistanceEstimates est =
      EstimateDistances(ds.user_locations, costs->events());
  auto inst = Instance::Create(&ds.graph, costs, 0.5);
  if (!inst.ok()) return 1;
  if (!Normalize(&inst.value(), NormalizationPolicy::kPessimistic,
                 {est.dist_min, est.dist_med})
           .ok()) {
    return 1;
  }

  DecentralizedOptions dopt;
  dopt.num_slaves = 2;
  dopt.network.bandwidth_mbps = 100.0;
  dopt.network.latency_ms = 0.2;
  dopt.solver.init = InitPolicy::kClosestClass;
  dopt.solver.order = OrderPolicy::kDegreeDesc;

  auto dg = RunDecentralizedGame(*inst, dopt);
  if (!dg.ok()) {
    std::fprintf(stderr, "%s\n", dg.status().ToString().c_str());
    return 1;
  }

  Table tab({"round", "time_s", "compute_s", "network_s", "data_MB",
             "messages", "deviations"});
  for (const DgRoundStats& rs : dg->round_stats) {
    tab.AddRow({Table::Int(rs.round), Table::Num(rs.seconds, 4),
                Table::Num(rs.compute_seconds, 4),
                Table::Num(rs.network_seconds, 4),
                Table::Num(rs.bytes / 1e6, 3),
                Table::Int(static_cast<long long>(rs.messages)),
                Table::Int(static_cast<long long>(rs.deviations))});
  }
  std::printf("game terminated in %u rounds (paper: 17)\n", dg->rounds);

  bench::Emit(args, "fig14_dg_rounds", tab);
  return 0;
}
