// Figure 7: RMGP_b vs MH vs UML_lp vs UML_gr as a function of the number
// of classes k, on a Forest-Fire sample of the Gowalla-like dataset
// (paper: |V| = 200).
//
// (a) execution time — RMGP_b orders of magnitude faster than the UML
//     algorithms, MH slightly slower than RMGP_b;
// (b) solution quality (Equation 1) — UML_lp best (near-optimal), RMGP_b
//     close, UML_gr and MH clearly worse.
//
// Default is a reduced scale so the LP stays affordable; --paper runs the
// published |V| = 200 configuration.

#include <memory>
#include <vector>

#include "baselines/mh.h"
#include "baselines/uml_gr.h"
#include "baselines/uml_lp.h"
#include "bench/bench_common.h"
#include "core/normalization.h"
#include "core/solver.h"
#include "data/datasets.h"
#include "graph/sampling.h"

using namespace rmgp;
using bench::BenchArgs;

namespace {

struct Sampled {
  Graph graph;
  std::shared_ptr<EuclideanCostProvider> MakeCosts(
      const GeoSocialDataset& ds, ClassId k) const {
    std::vector<Point> events(ds.event_pool.begin(),
                              ds.event_pool.begin() + k);
    return std::make_shared<EuclideanCostProvider>(users, events);
  }
  std::vector<Point> users;
};

Sampled SampleUsers(const GeoSocialDataset& ds, NodeId v) {
  ForestFireOptions ff;
  ff.seed = 31;
  std::vector<NodeId> nodes;
  Sampled out;
  out.graph = ForestFireSubgraph(ds.graph, v, ff, &nodes);
  out.users.reserve(nodes.size());
  for (NodeId u : nodes) out.users.push_back(ds.user_locations[u]);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);

  GowallaLikeOptions gopt;  // full 12,748-user dataset, sampled below
  GeoSocialDataset ds = MakeGowallaLike(gopt);

  const NodeId v = args.paper ? 200 : 60;
  const std::vector<ClassId> ks =
      args.paper ? std::vector<ClassId>{2, 4, 7, 10, 13, 16}
                 : std::vector<ClassId>{2, 3, 4, 5, 6};
  Sampled sample = SampleUsers(ds, v);
  std::printf("fig7: |V|=%u sample of %s (%llu edges), alpha=0.5\n", v,
              ds.name.c_str(),
              static_cast<unsigned long long>(sample.graph.num_edges()));

  Table time_tab({"k", "RMGP_b_ms", "MH_ms", "UML_gr_ms", "UML_lp_ms"});
  Table qual_tab({"k", "RMGP_b", "MH", "UML_gr", "UML_lp", "LP_bound"});

  for (ClassId k : ks) {
    auto costs = sample.MakeCosts(ds, k);
    auto inst = Instance::Create(&sample.graph, costs, 0.5);
    if (!inst.ok()) return 1;

    // RMGP_b exactly as §6.1: random init, random round order.
    SolverOptions sopt;
    sopt.init = InitPolicy::kRandom;
    sopt.order = OrderPolicy::kRandom;
    sopt.seed = 7;
    sopt.record_rounds = false;
    auto game = SolveBaseline(*inst, sopt);
    if (!game.ok()) return 1;

    auto mh = SolveMetisHungarian(*inst);
    if (!mh.ok()) return 1;
    auto gr = SolveUmlGreedy(*inst);
    if (!gr.ok()) return 1;
    auto lp = SolveUmlLp(*inst);
    if (!lp.ok()) {
      std::fprintf(stderr, "UML_lp failed at k=%u: %s\n", k,
                   lp.status().ToString().c_str());
      return 1;
    }

    time_tab.AddRow({Table::Int(k), Table::Num(game->total_millis, 3),
                     Table::Num(mh->total_millis, 3),
                     Table::Num(gr->total_millis, 3),
                     Table::Num(lp->base.total_millis, 1)});
    qual_tab.AddRow({Table::Int(k), Table::Num(game->objective.total, 2),
                     Table::Num(mh->objective.total, 2),
                     Table::Num(gr->objective.total, 2),
                     Table::Num(lp->base.objective.total, 2),
                     Table::Num(lp->lp_lower_bound, 2)});
  }

  bench::Emit(args, "fig7a_time_vs_k", time_tab);
  bench::Emit(args, "fig7b_quality_vs_k", qual_tab);

  // Supplementary (beyond the paper, which ran §6.1 on raw distances): the
  // same quality comparison under pessimistic normalization, where the
  // social term genuinely competes with the distances.
  Table norm_tab(
      {"k", "RMGP_b", "MH", "UML_gr", "UML_lp", "LP_bound"});
  for (ClassId k : ks) {
    auto costs = sample.MakeCosts(ds, k);
    auto inst = Instance::Create(&sample.graph, costs, 0.5);
    if (!inst.ok()) return 1;
    if (!NormalizeExact(&inst.value(), NormalizationPolicy::kPessimistic)
             .ok()) {
      return 1;
    }
    SolverOptions sopt;
    sopt.init = InitPolicy::kRandom;
    sopt.order = OrderPolicy::kRandom;
    sopt.seed = 7;
    sopt.record_rounds = false;
    auto game = SolveBaseline(*inst, sopt);
    if (!game.ok()) return 1;
    auto mh = SolveMetisHungarian(*inst);
    if (!mh.ok()) return 1;
    auto gr = SolveUmlGreedy(*inst);
    if (!gr.ok()) return 1;
    auto lp = SolveUmlLp(*inst);
    if (!lp.ok()) return 1;
    norm_tab.AddRow({Table::Int(k), Table::Num(game->objective.total, 3),
                     Table::Num(mh->objective.total, 3),
                     Table::Num(gr->objective.total, 3),
                     Table::Num(lp->base.objective.total, 3),
                     Table::Num(lp->lp_lower_bound, 3)});
  }
  bench::Emit(args, "fig7c_quality_vs_k_normalized", norm_tab);
  return 0;
}
