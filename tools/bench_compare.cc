// bench_compare — diffs two bench JSON files and exits non-zero when the
// candidate regresses. Solver suites (BENCH_solvers.json, see
// bench_runner): any cell slower than baseline by more than
// --time-threshold, any objective-quality increase beyond
// --quality-threshold, or any baseline cell missing entirely. Serving
// runs (BENCH_serving.json, see rmgp_loadgen): p99 latency beyond
// --time-threshold or a cache-hit-rate drop beyond --hit-rate-threshold.
// Churn runs (BENCH_churn.json, rmgp_loadgen --churn): the serving gates
// plus the incremental-vs-cold speedup shrinking below
// --speedup-threshold × baseline, or either equilibrium going invalid.
// Store runs (BENCH_store.json, bench_runner --store): the mmap-vs-parse
// speedup shrinking below --speedup-threshold × baseline, or the
// compression ratio collapsing (below 80% of baseline, or ≤ 1.0).
// Solver runs with a /3 "kernels" section can additionally be gated with
// --kernel-speedup-threshold: every SIMD row kernel of the *candidate*
// must beat the scalar reference by the given absolute factor.
//
// Usage: bench_compare BASELINE.json CANDIDATE.json
//                      [--time-threshold F] [--quality-threshold F]
//                      [--hit-rate-threshold F] [--speedup-threshold F]
//                      [--kernel-speedup-threshold F]
//                      [--ignore-time]
//        bench_compare --check FILE.json
//
// --check validates a single file (parseable, known schema, non-empty
// records) without comparing — the CI smoke gate for fresh bench output.
//
// Exit codes: 0 no regression, 1 regression detected, 2 usage/IO error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "tools/bench_suite.h"

namespace rmgp {
namespace bench {
namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s BASELINE.json CANDIDATE.json"
               " [--time-threshold F] [--quality-threshold F]"
               " [--hit-rate-threshold F] [--speedup-threshold F]"
               " [--kernel-speedup-threshold F] [--ignore-time]\n"
               "       %s --check FILE.json\n"
               "  --time-threshold     allowed relative slowdown"
               " (default 0.10 = 10%%)\n"
               "  --quality-threshold  allowed relative objective increase"
               " (default 0.01)\n"
               "  --hit-rate-threshold allowed absolute cache-hit-rate drop,"
               " serving docs (default 0.05)\n"
               "  --speedup-threshold  fraction of the baseline"
               " incremental-vs-cold speedup the candidate must keep,"
               " churn docs (default 0.5; negative disables)\n"
               "  --kernel-speedup-threshold  absolute scalar/SIMD speedup"
               " every candidate kernel record must reach, solver docs"
               " (default -1 = disabled)\n"
               "  --ignore-time        skip the wall-time gate"
               " (cross-machine diffs)\n"
               "  --check              validate one file instead of"
               " comparing two\n",
               argv0, argv0);
  std::exit(2);
}

/// --check: the file must parse, carry a schema bench_compare understands,
/// and contain a non-empty "records" array.
int CheckFile(const std::string& path) {
  auto doc = Json::ReadFile(path);
  if (!doc.ok()) {
    std::fprintf(stderr, "error reading %s: %s\n", path.c_str(),
                 doc.status().ToString().c_str());
    return 2;
  }
  const Json& root = doc.value();
  const Json* schema = root.is_object() ? root.Find("schema") : nullptr;
  const std::string tag =
      (schema != nullptr && schema->is_string()) ? schema->AsString() : "";
  if (tag != kBenchSchema && tag != kBenchSchemaV2 && tag != kBenchSchemaV1 &&
      tag != kServingSchema && tag != kChurnSchema && tag != kDistSchema &&
      tag != kStoreSchema) {
    std::fprintf(stderr, "%s: unknown schema '%s'\n", path.c_str(),
                 tag.c_str());
    return 1;
  }
  const Json* records = root.Find("records");
  if (records == nullptr || !records->is_array() || records->size() == 0) {
    std::fprintf(stderr, "%s: missing or empty records\n", path.c_str());
    return 1;
  }
  if (tag == kChurnSchema) {
    // A churn doc without the incremental section can't be gated — reject
    // it at the smoke stage instead of failing the compare confusingly.
    const Json* inc = root.Find("incremental");
    if (inc == nullptr || !inc->is_object() ||
        inc->Find("speedup") == nullptr || inc->Find("both_valid") == nullptr) {
      std::fprintf(stderr, "%s: churn doc missing incremental section\n",
                   path.c_str());
      return 1;
    }
  }
  std::printf("OK: %s (%s, %zu records)\n", path.c_str(), tag.c_str(),
              records->size());
  return 0;
}

int Main(int argc, char** argv) {
  std::vector<std::string> paths;
  CompareOptions options;
  bool check = false;

  for (int i = 1; i < argc; ++i) {
    const auto next_double = [&]() -> double {
      if (i + 1 >= argc) Usage(argv[0]);
      char* end = nullptr;
      const double v = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0') Usage(argv[0]);
      return v;
    };
    if (std::strcmp(argv[i], "--time-threshold") == 0) {
      options.time_threshold = next_double();
    } else if (std::strcmp(argv[i], "--quality-threshold") == 0) {
      options.quality_threshold = next_double();
    } else if (std::strcmp(argv[i], "--hit-rate-threshold") == 0) {
      options.hit_rate_threshold = next_double();
    } else if (std::strcmp(argv[i], "--speedup-threshold") == 0) {
      options.speedup_threshold = next_double();
    } else if (std::strcmp(argv[i], "--kernel-speedup-threshold") == 0) {
      options.kernel_speedup_threshold = next_double();
    } else if (std::strcmp(argv[i], "--ignore-time") == 0) {
      options.time_threshold = -1.0;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (argv[i][0] == '-') {
      Usage(argv[0]);
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (check) {
    if (paths.size() != 1) Usage(argv[0]);
    return CheckFile(paths[0]);
  }
  if (paths.size() != 2) Usage(argv[0]);

  auto baseline = Json::ReadFile(paths[0]);
  if (!baseline.ok()) {
    std::fprintf(stderr, "error reading %s: %s\n", paths[0].c_str(),
                 baseline.status().ToString().c_str());
    return 2;
  }
  auto candidate = Json::ReadFile(paths[1]);
  if (!candidate.ok()) {
    std::fprintf(stderr, "error reading %s: %s\n", paths[1].c_str(),
                 candidate.status().ToString().c_str());
    return 2;
  }

  const CompareReport report =
      CompareBench(baseline.value(), candidate.value(), options);
  std::printf("%s", report.summary.c_str());
  if (report.ok) {
    std::printf("OK: no regressions (%s vs %s)\n", paths[0].c_str(),
                paths[1].c_str());
    return 0;
  }
  std::printf("FAIL: %zu regression(s)\n", report.regressions.size());
  for (const Regression& r : report.regressions) {
    std::printf("  %-10s %s", r.kind.c_str(), r.key.c_str());
    if (r.kind != "missing") {
      std::printf("  baseline=%g candidate=%g", r.baseline, r.candidate);
    }
    std::printf("\n");
  }
  return 1;
}

}  // namespace
}  // namespace bench
}  // namespace rmgp

int main(int argc, char** argv) { return rmgp::bench::Main(argc, argv); }
