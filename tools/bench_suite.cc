#include "tools/bench_suite.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <utility>

#include "core/cost_provider.h"
#include "core/instance.h"
#include "core/kernels.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "store/container.h"
#include "store/storage.h"
#include "util/aligned.h"
#include "util/build_info.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace rmgp {
namespace bench {

namespace {

struct SuiteGraph {
  std::string name;
  Graph graph;
};

/// The four topology families of the suite, weight-randomized so the
/// social term exercises non-unit edges. Seeds derive from the config so
/// two runs of the same config measure byte-identical instances.
std::vector<SuiteGraph> MakeGraphs(const SuiteConfig& config) {
  const NodeId n = config.num_users;
  const uint64_t s = config.seed;
  std::vector<SuiteGraph> graphs;
  graphs.push_back(
      {"ba", RandomizeWeights(BarabasiAlbert(n, 3, s + 1), 0.1, 1.0, s + 2)});
  graphs.push_back(
      {"ws", RandomizeWeights(WattsStrogatz(n, 6, 0.1, s + 3), 0.1, 1.0, s + 4)});
  graphs.push_back(
      {"er", RandomizeWeights(ErdosRenyi(n, 8.0 / n, s + 5), 0.1, 1.0, s + 6)});
  graphs.push_back({"pp", RandomizeWeights(
                              PlantedPartition(n, 4, 16.0 / n, 2.0 / n, s + 7),
                              0.1, 1.0, s + 8)});
  return graphs;
}

std::shared_ptr<const CostProvider> MakeCosts(const SuiteConfig& config) {
  Rng rng(config.seed + 100);
  std::vector<double> costs(static_cast<size_t>(config.num_users) *
                            config.num_classes);
  for (double& c : costs) c = rng.UniformDouble();
  return std::make_shared<DenseCostMatrix>(config.num_users,
                                           config.num_classes,
                                           std::move(costs));
}

Json CountersToJson(const SolverCounters& c) {
  Json j = Json::Object();
  j.Set("best_response_evals", c.best_response_evals);
  j.Set("gt_cells_built", c.gt_cells_built);
  j.Set("gt_rebuilds", c.gt_rebuilds);
  j.Set("gt_incremental_updates", c.gt_incremental_updates);
  j.Set("argmin_cache_repairs", c.argmin_cache_repairs);
  j.Set("worklist_pushes", c.worklist_pushes);
  j.Set("eliminated_users", c.eliminated_users);
  j.Set("pruned_strategies", c.pruned_strategies);
  Json groups = Json::Array();
  for (uint64_t size : c.color_group_sizes) groups.Append(size);
  j.Set("color_group_sizes", std::move(groups));
  Json busy = Json::Array();
  for (double ms : c.thread_busy_millis) busy.Append(ms);
  j.Set("thread_busy_millis", std::move(busy));
  return j;
}

Json RecordToJson(const BenchRecord& r) {
  Json j = Json::Object();
  j.Set("graph", r.graph);
  j.Set("solver", r.solver);
  j.Set("alpha", r.alpha);
  j.Set("num_users", r.num_users);
  j.Set("num_edges", r.num_edges);
  j.Set("num_classes", r.num_classes);
  j.Set("converged", r.converged);
  j.Set("rounds", r.rounds);
  j.Set("objective_total", r.objective_total);
  j.Set("objective_assignment", r.objective_assignment);
  j.Set("objective_social", r.objective_social);
  j.Set("potential", r.potential);
  j.Set("time_ms_mean", r.time_ms_mean);
  j.Set("time_ms_min", r.time_ms_min);
  j.Set("time_ms_max", r.time_ms_max);
  j.Set("time_ms_stddev", r.time_ms_stddev);
  j.Set("init_ms_mean", r.init_ms_mean);
  j.Set("counters", CountersToJson(r.counters));
  return j;
}

std::string RecordKey(const std::string& graph, const std::string& solver,
                      double alpha) {
  return graph + "/" + solver + "/" + Table::Num(alpha, 3);
}

/// Serving-document diff: records matched by "name", gated on p99 latency
/// (time_threshold, relative) and cache hit rate (hit_rate_threshold,
/// absolute points). Wall-clock throughput is reported but never gated —
/// it is dominated by the machine, not the code.
CompareReport CompareServing(const Json& baseline, const Json& candidate,
                             const CompareOptions& options) {
  CompareReport report;
  report.ok = true;

  const Json& cand_records = candidate.At("records");
  const auto find_candidate = [&](const std::string& name) -> const Json* {
    for (size_t i = 0; i < cand_records.size(); ++i) {
      const Json& r = cand_records[i];
      if (r.At("name").AsString() == name) return &r;
    }
    return nullptr;
  };

  Table table({"record", "p99 base", "p99 cand", "hit base", "hit cand",
               "verdict"});
  const Json& base_records = baseline.At("records");
  for (size_t i = 0; i < base_records.size(); ++i) {
    const Json& b = base_records[i];
    const std::string name = b.At("name").AsString();
    const Json* c = find_candidate(name);
    if (c == nullptr) {
      report.ok = false;
      report.regressions.push_back({name, "missing", 0.0, 0.0});
      table.AddRow({name, "", "", "", "", "MISSING"});
      continue;
    }
    const double bp99 = b.At("latency_ms").At("p99_ms").AsDouble();
    const double cp99 = c->At("latency_ms").At("p99_ms").AsDouble();
    const double bhit = b.At("cache").At("hit_rate").AsDouble();
    const double chit = c->At("cache").At("hit_rate").AsDouble();

    std::string verdict = "ok";
    if (options.time_threshold >= 0.0 &&
        cp99 > bp99 * (1.0 + options.time_threshold)) {
      report.ok = false;
      report.regressions.push_back({name, "latency", bp99, cp99});
      verdict = "LATENCY REGRESSION";
    }
    if (chit < bhit - options.hit_rate_threshold) {
      report.ok = false;
      report.regressions.push_back({name, "hit_rate", bhit, chit});
      verdict = verdict == "ok" ? "HIT-RATE REGRESSION"
                                : verdict + " + HIT-RATE";
    }
    table.AddRow({name, Table::Num(bp99), Table::Num(cp99), Table::Num(bhit),
                  Table::Num(chit), verdict});
  }
  report.summary = table.ToString();
  return report;
}

/// Churn-document diff: the serving-record gates plus the
/// incremental-vs-cold speedup gate. A candidate whose incremental result
/// was not equilibrium-valid (`both_valid` false) always fails — a fast
/// wrong answer is not a speedup.
CompareReport CompareChurn(const Json& baseline, const Json& candidate,
                           const CompareOptions& options) {
  CompareReport report = CompareServing(baseline, candidate, options);

  const auto incremental_of = [](const Json& doc) -> const Json* {
    const Json* inc = doc.is_object() ? doc.Find("incremental") : nullptr;
    if (inc == nullptr || !inc->is_object() ||
        inc->Find("speedup") == nullptr || inc->Find("both_valid") == nullptr)
      return nullptr;
    return inc;
  };
  const Json* base_inc = incremental_of(baseline);
  const Json* cand_inc = incremental_of(candidate);
  if (base_inc == nullptr || cand_inc == nullptr) {
    report.ok = false;
    report.regressions.push_back({"incremental", "missing", 0.0, 0.0});
    report.summary += "incremental section missing from " +
                      std::string(base_inc == nullptr ? "baseline"
                                                      : "candidate") +
                      "\n";
    return report;
  }
  const double base_speedup = base_inc->At("speedup").AsDouble();
  const double cand_speedup = cand_inc->At("speedup").AsDouble();
  const bool cand_valid = cand_inc->At("both_valid").AsBool();
  if (!cand_valid) {
    report.ok = false;
    report.regressions.push_back({"incremental", "validity", 1.0, 0.0});
  }
  if (options.speedup_threshold >= 0.0 &&
      cand_speedup < base_speedup * options.speedup_threshold) {
    report.ok = false;
    report.regressions.push_back(
        {"incremental", "speedup", base_speedup, cand_speedup});
  }
  report.summary += "incremental speedup: baseline " +
                    Table::Num(base_speedup) + "x, candidate " +
                    Table::Num(cand_speedup) + "x" +
                    (cand_valid ? "" : " (INVALID equilibrium)") + "\n";
  return report;
}

/// Dist-document diff: records matched by name, gated on p99 latency
/// (time_threshold, relative) and bytes per query (fixed 10% slack — the
/// wire protocol is deterministic for a fixed mix, the slack only absorbs
/// recovery-path retransfers). Two absolute gates on the *candidate*:
/// equivalence.phi_match (the sharded run must reproduce the in-process
/// simulation's Φ bit for bit) and recovery.converged (a worker kill must
/// re-converge, not fail the session).
CompareReport CompareDist(const Json& baseline, const Json& candidate,
                          const CompareOptions& options) {
  CompareReport report;
  report.ok = true;

  const Json& cand_records = candidate.At("records");
  const auto find_candidate = [&](const std::string& name) -> const Json* {
    for (size_t i = 0; i < cand_records.size(); ++i) {
      const Json& r = cand_records[i];
      if (r.At("name").AsString() == name) return &r;
    }
    return nullptr;
  };

  Table table({"record", "p99 base", "p99 cand", "B/query base",
               "B/query cand", "verdict"});
  const Json& base_records = baseline.At("records");
  for (size_t i = 0; i < base_records.size(); ++i) {
    const Json& b = base_records[i];
    const std::string name = b.At("name").AsString();
    const Json* c = find_candidate(name);
    if (c == nullptr) {
      report.ok = false;
      report.regressions.push_back({name, "missing", 0.0, 0.0});
      table.AddRow({name, "", "", "", "", "MISSING"});
      continue;
    }
    const double bp99 = b.At("latency_ms").At("p99_ms").AsDouble();
    const double cp99 = c->At("latency_ms").At("p99_ms").AsDouble();
    const double bbytes = b.At("traffic").At("bytes_per_query").AsDouble();
    const double cbytes = c->At("traffic").At("bytes_per_query").AsDouble();

    std::string verdict = "ok";
    if (options.time_threshold >= 0.0 &&
        cp99 > bp99 * (1.0 + options.time_threshold)) {
      report.ok = false;
      report.regressions.push_back({name, "latency", bp99, cp99});
      verdict = "LATENCY REGRESSION";
    }
    if (cbytes > bbytes * 1.10) {
      report.ok = false;
      report.regressions.push_back({name, "traffic", bbytes, cbytes});
      verdict = verdict == "ok" ? "TRAFFIC REGRESSION" : verdict + " + TRAFFIC";
    }
    table.AddRow({name, Table::Num(bp99), Table::Num(cp99), Table::Num(bbytes),
                  Table::Num(cbytes), verdict});
  }
  report.summary = table.ToString();

  const Json* equivalence = candidate.is_object()
                                ? candidate.Find("equivalence")
                                : nullptr;
  if (equivalence == nullptr || !equivalence->is_object() ||
      equivalence->Find("phi_match") == nullptr ||
      !equivalence->At("phi_match").AsBool()) {
    report.ok = false;
    report.regressions.push_back({"equivalence", "phi_match", 1.0, 0.0});
    report.summary += "equivalence: sharded Φ does not match the in-process "
                      "simulation\n";
  } else {
    report.summary += "equivalence: phi match ok (" +
                      Table::Num(equivalence->At("phi_dist").AsDouble()) +
                      ")\n";
  }
  const Json* recovery = candidate.is_object()
                             ? candidate.Find("recovery")
                             : nullptr;
  if (recovery == nullptr || !recovery->is_object() ||
      recovery->Find("converged") == nullptr ||
      !recovery->At("converged").AsBool()) {
    report.ok = false;
    report.regressions.push_back({"recovery", "converged", 1.0, 0.0});
    report.summary += "recovery: worker-kill query did not re-converge\n";
  } else {
    report.summary += "recovery: re-converged in " +
                      Table::Num(recovery->At("recovery_ms").AsDouble()) +
                      " ms\n";
  }
  return report;
}

/// Store-document diff: records matched by name, wall times gated only
/// through ratios (both sides of a ratio move with the host machine, the
/// quotient does not). Gates: the candidate must keep at least
/// speedup_threshold × the baseline's mmap-vs-parse speedup, its
/// compression ratio may shrink to 80% of the baseline's, and — as an
/// absolute invariant — the compressed container must actually be smaller
/// than the plain one.
CompareReport CompareStore(const Json& baseline, const Json& candidate,
                           const CompareOptions& options) {
  CompareReport report;
  report.ok = true;

  const Json& cand_records = candidate.At("records");
  const auto find_candidate = [&](const std::string& name) -> const Json* {
    for (size_t i = 0; i < cand_records.size(); ++i) {
      const Json& r = cand_records[i];
      if (r.At("name").AsString() == name) return &r;
    }
    return nullptr;
  };

  Table table({"record", "bytes base", "bytes cand", "load ms base",
               "load ms cand", "verdict"});
  const Json& base_records = baseline.At("records");
  for (size_t i = 0; i < base_records.size(); ++i) {
    const Json& b = base_records[i];
    const std::string name = b.At("name").AsString();
    const Json* c = find_candidate(name);
    if (c == nullptr) {
      report.ok = false;
      report.regressions.push_back({name, "missing", 0.0, 0.0});
      table.AddRow({name, "", "", "", "", "MISSING"});
      continue;
    }
    table.AddRow({name, Table::Num(b.At("file_bytes").AsDouble(), 0),
                  Table::Num(c->At("file_bytes").AsDouble(), 0),
                  Table::Num(b.At("load_ms_min").AsDouble()),
                  Table::Num(c->At("load_ms_min").AsDouble()), "ok"});
  }
  report.summary = table.ToString();

  const auto ratios_of = [](const Json& doc) -> const Json* {
    const Json* r = doc.is_object() ? doc.Find("ratios") : nullptr;
    if (r == nullptr || !r->is_object() ||
        r->Find("mmap_speedup") == nullptr ||
        r->Find("compression_ratio") == nullptr) {
      return nullptr;
    }
    return r;
  };
  const Json* base_ratios = ratios_of(baseline);
  const Json* cand_ratios = ratios_of(candidate);
  if (base_ratios == nullptr || cand_ratios == nullptr) {
    report.ok = false;
    report.regressions.push_back({"ratios", "missing", 0.0, 0.0});
    report.summary += "ratios section missing from " +
                      std::string(base_ratios == nullptr ? "baseline"
                                                         : "candidate") +
                      "\n";
    return report;
  }
  const double base_speedup = base_ratios->At("mmap_speedup").AsDouble();
  const double cand_speedup = cand_ratios->At("mmap_speedup").AsDouble();
  const double base_comp = base_ratios->At("compression_ratio").AsDouble();
  const double cand_comp = cand_ratios->At("compression_ratio").AsDouble();
  if (options.speedup_threshold >= 0.0 &&
      cand_speedup < base_speedup * options.speedup_threshold) {
    report.ok = false;
    report.regressions.push_back(
        {"mmap_speedup", "speedup", base_speedup, cand_speedup});
  }
  if (cand_comp < base_comp * 0.80) {
    report.ok = false;
    report.regressions.push_back(
        {"compression_ratio", "footprint", base_comp, cand_comp});
  }
  if (cand_comp <= 1.0) {
    report.ok = false;
    report.regressions.push_back(
        {"compression_ratio", "footprint", 1.0, cand_comp});
  }
  report.summary += "mmap-vs-parse speedup: baseline " +
                    Table::Num(base_speedup, 1) + "x, candidate " +
                    Table::Num(cand_speedup, 1) + "x\n" +
                    "compression ratio: baseline " + Table::Num(base_comp, 2) +
                    "x, candidate " + Table::Num(cand_comp, 2) + "x\n";
  return report;
}

}  // namespace

SuiteConfig QuickConfig() {
  SuiteConfig config;
  config.quick = true;
  config.reps = 3;
  config.warmup = 1;
  config.num_users = 300;
  config.num_classes = 8;
  // Small enough for the CI perf-smoke job, large enough (n·k = 128k
  // cells) that the parallel build path actually engages.
  config.micro_users = 2000;
  config.kernel_rows = 1024;
  return config;
}

std::vector<BenchRecord> RunSuite(const SuiteConfig& config) {
  static constexpr SolverKind kKinds[] = {
      SolverKind::kBaseline, SolverKind::kStrategyElimination,
      SolverKind::kIndependentSets, SolverKind::kGlobalTable,
      SolverKind::kAll};

  const std::vector<SuiteGraph> graphs = MakeGraphs(config);
  const std::shared_ptr<const CostProvider> costs = MakeCosts(config);

  std::vector<BenchRecord> records;
  for (const SuiteGraph& sg : graphs) {
    for (const double alpha : config.alphas) {
      auto inst = Instance::Create(&sg.graph, costs, alpha);
      RMGP_CHECK(inst.ok()) << inst.status().ToString();
      for (const SolverKind kind : kKinds) {
        SolverOptions opt;
        opt.seed = config.seed;
        opt.num_threads = config.num_threads;

        for (uint32_t w = 0; w < config.warmup; ++w) {
          RMGP_CHECK(Solve(kind, inst.value(), opt).ok());
        }

        BenchRecord rec;
        rec.graph = sg.name;
        rec.solver = SolverKindName(kind);
        rec.alpha = alpha;
        rec.num_users = sg.graph.num_nodes();
        rec.num_edges = sg.graph.num_edges();
        rec.num_classes = config.num_classes;

        RunningStats time_ms;
        RunningStats init_ms;
        for (uint32_t rep = 0; rep < config.reps; ++rep) {
          auto res = Solve(kind, inst.value(), opt);
          RMGP_CHECK(res.ok()) << res.status().ToString();
          const SolveResult& r = res.value();
          time_ms.Add(r.total_millis);
          init_ms.Add(r.init_millis);
          if (rep + 1 == config.reps) {
            rec.converged = r.converged;
            rec.rounds = r.rounds;
            rec.objective_total = r.objective.total;
            rec.objective_assignment = r.objective.assignment;
            rec.objective_social = r.objective.social;
            rec.potential = r.potential;
            rec.counters = r.counters;
          }
        }
        rec.time_ms_mean = time_ms.mean();
        rec.time_ms_min = time_ms.min();
        rec.time_ms_max = time_ms.max();
        rec.time_ms_stddev = time_ms.stddev();
        rec.init_ms_mean = init_ms.mean();
        records.push_back(std::move(rec));
      }
    }
  }
  return records;
}

std::vector<MicroRecord> RunMicrobench(const SuiteConfig& config) {
  std::vector<MicroRecord> micro;
  if (config.micro_users == 0 || config.micro_classes == 0) return micro;

  const NodeId n = config.micro_users;
  const ClassId k = config.micro_classes;
  const uint64_t s = config.seed;
  const Graph graph = RandomizeWeights(
      PlantedPartition(n, 4, 16.0 / n, 2.0 / n, s + 200), 0.1, 1.0, s + 201);
  Rng rng(s + 202);
  std::vector<double> cost_values(static_cast<size_t>(n) * k);
  for (double& c : cost_values) c = rng.UniformDouble();
  const auto costs =
      std::make_shared<DenseCostMatrix>(n, k, std::move(cost_values));
  auto inst = Instance::Create(&graph, costs, 0.5);
  RMGP_CHECK(inst.ok()) << inst.status().ToString();

  struct Variant {
    const char* name;
    SolverKind kind;
  };
  static constexpr Variant kVariants[] = {
      {"gt_build", SolverKind::kGlobalTable},
      {"all_build", SolverKind::kAll},
  };
  // One round is the cheapest a solver run gets (max_rounds = 0 is
  // rejected); only init_millis — the round-0 build — is recorded.
  constexpr uint32_t kMicroReps = 3;
  for (const Variant& variant : kVariants) {
    MicroRecord rec;
    rec.name = variant.name;
    rec.num_users = n;
    rec.num_classes = k;
    rec.num_threads = config.num_threads;
    double seq = 0.0, par = 0.0;
    for (uint32_t rep = 0; rep < kMicroReps; ++rep) {
      SolverOptions opt;
      opt.seed = config.seed;
      opt.max_rounds = 1;
      opt.record_rounds = false;
      opt.num_threads = 1;
      auto res_seq = Solve(variant.kind, inst.value(), opt);
      RMGP_CHECK(res_seq.ok()) << res_seq.status().ToString();
      opt.num_threads = config.num_threads;
      auto res_par = Solve(variant.kind, inst.value(), opt);
      RMGP_CHECK(res_par.ok()) << res_par.status().ToString();
      const double si = res_seq.value().init_millis;
      const double pi = res_par.value().init_millis;
      seq = rep == 0 ? si : std::min(seq, si);
      par = rep == 0 ? pi : std::min(par, pi);
    }
    rec.seq_init_ms = seq;
    rec.par_init_ms = par;
    rec.speedup = par > 0.0 ? seq / par : 0.0;
    micro.push_back(std::move(rec));
  }
  return micro;
}

std::vector<KernelRecord> RunKernelsBench(const SuiteConfig& config) {
  std::vector<KernelRecord> out;
  if (config.kernel_rows == 0 || config.micro_classes == 0) return out;
  const size_t rows = config.kernel_rows;
  const size_t k = config.micro_classes;
  // Pad the row stride to a full cache line so every row starts aligned —
  // the same layout the dense global table uses.
  const size_t stride_d =
      (k + kRowAlignBytes / sizeof(double) - 1) /
      (kRowAlignBytes / sizeof(double)) * (kRowAlignBytes / sizeof(double));
  const size_t stride_f =
      (k + kRowAlignBytes / sizeof(float) - 1) /
      (kRowAlignBytes / sizeof(float)) * (kRowAlignBytes / sizeof(float));
  AlignedBuffer<double> rows_d(rows * stride_d);
  AlignedBuffer<float> rows_f(rows * stride_f);
  Rng rng(config.seed + 300);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < k; ++c) {
      const double v = rng.UniformDouble();
      rows_d[r * stride_d + c] = v;
      rows_f[r * stride_f + c] = static_cast<float>(v);
    }
  }

  const kernels::Kernels& scalar = kernels::ScalarKernels();
  const kernels::Kernels& simd = kernels::SimdKernels();
  using Clock = std::chrono::steady_clock;
  // alpha = 1, base = 0 makes the in-place row transform the identity, so
  // repeated timed sweeps act on bit-identical data instead of drifting.
  constexpr double kAlphaD = 1.0, kBaseD = 0.0;
  constexpr float kAlphaF = 1.0F, kBaseF = 0.0F;
  constexpr int kPasses = 5;   // min-of-passes defeats scheduler noise
  constexpr int kSweeps = 8;   // timed sweeps over all rows per pass

  // Times `body(row_index)` over every row, kSweeps times per pass, and
  // returns the minimum ns-per-row across passes. The kernels are reached
  // through function pointers, so calls are opaque to the optimizer and
  // cannot be hoisted or elided.
  const auto time_ns_per_row = [&](const auto& body) {
    double best = 0.0;
    for (int pass = 0; pass < kPasses; ++pass) {
      const auto t0 = Clock::now();
      for (int sweep = 0; sweep < kSweeps; ++sweep) {
        for (size_t r = 0; r < rows; ++r) body(r);
      }
      const double ns =
          std::chrono::duration<double, std::nano>(Clock::now() - t0)
              .count() /
          (static_cast<double>(kSweeps) * static_cast<double>(rows));
      if (pass == 0 || ns < best) best = ns;
    }
    return best;
  };

  const auto add = [&](const char* name, double scalar_ns, double simd_ns) {
    KernelRecord rec;
    rec.name = name;
    rec.backend = kernels::KernelBackendName(simd.backend);
    rec.rows = static_cast<uint32_t>(rows);
    rec.num_classes = static_cast<ClassId>(k);
    rec.scalar_ns_per_row = scalar_ns;
    rec.simd_ns_per_row = simd_ns;
    rec.speedup = simd_ns > 0.0 ? scalar_ns / simd_ns : 0.0;
    out.push_back(std::move(rec));
  };

  add("row_build_d",
      time_ns_per_row([&](size_t r) {
        scalar.cost_row_d(rows_d.data() + r * stride_d, k, kAlphaD, kBaseD);
      }),
      time_ns_per_row([&](size_t r) {
        simd.cost_row_d(rows_d.data() + r * stride_d, k, kAlphaD, kBaseD);
      }));
  // The argmin result feeds an accumulator a later RMGP_CHECK consumes, so
  // even a hypothetical whole-program optimizer could not drop the loops.
  uint64_t sink = 0;
  add("argmin_d",
      time_ns_per_row([&](size_t r) {
        sink += scalar.argmin_d(rows_d.data() + r * stride_d, k);
      }),
      time_ns_per_row([&](size_t r) {
        sink += simd.argmin_d(rows_d.data() + r * stride_d, k);
      }));
  add("row_build_f",
      time_ns_per_row([&](size_t r) {
        scalar.cost_row_f(rows_f.data() + r * stride_f, k, kAlphaF, kBaseF);
      }),
      time_ns_per_row([&](size_t r) {
        simd.cost_row_f(rows_f.data() + r * stride_f, k, kAlphaF, kBaseF);
      }));
  add("argmin_f",
      time_ns_per_row([&](size_t r) {
        sink += scalar.argmin_f(rows_f.data() + r * stride_f, k);
      }),
      time_ns_per_row([&](size_t r) {
        sink += simd.argmin_f(rows_f.data() + r * stride_f, k);
      }));
  RMGP_CHECK(sink < ~uint64_t{0});  // consume the sink
  return out;
}

StoreConfig QuickStoreConfig() {
  StoreConfig config;
  config.quick = true;
  config.num_users = 50000;
  return config;
}

Result<StoreBenchResult> RunStoreBench(const StoreConfig& config) {
  using Clock = std::chrono::steady_clock;
  const auto ms_since = [](Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
  };

  const Graph graph = RandomizeWeights(
      BarabasiAlbert(config.num_users, config.edges_per_node,
                     config.seed + 1),
      0.1, 1.0, config.seed + 2);

  const std::string stem = config.scratch_dir + "/rmgp_store_bench_" +
                           std::to_string(config.seed);
  const std::string text_path = stem + ".edges";
  const std::string plain_path = stem + ".rmgp";
  const std::string comp_path = stem + ".z.rmgp";
  RMGP_RETURN_IF_ERROR(WriteEdgeList(graph, text_path));
  RMGP_RETURN_IF_ERROR(store::WriteContainer(graph, plain_path, {}));
  store::PackOptions pack;
  pack.compress = true;
  RMGP_RETURN_IF_ERROR(store::WriteContainer(graph, comp_path, pack));

  struct Path {
    const char* name;
    const std::string* file;
    store::StorageBackend backend;
  };
  const Path kPaths[] = {
      {"text", &text_path, store::StorageBackend::kInRam},
      {"mmap", &plain_path, store::StorageBackend::kMapped},
      {"compressed", &comp_path, store::StorageBackend::kCompressed},
  };

  StoreBenchResult result;
  const uint32_t reps = config.reps == 0 ? 1 : config.reps;
  for (const Path& path : kPaths) {
    StoreRecord rec;
    rec.name = path.name;
    RunningStats load_ms;
    double scan_best = 0.0;
    for (uint32_t rep = 0; rep < reps; ++rep) {
      store::LoadOptions load;
      load.backend = path.backend;
      const auto t0 = Clock::now();
      auto stored = store::LoadGraph(*path.file, load);
      const double ms = ms_since(t0);
      if (!stored.ok()) return stored.status();
      load_ms.Add(ms);

      // Full adjacency sweep: for the mmap path this is where the page
      // faults actually land, so load + scan together is the honest
      // time-to-first-full-traversal comparison across backends.
      const auto s0 = Clock::now();
      double weight_sum = 0.0;
      const Graph& g = stored->graph;
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        for (const Neighbor& nb : g.neighbors(v)) weight_sum += nb.weight;
      }
      const double scan = ms_since(s0);
      RMGP_CHECK(weight_sum >= 0.0);  // consume the sweep
      if (rep == 0 || scan < scan_best) scan_best = scan;

      if (rep + 1 == reps) {
        rec.num_users = g.num_nodes();
        rec.num_edges = g.num_edges();
        rec.file_bytes = stored->file_bytes;
        rec.heap_bytes = stored->heap_bytes;
      }
    }
    rec.load_ms_min = load_ms.min();
    rec.load_ms_mean = load_ms.mean();
    rec.scan_ms_min = scan_best;
    rec.load_medges_per_sec =
        load_ms.min() > 0.0
            ? static_cast<double>(rec.num_edges) / (load_ms.min() * 1e3)
            : 0.0;
    result.records.push_back(std::move(rec));
  }
  std::remove(text_path.c_str());
  std::remove(plain_path.c_str());
  std::remove(comp_path.c_str());

  const StoreRecord& text = result.records[0];
  const StoreRecord& mapped = result.records[1];
  const StoreRecord& compressed = result.records[2];
  result.mmap_speedup = mapped.load_ms_min > 0.0
                            ? text.load_ms_min / mapped.load_ms_min
                            : 0.0;
  result.compression_ratio =
      compressed.file_bytes > 0
          ? static_cast<double>(mapped.file_bytes) /
                static_cast<double>(compressed.file_bytes)
          : 0.0;
  return result;
}

Json StoreToJson(const StoreConfig& config, const StoreBenchResult& result) {
  Json root = Json::Object();
  root.Set("schema", kStoreSchema);

  Json cfg = Json::Object();
  cfg.Set("quick", config.quick);
  cfg.Set("num_users", config.num_users);
  cfg.Set("edges_per_node", config.edges_per_node);
  cfg.Set("seed", config.seed);
  cfg.Set("reps", config.reps);
  root.Set("config", std::move(cfg));

  const BuildInfo info = GetBuildInfo();
  Json env = Json::Object();
  env.Set("git_sha", info.git_sha);
  env.Set("compiler", info.compiler);
  env.Set("compiler_flags", info.compiler_flags);
  env.Set("build_type", info.build_type);
  env.Set("sanitize", info.sanitize);
  env.Set("hardware_threads", static_cast<uint64_t>(info.hardware_threads));
  root.Set("environment", std::move(env));

  Json recs = Json::Array();
  for (const StoreRecord& r : result.records) {
    Json j = Json::Object();
    j.Set("name", r.name);
    j.Set("num_users", r.num_users);
    j.Set("num_edges", r.num_edges);
    j.Set("file_bytes", r.file_bytes);
    j.Set("heap_bytes", r.heap_bytes);
    j.Set("load_ms_min", r.load_ms_min);
    j.Set("load_ms_mean", r.load_ms_mean);
    j.Set("scan_ms_min", r.scan_ms_min);
    j.Set("load_medges_per_sec", r.load_medges_per_sec);
    recs.Append(std::move(j));
  }
  root.Set("records", std::move(recs));

  Json ratios = Json::Object();
  ratios.Set("mmap_speedup", result.mmap_speedup);
  ratios.Set("compression_ratio", result.compression_ratio);
  root.Set("ratios", std::move(ratios));
  return root;
}

Json SuiteToJson(const SuiteConfig& config,
                 const std::vector<BenchRecord>& records,
                 const std::vector<MicroRecord>& micro,
                 const std::vector<KernelRecord>& kernels) {
  Json root = Json::Object();
  root.Set("schema", kBenchSchema);

  Json cfg = Json::Object();
  cfg.Set("quick", config.quick);
  cfg.Set("reps", config.reps);
  cfg.Set("warmup", config.warmup);
  cfg.Set("num_threads", config.num_threads);
  cfg.Set("seed", config.seed);
  cfg.Set("num_users", config.num_users);
  cfg.Set("num_classes", config.num_classes);
  cfg.Set("micro_users", config.micro_users);
  cfg.Set("micro_classes", config.micro_classes);
  cfg.Set("kernel_rows", config.kernel_rows);
  Json alphas = Json::Array();
  for (double a : config.alphas) alphas.Append(a);
  cfg.Set("alphas", std::move(alphas));
  root.Set("config", std::move(cfg));

  const BuildInfo info = GetBuildInfo();
  Json env = Json::Object();
  env.Set("git_sha", info.git_sha);
  env.Set("compiler", info.compiler);
  env.Set("compiler_flags", info.compiler_flags);
  env.Set("build_type", info.build_type);
  env.Set("sanitize", info.sanitize);
  env.Set("hardware_threads", static_cast<uint64_t>(info.hardware_threads));
  root.Set("environment", std::move(env));

  Json recs = Json::Array();
  for (const BenchRecord& r : records) recs.Append(RecordToJson(r));
  root.Set("records", std::move(recs));

  Json micros = Json::Array();
  for (const MicroRecord& m : micro) {
    Json j = Json::Object();
    j.Set("name", m.name);
    j.Set("num_users", m.num_users);
    j.Set("num_classes", m.num_classes);
    j.Set("num_threads", m.num_threads);
    j.Set("seq_init_ms", m.seq_init_ms);
    j.Set("par_init_ms", m.par_init_ms);
    j.Set("speedup", m.speedup);
    micros.Append(std::move(j));
  }
  root.Set("microbench", std::move(micros));

  Json kerns = Json::Array();
  for (const KernelRecord& rec : kernels) {
    Json j = Json::Object();
    j.Set("name", rec.name);
    j.Set("backend", rec.backend);
    j.Set("rows", rec.rows);
    j.Set("num_classes", rec.num_classes);
    j.Set("scalar_ns_per_row", rec.scalar_ns_per_row);
    j.Set("simd_ns_per_row", rec.simd_ns_per_row);
    j.Set("speedup", rec.speedup);
    kerns.Append(std::move(j));
  }
  root.Set("kernels", std::move(kerns));
  return root;
}

CompareReport CompareBench(const Json& baseline, const Json& candidate,
                           const CompareOptions& options) {
  CompareReport report;
  report.ok = true;

  const auto schema_of = [](const Json& doc) -> std::string {
    if (!doc.is_object()) return "";
    const Json* s = doc.Find("schema");
    return (s != nullptr && s->is_string()) ? s->AsString() : "";
  };
  // Serving documents take a different comparator; both sides must agree
  // on the family (diffing a latency run against a solver suite is
  // meaningless, so it is a schema mismatch).
  if (schema_of(baseline) == kServingSchema &&
      schema_of(candidate) == kServingSchema) {
    return CompareServing(baseline, candidate, options);
  }
  if (schema_of(baseline) == kChurnSchema &&
      schema_of(candidate) == kChurnSchema) {
    return CompareChurn(baseline, candidate, options);
  }
  if (schema_of(baseline) == kStoreSchema &&
      schema_of(candidate) == kStoreSchema) {
    return CompareStore(baseline, candidate, options);
  }
  if (schema_of(baseline) == kDistSchema &&
      schema_of(candidate) == kDistSchema) {
    return CompareDist(baseline, candidate, options);
  }
  // /1 files predate the argmin/worklist counters and the microbench
  // section, /2 files predate the kernels section; everything the
  // comparator reads unconditionally is present in all three, so old
  // baselines stay comparable (the kernel gate reads only the candidate).
  const auto known_schema = [](const std::string& schema) {
    return schema == kBenchSchema || schema == kBenchSchemaV2 ||
           schema == kBenchSchemaV1;
  };
  if (!known_schema(schema_of(baseline)) ||
      !known_schema(schema_of(candidate))) {
    report.ok = false;
    report.summary = "schema mismatch: expected matching solver schemas (" +
                     std::string(kBenchSchema) + ", " + kBenchSchemaV2 +
                     " or " + kBenchSchemaV1 +
                     "), matching serving schemas (" + kServingSchema +
                     "), matching churn schemas (" + kChurnSchema +
                     "), matching store schemas (" + kStoreSchema +
                     "), or matching dist schemas (" + kDistSchema +
                     "), got baseline '" + schema_of(baseline) +
                     "' / candidate '" + schema_of(candidate) + "'\n";
    return report;
  }

  // Index the candidate records by (graph, solver, alpha).
  const Json& cand_records = candidate.At("records");
  std::vector<std::pair<std::string, const Json*>> cand_index;
  for (size_t i = 0; i < cand_records.size(); ++i) {
    const Json& r = cand_records[i];
    cand_index.emplace_back(RecordKey(r.At("graph").AsString(),
                                      r.At("solver").AsString(),
                                      r.At("alpha").AsDouble()),
                            &r);
  }
  const auto find_candidate = [&](const std::string& key) -> const Json* {
    for (const auto& [k, r] : cand_index) {
      if (k == key) return r;
    }
    return nullptr;
  };

  Table table({"config", "time base", "time cand", "ratio", "obj base",
               "obj cand", "verdict"});
  const Json& base_records = baseline.At("records");
  for (size_t i = 0; i < base_records.size(); ++i) {
    const Json& b = base_records[i];
    const std::string key =
        RecordKey(b.At("graph").AsString(), b.At("solver").AsString(),
                  b.At("alpha").AsDouble());
    const Json* c = find_candidate(key);
    if (c == nullptr) {
      report.ok = false;
      report.regressions.push_back({key, "missing", 0.0, 0.0});
      table.AddRow({key, "", "", "", "", "", "MISSING"});
      continue;
    }
    const double bt = b.At("time_ms_min").AsDouble();
    const double ct = c->At("time_ms_min").AsDouble();
    const double bo = b.At("objective_total").AsDouble();
    const double co = c->At("objective_total").AsDouble();

    std::string verdict = "ok";
    if (options.time_threshold >= 0.0 &&
        ct > bt * (1.0 + options.time_threshold)) {
      report.ok = false;
      report.regressions.push_back({key, "time", bt, ct});
      verdict = "TIME REGRESSION";
    }
    if (co > bo * (1.0 + options.quality_threshold)) {
      report.ok = false;
      report.regressions.push_back({key, "quality", bo, co});
      verdict = verdict == "ok" ? "QUALITY REGRESSION"
                                : verdict + " + QUALITY";
    }
    table.AddRow({key, Table::Num(bt), Table::Num(ct),
                  bt > 0.0 ? Table::Num(ct / bt) : "",
                  Table::Num(bo), Table::Num(co), verdict});
  }
  report.summary = table.ToString();

  // Kernel gate (opt-in): every kernel record of the candidate must clear
  // the absolute speedup floor. Gated on the candidate alone — a baseline
  // predating /3 must not grandfather a candidate whose SIMD path died.
  if (options.kernel_speedup_threshold >= 0.0) {
    const Json* kerns =
        candidate.is_object() ? candidate.Find("kernels") : nullptr;
    if (kerns == nullptr || !kerns->is_array() || kerns->size() == 0) {
      report.ok = false;
      report.regressions.push_back({"kernels", "missing", 0.0, 0.0});
      report.summary += "kernels section missing from candidate\n";
    } else {
      for (size_t i = 0; i < kerns->size(); ++i) {
        const Json& rec = (*kerns)[i];
        const std::string name = rec.At("name").AsString();
        const double speedup = rec.At("speedup").AsDouble();
        report.summary += "kernel " + name + ": " + Table::Num(speedup, 2) +
                          "x (" + rec.At("backend").AsString() + ")\n";
        if (speedup < options.kernel_speedup_threshold) {
          report.ok = false;
          report.regressions.push_back(
              {name, "kernel_speedup", options.kernel_speedup_threshold,
               speedup});
        }
      }
    }
  }
  return report;
}

}  // namespace bench
}  // namespace rmgp
