// rmgp_pack — converter and inspector for .rmgp graph containers
// (src/store, DESIGN.md §11).
//
// Usage:
//   rmgp_pack pack <in> <out.rmgp> [--compress] [--verify]
//       Packs an edge list (or re-packs a container) into a container.
//       --compress stores the delta+varint adjacency; --verify re-opens
//       the result with checksums + deep validation and checks the graph
//       round-trips bit-identically.
//   rmgp_pack unpack <in.rmgp> <out.txt>
//       Writes the container's graph back out as a whitespace edge list.
//   rmgp_pack info <in.rmgp>
//       Prints the header and section table.
//   rmgp_pack verify <in.rmgp>
//       Full checksum + structural validation; exit 0 iff clean.
//   rmgp_pack gen --kind ba|ws|er|planted --users N [--edges-per-node M]
//                 [--seed S] [--weighted] [--compress] <out.rmgp>
//       Packs a fixed-seed synthetic session graph directly (the CI
//       store-smoke and bench paths use this to avoid a text detour).
//
// Exit codes: 0 ok, 1 operation failed, 2 bad usage.

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/io.h"
#include "store/container.h"
#include "store/format.h"
#include "store/storage.h"
#include "util/status.h"

namespace rmgp {
namespace store {
namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: rmgp_pack pack <in> <out.rmgp> [--compress] [--verify]\n"
      "       rmgp_pack unpack <in.rmgp> <out.txt>\n"
      "       rmgp_pack info <in.rmgp>\n"
      "       rmgp_pack verify <in.rmgp>\n"
      "       rmgp_pack gen --kind ba|ws|er|planted --users N"
      " [--edges-per-node M] [--seed S] [--weighted] [--compress]"
      " <out.rmgp>\n");
  std::exit(2);
}

int Fail(const Status& st) {
  std::fprintf(stderr, "rmgp_pack: %s\n", st.ToString().c_str());
  return 1;
}

/// Bit-identical CSR equality (offsets, neighbor ids, weight bit patterns,
/// total edge weight) — the pack --verify round-trip gate.
bool BitIdentical(const Graph& a, const Graph& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges()) {
    return false;
  }
  if (a.total_edge_weight() != b.total_edge_weight()) return false;
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    if (na.size() != nb.size()) return false;
    for (size_t k = 0; k < na.size(); ++k) {
      if (na[k].node != nb[k].node || na[k].weight != nb[k].weight) {
        return false;
      }
    }
  }
  return true;
}

int CmdPack(const std::string& in, const std::string& out, bool compress,
            bool verify) {
  auto loaded = LoadGraph(in, {});
  if (!loaded.ok()) return Fail(loaded.status());
  const Graph& g = loaded->graph;

  PackOptions pack;
  pack.compress = compress;
  if (Status st = WriteContainer(g, out, pack); !st.ok()) return Fail(st);

  if (verify) {
    OpenOptions open;
    open.verify_checksums = true;
    open.deep_validate = true;
    auto c = Container::Open(out, open);
    if (!c.ok()) return Fail(c.status());
    auto back = c->Decode();
    if (!back.ok()) return Fail(back.status());
    if (!BitIdentical(g, *back)) {
      return Fail(Status::Internal(
          "packed graph does not round-trip bit-identically"));
    }
  }
  struct stat st;
  const uint64_t out_bytes =
      ::stat(out.c_str(), &st) == 0 ? static_cast<uint64_t>(st.st_size) : 0;
  std::printf("%s: %u nodes, %llu edges, %llu bytes%s%s\n", out.c_str(),
              g.num_nodes(), static_cast<unsigned long long>(g.num_edges()),
              static_cast<unsigned long long>(out_bytes),
              compress ? " (compressed)" : "", verify ? " (verified)" : "");
  return 0;
}

int CmdUnpack(const std::string& in, const std::string& out) {
  LoadOptions load;
  load.backend = StorageBackend::kInRam;
  auto loaded = LoadGraph(in, load);
  if (!loaded.ok()) return Fail(loaded.status());
  if (Status st = WriteEdgeList(loaded->graph, out); !st.ok()) {
    return Fail(st);
  }
  std::printf("%s: %u nodes, %llu edges\n", out.c_str(),
              loaded->graph.num_nodes(),
              static_cast<unsigned long long>(loaded->graph.num_edges()));
  return 0;
}

int CmdInfo(const std::string& in) {
  auto c = Container::Open(in, {});
  if (!c.ok()) return Fail(c.status());
  std::printf("%s: rmgp container v%u\n", in.c_str(), kFormatVersion);
  std::printf("  nodes:   %u\n", c->num_nodes());
  std::printf("  edges:   %llu\n",
              static_cast<unsigned long long>(c->num_edges()));
  std::printf("  weight:  %.17g\n", c->total_edge_weight());
  std::printf("  layout:  %s%s\n", c->compressed() ? "compressed" : "plain",
              c->unit_weights() ? " (unit weights)" : "");
  std::printf("  size:    %llu bytes\n",
              static_cast<unsigned long long>(c->file_size()));
  struct Row {
    SectionKind kind;
    const char* name;
  };
  static constexpr Row kRows[] = {
      {SectionKind::kOffsets, "offsets"},
      {SectionKind::kAdjacency, "adjacency"},
      {SectionKind::kPermutation, "permutation"},
      {SectionKind::kSkipBlocks, "skip-blocks"},
      {SectionKind::kCompressedAdj, "compressed-adjacency"},
      {SectionKind::kWeights, "weights"},
  };
  for (const Row& row : kRows) {
    if (c->SectionData(row.kind) != nullptr) {
      std::printf("  section %-20s %llu bytes\n", row.name,
                  static_cast<unsigned long long>(c->SectionSize(row.kind)));
    }
  }
  return 0;
}

int CmdVerify(const std::string& in) {
  OpenOptions open;
  open.verify_checksums = true;
  open.deep_validate = true;
  auto c = Container::Open(in, open);
  if (!c.ok()) return Fail(c.status());
  std::printf("%s: OK (%u nodes, %llu edges, %s)\n", in.c_str(),
              c->num_nodes(),
              static_cast<unsigned long long>(c->num_edges()),
              c->compressed() ? "compressed" : "plain");
  return 0;
}

int CmdGen(int argc, char** argv) {
  std::string kind = "ba";
  NodeId users = 50000;
  uint32_t edges_per_node = 4;
  uint64_t seed = 42;
  bool weighted = false;
  bool compress = false;
  std::string out;
  for (int i = 0; i < argc; ++i) {
    const auto next_u64 = [&]() -> uint64_t {
      if (i + 1 >= argc) Usage();
      char* end = nullptr;
      const uint64_t v = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0') Usage();
      return v;
    };
    if (std::strcmp(argv[i], "--kind") == 0) {
      if (i + 1 >= argc) Usage();
      kind = argv[++i];
    } else if (std::strcmp(argv[i], "--users") == 0) {
      users = static_cast<NodeId>(next_u64());
    } else if (std::strcmp(argv[i], "--edges-per-node") == 0) {
      edges_per_node = static_cast<uint32_t>(next_u64());
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = next_u64();
    } else if (std::strcmp(argv[i], "--weighted") == 0) {
      weighted = true;
    } else if (std::strcmp(argv[i], "--compress") == 0) {
      compress = true;
    } else if (argv[i][0] == '-') {
      Usage();
    } else if (out.empty()) {
      out = argv[i];
    } else {
      Usage();
    }
  }
  if (out.empty()) Usage();

  Graph g;
  if (kind == "ba") {
    g = BarabasiAlbert(users, edges_per_node, seed);
  } else if (kind == "ws") {
    g = WattsStrogatz(users, edges_per_node * 2, 0.1, seed);
  } else if (kind == "er") {
    g = ErdosRenyiM(users, uint64_t{users} * edges_per_node, seed);
  } else if (kind == "planted") {
    g = PlantedPartition(users, 8, 0.02, 0.002, seed, nullptr);
  } else {
    Usage();
  }
  if (weighted) g = RandomizeWeights(g, 0.1, 2.0, seed ^ 0x77ULL);

  PackOptions pack;
  pack.compress = compress;
  if (Status st = WriteContainer(g, out, pack); !st.ok()) return Fail(st);
  std::printf("%s: %u nodes, %llu edges%s\n", out.c_str(), g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()),
              compress ? " (compressed)" : "");
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) Usage();
  const std::string cmd = argv[1];

  if (cmd == "gen") return CmdGen(argc - 2, argv + 2);

  std::vector<std::string> paths;
  bool compress = false;
  bool verify = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--compress") == 0) {
      compress = true;
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      verify = true;
    } else if (argv[i][0] == '-') {
      Usage();
    } else {
      paths.push_back(argv[i]);
    }
  }

  if (cmd == "pack" && paths.size() == 2) {
    return CmdPack(paths[0], paths[1], compress, verify);
  }
  if (cmd == "unpack" && paths.size() == 2 && !compress && !verify) {
    return CmdUnpack(paths[0], paths[1]);
  }
  if (cmd == "info" && paths.size() == 1 && !compress && !verify) {
    return CmdInfo(paths[0]);
  }
  if (cmd == "verify" && paths.size() == 1 && !compress && !verify) {
    return CmdVerify(paths[0]);
  }
  Usage();
  return 2;
}

}  // namespace
}  // namespace store
}  // namespace rmgp

int main(int argc, char** argv) { return rmgp::store::Main(argc, argv); }
