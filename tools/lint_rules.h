#ifndef RMGP_TOOLS_LINT_RULES_H_
#define RMGP_TOOLS_LINT_RULES_H_

#include <string>
#include <string_view>
#include <vector>

namespace rmgp {
namespace lint {

/// Project-idiom lint over the sources in src/ tools/ tests/ (see
/// tools/rmgp_lint.cc for the walker). Deliberately line-based and
/// dependency-free: comments and string/char literals are stripped first,
/// so the rules see only code. Rules, by id:
///
///   no-throw        `throw` in library code (src/): the library reports
///                   failures via Status/Result (util/status.h), never
///                   exceptions.
///   no-rand         std::rand/srand/std::random_device/std::mt19937
///                   anywhere: every randomized component must go through
///                   the seeded, bit-exact util/rng.h.
///   no-bare-assert  assert() in src/: disappears in Release; use
///                   RMGP_CHECK (always on) or RMGP_DCHECK (audit builds,
///                   util/dcheck.h) so intent is explicit.
///   no-stdout       std::cout/std::cerr/printf/fprintf in src/: libraries
///                   log through util/logging.h; direct output belongs to
///                   tools and tests.
///   include-guard   headers must guard with RMGP_<PATH>_H_ (the leading
///                   src/ is dropped: src/core/solver.h ->
///                   RMGP_CORE_SOLVER_H_).
///   no-blocking-io  blocking I/O (stdio calls, fstreams, sleeps) in
///                   src/serve/: serving code runs inside worker-pool
///                   callbacks, where a blocked thread stalls the whole
///                   queue. All output goes through serve::ResponseWriter.
///   no-raw-mutex    std::mutex/std::condition_variable/lock_guard/etc.
///                   anywhere: all synchronization goes through the
///                   annotated util::Mutex family (util/annotated_mutex.h)
///                   so Clang Thread Safety Analysis sees every lock. That
///                   header is the one sanctioned implementation site.
///   no-unannotated-shared-field
///                   heuristic, headers under src/ that use
///                   util/annotated_mutex.h: a trailing-underscore member
///                   declared alongside a Mutex should either carry
///                   RMGP_GUARDED_BY / RMGP_PT_GUARDED_BY, be atomic or
///                   immutable (const/constexpr), or say why not with an
///                   allow marker. Keeps new shared state from silently
///                   escaping the analysis.
///
/// Suppressions, greppable like RMGP_IGNORE_STATUS:
///   // rmgp-lint: allow(<rule>)       this line only
///   // rmgp-lint: allow-file(<rule>)  whole file (place near the top)
///
/// Sanctioned paths: some rules exist precisely because ONE file is the
/// designated place for the forbidden operation (the logger for direct
/// output, the response writer for serving I/O). Those files carry
///   // rmgp-lint: sanctioned-file(<rule>)
/// which suppresses the rule — but only in files on the hardcoded
/// sanctioned list (kSanctionedFiles in lint_rules.cc). Anywhere else the
/// marker is inert and is itself reported (rule "sanctioned-marker"), so
/// the annotation documents the design instead of weakening it. Markers
/// are directives in comments; marker text quoted inside a string
/// literal is treated as data and ignored.
struct Diagnostic {
  std::string file;     ///< path as passed to LintFile
  int line = 0;         ///< 1-based
  std::string rule;     ///< rule id, e.g. "no-throw"
  std::string message;  ///< human-readable explanation
};

/// Lints one file. `path` must be repo-root-relative (it selects the scope:
/// src/ is library code, tools/ and tests/ are not) and is echoed into the
/// diagnostics. Returns an empty vector for conforming files.
std::vector<Diagnostic> LintFile(const std::string& path,
                                 std::string_view content);

/// "path:line: [rule] message" — one line, clickable in editors and CI.
std::string FormatDiagnostic(const Diagnostic& d);

/// Expected include guard for a header path ("src/core/solver.h" ->
/// "RMGP_CORE_SOLVER_H_"). Exposed for tests.
std::string ExpectedGuard(std::string_view path);

/// Returns `content` with //, /*...*/ comments and string/char literals
/// blanked out (newlines preserved so line numbers survive). Exposed for
/// tests.
std::string StripCommentsAndStrings(std::string_view content);

}  // namespace lint
}  // namespace rmgp

#endif  // RMGP_TOOLS_LINT_RULES_H_
