// rmgp_serve — long-lived query-serving session over newline-delimited
// JSON: requests on stdin, responses on stdout (one object per line, see
// src/serve/protocol.h). Loads a fixed-seed synthetic session at startup,
// prints a ready banner, then serves until EOF or {"op":"quit"}.
//
// Usage: rmgp_serve [--dataset ba|gowalla] [--users N] [--edges-per-node M]
//                   [--seed S] [--workers N] [--queue-capacity N]
//                   [--cache-capacity N] [--max-warm-edits N]
//                   [--epoch-size N] [--epoch-patch-budget N]
//                   [--portfolio-width P]
//                   [--dist-workers N] [--dist-port P] [--dist-spawn]
//                   [--dist-partition hash|locality] [--dist-multicast]
//                   [--dist-timeout-ms N]
//
// Responses for solve requests complete asynchronously (worker pool), so
// response order is NOT request order; clients correlate by "id". All
// output funnels through serve::ResponseWriter — the sanctioned path —
// so worker callbacks never block on the client pipe.
//
// Sharded deployment: --dist-workers N embeds the shard coordinator and
// serves {"op":"solve","dist":true} queries on a fleet of rmgp_worker
// processes. --dist-spawn forks them itself (same host, binary next to
// rmgp_serve); otherwise start them externally against the port in the
// ready banner's "dist_port". The server waits for the fleet handshake
// before serving.
//
// Graceful shutdown: stdin EOF, {"op":"quit"}, or SIGTERM stop admission
// (new solves are rejected with Unavailable), drain every in-flight
// query, flush the response writer, and exit 0.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "data/datasets.h"
#include "graph/generators.h"
#include "serve/protocol.h"
#include "serve/response_writer.h"
#include "serve/service.h"
#include "store/storage.h"
#include "util/logging.h"
#include "util/rng.h"

namespace rmgp {
namespace serve {
namespace {

volatile std::sig_atomic_t g_sigterm = 0;

void OnSigterm(int) { g_sigterm = 1; }

struct Args {
  std::string dataset = "ba";
  NodeId users = 50000;
  uint32_t edges_per_node = 4;
  uint64_t seed = 42;
  std::string graph_file;  // .rmgp container or edge list; overrides dataset
  store::StorageBackend graph_backend = store::StorageBackend::kAuto;
  bool dist_spawn = false;
  ServiceConfig service;
};

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--dataset ba|gowalla] [--users N]"
               " [--graph-file PATH] [--graph-backend auto|ram|mmap|compressed]"
               " [--edges-per-node M] [--seed S] [--workers N]"
               " [--queue-capacity N] [--cache-capacity N]"
               " [--max-warm-edits N] [--epoch-size N]"
               " [--epoch-patch-budget N] [--portfolio-width P]"
               " [--dist-workers N] [--dist-port P] [--dist-spawn]"
               " [--dist-partition hash|locality] [--dist-multicast]"
               " [--dist-timeout-ms N]\n",
               argv0);
  std::exit(2);
}

/// Path of the rmgp_worker binary: next to this executable.
std::string WorkerBinaryPath() {
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "rmgp_worker";
  buf[n] = '\0';
  std::string path(buf);
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return "rmgp_worker";
  return path.substr(0, slash + 1) + "rmgp_worker";
}

/// Forks one rmgp_worker aimed at the coordinator port. Returns the pid,
/// or -1 when the fork failed.
pid_t SpawnWorker(const std::string& binary, uint16_t port) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  const std::string port_str = std::to_string(port);
  execl(binary.c_str(), "rmgp_worker", "--port", port_str.c_str(),
        static_cast<char*>(nullptr));
  std::fprintf(stderr, "exec %s failed\n", binary.c_str());
  _exit(127);
}

int Main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const auto next_u64 = [&]() -> uint64_t {
      if (i + 1 >= argc) Usage(argv[0]);
      char* end = nullptr;
      const uint64_t v = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0') Usage(argv[0]);
      return v;
    };
    if (std::strcmp(argv[i], "--dataset") == 0) {
      if (i + 1 >= argc) Usage(argv[0]);
      args.dataset = argv[++i];
    } else if (std::strcmp(argv[i], "--graph-file") == 0) {
      if (i + 1 >= argc) Usage(argv[0]);
      args.graph_file = argv[++i];
    } else if (std::strcmp(argv[i], "--graph-backend") == 0) {
      if (i + 1 >= argc) Usage(argv[0]);
      auto backend = store::ParseStorageBackend(argv[++i]);
      if (!backend.ok()) Usage(argv[0]);
      args.graph_backend = *backend;
    } else if (std::strcmp(argv[i], "--users") == 0) {
      args.users = static_cast<NodeId>(next_u64());
    } else if (std::strcmp(argv[i], "--edges-per-node") == 0) {
      args.edges_per_node = static_cast<uint32_t>(next_u64());
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      args.seed = next_u64();
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      args.service.num_workers = static_cast<uint32_t>(next_u64());
    } else if (std::strcmp(argv[i], "--queue-capacity") == 0) {
      args.service.queue_capacity = next_u64();
    } else if (std::strcmp(argv[i], "--cache-capacity") == 0) {
      args.service.cache_capacity = next_u64();
    } else if (std::strcmp(argv[i], "--max-warm-edits") == 0) {
      args.service.max_warm_edits = static_cast<uint32_t>(next_u64());
    } else if (std::strcmp(argv[i], "--epoch-size") == 0) {
      args.service.epoch_size = static_cast<uint32_t>(next_u64());
    } else if (std::strcmp(argv[i], "--epoch-patch-budget") == 0) {
      args.service.epoch_patch_budget = static_cast<uint32_t>(next_u64());
    } else if (std::strcmp(argv[i], "--portfolio-width") == 0) {
      args.service.portfolio_width = static_cast<uint32_t>(next_u64());
    } else if (std::strcmp(argv[i], "--dist-workers") == 0) {
      args.service.dist_workers = static_cast<uint32_t>(next_u64());
    } else if (std::strcmp(argv[i], "--dist-port") == 0) {
      args.service.dist_port = static_cast<uint16_t>(next_u64());
    } else if (std::strcmp(argv[i], "--dist-spawn") == 0) {
      args.dist_spawn = true;
    } else if (std::strcmp(argv[i], "--dist-partition") == 0) {
      if (i + 1 >= argc) Usage(argv[0]);
      const char* scheme = argv[++i];
      if (std::strcmp(scheme, "hash") == 0) {
        args.service.dist_partition = PartitionScheme::kHash;
      } else if (std::strcmp(scheme, "locality") == 0) {
        args.service.dist_partition = PartitionScheme::kLocality;
      } else {
        Usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--dist-multicast") == 0) {
      args.service.dist_multicast = true;
    } else if (std::strcmp(argv[i], "--dist-timeout-ms") == 0) {
      args.service.dist_timeout_ms = static_cast<int>(next_u64());
    } else {
      Usage(argv[0]);
    }
  }

  // Fixed-seed session: the same flags always serve the same graph and
  // check-in locations, so loadgen runs are reproducible end to end.
  Graph graph;
  std::vector<Point> users;
  if (!args.graph_file.empty()) {
    // External session graph (.rmgp container or edge list). Check-in
    // locations stay synthetic (seeded), so the session remains
    // reproducible for loadgen.
    store::LoadOptions load;
    load.backend = args.graph_backend;
    auto loaded = store::LoadGraph(args.graph_file, load);
    if (!loaded.ok()) {
      RMGP_LOG(kError) << "cannot load " << args.graph_file << ": "
                       << loaded.status().ToString();
      return 1;
    }
    graph = std::move(loaded->graph);
    RMGP_LOG(kInfo) << "graph storage: "
                    << store::StorageBackendName(loaded->backend) << ", "
                    << loaded->file_bytes << " file bytes, "
                    << loaded->heap_bytes << " heap bytes";
    Rng rng(args.seed ^ 0x5e55101eULL);
    users.reserve(graph.num_nodes());
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      users.push_back({rng.UniformDouble(), rng.UniformDouble()});
    }
  } else if (args.dataset == "ba") {
    graph = BarabasiAlbert(args.users, args.edges_per_node, args.seed);
    Rng rng(args.seed ^ 0x5e55101eULL);
    users.reserve(args.users);
    for (NodeId v = 0; v < args.users; ++v) {
      users.push_back({rng.UniformDouble(), rng.UniformDouble()});
    }
  } else if (args.dataset == "gowalla") {
    GowallaLikeOptions opt;
    opt.seed = args.seed;
    GeoSocialDataset data = MakeGowallaLike(opt);
    graph = std::move(data.graph);
    users = std::move(data.user_locations);
  } else {
    Usage(argv[0]);
  }

  RMGP_LOG(kInfo) << "session loaded: " << graph.num_nodes() << " users, "
                  << graph.num_edges() << " edges ("
                  << (args.graph_file.empty() ? args.dataset
                                              : args.graph_file)
                  << ", seed " << args.seed << ")";

  // No SA_RESTART: SIGTERM must interrupt the blocking stdin read so the
  // loop below falls through to the drain path.
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = OnSigterm;
  sigaction(SIGTERM, &sa, nullptr);

  // Declaration order is load-bearing: the service must be destroyed
  // (draining in-flight queries, whose callbacks write responses) before
  // the writer that carries those responses.
  ResponseWriter writer(stdout);
  RmgpService service(std::move(graph), std::move(users), args.service);

  // Bring the worker fleet up before serving: spawn locally when asked,
  // then block until all of them have handshaked.
  std::vector<pid_t> worker_pids;
  if (args.service.dist_workers > 0) {
    if (service.dist_port() == 0) {
      RMGP_LOG(kError) << "dist coordinator failed to bind";
      return 1;
    }
    if (args.dist_spawn) {
      const std::string binary = WorkerBinaryPath();
      for (uint32_t i = 0; i < args.service.dist_workers; ++i) {
        const pid_t pid = SpawnWorker(binary, service.dist_port());
        if (pid < 0) {
          RMGP_LOG(kError) << "fork failed for worker " << i;
          return 1;
        }
        worker_pids.push_back(pid);
      }
    }
    RMGP_LOG(kInfo) << "awaiting " << args.service.dist_workers
                    << " workers on port " << service.dist_port();
    if (Status st = service.WaitForDistWorkers(args.service.dist_timeout_ms);
        !st.ok()) {
      RMGP_LOG(kError) << "worker fleet never assembled: " << st.ToString();
      return 1;
    }
  }
  writer.Write(ReadyBanner(service));

  std::string line;
  line.reserve(1 << 12);
  char buf[1 << 16];
  bool quit = false;
  while (!quit && g_sigterm == 0 &&
         std::fgets(buf, sizeof(buf), stdin) != nullptr) {
    line.assign(buf);
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    if (line.empty()) continue;

    Result<Request> parsed = ParseRequest(line);
    if (!parsed.ok()) {
      writer.Write(SerializeFailure(0.0, parsed.status()));
      continue;
    }
    Request req = std::move(parsed).value();
    switch (req.op) {
      case Request::Op::kSolve: {
        const double id = req.id;
        Status admitted = service.Submit(
            std::move(req.query),
            [&writer, id](const Status& status, const QueryResult& result) {
              writer.Write(status.ok() ? SerializeQueryResult(id, result)
                                       : SerializeFailure(id, status));
            });
        if (!admitted.ok()) writer.Write(SerializeFailure(id, admitted));
        break;
      }
      case Request::Op::kUpdateUser: {
        Status updated = service.UpdateUserLocation(req.user, req.location);
        writer.Write(updated.ok() ? SerializeAck(req.id)
                                  : SerializeFailure(req.id, updated));
        break;
      }
      case Request::Op::kMutate: {
        Result<MutationAck> ack = service.Mutate(req.mutation);
        writer.Write(ack.ok() ? SerializeMutationAck(req.id, ack.value())
                              : SerializeFailure(req.id, ack.status()));
        break;
      }
      case Request::Op::kEpoch: {
        Result<EpochResult> epoch = service.CommitEpoch();
        writer.Write(epoch.ok() ? SerializeEpochResult(req.id, epoch.value())
                                : SerializeFailure(req.id, epoch.status()));
        break;
      }
      case Request::Op::kNearby:
        writer.Write(SerializeCount(req.id, service.CountUsersIn(req.box)));
        break;
      case Request::Op::kMetrics:
        writer.Write(SerializeMetrics(req.id, service.MetricsJson()));
        break;
      case Request::Op::kQuit:
        writer.Write(SerializeAck(req.id));
        quit = true;
        break;
    }
  }

  // Graceful shutdown (stdin EOF, quit op, or SIGTERM): reject new work,
  // let every admitted query finish and write its response, then release
  // the fleet (~RmgpService) and flush the writer (~ResponseWriter).
  if (g_sigterm != 0) {
    RMGP_LOG(kInfo) << "SIGTERM: draining";
  }
  service.StopAdmitting();
  service.Drain();
  writer.Drain();

  if (!worker_pids.empty()) {
    // ~RmgpService has not run yet, so tell the fleet to exit and reap.
    // StopAdmitting() guarantees no query is using the coordinator now.
    for (const pid_t pid : worker_pids) kill(pid, SIGTERM);
    for (const pid_t pid : worker_pids) {
      int wstatus = 0;
      waitpid(pid, &wstatus, 0);
    }
  }
  return 0;
}

}  // namespace
}  // namespace serve
}  // namespace rmgp

int main(int argc, char** argv) { return rmgp::serve::Main(argc, argv); }
