// rmgp_lint — project-idiom linter for the RMGP tree.
//
// Walks src/ tools/ tests/ under the given repo root (default: the current
// directory), applies the rules documented in tools/lint_rules.h, prints
// one "path:line: [rule] message" per violation, and exits non-zero if any
// were found. Dependency-free by design so it can run as the first CI gate
// before anything is compiled.
//
// Usage:
//   rmgp_lint [repo_root]
//   rmgp_lint --help

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint_rules.h"

namespace fs = std::filesystem;

namespace {

constexpr const char* kUsage =
    "usage: rmgp_lint [repo_root]\n"
    "\n"
    "Lints .h/.cc files under <repo_root>/{src,tools,tests} for project\n"
    "idioms (see tools/lint_rules.h): no-throw, no-rand, no-bare-assert,\n"
    "no-stdout, include-guard. Exits 1 if any violation is found.\n"
    "Suppress with '// rmgp-lint: allow(<rule>)' on the offending line or\n"
    "'// rmgp-lint: allow-file(<rule>)' anywhere in the file.\n";

bool HasLintableExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    }
    root = arg;
  }

  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    std::fprintf(stderr, "rmgp_lint: not a directory: %s\n", root.c_str());
    return 2;
  }

  // Deterministic order: collect, then sort by repo-relative path.
  std::vector<std::string> files;
  for (const char* top : {"src", "tools", "tests"}) {
    const fs::path dir = fs::path(root) / top;
    if (!fs::is_directory(dir, ec)) continue;
    for (auto it = fs::recursive_directory_iterator(dir, ec);
         it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_regular_file(ec) && HasLintableExtension(it->path())) {
        files.push_back(
            fs::relative(it->path(), root, ec).generic_string());
      }
    }
  }
  std::sort(files.begin(), files.end());

  size_t violations = 0;
  for (const std::string& rel : files) {
    std::ifstream in(fs::path(root) / rel, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "rmgp_lint: cannot read %s\n", rel.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string content = buf.str();
    for (const rmgp::lint::Diagnostic& d :
         rmgp::lint::LintFile(rel, content)) {
      std::printf("%s\n", rmgp::lint::FormatDiagnostic(d).c_str());
      ++violations;
    }
  }

  if (violations > 0) {
    std::printf("rmgp_lint: %zu violation%s in %zu files scanned\n",
                violations, violations == 1 ? "" : "s", files.size());
    return 1;
  }
  std::printf("rmgp_lint: OK (%zu files scanned)\n", files.size());
  return 0;
}
