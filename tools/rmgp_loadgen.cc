// rmgp_loadgen — fixed-seed load generator for the serving engine. Builds
// a deterministic query mix (fresh / exact-repeat / near-duplicate, plus a
// deadline-bounded fraction), drives it either against an in-process
// RmgpService (default) or a spawned `rmgp_serve` binary over pipes
// (--server PATH), and emits BENCH_serving.json
// (schema rmgp-bench-serving/1) with throughput, tail latency, and cache
// effectiveness. Exits non-zero when any query errored.
//
// Usage: rmgp_loadgen [--server PATH] [--queries N] [--duration-s S]
//                     [--concurrency C | --qps R] [--users N]
//                     [--edges-per-node M] [--events-per-query K]
//                     [--pool-events P] [--seed S] [--alpha A]
//                     [--solver NAME] [--deadline-frac F] [--deadline-ms D]
//                     [--fresh-frac F] [--repeat-frac F]
//                     [--workers N] [--queue-capacity N]
//                     [--cache-capacity N] [--max-warm-edits N]
//                     [--churn] [--mutation-frac F] [--epoch-size N]
//                     [--epoch-patch-budget N]
//                     [--portfolio] [--portfolio-width P]
//                     [--dist] [--dist-workers N]
//                     [--quick] [--out FILE]
//
// Closed loop (default, --concurrency): at most C queries outstanding —
// with C <= queue capacity the server never sheds load, so a clean run
// completes every query. Open loop (--qps): queries are released on a
// fixed schedule regardless of completions; overload shows up as
// "rejected" counts rather than latency lies (coordinated omission).
//
// --churn interleaves session mutations (moves, edge churn, user
// add/remove) with the query stream: before each query slot a persistent
// Bernoulli(--mutation-frac) draw decides whether to enqueue a mutation,
// and the server batches them into epochs of --epoch-size. Mutation acks
// are counted separately and never enter query latency. The artifact
// switches to schema rmgp-bench-churn/1 and gains an "incremental"
// section measuring ReEquilibrate vs a cold solve after a ~1% mutation
// epoch on the same session — the ratio CI gates.
//
// --dist drives the mix over a REAL multi-process deployment: the load
// generator embeds the shard coordinator, forks --dist-workers rmgp_worker
// processes (binary next to rmgp_loadgen), ships the session over loopback
// TCP, and runs every query as a synchronized decentralized game. Queries
// are serial (the coordinator is one state machine over N sockets) and the
// artifact switches to schema rmgp-bench-dist/1: measured per-round wall
// time and wire traffic, an "equivalence" section (Φ vs the in-process
// simulation — gated bit-for-bit by bench_compare), and a "recovery"
// section (one worker SIGKILLed mid-session; the follow-up query must
// re-converge on the survivors).
//
// --portfolio marks every query in the mix as a portfolio race
// (Query::portfolio): the server races --portfolio-width diverse-start
// solver instances under each query's deadline and serves the lowest-Φ
// result. The artifact gains a per-record "quality" section (potential Φ
// and realized-gap percentiles over completed queries) so a portfolio run
// and a single-start run on the same mix and seed are comparable on
// solution quality, not just latency.

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <csignal>

#include "core/cost_provider.h"
#include "core/incremental.h"
#include "core/instance.h"
#include "core/objective.h"
#include "core/solver.h"
#include "dist/decentralized.h"
#include "graph/generators.h"
#include "graph/graph_delta.h"
#include "serve/protocol.h"
#include "serve/service.h"
#include "shard/coordinator.h"
#include "store/storage.h"
#include "tools/bench_suite.h"
#include "util/annotated_mutex.h"
#include "util/build_info.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"

namespace rmgp {
namespace serve {
namespace {

using Clock = std::chrono::steady_clock;

struct Args {
  std::string server;  // empty = in-process
  std::string out = "BENCH_serving.json";
  uint64_t queries = 1000;
  double duration_s = 0.0;  // 0 = stop when `queries` sent; else wrap the
                            // mix until the clock runs out
  uint32_t concurrency = 8;
  double qps = 0.0;  // 0 = closed loop
  NodeId users = 50000;
  uint32_t edges_per_node = 4;
  ClassId events_per_query = 16;
  uint32_t pool_events = 256;
  uint64_t seed = 42;
  double alpha = 0.5;
  std::string solver = "RMGP_gt";
  double deadline_frac = 0.2;
  double deadline_ms = 50.0;
  double fresh_frac = 0.45;
  double repeat_frac = 0.40;  // remainder = near-duplicate
  bool churn = false;
  double mutation_frac = 0.2;
  bool portfolio = false;
  bool dist = false;
  uint32_t dist_workers = 2;
  std::string graph_file;  // .rmgp container or edge list; overrides BA
  store::StorageBackend graph_backend = store::StorageBackend::kAuto;
  /// Loaded once in main() when --graph-file is set; every mode's session
  /// graph (service, churn oracle, dist fleet) copies from here so they
  /// all agree on the base graph.
  std::shared_ptr<const Graph> session_graph;
  ServiceConfig service;
};

/// The session graph each mode shares: the --graph-file load when given,
/// otherwise the fixed-seed Barabási–Albert graph that mirrors
/// rmgp_serve's default session. Copies of a mapped graph alias the same
/// mapping, so this is cheap for the mmap backend.
Graph SessionGraph(const Args& args) {
  if (args.session_graph != nullptr) return *args.session_graph;
  return BarabasiAlbert(args.users, args.edges_per_node, args.seed);
}

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--server PATH] [--queries N] [--duration-s S]"
               " [--concurrency C | --qps R] [--users N] [--edges-per-node M]"
               " [--events-per-query K] [--pool-events P] [--seed S]"
               " [--alpha A] [--solver NAME] [--deadline-frac F]"
               " [--deadline-ms D] [--fresh-frac F] [--repeat-frac F]"
               " [--workers N] [--queue-capacity N] [--cache-capacity N]"
               " [--max-warm-edits N] [--churn] [--mutation-frac F]"
               " [--epoch-size N] [--epoch-patch-budget N]"
               " [--portfolio] [--portfolio-width P]"
               " [--dist] [--dist-workers N]"
               " [--graph-file PATH]"
               " [--graph-backend auto|ram|mmap|compressed]"
               " [--quick] [--out FILE]\n",
               argv0);
  std::exit(2);
}

/// The deterministic query mix. Every run with the same flags produces the
/// same sequence, so two loadgen runs are comparable record-for-record.
std::vector<Query> MakeMix(const Args& args) {
  Rng rng(args.seed ^ 0x10adULL);
  std::vector<Point> pool;
  pool.reserve(args.pool_events);
  for (uint32_t i = 0; i < args.pool_events; ++i) {
    pool.push_back({rng.UniformDouble(), rng.UniformDouble()});
  }

  const auto fresh_events = [&]() {
    // Distinct pool picks via partial Fisher–Yates over an index vector.
    std::vector<uint32_t> idx(pool.size());
    for (uint32_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::vector<Point> events;
    events.reserve(args.events_per_query);
    for (ClassId j = 0; j < args.events_per_query; ++j) {
      const size_t pick =
          j + static_cast<size_t>(rng.UniformInt(idx.size() - j));
      std::swap(idx[j], idx[pick]);
      events.push_back(pool[idx[j]]);
    }
    return events;
  };

  std::vector<Query> mix;
  mix.reserve(args.queries);
  for (uint64_t q = 0; q < args.queries; ++q) {
    Query query;
    query.alpha = args.alpha;
    query.solver = args.solver;
    query.seed = 1;
    query.portfolio = args.portfolio;
    const double kind = rng.UniformDouble();
    if (q == 0 || kind < args.fresh_frac) {
      query.events = fresh_events();
    } else {
      // Repeats have temporal locality (a recent-window draw, like real
      // query streams) so they mostly land on still-cached entries
      // instead of LRU-evicted ones.
      const uint64_t lo = q > 32 ? q - 32 : 0;
      const uint64_t prev = lo + rng.UniformInt(q - lo);
      query.events = mix[prev].events;
      if (kind >= args.fresh_frac + args.repeat_frac) {
        // Near-duplicate: swap one event — 2 edits (one add, one remove),
        // within the default warm-hit budget.
        const size_t pos = rng.UniformInt(query.events.size());
        query.events[pos] = pool[rng.UniformInt(pool.size())];
      }
    }
    if (rng.Bernoulli(args.deadline_frac)) {
      query.deadline_ms = args.deadline_ms;
    }
    mix.push_back(std::move(query));
  }
  return mix;
}

/// Generates a deterministic stream of *valid* mutations by mirroring the
/// server's session state client-side: the same Barabási–Albert graph, a
/// GraphDelta accumulating every edge edit, and an activity map for user
/// churn. Validity depends only on the combined view (base ⊕ all accepted
/// ops), which the server's epoch commits do not change — so every op the
/// oracle emits, the server accepts, even when the run wraps the mix.
class ChurnOracle {
 public:
  explicit ChurnOracle(const Args& args)
      : base_(SessionGraph(args)),
        delta_(&base_),
        active_(base_.num_nodes(), 1),
        num_active_(base_.num_nodes()),
        rng_(args.seed ^ 0xc42a11ULL) {}

  Mutation Next() {
    for (;;) {
      const uint64_t r = rng_.UniformInt(100);
      Mutation m;
      if (r < 55) {  // check-in: move a random active user
        m.kind = MutationKind::kMoveUser;
        m.user = PickActive();
        m.has_user = true;
        m.location = RandomPoint();
        return m;
      }
      if (r < 85) {  // edge churn between two active users
        const NodeId u = PickActive();
        const NodeId v = PickActive();
        if (u == v) continue;
        if (delta_.HasEdge(u, v)) {
          if (rng_.Bernoulli(0.5)) {
            if (!delta_.RemoveEdge(u, v).ok()) continue;
            m.kind = MutationKind::kRemoveEdge;
          } else {
            m.weight = rng_.UniformDouble(0.1, 2.0);
            if (!delta_.ReweightEdge(u, v, m.weight).ok()) continue;
            m.kind = MutationKind::kReweightEdge;
          }
        } else {
          m.weight = rng_.UniformDouble(0.1, 2.0);
          if (!delta_.AddEdge(u, v, m.weight).ok()) continue;
          m.kind = MutationKind::kAddEdge;
        }
        m.u = u;
        m.v = v;
        return m;
      }
      if (r < 93 || num_active_ <= 2) {  // new user: revive or append
        m.kind = MutationKind::kAddUser;
        m.location = RandomPoint();
        if (!tombstones_.empty() && rng_.Bernoulli(0.5)) {
          const size_t pick = rng_.UniformInt(tombstones_.size());
          m.user = tombstones_[pick];
          m.has_user = true;
          tombstones_[pick] = tombstones_.back();
          tombstones_.pop_back();
          active_[m.user] = 1;
        } else {
          const NodeId id = delta_.AddNode();
          RMGP_CHECK(id == active_.size());
          active_.push_back(1);
        }
        ++num_active_;
        return m;
      }
      // Departure: strip the user's edges and tombstone the id.
      const NodeId v = PickActive();
      if (!delta_.RemoveNodeEdges(v).ok()) continue;
      active_[v] = 0;
      --num_active_;
      tombstones_.push_back(v);
      m.kind = MutationKind::kRemoveUser;
      m.user = v;
      m.has_user = true;
      return m;
    }
  }

 private:
  Point RandomPoint() { return {rng_.UniformDouble(), rng_.UniformDouble()}; }

  NodeId PickActive() {
    for (;;) {
      const NodeId v = static_cast<NodeId>(rng_.UniformInt(active_.size()));
      if (active_[v] != 0) return v;
    }
  }

  Graph base_;
  GraphDelta delta_;
  std::vector<char> active_;
  std::vector<NodeId> tombstones_;
  size_t num_active_;
  Rng rng_;
};

/// Transport-independent measurement of the tentpole acceptance ratio:
/// after a ~1% mutation epoch on the session graph, how much faster is
/// ReEquilibrate (seeded from the pre-epoch equilibrium, worklist from the
/// touched set) than a cold solve of the mutated instance — with both
/// results required to be valid equilibria. Reported as the "incremental"
/// section of the churn artifact; bench_compare gates the speedup.
Json MeasureIncremental(const Args& args, bool* both_valid) {
  SolverOptions opt;
  opt.init = InitPolicy::kClosestClass;
  opt.order = OrderPolicy::kNodeId;

  Graph base = SessionGraph(args);
  Rng urng(args.seed ^ 0x5e55101eULL);  // the session's user layout
  std::vector<Point> users;
  users.reserve(base.num_nodes());
  for (NodeId v = 0; v < base.num_nodes(); ++v) {
    users.push_back({urng.UniformDouble(), urng.UniformDouble()});
  }
  Rng erng(args.seed ^ 0xeeee7ULL);
  std::vector<Point> events;
  events.reserve(args.events_per_query);
  for (ClassId c = 0; c < args.events_per_query; ++c) {
    events.push_back({erng.UniformDouble(), erng.UniformDouble()});
  }

  auto costs = std::make_shared<EuclideanCostProvider>(users, events);
  auto inst = Instance::Create(&base, costs, args.alpha);
  RMGP_CHECK(inst.ok()) << inst.status().ToString();
  auto seed_res = SolveGlobalTable(inst.value(), opt);
  RMGP_CHECK(seed_res.ok()) << seed_res.status().ToString();

  // One epoch touching ~1% of users: moves, edge adds, edge drops and
  // reweights, in equal thirds.
  const NodeId edits = std::max<NodeId>(1, args.users / 100);
  GraphDelta delta(&base);
  Rng mrng(args.seed ^ 0x3141592ULL);
  std::vector<Point> moved_users = users;
  std::vector<NodeId> touched;
  const auto move_user = [&](NodeId v) {
    moved_users[v] = {mrng.UniformDouble(), mrng.UniformDouble()};
    touched.push_back(v);
  };
  for (NodeId i = 0; i < edits; ++i) {
    const NodeId v = static_cast<NodeId>(mrng.UniformInt(args.users));
    switch (mrng.UniformInt(3)) {
      case 0:
        move_user(v);
        break;
      case 1: {
        const NodeId w = static_cast<NodeId>(mrng.UniformInt(args.users));
        if (w != v && !delta.HasEdge(v, w)) {
          RMGP_CHECK(delta.AddEdge(v, w, mrng.UniformDouble(0.1, 2.0)).ok());
        } else {
          move_user(v);
        }
        break;
      }
      default: {
        bool edited = false;
        for (const auto& nb : base.neighbors(v)) {
          if (!delta.HasEdge(v, nb.node)) continue;
          if (mrng.Bernoulli(0.5)) {
            RMGP_CHECK(delta.RemoveEdge(v, nb.node).ok());
          } else {
            RMGP_CHECK(
                delta.ReweightEdge(v, nb.node, mrng.UniformDouble(0.1, 2.0))
                    .ok());
          }
          edited = true;
          break;
        }
        if (!edited) move_user(v);
        break;
      }
    }
  }
  GraphDelta::BuildResult built = delta.Build();
  touched.insert(touched.end(), built.touched.begin(), built.touched.end());
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

  auto moved_costs =
      std::make_shared<EuclideanCostProvider>(moved_users, events);
  auto mutated = Instance::Create(&built.graph, moved_costs, args.alpha);
  RMGP_CHECK(mutated.ok()) << mutated.status().ToString();

  double incremental_ms = 0.0;
  double cold_ms = 0.0;
  Assignment incremental_a;
  Assignment cold_a;
  constexpr int kReps = 3;
  for (int rep = 0; rep < kReps; ++rep) {
    auto t0 = Clock::now();
    auto inc =
        ReEquilibrate(mutated.value(), seed_res->assignment, touched, opt);
    const double inc_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    RMGP_CHECK(inc.ok()) << inc.status().ToString();
    t0 = Clock::now();
    auto cold = SolveGlobalTable(mutated.value(), opt);
    const double c_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    RMGP_CHECK(cold.ok()) << cold.status().ToString();
    if (rep == 0 || inc_ms < incremental_ms) incremental_ms = inc_ms;
    if (rep == 0 || c_ms < cold_ms) cold_ms = c_ms;
    incremental_a = std::move(inc->assignment);
    cold_a = std::move(cold->assignment);
  }
  *both_valid = VerifyEquilibrium(mutated.value(), incremental_a).ok() &&
                VerifyEquilibrium(mutated.value(), cold_a).ok();

  Json out = Json::Object();
  out.Set("cold_ms", cold_ms);
  out.Set("incremental_ms", incremental_ms);
  out.Set("speedup", incremental_ms == 0.0 ? 0.0 : cold_ms / incremental_ms);
  out.Set("mutations", edits);
  out.Set("touched", static_cast<uint64_t>(touched.size()));
  out.Set("both_valid", *both_valid);
  return out;
}

/// Everything the run accumulates, fed by completion callbacks (in-proc)
/// or the response-reader thread (server mode).
struct Collector {
  // Fields are read without the lock only after AwaitAll() returned and
  // every producer thread is quiescent (the single-threaded report path).
  util::Mutex mu;
  util::CondVar cv;
  uint64_t outstanding = 0;
  uint64_t sent = 0;
  uint64_t completed = 0;
  uint64_t errors = 0;
  uint64_t rejected = 0;
  uint64_t timed_out = 0;
  uint64_t exact_hits = 0;
  uint64_t warm_hits = 0;
  uint64_t misses = 0;
  uint64_t deadline_queries = 0;
  uint64_t mutation_acks = 0;
  uint64_t mutation_rejected = 0;
  uint64_t epochs_committed = 0;
  double max_deadline_overshoot_ms = 0.0;
  std::vector<double> latencies_ms;
  std::vector<double> potentials;     // Φ of each completed query
  std::vector<double> realized_gaps;  // objective / lower bound (>0 only)

  void Finish(double latency_ms, const std::string& cache, bool timed,
              double deadline_ms, double potential, double realized_gap) {
    util::MutexLock lock(mu);
    ++completed;
    latencies_ms.push_back(latency_ms);
    potentials.push_back(potential);
    if (realized_gap > 0.0) realized_gaps.push_back(realized_gap);
    if (cache == "exact_hit") {
      ++exact_hits;
    } else if (cache == "warm_hit") {
      ++warm_hits;
    } else if (cache == "miss") {
      ++misses;
    }
    if (timed) ++timed_out;
    if (deadline_ms > 0.0) {
      ++deadline_queries;
      max_deadline_overshoot_ms =
          std::max(max_deadline_overshoot_ms, latency_ms - deadline_ms);
    }
    --outstanding;
    cv.NotifyAll();
  }

  /// Mutation completion (server mode): releases the slot, never touches
  /// query latency.
  void FinishMutation(bool accepted, bool committed) {
    util::MutexLock lock(mu);
    CountMutationLocked(accepted, committed);
    --outstanding;
    cv.NotifyAll();
  }

  /// Mutation bookkeeping without slot accounting (in-proc mode, where
  /// Mutate is synchronous and holds no slot).
  void RecordMutation(bool accepted, bool committed) {
    util::MutexLock lock(mu);
    CountMutationLocked(accepted, committed);
  }

  void CountMutationLocked(bool accepted, bool committed) {
    if (accepted) {
      ++mutation_acks;
    } else {
      ++mutation_rejected;
    }
    if (committed) ++epochs_committed;
  }

  void Fail(bool was_rejected) {
    util::MutexLock lock(mu);
    if (was_rejected) {
      ++rejected;
    } else {
      ++errors;
    }
    --outstanding;
    cv.NotifyAll();
  }

  void AwaitSlot(uint32_t concurrency) {
    util::MutexLock lock(mu);
    while (outstanding >= concurrency) cv.Wait(mu);
    ++outstanding;
    ++sent;
  }

  void AwaitMutationSlot(uint32_t concurrency) {  // mutations don't count
    util::MutexLock lock(mu);                     // toward `sent` queries
    while (outstanding >= concurrency) cv.Wait(mu);
    ++outstanding;
  }

  void ClaimSlot() {  // open loop: no backpressure
    util::MutexLock lock(mu);
    ++outstanding;
    ++sent;
  }

  void AwaitAll() {
    util::MutexLock lock(mu);
    while (outstanding != 0) cv.Wait(mu);
  }
};

/// Transport over a spawned rmgp_serve: NDJSON on the child's stdin,
/// responses matched to send timestamps by id on a reader thread.
class ServerTransport {
 public:
  ServerTransport(const Args& args, Collector* collector)
      : collector_(collector) {
    int to_child[2];
    int from_child[2];
    RMGP_CHECK(pipe(to_child) == 0 && pipe(from_child) == 0);
    child_ = fork();
    RMGP_CHECK(child_ >= 0) << "fork failed";
    if (child_ == 0) {
      dup2(to_child[0], STDIN_FILENO);
      dup2(from_child[1], STDOUT_FILENO);
      close(to_child[0]);
      close(to_child[1]);
      close(from_child[0]);
      close(from_child[1]);
      std::string users = std::to_string(args.users);
      std::string epn = std::to_string(args.edges_per_node);
      std::string seed = std::to_string(args.seed);
      std::string workers = std::to_string(args.service.num_workers);
      std::string queue = std::to_string(args.service.queue_capacity);
      std::string cache = std::to_string(args.service.cache_capacity);
      std::string edits = std::to_string(args.service.max_warm_edits);
      std::string epoch = std::to_string(args.service.epoch_size);
      std::string budget = std::to_string(args.service.epoch_patch_budget);
      std::string width = std::to_string(args.service.portfolio_width);
      std::vector<const char*> argv = {args.server.c_str(),
                                       "--users", users.c_str(),
                                       "--edges-per-node", epn.c_str(),
                                       "--seed", seed.c_str(),
                                       "--workers", workers.c_str(),
                                       "--queue-capacity", queue.c_str(),
                                       "--cache-capacity", cache.c_str(),
                                       "--max-warm-edits", edits.c_str(),
                                       "--epoch-size", epoch.c_str(),
                                       "--epoch-patch-budget", budget.c_str(),
                                       "--portfolio-width", width.c_str()};
      // The server must load the same session graph the client-side
      // oracle did, so --graph-file travels with it.
      if (!args.graph_file.empty()) {
        argv.push_back("--graph-file");
        argv.push_back(args.graph_file.c_str());
        argv.push_back("--graph-backend");
        argv.push_back(store::StorageBackendName(args.graph_backend));
      }
      argv.push_back(nullptr);
      execv(args.server.c_str(), const_cast<char* const*>(argv.data()));
      std::perror("execv");
      _exit(127);
    }
    close(to_child[0]);
    close(from_child[1]);
    to_child_ = fdopen(to_child[1], "w");
    from_child_ = fdopen(from_child[0], "r");
    RMGP_CHECK(to_child_ != nullptr && from_child_ != nullptr);
    reader_ = std::thread([this] { ReadLoop(); });

    // Block until the session is loaded (the ready banner) so measured
    // latencies never include server startup.
    util::MutexLock lock(mu_);
    while (!ready_ && !reader_done_) ready_cv_.Wait(mu_);
    RMGP_CHECK(ready_) << "server exited before becoming ready";
  }

  ~ServerTransport() {
    if (to_child_ != nullptr) std::fclose(to_child_);
    if (reader_.joinable()) reader_.join();
    if (from_child_ != nullptr) std::fclose(from_child_);
    int wstatus = 0;
    waitpid(child_, &wstatus, 0);
  }

  void Send(uint64_t id, const Query& query) {
    Json req = Json::Object();
    req.Set("id", id);
    req.Set("op", "solve");
    Json events = Json::Array();
    for (const Point& p : query.events) {
      Json pair = Json::Array();
      pair.Append(p.x);
      pair.Append(p.y);
      events.Append(std::move(pair));
    }
    req.Set("events", std::move(events));
    req.Set("alpha", query.alpha);
    req.Set("solver", query.solver);
    req.Set("seed", query.seed);
    if (query.portfolio) req.Set("portfolio", true);
    if (query.deadline_ms > 0.0) req.Set("deadline_ms", query.deadline_ms);
    const std::string line = req.Dump();
    {
      util::MutexLock lock(mu_);
      pending_[id] = {Clock::now(), query.deadline_ms, false};
    }
    WriteLine(line);
  }

  void SendMutation(uint64_t id, const Mutation& m) {
    Json req = Json::Object();
    req.Set("id", id);
    req.Set("op", "mutate");
    req.Set("kind", MutationKindName(m.kind));
    if (m.has_user) req.Set("user", m.user);
    switch (m.kind) {
      case MutationKind::kAddUser:
      case MutationKind::kMoveUser: {
        Json loc = Json::Array();
        loc.Append(m.location.x);
        loc.Append(m.location.y);
        req.Set("location", std::move(loc));
        break;
      }
      case MutationKind::kRemoveUser:
        break;
      default:
        req.Set("u", m.u);
        req.Set("v", m.v);
        if (m.kind != MutationKind::kRemoveEdge) req.Set("weight", m.weight);
        break;
    }
    const std::string line = req.Dump();
    {
      util::MutexLock lock(mu_);
      pending_[id] = {Clock::now(), 0.0, true};
    }
    WriteLine(line);
  }

  /// Flushes pending mutations with an explicit epoch op and waits for the
  /// result. Returns whether a version was committed.
  bool CommitEpochSync() {
    Json req = Json::Object();
    req.Set("id", kEpochId);
    req.Set("op", "epoch");
    WriteLine(req.Dump());
    util::MutexLock lock(mu_);
    while (!epoch_done_ && !reader_done_) epoch_cv_.Wait(mu_);
    return epoch_committed_;
  }

  /// Requests the server's metrics dump and waits for it.
  Json FetchMetrics() {
    Json req = Json::Object();
    req.Set("id", kMetricsId);
    req.Set("op", "metrics");
    WriteLine(req.Dump());
    util::MutexLock lock(mu_);
    while (metrics_.is_null() && !reader_done_) metrics_cv_.Wait(mu_);
    return metrics_;
  }

  void Quit() {
    Json req = Json::Object();
    req.Set("id", kQuitId);
    req.Set("op", "quit");
    WriteLine(req.Dump());
  }

 private:
  static constexpr double kMetricsId = -1.0;
  static constexpr double kQuitId = -2.0;
  static constexpr double kEpochId = -3.0;

  struct Pending {
    Clock::time_point sent_at;
    double deadline_ms = 0.0;
    bool is_mutation = false;
  };

  void WriteLine(const std::string& line) {
    util::MutexLock lock(write_mu_);
    std::fwrite(line.data(), 1, line.size(), to_child_);
    std::fputc('\n', to_child_);
    std::fflush(to_child_);
  }

  void ReadLoop() {
    char buf[1 << 20];
    while (std::fgets(buf, sizeof(buf), from_child_) != nullptr) {
      const auto now = Clock::now();
      Result<Json> doc = Json::Parse(buf);
      if (!doc.ok()) continue;
      const Json& obj = doc.value();
      if (!obj.is_object()) continue;
      const Json* status = obj.Find("status");
      if (status == nullptr || !status->is_string()) continue;
      if (status->AsString() == "ready") {
        util::MutexLock lock(mu_);
        ready_ = true;
        ready_cv_.NotifyAll();
        continue;
      }
      const Json* id_field = obj.Find("id");
      if (id_field == nullptr || !id_field->is_number()) continue;
      const double id = id_field->AsDouble();
      if (id == kMetricsId) {
        util::MutexLock lock(mu_);
        const Json* metrics = obj.Find("metrics");
        metrics_ = metrics != nullptr ? *metrics : Json::Object();
        metrics_cv_.NotifyAll();
        continue;
      }
      if (id == kQuitId) continue;
      if (id == kEpochId) {
        util::MutexLock lock(mu_);
        const Json* committed = obj.Find("committed");
        epoch_committed_ = committed != nullptr && committed->is_bool() &&
                           committed->AsBool();
        epoch_done_ = true;
        epoch_cv_.NotifyAll();
        continue;
      }

      Pending pending;
      {
        util::MutexLock lock(mu_);
        auto it = pending_.find(static_cast<uint64_t>(id));
        if (it == pending_.end()) continue;
        pending = it->second;
        pending_.erase(it);
      }
      if (pending.is_mutation) {
        const Json* committed = obj.Find("committed");
        collector_->FinishMutation(status->AsString() == "ok",
                                   committed != nullptr &&
                                       committed->is_bool() &&
                                       committed->AsBool());
        continue;
      }
      const double latency_ms =
          std::chrono::duration<double, std::milli>(now - pending.sent_at)
              .count();
      if (status->AsString() == "ok") {
        const Json* cache = obj.Find("cache");
        const Json* timed = obj.Find("timed_out");
        const Json* phi = obj.Find("potential");
        const Json* gap = obj.Find("realized_gap");
        collector_->Finish(
            latency_ms,
            cache != nullptr && cache->is_string() ? cache->AsString() : "",
            timed != nullptr && timed->is_bool() && timed->AsBool(),
            pending.deadline_ms,
            phi != nullptr && phi->is_number() ? phi->AsDouble() : 0.0,
            gap != nullptr && gap->is_number() ? gap->AsDouble() : 0.0);
      } else {
        collector_->Fail(status->AsString() == "rejected");
      }
    }
    util::MutexLock lock(mu_);
    reader_done_ = true;
    ready_cv_.NotifyAll();
    metrics_cv_.NotifyAll();
    epoch_cv_.NotifyAll();
  }

  Collector* collector_;
  pid_t child_ = -1;
  std::FILE* to_child_ = nullptr;
  std::FILE* from_child_ = nullptr;
  util::Mutex write_mu_;
  util::Mutex mu_;
  util::CondVar ready_cv_;
  util::CondVar metrics_cv_;
  util::CondVar epoch_cv_;
  std::map<uint64_t, Pending> pending_ RMGP_GUARDED_BY(mu_);
  Json metrics_ RMGP_GUARDED_BY(mu_);
  bool ready_ RMGP_GUARDED_BY(mu_) = false;
  bool reader_done_ RMGP_GUARDED_BY(mu_) = false;
  bool epoch_done_ RMGP_GUARDED_BY(mu_) = false;
  bool epoch_committed_ RMGP_GUARDED_BY(mu_) = false;
  std::thread reader_;
};

/// Path of the rmgp_worker binary: next to this executable.
std::string WorkerBinaryPath() {
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "rmgp_worker";
  buf[n] = '\0';
  std::string path(buf);
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return "rmgp_worker";
  return path.substr(0, slash + 1) + "rmgp_worker";
}

/// The --dist mode: the query mix over a real forked worker fleet.
int RunDist(const Args& args, const std::vector<Query>& mix) {
  // The same fixed-seed session the in-process mode serves.
  Graph graph = SessionGraph(args);
  auto shared_graph = std::make_shared<Graph>(std::move(graph));
  Rng rng(args.seed ^ 0x5e55101eULL);
  std::vector<Point> users;
  users.reserve(shared_graph->num_nodes());
  for (NodeId v = 0; v < shared_graph->num_nodes(); ++v) {
    users.push_back({rng.UniformDouble(), rng.UniformDouble()});
  }

  shard::ShardCoordinator coordinator{shard::CoordinatorConfig{}};
  if (Status st = coordinator.Listen(0); !st.ok()) {
    std::fprintf(stderr, "coordinator bind failed: %s\n",
                 st.ToString().c_str());
    return 2;
  }
  const std::string worker_bin = WorkerBinaryPath();
  const std::string port_str = std::to_string(coordinator.port());
  std::vector<pid_t> worker_pids;
  for (uint32_t i = 0; i < args.dist_workers; ++i) {
    const pid_t pid = fork();
    RMGP_CHECK(pid >= 0) << "fork failed";
    if (pid == 0) {
      execl(worker_bin.c_str(), "rmgp_worker", "--port", port_str.c_str(),
            static_cast<char*>(nullptr));
      std::fprintf(stderr, "exec %s failed\n", worker_bin.c_str());
      _exit(127);
    }
    worker_pids.push_back(pid);
  }
  const auto reap_fleet = [&] {
    RMGP_IGNORE_STATUS(coordinator.Shutdown());
    for (const pid_t pid : worker_pids) {
      int wstatus = 0;
      waitpid(pid, &wstatus, 0);
    }
  };
  if (Status st = coordinator.AwaitWorkers(args.dist_workers, 15000);
      !st.ok()) {
    std::fprintf(stderr, "fleet never assembled: %s\n",
                 st.ToString().c_str());
    reap_fleet();
    return 2;
  }
  if (Status st = coordinator.LoadSession(shared_graph, users, 1);
      !st.ok()) {
    std::fprintf(stderr, "session ship failed: %s\n", st.ToString().c_str());
    reap_fleet();
    return 2;
  }

  SolverOptions solver;
  solver.init = InitPolicy::kClosestClass;
  solver.order = OrderPolicy::kNodeId;
  solver.seed = 1;

  // Drive the mix serially (the coordinator is one state machine over N
  // sockets). --duration-s wraps the mix until the clock runs out.
  uint64_t completed = 0;
  uint64_t errors = 0;
  std::vector<double> latencies_ms;
  std::vector<double> rounds_per_query;
  uint64_t total_bytes = 0;
  uint64_t total_messages = 0;
  Json round_ms = Json::Array();        // per-round profile of query 0
  Json round_bytes = Json::Array();
  Json round_messages = Json::Array();
  double phi_dist = 0.0;
  Assignment first_assignment;
  const auto start = Clock::now();
  const auto deadline =
      args.duration_s > 0.0
          ? start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(args.duration_s))
          : Clock::time_point::max();
  for (uint64_t q = 0;; ++q) {
    if (args.duration_s > 0.0) {
      if (Clock::now() >= deadline) break;
    } else if (q >= mix.size()) {
      break;
    }
    const Query& query = mix[q % mix.size()];
    const auto t0 = Clock::now();
    auto res = coordinator.Solve(query.events, query.alpha, query.cost_scale,
                                 solver);
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    if (!res.ok()) {
      std::fprintf(stderr, "dist query %llu failed: %s\n",
                   static_cast<unsigned long long>(q),
                   res.status().ToString().c_str());
      ++errors;
      continue;
    }
    ++completed;
    latencies_ms.push_back(ms);
    rounds_per_query.push_back(static_cast<double>(res->rounds));
    total_bytes += res->traffic.bytes;
    total_messages += res->traffic.messages;
    if (q == 0) {
      phi_dist = res->objective.total;
      first_assignment = res->assignment;
      for (const DgRoundStats& rs : res->round_stats) {
        round_ms.Append(rs.seconds * 1e3);
        round_bytes.Append(rs.bytes);
        round_messages.Append(rs.messages);
      }
    }
  }
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  // Equivalence probe: the first query replayed through the in-process
  // simulation (dist/decentralized.h) must land on the same Φ bit for bit.
  auto costs = std::make_shared<EuclideanCostProvider>(users, mix[0].events);
  auto inst = Instance::Create(shared_graph.get(), costs, mix[0].alpha);
  RMGP_CHECK(inst.ok()) << inst.status().ToString();
  DecentralizedOptions sim;
  sim.num_slaves = args.dist_workers;
  sim.solver = solver;
  auto simulated = RunDecentralizedGame(inst.value(), sim);
  RMGP_CHECK(simulated.ok()) << simulated.status().ToString();
  const double phi_sim = simulated->objective.total;
  const bool phi_match = completed > 0 && phi_sim == phi_dist;
  // The deployed equilibrium must also audit as a true equilibrium (no
  // user can improve by deviating) — from-scratch, not via the solver.
  const bool audit_valid =
      completed > 0 &&
      VerifyEquilibrium(inst.value(), first_assignment).ok();

  // Recovery probe: SIGKILL one worker, then query again. The coordinator
  // must detect the death, re-assign the shard, replay from the last
  // equilibrium snapshot, and converge on the survivors.
  kill(worker_pids[0], SIGKILL);
  const auto r0 = Clock::now();
  auto recovered = coordinator.Solve(mix[0].events, mix[0].alpha,
                                     mix[0].cost_scale, solver);
  const double recovery_query_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - r0).count();
  const bool recovery_converged = recovered.ok() && recovered->converged;
  if (recovery_converged && phi_match) {
    // The re-assigned fleet must still land on the same equilibrium.
    RMGP_CHECK(recovered->objective.total == phi_dist)
        << "post-recovery Φ diverged";
  }
  reap_fleet();

  // ---- BENCH_dist.json ---------------------------------------------------
  Json root = Json::Object();
  root.Set("schema", bench::kDistSchema);

  Json cfg = Json::Object();
  cfg.Set("transport", "shard");
  cfg.Set("dist_workers", args.dist_workers);
  cfg.Set("queries", args.queries);
  cfg.Set("duration_s", args.duration_s);
  cfg.Set("users", args.users);
  cfg.Set("edges_per_node", args.edges_per_node);
  cfg.Set("events_per_query", args.events_per_query);
  cfg.Set("pool_events", args.pool_events);
  cfg.Set("seed", args.seed);
  cfg.Set("alpha", args.alpha);
  root.Set("config", std::move(cfg));

  const BuildInfo info = GetBuildInfo();
  Json env = Json::Object();
  env.Set("git_sha", info.git_sha);
  env.Set("compiler", info.compiler);
  env.Set("compiler_flags", info.compiler_flags);
  env.Set("build_type", info.build_type);
  env.Set("sanitize", info.sanitize);
  env.Set("hardware_threads", static_cast<uint64_t>(info.hardware_threads));
  root.Set("environment", std::move(env));

  Json record = Json::Object();
  record.Set("name", "dist_mix");
  record.Set("sent", completed + errors);
  record.Set("completed", completed);
  record.Set("errors", errors);
  record.Set("throughput_qps",
             elapsed_s == 0.0 ? 0.0
                              : static_cast<double>(completed) / elapsed_s);
  RunningStats latency_stats;
  for (const double v : latencies_ms) latency_stats.Add(v);
  Json latency = Json::Object();
  latency.Set("mean_ms", latency_stats.mean());
  latency.Set("p50_ms", Percentile(latencies_ms, 50.0));
  latency.Set("p90_ms", Percentile(latencies_ms, 90.0));
  latency.Set("p99_ms", Percentile(latencies_ms, 99.0));
  latency.Set("max_ms", latency_stats.max());
  record.Set("latency_ms", std::move(latency));
  RunningStats round_stats;
  for (const double v : rounds_per_query) round_stats.Add(v);
  Json rounds = Json::Object();
  rounds.Set("mean", round_stats.mean());
  rounds.Set("max", round_stats.max());
  record.Set("rounds", std::move(rounds));
  double total_rounds = 0.0;
  for (const double v : rounds_per_query) total_rounds += v;
  Json traffic = Json::Object();
  traffic.Set("bytes", total_bytes);
  traffic.Set("messages", total_messages);
  traffic.Set("bytes_per_query",
              completed == 0 ? 0.0
                             : static_cast<double>(total_bytes) /
                                   static_cast<double>(completed));
  traffic.Set("bytes_per_round",
              total_rounds == 0.0
                  ? 0.0
                  : static_cast<double>(total_bytes) / total_rounds);
  record.Set("traffic", std::move(traffic));
  Json records = Json::Array();
  records.Append(std::move(record));
  root.Set("records", std::move(records));

  Json dist = Json::Object();
  dist.Set("round_ms", std::move(round_ms));
  dist.Set("round_bytes", std::move(round_bytes));
  dist.Set("round_messages", std::move(round_messages));
  root.Set("dist", std::move(dist));

  Json equivalence = Json::Object();
  equivalence.Set("phi_sim", phi_sim);
  equivalence.Set("phi_dist", phi_dist);
  equivalence.Set("phi_match", phi_match);
  equivalence.Set("audit_valid", audit_valid);
  root.Set("equivalence", std::move(equivalence));

  const shard::RecoveryStats& rstats = coordinator.recovery_stats();
  Json recovery = Json::Object();
  recovery.Set("converged", recovery_converged);
  recovery.Set("recovery_ms", rstats.last_recovery_ms);
  recovery.Set("query_ms", recovery_query_ms);
  recovery.Set("recoveries", rstats.recoveries);
  recovery.Set("workers_lost", rstats.workers_lost);
  root.Set("recovery", std::move(recovery));

  Status written = root.WriteFile(args.out);
  if (!written.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", args.out.c_str(),
                 written.ToString().c_str());
    return 2;
  }
  RMGP_LOG(kInfo) << "dist: " << completed << " queries on "
                  << args.dist_workers << " workers, " << total_bytes
                  << "B, phi_match=" << phi_match << ", audit="
                  << audit_valid << ", recovery=" << recovery_converged
                  << " -> " << args.out;
  return errors == 0 && phi_match && audit_valid && recovery_converged ? 0
                                                                       : 1;
}

int Main(int argc, char** argv) {
  Args args;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const auto next_str = [&]() -> const char* {
      if (i + 1 >= argc) Usage(argv[0]);
      return argv[++i];
    };
    const auto next_u64 = [&]() -> uint64_t {
      char* end = nullptr;
      const char* s = next_str();
      const uint64_t v = std::strtoull(s, &end, 10);
      if (end == s || *end != '\0') Usage(argv[0]);
      return v;
    };
    const auto next_double = [&]() -> double {
      char* end = nullptr;
      const char* s = next_str();
      const double v = std::strtod(s, &end);
      if (end == s || *end != '\0') Usage(argv[0]);
      return v;
    };
    if (std::strcmp(argv[i], "--server") == 0) {
      args.server = next_str();
    } else if (std::strcmp(argv[i], "--out") == 0) {
      args.out = next_str();
    } else if (std::strcmp(argv[i], "--queries") == 0) {
      args.queries = next_u64();
    } else if (std::strcmp(argv[i], "--duration-s") == 0) {
      args.duration_s = next_double();
    } else if (std::strcmp(argv[i], "--concurrency") == 0) {
      args.concurrency = static_cast<uint32_t>(next_u64());
    } else if (std::strcmp(argv[i], "--qps") == 0) {
      args.qps = next_double();
    } else if (std::strcmp(argv[i], "--users") == 0) {
      args.users = static_cast<NodeId>(next_u64());
    } else if (std::strcmp(argv[i], "--edges-per-node") == 0) {
      args.edges_per_node = static_cast<uint32_t>(next_u64());
    } else if (std::strcmp(argv[i], "--events-per-query") == 0) {
      args.events_per_query = static_cast<ClassId>(next_u64());
    } else if (std::strcmp(argv[i], "--pool-events") == 0) {
      args.pool_events = static_cast<uint32_t>(next_u64());
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      args.seed = next_u64();
    } else if (std::strcmp(argv[i], "--alpha") == 0) {
      args.alpha = next_double();
    } else if (std::strcmp(argv[i], "--solver") == 0) {
      args.solver = next_str();
    } else if (std::strcmp(argv[i], "--deadline-frac") == 0) {
      args.deadline_frac = next_double();
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0) {
      args.deadline_ms = next_double();
    } else if (std::strcmp(argv[i], "--fresh-frac") == 0) {
      args.fresh_frac = next_double();
    } else if (std::strcmp(argv[i], "--repeat-frac") == 0) {
      args.repeat_frac = next_double();
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      args.service.num_workers = static_cast<uint32_t>(next_u64());
    } else if (std::strcmp(argv[i], "--queue-capacity") == 0) {
      args.service.queue_capacity = next_u64();
    } else if (std::strcmp(argv[i], "--cache-capacity") == 0) {
      args.service.cache_capacity = next_u64();
    } else if (std::strcmp(argv[i], "--max-warm-edits") == 0) {
      args.service.max_warm_edits = static_cast<uint32_t>(next_u64());
    } else if (std::strcmp(argv[i], "--churn") == 0) {
      args.churn = true;
    } else if (std::strcmp(argv[i], "--mutation-frac") == 0) {
      args.mutation_frac = next_double();
    } else if (std::strcmp(argv[i], "--epoch-size") == 0) {
      args.service.epoch_size = static_cast<uint32_t>(next_u64());
    } else if (std::strcmp(argv[i], "--epoch-patch-budget") == 0) {
      args.service.epoch_patch_budget = static_cast<uint32_t>(next_u64());
    } else if (std::strcmp(argv[i], "--portfolio") == 0) {
      args.portfolio = true;
    } else if (std::strcmp(argv[i], "--portfolio-width") == 0) {
      args.service.portfolio_width = static_cast<uint32_t>(next_u64());
    } else if (std::strcmp(argv[i], "--dist") == 0) {
      args.dist = true;
    } else if (std::strcmp(argv[i], "--dist-workers") == 0) {
      args.dist_workers = static_cast<uint32_t>(next_u64());
    } else if (std::strcmp(argv[i], "--graph-file") == 0) {
      args.graph_file = next_str();
    } else if (std::strcmp(argv[i], "--graph-backend") == 0) {
      auto backend = store::ParseStorageBackend(next_str());
      if (!backend.ok()) Usage(argv[0]);
      args.graph_backend = *backend;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      Usage(argv[0]);
    }
  }
  if (!args.graph_file.empty()) {
    store::LoadOptions load;
    load.backend = args.graph_backend;
    auto loaded = store::LoadGraph(args.graph_file, load);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", args.graph_file.c_str(),
                   loaded.status().ToString().c_str());
      return 2;
    }
    args.session_graph =
        std::make_shared<const Graph>(std::move(loaded->graph));
    // Keep every users-sized loop (locations, mutation targets, the query
    // mix) consistent with the externally loaded session.
    args.users = args.session_graph->num_nodes();
  }
  if (quick) {
    // CI smoke preset: a small session that still exercises every path.
    // An externally loaded graph keeps its size — the file is the session.
    if (args.session_graph == nullptr) {
      args.users = std::min<NodeId>(args.users, 5000);
    }
    args.queries = std::min<uint64_t>(args.queries, 300);
    args.events_per_query = std::min<ClassId>(args.events_per_query, 8);
    args.pool_events = std::min<uint32_t>(args.pool_events, 64);
    // Dist queries are serial full solves over the fleet; keep the smoke
    // run to a handful.
    if (args.dist) args.queries = std::min<uint64_t>(args.queries, 12);
  }
  if (args.dist) {
    if (args.dist_workers == 0) Usage(argv[0]);
    if (args.out == "BENCH_serving.json") args.out = "BENCH_dist.json";
    return RunDist(args, MakeMix(args));
  }
  if (args.concurrency == 0 ||
      args.concurrency > args.service.queue_capacity) {
    std::fprintf(stderr,
                 "--concurrency must be in [1, queue capacity %zu]\n",
                 args.service.queue_capacity);
    return 2;
  }

  const std::vector<Query> mix = MakeMix(args);
  Collector collector;
  std::unique_ptr<ChurnOracle> oracle;
  if (args.churn) oracle = std::make_unique<ChurnOracle>(args);
  Rng churn_rng(args.seed ^ 0x31337ULL);  // persists across duration-wrap

  std::unique_ptr<ServerTransport> server;
  std::unique_ptr<RmgpService> service;
  if (!args.server.empty()) {
    server = std::make_unique<ServerTransport>(args, &collector);
  } else {
    Graph graph = SessionGraph(args);
    Rng rng(args.seed ^ 0x5e55101eULL);  // mirror rmgp_serve's session
    std::vector<Point> users;
    users.reserve(graph.num_nodes());
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      users.push_back({rng.UniformDouble(), rng.UniformDouble()});
    }
    service = std::make_unique<RmgpService>(std::move(graph),
                                            std::move(users), args.service);
  }

  const auto send_one = [&](uint64_t id, const Query& query) {
    if (server != nullptr) {
      server->Send(id, query);
      return;
    }
    const auto sent_at = Clock::now();
    const double deadline_ms = query.deadline_ms;
    Status admitted = service->Submit(
        query, [&collector, sent_at, deadline_ms](const Status& status,
                                                  const QueryResult& result) {
          const double latency_ms = std::chrono::duration<double, std::milli>(
                                        Clock::now() - sent_at)
                                        .count();
          if (!status.ok()) {
            collector.Fail(false);
            return;
          }
          collector.Finish(latency_ms, CacheOutcomeName(result.cache),
                           result.timed_out, deadline_ms, result.potential,
                           result.realized_gap);
        });
    if (!admitted.ok()) {
      collector.Fail(admitted.code() == StatusCode::kFailedPrecondition);
    }
  };

  // Churn: mutation acks occupy a concurrency slot in server mode (the ack
  // releases it) but are synchronous in-proc; either way they stay out of
  // the query latency sample.
  uint64_t id = 0;
  const auto send_mutation = [&] {
    const Mutation m = oracle->Next();
    if (server != nullptr) {
      collector.AwaitMutationSlot(args.concurrency);
      server->SendMutation(++id, m);
      return;
    }
    auto ack = service->Mutate(m);
    collector.RecordMutation(ack.ok(), ack.ok() && ack->committed);
  };

  // Drive the mix: closed loop waits for a slot, open loop fires on
  // schedule. With --duration-s the mix wraps (wrapped sends are exact
  // repeats, which is what a steady-state cache workload looks like).
  const auto start = Clock::now();
  const auto deadline =
      args.duration_s > 0.0
          ? start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(args.duration_s))
          : Clock::time_point::max();
  for (uint64_t q = 0;; ++q) {
    if (args.duration_s > 0.0) {
      if (Clock::now() >= deadline) break;
    } else if (q >= mix.size()) {
      break;
    }
    if (args.churn && churn_rng.Bernoulli(args.mutation_frac)) {
      send_mutation();
    }
    if (args.qps > 0.0) {
      const auto release =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(
                          static_cast<double>(q) / args.qps));
      std::this_thread::sleep_until(release);
      collector.ClaimSlot();
    } else {
      collector.AwaitSlot(args.concurrency);
    }
    send_one(++id, mix[q % mix.size()]);
  }
  collector.AwaitAll();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  if (args.churn) {
    // Flush any sub-epoch tail so every accepted mutation reaches a
    // committed version before metrics are read.
    bool committed = false;
    if (server != nullptr) {
      committed = server->CommitEpochSync();
    } else {
      auto flushed = service->CommitEpoch();
      committed = flushed.ok() && flushed->committed;
    }
    if (committed) ++collector.epochs_committed;
  }

  Json server_metrics;
  if (server != nullptr) {
    server_metrics = server->FetchMetrics();
    server->Quit();
  } else {
    server_metrics = service->MetricsJson();
  }

  // ---- BENCH_serving.json / BENCH_churn.json -----------------------------
  Json root = Json::Object();
  root.Set("schema",
           args.churn ? bench::kChurnSchema : bench::kServingSchema);

  Json cfg = Json::Object();
  cfg.Set("transport", server != nullptr ? "server" : "inproc");
  cfg.Set("queries", args.queries);
  cfg.Set("duration_s", args.duration_s);
  cfg.Set("concurrency", args.concurrency);
  cfg.Set("qps", args.qps);
  cfg.Set("users", args.users);
  cfg.Set("edges_per_node", args.edges_per_node);
  cfg.Set("events_per_query", args.events_per_query);
  cfg.Set("pool_events", args.pool_events);
  cfg.Set("seed", args.seed);
  cfg.Set("alpha", args.alpha);
  cfg.Set("solver", args.solver);
  cfg.Set("deadline_frac", args.deadline_frac);
  cfg.Set("deadline_ms", args.deadline_ms);
  cfg.Set("fresh_frac", args.fresh_frac);
  cfg.Set("repeat_frac", args.repeat_frac);
  cfg.Set("workers", args.service.num_workers);
  cfg.Set("queue_capacity", args.service.queue_capacity);
  cfg.Set("cache_capacity", args.service.cache_capacity);
  cfg.Set("max_warm_edits", args.service.max_warm_edits);
  cfg.Set("churn", args.churn);
  cfg.Set("mutation_frac", args.mutation_frac);
  cfg.Set("epoch_size", args.service.epoch_size);
  cfg.Set("epoch_patch_budget", args.service.epoch_patch_budget);
  cfg.Set("portfolio", args.portfolio);
  cfg.Set("portfolio_width", args.service.portfolio_width);
  root.Set("config", std::move(cfg));

  const BuildInfo info = GetBuildInfo();
  Json env = Json::Object();
  env.Set("git_sha", info.git_sha);
  env.Set("compiler", info.compiler);
  env.Set("compiler_flags", info.compiler_flags);
  env.Set("build_type", info.build_type);
  env.Set("sanitize", info.sanitize);
  env.Set("hardware_threads", static_cast<uint64_t>(info.hardware_threads));
  root.Set("environment", std::move(env));

  const uint64_t hits = collector.exact_hits + collector.warm_hits;
  const uint64_t looked_up = hits + collector.misses;
  Json record = Json::Object();
  record.Set("name", args.churn ? "churn_mix" : "mix");
  record.Set("sent", collector.sent);
  record.Set("completed", collector.completed);
  record.Set("errors", collector.errors);
  record.Set("rejected", collector.rejected);
  record.Set("timed_out", collector.timed_out);
  Json cache = Json::Object();
  cache.Set("exact_hits", collector.exact_hits);
  cache.Set("warm_hits", collector.warm_hits);
  cache.Set("misses", collector.misses);
  cache.Set("hit_rate", looked_up == 0 ? 0.0
                                       : static_cast<double>(hits) /
                                             static_cast<double>(looked_up));
  record.Set("cache", std::move(cache));
  record.Set("throughput_qps",
             elapsed_s == 0.0
                 ? 0.0
                 : static_cast<double>(collector.completed) / elapsed_s);
  RunningStats latency_stats;
  for (const double v : collector.latencies_ms) latency_stats.Add(v);
  Json latency = Json::Object();
  latency.Set("mean_ms", latency_stats.mean());
  latency.Set("p50_ms", Percentile(collector.latencies_ms, 50.0));
  latency.Set("p90_ms", Percentile(collector.latencies_ms, 90.0));
  latency.Set("p99_ms", Percentile(collector.latencies_ms, 99.0));
  latency.Set("max_ms", latency_stats.max());
  record.Set("latency_ms", std::move(latency));
  Json deadline_stats = Json::Object();
  deadline_stats.Set("queries", collector.deadline_queries);
  deadline_stats.Set("max_overshoot_ms", collector.max_deadline_overshoot_ms);
  record.Set("deadline", std::move(deadline_stats));
  // Solution quality over the completed queries: the Φ the server actually
  // returned and the realized optimality gap (served objective over the
  // assignment-cost floor). Identical mixes serve identical query
  // sequences, so a --portfolio run and a single-start run on the same
  // flags are comparable record-for-record; p99 potential under tight
  // deadlines is the acceptance number for portfolio racing.
  {
    RunningStats phi_stats;
    for (const double v : collector.potentials) phi_stats.Add(v);
    Json quality = Json::Object();
    Json phi = Json::Object();
    phi.Set("mean", phi_stats.mean());
    phi.Set("p50", Percentile(collector.potentials, 50.0));
    phi.Set("p90", Percentile(collector.potentials, 90.0));
    phi.Set("p99", Percentile(collector.potentials, 99.0));
    phi.Set("max", phi_stats.max());
    quality.Set("potential", std::move(phi));
    RunningStats gap_stats;
    for (const double v : collector.realized_gaps) gap_stats.Add(v);
    Json gap = Json::Object();
    gap.Set("samples",
            static_cast<uint64_t>(collector.realized_gaps.size()));
    gap.Set("mean", gap_stats.mean());
    gap.Set("p50", Percentile(collector.realized_gaps, 50.0));
    gap.Set("p99", Percentile(collector.realized_gaps, 99.0));
    gap.Set("max", gap_stats.max());
    quality.Set("realized_gap", std::move(gap));
    record.Set("quality", std::move(quality));
  }
  bool incremental_valid = true;
  if (args.churn) {
    Json mutation = Json::Object();
    mutation.Set("acks", collector.mutation_acks);
    mutation.Set("rejected", collector.mutation_rejected);
    mutation.Set("epochs_committed", collector.epochs_committed);
    record.Set("mutation", std::move(mutation));
  }
  Json records = Json::Array();
  records.Append(std::move(record));
  root.Set("records", std::move(records));
  if (args.churn) {
    root.Set("incremental", MeasureIncremental(args, &incremental_valid));
  }
  root.Set("server_metrics", std::move(server_metrics));

  Status written = root.WriteFile(args.out);
  if (!written.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", args.out.c_str(),
                 written.ToString().c_str());
    return 2;
  }

  RMGP_LOG(kInfo) << "sent " << collector.sent << ", completed "
                  << collector.completed << ", errors " << collector.errors
                  << ", rejected " << collector.rejected << ", cache hit rate "
                  << (looked_up == 0
                          ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(looked_up))
                  << " -> " << args.out;
  if (args.churn) {
    RMGP_LOG(kInfo) << "churn: " << collector.mutation_acks << " acks, "
                    << collector.mutation_rejected << " rejected, "
                    << collector.epochs_committed << " epochs committed";
  }
  return collector.errors == 0 && collector.mutation_rejected == 0 &&
                 incremental_valid
             ? 0
             : 1;
}

}  // namespace
}  // namespace serve
}  // namespace rmgp

int main(int argc, char** argv) { return rmgp::serve::Main(argc, argv); }
