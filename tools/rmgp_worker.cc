// rmgp_worker — one shard-owning worker process of the sharded
// deployment. Dials the coordinator (rmgp_serve --dist-workers, or any
// shard::ShardCoordinator), receives its shard of the session graph, and
// serves per-color best-response commands until the coordinator shuts the
// fleet down.
//
// Usage: rmgp_worker --port P [--host H] [--poll-interval-ms N]
//                    [--io-timeout-ms N] [--max-color-commands N]
//
// Graceful shutdown: SIGTERM (and SIGINT) set a stop flag the worker
// checks every poll interval; the in-flight command finishes, the
// connection closes, and the process exits 0. --max-color-commands is the
// failure-injection knob the recovery tests and bench harness use: the
// worker drops its connection without warning right before serving that
// many kComputeColor commands.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <atomic>
#include <string>

#include "shard/worker.h"
#include "util/logging.h"

namespace rmgp {
namespace shard {
namespace {

std::atomic<bool> g_stop{false};

void OnSignal(int) { g_stop.store(true, std::memory_order_relaxed); }

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port P [--host H] [--poll-interval-ms N]"
               " [--io-timeout-ms N] [--max-color-commands N]\n",
               argv0);
  std::exit(2);
}

int Main(int argc, char** argv) {
  ShardWorkerOptions options;
  for (int i = 1; i < argc; ++i) {
    const auto next_u64 = [&]() -> uint64_t {
      if (i + 1 >= argc) Usage(argv[0]);
      char* end = nullptr;
      const uint64_t v = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0') Usage(argv[0]);
      return v;
    };
    if (std::strcmp(argv[i], "--port") == 0) {
      options.port = static_cast<uint16_t>(next_u64());
    } else if (std::strcmp(argv[i], "--host") == 0) {
      if (i + 1 >= argc) Usage(argv[0]);
      options.host = argv[++i];
    } else if (std::strcmp(argv[i], "--poll-interval-ms") == 0) {
      options.poll_interval_ms = static_cast<int>(next_u64());
    } else if (std::strcmp(argv[i], "--io-timeout-ms") == 0) {
      options.io_timeout_ms = static_cast<int>(next_u64());
    } else if (std::strcmp(argv[i], "--max-color-commands") == 0) {
      options.max_color_commands = next_u64();
    } else {
      Usage(argv[0]);
    }
  }
  if (options.port == 0) Usage(argv[0]);
  options.stop = &g_stop;

  // No SA_RESTART: a signal mid-poll wakes the wait so the stop flag is
  // seen within one poll interval rather than one io timeout.
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = OnSignal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  ShardWorker worker(options);
  const Status status = worker.Run();
  if (!status.ok()) {
    RMGP_LOG(kError) << "worker exited: " << status.ToString();
    return 1;
  }
  RMGP_LOG(kInfo) << "worker " << worker.worker_id() << " done: "
                  << worker.queries_served() << " queries, "
                  << worker.sent().bytes << "B out, "
                  << worker.received().bytes << "B in";
  return 0;
}

}  // namespace
}  // namespace shard
}  // namespace rmgp

int main(int argc, char** argv) { return rmgp::shard::Main(argc, argv); }
