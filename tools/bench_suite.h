#ifndef RMGP_TOOLS_BENCH_SUITE_H_
#define RMGP_TOOLS_BENCH_SUITE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/solver.h"
#include "util/json.h"
#include "util/status.h"

namespace rmgp {
namespace bench {

/// Version tag of the BENCH_solvers.json layout. Bump only on breaking
/// schema changes; bench_compare refuses to diff files whose schema tags
/// it does not understand. /2 added the argmin_cache_repairs and
/// worklist_pushes counters plus the "microbench" section; /3 added the
/// "kernels" section (SIMD-vs-scalar row-kernel microbench, see
/// RunKernelsBench). /1 and /2 files are still accepted by CompareBench
/// (the comparator only reads fields all versions share; the kernel gate
/// only fires when explicitly enabled).
inline constexpr const char* kBenchSchema = "rmgp-bench-solvers/3";
inline constexpr const char* kBenchSchemaV2 = "rmgp-bench-solvers/2";
inline constexpr const char* kBenchSchemaV1 = "rmgp-bench-solvers/1";

/// Layout tag of BENCH_serving.json, written by tools/rmgp_loadgen.
/// CompareBench diffs two serving documents on tail latency and cache hit
/// rate; mixing a serving file with a solver file is a schema mismatch.
inline constexpr const char* kServingSchema = "rmgp-bench-serving/1";

/// Layout tag of BENCH_churn.json, written by rmgp_loadgen --churn: serving
/// records measured under a mutation mix, plus an "incremental" section
/// timing epoch re-equilibration (core/incremental.h) against a cold solve.
/// CompareBench gates churn documents like serving ones and additionally
/// gates the incremental-vs-cold speedup (CompareOptions::speedup_threshold).
inline constexpr const char* kChurnSchema = "rmgp-bench-churn/1";

/// Layout tag of BENCH_store.json, written by bench_runner --store: the
/// graph-storage bench (src/store/). One record per load path — "text"
/// (edge-list parse), "mmap" (zero-parse container map), "compressed"
/// (delta+varint decode) — with file footprint, load time, and a
/// full-adjacency scan time, plus document-level ratios (mmap speedup
/// over parse, plain/compressed footprint ratio). CompareBench gates the
/// ratios, which are machine-portable, rather than raw wall times.
inline constexpr const char* kStoreSchema = "rmgp-bench-store/1";

/// Layout tag of BENCH_dist.json, written by rmgp_loadgen --dist: the query
/// mix driven over a real multi-process worker fleet (shard coordinator +
/// rmgp_worker over TCP), with measured per-round wall time and wire
/// traffic, an "equivalence" section (Φ of the sharded run vs the
/// in-process simulation — must match bit for bit), and a "recovery"
/// section (a worker killed mid-session, re-convergence latency).
/// CompareBench gates p99 latency, bytes per query, phi_match, and
/// recovery convergence.
inline constexpr const char* kDistSchema = "rmgp-bench-dist/1";

/// Configuration of the fixed-seed solver suite run by tools/bench_runner:
/// {BA, WS, ER, planted-partition} × the five SolverKind variants × alphas,
/// each measured over `reps` repetitions after `warmup` untimed runs.
struct SuiteConfig {
  bool quick = false;        ///< reduced scale for the CI perf-smoke job
  uint32_t reps = 5;         ///< timed repetitions per configuration
  uint32_t warmup = 1;       ///< untimed warm-up runs per configuration
  uint32_t num_threads = 4;  ///< the paper's T, for RMGP_is / RMGP_all
  uint64_t seed = 42;        ///< base seed; everything else derives from it
  NodeId num_users = 2000;
  ClassId num_classes = 16;
  std::vector<double> alphas = {0.2, 0.5, 0.8};

  /// Scale of the round-0 microbench (RunMicrobench): the global-table /
  /// reduced-table build timed sequentially vs. with `num_threads`.
  /// Deliberately larger and wider (k = 64) than the sweep above — the
  /// build is O(|V|·k) and only dominates at high k. 0 disables.
  NodeId micro_users = 20000;
  ClassId micro_classes = 64;

  /// Rows of the SIMD kernel microbench (RunKernelsBench); each row has
  /// micro_classes cells. Sized to stay cache-resident (2048 × 64 doubles
  /// = 1 MiB) — the point is kernel throughput, not DRAM bandwidth. 0
  /// disables the section.
  uint32_t kernel_rows = 2048;
};

/// The --quick preset: n=300, k=8, reps=3 — finishes in seconds.
SuiteConfig QuickConfig();

/// One (graph, solver, alpha) cell of the suite: wall-time statistics over
/// the repetitions plus objective/potential and the SolverCounters of the
/// last repetition (identical seeds make repetitions redundant for
/// counters).
struct BenchRecord {
  std::string graph;   ///< "ba" | "ws" | "er" | "pp"
  std::string solver;  ///< SolverKindName, e.g. "RMGP_gt"
  double alpha = 0.0;
  NodeId num_users = 0;
  uint64_t num_edges = 0;
  ClassId num_classes = 0;
  bool converged = false;
  uint32_t rounds = 0;
  double objective_total = 0.0;
  double objective_assignment = 0.0;
  double objective_social = 0.0;
  double potential = 0.0;
  double time_ms_mean = 0.0;
  double time_ms_min = 0.0;
  double time_ms_max = 0.0;
  double time_ms_stddev = 0.0;
  double init_ms_mean = 0.0;
  SolverCounters counters;
};

/// Runs the whole suite. Deterministic given the config (fixed seeds; the
/// parallel solvers may differ in float round-off across runs, which the
/// compare tolerances absorb).
std::vector<BenchRecord> RunSuite(const SuiteConfig& config);

/// One row of the round-0 build microbench: the same solver's
/// initialization timed with one thread and with config.num_threads.
/// init_ms values are the min over 3 repetitions (min is the
/// noise-robust statistic for a fixed workload).
struct MicroRecord {
  std::string name;  ///< "gt_build" | "all_build"
  NodeId num_users = 0;
  ClassId num_classes = 0;
  uint32_t num_threads = 0;   ///< threads of the parallel measurement
  double seq_init_ms = 0.0;   ///< num_threads = 1
  double par_init_ms = 0.0;   ///< num_threads = config.num_threads
  double speedup = 0.0;       ///< seq_init_ms / par_init_ms
};

/// Times the parallel round-0 builds (RMGP_gt dense table, RMGP_all
/// reduced table incl. §4.1 elimination) on a planted-partition instance
/// of config.micro_users × config.micro_classes. Returns empty when the
/// microbench is disabled (micro_users or micro_classes of 0).
std::vector<MicroRecord> RunMicrobench(const SuiteConfig& config);

/// One row of the SIMD kernel microbench: the scalar reference loop raced
/// against the widest runtime-dispatched backend (core/kernels.h) over the
/// same aligned row data. ns-per-row values are the min over 3 passes.
struct KernelRecord {
  std::string name;     ///< "row_build_d" | "argmin_d" | "row_build_f"
                        ///< | "argmin_f"
  std::string backend;  ///< SIMD table raced against scalar ("avx2" when
                        ///< the host dispatches AVX2, else "scalar")
  uint32_t rows = 0;
  ClassId num_classes = 0;       ///< cells per row (k)
  double scalar_ns_per_row = 0.0;
  double simd_ns_per_row = 0.0;
  double speedup = 0.0;  ///< scalar / simd; ~1.0 when no SIMD backend
};

/// Races the scalar vs SIMD kernel tables on config.kernel_rows rows of
/// config.micro_classes cells (cost-row build and lowest-index argmin, in
/// double and float). Returns empty when disabled (kernel_rows or
/// micro_classes of 0). On hosts without AVX2 both tables are the scalar
/// one and every speedup reports ~1.0 — the compare gate is opt-in for
/// exactly this reason.
std::vector<KernelRecord> RunKernelsBench(const SuiteConfig& config);

/// Configuration of the storage bench (bench_runner --store): one BA
/// graph with randomized weights written as a text edge list, a plain
/// container, and a compressed container, then loaded back through every
/// path, `reps` times each (min-of-reps is the reported statistic).
struct StoreConfig {
  bool quick = false;
  NodeId num_users = 1000000;  ///< the acceptance-scale default
  uint32_t edges_per_node = 8;
  uint64_t seed = 42;
  uint32_t reps = 3;
  std::string scratch_dir = "/tmp";  ///< where the bench files live
};

/// The --quick preset: n = 50000 — seconds, not minutes, for CI smoke.
StoreConfig QuickStoreConfig();

/// One load path of the storage bench.
struct StoreRecord {
  std::string name;  ///< "text" | "mmap" | "compressed"
  NodeId num_users = 0;
  uint64_t num_edges = 0;
  uint64_t file_bytes = 0;  ///< on-disk footprint of this representation
  uint64_t heap_bytes = 0;  ///< owned CSR bytes after load (0 for mmap)
  double load_ms_min = 0.0;
  double load_ms_mean = 0.0;
  double scan_ms_min = 0.0;  ///< full neighbor sweep on the loaded graph
  double load_medges_per_sec = 0.0;  ///< edges / load time (decode rate)
};

struct StoreBenchResult {
  std::vector<StoreRecord> records;
  /// text load_ms_min / mmap load_ms_min — the zero-parse win. The
  /// machine-portable gate: both numerator and denominator move with the
  /// host, the ratio does not.
  double mmap_speedup = 0.0;
  /// plain container bytes / compressed container bytes.
  double compression_ratio = 0.0;
};

/// Runs the storage bench: generates the graph, writes the three
/// representations into config.scratch_dir, measures every load path, and
/// removes the files. IO or codec failures surface as a Status.
Result<StoreBenchResult> RunStoreBench(const StoreConfig& config);

/// Serializes a storage bench run:
///   {"schema": kStoreSchema, "config": {...}, "environment": {...},
///    "records": [...], "ratios": {...}}.
Json StoreToJson(const StoreConfig& config, const StoreBenchResult& result);

/// Serializes a suite run into the schema-stable layout:
///   {"schema": ..., "config": {...}, "environment": {...},
///    "records": [...], "microbench": [...], "kernels": [...]}.
/// `environment` carries util/build_info.h metadata (git sha, compiler,
/// flags, build type, hardware threads).
Json SuiteToJson(const SuiteConfig& config,
                 const std::vector<BenchRecord>& records,
                 const std::vector<MicroRecord>& micro = {},
                 const std::vector<KernelRecord>& kernels = {});

/// Thresholds for CompareBench.
struct CompareOptions {
  /// A cell regresses on time when candidate.time_ms_min exceeds
  /// baseline.time_ms_min * (1 + time_threshold). Negative disables the
  /// time gate (cross-machine comparisons).
  double time_threshold = 0.10;

  /// A cell regresses on quality when candidate.objective_total exceeds
  /// baseline.objective_total * (1 + quality_threshold). The small default
  /// absorbs run-to-run float jitter of the parallel solvers while still
  /// rejecting any real objective regression.
  double quality_threshold = 0.01;

  /// Serving documents only: a record regresses when its cache hit rate
  /// drops more than this many absolute points below the baseline's
  /// (0.05 = five points). The serving time gate reuses time_threshold,
  /// applied to p99 latency.
  double hit_rate_threshold = 0.05;

  /// Churn and store documents: the candidate's headline speedup
  /// (incremental-vs-cold for churn, mmap-vs-parse for store) may shrink
  /// to this fraction of the baseline's before it counts as a regression
  /// (0.5 = the candidate must retain at least half the baseline speedup —
  /// wall-clock ratios are noisy in CI). Negative disables the gate.
  double speedup_threshold = 0.5;

  /// Solver documents only: every kernel record of the *candidate* must
  /// show at least this scalar/SIMD speedup (an absolute floor, not a
  /// baseline ratio — the point is "SIMD still engages", and a host
  /// without AVX2 legitimately reports ~1.0). Negative (the default)
  /// disables the gate; CI enables it only on the pinned-ISA cell.
  double kernel_speedup_threshold = -1.0;
};

/// One detected regression (or missing record).
struct Regression {
  std::string key;   ///< "graph/solver/alpha"
  std::string kind;  ///< "time" | "quality" | "missing"
  double baseline = 0.0;
  double candidate = 0.0;
};

struct CompareReport {
  bool ok = false;
  std::vector<Regression> regressions;
  std::string summary;  ///< printable per-cell diff table
};

/// Diffs two bench documents. Both solver suites (SuiteToJson) and serving
/// runs (kServingSchema, matched by record name, gated on p99 latency and
/// cache hit rate) are accepted — but baseline and candidate must carry
/// the same family of schema. Fails (ok == false) on schema mismatch, on
/// any baseline cell missing from the candidate, and on any regression
/// beyond the thresholds.
CompareReport CompareBench(const Json& baseline, const Json& candidate,
                           const CompareOptions& options);

}  // namespace bench
}  // namespace rmgp

#endif  // RMGP_TOOLS_BENCH_SUITE_H_
