// rmgp — command-line driver for the RMGP library.
//
//   rmgp generate --dataset gowalla --users 5000 --events 64 --out data/g
//       writes data/g.edges, data/g.users.csv, data/g.events.csv
//
//   rmgp solve --graph data/g.edges --users data/g.users.csv
//              --events data/g.events.csv [--alpha 0.5] [--solver all]
//              [--normalize pess] [--init closest] [--threads 4]
//              [--out assignment.csv]
//       runs an LAGP query and writes/prints the equilibrium
//
//   rmgp verify --graph ... --users ... --events ... --assignment a.csv
//              [--alpha 0.5] [--normalize pess]
//       checks that an assignment is a Nash equilibrium
//
//   rmgp stats --graph data/g.edges
//       prints social-graph statistics (degrees, triangles, clustering)
//
// All files are plain text (edge list / CSV), so the tool composes with
// external datasets: bring your own check-ins, get assignments back.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "core/normalization.h"
#include "core/solver.h"
#include "data/datasets.h"
#include "data/geo_io.h"
#include "data/tagp.h"
#include "graph/io.h"
#include "graph/stats.h"
#include "spatial/estimators.h"

using namespace rmgp;

namespace {

struct Flags {
  std::map<std::string, std::string> values;

  const char* Get(const std::string& key, const char* def) const {
    auto it = values.find(key);
    return it == values.end() ? def : it->second.c_str();
  }
  double GetDouble(const std::string& key, double def) const {
    auto it = values.find(key);
    return it == values.end() ? def : std::atof(it->second.c_str());
  }
  long GetInt(const std::string& key, long def) const {
    auto it = values.find(key);
    return it == values.end() ? def : std::atol(it->second.c_str());
  }
  bool Require(const std::string& key) const {
    if (values.count(key)) return true;
    std::fprintf(stderr, "missing required flag --%s\n", key.c_str());
    return false;
  }
};

Flags ParseFlags(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0 && i + 1 < argc) {
      flags.values[argv[i] + 2] = argv[i + 1];
      ++i;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return flags;
}

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

int CmdGenerate(const Flags& flags) {
  if (!flags.Require("out")) return 2;
  const std::string out = flags.Get("out", "");
  const std::string dataset = flags.Get("dataset", "gowalla");
  GeoSocialDataset ds;
  if (dataset == "gowalla") {
    GowallaLikeOptions opt;
    opt.num_users = static_cast<NodeId>(flags.GetInt("users", 12748));
    opt.num_edges = static_cast<uint64_t>(
        flags.GetInt("edges", static_cast<long>(opt.num_users * 3.8)));
    opt.num_events = static_cast<ClassId>(flags.GetInt("events", 128));
    opt.seed = static_cast<uint64_t>(flags.GetInt("seed", 2009));
    ds = MakeGowallaLike(opt);
  } else if (dataset == "foursquare") {
    FoursquareLikeOptions opt;
    opt.scale = flags.GetDouble("scale", 0.01);
    opt.max_events = static_cast<ClassId>(flags.GetInt("events", 1024));
    opt.seed = static_cast<uint64_t>(flags.GetInt("seed", 2013));
    ds = MakeFoursquareLike(opt);
  } else {
    std::fprintf(stderr, "unknown --dataset %s (gowalla|foursquare)\n",
                 dataset.c_str());
    return 2;
  }
  if (Status s = WriteEdgeList(ds.graph, out + ".edges"); !s.ok()) {
    return Fail(s);
  }
  if (Status s = WritePointsCsv(ds.user_locations, out + ".users.csv");
      !s.ok()) {
    return Fail(s);
  }
  if (Status s = WritePointsCsv(ds.event_pool, out + ".events.csv");
      !s.ok()) {
    return Fail(s);
  }
  std::printf("wrote %s.edges (%u users, %llu edges), %s.users.csv, "
              "%s.events.csv (%zu events)\n",
              out.c_str(), ds.graph.num_nodes(),
              static_cast<unsigned long long>(ds.graph.num_edges()),
              out.c_str(), out.c_str(), ds.event_pool.size());
  return 0;
}

struct LoadedProblem {
  // The graph lives behind a unique_ptr so its address stays stable when
  // LoadedProblem is moved out of LoadProblem (Instance keeps a pointer).
  std::unique_ptr<Graph> graph;
  std::shared_ptr<EuclideanCostProvider> costs;
  std::unique_ptr<Instance> instance;
  std::vector<Point> users;
  std::vector<Point> events;
};

Result<LoadedProblem> LoadProblem(const Flags& flags) {
  LoadedProblem prob;
  auto graph = ReadEdgeList(flags.Get("graph", ""));
  if (!graph.ok()) return graph.status();
  prob.graph = std::make_unique<Graph>(std::move(graph).value());
  auto users = ReadPointsCsv(flags.Get("users", ""));
  if (!users.ok()) return users.status();
  prob.users = std::move(users).value();
  auto events = ReadPointsCsv(flags.Get("events", ""));
  if (!events.ok()) return events.status();
  prob.events = std::move(events).value();
  if (prob.users.size() < prob.graph->num_nodes()) {
    return Status::InvalidArgument("users CSV has fewer rows than |V|");
  }
  prob.users.resize(prob.graph->num_nodes());
  const long k = flags.GetInt("k", static_cast<long>(prob.events.size()));
  if (k <= 0 || static_cast<size_t>(k) > prob.events.size()) {
    return Status::InvalidArgument("--k out of range for the events file");
  }
  prob.events.resize(static_cast<size_t>(k));
  prob.costs = std::make_shared<EuclideanCostProvider>(prob.users,
                                                       prob.events);
  auto inst = Instance::Create(prob.graph.get(), prob.costs,
                               flags.GetDouble("alpha", 0.5));
  if (!inst.ok()) return inst.status();
  prob.instance = std::make_unique<Instance>(std::move(inst).value());

  const std::string normalize = flags.Get("normalize", "pess");
  NormalizationPolicy policy;
  if (normalize == "none") {
    policy = NormalizationPolicy::kNone;
  } else if (normalize == "opt") {
    policy = NormalizationPolicy::kOptimistic;
  } else if (normalize == "pess") {
    policy = NormalizationPolicy::kPessimistic;
  } else {
    return Status::InvalidArgument("--normalize must be none|opt|pess");
  }
  if (policy != NormalizationPolicy::kNone) {
    DistanceEstimates est = EstimateDistances(prob.users, prob.events);
    auto cn = Normalize(prob.instance.get(), policy,
                        {est.dist_min, est.dist_med});
    if (!cn.ok()) return cn.status();
    std::printf("normalization constant CN = %.6f\n", *cn);
  }
  return prob;
}

int CmdSolve(const Flags& flags) {
  for (const char* key : {"graph", "users", "events"}) {
    if (!flags.Require(key)) return 2;
  }
  auto prob = LoadProblem(flags);
  if (!prob.ok()) return Fail(prob.status());

  const std::string solver = flags.Get("solver", "all");
  SolverKind kind;
  if (solver == "b") {
    kind = SolverKind::kBaseline;
  } else if (solver == "se") {
    kind = SolverKind::kStrategyElimination;
  } else if (solver == "is") {
    kind = SolverKind::kIndependentSets;
  } else if (solver == "gt") {
    kind = SolverKind::kGlobalTable;
  } else if (solver == "all") {
    kind = SolverKind::kAll;
  } else {
    std::fprintf(stderr, "--solver must be b|se|is|gt|all\n");
    return 2;
  }

  SolverOptions opt;
  const std::string init = flags.Get("init", "closest");
  if (init == "closest") {
    opt.init = InitPolicy::kClosestClass;
  } else if (init == "random") {
    opt.init = InitPolicy::kRandom;
  } else {
    std::fprintf(stderr, "--init must be closest|random\n");
    return 2;
  }
  opt.order = OrderPolicy::kDegreeDesc;
  opt.num_threads = static_cast<uint32_t>(flags.GetInt("threads", 4));
  opt.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  opt.record_rounds = false;

  auto res = Solve(kind, *prob->instance, opt);
  if (!res.ok()) return Fail(res.status());
  std::printf(
      "%s: %s after %u rounds in %.1f ms\n"
      "objective total=%.3f assignment=%.3f social=%.3f potential=%.3f\n",
      SolverKindName(kind), res->converged ? "equilibrium" : "round limit",
      res->rounds, res->total_millis, res->objective.total,
      res->objective.assignment, res->objective.social, res->potential);

  const std::string out = flags.Get("out", "");
  if (!out.empty()) {
    if (Status s = WriteAssignmentCsv(res->assignment, out); !s.ok()) {
      return Fail(s);
    }
    std::printf("assignment written to %s\n", out.c_str());
  }
  return res->converged ? 0 : 3;
}

int CmdVerify(const Flags& flags) {
  for (const char* key : {"graph", "users", "events", "assignment"}) {
    if (!flags.Require(key)) return 2;
  }
  auto prob = LoadProblem(flags);
  if (!prob.ok()) return Fail(prob.status());
  auto assignment = ReadAssignmentCsv(flags.Get("assignment", ""));
  if (!assignment.ok()) return Fail(assignment.status());
  Status s = VerifyEquilibrium(*prob->instance, *assignment);
  if (!s.ok()) {
    std::printf("NOT an equilibrium: %s\n", s.ToString().c_str());
    return 1;
  }
  const CostBreakdown obj = EvaluateObjective(*prob->instance, *assignment);
  std::printf("valid Nash equilibrium; objective total=%.3f\n", obj.total);
  return 0;
}

int CmdStats(const Flags& flags) {
  if (!flags.Require("graph")) return 2;
  auto graph = ReadEdgeList(flags.Get("graph", ""));
  if (!graph.ok()) return Fail(graph.status());
  const GraphStats s = ComputeGraphStats(*graph);
  std::printf("nodes             %u\n", s.num_nodes);
  std::printf("edges             %llu\n",
              static_cast<unsigned long long>(s.num_edges));
  std::printf("avg degree        %.3f\n", s.average_degree);
  std::printf("max degree        %u\n", s.max_degree);
  std::printf("avg edge weight   %.3f\n", s.average_edge_weight);
  std::printf("triangles         %llu\n",
              static_cast<unsigned long long>(s.num_triangles));
  std::printf("global clustering %.4f\n", s.global_clustering);
  std::printf("components        %u (largest %u)\n", s.num_components,
              s.largest_component);
  return 0;
}

void Usage() {
  std::fprintf(stderr,
               "usage: rmgp <generate|solve|verify|stats> [--flag value]...\n"
               "see the header of tools/rmgp_cli.cc for details\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string cmd = argv[1];
  const Flags flags = ParseFlags(argc, argv, 2);
  if (cmd == "generate") return CmdGenerate(flags);
  if (cmd == "solve") return CmdSolve(flags);
  if (cmd == "verify") return CmdVerify(flags);
  if (cmd == "stats") return CmdStats(flags);
  Usage();
  return 2;
}
