// bench_runner — runs the fixed-seed solver suite (four topologies × five
// solvers × three alphas) and writes the machine-readable perf trajectory
// BENCH_solvers.json: objective/potential, rounds, wall-time statistics,
// the SolverCounters of every run, and environment metadata. This is the
// file every perf-sensitive PR measures itself against via bench_compare.
//
// Usage: bench_runner [--quick] [--out FILE] [--reps N] [--warmup N]
//                     [--threads N] [--seed N]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "tools/bench_suite.h"
#include "util/table.h"

namespace rmgp {
namespace bench {
namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--quick] [--out FILE] [--reps N] [--warmup N]"
               " [--threads N] [--seed N]\n"
               "       %s --store [--quick] [--out FILE] [--reps N]"
               " [--seed N] [--users N]\n"
               "  --quick    small suite (n=300, k=8, 3 reps) for CI smoke\n"
               "  --out      output path (default BENCH_solvers.json, or\n"
               "             BENCH_store.json with --store)\n"
               "  --reps     timed repetitions per configuration\n"
               "  --warmup   untimed warm-up runs per configuration\n"
               "  --threads  worker threads for RMGP_is / RMGP_all\n"
               "  --seed     base seed of the whole suite\n"
               "  --store    run the graph-storage bench instead of the\n"
               "             solver suite (text parse vs mmap vs compressed"
               " decode)\n"
               "  --users    graph size of the --store bench\n",
               argv0, argv0);
  std::exit(2);
}

/// --store mode: the storage bench (text parse vs zero-parse mmap vs
/// compressed decode) writing the rmgp-bench-store/1 document.
int StoreMain(const StoreConfig& config, const std::string& out_path) {
  auto result = RunStoreBench(config);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }

  Table table({"path", "file MB", "heap MB", "load ms (min)",
               "load ms (mean)", "scan ms (min)", "Medges/s"});
  for (const StoreRecord& r : result->records) {
    table.AddRow({r.name,
                  Table::Num(static_cast<double>(r.file_bytes) / 1e6, 1),
                  Table::Num(static_cast<double>(r.heap_bytes) / 1e6, 1),
                  Table::Num(r.load_ms_min), Table::Num(r.load_ms_mean),
                  Table::Num(r.scan_ms_min),
                  Table::Num(r.load_medges_per_sec, 1)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("mmap-vs-parse speedup: %.1fx, compression ratio: %.2fx\n",
              result->mmap_speedup, result->compression_ratio);

  const Json doc = StoreToJson(config, result.value());
  if (Status s = doc.WriteFile(out_path); !s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("(json: %s, %zu records)\n", out_path.c_str(),
              result->records.size());
  return 0;
}

int Main(int argc, char** argv) {
  SuiteConfig config;
  std::string out_path;
  bool reps_given = false, warmup_given = false;
  bool store = false, quick = false;
  uint32_t reps_arg = 0;
  uint64_t seed_arg = 0;
  bool seed_given = false;
  NodeId users_arg = 0;

  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) Usage(argv[0]);
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
      const uint32_t reps = config.reps, warmup = config.warmup;
      config = QuickConfig();
      if (reps_given) config.reps = reps;
      if (warmup_given) config.warmup = warmup;
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = next();
    } else if (std::strcmp(argv[i], "--reps") == 0) {
      reps_arg = static_cast<uint32_t>(std::atoi(next()));
      config.reps = reps_arg;
      reps_given = true;
    } else if (std::strcmp(argv[i], "--warmup") == 0) {
      config.warmup = static_cast<uint32_t>(std::atoi(next()));
      warmup_given = true;
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      config.num_threads = static_cast<uint32_t>(std::atoi(next()));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed_arg = static_cast<uint64_t>(std::atoll(next()));
      config.seed = seed_arg;
      seed_given = true;
    } else if (std::strcmp(argv[i], "--store") == 0) {
      store = true;
    } else if (std::strcmp(argv[i], "--users") == 0) {
      users_arg = static_cast<NodeId>(std::atoll(next()));
    } else {
      Usage(argv[0]);
    }
  }

  if (store) {
    StoreConfig store_config;
    if (quick) store_config = QuickStoreConfig();
    if (reps_given) store_config.reps = reps_arg;
    if (seed_given) store_config.seed = seed_arg;
    if (users_arg > 0) store_config.num_users = users_arg;
    if (store_config.reps == 0) Usage(argv[0]);
    return StoreMain(store_config,
                     out_path.empty() ? "BENCH_store.json" : out_path);
  }
  if (out_path.empty()) out_path = "BENCH_solvers.json";
  if (config.reps == 0) Usage(argv[0]);

  const std::vector<BenchRecord> records = RunSuite(config);

  Table table({"graph", "solver", "alpha", "rounds", "time ms (mean)",
               "time ms (min)", "objective", "BR evals", "GT updates",
               "argmin repairs", "WL pushes"});
  for (const BenchRecord& r : records) {
    table.AddRow({r.graph, r.solver, Table::Num(r.alpha, 2),
                  Table::Int(r.rounds), Table::Num(r.time_ms_mean),
                  Table::Num(r.time_ms_min), Table::Num(r.objective_total, 6),
                  Table::Int(static_cast<long long>(
                      r.counters.best_response_evals)),
                  Table::Int(static_cast<long long>(
                      r.counters.gt_incremental_updates)),
                  Table::Int(static_cast<long long>(
                      r.counters.argmin_cache_repairs)),
                  Table::Int(static_cast<long long>(
                      r.counters.worklist_pushes))});
  }
  std::printf("%s", table.ToString().c_str());

  const std::vector<MicroRecord> micro = RunMicrobench(config);
  if (!micro.empty()) {
    Table mtable({"microbench", "n", "k", "threads", "init ms (1 thr)",
                  "init ms (T thr)", "speedup"});
    for (const MicroRecord& m : micro) {
      mtable.AddRow({m.name, Table::Int(m.num_users),
                     Table::Int(m.num_classes), Table::Int(m.num_threads),
                     Table::Num(m.seq_init_ms), Table::Num(m.par_init_ms),
                     Table::Num(m.speedup, 2)});
    }
    std::printf("%s", mtable.ToString().c_str());
  }

  const std::vector<KernelRecord> kernels = RunKernelsBench(config);
  if (!kernels.empty()) {
    Table ktable({"kernel", "backend", "rows", "k", "scalar ns/row",
                  "simd ns/row", "speedup"});
    for (const KernelRecord& rec : kernels) {
      ktable.AddRow({rec.name, rec.backend, Table::Int(rec.rows),
                     Table::Int(rec.num_classes),
                     Table::Num(rec.scalar_ns_per_row, 1),
                     Table::Num(rec.simd_ns_per_row, 1),
                     Table::Num(rec.speedup, 2)});
    }
    std::printf("%s", ktable.ToString().c_str());
  }

  const Json doc = SuiteToJson(config, records, micro, kernels);
  if (Status s = doc.WriteFile(out_path); !s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("(json: %s, %zu records)\n", out_path.c_str(), records.size());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace rmgp

int main(int argc, char** argv) { return rmgp::bench::Main(argc, argv); }
