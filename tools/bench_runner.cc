// bench_runner — runs the fixed-seed solver suite (four topologies × five
// solvers × three alphas) and writes the machine-readable perf trajectory
// BENCH_solvers.json: objective/potential, rounds, wall-time statistics,
// the SolverCounters of every run, and environment metadata. This is the
// file every perf-sensitive PR measures itself against via bench_compare.
//
// Usage: bench_runner [--quick] [--out FILE] [--reps N] [--warmup N]
//                     [--threads N] [--seed N]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "tools/bench_suite.h"
#include "util/table.h"

namespace rmgp {
namespace bench {
namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--quick] [--out FILE] [--reps N] [--warmup N]"
               " [--threads N] [--seed N]\n"
               "  --quick    small suite (n=300, k=8, 3 reps) for CI smoke\n"
               "  --out      output path (default BENCH_solvers.json)\n"
               "  --reps     timed repetitions per configuration\n"
               "  --warmup   untimed warm-up runs per configuration\n"
               "  --threads  worker threads for RMGP_is / RMGP_all\n"
               "  --seed     base seed of the whole suite\n",
               argv0);
  std::exit(2);
}

int Main(int argc, char** argv) {
  SuiteConfig config;
  std::string out_path = "BENCH_solvers.json";
  bool reps_given = false, warmup_given = false;

  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) Usage(argv[0]);
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--quick") == 0) {
      const uint32_t reps = config.reps, warmup = config.warmup;
      config = QuickConfig();
      if (reps_given) config.reps = reps;
      if (warmup_given) config.warmup = warmup;
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = next();
    } else if (std::strcmp(argv[i], "--reps") == 0) {
      config.reps = static_cast<uint32_t>(std::atoi(next()));
      reps_given = true;
    } else if (std::strcmp(argv[i], "--warmup") == 0) {
      config.warmup = static_cast<uint32_t>(std::atoi(next()));
      warmup_given = true;
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      config.num_threads = static_cast<uint32_t>(std::atoi(next()));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      config.seed = static_cast<uint64_t>(std::atoll(next()));
    } else {
      Usage(argv[0]);
    }
  }
  if (config.reps == 0) Usage(argv[0]);

  const std::vector<BenchRecord> records = RunSuite(config);

  Table table({"graph", "solver", "alpha", "rounds", "time ms (mean)",
               "time ms (min)", "objective", "BR evals", "GT updates",
               "argmin repairs", "WL pushes"});
  for (const BenchRecord& r : records) {
    table.AddRow({r.graph, r.solver, Table::Num(r.alpha, 2),
                  Table::Int(r.rounds), Table::Num(r.time_ms_mean),
                  Table::Num(r.time_ms_min), Table::Num(r.objective_total, 6),
                  Table::Int(static_cast<long long>(
                      r.counters.best_response_evals)),
                  Table::Int(static_cast<long long>(
                      r.counters.gt_incremental_updates)),
                  Table::Int(static_cast<long long>(
                      r.counters.argmin_cache_repairs)),
                  Table::Int(static_cast<long long>(
                      r.counters.worklist_pushes))});
  }
  std::printf("%s", table.ToString().c_str());

  const std::vector<MicroRecord> micro = RunMicrobench(config);
  if (!micro.empty()) {
    Table mtable({"microbench", "n", "k", "threads", "init ms (1 thr)",
                  "init ms (T thr)", "speedup"});
    for (const MicroRecord& m : micro) {
      mtable.AddRow({m.name, Table::Int(m.num_users),
                     Table::Int(m.num_classes), Table::Int(m.num_threads),
                     Table::Num(m.seq_init_ms), Table::Num(m.par_init_ms),
                     Table::Num(m.speedup, 2)});
    }
    std::printf("%s", mtable.ToString().c_str());
  }

  const std::vector<KernelRecord> kernels = RunKernelsBench(config);
  if (!kernels.empty()) {
    Table ktable({"kernel", "backend", "rows", "k", "scalar ns/row",
                  "simd ns/row", "speedup"});
    for (const KernelRecord& rec : kernels) {
      ktable.AddRow({rec.name, rec.backend, Table::Int(rec.rows),
                     Table::Int(rec.num_classes),
                     Table::Num(rec.scalar_ns_per_row, 1),
                     Table::Num(rec.simd_ns_per_row, 1),
                     Table::Num(rec.speedup, 2)});
    }
    std::printf("%s", ktable.ToString().c_str());
  }

  const Json doc = SuiteToJson(config, records, micro, kernels);
  if (Status s = doc.WriteFile(out_path); !s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("(json: %s, %zu records)\n", out_path.c_str(), records.size());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace rmgp

int main(int argc, char** argv) { return rmgp::bench::Main(argc, argv); }
