#include "tools/lint_rules.h"

#include <cctype>
#include <utility>

namespace rmgp {
namespace lint {

namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True iff `token` occurs in `line` delimited by non-word characters.
bool ContainsWord(std::string_view line, std::string_view token) {
  for (size_t pos = line.find(token); pos != std::string_view::npos;
       pos = line.find(token, pos + 1)) {
    const bool left_ok = pos == 0 || !IsWordChar(line[pos - 1]);
    const size_t end = pos + token.size();
    const bool right_ok = end >= line.size() || !IsWordChar(line[end]);
    if (left_ok && right_ok) return true;
  }
  return false;
}

/// True iff `token` occurs word-delimited and is followed (after optional
/// whitespace) by '('.
bool ContainsCall(std::string_view line, std::string_view token) {
  for (size_t pos = line.find(token); pos != std::string_view::npos;
       pos = line.find(token, pos + 1)) {
    const bool left_ok = pos == 0 || !IsWordChar(line[pos - 1]);
    size_t end = pos + token.size();
    while (end < line.size() && (line[end] == ' ' || line[end] == '\t')) ++end;
    if (left_ok && end < line.size() && line[end] == '(') return true;
  }
  return false;
}

bool LineAllows(std::string_view original_line, std::string_view rule) {
  const std::string marker = "rmgp-lint: allow(" + std::string(rule) + ")";
  return original_line.find(marker) != std::string_view::npos;
}

bool FileAllows(std::string_view original_content, std::string_view rule) {
  const std::string marker = "rmgp-lint: allow-file(" + std::string(rule) + ")";
  return original_content.find(marker) != std::string_view::npos;
}

/// Splits into lines without the trailing newline; keeps empty lines so
/// indices map 1:1 to line numbers.
std::vector<std::string_view> SplitLines(std::string_view s) {
  std::vector<std::string_view> lines;
  size_t start = 0;
  while (start <= s.size()) {
    size_t nl = s.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.push_back(s.substr(start));
      break;
    }
    lines.push_back(s.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

}  // namespace

std::string StripCommentsAndStrings(std::string_view content) {
  std::string out;
  out.reserve(content.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar,
                     kRawString };
  State state = State::kCode;
  std::string raw_delim;  // for kRawString: ")delim\"" terminator
  for (size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out.push_back(' ');
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out.push_back(' ');
        } else if (c == '"' &&
                   (i == 0 || content[i - 1] != 'R' ||
                    (i >= 2 && IsWordChar(content[i - 2])))) {
          state = State::kString;
          out.push_back(' ');
        } else if (c == '"') {
          // Raw string literal R"delim( ... )delim".
          state = State::kRawString;
          size_t d = i + 1;
          while (d < content.size() && content[d] != '(') ++d;
          raw_delim = ")" + std::string(content.substr(i + 1, d - i - 1)) +
                      "\"";
          out.push_back(' ');
        } else if (c == '\'') {
          state = State::kChar;
          out.push_back(' ');
        } else {
          out.push_back(c);
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out.push_back('\n');
        } else {
          out.push_back(' ');
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out.append("  ");
          ++i;
        } else {
          out.push_back(c == '\n' ? '\n' : ' ');
        }
        break;
      case State::kString:
        if (c == '\\') {
          out.append("  ");
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          out.push_back(' ');
        } else {
          out.push_back(c == '\n' ? '\n' : ' ');
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out.append("  ");
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          out.push_back(' ');
        } else {
          out.push_back(c == '\n' ? '\n' : ' ');
        }
        break;
      case State::kRawString:
        if (content.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (size_t j = 0; j < raw_delim.size(); ++j) out.push_back(' ');
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else {
          out.push_back(c == '\n' ? '\n' : ' ');
        }
        break;
    }
  }
  return out;
}

std::string ExpectedGuard(std::string_view path) {
  std::string_view rel = path;
  if (rel.rfind("src/", 0) == 0) rel.remove_prefix(4);
  std::string guard = "RMGP_";
  for (const char c : rel) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      guard.push_back(
          static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    } else {
      guard.push_back('_');
    }
  }
  guard.push_back('_');
  return guard;
}

std::vector<Diagnostic> LintFile(const std::string& path,
                                 std::string_view content) {
  std::vector<Diagnostic> diags;
  const bool in_library = path.rfind("src/", 0) == 0;
  const bool is_header = path.size() >= 2 &&
                         path.compare(path.size() - 2, 2, ".h") == 0;

  const std::string stripped = StripCommentsAndStrings(content);
  const std::vector<std::string_view> code_lines = SplitLines(stripped);
  const std::vector<std::string_view> orig_lines = SplitLines(content);

  auto report = [&](int line, const char* rule, std::string message) {
    if (FileAllows(content, rule)) return;
    if (line >= 1 && static_cast<size_t>(line) <= orig_lines.size() &&
        LineAllows(orig_lines[line - 1], rule)) {
      return;
    }
    diags.push_back({path, line, rule, std::move(message)});
  };

  for (size_t i = 0; i < code_lines.size(); ++i) {
    const std::string_view line = code_lines[i];
    const int lineno = static_cast<int>(i) + 1;
    if (line.empty()) continue;

    if (in_library && ContainsWord(line, "throw")) {
      report(lineno, "no-throw",
             "library code must not throw; return a Status/Result "
             "(util/status.h) instead");
    }
    if (ContainsWord(line, "std::rand") || ContainsCall(line, "srand") ||
        ContainsWord(line, "std::random_device") ||
        ContainsWord(line, "std::mt19937")) {
      report(lineno, "no-rand",
             "use the seeded, bit-exact rmgp::Rng (util/rng.h); std "
             "randomness is not reproducible across platforms");
    }
    if (in_library && ContainsCall(line, "assert")) {
      report(lineno, "no-bare-assert",
             "bare assert() vanishes in Release; use RMGP_CHECK or "
             "RMGP_DCHECK (util/dcheck.h) with a message");
    }
    if (in_library &&
        (ContainsWord(line, "std::cout") || ContainsWord(line, "std::cerr") ||
         ContainsCall(line, "printf") || ContainsCall(line, "fprintf"))) {
      report(lineno, "no-stdout",
             "library code must not print directly; use RMGP_LOG "
             "(util/logging.h)");
    }
  }

  if (is_header) {
    const std::string expected = ExpectedGuard(path);
    int ifndef_line = 0;
    std::string actual;
    for (size_t i = 0; i < code_lines.size(); ++i) {
      std::string_view line = code_lines[i];
      const size_t pos = line.find("#ifndef");
      if (pos == std::string_view::npos) continue;
      std::string_view rest = line.substr(pos + 7);
      size_t b = 0;
      while (b < rest.size() && (rest[b] == ' ' || rest[b] == '\t')) ++b;
      size_t e = b;
      while (e < rest.size() && IsWordChar(rest[e])) ++e;
      actual = std::string(rest.substr(b, e - b));
      ifndef_line = static_cast<int>(i) + 1;
      break;
    }
    if (ifndef_line == 0) {
      report(1, "include-guard",
             "header is missing an include guard; expected #ifndef " +
                 expected);
    } else if (actual != expected) {
      report(ifndef_line, "include-guard",
             "include guard '" + actual + "' should be '" + expected + "'");
    }
  }

  return diags;
}

std::string FormatDiagnostic(const Diagnostic& d) {
  return d.file + ":" + std::to_string(d.line) + ": [" + d.rule + "] " +
         d.message;
}

}  // namespace lint
}  // namespace rmgp
